// Control-algorithm tests: PRISMA's feedback autotuner driven by
// synthetic stage snapshots (no threads), and the TensorFlow
// prefetch-autotuner reimplementation.
#include <gtest/gtest.h>

#include <algorithm>

#include "controlplane/autotuner.hpp"
#include "controlplane/tf_autotuner.hpp"

namespace prisma::controlplane {
namespace {

using dataplane::StageKnobs;
using dataplane::StageStatsSnapshot;

/// Drives a PrismaAutotuner with a synthetic workload model: a device
/// whose production rate saturates at `knee` producers, and a consumer
/// that always wants more (starvation until production >= demand).
class SyntheticStage {
 public:
  SyntheticStage(AutotunerOptions options, double rate_per_producer,
                 std::uint32_t knee, double demand)
      : tuner_(options),
        rate_per_producer_(rate_per_producer),
        knee_(knee),
        demand_(demand) {
    producers_ = options.min_producers;
  }

  /// One controller tick: synthesizes counters for the current producer
  /// count, feeds the tuner, applies returned knobs.
  void Tick() {
    // Production rate: linear to the knee, flat after.
    const double effective =
        rate_per_producer_ * std::min<std::uint32_t>(producers_, knee_);
    const auto produced = static_cast<std::uint64_t>(effective);
    const auto consumed = static_cast<std::uint64_t>(
        std::min(effective, demand_));
    const bool starved = effective < demand_;

    stats_.at += Millis{100};
    stats_.samples_produced += produced;
    stats_.samples_consumed += consumed;
    if (starved) stats_.consumer_waits += consumed / 4 + 1;
    if (!starved) stats_.producer_blocks += produced;  // buffer runs full
    stats_.producers = producers_;
    stats_.queue_depth = 100000;  // plenty of work left

    const StageKnobs knobs = tuner_.Tick(stats_);
    if (knobs.producers) producers_ = *knobs.producers;
    if (knobs.buffer_capacity) buffer_ = *knobs.buffer_capacity;
  }

  void RunTicks(int n) {
    for (int i = 0; i < n; ++i) Tick();
  }

  std::uint32_t producers() const { return producers_; }
  std::size_t buffer() const { return buffer_; }
  PrismaAutotuner& tuner() { return tuner_; }

 private:
  PrismaAutotuner tuner_;
  double rate_per_producer_;
  std::uint32_t knee_;
  double demand_;
  std::uint32_t producers_ = 1;
  std::size_t buffer_ = 0;
  StageStatsSnapshot stats_;
};

AutotunerOptions FastOptions() {
  AutotunerOptions o;
  o.period_min_inserts = 50;   // tiny periods for test speed
  o.period_max_ticks = 4;
  o.max_producers = 16;
  return o;
}

TEST(PrismaAutotunerTest, FirstTickPublishesInitialKnobs) {
  PrismaAutotuner tuner(FastOptions());
  StageStatsSnapshot s;
  const auto knobs = tuner.Tick(s);
  ASSERT_TRUE(knobs.producers.has_value());
  ASSERT_TRUE(knobs.buffer_capacity.has_value());
  EXPECT_EQ(*knobs.producers, 1u);
}

TEST(PrismaAutotunerTest, IdleTicksAreIgnored) {
  PrismaAutotuner tuner(FastOptions());
  StageStatsSnapshot s;
  (void)tuner.Tick(s);  // initial publish
  for (int i = 0; i < 20; ++i) {
    const auto knobs = tuner.Tick(s);  // no progress at all
    EXPECT_FALSE(knobs.producers.has_value());
    EXPECT_FALSE(knobs.buffer_capacity.has_value());
  }
}

TEST(PrismaAutotunerTest, ScalesUpUnderStarvationToKnee) {
  // Device saturates at 4 producers; consumer demands more than the
  // device can give -> the tuner must climb to ~the knee and stop there
  // (probes past it show no gain and revert).
  SyntheticStage stage(FastOptions(), /*rate_per_producer=*/100, /*knee=*/4,
                       /*demand=*/1000);
  stage.RunTicks(300);
  EXPECT_GE(stage.producers(), 4u);
  EXPECT_LE(stage.producers(), 5u) << "must not over-provision past knee";
}

TEST(PrismaAutotunerTest, StaysAtMinWhenDemandIsMet) {
  // One producer outpaces the consumer: never scale up.
  SyntheticStage stage(FastOptions(), /*rate_per_producer=*/1000, /*knee=*/8,
                       /*demand=*/100);
  stage.RunTicks(100);
  EXPECT_EQ(stage.producers(), 1u);
}

TEST(PrismaAutotunerTest, ScalesUpWhenDemandBelowKnee) {
  // Demand needs exactly 3 producers (300 vs 100/producer).
  SyntheticStage stage(FastOptions(), 100, /*knee=*/8, /*demand=*/301);
  stage.RunTicks(300);
  EXPECT_GE(stage.producers(), 3u);
  EXPECT_LE(stage.producers(), 5u);
}

TEST(PrismaAutotunerTest, ScalesDownWhenOverProvisioned) {
  AutotunerOptions o = FastOptions();
  PrismaAutotuner tuner(o);
  StageStatsSnapshot s;
  (void)tuner.Tick(s);

  // Force it up via starvation with production that rewards extra
  // producers (rate proportional to t), then flip to calm and verify
  // retirement.
  std::uint32_t producers = 1;
  std::uint32_t peak = 1;
  auto drive = [&](bool starved, int ticks) {
    for (int i = 0; i < ticks; ++i) {
      s.at += Millis{100};
      const std::uint64_t produced = 200ull * producers;  // scales with t
      s.samples_produced += produced;
      s.samples_consumed += produced;
      s.producers = producers;
      s.queue_depth = 10000;
      if (starved) {
        s.consumer_waits += produced / 4;
      } else {
        s.producer_blocks += produced - 1;  // mostly blocked: surplus
      }
      const auto knobs = tuner.Tick(s);
      if (knobs.producers) producers = *knobs.producers;
      peak = std::max(peak, producers);
    }
  };
  drive(/*starved=*/true, 60);
  ASSERT_GT(peak, 1u);
  const std::uint32_t before_calm = producers;

  drive(/*starved=*/false, 200);
  EXPECT_LT(producers, before_calm) << "calm periods must retire producers";
}

TEST(PrismaAutotunerTest, BufferFollowsProducersWithHeadroom) {
  AutotunerOptions o = FastOptions();
  o.buffer_headroom = 10;
  SyntheticStage stage(o, 100, /*knee=*/4, /*demand=*/1000);
  stage.RunTicks(300);
  EXPECT_GE(stage.buffer(), stage.producers() * 10u);
}

TEST(PrismaAutotunerTest, BufferDoublesAtProducerCap) {
  AutotunerOptions o = FastOptions();
  o.max_producers = 2;
  o.max_buffer = 1024;
  SyntheticStage stage(o, 100, /*knee=*/8, /*demand=*/10000);
  stage.RunTicks(400);
  EXPECT_EQ(stage.producers(), 2u);
  // Starvation persisted at the cap -> burst doublings kicked in.
  EXPECT_GT(stage.buffer(), 2u * o.buffer_headroom);
}

TEST(PrismaAutotunerTest, RespectsMaxBuffer) {
  AutotunerOptions o = FastOptions();
  o.max_producers = 1;
  o.max_buffer = 64;
  SyntheticStage stage(o, 10, 1, /*demand=*/100000);
  stage.RunTicks(500);
  EXPECT_LE(stage.buffer(), 64u);
}

TEST(PrismaAutotunerTest, ConvergesAndReportsIt) {
  SyntheticStage stage(FastOptions(), 100, 4, 1000);
  stage.RunTicks(600);
  EXPECT_TRUE(stage.tuner().Converged());
}

TEST(PrismaAutotunerTest, ResetForgetsEverything) {
  SyntheticStage stage(FastOptions(), 100, 4, 1000);
  stage.RunTicks(300);
  ASSERT_GT(stage.tuner().CurrentProducers(), 1u);
  stage.tuner().Reset();
  EXPECT_EQ(stage.tuner().CurrentProducers(), 1u);
  EXPECT_FALSE(stage.tuner().Converged());
}

TEST(PrismaAutotunerTest, NeverExceedsMaxProducers) {
  AutotunerOptions o = FastOptions();
  o.max_producers = 6;
  SyntheticStage stage(o, 100, /*knee=*/32, /*demand=*/100000);
  stage.RunTicks(500);
  EXPECT_LE(stage.producers(), 6u);
}

/// Parameterized knee sweep: the tuner should track the device knee.
class AutotunerKneeTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AutotunerKneeTest, ConvergesNearKnee) {
  const std::uint32_t knee = GetParam();
  SyntheticStage stage(FastOptions(), 100, knee, /*demand=*/1e9);
  stage.RunTicks(800);
  EXPECT_GE(stage.producers(), knee);
  EXPECT_LE(stage.producers(), knee + 1);
}

INSTANTIATE_TEST_SUITE_P(Knees, AutotunerKneeTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

// --- TensorFlow autotuner -----------------------------------------------------

TEST(TfAutotunerTest, StartsInUpswing) {
  TfPrefetchAutotuner tuner(TfAutotunerOptions{});
  EXPECT_EQ(tuner.mode(), TfPrefetchAutotuner::Mode::kUpswing);
  EXPECT_EQ(tuner.buffer_limit(), 1u);
}

TEST(TfAutotunerTest, DoublesOnEmptyBuffer) {
  TfPrefetchAutotuner tuner(TfAutotunerOptions{});
  tuner.RecordConsumption(0);
  EXPECT_EQ(tuner.buffer_limit(), 2u);
  tuner.RecordConsumption(0);
  EXPECT_EQ(tuner.buffer_limit(), 4u);
}

TEST(TfAutotunerTest, FreezesWhenBufferFull) {
  TfPrefetchAutotuner tuner(TfAutotunerOptions{});
  tuner.RecordConsumption(0);  // -> 2
  tuner.RecordConsumption(2);  // buffer at limit -> downswing
  EXPECT_EQ(tuner.mode(), TfPrefetchAutotuner::Mode::kDownswing);
  tuner.RecordConsumption(0);  // no further growth
  EXPECT_EQ(tuner.buffer_limit(), 2u);
}

TEST(TfAutotunerTest, RespectsMaxBuffer) {
  TfAutotunerOptions o;
  o.max_buffer = 8;
  TfPrefetchAutotuner tuner(o);
  for (int i = 0; i < 10; ++i) tuner.RecordConsumption(0);
  EXPECT_EQ(tuner.buffer_limit(), 8u);
}

TEST(TfAutotunerTest, PartialBufferNoChange) {
  TfPrefetchAutotuner tuner(TfAutotunerOptions{});
  tuner.RecordConsumption(0);  // -> 2
  tuner.RecordConsumption(1);  // partial: neither empty nor full
  EXPECT_EQ(tuner.buffer_limit(), 2u);
  EXPECT_EQ(tuner.mode(), TfPrefetchAutotuner::Mode::kUpswing);
}

TEST(TfAutotunerTest, SnapshotTickAllocatesFullThreadPool) {
  // The over-provisioning the paper measures (Fig. 3): TF hands the
  // pipeline its entire thread budget immediately.
  TfAutotunerOptions o;
  o.thread_pool_size = 30;
  TfPrefetchAutotuner tuner(o);
  StageStatsSnapshot s;
  const auto knobs = tuner.Tick(s);
  ASSERT_TRUE(knobs.producers.has_value());
  EXPECT_EQ(*knobs.producers, 30u);
}

TEST(TfAutotunerTest, SnapshotTickDoublesOnWaits) {
  TfPrefetchAutotuner tuner(TfAutotunerOptions{});
  StageStatsSnapshot s;
  (void)tuner.Tick(s);
  s.samples_consumed += 100;
  s.consumer_waits += 5;
  const auto knobs = tuner.Tick(s);
  ASSERT_TRUE(knobs.buffer_capacity.has_value());
  EXPECT_EQ(*knobs.buffer_capacity, 2u);
}

}  // namespace
}  // namespace prisma::controlplane
