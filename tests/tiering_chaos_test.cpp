// Crash-consistency chaos test for the durable fast tier: SIGKILL a
// child mid-promotion, plant corruption, restart over the same
// directory, and prove recovery serves only intact entries — warm.
//
// Iteration count comes from PRISMA_CHAOS_ITERS (default 3; ci.sh runs
// 2 in the default and asan lanes to keep the suite fast).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "dataplane/pipeline_builder.hpp"
#include "dataplane/tiering_object.hpp"
#include "ipc/wire.hpp"
#include "storage/persistent_tier_backend.hpp"
#include "storage/posix_backend.hpp"

namespace prisma::dataplane {
namespace {

namespace fs = std::filesystem;

constexpr int kFiles = 16;
constexpr std::size_t kFileBytes = 4096;

std::string FileName(int k) { return "img" + std::to_string(k); }

std::vector<std::byte> ExpectedContent(int k) {
  std::vector<std::byte> out(kFileBytes);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(k)) &
                                    0xFF);
  }
  return out;
}

int ChaosIterations() {
  if (const char* env = std::getenv("PRISMA_CHAOS_ITERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 3;
}

std::size_t CommittedEntries(const fs::path& fast_root) {
  std::error_code ec;
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& de :
       fs::directory_iterator(fast_root / "objects", ec)) {
    ++n;
  }
  return n;
}

/// Child body after fork: promote the working set through a durable
/// tiering object until the parent SIGKILLs us. Exits 2 on any setup
/// failure (which the parent reports as a test failure).
[[noreturn]] void RunChildWorkload(const fs::path& slow_root,
                                   const fs::path& fast_root) {
  auto slow = std::make_shared<storage::PosixBackend>(slow_root);
  auto fast = std::make_shared<storage::PersistentTierBackend>(
      fast_root, storage::PersistentTierOptions{});
  TieringOptions options;
  options.durable = true;
  TieringObject obj(slow, fast, options, SteadyClock::Shared());
  if (!obj.Start().ok()) _exit(2);
  std::vector<std::byte> buf(kFileBytes);
  for (int k = 0;; k = (k + 1) % kFiles) {
    if (!obj.Read(FileName(k), 0, buf).ok()) _exit(2);
  }
}

TEST(TieringChaosTest, KillMidPromotionThenRecoverWarm) {
  const int iters = ChaosIterations();
  for (int iter = 0; iter < iters; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const fs::path root = fs::path(::testing::TempDir()) /
                          ("prisma_chaos_" + std::to_string(::getpid()) + "_" +
                           std::to_string(iter));
    const fs::path slow_root = root / "slow";
    const fs::path fast_root = root / "fast";
    fs::remove_all(root);
    fs::create_directories(slow_root);

    for (int k = 0; k < kFiles; ++k) {
      const auto content = ExpectedContent(k);
      std::ofstream f(slow_root / FileName(k), std::ios::binary);
      f.write(reinterpret_cast<const char*>(content.data()),
              static_cast<std::streamsize>(content.size()));
      ASSERT_TRUE(f.good());
    }

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) RunChildWorkload(slow_root, fast_root);

    // Let promotions land, then SIGKILL mid-flight — no shutdown path
    // runs, so whatever is on disk is exactly what a crash leaves.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (CommittedEntries(fast_root) < 3 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ::kill(child, SIGKILL);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL)
        << "child exited on its own (status " << wstatus
        << ") — workload setup failed";
    const std::size_t committed = CommittedEntries(fast_root);
    ASSERT_GE(committed, 3u) << "no promotions landed before the kill";

    // Plant the damage recovery must catch on top of whatever the kill
    // left: one bit-rotted payload, one torn (truncated) entry.
    std::vector<fs::path> entries;
    for (const auto& de : fs::directory_iterator(fast_root / "objects")) {
      entries.push_back(de.path());
    }
    std::sort(entries.begin(), entries.end());
    {
      std::fstream f(entries[0],
                     std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(f.good());
      f.seekp(1);
      f.put('\x7F');
    }
    fs::resize_file(entries[1], 10);

    // Restart over the same directories, through the declarative
    // builder (the config-file path users take).
    auto tier = std::make_shared<storage::PersistentTierBackend>(
        fast_root, storage::PersistentTierOptions{});
    PipelineOptions popts;
    popts.tiering.durable = true;
    popts.fast_tier = tier;
    auto pipeline = BuildStagePipeline(
        "tiering", std::make_shared<storage::PosixBackend>(slow_root), popts,
        SteadyClock::Shared());
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    ASSERT_TRUE(pipeline->Start().ok());
    auto obj = std::static_pointer_cast<TieringObject>(
        pipeline->FindLayer("tiering"));
    ASSERT_NE(obj, nullptr);

    // Recovery discarded exactly the two planted entries (SIGKILL alone
    // cannot tear a published entry: the payload and footer are fully
    // written before the atomic rename).
    const auto rec = tier->LastRecovery();
    EXPECT_EQ(rec.discarded_corrupt, 1u);
    EXPECT_EQ(rec.discarded_torn, 1u);
    EXPECT_EQ(rec.discarded_foreign, 0u);
    EXPECT_EQ(rec.recovered, committed - 2);
    EXPECT_EQ(obj->Counters().recovered_entries, committed - 2);

    // First post-restart epoch: every byte must be intact (degraded
    // entries come from the slow tier) and the recovered residents must
    // serve as fast hits — a warm, not cold, restart.
    std::vector<std::byte> buf(kFileBytes);
    for (int k = 0; k < kFiles; ++k) {
      auto n = pipeline->Read(FileName(k), 0, buf);
      ASSERT_TRUE(n.ok()) << FileName(k) << ": " << n.status().ToString();
      ASSERT_EQ(*n, kFileBytes);
      ASSERT_EQ(buf, ExpectedContent(k)) << FileName(k) << " corrupted";
    }
    const auto counters = obj->Counters();
    EXPECT_EQ(counters.fast_hits, committed - 2);
    EXPECT_GT(counters.fast_hits, 0u);
    EXPECT_EQ(counters.fast_read_errors, 0u);

    // The new counters travel the control wire: v2 stats payload carries
    // the tiering section with fast_read_errors / recovered_entries.
    const auto payload = ipc::EncodeStatsPayload(pipeline->CollectStats());
    auto decoded = ipc::DecodeStatsPayload(payload);
    ASSERT_TRUE(decoded.ok());
    const ObjectStatsSection* section = nullptr;
    for (const auto& s : decoded->objects) {
      if (s.object == "tiering") section = &s;
    }
    ASSERT_NE(section, nullptr);
    EXPECT_EQ(section->Get("fast_read_errors", -1.0), 0.0);
    EXPECT_EQ(section->Get("recovered_entries", -1.0),
              static_cast<double>(committed - 2));
    EXPECT_EQ(section->Get("durable", -1.0), 1.0);

    pipeline->Stop();
    tier.reset();
    fs::remove_all(root);
  }
}

}  // namespace
}  // namespace prisma::dataplane
