// DES pipeline model tests (the Fig. 2-4 engines): determinism, sample
// accounting, the paper's qualitative orderings at reduced scale, and
// autotuner behaviour inside the pipelines.
#include <gtest/gtest.h>

#include "baselines/experiment.hpp"

namespace prisma::baselines {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.model = sim::ModelProfile::LeNet();
  cfg.global_batch = 256;
  cfg.epochs = 2;
  cfg.scale = 2000;  // ~640 train files per epoch: fast tests
  cfg.seed = 1;
  return cfg;
}

TEST(DatasetHelpersTest, MakeDatasetScales) {
  auto cfg = SmallConfig();
  const auto ds = MakeDataset(cfg);
  EXPECT_EQ(ds.train.NumFiles(), 1'281'167u / 2000);
  EXPECT_EQ(ds.validation.NumFiles(), 50'000u / 2000);
  const auto sizes = BuildSizeMap(ds);
  EXPECT_EQ(sizes.size(), ds.train.NumFiles() + ds.validation.NumFiles());
}

TEST(PipelinesTest, TfBaselineTrainsAllSamples) {
  auto cfg = SmallConfig();
  const auto r = RunTfBaseline(cfg);
  const auto ds = MakeDataset(cfg);
  EXPECT_EQ(r.samples_trained, cfg.epochs * ds.train.NumFiles());
  EXPECT_GT(r.elapsed_s, 0.0);
  EXPECT_GT(r.events, 0u);
}

TEST(PipelinesTest, TfOptimizedTrainsAllSamples) {
  auto cfg = SmallConfig();
  const auto r = RunTfOptimized(cfg);
  const auto ds = MakeDataset(cfg);
  EXPECT_EQ(r.samples_trained, cfg.epochs * ds.train.NumFiles());
}

TEST(PipelinesTest, PrismaTfTrainsAllSamples) {
  auto cfg = SmallConfig();
  const auto r = RunPrismaTf(cfg);
  const auto ds = MakeDataset(cfg);
  EXPECT_EQ(r.samples_trained, cfg.epochs * ds.train.NumFiles());
  EXPECT_GE(r.final_producers, 1u);
  EXPECT_LE(r.final_producers, cfg.prisma_tuner.max_producers);
}

TEST(PipelinesTest, TorchTrainsAllSamplesAllWorkerCounts) {
  auto cfg = SmallConfig();
  const auto ds = MakeDataset(cfg);
  for (const std::size_t w : {0u, 1u, 2u, 4u}) {
    const auto r = RunTorch(cfg, w);
    EXPECT_EQ(r.samples_trained, cfg.epochs * ds.train.NumFiles())
        << "workers=" << w;
  }
}

TEST(PipelinesTest, PrismaTorchTrainsAllSamples) {
  auto cfg = SmallConfig();
  const auto ds = MakeDataset(cfg);
  for (const std::size_t w : {0u, 2u}) {
    const auto r = RunPrismaTorch(cfg, w);
    EXPECT_EQ(r.samples_trained, cfg.epochs * ds.train.NumFiles())
        << "workers=" << w;
  }
}

TEST(PipelinesTest, DeterministicPerSeed) {
  auto cfg = SmallConfig();
  const auto a = RunPrismaTf(cfg);
  const auto b = RunPrismaTf(cfg);
  EXPECT_DOUBLE_EQ(a.elapsed_s, b.elapsed_s);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_producers, b.final_producers);

  cfg.seed = 2;
  const auto c = RunPrismaTf(cfg);
  EXPECT_NE(a.elapsed_s, c.elapsed_s);  // different shuffle + jitter
}

TEST(PipelinesTest, BaselineSlowerThanOptimizedOnIoBoundModel) {
  // The paper's headline (Fig. 2, LeNet): optimized setups cut training
  // time by ~half or more vs the single-threaded baseline.
  auto cfg = SmallConfig();
  cfg.scale = 500;
  const auto base = RunTfBaseline(cfg);
  const auto opt = RunTfOptimized(cfg);
  const auto prisma = RunPrismaTf(cfg);
  EXPECT_LT(opt.full_scale_estimate_s, base.full_scale_estimate_s * 0.7);
  EXPECT_LT(prisma.full_scale_estimate_s, base.full_scale_estimate_s * 0.8);
}

TEST(PipelinesTest, ComputeBoundModelUnaffected) {
  // Fig. 2, ResNet-50: "PRISMA has no impact on training time".
  auto cfg = SmallConfig();
  cfg.model = sim::ModelProfile::ResNet50();
  cfg.scale = 2000;
  const auto base = RunTfBaseline(cfg);
  const auto opt = RunTfOptimized(cfg);
  const auto prisma = RunPrismaTf(cfg);
  EXPECT_NEAR(opt.elapsed_s, base.elapsed_s, base.elapsed_s * 0.05);
  EXPECT_NEAR(prisma.elapsed_s, base.elapsed_s, base.elapsed_s * 0.05);
}

TEST(PipelinesTest, PrismaBeatsLowWorkerTorch) {
  // Fig. 4: PRISMA outperforms PyTorch with 0 and 2 workers.
  auto cfg = SmallConfig();
  cfg.scale = 500;
  const auto torch0 = RunTorch(cfg, 0);
  const auto torch2 = RunTorch(cfg, 2);
  const auto prisma = RunPrismaTorch(cfg, 2);
  EXPECT_LT(prisma.full_scale_estimate_s, torch0.full_scale_estimate_s);
  EXPECT_LT(prisma.full_scale_estimate_s, torch2.full_scale_estimate_s);
}

TEST(PipelinesTest, PrismaTorchFlatAcrossWorkerCounts) {
  // Fig. 4: "PRISMA performs similarly for different combinations of
  // PyTorch workers" — the auto-tuner removes the worker-count knob.
  auto cfg = SmallConfig();
  cfg.scale = 500;
  const auto p0 = RunPrismaTorch(cfg, 0);
  const auto p4 = RunPrismaTorch(cfg, 4);
  const auto p8 = RunPrismaTorch(cfg, 8);
  const double lo = std::min({p0.full_scale_estimate_s, p4.full_scale_estimate_s, p8.full_scale_estimate_s});
  const double hi = std::max({p0.full_scale_estimate_s, p4.full_scale_estimate_s, p8.full_scale_estimate_s});
  EXPECT_LT((hi - lo) / lo, 0.30);
}

TEST(PipelinesTest, TorchImprovesWithWorkers) {
  auto cfg = SmallConfig();
  cfg.scale = 500;
  const auto w0 = RunTorch(cfg, 0);
  const auto w4 = RunTorch(cfg, 4);
  EXPECT_LT(w4.full_scale_estimate_s, w0.full_scale_estimate_s);
}

TEST(PipelinesTest, PrismaAutotunerStaysNearDeviceKnee) {
  // Fig. 3: PRISMA uses at most ~4 concurrent threads on the NVMe
  // profile while TF-optimized allocates its whole 30-thread pool.
  auto cfg = SmallConfig();
  cfg.scale = 200;
  cfg.epochs = 3;
  const auto prisma = RunPrismaTf(cfg);
  EXPECT_LE(prisma.max_producers_seen, 6u);
  const auto opt = RunTfOptimized(cfg);
  EXPECT_EQ(opt.reader_timeline.MaxValue(), 30);
  EXPECT_LT(prisma.reader_timeline.MaxValue(),
            opt.reader_timeline.MaxValue() / 2);
}

TEST(PipelinesTest, ValidationTogglesAffectTime) {
  auto cfg = SmallConfig();
  cfg.scale = 1000;
  const auto with_val = RunPrismaTf(cfg);
  cfg.run_validation = false;
  const auto without_val = RunPrismaTf(cfg);
  EXPECT_LT(without_val.elapsed_s, with_val.elapsed_s);
}

TEST(PipelinesTest, FullScaleEstimateExcludesFixedOverheads) {
  auto cfg = SmallConfig();
  const auto r = RunTfBaseline(cfg);
  EXPECT_NEAR(r.fixed_overhead_s, ToSeconds(cfg.costs.framework_startup), 1e-9);
  const double expected = (r.elapsed_s - r.fixed_overhead_s) * cfg.scale +
                          r.fixed_overhead_s;
  EXPECT_DOUBLE_EQ(r.full_scale_estimate_s, expected);
}

TEST(PipelinesTest, TorchWorkerSpawnCountsAsFixedOverhead) {
  auto cfg = SmallConfig();
  const auto w0 = RunTorch(cfg, 0);
  const auto w2 = RunTorch(cfg, 2);
  EXPECT_GT(w2.fixed_overhead_s, w0.fixed_overhead_s);
}

TEST(PipelinesTest, ReaderTimelineCoversRun) {
  auto cfg = SmallConfig();
  const auto r = RunTfBaseline(cfg);
  EXPECT_NEAR(ToSeconds(r.reader_timeline.TotalTime()), r.elapsed_s,
              r.elapsed_s * 0.02);
  EXPECT_EQ(r.reader_timeline.MaxValue(), 1);  // single-threaded loader
}

TEST(PipelinesTest, LargerBatchHelpsOptimizedSetups) {
  // §V.A: "Contrary to TF baseline, PRISMA and TF optimized improve
  // training performance with larger batch sizes."
  auto cfg = SmallConfig();
  cfg.scale = 500;
  cfg.global_batch = 64;
  const auto opt64 = RunTfOptimized(cfg);
  const auto base64 = RunTfBaseline(cfg);
  cfg.global_batch = 256;
  const auto opt256 = RunTfOptimized(cfg);
  const auto base256 = RunTfBaseline(cfg);
  EXPECT_LT(opt256.full_scale_estimate_s, opt64.full_scale_estimate_s);
  // Baseline is storage-bound: batch size barely matters.
  EXPECT_NEAR(base256.full_scale_estimate_s, base64.full_scale_estimate_s,
              base64.full_scale_estimate_s * 0.1);
}

// --- conservation property sweep -------------------------------------------------
// For every pipeline and a grid of configurations: exactly
// epochs * train_files samples are trained, the run terminates (no
// deadlock in the coroutine plumbing), and elapsed time is positive and
// finite. This is the invariant that caught the buffer-handoff deadlock.

struct SweepCase {
  const char* pipeline;
  const char* model;
  std::size_t batch;
  std::size_t scale;
  std::size_t workers;
};

class PipelineSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelineSweepTest, ConservesSamplesAndTerminates) {
  const auto& p = GetParam();
  ExperimentConfig cfg;
  if (std::string(p.model) == "alexnet") {
    cfg.model = sim::ModelProfile::AlexNet();
  } else if (std::string(p.model) == "resnet50") {
    cfg.model = sim::ModelProfile::ResNet50();
  }
  cfg.global_batch = p.batch;
  cfg.epochs = 2;
  cfg.scale = p.scale;
  cfg.seed = 3;

  RunResult r;
  const std::string pipeline = p.pipeline;
  if (pipeline == "tf_baseline") {
    r = RunTfBaseline(cfg);
  } else if (pipeline == "tf_optimized") {
    r = RunTfOptimized(cfg);
  } else if (pipeline == "prisma_tf") {
    r = RunPrismaTf(cfg);
  } else if (pipeline == "torch") {
    r = RunTorch(cfg, p.workers);
  } else {
    r = RunPrismaTorch(cfg, p.workers);
  }

  const auto ds = MakeDataset(cfg);
  EXPECT_EQ(r.samples_trained, cfg.epochs * ds.train.NumFiles());
  EXPECT_GT(r.elapsed_s, 0.0);
  EXPECT_LT(r.elapsed_s, 1e7);
  EXPECT_GT(r.events, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineSweepTest,
    ::testing::Values(
        SweepCase{"tf_baseline", "lenet", 64, 2000, 0},
        SweepCase{"tf_baseline", "resnet50", 256, 4000, 0},
        SweepCase{"tf_optimized", "lenet", 37, 2000, 0},   // odd batch
        SweepCase{"tf_optimized", "alexnet", 256, 2000, 0},
        SweepCase{"prisma_tf", "lenet", 64, 2000, 0},
        SweepCase{"prisma_tf", "lenet", 1, 8000, 0},       // batch of 1
        SweepCase{"prisma_tf", "resnet50", 256, 4000, 0},
        SweepCase{"torch", "lenet", 256, 2000, 1},
        SweepCase{"torch", "alexnet", 100, 2000, 3},       // odd divisor
        SweepCase{"prisma_torch", "lenet", 256, 2000, 1},
        SweepCase{"prisma_torch", "lenet", 64, 2000, 5},
        SweepCase{"prisma_torch", "alexnet", 256, 2000, 8}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(info.param.pipeline) + "_" + info.param.model +
             "_b" + std::to_string(info.param.batch) + "_w" +
             std::to_string(info.param.workers);
    });

}  // namespace
}  // namespace prisma::baselines
