// Zero-copy sample path (DESIGN.md §9): buffer-pool recycling, payload
// lifetime, and the end-to-end "at most ONE consumer-path copy per
// payload byte" invariant — in-process and across the UDS boundary —
// verified with CopyAccounting deltas.
#include <gtest/gtest.h>

#include <unistd.h>

#include <numeric>
#include <vector>

#include "common/buffer_pool.hpp"
#include "dataplane/prefetch_object.hpp"
#include "dataplane/stage.hpp"
#include "frameworks/torch_adapter.hpp"
#include "ipc/uds_client.hpp"
#include "ipc/uds_server.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma {
namespace {

// --- BufferPool / SamplePayload ------------------------------------------------

TEST(BufferPoolTest, ClassIndexCoversPowerOfTwoLadder) {
  EXPECT_EQ(BufferPool::ClassIndex(0), 0u);
  EXPECT_EQ(BufferPool::ClassIndex(1), 0u);
  EXPECT_EQ(BufferPool::ClassIndex(4096), 0u);
  EXPECT_EQ(BufferPool::ClassIndex(4097), 1u);
  EXPECT_EQ(BufferPool::ClassIndex(8192), 1u);
  EXPECT_EQ(BufferPool::ClassIndex(BufferPool::kMaxChunkBytes),
            BufferPool::kNumClasses - 1);
  EXPECT_EQ(BufferPool::ClassIndex(BufferPool::kMaxChunkBytes + 1),
            BufferPool::kNumClasses);
  for (std::size_t c = 0; c < BufferPool::kNumClasses; ++c) {
    EXPECT_EQ(BufferPool::ClassIndex(BufferPool::ClassBytes(c)), c);
  }
}

TEST(BufferPoolTest, FreezeRecyclesWhenLastRefDrops) {
  auto pool = BufferPool::Create(1 << 20);
  {
    PayloadWriter w = pool->Acquire(100);
    ASSERT_TRUE(w.valid());
    EXPECT_GE(w.capacity(), 100u);
    w.span()[0] = std::byte{42};
    SamplePayload p = std::move(w).Freeze(100);
    ASSERT_TRUE(static_cast<bool>(p));
    EXPECT_EQ(p.size(), 100u);
    EXPECT_EQ(p.data()[0], std::byte{42});
    // prisma-lint: allow(no-payload-copy, refcount bump is the point: the
    // test verifies two refs share one buffer)
    SamplePayload copy = p;  // second ref
    EXPECT_EQ(pool->CachedBytes(), 0u);
    // both refs drop at scope end
  }
  const auto stats = pool->Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.recycled, 1u);
  EXPECT_EQ(pool->CachedBytes(), BufferPool::kMinChunkBytes);

  // Next acquisition of the same class is a hit on the recycled chunk.
  PayloadWriter w2 = pool->Acquire(200);
  EXPECT_EQ(pool->Stats().hits, 1u);
  EXPECT_EQ(pool->CachedBytes(), 0u);
  std::move(w2).Freeze(0);
}

TEST(BufferPoolTest, AbandonedWriterReturnsChunk) {
  auto pool = BufferPool::Create(1 << 20);
  { PayloadWriter w = pool->Acquire(10); }  // never frozen
  EXPECT_EQ(pool->Stats().recycled, 1u);
  EXPECT_EQ(pool->CachedBytes(), BufferPool::kMinChunkBytes);
}

TEST(BufferPoolTest, OversizeRequestsAreUnpooled) {
  auto pool = BufferPool::Create(1ull << 40);
  const std::size_t huge = BufferPool::kMaxChunkBytes + 1;
  PayloadWriter w = pool->Acquire(huge);
  ASSERT_TRUE(w.valid());
  EXPECT_EQ(w.capacity(), huge);
  SamplePayload p = std::move(w).Freeze(huge);
  EXPECT_EQ(p.size(), huge);
  p = SamplePayload{};  // drop — plain delete, nothing cached
  const auto stats = pool->Stats();
  EXPECT_EQ(stats.oversize, 1u);
  EXPECT_EQ(pool->CachedBytes(), 0u);
}

TEST(BufferPoolTest, CachedBytesBudgetDiscardsExcess) {
  // Budget of one min-size chunk: the second return must be discarded.
  auto pool = BufferPool::Create(BufferPool::kMinChunkBytes);
  PayloadWriter a = pool->Acquire(1);
  PayloadWriter b = pool->Acquire(1);
  std::move(a).Freeze(0);
  std::move(b).Freeze(0);
  const auto stats = pool->Stats();
  EXPECT_EQ(stats.recycled, 1u);
  EXPECT_EQ(stats.discards, 1u);
  EXPECT_EQ(pool->CachedBytes(), BufferPool::kMinChunkBytes);
}

TEST(SamplePayloadTest, AdoptAliasesVectorWithoutCopy) {
  std::vector<std::byte> bytes(32, std::byte{7});
  const std::byte* raw = bytes.data();
  SamplePayload p = SamplePayload::Adopt(std::move(bytes));
  EXPECT_EQ(p.data(), raw);  // same storage, no copy
  EXPECT_EQ(p.size(), 32u);
}

TEST(SamplePayloadTest, CopyOfOwnsIndependentBytes) {
  std::vector<std::byte> bytes(16, std::byte{9});
  SamplePayload p = SamplePayload::CopyOf(bytes);
  bytes.assign(16, std::byte{0});
  for (const std::byte b : p.span()) EXPECT_EQ(b, std::byte{9});
}

// --- end-to-end copy accounting ------------------------------------------------

class ZeroCopyStageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::SyntheticImageNetSpec spec;
    spec.num_train = 20;
    spec.num_validation = 4;
    spec.mean_file_size = 8 * 1024;
    spec.min_file_size = 1024;
    ds_ = storage::MakeSyntheticImageNet(spec);

    storage::SyntheticBackendOptions o;
    o.profile = storage::DeviceProfile::Instant();
    o.time_scale = 0.0;
    backend_ = std::make_shared<storage::SyntheticBackend>(o, ds_);

    dataplane::PrefetchOptions po;
    po.initial_producers = 2;
    po.buffer_capacity = 16;
    object_ = std::make_shared<dataplane::PrefetchObject>(
        backend_, po, SteadyClock::Shared());
    stage_ = std::make_shared<dataplane::Stage>(
        dataplane::StageInfo{"zc-job", "test", 0}, object_);
    ASSERT_TRUE(stage_->Start().ok());
  }

  void TearDown() override { stage_->Stop(); }

  storage::ImageNetDataset ds_;
  std::shared_ptr<storage::SyntheticBackend> backend_;
  std::shared_ptr<dataplane::PrefetchObject> object_;
  std::shared_ptr<dataplane::Stage> stage_;
};

TEST_F(ZeroCopyStageTest, InProcessConsumerPaysExactlyOneCopy) {
  const auto order = ds_.train.Names();
  ASSERT_TRUE(stage_->BeginEpoch(0, order).ok());

  const std::uint64_t copies_before = CopyAccounting::Copies();
  const std::uint64_t bytes_before = CopyAccounting::CopiedBytes();

  std::uint64_t total_bytes = 0;
  for (const auto& name : order) {
    const auto size = *ds_.train.SizeOf(name);
    std::vector<std::byte> dst(size);
    auto n = stage_->Read(name, 0, dst);
    ASSERT_TRUE(n.ok()) << name;
    ASSERT_EQ(*n, size);
    EXPECT_EQ(dst, storage::SyntheticContent::Generate(name, size)) << name;
    total_bytes += size;
  }

  // One counted copy per sample (buffer -> caller's dst), and the copied
  // byte count is exactly the payload byte count — nothing was copied
  // anywhere else on the consumer path.
  EXPECT_EQ(CopyAccounting::Copies() - copies_before, order.size());
  EXPECT_EQ(CopyAccounting::CopiedBytes() - bytes_before, total_bytes);
}

TEST_F(ZeroCopyStageTest, ReadRefServesBufferedSampleByReference) {
  const auto& f = ds_.train.At(0);
  ASSERT_TRUE(stage_->BeginEpoch(0, {f.name}).ok());

  auto view = stage_->ReadRef(f.name, 0, static_cast<std::size_t>(f.size));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->length, f.size);
  const auto expected = storage::SyntheticContent::Generate(f.name, f.size);
  const auto got = view->data();
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()));

  // Full consumption retires the name to pass-through territory: the
  // zero-copy path declines and Read() answers the EOF probe with 0.
  auto eof = stage_->ReadRef(f.name, f.size, 16);
  EXPECT_EQ(eof.status().code(), StatusCode::kFailedPrecondition);
  std::vector<std::byte> probe(16);
  auto n = stage_->Read(f.name, f.size, probe);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST_F(ZeroCopyStageTest, ReadRefFallsBackForUnannouncedPaths) {
  const auto& f = ds_.validation.At(0);
  auto view = stage_->ReadRef(f.name, 0, 1024);
  EXPECT_EQ(view.status().code(), StatusCode::kFailedPrecondition);
  // Read() still serves it (pass-through).
  std::vector<std::byte> dst(128);
  auto n = stage_->Read(f.name, 0, dst);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 128u);
}

TEST_F(ZeroCopyStageTest, ViewSurvivesEvictionAndEpochChurn) {
  const auto& f = ds_.train.At(1);
  ASSERT_TRUE(stage_->BeginEpoch(0, {f.name}).ok());
  auto view = stage_->ReadRef(f.name, 0, static_cast<std::size_t>(f.size));
  ASSERT_TRUE(view.ok());
  const auto expected = storage::SyntheticContent::Generate(f.name, f.size);

  // The sample is fully consumed (evicted everywhere); run another epoch
  // over the same name so its chunk would be reused were it not pinned
  // by our view's refcount.
  ASSERT_TRUE(stage_->BeginEpoch(1, {f.name}).ok());
  std::vector<std::byte> dst(static_cast<std::size_t>(f.size));
  ASSERT_TRUE(stage_->Read(f.name, 0, dst).ok());

  const auto got = view->data();
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()));
}

TEST_F(ZeroCopyStageTest, PoolRecyclesChunksAcrossEpochs) {
  const auto order = ds_.train.Names();
  std::vector<std::byte> dst(64 * 1024);

  ASSERT_TRUE(stage_->BeginEpoch(0, order).ok());
  for (const auto& name : order) {
    ASSERT_TRUE(stage_->Read(name, 0, dst).ok());
  }
  const auto after_first = object_->CollectStats();

  ASSERT_TRUE(stage_->BeginEpoch(1, order).ok());
  for (const auto& name : order) {
    ASSERT_TRUE(stage_->Read(name, 0, dst).ok());
  }
  const auto after_second = object_->CollectStats();

  // Epoch 1 populated the free lists; epoch 2 reads the same files, so
  // fresh allocations are bounded by transient in-flight overlap (buffer
  // capacity + producers), not by the file count.
  const auto miss_delta = after_second.pool_misses - after_first.pool_misses;
  const auto hit_delta = after_second.pool_hits - after_first.pool_hits;
  EXPECT_LE(miss_delta, 18u);  // capacity 16 + 2 producers
  EXPECT_GE(hit_delta, order.size() - 18u);
  EXPECT_GT(after_second.pool_cached_bytes, 0u);
}

// --- across the UDS boundary ---------------------------------------------------

class ZeroCopyUdsTest : public ZeroCopyStageTest {
 protected:
  void SetUp() override {
    ZeroCopyStageTest::SetUp();
    socket_path_ = ::testing::TempDir() + "/prisma_zc_" +
                   std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name() +
                   ".sock";
    server_ = std::make_unique<ipc::UdsServer>(socket_path_, stage_);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    ZeroCopyStageTest::TearDown();
  }

  std::string socket_path_;
  std::unique_ptr<ipc::UdsServer> server_;
};

TEST_F(ZeroCopyUdsTest, RemoteConsumerPaysExactlyOneCopy) {
  ipc::UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  const auto order = ds_.train.Names();
  ASSERT_TRUE(client.BeginEpoch(0, order).ok());

  const std::uint64_t copies_before = CopyAccounting::Copies();
  const std::uint64_t bytes_before = CopyAccounting::CopiedBytes();

  std::uint64_t total_bytes = 0;
  for (const auto& name : order) {
    const auto size = *ds_.train.SizeOf(name);
    std::vector<std::byte> dst(static_cast<std::size_t>(size));
    auto n = client.Read(name, 0, dst);
    ASSERT_TRUE(n.ok()) << name;
    ASSERT_EQ(*n, size);
    EXPECT_EQ(dst, storage::SyntheticContent::Generate(name, size)) << name;
    total_bytes += size;
  }

  // Server side serves buffered samples by reference (scatter-gather
  // sendmsg); the only counted copy is the client's recv into dst.
  EXPECT_EQ(CopyAccounting::Copies() - copies_before, order.size());
  EXPECT_EQ(CopyAccounting::CopiedBytes() - bytes_before, total_bytes);
}

TEST_F(ZeroCopyUdsTest, GetItemIntoFillsCallerBuffer) {
  frameworks::TorchWorkerClient worker;
  ASSERT_TRUE(worker.Connect(socket_path_).ok());
  const auto& f = ds_.train.At(4);
  ASSERT_TRUE(worker.AnnounceEpoch(0, {f.name}).ok());

  std::vector<std::byte> dst(static_cast<std::size_t>(f.size));
  auto n = worker.GetItemInto(f.name, dst);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, f.size);
  EXPECT_EQ(dst, storage::SyntheticContent::Generate(f.name, f.size));

  // Undersized destination is a clean OutOfRange, no partial write path.
  std::vector<std::byte> tiny(8);
  EXPECT_EQ(worker.GetItemInto(f.name, tiny).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace prisma
