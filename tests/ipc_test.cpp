// IPC tests: wire-protocol round trips and decode hardening, plus live
// UDS server/client integration against a real data-plane stage.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/rng.hpp"
#include "dataplane/pipeline_builder.hpp"
#include "dataplane/prefetch_object.hpp"
#include "ipc/uds_client.hpp"
#include "ipc/uds_server.hpp"
#include "ipc/wire.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::ipc {
namespace {

// --- wire protocol ------------------------------------------------------------

TEST(WireTest, RequestRoundTrip) {
  Request req;
  req.op = Op::kRead;
  req.path = "train/00000001.jpg";
  req.offset = 12345;
  req.length = 67890;
  req.epoch = 3;
  const auto encoded = EncodeRequest(req);
  auto decoded = DecodeRequest(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, Op::kRead);
  EXPECT_EQ(decoded->path, req.path);
  EXPECT_EQ(decoded->offset, req.offset);
  EXPECT_EQ(decoded->length, req.length);
  EXPECT_EQ(decoded->epoch, req.epoch);
}

TEST(WireTest, RequestWithNamesRoundTrip) {
  Request req;
  req.op = Op::kBeginEpoch;
  req.epoch = 7;
  for (int i = 0; i < 100; ++i) req.names.push_back("file-" + std::to_string(i));
  auto decoded = DecodeRequest(EncodeRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->names, req.names);
}

TEST(WireTest, ResponseRoundTrip) {
  Response resp;
  resp.code = StatusCode::kNotFound;
  resp.value = 987654321;
  resp.data = {std::byte{1}, std::byte{2}, std::byte{255}};
  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kNotFound);
  EXPECT_EQ(decoded->value, resp.value);
  EXPECT_EQ(decoded->data, resp.data);
}

TEST(WireTest, EmptyStringsAndData) {
  Request req;
  auto decoded = DecodeRequest(EncodeRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->path.empty());
  Response resp;
  auto dresp = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(dresp.ok());
  EXPECT_TRUE(dresp->data.empty());
}

// --- stats payload (v2: per-object sections) --------------------------------

TEST(WireTest, StatsPayloadV2RoundTrip) {
  dataplane::StageStatsSnapshot snap;
  snap.producers = 3;
  snap.buffer_capacity = 64;
  snap.buffer_occupancy = 17;
  dataplane::ObjectStatsSection prefetch;
  prefetch.object = "prefetch";
  prefetch.Set("producers", 3);
  prefetch.Set("consumer_waits", 11);
  dataplane::ObjectStatsSection tiering;
  tiering.object = "tiering";
  tiering.Set("fast_hits", 120);
  tiering.Set("migration_workers", 2);
  snap.objects = {prefetch, tiering};

  auto decoded = DecodeStatsPayload(EncodeStatsPayload(snap));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, kStatsPayloadVersion);
  EXPECT_EQ(decoded->producers, 3u);
  EXPECT_EQ(decoded->buffer_capacity, 64u);
  EXPECT_EQ(decoded->buffer_occupancy, 17u);
  ASSERT_EQ(decoded->objects.size(), 2u);
  EXPECT_EQ(decoded->objects[0].object, "prefetch");
  EXPECT_EQ(decoded->objects[0].Get("consumer_waits", 0), 11.0);
  EXPECT_EQ(decoded->objects[1].object, "tiering");
  EXPECT_EQ(decoded->objects[1].Get("fast_hits", 0), 120.0);
  EXPECT_EQ(decoded->objects[1].Get("migration_workers", 0), 2.0);
}

TEST(WireTest, StatsPayloadLegacy24ByteCompat) {
  // A v1 server sends exactly the three LE u64 legacy fields; a v2
  // client must decode them and report no sections.
  std::vector<std::byte> bytes;
  const auto put_u64 = [&bytes](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(std::byte{static_cast<unsigned char>(v >> (8 * i))});
    }
  };
  put_u64(4);    // producers
  put_u64(128);  // buffer_capacity
  put_u64(9);    // buffer_occupancy
  ASSERT_EQ(bytes.size(), kStatsLegacyBytes);

  auto decoded = DecodeStatsPayload(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->version, 1u);
  EXPECT_EQ(decoded->producers, 4u);
  EXPECT_EQ(decoded->buffer_capacity, 128u);
  EXPECT_EQ(decoded->buffer_occupancy, 9u);
  EXPECT_TRUE(decoded->objects.empty());
}

TEST(WireTest, StatsPayloadShortPayloadIsAllZero) {
  auto decoded = DecodeStatsPayload({});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->producers, 0u);
  EXPECT_TRUE(decoded->objects.empty());
}

TEST(WireTest, StatsPayloadHostileSectionCountRejected) {
  dataplane::StageStatsSnapshot snap;
  auto bytes = EncodeStatsPayload(snap);
  // Overwrite n_sections (right after the 24-byte prefix + u32 version)
  // with a count far larger than the remaining bytes could hold.
  ASSERT_GE(bytes.size(), kStatsLegacyBytes + 8);
  for (int i = 0; i < 4; ++i) {
    bytes[kStatsLegacyBytes + 4 + static_cast<std::size_t>(i)] =
        std::byte{0xFF};
  }
  EXPECT_EQ(DecodeStatsPayload(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, StatsPayloadIgnoresTrailingBytes) {
  // Forward compatibility: a future server may append more blocks after
  // the v2 sections; today's decoder must ignore them.
  dataplane::StageStatsSnapshot snap;
  snap.producers = 2;
  dataplane::ObjectStatsSection s;
  s.object = "prefetch";
  s.Set("producers", 2);
  snap.objects = {s};
  auto bytes = EncodeStatsPayload(snap);
  bytes.insert(bytes.end(), 13, std::byte{0xAB});
  auto decoded = DecodeStatsPayload(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->producers, 2u);
  ASSERT_EQ(decoded->objects.size(), 1u);
  EXPECT_EQ(decoded->objects[0].object, "prefetch");
}

TEST(WireTest, TruncatedPayloadsRejected) {
  // Property: every strict prefix of a valid encoding must fail cleanly,
  // never crash or mis-decode.
  Request req;
  req.op = Op::kBeginEpoch;
  req.path = "some/path";
  req.names = {"a", "bc", "def"};
  const auto full = EncodeRequest(req);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    auto r = DecodeRequest(std::span(full.data(), cut));
    EXPECT_FALSE(r.ok()) << "prefix length " << cut;
  }
  EXPECT_TRUE(DecodeRequest(full).ok());
}

TEST(WireTest, TrailingGarbageRejected) {
  Request req;
  req.path = "p";
  auto bytes = EncodeRequest(req);
  bytes.push_back(std::byte{0});
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(WireTest, UnknownOpcodeRejected) {
  Request req;
  auto bytes = EncodeRequest(req);
  bytes[0] = std::byte{200};
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

TEST(WireTest, UnknownStatusCodeRejected) {
  Response resp;
  auto bytes = EncodeResponse(resp);
  bytes[0] = std::byte{250};
  EXPECT_FALSE(DecodeResponse(bytes).ok());
}

class WireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzTest, MutatedPayloadsNeverCrash) {
  // Property: random single-byte corruptions of valid encodings either
  // decode to *something* or fail cleanly — never crash, never read out
  // of bounds (run under ASan/valgrind for the full guarantee).
  Xoshiro256 rng(GetParam());
  Request req;
  req.op = Op::kBeginEpoch;
  req.path = "train/00000042.jpg";
  req.offset = rng.Next();
  req.length = rng.Next();
  for (int i = 0; i < 8; ++i) {
    req.names.push_back("n" + std::to_string(rng.NextBounded(1000)));
  }
  const auto valid = EncodeRequest(req);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = valid;
    const std::size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<std::byte>(rng.Next() & 0xff);
    const auto decoded = DecodeRequest(mutated);  // must not crash
    if (decoded.ok()) {
      // Re-encoding a successfully decoded request must round-trip.
      const auto reencoded = EncodeRequest(*decoded);
      EXPECT_TRUE(DecodeRequest(reencoded).ok());
    }
  }
  // Random garbage of various sizes must also fail cleanly.
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::byte> garbage(rng.NextBounded(256));
    for (auto& b : garbage) b = static_cast<std::byte>(rng.Next() & 0xff);
    PRISMA_IGNORE_STATUS(DecodeRequest(garbage),
                         "fuzz loop: any non-crashing outcome passes");
    PRISMA_IGNORE_STATUS(DecodeResponse(garbage),
                         "fuzz loop: any non-crashing outcome passes");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(WireTest, FrameIoOverSocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::vector<std::byte> payload =
      EncodeRequest(Request{Op::kPing, "x", 1, 2, 3, {}});
  ASSERT_TRUE(WriteFrame(fds[0], payload).ok());
  auto got = ReadFrame(fds[1]);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
  ::close(fds[0]);
  auto eof = ReadFrame(fds[1]);
  EXPECT_EQ(eof.status().code(), StatusCode::kAborted);  // orderly close
  ::close(fds[1]);
}

TEST(WireTest, OversizedFramePrefixRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::byte prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::byte>((huge >> (8 * i)) & 0xff);
  }
  ASSERT_EQ(::send(fds[0], prefix, 4, 0), 4);
  auto got = ReadFrame(fds[1]);
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireTest, ScatterFrameMatchesContiguousFrame) {
  // WriteFrameV(parts) must put the exact same bytes on the wire as
  // WriteFrame(concat(parts)).
  const std::vector<std::byte> a = {std::byte{1}, std::byte{2}, std::byte{3}};
  const std::vector<std::byte> b = {};  // empty parts must be harmless
  const std::vector<std::byte> c = {std::byte{9}, std::byte{8}};
  // prisma-lint: allow(no-payload-copy, test builds the expected bytes)
  std::vector<std::byte> concat = a;
  concat.insert(concat.end(), c.begin(), c.end());

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteFrameV(fds[0], {a, b, c}).ok());
  auto got = ReadFrame(fds[1]);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, concat);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireTest, ScatterFrameAtMaxFrameBytes) {
  // 8 scatter parts aliasing one 32 MiB pattern buffer add up to exactly
  // kMaxFrameBytes; the frame far exceeds the socket buffer, so this
  // also exercises WriteFrameV's partial-send iovec advance. The reader
  // allocates the frame once and spot-checks the pattern.
  constexpr std::size_t kPartBytes = kMaxFrameBytes / 8;
  std::vector<std::byte> part(kPartBytes);
  for (std::size_t i = 0; i < part.size(); ++i) {
    part[i] = static_cast<std::byte>((i * 31 + 7) & 0xff);
  }

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread writer([&] {
    EXPECT_TRUE(
        WriteFrameV(fds[0], {part, part, part, part, part, part, part, part})
            .ok());
  });
  auto got = ReadFrame(fds[1]);
  writer.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), kMaxFrameBytes);
  for (const std::size_t at :
       {std::size_t{0}, kPartBytes - 1, kPartBytes, 3 * kPartBytes + 12345,
        static_cast<std::size_t>(kMaxFrameBytes) - 1}) {
    EXPECT_EQ((*got)[at], part[at % kPartBytes]) << at;
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireTest, ScatterFrameTooManyPartsRejected) {
  const std::vector<std::byte> p = {std::byte{0}};
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  EXPECT_EQ(WriteFrameV(fds[0], {p, p, p, p, p, p, p, p, p}).code(),
            StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireTest, RequestFrameMatchesEncodeRequest) {
  // The scatter fast path and the flat encoder must be byte-identical;
  // DecodeRequest (old servers) must keep understanding both.
  Request req;
  req.op = Op::kRead;
  req.path = "train/00000042.jpg";
  req.offset = 4096;
  req.length = 65536;
  req.epoch = 11;

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteRequestFrame(fds[0], req).ok());
  auto frame = ReadFrame(fds[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(*frame, EncodeRequest(req));

  req.op = Op::kBeginEpoch;
  req.names = {"a", "bb", "ccc"};
  ASSERT_TRUE(WriteRequestFrame(fds[0], req).ok());
  frame = ReadFrame(fds[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(*frame, EncodeRequest(req));
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireTest, StreamingResponseDecodeMatchesEncodeResponse) {
  Response resp;
  resp.code = StatusCode::kOk;
  resp.value = 77;
  resp.data.resize(1000);
  for (std::size_t i = 0; i < resp.data.size(); ++i) {
    resp.data[i] = static_cast<std::byte>(i & 0xff);
  }

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteResponseFrame(fds[0], resp.code, resp.value, resp.data).ok());
  auto header = ReadResponseHeader(fds[1]);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->code, resp.code);
  EXPECT_EQ(header->value, resp.value);
  ASSERT_EQ(header->data_len, resp.data.size());
  // Split the payload between a destination recv and a drain (the
  // client's partial-read shape).
  std::vector<std::byte> dst(600);
  ASSERT_TRUE(ReadResponseData(fds[1], dst).ok());
  ASSERT_TRUE(DrainResponseData(fds[1], header->data_len - dst.size()).ok());
  for (std::size_t i = 0; i < dst.size(); ++i) EXPECT_EQ(dst[i], resp.data[i]);

  // And the old block decoder still reads WriteResponseFrame's bytes.
  ASSERT_TRUE(WriteResponseFrame(fds[0], resp.code, resp.value, resp.data).ok());
  auto frame = ReadFrame(fds[1]);
  ASSERT_TRUE(frame.ok());
  auto decoded = DecodeResponse(*frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->data, resp.data);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireTest, ResponseHeaderRejectsLengthMismatch) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Frame claims 20 payload bytes but the header says data_len = 99.
  std::vector<std::byte> payload;
  payload.push_back(std::byte{0});                       // kOk
  for (int i = 0; i < 8; ++i) payload.push_back(std::byte{0});  // value
  const std::uint32_t bad_len = 99;
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<std::byte>((bad_len >> (8 * i)) & 0xff));
  }
  payload.resize(20);
  ASSERT_TRUE(WriteFrame(fds[0], payload).ok());
  EXPECT_EQ(ReadResponseHeader(fds[1]).status().code(),
            StatusCode::kInvalidArgument);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- UDS server/client ----------------------------------------------------------

class UdsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::SyntheticImageNetSpec spec;
    spec.num_train = 30;
    spec.num_validation = 5;
    spec.mean_file_size = 8 * 1024;
    spec.min_file_size = 1024;
    ds_ = storage::MakeSyntheticImageNet(spec);

    storage::SyntheticBackendOptions o;
    o.profile = storage::DeviceProfile::Instant();
    o.time_scale = 0.0;
    backend_ = std::make_shared<storage::SyntheticBackend>(o, ds_);

    dataplane::PrefetchOptions po;
    po.initial_producers = 2;
    po.buffer_capacity = 16;
    auto object = std::make_shared<dataplane::PrefetchObject>(
        backend_, po, SteadyClock::Shared());
    stage_ = std::make_shared<dataplane::Stage>(
        dataplane::StageInfo{"uds-job", "pytorch", 0}, object);
    ASSERT_TRUE(stage_->Start().ok());

    socket_path_ = ::testing::TempDir() + "/prisma_uds_" +
                   std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()->current_test_info()->name() +
                   ".sock";
    server_ = std::make_unique<UdsServer>(socket_path_, stage_);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    stage_->Stop();
  }

  storage::ImageNetDataset ds_;
  std::shared_ptr<storage::SyntheticBackend> backend_;
  std::shared_ptr<dataplane::Stage> stage_;
  std::string socket_path_;
  std::unique_ptr<UdsServer> server_;
};

TEST_F(UdsTest, PingRoundTrip) {
  UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(UdsTest, FileSizeThroughServer) {
  UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  const auto& f = ds_.train.At(0);
  auto size = client.FileSize(f.name);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, f.size);
  EXPECT_EQ(client.FileSize("ghost").status().code(), StatusCode::kNotFound);
}

TEST_F(UdsTest, FullEpochThroughServer) {
  UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());

  storage::EpochShuffler shuffler(ds_.train.Names(), 3);
  const auto order = shuffler.OrderFor(0);
  ASSERT_TRUE(client.BeginEpoch(0, order).ok());

  for (const auto& name : order) {
    auto data = client.ReadAll(name);
    ASSERT_TRUE(data.ok()) << name;
    const auto expected =
        storage::SyntheticContent::Generate(name, *ds_.train.SizeOf(name));
    EXPECT_EQ(*data, expected) << name;
  }
  EXPECT_GE(server_->requests_served(), order.size());
}

TEST_F(UdsTest, RemoteStats) {
  UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  const auto& f = ds_.train.At(1);
  ASSERT_TRUE(client.BeginEpoch(0, {f.name}).ok());
  auto data = client.ReadAll(f.name);
  ASSERT_TRUE(data.ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->samples_consumed, 1u);
  EXPECT_EQ(stats->producers, 2u);
  EXPECT_EQ(stats->buffer_capacity, 16u);
}

TEST_F(UdsTest, RemoteStatsCarriesObjectSections) {
  UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  const auto& f = ds_.train.At(2);
  ASSERT_TRUE(client.BeginEpoch(0, {f.name}).ok());
  ASSERT_TRUE(client.ReadAll(f.name).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  // The single-object stage reports one section, in sync with the flat
  // legacy fields (stats payload v2 over the wire).
  ASSERT_EQ(stats->objects.size(), 1u);
  EXPECT_EQ(stats->objects[0].object, "prefetch");
  EXPECT_EQ(stats->objects[0].Get("producers", 0),
            static_cast<double>(stats->producers));
  EXPECT_EQ(stats->objects[0].Get("samples_consumed", 0), 1.0);
}

TEST(UdsStackedTest, StackedStageServesPerObjectStatsOverTheWire) {
  // A `prefetch|tiering` stage behind the UDS server: the remote client
  // sees one stats section per layer and can aim namespaced knobs at the
  // inner layer through the in-process control surface.
  storage::SyntheticImageNetSpec spec;
  spec.num_train = 12;
  spec.num_validation = 2;
  spec.mean_file_size = 4 * 1024;
  spec.min_file_size = 1024;
  const auto ds = storage::MakeSyntheticImageNet(spec);
  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::Instant();
  o.time_scale = 0.0;
  auto backend = std::make_shared<storage::SyntheticBackend>(o, ds);

  dataplane::PipelineOptions opts;
  opts.prefetch.initial_producers = 1;
  opts.prefetch.buffer_capacity = 8;
  auto pipeline = dataplane::BuildStagePipeline("prefetch|tiering", backend,
                                                opts, SteadyClock::Shared());
  ASSERT_TRUE(pipeline.ok());
  auto stage = std::make_shared<dataplane::Stage>(
      dataplane::StageInfo{"stacked-job", "test", 0}, std::move(*pipeline));
  ASSERT_TRUE(stage->Start().ok());
  const std::string socket_path = ::testing::TempDir() + "/prisma_stacked_" +
                                  std::to_string(::getpid()) + ".sock";
  UdsServer server(socket_path, stage);
  ASSERT_TRUE(server.Start().ok());

  UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path).ok());
  const auto names = ds.train.Names();
  ASSERT_TRUE(client.BeginEpoch(0, names).ok());
  for (const auto& name : names) {
    auto data = client.ReadAll(name);
    ASSERT_TRUE(data.ok()) << name;
    EXPECT_EQ(*data,
              storage::SyntheticContent::Generate(name, *ds.train.SizeOf(name)));
  }

  dataplane::StageKnobs knobs;
  ASSERT_TRUE(knobs.Set("tiering.migration_workers", 2).ok());
  ASSERT_TRUE(stage->ApplyKnobs(knobs).ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->samples_consumed, names.size());
  ASSERT_EQ(stats->objects.size(), 2u);
  EXPECT_EQ(stats->objects[0].object, "prefetch");
  EXPECT_EQ(stats->objects[1].object, "tiering");
  EXPECT_EQ(stats->objects[1].Get("migration_workers", 0), 2.0);
  EXPECT_GE(stats->objects[1].Get("slow_reads", 0),
            static_cast<double>(names.size()));

  server.Stop();
  stage->Stop();
}

TEST_F(UdsTest, MultipleConcurrentClients) {
  // Mirrors the PyTorch deployment: each "worker" owns a client; the
  // shared stage serves them all.
  storage::EpochShuffler shuffler(ds_.train.Names(), 5);
  const auto order = shuffler.OrderFor(0);
  {
    UdsClient announcer;
    ASSERT_TRUE(announcer.Connect(socket_path_).ok());
    ASSERT_TRUE(announcer.BeginEpoch(0, order).ok());
  }

  constexpr int kWorkers = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      UdsClient client;
      if (!client.Connect(socket_path_).ok()) {
        ++failures;
        return;
      }
      // Worker w reads batch indices i with i % kWorkers == w.
      for (std::size_t i = w; i < order.size(); i += kWorkers) {
        auto data = client.ReadAll(order[i]);
        if (!data.ok() ||
            *data != storage::SyntheticContent::Generate(
                         order[i], *ds_.train.SizeOf(order[i]))) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(UdsTest, UnannouncedReadPassesThrough) {
  UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  const auto& f = ds_.validation.At(0);
  auto data = client.ReadAll(f.name);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), f.size);
}

TEST_F(UdsTest, RangedRead) {
  UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  const auto& f = ds_.validation.At(1);  // pass-through path: no eviction
  const auto whole = storage::SyntheticContent::Generate(f.name, f.size);
  std::vector<std::byte> buf(128);
  auto n = client.Read(f.name, 256, buf);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 128u);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(buf[i], whole[256 + i]);
}

TEST_F(UdsTest, ChunkedReadOfBufferedSample) {
  // Chunked consumption of an announced (buffered, zero-copy-served)
  // sample: odd-sized chunks, then the EOF probe must return 0.
  UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  const auto& f = ds_.train.At(2);
  ASSERT_TRUE(client.BeginEpoch(0, {f.name}).ok());

  const auto expected = storage::SyntheticContent::Generate(f.name, f.size);
  std::vector<std::byte> got;
  std::vector<std::byte> chunk(1000);
  std::uint64_t offset = 0;
  for (;;) {
    auto n = client.Read(f.name, offset, chunk);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (*n == 0) break;
    got.insert(got.end(), chunk.begin(), chunk.begin() + *n);
    offset += *n;
  }
  EXPECT_EQ(got, expected);
}

TEST_F(UdsTest, OffsetReadOfBufferedSample) {
  // A mid-file first touch takes the sample from the buffer and parks
  // the payload; the offset slice must match the synthetic content.
  UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  const auto& f = ds_.train.At(3);
  ASSERT_GT(f.size, 700u);
  ASSERT_TRUE(client.BeginEpoch(0, {f.name}).ok());

  const auto whole = storage::SyntheticContent::Generate(f.name, f.size);
  std::vector<std::byte> buf(512);
  auto n = client.Read(f.name, 200, buf);
  ASSERT_TRUE(n.ok());
  const auto want = std::min<std::size_t>(512, f.size - 200);
  ASSERT_EQ(*n, want);
  for (std::size_t i = 0; i < want; ++i) EXPECT_EQ(buf[i], whole[200 + i]);
}

TEST_F(UdsTest, HugeLengthRequestClampedToFileSize) {
  // A request asking for kMaxFrameBytes/2 on a small file must get the
  // file's bytes back — the server clamps its staging allocation to the
  // actual size instead of honoring the attacker-controlled length.
  const auto& f = ds_.validation.At(2);  // pass-through (never announced)
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path_.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  Request req;
  req.op = Op::kRead;
  req.path = f.name;
  req.offset = 0;
  req.length = kMaxFrameBytes / 2;
  ASSERT_TRUE(WriteRequestFrame(fd, req).ok());
  auto header = ReadResponseHeader(fd);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->code, StatusCode::kOk);
  EXPECT_EQ(header->value, f.size);
  ASSERT_EQ(header->data_len, f.size);
  std::vector<std::byte> data(header->data_len);
  ASSERT_TRUE(ReadResponseData(fd, data).ok());
  EXPECT_EQ(data, storage::SyntheticContent::Generate(f.name, f.size));
  ::close(fd);
}

TEST_F(UdsTest, ServerStopUnblocksClients) {
  UdsClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  server_->Stop();
  EXPECT_FALSE(client.Ping().ok());
}

TEST_F(UdsTest, ConnectToMissingSocketFailsFast) {
  UdsClient client;
  const auto status =
      client.Connect("/tmp/prisma_no_such_socket.sock", Millis{50});
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(UdsTest, StartTwiceFails) {
  EXPECT_EQ(server_->Start().code(), StatusCode::kFailedPrecondition);
}

TEST(UdsServerTest, SocketPathTooLong) {
  auto stage = std::shared_ptr<dataplane::Stage>();
  UdsServer server(std::string(200, 'x'), stage);
  EXPECT_EQ(server.Start().code(), StatusCode::kInvalidArgument);
}

// Stop() must be prompt and deterministic no matter what the connections
// are doing: idle, mid-frame, or parked on a sample that will never
// arrive (zero producers, so an announced read waits forever on the
// buffer). The reactor drains engine ops with -ECANCELED and explicitly
// does NOT wait for buffer-parked requests. Exercised on both engines.
TEST(UdsShutdownTest, StopIsPromptUnderLoad) {
  for (const auto kind : {EventEngineOptions::Kind::kAuto,
                          EventEngineOptions::Kind::kEpoll}) {
    storage::SyntheticImageNetSpec spec;
    spec.num_train = 4;
    spec.num_validation = 0;
    spec.mean_file_size = 4 * 1024;
    spec.min_file_size = 1024;
    auto ds = storage::MakeSyntheticImageNet(spec);
    storage::SyntheticBackendOptions o;
    o.profile = storage::DeviceProfile::Instant();
    o.time_scale = 0.0;
    auto backend = std::make_shared<storage::SyntheticBackend>(o, ds);

    dataplane::PrefetchOptions po;
    po.initial_producers = 0;  // announced samples are never produced
    po.buffer_capacity = 8;
    auto object = std::make_shared<dataplane::PrefetchObject>(
        backend, po, SteadyClock::Shared());
    auto stage = std::make_shared<dataplane::Stage>(
        dataplane::StageInfo{"shutdown-job", "pytorch", 0}, object);
    ASSERT_TRUE(stage->Start().ok());

    const std::string path =
        ::testing::TempDir() + "/prisma_uds_shutdown_" +
        std::to_string(::getpid()) +
        (kind == EventEngineOptions::Kind::kEpoll ? "_epoll" : "_auto") +
        ".sock";
    UdsServer::Options opts;
    opts.engine.kind = kind;
    UdsServer server(path, stage, opts);
    ASSERT_TRUE(server.Start().ok());

    // 1. An idle connection (handshake done, nothing in flight).
    UdsClient idle;
    ASSERT_TRUE(idle.Connect(path).ok());
    ASSERT_TRUE(idle.Ping().ok());

    // 2. A connection abandoned mid-frame: two bytes of a length prefix
    // leave the server's assembler waiting for the rest.
    int raw = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(raw, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const std::byte half[2] = {std::byte{0x10}, std::byte{0x00}};
    ASSERT_EQ(::write(raw, half, sizeof(half)), 2);

    // 3. A read parked on the sample buffer: the name is announced, so
    // the reactor registers an async take that no producer will satisfy.
    UdsClient parked;
    ASSERT_TRUE(parked.Connect(path).ok());
    const std::string name = ds.train.At(0).name;
    ASSERT_TRUE(parked.BeginEpoch(0, {name}).ok());
    std::thread reader([&parked, &name] {
      EXPECT_FALSE(parked.ReadAll(name).ok());
    });
    // Let the read reach the server and park before pulling the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    const auto t0 = std::chrono::steady_clock::now();
    server.Stop();
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::seconds(2))
        << "Stop() stalled on engine kind "
        << (kind == EventEngineOptions::Kind::kEpoll ? "epoll" : "auto");

    reader.join();
    EXPECT_FALSE(idle.Ping().ok());
    ::close(raw);
    stage->Stop();
  }
}

}  // namespace
}  // namespace prisma::ipc
