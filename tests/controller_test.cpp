// Controller and ControlPlane: stage attachment, collect->decide->enforce
// rounds, multi-tenant fair-share coordination, sharding, and failover.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "controlplane/controller.hpp"
#include "dataplane/prefetch_object.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::controlplane {
namespace {

using dataplane::PrefetchObject;
using dataplane::PrefetchOptions;
using dataplane::Stage;
using dataplane::StageInfo;
using dataplane::StageKnobs;

std::shared_ptr<Stage> MakeStage(const std::string& id,
                                 std::uint32_t initial_producers = 1) {
  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::Instant();
  o.time_scale = 0.0;
  auto backend = std::make_shared<storage::SyntheticBackend>(o);
  PrefetchOptions po;
  po.initial_producers = initial_producers;
  po.max_producers = 32;
  auto object =
      std::make_shared<PrefetchObject>(backend, po, SteadyClock::Shared());
  auto stage = std::make_shared<Stage>(StageInfo{id, "test", 0}, object);
  EXPECT_TRUE(stage->Start().ok());
  return stage;
}

PolicyFactory FixedFactory(std::uint32_t producers, std::size_t buffer) {
  return [=] {
    StageKnobs knobs;
    knobs.producers = producers;
    knobs.buffer_capacity = buffer;
    return std::make_unique<FixedKnobsPolicy>(knobs);
  };
}

ControllerOptions FastOptions() {
  ControllerOptions o;
  o.poll_interval = Millis{5};
  return o;
}

// --- ComputeFairShares ----------------------------------------------------------

TEST(FairShareTest, EveryStageGetsAtLeastOne) {
  std::vector<StageDemand> demands(4);
  for (auto& d : demands) d.requested = 8;
  const auto shares = ComputeFairShares(demands, 2);  // budget < stages
  for (const auto s : shares) EXPECT_EQ(s, 1u);
}

TEST(FairShareTest, BudgetFullyDealtWhenDemanded) {
  std::vector<StageDemand> demands(3);
  for (auto& d : demands) {
    d.requested = 10;
    d.starvation = 0.5;
  }
  const auto shares = ComputeFairShares(demands, 12);
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), 0u), 12u);
  for (const auto s : shares) EXPECT_EQ(s, 4u);  // symmetric demands
}

TEST(FairShareTest, HungrierStageGetsMore) {
  std::vector<StageDemand> demands(2);
  demands[0].requested = 10;
  demands[0].starvation = 0.9;
  demands[1].requested = 10;
  demands[1].starvation = 0.1;
  const auto shares = ComputeFairShares(demands, 10);
  EXPECT_GT(shares[0], shares[1]);
  EXPECT_EQ(shares[0] + shares[1], 10u);
}

TEST(FairShareTest, SatisfiedStagesDontHoardBudget) {
  std::vector<StageDemand> demands(2);
  demands[0].requested = 2;  // only wants 2
  demands[0].starvation = 1.0;
  demands[1].requested = 20;
  demands[1].starvation = 0.5;
  const auto shares = ComputeFairShares(demands, 16);
  EXPECT_EQ(shares[0], 2u);
  EXPECT_EQ(shares[1], 14u);
}

TEST(FairShareTest, LeftoverBudgetStaysIdle) {
  std::vector<StageDemand> demands(2);
  demands[0].requested = 2;
  demands[1].requested = 3;
  const auto shares = ComputeFairShares(demands, 100);
  EXPECT_EQ(shares[0], 2u);
  EXPECT_EQ(shares[1], 3u);
}

TEST(FairShareTest, EmptyInput) {
  EXPECT_TRUE(ComputeFairShares({}, 10).empty());
}

struct FairShareCase {
  std::size_t stages;
  std::uint32_t budget;
};

class FairShareSweep : public ::testing::TestWithParam<FairShareCase> {};

TEST_P(FairShareSweep, InvariantsHold) {
  const auto& p = GetParam();
  std::vector<StageDemand> demands(p.stages);
  for (std::size_t i = 0; i < p.stages; ++i) {
    demands[i].requested = static_cast<std::uint32_t>(1 + i % 7);
    demands[i].starvation = 0.1 * static_cast<double>(i % 5);
  }
  const auto shares = ComputeFairShares(demands, p.budget);
  ASSERT_EQ(shares.size(), p.stages);
  std::uint32_t total = 0;
  std::uint32_t requested_total = 0;
  for (std::size_t i = 0; i < p.stages; ++i) {
    EXPECT_GE(shares[i], 1u);  // floor
    EXPECT_LE(shares[i], std::max<std::uint32_t>(demands[i].requested, 1));
    total += shares[i];
    requested_total += std::max<std::uint32_t>(demands[i].requested, 1);
  }
  // Work conserving up to demand, never above max(budget, floor).
  const std::uint32_t floor_total = static_cast<std::uint32_t>(p.stages);
  EXPECT_LE(total, std::max(p.budget, floor_total));
  EXPECT_LE(total, requested_total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FairShareSweep,
    ::testing::Values(FairShareCase{1, 1}, FairShareCase{1, 16},
                      FairShareCase{3, 2}, FairShareCase{4, 16},
                      FairShareCase{8, 8}, FairShareCase{8, 64},
                      FairShareCase{16, 33}));

// --- Controller -------------------------------------------------------------------

TEST(ControllerTest, AttachRejectsDuplicates) {
  Controller c("c0", FastOptions(), FixedFactory(2, 16),
               SteadyClock::Shared());
  auto stage = MakeStage("s1");
  EXPECT_TRUE(c.Attach(stage).ok());
  EXPECT_EQ(c.Attach(stage).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(c.NumStages(), 1u);
  stage->Stop();
}

TEST(ControllerTest, DetachRemoves) {
  Controller c("c0", FastOptions(), FixedFactory(2, 16),
               SteadyClock::Shared());
  auto stage = MakeStage("s1");
  ASSERT_TRUE(c.Attach(stage).ok());
  EXPECT_TRUE(c.Detach("s1").ok());
  EXPECT_EQ(c.Detach("s1").code(), StatusCode::kNotFound);
  EXPECT_EQ(c.NumStages(), 0u);
  stage->Stop();
}

TEST(ControllerTest, TickAppliesPolicyKnobs) {
  Controller c("c0", FastOptions(), FixedFactory(4, 64),
               SteadyClock::Shared());
  auto stage = MakeStage("s1", /*initial_producers=*/1);
  ASSERT_TRUE(c.Attach(stage).ok());
  c.TickOnce();
  const auto stats = stage->CollectStats();
  EXPECT_EQ(stats.producers, 4u);
  EXPECT_EQ(stats.buffer_capacity, 64u);
  stage->Stop();
}

TEST(ControllerTest, ObservationsExposeStats) {
  Controller c("c0", FastOptions(), FixedFactory(2, 16),
               SteadyClock::Shared());
  auto s1 = MakeStage("a");
  auto s2 = MakeStage("b");
  ASSERT_TRUE(c.Attach(s1).ok());
  ASSERT_TRUE(c.Attach(s2).ok());
  c.TickOnce();
  const auto obs = c.LastObservations();
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].stage_id, "a");
  EXPECT_EQ(obs[1].stage_id, "b");
  s1->Stop();
  s2->Stop();
}

TEST(ControllerTest, GlobalBudgetCapsProducers) {
  // Two stages each *requesting* 8 producers, budget 6: coordination must
  // cap the total (the paper's shared-resource argument, §II).
  ControllerOptions o = FastOptions();
  o.global_producer_budget = 6;
  Controller c("c0", o, FixedFactory(8, 16), SteadyClock::Shared());
  auto s1 = MakeStage("a");
  auto s2 = MakeStage("b");
  ASSERT_TRUE(c.Attach(s1).ok());
  ASSERT_TRUE(c.Attach(s2).ok());
  c.TickOnce();
  const auto p1 = s1->CollectStats().producers;
  const auto p2 = s2->CollectStats().producers;
  EXPECT_LE(p1 + p2, 6u);
  EXPECT_GE(p1, 1u);
  EXPECT_GE(p2, 1u);
  s1->Stop();
  s2->Stop();
}

TEST(ControllerTest, BackgroundLoopTicksPeriodically) {
  Controller c("c0", FastOptions(), FixedFactory(3, 24),
               SteadyClock::Shared());
  auto stage = MakeStage("s1");
  ASSERT_TRUE(c.Attach(stage).ok());
  ASSERT_TRUE(c.RunInBackground().ok());
  EXPECT_EQ(c.RunInBackground().code(), StatusCode::kFailedPrecondition);
  std::this_thread::sleep_for(Millis{50});
  c.Stop();
  c.Stop();  // idempotent
  EXPECT_EQ(stage->CollectStats().producers, 3u);
  stage->Stop();
}

TEST(ControllerTest, PrismaPolicyDrivesRealStage) {
  // Wire the real autotune policy to a real stage and verify ticks apply
  // its initial knobs without blowing up on an idle stage.
  auto factory = [] {
    AutotunerOptions o;
    o.period_min_inserts = 10;
    o.period_max_ticks = 2;
    return std::make_unique<PrismaAutotunePolicy>(o);
  };
  Controller c("c0", FastOptions(), factory, SteadyClock::Shared());
  auto stage = MakeStage("s1");
  ASSERT_TRUE(c.Attach(stage).ok());
  for (int i = 0; i < 5; ++i) c.TickOnce();
  EXPECT_EQ(stage->CollectStats().producers, 1u);  // idle: stays at min
  stage->Stop();
}

// --- ControlPlane -------------------------------------------------------------------

TEST(ControlPlaneTest, ShardsStagesRoundRobin) {
  ControlPlane plane(3, FastOptions(), FixedFactory(2, 16),
                     SteadyClock::Shared());
  std::vector<std::shared_ptr<Stage>> stages;
  for (int i = 0; i < 6; ++i) {
    stages.push_back(MakeStage("s" + std::to_string(i)));
    ASSERT_TRUE(plane.Attach(stages.back()).ok());
  }
  EXPECT_EQ(plane.controller(0).NumStages(), 2u);
  EXPECT_EQ(plane.controller(1).NumStages(), 2u);
  EXPECT_EQ(plane.controller(2).NumStages(), 2u);
  for (auto& s : stages) s->Stop();
}

TEST(ControlPlaneTest, TickReachesAllStages) {
  ControlPlane plane(2, FastOptions(), FixedFactory(5, 40),
                     SteadyClock::Shared());
  std::vector<std::shared_ptr<Stage>> stages;
  for (int i = 0; i < 4; ++i) {
    stages.push_back(MakeStage("s" + std::to_string(i)));
    ASSERT_TRUE(plane.Attach(stages.back()).ok());
  }
  plane.TickOnce();
  for (auto& s : stages) {
    EXPECT_EQ(s->CollectStats().producers, 5u) << s->info().id;
    s->Stop();
  }
}

TEST(ControlPlaneTest, FailoverReassignsStages) {
  ControlPlane plane(2, FastOptions(), FixedFactory(2, 16),
                     SteadyClock::Shared());
  std::vector<std::shared_ptr<Stage>> stages;
  for (int i = 0; i < 4; ++i) {
    stages.push_back(MakeStage("s" + std::to_string(i)));
    ASSERT_TRUE(plane.Attach(stages.back()).ok());
  }
  ASSERT_TRUE(plane.FailController(0).ok());
  // Survivor owns everything; ticks still reach every stage.
  EXPECT_EQ(plane.controller(1).NumStages(), 4u);
  plane.TickOnce();
  for (auto& s : stages) {
    EXPECT_EQ(s->CollectStats().producers, 2u);
    s->Stop();
  }
}

TEST(ControlPlaneTest, CannotFailLastController) {
  ControlPlane plane(2, FastOptions(), FixedFactory(2, 16),
                     SteadyClock::Shared());
  ASSERT_TRUE(plane.FailController(0).ok());
  EXPECT_FALSE(plane.FailController(1).ok());
  EXPECT_EQ(plane.FailController(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(plane.FailController(9).ok());
}

TEST(ControlPlaneTest, AttachAfterFailoverSkipsDeadController) {
  ControlPlane plane(2, FastOptions(), FixedFactory(2, 16),
                     SteadyClock::Shared());
  ASSERT_TRUE(plane.FailController(0).ok());
  auto stage = MakeStage("late");
  ASSERT_TRUE(plane.Attach(stage).ok());
  EXPECT_EQ(plane.controller(1).NumStages(), 1u);
  stage->Stop();
}

}  // namespace
}  // namespace prisma::controlplane
