// prisma-lint fixture: the sanctioned hot-path escape hatches. Pure hot
// functions, hot->hot trust (the callee is audited at its own
// definition), reasoned allow() suppressions for deliberate steady-state
// allocations, and cold functions allocating freely. Fixtures are
// lexed, never compiled.
namespace fixture {

// Pure: arithmetic and pointer walks only.
PRISMA_HOT_PATH int Sum(const int* p, int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) total += p[i];
  return total;
}

// Hot->hot trust: calls to other PRISMA_HOT_PATH functions are not
// re-audited here.
PRISMA_HOT_PATH int SumTwice(const int* p, int n) {
  return Sum(p, n) + Sum(p, n);
}

// Reasoned suppression: a deliberate amortized allocation.
PRISMA_HOT_PATH void Park(std::vector<int>& v, int x) {
  // prisma-lint: allow(hot-path-purity, amortized growth: capacity
  // reaches the high-water mark and stays there)
  v.push_back(x);
}

// Cold functions allocate freely; only PRISMA_HOT_PATH roots are audited.
void ColdSetup(std::vector<int>& v) {
  v.reserve(1024);
  int* scratch = new int[16];
  delete[] scratch;
}

}  // namespace fixture
