// prisma-lint fixture: the sanctioned lifetime patterns view-escape
// must NOT flag — returning a refcounted SampleView built from a local
// payload (the view shares ownership, nothing borrows the frame),
// returning a view rooted in a parameter (the caller owns the storage),
// owning conversions (std::string(view)), copy-capturing a refcounted
// SampleView into a deferred task, ref-capturing a view in a lambda
// that runs inline (no deferred sink), and storing a refcounted view
// into a member. Fixtures are lexed, never compiled.
namespace fixture {

Result<SampleView> ReturnRefcounted() {
  SamplePayload payload = MakePayload();
  return SampleView{std::move(payload), 0, payload_size};
}

std::string_view ReturnParamRooted(std::string_view name) {
  std::string_view view = name.substr(1);
  return view;
}

std::string ReturnOwningConversion(std::string_view view) {
  return std::string(view);
}

void SubmitRefcountedByValue(ThreadPool& pool) {
  SampleView view = MakeView();
  pool.Submit([view = std::move(view)] { Consume(view); });
}

void InlineLambdaMayBorrow() {
  std::vector<std::byte> buf = Load();
  std::span<const std::byte> view = buf;
  ApplyInline([&view] { Consume(view); });
}

class RefcountedCache {
 public:
  void Remember(SamplePayload&& payload) {
    window_ = SampleView{std::move(payload), 0, 16};
  }

 private:
  SampleView window_;
};

}  // namespace fixture
