// prisma-lint fixture: mutable members of a Mutex-owning class without
// GUARDED_BY and without an unguarded(<reason>) suppression must be
// flagged by guarded-by-coverage.
namespace fixture {

enum class LockRank { kUnranked = -1, kLeaf = 1 };

class Cache {
 public:
  void Touch();

 private:
  Mutex mu_{LockRank::kLeaf};
  int hits_ = 0;
  std::string name_;
};

}  // namespace fixture
