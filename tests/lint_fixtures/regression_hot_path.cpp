// prisma-lint fixture: freezes the real hot-path-purity violation the
// linter caught in src/ipc/wire.cpp before it was fixed. Every served
// read built the 13-byte response header in a heap vector — a reserve
// plus three growth calls per reply. The fix builds the header in a
// stack array via PutU8At/PutU32At/PutU64At; this fixture pins the
// detection (including the interprocedural witness chains through the
// Put* helpers) that forced the change. Fixtures are lexed, never
// compiled.
namespace fixture {

void PutU8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void PutU32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

// The pre-fix shape: one heap header per served read.
PRISMA_HOT_PATH
Status WriteResponseFrame(int fd, StatusCode code, std::uint64_t value,
                          std::span<const std::byte> data) {
  std::vector<std::byte> head;
  head.reserve(13);
  PutU8(head, static_cast<std::uint8_t>(code));
  PutU64(head, value);
  PutU32(head, static_cast<std::uint32_t>(data.size()));
  return WriteFrameV(fd, {head, data});
}

}  // namespace fixture
