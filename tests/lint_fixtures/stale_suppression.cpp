// prisma-lint fixture: dead suppression markers the stale scanner must
// report — an allow whose finding no longer exists (same-line and
// comment-line-above forms) and an allow naming a check that never
// fires here. The one live marker (it suppresses a real naked Wait)
// must NOT be reported, and backtick-quoted mentions like
// `// prisma-lint: allow(no-raw-sync)` in prose never arm at all.
// Fixtures are lexed, never compiled.
namespace fixture {

void MarkerOutlivedItsFinding(Mutex& mu) {
  MutexLock lock(mu);  // prisma-lint: allow(no-raw-sync, predates the Mutex wrapper)
  Serve();
}

void MarkerNamesTheWrongCheck() {
  // prisma-lint: allow(no-payload-copy, nothing here copies a payload)
  Serve();
}

void LiveMarkerStaysQuiet(Mutex& mu, CondVar& cv) {
  MutexLock lock(mu);
  // prisma-lint: allow(cv-wait-predicate, single bounded sleep by design)
  cv.Wait(mu);
}

}  // namespace fixture
