// prisma-lint fixture: the sanctioned wait shapes cv-wait-predicate
// must NOT flag — the canonical `while (!cond) cv.Wait(mu);`
// (braceless and braced), a deadline wait re-checked in the loop
// condition, a do/while that re-checks after waking, and a wait inside
// a for(;;) poll loop. Fixtures are lexed, never compiled.
namespace fixture {

void CanonicalBraceless(Mutex& mu, CondVar& cv, const bool& ready) {
  MutexLock lock(mu);
  while (!ready) cv.Wait(mu);
}

void CanonicalBraced(Mutex& mu, CondVar& cv, const Queue& q) {
  MutexLock lock(mu);
  while (q.empty()) {
    cv.Wait(mu);
  }
}

bool DeadlineRechecked(Mutex& mu, CondVar& cv, const bool& ready,
                       TimePoint deadline) {
  MutexLock lock(mu);
  while (!ready) {
    if (!cv.WaitUntil(mu, deadline)) {
      return false;
    }
  }
  return true;
}

void RecheckAfterWake(Mutex& mu, CondVar& cv, const Queue& q) {
  MutexLock lock(mu);
  do {
    cv.Wait(mu);
  } while (q.empty());
}

void PollLoop(Mutex& mu, CondVar& cv, const bool& stop, Duration tick) {
  MutexLock lock(mu);
  for (;;) {
    if (stop) {
      break;
    }
    cv.WaitFor(mu, tick);
  }
}

}  // namespace fixture
