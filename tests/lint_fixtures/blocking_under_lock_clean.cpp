// prisma-lint fixture: the sanctioned shapes around blocking work —
// hoist out of the critical section, toggle the lock off around the
// I/O, or carry a reasoned allow() — produce no findings.
namespace fixture {

enum class LockRank { kUnranked = -1, kLeaf = 1 };

class Writer {
 public:
  // Shape 1: copy state out under the lock, block after scope exit.
  void FlushHoisted() {
    int fd = -1;
    {
      MutexLock lock(mu_);
      fd = fd_;
    }
    fsync(fd);
  }

  // Shape 2: explicitly drop the lock across the blocking region.
  void FlushToggled() {
    MutexLock lock(mu_);
    const int fd = fd_;
    lock.Unlock();
    fsync(fd);
    lock.Lock();
    ++flushes_;
  }

  // Shape 3: a reviewed exception with a stated reason.
  void FlushPinned() {
    MutexLock lock(mu_);
    // prisma-lint: allow(no-blocking-under-lock, bounded tmpfs write; measured sub-microsecond)
    write(fd_, nullptr, 0);
  }

 private:
  Mutex mu_{LockRank::kLeaf};
  int fd_ GUARDED_BY(mu_) = -1;
  int flushes_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
