// prisma-lint fixture: view-escape findings silenced by reasoned
// allow markers — same-line and comment-line-above forms. Every marker
// here suppresses a live finding, so the stale-suppression scanner
// must stay quiet too. Fixtures are lexed, never compiled.
namespace fixture {

std::string_view ReturnStaticBacked() {
  static std::string interned = ComputeName();
  // The root tracker sees a function-local owner; `static` gives it
  // process lifetime, which only the author can vouch for.
  // prisma-lint: allow(view-escape, interned string has process lifetime)
  return interned;
}

class PinnedCache {
 public:
  void Remember(std::span<const std::byte> bytes) {
    window_ = bytes;  // prisma-lint: allow(view-escape, caller pins the pool page)
  }

 private:
  std::span<const std::byte> window_;
};

void SubmitJoinedBeforeExit(ThreadPool& pool) {
  std::vector<std::byte> block = Load();
  std::span<const std::byte> view = block;
  // prisma-lint: allow(view-escape, pool.Drain() below joins the task)
  pool.Submit([&view] { Consume(view); });
  pool.Drain();
}

}  // namespace fixture
