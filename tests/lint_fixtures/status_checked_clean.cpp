// prisma-lint fixture: the sanctioned ways to consume a Status/Result —
// propagate it, branch on it, or discard it with a stated reason via
// PRISMA_IGNORE_STATUS — produce no findings. File-scope declarations
// of Status-returning functions are declarations, not dropped calls.
namespace fixture {

Status Flush();
Result<int> Parse(const char* s);
void Use(int v);

Status Propagates() {
  if (Status s = Flush(); !s.ok()) return s;
  return Flush();
}

void Consumes() {
  PRISMA_IGNORE_STATUS(Flush(), "shutdown path; the socket is already gone");
  const auto r = Parse("x");
  if (r.ok()) Use(*r);
}

}  // namespace fixture
