// prisma-lint fixture: a PRISMA_HOT_PATH function must not allocate or
// block — directly or through any call chain in the index — and every
// finding prints the full witness chain back to the primitive site.
// Fixtures are lexed, never compiled.
namespace fixture {

// Direct allocations, one per form the analyzer recognizes.
PRISMA_HOT_PATH void DirectAllocs(std::vector<int>& v) {
  int* p = new int[8];
  void* m = malloc(32);
  auto s = std::make_shared<int>(7);
  v.push_back(1);
  std::string name("hot");
}

// Direct blocking primitive.
PRISMA_HOT_PATH void DirectBlock(int fd, void* buf) {
  ::read(fd, buf, 16);
}

// Interprocedural: the allocation hides two calls down; the finding
// carries the whole chain (TakeFast -> Refill -> Grow -> reserve).
void Grow(std::vector<int>& v) { v.reserve(64); }
void Refill(std::vector<int>& v) { Grow(v); }
PRISMA_HOT_PATH void TakeFast(std::vector<int>& v) { Refill(v); }

// Interprocedural blocking chain through a helper.
void Flush(int fd) { ::fsync(fd); }
PRISMA_HOT_PATH void Commit(int fd) { Flush(fd); }

}  // namespace fixture
