// prisma-lint fixture: legal acquisition orders produce no findings —
// descending ranks (outermost highest), and same-rank nesting, which
// the static check defers to the runtime construction-order validator.
namespace fixture {

enum class LockRank { kUnranked = -1, kShard = 6, kStage = 8, kController = 10 };

class Ordered {
 public:
  void Good() {
    MutexLock outer(controller_mu_);
    MutexLock inner(shard_mu_);
  }

 private:
  Mutex shard_mu_{LockRank::kShard};
  Mutex controller_mu_{LockRank::kController};
};

class SameRankPair {
 public:
  void Nested() {
    MutexLock a(first_mu_);
    MutexLock b(second_mu_);  // equal ranks: runtime validator decides
  }

 private:
  Mutex first_mu_{LockRank::kStage};
  Mutex second_mu_{LockRank::kStage};
};

}  // namespace fixture
