// prisma-lint fixture: silently dropping a Status/Result — as a bare
// expression statement or behind a bare (void) cast — must be flagged
// by status-checked.
namespace fixture {

Status Flush();
Result<int> Parse(const char* s);

void Caller() {
  Flush();
  (void)Parse("x");
}

}  // namespace fixture
