// prisma-lint fixture: a cv-wait-predicate finding silenced by a
// reasoned allow marker — a deliberate single bounded wait used as a
// throttle, where a spurious early wake is harmless. The marker
// suppresses a live finding, so the stale-suppression scanner must
// stay quiet. Fixtures are lexed, never compiled.
namespace fixture {

void ThrottleTick(Mutex& mu, CondVar& cv, Duration tick) {
  MutexLock lock(mu);
  // prisma-lint: allow(cv-wait-predicate, pure rate limiter; waking early is fine)
  cv.WaitFor(mu, tick);
}

}  // namespace fixture
