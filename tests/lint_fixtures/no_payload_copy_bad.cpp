// prisma-lint fixture: every copy form of a heavy payload type
// (Sample, SamplePayload, SampleView, std::vector<std::byte>) that
// no-payload-copy must flag — by-value parameters, copy-initialization
// from an lvalue, per-element range-for copies, lambda capture-by-copy,
// and paren/brace copy-construction from a tracked heavy name.
// Fixtures are lexed, never compiled.
namespace fixture {

void ByValue(Sample sample) {}
void ByValueVec(std::vector<std::byte> bytes) {}

void CopyInit(const Sample& in, const SamplePayload& payload) {
  Sample dup = in;
  SamplePayload second = payload;
}

void RangeFor(const std::vector<Sample>& samples) {
  for (Sample s : samples) {
    Use(s);
  }
}

void Capture(const SampleView& view) {
  auto plain = [view] { return view; };
  auto init = [v = view] { return v; };
}

void ParenCopy(const std::vector<std::byte>& a) {
  std::vector<std::byte> b(a);
  std::vector<std::byte> c{a};
}

}  // namespace fixture
