// prisma-lint fixture: a use-after-move finding silenced by a reasoned
// allow marker. The marker suppresses a live finding, so the
// stale-suppression scanner must stay quiet. Fixtures are lexed, never
// compiled.
namespace fixture {

void ProbeMovedFromState() {
  std::vector<std::byte> bytes = Load();
  Take(std::move(bytes));
  // prisma-lint: allow(use-after-move, asserting the moved-from vector is empty)
  Check(bytes.empty());
}

}  // namespace fixture
