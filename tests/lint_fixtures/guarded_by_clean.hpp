// prisma-lint fixture: every sanctioned way for a member of a
// Mutex-owning class to escape guarded-by-coverage, plus a class with
// no mutex at all (whose members are never candidates).
namespace fixture {

enum class LockRank { kUnranked = -1, kLeaf = 1 };

class Cache {
 public:
  void Touch();

 private:
  Mutex mu_{LockRank::kLeaf};
  int hits_ GUARDED_BY(mu_) = 0;
  std::atomic<int> total_{0};
  const int capacity_ = 16;
  Mutex* parent_ = nullptr;  // a reference to someone else's lock
  // prisma-lint: unguarded(immutable after construction)
  std::string name_;
};

struct PlainConfig {
  int workers = 1;
  bool verbose = false;
};

}  // namespace fixture
