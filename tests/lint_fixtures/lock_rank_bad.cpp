// prisma-lint fixture: acquiring a higher-ranked mutex while holding a
// lower-ranked one — directly, and through a call that acquires down
// the call graph — must be flagged by lock-rank-static.
namespace fixture {

enum class LockRank { kUnranked = -1, kLeaf = 1, kShard = 6, kController = 10 };

class Inverted {
 public:
  void Bad() {
    MutexLock inner(shard_mu_);
    MutexLock outer(controller_mu_);  // rank 10 after rank 6
  }

 private:
  Mutex shard_mu_{LockRank::kShard};
  Mutex controller_mu_{LockRank::kController};
};

// Indirect: the callee acquires kController while the caller holds
// kShard.
class Registry {
 public:
  void Touch() { MutexLock lock(mu_); }

 private:
  Mutex mu_{LockRank::kController};
};

class Shard {
 public:
  void Bad(Registry& r) {
    MutexLock lock(mu_);
    r.Touch();
  }

 private:
  Mutex mu_{LockRank::kShard};
};

}  // namespace fixture
