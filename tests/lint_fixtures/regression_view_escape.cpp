// prisma-lint fixture: freezes the real view-escape report the linter
// raised on src/dataplane/prefetch_object.cpp (ReadRef) when the
// lifetime pass first ran on this tree. ReadRef copies a refcounted
// SamplePayload out of the cache into a local and returns a SampleView
// built from it. The naive version — returning a span carved out of
// the local payload's bytes — really does dangle, and the pass must
// keep flagging it. The shipped version moves the payload INTO the
// SampleView, which shares ownership; the engine initially flagged
// that too, and the fix taught ResolveBorrow that a SampleView{...}
// construction is refcounted on the spot. This fixture pins both
// sides of that boundary. Fixtures are lexed, never compiled.
namespace fixture {

// The dangling shape: the span borrows the local payload's bytes and
// the payload dies with the frame.
std::span<const std::byte> ReadRefPreFix(const Key& key, std::size_t offset,
                                         std::size_t n) {
  SamplePayload payload = LookupTaken(key);
  std::span<const std::byte> view = payload.bytes().subspan(offset, n);
  return view;
}

// The shipped shape: the view takes shared ownership of the payload,
// so nothing borrows frame storage. Must stay clean.
Result<SampleView> ReadRefPostFix(const Key& key, std::size_t offset,
                                  std::size_t n) {
  SamplePayload payload = LookupTaken(key);
  return SampleView{std::move(payload), offset, n};
}

}  // namespace fixture
