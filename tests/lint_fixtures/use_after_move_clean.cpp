// prisma-lint fixture: moved-from locals brought back to life the
// sanctioned ways — reassignment, reset()/clear()/assign(), a move on
// only one branch (the tracker un-moves when the branch scope closes),
// and a move as the last use. None of these may fire use-after-move.
// Fixtures are lexed, never compiled.
namespace fixture {

void ReassignThenUse() {
  SamplePayload payload = MakePayload();
  Consume(std::move(payload));
  payload = MakePayload();
  Serve(payload);
}

void ResetThenUse() {
  PayloadWriter writer = MakeWriter();
  Commit(std::move(writer));
  writer.reset();
  writer.Append(kMore);
}

void ClearThenUse() {
  std::vector<std::byte> bytes = Load();
  Take(std::move(bytes));
  bytes.clear();
  Reserve(bytes.size());
}

void BranchMoveThenUse(bool flip) {
  Sample sample = MakeSample();
  if (flip) {
    Sink(std::move(sample));
    return;
  }
  Log(sample.path);
}

void MoveIsLastUse() {
  Sample sample = MakeSample();
  Log(sample.path);
  Sink(std::move(sample));
}

}  // namespace fixture
