// prisma-lint fixture: the sanctioned ways to hand a heavy payload
// around — references, moves, reference captures, sized construction
// (the buffer's birth, not a copy), and the reasoned allow() form for
// deliberate refcount bumps. Fixtures are lexed, never compiled.
namespace fixture {

void ByRef(const Sample& sample) { Use(sample); }

void Sink(Sample&& sample) {
  Sample local = std::move(sample);
  Use(local);
}

void RefFor(const std::vector<Sample>& samples) {
  for (const Sample& s : samples) {
    Use(s);
  }
}

void CaptureRef(SampleView& view) {
  auto byref = [&view] { return view.size(); };
}

// Sized construction allocates the buffer but copies nothing.
void Sized(std::size_t n) {
  std::vector<std::byte> buf(n);
  Fill(buf);
}

// Deliberate refcount bump, documented at the site.
void Alias(const SamplePayload& p) {
  // prisma-lint: allow(no-payload-copy, refcount bump only: SamplePayload
  // copies share the underlying bytes)
  SamplePayload ref = p;
  Use(ref);
}

}  // namespace fixture
