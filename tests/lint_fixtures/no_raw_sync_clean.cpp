// prisma-lint fixture: the sanctioned synchronization vocabulary —
// ranked prisma::Mutex, MutexLock, CondVar — produces no findings.
namespace fixture {

enum class LockRank { kUnranked = -1, kLeaf = 1 };

class Counter {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++n_;
  }

 private:
  Mutex mu_{LockRank::kLeaf};
  CondVar changed_;
  int n_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
