// prisma-lint fixture: every naked-wait form cv-wait-predicate must
// flag — a bare Wait, an if-guarded Wait (checks the condition once,
// so a spurious wakeup slips through), and bare WaitUntil / WaitFor
// whose "no timeout" result is trusted without re-checking the
// condition. Fixtures are lexed, never compiled.
namespace fixture {

void BareWait(Mutex& mu, CondVar& cv) {
  MutexLock lock(mu);
  cv.Wait(mu);
}

void IfIsNotALoop(Mutex& mu, CondVar& cv, const bool& ready) {
  MutexLock lock(mu);
  if (!ready) {
    cv.Wait(mu);
  }
}

bool BareWaitUntil(Mutex& mu, CondVar& cv, TimePoint deadline) {
  MutexLock lock(mu);
  return cv.WaitUntil(mu, deadline);
}

bool BareWaitFor(Mutex& mu, CondVar& cv, Duration timeout) {
  MutexLock lock(mu);
  return cv.WaitFor(mu, timeout);
}

}  // namespace fixture
