// prisma-lint fixture: every raw standard-library / pthread
// synchronization primitive outside src/common/mutex.{hpp,cpp} must be
// flagged by no-raw-sync. Fixtures are lexed, never compiled.
namespace fixture {

std::mutex file_mu;
std::condition_variable cv;

void Locked() {
  std::lock_guard<std::mutex> g(file_mu);
  std::unique_lock<std::mutex> u(file_mu);
}

pthread_mutex_t raw;

void Raw() { pthread_mutex_lock(&raw); }

}  // namespace fixture
