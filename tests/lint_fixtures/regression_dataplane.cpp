// prisma-lint regression fixture: two real violations that
// no-blocking-under-lock caught in this repository before they were
// fixed, frozen here so the detection never regresses.
//
// 1. TieringObject::Read statted the slow tier while holding mu_
//    (src/dataplane/tiering_object.cpp): a promotion-size FileSize()
//    probe — real backend I/O — ran inside the residency critical
//    section. Fixed by computing candidacy under the lock, statting
//    unlocked, and re-checking under the lock before enqueueing.
// 2. UdsServer::AcceptLoop joined finished connection-handler threads
//    while holding conns_mu_ (src/ipc/uds_server.cpp), stalling every
//    new accept behind a handler's teardown. Fixed by swapping the
//    finished list out under the lock and joining after release.
namespace fixture {

enum class LockRank { kUnranked = -1, kStage = 8, kRegistry = 9 };

class Backend {
 public:
  long FileSize(const char* path);
};

long Backend::FileSize(const char* path) {
  struct stat st;
  if (stat(path, &st) != 0) return -1;
  return st.st_size;
}

class Tiering {
 public:
  // Pre-fix shape of TieringObject::Read's promotion probe.
  void MaybePromote(const char* path) {
    MutexLock lock(mu_);
    const long size = slow_.FileSize(path);  // backend stat under mu_
    if (size >= 0) queued_ = true;
  }

 private:
  Mutex mu_{LockRank::kStage};
  Backend slow_;  // prisma-lint: unguarded(stateless in this fixture)
  bool queued_ GUARDED_BY(mu_) = false;
};

class Server {
 public:
  // Pre-fix shape of UdsServer::AcceptLoop's reaping.
  void ReapFinished() {
    MutexLock lock(conns_mu_);
    for (auto& t : finished_) t.join();  // thread join under conns_mu_
    finished_.clear();
  }

 private:
  Mutex conns_mu_{LockRank::kRegistry};
  std::vector<std::thread> finished_ GUARDED_BY(conns_mu_);
};

}  // namespace fixture
