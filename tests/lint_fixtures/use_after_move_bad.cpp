// prisma-lint fixture: every moved-from misuse use-after-move must
// flag — reading a member of a moved Sample, calling into a moved
// PayloadWriter, sizing a moved std::vector<std::byte>, passing a
// moved SamplePayload onward, and moving the same local twice. A
// moved-from payload is empty, so each of these silently serves zero
// bytes. Fixtures are lexed, never compiled.
namespace fixture {

void UseMemberAfterMove() {
  Sample sample = MakeSample();
  Sink(std::move(sample));
  Log(sample.path);
}

void CallAfterMove() {
  PayloadWriter writer = MakeWriter();
  Commit(std::move(writer));
  writer.Append(kMore);
}

void SizeAfterMove() {
  std::vector<std::byte> bytes = Load();
  Take(std::move(bytes));
  Reserve(bytes.size());
}

void PassAfterMove() {
  SamplePayload payload = MakePayload();
  Stash(std::move(payload));
  Serve(payload);
}

void DoubleMove() {
  SamplePayload payload = MakePayload();
  Consume(std::move(payload));
  Consume(std::move(payload));
}

}  // namespace fixture
