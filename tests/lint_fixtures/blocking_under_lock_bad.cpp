// prisma-lint fixture: blocking while a MutexLock is live — directly,
// and through a cross-TU-style call chain — must be flagged by
// no-blocking-under-lock.
namespace fixture {

enum class LockRank { kUnranked = -1, kLeaf = 1, kStage = 8 };

class Writer {
 public:
  void Flush() {
    MutexLock lock(mu_);
    fsync(fd_);  // direct blocking call under mu_
  }

 private:
  Mutex mu_{LockRank::kLeaf};
  int fd_ GUARDED_BY(mu_) = -1;
};

// Indirect: the lock holder never blocks itself, but a callee resolved
// through the project call graph does.
class Prober {
 public:
  void Refresh(const char* path) {
    MutexLock lock(mu_);
    StatBackingFile(path);  // chain: StatBackingFile -> stat
  }
  void StatBackingFile(const char* path);

 private:
  Mutex mu_{LockRank::kStage};
};

void Prober::StatBackingFile(const char* path) {
  struct stat st;
  stat(path, &st);
}

}  // namespace fixture
