// prisma-lint fixture: interprocedural view-escape witness chains.
// Trim's summary says it returns a view of its parameter; Wrap inherits
// that transitively through the view_param_chain fixpoint. A caller
// returning Trim(local) or Wrap(local) therefore escapes frame storage
// through one or two helper hops, and the finding must carry the full
// `(via ...)` witness so the report is actionable without re-deriving
// the chain by hand. Fixtures are lexed, never compiled.
namespace fixture {

std::string_view Trim(std::string_view s) {
  std::string_view out = s.substr(1);
  return out;
}

std::string_view Wrap(std::string_view s) {
  return Trim(s);
}

std::string_view DescribeDirect() {
  std::string name = MakeName();
  return Trim(name);
}

std::string_view DescribeTwoHops() {
  std::string name = MakeName();
  return Wrap(name);
}

}  // namespace fixture
