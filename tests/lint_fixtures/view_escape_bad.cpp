// prisma-lint fixture: every escape form view-escape must flag —
// returning a view rooted in a function-local owner (directly, via a
// tracked view variable, and via an accessor-derived span), storing a
// borrowed view into a member or member container that outlives the
// call, and handing a lambda that captures a view by reference (or a
// non-refcounted view by value) to a deferred sink (ThreadPool-style
// Submit, std::thread, and a stored callback). Fixtures are lexed,
// never compiled.
namespace fixture {

std::span<const std::byte> ReturnLocalDirect() {
  std::vector<std::byte> buf = Load();
  return buf;
}

std::span<const std::byte> ReturnLocalViaView() {
  std::vector<std::byte> buf = Load();
  std::span<const std::byte> view = buf;
  return view;
}

std::string_view ReturnLocalAccessor() {
  std::string name = MakeName();
  std::string_view view = name.substr(1);
  return view;
}

class WindowCache {
 public:
  void Remember(std::span<const std::byte> bytes) {
    window_ = bytes;
  }

  void RememberLocal() {
    std::vector<std::byte> buf = Load();
    std::span<const std::byte> view = buf;
    windows_.push_back(view);
  }

 private:
  std::span<const std::byte> window_;
  std::vector<std::span<const std::byte>> windows_;
};

void SubmitRefCapture(ThreadPool& pool) {
  std::vector<std::byte> block = Load();
  std::span<const std::byte> view = block;
  pool.Submit([&view] { Consume(view); });
}

void SubmitValueCapture(ThreadPool& pool) {
  std::vector<std::byte> block = Load();
  std::span<const std::byte> view = block;
  pool.Submit([view] { Consume(view); });
}

void ThreadDefaultRefCapture() {
  std::string name = MakeName();
  std::string_view view = name;
  std::thread worker([&] { Consume(view); });
  worker.join();
}

class Notifier {
 public:
  void Arm(std::span<const std::byte> bytes) {
    on_ready_target_ = [&bytes] { Consume(bytes); };
  }

 private:
  std::function<void()> on_ready_target_;
};

}  // namespace fixture
