// Helper binary exec'd under LD_PRELOAD=libprisma_shim.so by shim_test
// and the ld_preload_demo example. It uses ONLY plain POSIX calls — the
// point is that the shim routes them to PRISMA without this program
// knowing. Exit code 0 iff every file's content matches the expected
// deterministic synthetic content.
//
// Usage: shim_reader [--seek] <virtual-prefix> <name> [<name> ...]
// Default mode: for each name, opens "<virtual-prefix>/<name>", fstat()s
// it, reads it with read(2) in chunks, and compares against
// SyntheticContent. --seek mode instead exercises lseek(SEEK_END/SET/CUR)
// and pread(2) against the same expected content.
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "storage/dataset.hpp"

namespace {

/// lseek + pread exercises for one virtual file; returns 0 on success.
int VerifyWithSeeks(const std::string& path, const std::string& name) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    std::fprintf(stderr, "open(%s) failed\n", path.c_str());
    return 1;
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size <= 0) {
    std::fprintf(stderr, "lseek(SEEK_END) on %s failed\n", path.c_str());
    ::close(fd);
    return 1;
  }
  const auto expected = prisma::storage::SyntheticContent::Generate(
      name, static_cast<std::uint64_t>(size));

  // Read the back half via SEEK_SET + read.
  const off_t half = size / 2;
  if (::lseek(fd, half, SEEK_SET) != half) {
    ::close(fd);
    return 1;
  }
  std::vector<std::byte> back(static_cast<std::size_t>(size - half));
  std::size_t got = 0;
  while (got < back.size()) {
    const ssize_t n = ::read(fd, back.data() + got, back.size() - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  if (got != back.size() ||
      std::memcmp(back.data(), expected.data() + half, back.size()) != 0) {
    std::fprintf(stderr, "%s: SEEK_SET read mismatch\n", path.c_str());
    ::close(fd);
    return 1;
  }

  // SEEK_CUR relative rewind, then pread at an absolute offset (pread
  // must not disturb the file offset).
  if (::lseek(fd, -static_cast<off_t>(back.size()), SEEK_CUR) != half) {
    ::close(fd);
    return 1;
  }
  std::byte probe[16];
  const std::size_t probe_len =
      std::min<std::size_t>(sizeof(probe), static_cast<std::size_t>(size));
  if (::pread(fd, probe, probe_len, 0) != static_cast<ssize_t>(probe_len) ||
      std::memcmp(probe, expected.data(), probe_len) != 0) {
    std::fprintf(stderr, "%s: pread mismatch\n", path.c_str());
    ::close(fd);
    return 1;
  }
  if (::lseek(fd, 0, SEEK_CUR) != half) {
    std::fprintf(stderr, "%s: pread moved the offset\n", path.c_str());
    ::close(fd);
    return 1;
  }
  ::close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool seek_mode = false;
  int first = 1;
  if (argc > 1 && std::strcmp(argv[1], "--seek") == 0) {
    seek_mode = true;
    first = 2;
  }
  if (argc < first + 2) {
    std::fprintf(stderr, "usage: %s [--seek] <prefix> <name>...\n", argv[0]);
    return 2;
  }
  const std::string prefix = argv[first];

  if (seek_mode) {
    for (int i = first + 1; i < argc; ++i) {
      const std::string name = argv[i];
      if (const int rc = VerifyWithSeeks(prefix + "/" + name, name); rc != 0) {
        return rc;
      }
    }
    std::printf("shim_reader: seek-verified %d files\n", argc - first - 1);
    return 0;
  }

  for (int i = first + 1; i < argc; ++i) {
    const std::string name = argv[i];
    const std::string path = prefix + "/" + name;

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      std::fprintf(stderr, "open(%s) failed: %s\n", path.c_str(),
                   std::strerror(errno));
      return 1;
    }

    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      std::fprintf(stderr, "fstat(%s) failed\n", path.c_str());
      ::close(fd);
      return 1;
    }

    std::vector<std::byte> data;
    data.reserve(static_cast<std::size_t>(st.st_size));
    std::byte chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0) {
        std::fprintf(stderr, "read(%s) failed\n", path.c_str());
        ::close(fd);
        return 1;
      }
      if (n == 0) break;
      data.insert(data.end(), chunk, chunk + n);
    }
    ::close(fd);

    if (static_cast<off_t>(data.size()) != st.st_size) {
      std::fprintf(stderr, "%s: size mismatch (read %zu, stat %lld)\n",
                   path.c_str(), data.size(),
                   static_cast<long long>(st.st_size));
      return 1;
    }
    const auto expected =
        prisma::storage::SyntheticContent::Generate(name, data.size());
    if (data != expected) {
      std::fprintf(stderr, "%s: content mismatch\n", path.c_str());
      return 1;
    }
  }
  std::printf("shim_reader: verified %d files\n", argc - 2);
  return 0;
}
