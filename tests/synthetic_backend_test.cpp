// SyntheticBackend: deterministic content + modeled service times with
// real sleeps, concurrency tracking, overrides, and the page-cache path.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "storage/synthetic_backend.hpp"

namespace prisma::storage {
namespace {

SyntheticBackendOptions FastOptions() {
  SyntheticBackendOptions o;
  o.profile = DeviceProfile::Instant();
  o.time_scale = 0.0;  // no sleeping in functional tests
  return o;
}

ImageNetDataset SmallDataset() {
  SyntheticImageNetSpec spec;
  spec.num_train = 50;
  spec.num_validation = 10;
  spec.mean_file_size = 16 * 1024;
  spec.min_file_size = 4 * 1024;
  return MakeSyntheticImageNet(spec);
}

TEST(SyntheticBackendTest, ServesCatalogFiles) {
  const auto ds = SmallDataset();
  SyntheticBackend backend(FastOptions(), ds);
  for (const auto& f : ds.train.files()) {
    auto size = backend.FileSize(f.name);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, f.size);
    auto data = backend.ReadAll(f.name);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, SyntheticContent::Generate(f.name, f.size));
  }
}

TEST(SyntheticBackendTest, UnknownFileNotFound) {
  SyntheticBackend backend(FastOptions());
  std::vector<std::byte> buf(10);
  EXPECT_EQ(backend.Read("ghost", 0, buf).status().code(),
            StatusCode::kNotFound);
}

TEST(SyntheticBackendTest, OffsetReads) {
  const auto ds = SmallDataset();
  SyntheticBackend backend(FastOptions(), ds);
  const auto& f = ds.train.At(0);
  const auto whole = SyntheticContent::Generate(f.name, f.size);
  std::vector<std::byte> buf(100);
  auto n = backend.Read(f.name, 500, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(buf[i], whole[500 + i]);
}

TEST(SyntheticBackendTest, ReadPastEof) {
  const auto ds = SmallDataset();
  SyntheticBackend backend(FastOptions(), ds);
  const auto& f = ds.train.At(0);
  std::vector<std::byte> buf(10);
  auto n = backend.Read(f.name, f.size + 100, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST(SyntheticBackendTest, WriteOverridesContent) {
  SyntheticBackend backend(FastOptions());
  std::vector<std::byte> payload{std::byte{1}, std::byte{2}, std::byte{3}};
  ASSERT_TRUE(backend.Write("custom", payload).ok());
  auto data = backend.ReadAll("custom");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, payload);
  EXPECT_EQ(*backend.FileSize("custom"), 3u);
}

TEST(SyntheticBackendTest, StatsAccumulate) {
  const auto ds = SmallDataset();
  SyntheticBackend backend(FastOptions(), ds);
  (void)backend.ReadAll(ds.train.At(0).name);
  (void)backend.ReadAll(ds.train.At(1).name);
  const auto stats = backend.Stats();
  EXPECT_GE(stats.reads, 2u);
  EXPECT_EQ(stats.bytes_read, ds.train.At(0).size + ds.train.At(1).size);
}

TEST(SyntheticBackendTest, ModeledServiceTimeSleeps) {
  SyntheticBackendOptions o;
  o.profile = DeviceProfile::Instant();
  o.profile.issue_latency = Millis{20};
  o.time_scale = 1.0;
  SyntheticBackend backend(o);
  std::vector<std::byte> payload(100);
  ASSERT_TRUE(backend.Write("f", payload).ok());

  std::vector<std::byte> buf(100);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(backend.Read("f", 0, buf).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, Millis{15});
}

TEST(SyntheticBackendTest, TimeScaleShrinksServiceTime) {
  SyntheticBackendOptions o;
  o.profile = DeviceProfile::Instant();
  o.profile.issue_latency = Millis{100};
  o.time_scale = 0.01;  // 100x faster: ~1 ms
  SyntheticBackend backend(o);
  ASSERT_TRUE(backend.Write("f", std::vector<std::byte>(10)).ok());

  std::vector<std::byte> buf(10);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(backend.Read("f", 0, buf).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, Millis{50});
}

TEST(SyntheticBackendTest, PageCacheHitsAfterFirstRead) {
  SyntheticBackendOptions o;
  o.profile = DeviceProfile::Instant();
  o.time_scale = 0.0;
  o.page_cache_bytes = 1 << 20;
  const auto ds = SmallDataset();
  SyntheticBackend backend(o, ds);

  const auto& f = ds.train.At(0);
  (void)backend.ReadAll(f.name);
  (void)backend.ReadAll(f.name);
  const auto stats = backend.Stats();
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_GE(stats.cache_misses, 1u);
}

TEST(SyntheticBackendTest, ConcurrencyIsTracked) {
  SyntheticBackendOptions o;
  o.profile = DeviceProfile::Instant();
  o.profile.issue_latency = Millis{50};
  o.time_scale = 1.0;
  SyntheticBackend backend(o);
  ASSERT_TRUE(backend.Write("f", std::vector<std::byte>(8)).ok());

  std::atomic<std::uint32_t> peak{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      std::vector<std::byte> buf(8);
      ASSERT_TRUE(backend.Read("f", 0, buf).ok());
    });
  }
  // Sample outstanding reads while the sleeps are in flight.
  for (int i = 0; i < 20; ++i) {
    peak = std::max(peak.load(), backend.OutstandingReads());
    std::this_thread::sleep_for(Millis{5});
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(peak.load(), 2u);
  EXPECT_EQ(backend.OutstandingReads(), 0u);
}

TEST(SyntheticBackendTest, RegisterAddsFiles) {
  SyntheticBackend backend(FastOptions());
  const auto ds = SmallDataset();
  EXPECT_FALSE(backend.FileSize(ds.validation.At(0).name).ok());
  backend.Register(ds.validation);
  EXPECT_TRUE(backend.FileSize(ds.validation.At(0).name).ok());
}

}  // namespace
}  // namespace prisma::storage
