// CLI experiment parsing (tools/prisma_sim's front-end).
#include <gtest/gtest.h>

#include "baselines/cli_config.hpp"

namespace prisma::baselines {
namespace {

Result<CliExperiment> Parse(std::string_view text) {
  auto config = Config::FromString(text);
  if (!config.ok()) return config.status();
  return ParseExperiment(*config);
}

TEST(CliConfigTest, DefaultsAreSane) {
  auto e = Parse("");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->pipeline, PipelineKind::kPrismaTf);
  EXPECT_EQ(e->config.model.name, "lenet");
  EXPECT_EQ(e->config.global_batch, 256u);
  EXPECT_EQ(e->config.epochs, 10u);
  EXPECT_EQ(e->config.scale, 100u);
  EXPECT_EQ(e->runs, 1);
  EXPECT_TRUE(e->config.run_validation);
}

TEST(CliConfigTest, ParsesEveryPipeline) {
  const std::pair<const char*, PipelineKind> cases[] = {
      {"tf_baseline", PipelineKind::kTfBaseline},
      {"tf_optimized", PipelineKind::kTfOptimized},
      {"prisma_tf", PipelineKind::kPrismaTf},
      {"torch", PipelineKind::kTorch},
      {"prisma_torch", PipelineKind::kPrismaTorch},
  };
  for (const auto& [name, kind] : cases) {
    auto e = Parse(std::string("pipeline = ") + name);
    ASSERT_TRUE(e.ok()) << name;
    EXPECT_EQ(e->pipeline, kind) << name;
    EXPECT_EQ(PipelineName(e->pipeline), name);
  }
}

TEST(CliConfigTest, ParsesEveryModel) {
  for (const char* name : {"lenet", "alexnet", "resnet50"}) {
    auto e = Parse(std::string("model = ") + name);
    ASSERT_TRUE(e.ok()) << name;
    EXPECT_EQ(e->config.model.name, name);
  }
}

TEST(CliConfigTest, DefaultStagePipelineIsPrefetchOnly) {
  auto e = Parse("");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->stage_pipeline, "prefetch");
  EXPECT_EQ(e->pipeline_layers, (std::vector<std::string>{"prefetch"}));
}

TEST(CliConfigTest, ParsesStackedStagePipeline) {
  auto e = Parse("stage_pipeline = prefetch|tiering");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->stage_pipeline, "prefetch|tiering");
  EXPECT_EQ(e->pipeline_layers,
            (std::vector<std::string>{"prefetch", "tiering"}));
}

TEST(CliConfigTest, RejectsBadStagePipeline) {
  EXPECT_EQ(Parse("stage_pipeline = prefetch|warp").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("stage_pipeline = prefetch||tiering").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("stage_pipeline = tiering|tiering").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CliConfigTest, DurableTieringKeys) {
  auto e = Parse(
      "stage_pipeline = prefetch|tiering\n"
      "tiering.durable = true\n"
      "tiering.fast_tier_path = /var/cache/prisma\n"
      "tiering.fast_tier_capacity = 256MiB\n");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->pipeline_options.tiering.durable);
  EXPECT_EQ(e->pipeline_options.fast_tier_path, "/var/cache/prisma");
  EXPECT_EQ(e->pipeline_options.tiering.fast_tier_capacity,
            256ull * 1024 * 1024);
}

TEST(CliConfigTest, DurableTieringDefaultsOff) {
  auto e = Parse("");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->pipeline_options.tiering.durable);
  EXPECT_TRUE(e->pipeline_options.fast_tier_path.empty());
}

TEST(CliConfigTest, DurableTieringRequiresPath) {
  EXPECT_EQ(Parse("tiering.durable = true").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CliConfigTest, RejectsUnknownNames) {
  EXPECT_EQ(Parse("pipeline = mxnet").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse("model = vgg16").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CliConfigTest, RejectsOutOfRangeNumerics) {
  EXPECT_FALSE(Parse("batch = 0").ok());
  EXPECT_FALSE(Parse("epochs = -1").ok());
  EXPECT_FALSE(Parse("scale = 0").ok());
  EXPECT_FALSE(Parse("runs = 0").ok());
  EXPECT_TRUE(Parse("workers = 0").ok());  // 0 workers is a real setup
}

TEST(CliConfigTest, NumericAndByteKeys) {
  auto e = Parse(
      "batch = 64\nepochs = 3\nscale = 500\nseed = 9\nruns = 2\n"
      "workers = 8\nvalidation = false\npage_cache = 2GiB\n"
      "fixed_producers = 4\nfixed_buffer = 128\n");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->config.global_batch, 64u);
  EXPECT_EQ(e->config.epochs, 3u);
  EXPECT_EQ(e->config.scale, 500u);
  EXPECT_EQ(e->config.seed, 9u);
  EXPECT_EQ(e->runs, 2);
  EXPECT_EQ(e->workers, 8u);
  EXPECT_FALSE(e->config.run_validation);
  EXPECT_EQ(e->config.page_cache_bytes, 2ull << 30);
  EXPECT_EQ(e->config.fixed_producers, 4u);
  EXPECT_EQ(e->config.fixed_buffer, 128u);
}

TEST(CliConfigTest, RunOnceExecutesEveryPipeline) {
  for (const char* pipeline :
       {"tf_baseline", "tf_optimized", "prisma_tf", "torch", "prisma_torch"}) {
    auto e = Parse(std::string("pipeline = ") + pipeline +
                   "\nepochs = 1\nscale = 4000\nworkers = 2\n");
    ASSERT_TRUE(e.ok()) << pipeline;
    const auto r = RunOnce(*e, 0);
    EXPECT_GT(r.samples_trained, 0u) << pipeline;
    EXPECT_GT(r.elapsed_s, 0.0) << pipeline;
  }
}

TEST(CliConfigTest, RunOffsetsSeedPerRun) {
  auto e = Parse("pipeline = prisma_tf\nepochs = 1\nscale = 4000\n");
  ASSERT_TRUE(e.ok());
  const auto r0 = RunOnce(*e, 0);
  const auto r1 = RunOnce(*e, 1);
  EXPECT_NE(r0.elapsed_s, r1.elapsed_s);  // different seeds
  const auto r0_again = RunOnce(*e, 0);
  EXPECT_DOUBLE_EQ(r0.elapsed_s, r0_again.elapsed_s);  // deterministic
}

}  // namespace
}  // namespace prisma::baselines
