// Golden-file tests for prisma-lint, plus the self-lint gate.
//
// Each fixture under tests/lint_fixtures/ is linted standalone through
// the same Run() path the CLI uses, and the rendered findings must
// match its .expected file byte for byte. The *_bad fixtures pin every
// check's detection (weakening a check breaks its golden); the *_clean
// fixtures pin the sanctioned escape hatches (a check that starts
// over-reporting breaks those). The regression_* fixtures freeze real
// violations the linter caught in this repository before they were
// fixed (a blocking call under a shard lock, and the heap-built wire
// response header that hot-path-purity forced onto the stack).
//
// SelfLint then runs the full-tree lint and asserts the source is
// clean modulo the checked-in baseline — the same gate scripts/ci.sh
// enforces.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver.hpp"

namespace {

const char* const kFixtureDir = PRISMA_SOURCE_DIR "/tests/lint_fixtures/";

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lints one fixture in isolation (the fixture indexes itself, exactly
/// like `prisma_lint --root "" --no-baseline <file>`) and renders the
/// findings with the fixture directory stripped, matching .expected.
std::string LintFixture(const std::string& name) {
  prisma_lint::Options opt;
  opt.targets.push_back(std::string(kFixtureDir) + name);
  const prisma_lint::RunResult result = prisma_lint::Run(opt);
  EXPECT_TRUE(result.errors.empty()) << name << ": " << result.errors[0];
  std::string out;
  for (const auto& f : result.findings) {
    std::string line = f.ToString();
    const std::string prefix(kFixtureDir);
    if (line.rfind(prefix, 0) == 0) line = line.substr(prefix.size());
    out += line + "\n";
  }
  return out;
}

struct FixtureCase {
  const char* source;
  const char* expected;
};

class PrismaLintGolden : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(PrismaLintGolden, MatchesExpected) {
  const FixtureCase& c = GetParam();
  EXPECT_EQ(LintFixture(c.source),
            ReadFileOrDie(std::string(kFixtureDir) + c.expected))
      << "fixture " << c.source
      << " drifted from its golden; if the change is intentional, "
         "regenerate with: build/tools/prisma_lint/prisma_lint --root \"\" "
         "--no-baseline --quiet tests/lint_fixtures/"
      << c.source;
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, PrismaLintGolden,
    ::testing::Values(
        FixtureCase{"no_raw_sync_bad.cpp", "no_raw_sync_bad.expected"},
        FixtureCase{"no_raw_sync_clean.cpp", "no_raw_sync_clean.expected"},
        FixtureCase{"blocking_under_lock_bad.cpp",
                    "blocking_under_lock_bad.expected"},
        FixtureCase{"blocking_under_lock_clean.cpp",
                    "blocking_under_lock_clean.expected"},
        FixtureCase{"guarded_by_bad.hpp", "guarded_by_bad.expected"},
        FixtureCase{"guarded_by_clean.hpp", "guarded_by_clean.expected"},
        FixtureCase{"status_checked_bad.cpp", "status_checked_bad.expected"},
        FixtureCase{"status_checked_clean.cpp",
                    "status_checked_clean.expected"},
        FixtureCase{"lock_rank_bad.cpp", "lock_rank_bad.expected"},
        FixtureCase{"lock_rank_clean.cpp", "lock_rank_clean.expected"},
        FixtureCase{"hot_path_purity_bad.cpp",
                    "hot_path_purity_bad.expected"},
        FixtureCase{"hot_path_purity_clean.cpp",
                    "hot_path_purity_clean.expected"},
        FixtureCase{"no_payload_copy_bad.cpp",
                    "no_payload_copy_bad.expected"},
        FixtureCase{"no_payload_copy_clean.cpp",
                    "no_payload_copy_clean.expected"},
        FixtureCase{"regression_dataplane.cpp",
                    "regression_dataplane.expected"},
        FixtureCase{"regression_hot_path.cpp",
                    "regression_hot_path.expected"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.source;
      for (char& ch : name) {
        if (ch == '.') ch = '_';
      }
      return name;
    });

// Structural guarantees the goldens rely on: every *_bad fixture
// reports at least one finding from its own check, every *_clean
// fixture reports none. (The goldens already enforce this byte for
// byte; these assertions keep the intent obvious if a golden is ever
// regenerated carelessly.)
TEST(PrismaLintFixtures, BadFixturesFindAndCleanFixturesDoNot) {
  const std::vector<std::pair<std::string, std::string>> bad = {
      {"no_raw_sync_bad.cpp", "no-raw-sync"},
      {"blocking_under_lock_bad.cpp", "no-blocking-under-lock"},
      {"guarded_by_bad.hpp", "guarded-by-coverage"},
      {"status_checked_bad.cpp", "status-checked"},
      {"lock_rank_bad.cpp", "lock-rank-static"},
      {"hot_path_purity_bad.cpp", "hot-path-purity"},
      {"no_payload_copy_bad.cpp", "no-payload-copy"},
      {"regression_dataplane.cpp", "no-blocking-under-lock"},
      {"regression_hot_path.cpp", "hot-path-purity"},
  };
  for (const auto& [file, check] : bad) {
    const std::string out = LintFixture(file);
    EXPECT_NE(out.find("[" + check + "]"), std::string::npos)
        << file << " no longer triggers " << check;
  }
  for (const char* file :
       {"no_raw_sync_clean.cpp", "blocking_under_lock_clean.cpp",
        "guarded_by_clean.hpp", "status_checked_clean.cpp",
        "lock_rank_clean.cpp", "hot_path_purity_clean.cpp",
        "no_payload_copy_clean.cpp"}) {
    EXPECT_EQ(LintFixture(file), "") << file << " should lint clean";
  }
}

// Baseline entries are count-matched: one line absorbs ONE occurrence
// of its fingerprint, and an ` xN` suffix absorbs N. Fingerprints strip
// line numbers, so without counting a single baseline line would hide
// every future instance of the same pattern in the same file.
// no_payload_copy_bad.cpp conveniently reports the same lambda-capture
// fingerprint twice (the plain and init-capture forms on adjacent
// lines), which is exactly the shape counting exists for.
TEST(PrismaLintBaseline, EntriesAbsorbCountedOccurrences) {
  const std::string fixture =
      std::string(kFixtureDir) + "no_payload_copy_bad.cpp";
  prisma_lint::Options opt;
  opt.targets.push_back(fixture);
  const prisma_lint::RunResult unfiltered = prisma_lint::Run(opt);

  const std::string dup_fingerprint =
      "no_payload_copy_bad.cpp: [no-payload-copy] lambda captures 'view' "
      "by copy copies heavy payload type 'SampleView'; pass by reference, "
      "move, or add a reasoned allow(no-payload-copy, ...)";
  std::size_t dup_occurrences = 0;
  for (const auto& f : unfiltered.findings) {
    if (f.Fingerprint() == dup_fingerprint) ++dup_occurrences;
  }
  ASSERT_EQ(dup_occurrences, 2u)
      << "fixture drifted: the count-matching test needs a duplicated "
         "fingerprint";

  const auto lint_with_baseline = [&](const std::string& entry) {
    const std::string path =
        ::testing::TempDir() + "/prisma_lint_count_baseline.txt";
    std::ofstream(path, std::ios::trunc)
        << "# temp baseline for the count-matching test\n"
        << entry << "\n";
    prisma_lint::Options o;
    o.targets.push_back(fixture);
    o.baseline = path;
    return prisma_lint::Run(o);
  };

  // A bare entry absorbs exactly one of the two occurrences.
  const prisma_lint::RunResult one = lint_with_baseline(dup_fingerprint);
  EXPECT_EQ(one.baselined, 1u);
  EXPECT_EQ(one.findings.size(), unfiltered.findings.size() - 1);

  // ` x2` (reason comments may follow) absorbs both.
  const prisma_lint::RunResult two =
      lint_with_baseline(dup_fingerprint + " x2  # both capture forms");
  EXPECT_EQ(two.baselined, 2u);
  EXPECT_EQ(two.findings.size(), unfiltered.findings.size() - 2);
}

// The gate: the tree itself lints clean modulo the checked-in baseline.
// This is the same configuration `scripts/ci.sh lint` runs.
TEST(PrismaLintSelfLint, SourceTreeIsClean) {
  prisma_lint::Options opt;
  opt.root = PRISMA_SOURCE_DIR;
  opt.baseline = std::string(PRISMA_SOURCE_DIR) +
                 "/scripts/prisma-lint-baseline.txt";
  const prisma_lint::RunResult result = prisma_lint::Run(opt);
  for (const auto& e : result.errors) ADD_FAILURE() << e;
  for (const auto& f : result.findings) {
    ADD_FAILURE() << f.ToString()
                  << "\n(fix the violation; the baseline is a last resort "
                     "and every entry needs a reason comment)";
  }
}

}  // namespace
