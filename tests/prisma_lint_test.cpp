// Golden-file tests for prisma-lint, plus the self-lint gate.
//
// Each fixture under tests/lint_fixtures/ is linted standalone through
// the same Run() path the CLI uses, and the rendered findings must
// match its .expected file byte for byte. The *_bad fixtures pin every
// check's detection (weakening a check breaks its golden); the *_clean
// fixtures pin the sanctioned escape hatches (a check that starts
// over-reporting breaks those), and the *_suppressed fixtures pin the
// allow-marker escape hatch together with the stale-suppression
// scanner's precision (an armed marker must never be reported dead).
// The regression_* fixtures freeze real violations the linter caught
// in this repository before they were fixed (a blocking call under a
// shard lock, the heap-built wire response header that hot-path-purity
// forced onto the stack, and the PrefetchObject::ReadRef view-lifetime
// boundary the escape pass drew).
//
// SelfLint then runs the full-tree lint and asserts the source is
// clean — no findings AND no stale suppressions — modulo the
// checked-in baseline; the same gate scripts/ci.sh enforces.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checks.hpp"
#include "driver.hpp"

namespace {

const char* const kFixtureDir = PRISMA_SOURCE_DIR "/tests/lint_fixtures/";

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Findings then stale suppressions, one ToString() line each — the
/// order the CLI prints to stdout.
std::string Render(const prisma_lint::RunResult& result,
                   const std::string& strip_prefix) {
  std::string out;
  const auto append = [&](const prisma_lint::Finding& f) {
    std::string line = f.ToString();
    if (!strip_prefix.empty() && line.rfind(strip_prefix, 0) == 0) {
      line = line.substr(strip_prefix.size());
    }
    out += line + "\n";
  };
  for (const auto& f : result.findings) append(f);
  for (const auto& f : result.stale) append(f);
  return out;
}

/// Lints one fixture in isolation (the fixture indexes itself, exactly
/// like `prisma_lint --root "" --no-baseline <file>`) and renders the
/// findings and stale suppressions with the fixture directory
/// stripped, matching .expected.
std::string LintFixture(const std::string& name) {
  prisma_lint::Options opt;
  opt.targets.push_back(std::string(kFixtureDir) + name);
  const prisma_lint::RunResult result = prisma_lint::Run(opt);
  EXPECT_TRUE(result.errors.empty()) << name << ": " << result.errors[0];
  return Render(result, kFixtureDir);
}

struct FixtureCase {
  const char* source;
  const char* expected;
};

class PrismaLintGolden : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(PrismaLintGolden, MatchesExpected) {
  const FixtureCase& c = GetParam();
  EXPECT_EQ(LintFixture(c.source),
            ReadFileOrDie(std::string(kFixtureDir) + c.expected))
      << "fixture " << c.source
      << " drifted from its golden; if the change is intentional, "
         "regenerate with: build/tools/prisma_lint/prisma_lint --root \"\" "
         "--no-baseline --quiet tests/lint_fixtures/"
      << c.source;
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, PrismaLintGolden,
    ::testing::Values(
        FixtureCase{"no_raw_sync_bad.cpp", "no_raw_sync_bad.expected"},
        FixtureCase{"no_raw_sync_clean.cpp", "no_raw_sync_clean.expected"},
        FixtureCase{"blocking_under_lock_bad.cpp",
                    "blocking_under_lock_bad.expected"},
        FixtureCase{"blocking_under_lock_clean.cpp",
                    "blocking_under_lock_clean.expected"},
        FixtureCase{"guarded_by_bad.hpp", "guarded_by_bad.expected"},
        FixtureCase{"guarded_by_clean.hpp", "guarded_by_clean.expected"},
        FixtureCase{"status_checked_bad.cpp", "status_checked_bad.expected"},
        FixtureCase{"status_checked_clean.cpp",
                    "status_checked_clean.expected"},
        FixtureCase{"lock_rank_bad.cpp", "lock_rank_bad.expected"},
        FixtureCase{"lock_rank_clean.cpp", "lock_rank_clean.expected"},
        FixtureCase{"hot_path_purity_bad.cpp",
                    "hot_path_purity_bad.expected"},
        FixtureCase{"hot_path_purity_clean.cpp",
                    "hot_path_purity_clean.expected"},
        FixtureCase{"no_payload_copy_bad.cpp",
                    "no_payload_copy_bad.expected"},
        FixtureCase{"no_payload_copy_clean.cpp",
                    "no_payload_copy_clean.expected"},
        FixtureCase{"view_escape_bad.cpp", "view_escape_bad.expected"},
        FixtureCase{"view_escape_clean.cpp", "view_escape_clean.expected"},
        FixtureCase{"view_escape_suppressed.cpp",
                    "view_escape_suppressed.expected"},
        FixtureCase{"view_escape_chain.cpp", "view_escape_chain.expected"},
        FixtureCase{"use_after_move_bad.cpp", "use_after_move_bad.expected"},
        FixtureCase{"use_after_move_clean.cpp",
                    "use_after_move_clean.expected"},
        FixtureCase{"use_after_move_suppressed.cpp",
                    "use_after_move_suppressed.expected"},
        FixtureCase{"cv_wait_bad.cpp", "cv_wait_bad.expected"},
        FixtureCase{"cv_wait_clean.cpp", "cv_wait_clean.expected"},
        FixtureCase{"cv_wait_suppressed.cpp", "cv_wait_suppressed.expected"},
        FixtureCase{"stale_suppression.cpp", "stale_suppression.expected"},
        FixtureCase{"regression_dataplane.cpp",
                    "regression_dataplane.expected"},
        FixtureCase{"regression_hot_path.cpp",
                    "regression_hot_path.expected"},
        FixtureCase{"regression_view_escape.cpp",
                    "regression_view_escape.expected"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.source;
      for (char& ch : name) {
        if (ch == '.') ch = '_';
      }
      return name;
    });

// Structural guarantees the goldens rely on: every *_bad fixture
// reports at least one finding from its own check, every *_clean
// fixture reports none. (The goldens already enforce this byte for
// byte; these assertions keep the intent obvious if a golden is ever
// regenerated carelessly.)
TEST(PrismaLintFixtures, BadFixturesFindAndCleanFixturesDoNot) {
  const std::vector<std::pair<std::string, std::string>> bad = {
      {"no_raw_sync_bad.cpp", "no-raw-sync"},
      {"blocking_under_lock_bad.cpp", "no-blocking-under-lock"},
      {"guarded_by_bad.hpp", "guarded-by-coverage"},
      {"status_checked_bad.cpp", "status-checked"},
      {"lock_rank_bad.cpp", "lock-rank-static"},
      {"hot_path_purity_bad.cpp", "hot-path-purity"},
      {"no_payload_copy_bad.cpp", "no-payload-copy"},
      {"view_escape_bad.cpp", "view-escape"},
      {"view_escape_chain.cpp", "view-escape"},
      {"use_after_move_bad.cpp", "use-after-move"},
      {"cv_wait_bad.cpp", "cv-wait-predicate"},
      {"stale_suppression.cpp", "stale-suppression"},
      {"regression_dataplane.cpp", "no-blocking-under-lock"},
      {"regression_hot_path.cpp", "hot-path-purity"},
      {"regression_view_escape.cpp", "view-escape"},
  };
  for (const auto& [file, check] : bad) {
    const std::string out = LintFixture(file);
    EXPECT_NE(out.find("[" + check + "]"), std::string::npos)
        << file << " no longer triggers " << check;
  }
  for (const char* file :
       {"no_raw_sync_clean.cpp", "blocking_under_lock_clean.cpp",
        "guarded_by_clean.hpp", "status_checked_clean.cpp",
        "lock_rank_clean.cpp", "hot_path_purity_clean.cpp",
        "no_payload_copy_clean.cpp", "view_escape_clean.cpp",
        "view_escape_suppressed.cpp", "use_after_move_clean.cpp",
        "use_after_move_suppressed.cpp", "cv_wait_clean.cpp",
        "cv_wait_suppressed.cpp"}) {
    EXPECT_EQ(LintFixture(file), "") << file << " should lint clean";
  }
}

// The catalog is exactly the ten documented checks, in stable order —
// the CLI's --checks validation, the timing table, and DESIGN.md §11
// all key off these names. `stale-suppression` is deliberately NOT a
// check: it is meta-analysis that runs whenever the full check set
// does, so a marker can never be reported dead just because its check
// was deselected.
TEST(PrismaLintCatalog, EnforcesTenChecks) {
  const std::vector<std::string> expected = {
      "no-raw-sync",       "no-blocking-under-lock",
      "guarded-by-coverage", "status-checked",
      "lock-rank-static",  "hot-path-purity",
      "no-payload-copy",   "view-escape",
      "use-after-move",    "cv-wait-predicate",
  };
  EXPECT_EQ(prisma_lint::AllChecks(), expected);
}

// Findings from every fixture at --jobs 1 and --jobs 4 must render
// byte-identically: the parallel driver claims targets with an atomic
// index but merges per-slot results in deterministic target order, so
// job count can never reorder (or drop) output.
TEST(PrismaLintDriver, OutputIsBitIdenticalAcrossJobCounts) {
  // GlobSources deliberately skips lint_fixtures, so enumerate by hand.
  std::vector<std::string> sources;
  for (const auto& entry :
       std::filesystem::directory_iterator(std::string(kFixtureDir))) {
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp") sources.push_back(entry.path().string());
  }
  std::sort(sources.begin(), sources.end());
  ASSERT_GT(sources.size(), 10u);
  const auto run = [&](int jobs) {
    prisma_lint::Options opt;
    opt.targets = sources;
    opt.jobs = jobs;
    const prisma_lint::RunResult result = prisma_lint::Run(opt);
    EXPECT_TRUE(result.errors.empty());
    return Render(result, "");
  };
  const std::string serial = run(1);
  EXPECT_NE(serial.find("[view-escape]"), std::string::npos);
  EXPECT_NE(serial.find("[use-after-move]"), std::string::npos);
  EXPECT_NE(serial.find("[cv-wait-predicate]"), std::string::npos);
  EXPECT_NE(serial.find("[stale-suppression]"), std::string::npos);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(7), serial);
}

// A baseline entry whose fingerprint no longer occurs is itself
// reported stale on full-tree runs: suppressed debt must shrink
// monotonically, not linger after the violation is fixed.
TEST(PrismaLintStale, UnmatchedBaselineEntryIsReported) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "prisma_lint_stale";
  fs::create_directories(root);
  std::ofstream(root / "tidy.cpp", std::ios::trunc)
      << "// nothing to see here\n"
         "namespace t { void Noop() {} }\n";
  const fs::path baseline = root / "baseline.txt";
  std::ofstream(baseline, std::ios::trunc)
      << "tidy.cpp: [no-raw-sync] long since fixed\n";
  prisma_lint::Options opt;
  opt.root = root.string();
  opt.baseline = baseline.string();
  const prisma_lint::RunResult result = prisma_lint::Run(opt);
  EXPECT_TRUE(result.findings.empty());
  ASSERT_EQ(result.stale_baseline.size(), 1u);
  EXPECT_NE(result.stale_baseline[0].find("tidy.cpp: [no-raw-sync]"),
            std::string::npos)
      << result.stale_baseline[0];
  EXPECT_NE(result.stale_baseline[0].find("unmatched"), std::string::npos);
}

// ::error annotations follow the GitHub Actions command grammar:
// property values escape ',' and ':' (plus '%' and newlines), the
// message escapes '%' and newlines only.
TEST(PrismaLintFormat, GithubAnnotationEscapesCommandCharacters) {
  const prisma_lint::Finding plain{"src/a.cpp", 12, "view-escape",
                                   "storage dies with the frame"};
  EXPECT_EQ(plain.ToGitHubAnnotation(),
            "::error file=src/a.cpp,line=12,title=prisma-lint view-escape"
            "::storage dies with the frame");
  const prisma_lint::Finding tricky{"src/a,b:c.cpp", 3, "use-after-move",
                                    "50% moved\nsee: above"};
  EXPECT_EQ(tricky.ToGitHubAnnotation(),
            "::error file=src/a%2Cb%3Ac.cpp,line=3,"
            "title=prisma-lint use-after-move"
            "::50%25 moved%0Asee: above");
}

// Per-check timings cover the whole catalog (the --timings-json report
// CI archives would silently lose a check otherwise).
TEST(PrismaLintTimings, EveryCheckIsTimed) {
  prisma_lint::Options opt;
  opt.targets.push_back(std::string(kFixtureDir) + "no_raw_sync_clean.cpp");
  const prisma_lint::RunResult result = prisma_lint::Run(opt);
  std::vector<std::string> timed;
  for (const auto& [check, seconds] : result.check_seconds) {
    EXPECT_GE(seconds, 0.0) << check;
    timed.push_back(check);
  }
  EXPECT_EQ(timed, prisma_lint::AllChecks());
}

// Baseline entries are count-matched: one line absorbs ONE occurrence
// of its fingerprint, and an ` xN` suffix absorbs N. Fingerprints strip
// line numbers, so without counting a single baseline line would hide
// every future instance of the same pattern in the same file.
// no_payload_copy_bad.cpp conveniently reports the same lambda-capture
// fingerprint twice (the plain and init-capture forms on adjacent
// lines), which is exactly the shape counting exists for.
TEST(PrismaLintBaseline, EntriesAbsorbCountedOccurrences) {
  const std::string fixture =
      std::string(kFixtureDir) + "no_payload_copy_bad.cpp";
  prisma_lint::Options opt;
  opt.targets.push_back(fixture);
  const prisma_lint::RunResult unfiltered = prisma_lint::Run(opt);

  const std::string dup_fingerprint =
      "no_payload_copy_bad.cpp: [no-payload-copy] lambda captures 'view' "
      "by copy copies heavy payload type 'SampleView'; pass by reference, "
      "move, or add a reasoned allow(no-payload-copy, ...)";
  std::size_t dup_occurrences = 0;
  for (const auto& f : unfiltered.findings) {
    if (f.Fingerprint() == dup_fingerprint) ++dup_occurrences;
  }
  ASSERT_EQ(dup_occurrences, 2u)
      << "fixture drifted: the count-matching test needs a duplicated "
         "fingerprint";

  const auto lint_with_baseline = [&](const std::string& entry) {
    const std::string path =
        ::testing::TempDir() + "/prisma_lint_count_baseline.txt";
    std::ofstream(path, std::ios::trunc)
        << "# temp baseline for the count-matching test\n"
        << entry << "\n";
    prisma_lint::Options o;
    o.targets.push_back(fixture);
    o.baseline = path;
    return prisma_lint::Run(o);
  };

  // A bare entry absorbs exactly one of the two occurrences.
  const prisma_lint::RunResult one = lint_with_baseline(dup_fingerprint);
  EXPECT_EQ(one.baselined, 1u);
  EXPECT_EQ(one.findings.size(), unfiltered.findings.size() - 1);

  // ` x2` (reason comments may follow) absorbs both.
  const prisma_lint::RunResult two =
      lint_with_baseline(dup_fingerprint + " x2  # both capture forms");
  EXPECT_EQ(two.baselined, 2u);
  EXPECT_EQ(two.findings.size(), unfiltered.findings.size() - 2);
}

// The gate: the tree itself lints clean modulo the checked-in baseline.
// This is the same configuration `scripts/ci.sh lint` runs.
TEST(PrismaLintSelfLint, SourceTreeIsClean) {
  prisma_lint::Options opt;
  opt.root = PRISMA_SOURCE_DIR;
  opt.baseline = std::string(PRISMA_SOURCE_DIR) +
                 "/scripts/prisma-lint-baseline.txt";
  const prisma_lint::RunResult result = prisma_lint::Run(opt);
  for (const auto& e : result.errors) ADD_FAILURE() << e;
  for (const auto& f : result.findings) {
    ADD_FAILURE() << f.ToString()
                  << "\n(fix the violation; the baseline is a last resort "
                     "and every entry needs a reason comment)";
  }
  for (const auto& f : result.stale) {
    ADD_FAILURE() << f.ToString()
                  << "\n(the marker suppresses nothing anymore; delete it "
                     "so real suppressions stay auditable)";
  }
  for (const auto& s : result.stale_baseline) {
    ADD_FAILURE() << s
                  << "\n(the baselined violation is gone; shrink the "
                     "baseline so the debt ledger stays honest)";
  }
}

}  // namespace
