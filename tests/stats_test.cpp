// Unit tests for streaming statistics, histograms, and the
// occupancy-timeline CDF machinery behind Fig. 3.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace prisma {
namespace {

// --- RunningStats -------------------------------------------------------------

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.Add(3.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.Mean(), 3.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  // Property: merging partitions must reproduce the sequential result.
  Xoshiro256 rng(8);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.NextGaussian(10, 3));

  RunningStats all;
  for (const double v : values) all.Add(v);

  RunningStats a, b, c;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Add(values[i]);
  }
  RunningStats merged = a;
  merged.Merge(b);
  merged.Merge(c);

  EXPECT_EQ(merged.Count(), all.Count());
  EXPECT_NEAR(merged.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(merged.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.Min(), all.Min());
  EXPECT_DOUBLE_EQ(merged.Max(), all.Max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats a_copy = a;
  a.Merge(b);  // no-op
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), a_copy.Mean());
  b.Merge(a);  // adopt
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(RunningStatsTest, Reset) {
  RunningStats s;
  s.Add(5);
  s.Reset();
  EXPECT_EQ(s.Count(), 0u);
}

// --- Ewma ----------------------------------------------------------------------

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.Initialized());
  e.Add(10.0);
  EXPECT_TRUE(e.Initialized());
  EXPECT_DOUBLE_EQ(e.Value(), 10.0);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.Add(42.0);
  EXPECT_NEAR(e.Value(), 42.0, 1e-9);
}

TEST(EwmaTest, SmoothingWeight) {
  Ewma e(0.5);
  e.Add(0.0);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.Value(), 5.0);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.Value(), 7.5);
}

// --- RateEstimator ---------------------------------------------------------------

TEST(RateEstimatorTest, CountsWithinWindow) {
  RateEstimator r(Seconds{10});
  for (int i = 0; i < 50; ++i) r.Record(Millis{i * 100});
  // 50 events in a 10 s window -> 5/s.
  EXPECT_NEAR(r.RatePerSecond(Millis{5000}), 5.0, 1e-9);
}

TEST(RateEstimatorTest, EvictsOldEvents) {
  RateEstimator r(Seconds{1});
  r.Record(Nanos{0}, 100);
  EXPECT_GT(r.RatePerSecond(Millis{500}), 0.0);
  EXPECT_EQ(r.RatePerSecond(Seconds{10}), 0.0);
}

TEST(RateEstimatorTest, WeightedCounts) {
  RateEstimator r(Seconds{2});
  r.Record(Millis{100}, 10);
  r.Record(Millis{200}, 30);
  EXPECT_NEAR(r.RatePerSecond(Millis{300}), 20.0, 1e-9);
}

// --- Histogram --------------------------------------------------------------------

TEST(HistogramTest, BucketsAndTotal) {
  Histogram h({1.0, 10.0, 100.0});
  for (const double v : {0.5, 5.0, 50.0, 500.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_EQ(h.counts()[0], 1u);  // <= 1
  EXPECT_EQ(h.counts()[1], 2u);  // (1, 10]
  EXPECT_EQ(h.counts()[2], 1u);  // (10, 100]
  EXPECT_EQ(h.counts()[3], 1u);  // > 100
}

TEST(HistogramTest, ExponentialBoundaries) {
  const Histogram h = Histogram::Exponential(1.0, 2.0, 4);
  const std::vector<double> expected{1, 2, 4, 8};
  EXPECT_EQ(h.boundaries(), expected);
}

TEST(HistogramTest, QuantileInterpolation) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.Add(15.0);  // all in (10,20]
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  EXPECT_EQ(h.Quantile(0.0), 10.0);
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram h = Histogram::Exponential(1.0, 2.0, 12);
  Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) h.Add(rng.NextExponential(100.0));
  double prev = 0.0;
  for (double q = 0.1; q <= 0.99; q += 0.1) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h({1.0});
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

// --- OccupancyTimeline ---------------------------------------------------------------

TEST(OccupancyTimelineTest, TimeAtValueAccounting) {
  OccupancyTimeline tl;
  tl.Record(Seconds{0}, 0);
  tl.Record(Seconds{2}, 1);   // 2 s at 0
  tl.Record(Seconds{5}, 3);   // 3 s at 1
  tl.Finish(Seconds{10});     // 5 s at 3
  EXPECT_EQ(tl.TimeAtValue().at(0), Seconds{2});
  EXPECT_EQ(tl.TimeAtValue().at(1), Seconds{3});
  EXPECT_EQ(tl.TimeAtValue().at(3), Seconds{5});
  EXPECT_EQ(tl.TotalTime(), Seconds{10});
  EXPECT_EQ(tl.MaxValue(), 3);
}

TEST(OccupancyTimelineTest, CdfSumsToOne) {
  OccupancyTimeline tl;
  tl.Record(Seconds{0}, 2);
  tl.Record(Seconds{1}, 4);
  tl.Record(Seconds{3}, 1);
  tl.Finish(Seconds{4});
  const auto cdf = tl.Cdf();
  ASSERT_FALSE(cdf.empty());
  EXPECT_NEAR(cdf.back().cumulative, 1.0, 1e-12);
  // Monotone non-decreasing in both axes.
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].cumulative, cdf[i - 1].cumulative);
  }
}

TEST(OccupancyTimelineTest, TimeWeightedMean) {
  OccupancyTimeline tl;
  tl.Record(Seconds{0}, 0);
  tl.Record(Seconds{5}, 10);  // 5 s at 0
  tl.Finish(Seconds{10});     // 5 s at 10
  EXPECT_DOUBLE_EQ(tl.TimeWeightedMean(), 5.0);
}

TEST(OccupancyTimelineTest, EmptyTimeline) {
  OccupancyTimeline tl;
  tl.Finish(Seconds{1});
  EXPECT_TRUE(tl.Cdf().empty());
  EXPECT_EQ(tl.TimeWeightedMean(), 0.0);
  EXPECT_EQ(tl.TotalTime(), Nanos{0});
}

TEST(OccupancyTimelineTest, ZeroDurationRecordsIgnored) {
  OccupancyTimeline tl;
  tl.Record(Seconds{1}, 5);
  tl.Record(Seconds{1}, 7);  // zero time at 5
  tl.Finish(Seconds{2});
  EXPECT_EQ(tl.TimeAtValue().count(5), 0u);
  EXPECT_EQ(tl.TimeAtValue().at(7), Seconds{1});
}

TEST(OccupancyTimelineTest, FormatCdfContainsRows) {
  OccupancyTimeline tl;
  tl.Record(Seconds{0}, 1);
  tl.Finish(Seconds{2});
  const std::string text = FormatCdf(tl.Cdf());
  EXPECT_NE(text.find("100.00%"), std::string::npos);
}

}  // namespace
}  // namespace prisma
