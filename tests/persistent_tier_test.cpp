// PersistentTierBackend: crash-consistent on-disk entry store behind the
// durable tiering mode — write/rename publication, checksum-validated
// recovery across instances, budget-driven eviction.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "storage/persistent_tier_backend.hpp"

namespace prisma::storage {
namespace {

namespace fs = std::filesystem;

std::vector<std::byte> Bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

class PersistentTierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("prisma_ptier_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;

  std::size_t ObjectCount() const {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& de :
         fs::directory_iterator(root_ / "objects")) {
      ++n;
    }
    return n;
  }

  /// The single committed entry file for `path` (asserts it exists).
  fs::path EntryFile(const std::string& path) const {
    return root_ / "objects" / PersistentTierBackend::EncodeName(path);
  }
};

TEST_F(PersistentTierTest, RoundTripAndOffsets) {
  PersistentTierBackend tier(root_, {});
  const auto payload = Bytes("hello persistent world");
  ASSERT_TRUE(tier.Write("train/a.jpg", payload).ok());

  auto size = tier.FileSize("train/a.jpg");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size());

  std::vector<std::byte> buf(payload.size());
  auto n = tier.Read("train/a.jpg", 0, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, payload.size());
  EXPECT_EQ(buf, payload);

  // Range read from a mid-file offset.
  std::vector<std::byte> mid(5);
  n = tier.Read("train/a.jpg", 6, mid);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(mid, Bytes("persi"));

  // Reads past the payload return 0 bytes, not the trailer.
  n = tier.Read("train/a.jpg", payload.size() + 100, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);

  const auto stats = tier.Stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.bytes_written, payload.size());
  EXPECT_GE(stats.reads, 2u);
}

TEST_F(PersistentTierTest, MissesAndRemove) {
  PersistentTierBackend tier(root_, {});
  std::vector<std::byte> buf(8);
  EXPECT_EQ(tier.Read("ghost", 0, buf).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(tier.FileSize("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(tier.Remove("ghost").code(), StatusCode::kNotFound);

  ASSERT_TRUE(tier.Write("x", Bytes("data")).ok());
  EXPECT_TRUE(fs::exists(EntryFile("x")));
  ASSERT_TRUE(tier.Remove("x").ok());
  EXPECT_FALSE(fs::exists(EntryFile("x")));  // backing file unlinked
  EXPECT_EQ(tier.FileSize("x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(tier.DiskBytes(), 0u);
}

TEST_F(PersistentTierTest, OverwriteReplacesEntry) {
  PersistentTierBackend tier(root_, {});
  ASSERT_TRUE(tier.Write("f", Bytes("first version")).ok());
  ASSERT_TRUE(tier.Write("f", Bytes("v2")).ok());
  auto size = tier.FileSize("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 2u);
  EXPECT_EQ(ObjectCount(), 1u);  // same encoded name, atomically replaced
}

TEST_F(PersistentTierTest, EncodeNameIsFilesystemSafeAndInjective) {
  const std::string nested = "train/shard 3/img%01.jpg";
  EXPECT_EQ(PersistentTierBackend::EncodeName(nested),
            "train%2Fshard%203%2Fimg%2501.jpg");
  // No leading dot can survive encoding (no hidden / dot-dot names).
  EXPECT_EQ(PersistentTierBackend::EncodeName("..").front(), '%');
  // Long names truncate but stay distinct via the checksum suffix.
  const std::string long_a(500, 'a');
  const std::string long_b = long_a + "b";
  const auto ea = PersistentTierBackend::EncodeName(long_a);
  const auto eb = PersistentTierBackend::EncodeName(long_b);
  EXPECT_LE(ea.size(), 200u);
  EXPECT_NE(ea, eb);

  // And such paths still round-trip through the store + recovery.
  {
    PersistentTierBackend tier(root_, {});
    ASSERT_TRUE(tier.Write(nested, Bytes("nested")).ok());
    ASSERT_TRUE(tier.Write(long_a, Bytes("long")).ok());
  }
  PersistentTierBackend reopened(root_, {});
  auto recovered = reopened.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), 2u);
  std::vector<std::byte> buf(6);
  auto n = reopened.Read(nested, 0, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(buf, Bytes("nested"));
}

TEST_F(PersistentTierTest, RecoveryRebuildsIndexAcrossInstances) {
  {
    PersistentTierBackend tier(root_, {});
    ASSERT_TRUE(tier.Write("a", Bytes("alpha")).ok());
    ASSERT_TRUE(tier.Write("b", Bytes("bravo!")).ok());
  }  // destructor: clean shutdown, entries stay on disk

  PersistentTierBackend tier(root_, {});
  // Cold until Recover(): prior contents are invisible.
  EXPECT_EQ(tier.FileSize("a").status().code(), StatusCode::kNotFound);

  auto recovered = tier.Recover();
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->size(), 2u);
  const auto stats = tier.LastRecovery();
  EXPECT_EQ(stats.recovered, 2u);
  EXPECT_EQ(stats.discarded_torn, 0u);
  EXPECT_EQ(stats.discarded_corrupt, 0u);

  std::vector<std::byte> buf(6);
  auto n = tier.Read("b", 0, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(buf, Bytes("bravo!"));
  auto size = tier.FileSize("a");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
}

TEST_F(PersistentTierTest, RecoveryDiscardsTornEntry) {
  {
    PersistentTierBackend tier(root_, {});
    ASSERT_TRUE(tier.Write("whole", Bytes("intact entry payload")).ok());
    ASSERT_TRUE(tier.Write("torn", Bytes("this one gets truncated")).ok());
  }
  // Simulate a crash mid-write that still published (e.g. power loss
  // after rename, before data blocks hit disk): chop the entry short.
  fs::resize_file(EntryFile("torn"), 10);

  PersistentTierBackend tier(root_, {});
  auto recovered = tier.Recover();
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->size(), 1u);
  EXPECT_EQ(recovered->front().path, "whole");
  EXPECT_EQ(tier.LastRecovery().discarded_torn, 1u);
  EXPECT_FALSE(fs::exists(EntryFile("torn")));  // unlinked, not re-served
  EXPECT_EQ(tier.FileSize("torn").status().code(), StatusCode::kNotFound);
}

TEST_F(PersistentTierTest, RecoveryDiscardsChecksumMismatch) {
  {
    PersistentTierBackend tier(root_, {});
    ASSERT_TRUE(tier.Write("good", Bytes("clean payload")).ok());
    ASSERT_TRUE(tier.Write("bad", Bytes("bitrot victim")).ok());
  }
  // Flip one payload byte in place: size and footer stay plausible, only
  // the payload CRC can catch it.
  {
    std::fstream f(EntryFile("bad"), std::ios::in | std::ios::out |
                                         std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(3);
    f.put('X');
  }

  PersistentTierBackend tier(root_, {});
  auto recovered = tier.Recover();
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->size(), 1u);
  EXPECT_EQ(recovered->front().path, "good");
  EXPECT_EQ(tier.LastRecovery().discarded_corrupt, 1u);
  EXPECT_FALSE(fs::exists(EntryFile("bad")));
}

TEST_F(PersistentTierTest, RecoveryDiscardsForeignEntry) {
  {
    PersistentTierBackend tier(root_, {});
    ASSERT_TRUE(tier.Write("real", Bytes("legitimate entry")).ok());
  }
  // A byte-identical copy under the wrong name: internally consistent
  // (both CRCs pass) but its stored path disagrees with the filename,
  // so reads would never find it — recovery must not adopt it.
  fs::copy_file(EntryFile("real"), root_ / "objects" / "imposter");

  PersistentTierBackend tier(root_, {});
  auto recovered = tier.Recover();
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->size(), 1u);
  EXPECT_EQ(recovered->front().path, "real");
  EXPECT_EQ(tier.LastRecovery().discarded_foreign, 1u);
  EXPECT_FALSE(fs::exists(root_ / "objects" / "imposter"));
}

TEST_F(PersistentTierTest, RecoveryCleansStaleTemps) {
  {
    PersistentTierBackend tier(root_, {});
    ASSERT_TRUE(tier.Write("kept", Bytes("payload")).ok());
  }
  // A writer died between open and rename.
  {
    std::ofstream f(root_ / "tmp" / "kept.12345.0.tmp", std::ios::binary);
    f << "half-written";
  }

  PersistentTierBackend tier(root_, {});
  auto recovered = tier.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), 1u);
  EXPECT_EQ(tier.LastRecovery().discarded_tmp, 1u);
  EXPECT_TRUE(fs::is_empty(root_ / "tmp"));
}

TEST_F(PersistentTierTest, RecoveryIsIdempotent) {
  PersistentTierBackend tier(root_, {});
  ASSERT_TRUE(tier.Write("a", Bytes("alpha")).ok());
  for (int i = 0; i < 3; ++i) {
    auto recovered = tier.Recover();
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered->size(), 1u);
  }
  std::vector<std::byte> buf(5);
  EXPECT_TRUE(tier.Read("a", 0, buf).ok());
}

TEST_F(PersistentTierTest, FlushWorkerEvictsOldestOverBudget) {
  PersistentTierOptions o;
  // Each 100-byte entry costs 100 + path + 24 on disk; budget fits ~3.
  o.byte_budget = 400;
  o.flush_interval = Millis{5};
  PersistentTierBackend tier(root_, o);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        tier.Write("f" + std::to_string(i), std::vector<std::byte>(100)).ok());
  }
  for (int i = 0; i < 200 && tier.DiskBytes() > o.byte_budget; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_LE(tier.DiskBytes(), o.byte_budget);
  EXPECT_GE(tier.Evictions(), 3u);
  // Oldest writes go first; the newest entry must survive.
  EXPECT_TRUE(tier.FileSize("f5").ok());
  EXPECT_EQ(tier.FileSize("f0").status().code(), StatusCode::kNotFound);
}

TEST_F(PersistentTierTest, RecoveryEnforcesBudget) {
  {
    PersistentTierBackend tier(root_, {});  // unlimited while seeding
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          tier.Write("f" + std::to_string(i), std::vector<std::byte>(100)).ok());
    }
  }
  PersistentTierOptions o;
  o.byte_budget = 400;
  PersistentTierBackend tier(root_, o);
  auto recovered = tier.Recover();
  ASSERT_TRUE(recovered.ok());
  // The warm set handed back already respects the budget.
  EXPECT_LE(tier.DiskBytes(), o.byte_budget);
  EXPECT_LT(recovered->size(), 6u);
  EXPECT_LE(ObjectCount(), recovered->size());
}

TEST_F(PersistentTierTest, VerifyReadsDetectsLateCorruption) {
  PersistentTierOptions o;
  o.verify_reads = true;
  PersistentTierBackend tier(root_, o);
  ASSERT_TRUE(tier.Write("f", Bytes("payload under guard")).ok());
  std::vector<std::byte> buf(7);
  ASSERT_TRUE(tier.Read("f", 0, buf).ok());

  // Corrupt after the write was indexed — only verify_reads catches it.
  {
    std::fstream f(EntryFile("f"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.put('Z');
  }
  auto n = tier.Read("f", 1, buf);  // even an offset read verifies fully
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace prisma::storage
