// PrefetchObject end-to-end over a synthetic backend: epoch announcement,
// full-epoch consumption with content checks, pass-through reads, live
// knob changes, chunked reads, stats, and the reader timeline.
#include <gtest/gtest.h>

#include <thread>

#include "dataplane/prefetch_object.hpp"
#include "dataplane/stage.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::dataplane {
namespace {

using storage::DatasetCatalog;
using storage::DeviceProfile;
using storage::ImageNetDataset;
using storage::MakeSyntheticImageNet;
using storage::SyntheticBackend;
using storage::SyntheticBackendOptions;
using storage::SyntheticImageNetSpec;
namespace SyntheticContent = storage::SyntheticContent;

class PrefetchObjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticImageNetSpec spec;
    spec.num_train = 60;
    spec.num_validation = 10;
    spec.mean_file_size = 8 * 1024;
    spec.min_file_size = 1024;
    ds_ = MakeSyntheticImageNet(spec);

    SyntheticBackendOptions opts;
    opts.profile = DeviceProfile::Instant();
    opts.time_scale = 0.0;
    backend_ = std::make_shared<SyntheticBackend>(opts, ds_);
  }

  std::unique_ptr<PrefetchObject> MakeObject(PrefetchOptions options = {}) {
    return std::make_unique<PrefetchObject>(backend_, options,
                                            SteadyClock::Shared());
  }

  ImageNetDataset ds_;
  std::shared_ptr<SyntheticBackend> backend_;
};

TEST_F(PrefetchObjectTest, ServesAnnouncedEpochInOrder) {
  auto obj = MakeObject({.initial_producers = 2, .buffer_capacity = 8});
  ASSERT_TRUE(obj->Start().ok());

  storage::EpochShuffler shuffler(ds_.train.Names(), 5);
  const auto order = shuffler.OrderFor(0);
  ASSERT_TRUE(obj->BeginEpoch(0, order).ok());

  for (const auto& name : order) {
    const auto size = *ds_.train.SizeOf(name);
    std::vector<std::byte> buf(size);
    auto n = obj->Read(name, 0, buf);
    ASSERT_TRUE(n.ok()) << name;
    EXPECT_EQ(*n, size);
    EXPECT_EQ(buf, SyntheticContent::Generate(name, size)) << name;
  }
  obj->Stop();

  const auto stats = obj->CollectStats();
  EXPECT_EQ(stats.samples_consumed, order.size());
  EXPECT_EQ(stats.samples_produced, order.size());
  EXPECT_EQ(stats.passthrough_reads, 0u);
}

TEST_F(PrefetchObjectTest, UnannouncedPathsPassThrough) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());
  // Validation files are never announced (the prototype does not
  // prefetch them, §V.A) — reads must still succeed, via the backend.
  const auto& f = ds_.validation.At(0);
  std::vector<std::byte> buf(f.size);
  auto n = obj->Read(f.name, 0, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, f.size);
  EXPECT_EQ(obj->CollectStats().passthrough_reads, 1u);
  obj->Stop();
}

TEST_F(PrefetchObjectTest, ReadBeforeStartPassesThrough) {
  auto obj = MakeObject();
  const auto& f = ds_.train.At(0);
  std::vector<std::byte> buf(f.size);
  EXPECT_TRUE(obj->Read(f.name, 0, buf).ok());
  EXPECT_EQ(obj->CollectStats().passthrough_reads, 1u);
}

TEST_F(PrefetchObjectTest, ChunkedReadsAndEof) {
  auto obj = MakeObject({.initial_producers = 1, .buffer_capacity = 4});
  ASSERT_TRUE(obj->Start().ok());
  const auto& f = ds_.train.At(3);
  ASSERT_TRUE(obj->BeginEpoch(0, {f.name}).ok());

  const auto whole = SyntheticContent::Generate(f.name, f.size);
  const std::size_t half = f.size / 2;
  std::vector<std::byte> first(half), second(f.size - half), eof(16);

  auto n1 = obj->Read(f.name, 0, first);
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(*n1, half);
  auto n2 = obj->Read(f.name, half, second);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, f.size - half);
  auto n3 = obj->Read(f.name, f.size, eof);  // past end after consumption
  ASSERT_TRUE(n3.ok());
  EXPECT_EQ(*n3, 0u);

  // prisma-lint: allow(no-payload-copy, test reassembles chunks to compare)
  std::vector<std::byte> reassembled = first;
  reassembled.insert(reassembled.end(), second.begin(), second.end());
  EXPECT_EQ(reassembled, whole);
  obj->Stop();
}

TEST_F(PrefetchObjectTest, FileSizeDelegatesToBackend) {
  auto obj = MakeObject();
  const auto& f = ds_.train.At(1);
  auto size = obj->FileSize(f.name);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, f.size);
  EXPECT_FALSE(obj->FileSize("nope").ok());
}

TEST_F(PrefetchObjectTest, KnobChangesApplyLive) {
  auto obj = MakeObject({.initial_producers = 1,
                         .max_producers = 8,
                         .buffer_capacity = 4});
  ASSERT_TRUE(obj->Start().ok());

  StageKnobs knobs;
  knobs.producers = 4;
  knobs.buffer_capacity = 32;
  ASSERT_TRUE(obj->ApplyKnobs(knobs).ok());
  auto stats = obj->CollectStats();
  EXPECT_EQ(stats.producers, 4u);
  EXPECT_EQ(stats.buffer_capacity, 32u);

  // Shrink back down; retired threads drain via their poll interval.
  knobs.producers = 1;
  knobs.buffer_capacity = 8;
  ASSERT_TRUE(obj->ApplyKnobs(knobs).ok());
  EXPECT_EQ(obj->CollectStats().producers, 1u);

  // Work still flows after resizing both directions.
  storage::EpochShuffler shuffler(ds_.train.Names(), 9);
  const auto order = shuffler.OrderFor(0);
  ASSERT_TRUE(obj->BeginEpoch(0, order).ok());
  for (const auto& name : order) {
    std::vector<std::byte> buf(*ds_.train.SizeOf(name));
    ASSERT_TRUE(obj->Read(name, 0, buf).ok());
  }
  obj->Stop();
}

TEST_F(PrefetchObjectTest, KnobsClampedToMaxProducers) {
  auto obj = MakeObject({.initial_producers = 1, .max_producers = 4});
  ASSERT_TRUE(obj->Start().ok());
  StageKnobs knobs;
  knobs.producers = 100;
  ASSERT_TRUE(obj->ApplyKnobs(knobs).ok());
  EXPECT_EQ(obj->CollectStats().producers, 4u);
  obj->Stop();
}

TEST_F(PrefetchObjectTest, OversizedSamplesFallBackToPassthrough) {
  PrefetchOptions options;
  options.max_sample_bytes = 16;  // everything is oversized
  auto obj = MakeObject(options);
  ASSERT_TRUE(obj->Start().ok());
  const auto& f = ds_.train.At(0);
  ASSERT_TRUE(obj->BeginEpoch(0, {f.name}).ok());
  // The producer refuses to buffer it; the consumer would block forever
  // on the buffer, so it must NOT use the buffered path... the object
  // keeps the name announced, so Read waits. Give the producer a moment
  // to reject it, then verify a pass-through read of a *different*,
  // unannounced file still works (the announced read would block).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto stats = obj->CollectStats();
  EXPECT_EQ(stats.samples_produced, 0u);
  // An oversized read is a rejection, not a read error.
  EXPECT_EQ(stats.oversize_rejects, 1u);
  EXPECT_EQ(stats.read_failures, 0u);
  EXPECT_EQ(stats.read_retries, 0u);
  obj->Stop();
}

TEST_F(PrefetchObjectTest, MultipleEpochsFlowThrough) {
  auto obj = MakeObject({.initial_producers = 3, .buffer_capacity = 16});
  ASSERT_TRUE(obj->Start().ok());
  storage::EpochShuffler shuffler(ds_.train.Names(), 21);
  for (std::uint64_t e = 0; e < 3; ++e) {
    const auto order = shuffler.OrderFor(e);
    ASSERT_TRUE(obj->BeginEpoch(e, order).ok());
    for (const auto& name : order) {
      std::vector<std::byte> buf(*ds_.train.SizeOf(name));
      ASSERT_TRUE(obj->Read(name, 0, buf).ok());
    }
  }
  const auto stats = obj->CollectStats();
  EXPECT_EQ(stats.samples_consumed, 3 * ds_.train.NumFiles());
  obj->Stop();
}

TEST_F(PrefetchObjectTest, AnnouncedSetStaysBoundedAcrossEpochs) {
  // Regression: BeginEpoch used to insert into the announced set and
  // never clear it, so long-running jobs grew it without bound. Names
  // must retire as they are consumed; after each fully-read epoch the
  // set is empty again.
  auto obj = MakeObject({.initial_producers = 2, .buffer_capacity = 16});
  ASSERT_TRUE(obj->Start().ok());
  storage::EpochShuffler shuffler(ds_.train.Names(), 7);
  for (std::uint64_t e = 0; e < 4; ++e) {
    const auto order = shuffler.OrderFor(e);
    ASSERT_TRUE(obj->BeginEpoch(e, order).ok());
    EXPECT_EQ(obj->CollectStats().announced_names, order.size());
    for (const auto& name : order) {
      std::vector<std::byte> buf(*ds_.train.SizeOf(name));
      ASSERT_TRUE(obj->Read(name, 0, buf).ok());
    }
    EXPECT_EQ(obj->CollectStats().announced_names, 0u)
        << "epoch " << e << " left names announced";
  }
  obj->Stop();
}

TEST_F(PrefetchObjectTest, ProducerShrinkDoesNotStallOnFullBuffer) {
  // Regression: shrinking the producer count used to stall in
  // ReconcileProducers' join when a retiring producer sat blocked in
  // buffer_.Insert() on a full buffer with no consumer draining it.
  auto obj = MakeObject({.initial_producers = 4,
                         .max_producers = 8,
                         .buffer_capacity = 2});
  ASSERT_TRUE(obj->Start().ok());
  ASSERT_TRUE(obj->BeginEpoch(0, ds_.train.Names()).ok());
  // Let producers fill the 2-slot buffer and block; nobody reads.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  StageKnobs knobs;
  knobs.producers = 1;
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(obj->ApplyKnobs(knobs).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_EQ(obj->CollectStats().producers, 1u);

  // The epoch still completes: names whose insert was cancelled fail
  // over to pass-through, everything else flows through the buffer.
  for (const auto& name : ds_.train.Names()) {
    std::vector<std::byte> buf(*ds_.train.SizeOf(name));
    ASSERT_TRUE(obj->Read(name, 0, buf).ok()) << name;
  }
  obj->Stop();
}

TEST_F(PrefetchObjectTest, BufferShardsKnobAppliesWhenQuiescent) {
  auto obj = MakeObject({.initial_producers = 1, .buffer_capacity = 8});
  ASSERT_TRUE(obj->Start().ok());
  StageKnobs knobs;
  knobs.buffer_shards = 4;
  ASSERT_TRUE(obj->ApplyKnobs(knobs).ok());
  EXPECT_EQ(obj->CollectStats().buffer_shards, 4u);

  // Work still flows through the resharded buffer.
  storage::EpochShuffler shuffler(ds_.train.Names(), 13);
  const auto order = shuffler.OrderFor(0);
  ASSERT_TRUE(obj->BeginEpoch(0, order).ok());
  for (const auto& name : order) {
    std::vector<std::byte> buf(*ds_.train.SizeOf(name));
    ASSERT_TRUE(obj->Read(name, 0, buf).ok());
  }
  obj->Stop();
}

TEST_F(PrefetchObjectTest, CleanRunReportsNoFaultCounters) {
  auto obj = MakeObject({.initial_producers = 2, .buffer_capacity = 8});
  ASSERT_TRUE(obj->Start().ok());
  const auto order = ds_.train.Names();
  ASSERT_TRUE(obj->BeginEpoch(0, order).ok());
  for (const auto& name : order) {
    std::vector<std::byte> buf(*ds_.train.SizeOf(name));
    ASSERT_TRUE(obj->Read(name, 0, buf).ok());
  }
  obj->Stop();
  const auto stats = obj->CollectStats();
  EXPECT_EQ(stats.read_retries, 0u);
  EXPECT_EQ(stats.read_failures, 0u);
  EXPECT_EQ(stats.oversize_rejects, 0u);
}

TEST_F(PrefetchObjectTest, StopIsIdempotentAndStartFailsTwice) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());
  EXPECT_EQ(obj->Start().code(), StatusCode::kFailedPrecondition);
  obj->Stop();
  obj->Stop();
}

TEST_F(PrefetchObjectTest, ReaderTimelineRecordsActivity) {
  SyntheticBackendOptions opts;
  opts.profile = DeviceProfile::Instant();
  opts.profile.issue_latency = Millis{5};
  opts.time_scale = 1.0;
  auto slow_backend = std::make_shared<SyntheticBackend>(opts, ds_);
  PrefetchObject obj(slow_backend, {.initial_producers = 2, .buffer_capacity = 8},
                     SteadyClock::Shared());
  ASSERT_TRUE(obj.Start().ok());
  storage::EpochShuffler shuffler(ds_.train.Names(), 2);
  const auto order = shuffler.OrderFor(0);
  ASSERT_TRUE(obj.BeginEpoch(0, order).ok());
  for (const auto& name : order) {
    std::vector<std::byte> buf(*ds_.train.SizeOf(name));
    ASSERT_TRUE(obj.Read(name, 0, buf).ok());
  }
  obj.Stop();
  const auto tl = obj.ReaderTimeline();
  EXPECT_GT(tl.TotalTime().count(), 0);
  EXPECT_GE(tl.MaxValue(), 1);
  EXPECT_LE(tl.MaxValue(), 2);  // never more than the producer count
}

TEST_F(PrefetchObjectTest, StageWrapsObject) {
  auto obj = std::shared_ptr<PrefetchObject>(
      MakeObject({.initial_producers = 1, .buffer_capacity = 8}).release());
  Stage stage(StageInfo{"job-1", "tensorflow", 0}, obj);
  ASSERT_TRUE(stage.Start().ok());
  const auto& f = ds_.train.At(0);
  ASSERT_TRUE(stage.BeginEpoch(0, {f.name}).ok());
  auto data = stage.ReadAll(f.name, f.size);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, SyntheticContent::Generate(f.name, f.size));
  EXPECT_EQ(stage.info().id, "job-1");
  EXPECT_EQ(*stage.FileSize(f.name), f.size);
  stage.Stop();
}

}  // namespace
}  // namespace prisma::dataplane
