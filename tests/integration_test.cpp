// Live end-to-end integrations: the full SDS loop (data plane stage +
// background controller + framework adapter) over a service-time-modeled
// backend, multi-tenant coordination across stages, and the stage
// registry.
#include <gtest/gtest.h>

#include <thread>

#include "common/mutex.hpp"
#include "controlplane/controller.hpp"
#include "dataplane/prefetch_object.hpp"
#include "dataplane/stage_registry.hpp"
#include "frameworks/tf_adapter.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma {
namespace {

using controlplane::AutotunerOptions;
using controlplane::Controller;
using controlplane::ControllerOptions;
using controlplane::PrismaAutotunePolicy;
using dataplane::PrefetchObject;
using dataplane::PrefetchOptions;
using dataplane::Stage;
using dataplane::StageInfo;
using dataplane::StageRegistry;

storage::ImageNetDataset SmallDataset(std::size_t train = 80) {
  storage::SyntheticImageNetSpec spec;
  spec.num_train = train;
  spec.num_validation = 8;
  spec.mean_file_size = 16 * 1024;
  spec.min_file_size = 2 * 1024;
  return storage::MakeSyntheticImageNet(spec);
}

/// Backend with a mild modeled service time so auto-tuning has a real
/// signal, scaled to keep the test fast.
std::shared_ptr<storage::SyntheticBackend> ModeledBackend(
    const storage::ImageNetDataset& ds) {
  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::NvmeP4600();
  o.time_scale = 0.02;  // ~7 us per 113 KiB read at c=1
  return std::make_shared<storage::SyntheticBackend>(o, ds);
}

TEST(IntegrationTest, AutoTunedTrainingLoop) {
  const auto ds = SmallDataset(120);
  auto backend = ModeledBackend(ds);

  PrefetchOptions po;
  po.initial_producers = 1;
  po.max_producers = 8;
  po.buffer_capacity = 8;
  auto object =
      std::make_shared<PrefetchObject>(backend, po, SteadyClock::Shared());
  auto stage = std::make_shared<Stage>(StageInfo{"train-job", "tensorflow", 1},
                                       object);
  ASSERT_TRUE(stage->Start().ok());

  // Background controller with the real PRISMA policy.
  ControllerOptions copts;
  copts.poll_interval = Millis{5};
  Controller controller(
      "ctrl", copts,
      [] {
        AutotunerOptions ao;
        ao.period_min_inserts = 20;
        ao.period_max_ticks = 4;
        ao.max_producers = 8;
        return std::make_unique<PrismaAutotunePolicy>(ao);
      },
      SteadyClock::Shared());
  ASSERT_TRUE(controller.Attach(stage).ok());
  ASSERT_TRUE(controller.RunInBackground().ok());

  // Framework side: TF adapter consuming three epochs in shuffle order.
  frameworks::TfPosixFileSystem fs(backend, stage);
  storage::EpochShuffler shuffler(ds.train.Names(), 42);
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    const auto order = shuffler.OrderFor(epoch);
    ASSERT_TRUE(stage->BeginEpoch(epoch, order).ok());
    for (const auto& name : order) {
      auto file = fs.NewRandomAccessFile(name);
      ASSERT_TRUE(file.ok());
      const auto size = *fs.GetFileSize(name);
      std::vector<std::byte> buf(size);
      ASSERT_TRUE((*file)->Read(0, buf).ok()) << name;
      ASSERT_EQ(buf, storage::SyntheticContent::Generate(name, size));
    }
  }

  controller.Stop();
  const auto stats = stage->CollectStats();
  EXPECT_EQ(stats.samples_consumed, 3 * ds.train.NumFiles());
  EXPECT_EQ(stats.passthrough_reads, 0u);
  EXPECT_GE(stats.producers, 1u);
  EXPECT_LE(stats.producers, 8u);
  stage->Stop();
}

TEST(IntegrationTest, MultiTenantBudgetIsEnforcedLive) {
  // Two jobs share one backend under a global producer budget — the
  // coordinated control the paper argues framework-intrinsic
  // optimizations cannot provide (§II "partial visibility").
  const auto ds = SmallDataset(60);
  auto backend = ModeledBackend(ds);

  auto make_stage = [&](const std::string& id) {
    PrefetchOptions po;
    po.initial_producers = 1;
    po.max_producers = 16;
    po.buffer_capacity = 8;
    auto object =
        std::make_shared<PrefetchObject>(backend, po, SteadyClock::Shared());
    auto stage =
        std::make_shared<Stage>(StageInfo{id, "tensorflow", 1}, object);
    EXPECT_TRUE(stage->Start().ok());
    return stage;
  };
  auto s1 = make_stage("tenant-a");
  auto s2 = make_stage("tenant-b");

  ControllerOptions copts;
  copts.poll_interval = Millis{5};
  copts.global_producer_budget = 5;
  Controller controller(
      "ctrl", copts,
      [] {
        // Each stage's own policy asks for a lot; the coordinator caps.
        dataplane::StageKnobs greedy;
        greedy.producers = 12;
        return std::make_unique<controlplane::FixedKnobsPolicy>(greedy);
      },
      SteadyClock::Shared());
  ASSERT_TRUE(controller.Attach(s1).ok());
  ASSERT_TRUE(controller.Attach(s2).ok());

  // Drive both stages concurrently while the controller coordinates.
  ASSERT_TRUE(controller.RunInBackground().ok());
  storage::EpochShuffler shuffler(ds.train.Names(), 3);
  const auto order = shuffler.OrderFor(0);
  ASSERT_TRUE(s1->BeginEpoch(0, order).ok());
  ASSERT_TRUE(s2->BeginEpoch(0, order).ok());

  auto consume = [&](const std::shared_ptr<Stage>& stage) {
    for (const auto& name : order) {
      std::vector<std::byte> buf(*stage->FileSize(name));
      ASSERT_TRUE(stage->Read(name, 0, buf).ok());
    }
  };
  std::thread t1([&] { consume(s1); });
  std::thread t2([&] { consume(s2); });
  t1.join();
  t2.join();
  controller.Stop();

  const auto p1 = s1->CollectStats().producers;
  const auto p2 = s2->CollectStats().producers;
  EXPECT_LE(p1 + p2, 5u) << "global budget must cap total producers";
  EXPECT_GE(p1, 1u);
  EXPECT_GE(p2, 1u);
  s1->Stop();
  s2->Stop();
}

TEST(IntegrationTest, FilenameListHandshake) {
  // The paper's integration flow (§IV): "a filenames list, populated by
  // the DL framework at the beginning of the training phase, is shared
  // with PRISMA" through a file written by a small script. Framework
  // side writes the shuffled order; PRISMA side reads it and announces.
  const auto ds = SmallDataset(30);
  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::Instant();
  o.time_scale = 0.0;
  auto backend = std::make_shared<storage::SyntheticBackend>(o, ds);

  const std::string list_path =
      ::testing::TempDir() + "/prisma_epoch0.list";

  // Framework process: shuffle (its own mechanism) and publish.
  storage::EpochShuffler framework_shuffler(ds.train.Names(), 77);
  const auto framework_order = framework_shuffler.OrderFor(0);
  ASSERT_TRUE(storage::WriteFilenameList(list_path, framework_order).ok());

  // PRISMA side: load the list and announce it to the stage.
  auto object = std::make_shared<PrefetchObject>(
      backend, PrefetchOptions{.initial_producers = 2, .buffer_capacity = 8},
      SteadyClock::Shared());
  Stage stage(StageInfo{"list-job", "tensorflow", 0}, object);
  ASSERT_TRUE(stage.Start().ok());
  auto loaded = storage::ReadFilenameList(list_path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(*loaded, framework_order);  // footnote-1 agreement invariant
  ASSERT_TRUE(stage.BeginEpoch(0, *loaded).ok());

  // Framework consumes in ITS order; every read is a buffered hit path.
  for (const auto& name : framework_order) {
    std::vector<std::byte> buf(*stage.FileSize(name));
    ASSERT_TRUE(stage.Read(name, 0, buf).ok());
  }
  EXPECT_EQ(stage.CollectStats().passthrough_reads, 0u);
  stage.Stop();
}

TEST(IntegrationTest, StageRegistryLifecycle) {
  StageRegistry registry;
  const auto ds = SmallDataset(10);
  auto backend = ModeledBackend(ds);
  auto object = std::make_shared<PrefetchObject>(backend, PrefetchOptions{},
                                                 SteadyClock::Shared());
  auto stage = std::make_shared<Stage>(StageInfo{"r1", "x", 0}, object);

  EXPECT_EQ(registry.size(), 0u);
  ASSERT_TRUE(registry.Register(stage).ok());
  EXPECT_EQ(registry.Register(stage).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Find("r1").get(), stage.get());
  EXPECT_EQ(registry.Find("nope"), nullptr);
  EXPECT_EQ(registry.All().size(), 1u);
  ASSERT_TRUE(registry.Unregister("r1").ok());
  EXPECT_EQ(registry.Unregister("r1").code(), StatusCode::kNotFound);
}

TEST(IntegrationTest, PrismaCutsWallClockOnIoBoundLoop) {
  // Live (non-DES) sanity check of the headline effect: with a modeled
  // device, prefetching + parallel producers must beat the same consumer
  // doing cold reads one at a time.
  // The lock-order validator's per-acquisition backtrace() and TSan's
  // synchronization interception both tax the lock-heavy prefetch path
  // far more than the lock-free baseline loop, so the wall-clock
  // comparison says nothing in those builds.
  if (Mutex::OrderCheckingEnabled()) {
    GTEST_SKIP() << "wall-clock comparison skipped under the lock-order "
                    "validator";
  }
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "wall-clock comparison skipped under ThreadSanitizer";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "wall-clock comparison skipped under ThreadSanitizer";
#endif
#endif
  const auto ds = SmallDataset(150);

  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::NvmeP4600();
  o.time_scale = 0.05;
  auto backend = std::make_shared<storage::SyntheticBackend>(o, ds);

  storage::EpochShuffler shuffler(ds.train.Names(), 5);
  const auto order = shuffler.OrderFor(0);

  // Baseline: synchronous reads.
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& name : order) {
    std::vector<std::byte> buf(*ds.train.SizeOf(name));
    ASSERT_TRUE(backend->Read(name, 0, buf).ok());
  }
  const auto baseline = std::chrono::steady_clock::now() - t0;

  // PRISMA: 4 producers prefetching ahead of the same consumer loop.
  PrefetchOptions po;
  po.initial_producers = 4;
  po.max_producers = 4;
  po.buffer_capacity = 32;
  PrefetchObject object(backend, po, SteadyClock::Shared());
  ASSERT_TRUE(object.Start().ok());
  ASSERT_TRUE(object.BeginEpoch(0, order).ok());
  const auto t1 = std::chrono::steady_clock::now();
  for (const auto& name : order) {
    std::vector<std::byte> buf(*ds.train.SizeOf(name));
    ASSERT_TRUE(object.Read(name, 0, buf).ok());
  }
  const auto prisma = std::chrono::steady_clock::now() - t1;
  object.Stop();

  EXPECT_LT(prisma, baseline) << "prefetching must beat cold serial reads";
}

}  // namespace
}  // namespace prisma
