// StagePipeline: declarative composition, lifecycle ordering, and the
// namespaced control surface (DESIGN.md §12).
//
// Includes the regression pair for the stacked-composition control bug:
// with hand-built stacking the control plane only ever talked to the
// outermost object, so knobs and stats never reached inner layers.
// KnobsOnHandBuiltStackOnlyReachOutermost freezes that pre-pipeline
// behavior; PipelineRoutesKnobsToEveryLayer asserts the pipeline's
// routing fixes it.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataplane/object_backend.hpp"
#include "dataplane/pipeline_builder.hpp"
#include "dataplane/prefetch_object.hpp"
#include "dataplane/stage.hpp"
#include "dataplane/stage_pipeline.hpp"
#include "dataplane/tiering_object.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::dataplane {
namespace {

using storage::DeviceProfile;
using storage::SyntheticBackend;
using storage::SyntheticBackendOptions;

// ---------------------------------------------------------------------------
// Spec parsing

TEST(PipelineSpecTest, ParsesLayersOutermostFirst) {
  auto layers = ParsePipelineSpec("prefetch|tiering");
  ASSERT_TRUE(layers.ok());
  EXPECT_EQ(*layers, (std::vector<std::string>{"prefetch", "tiering"}));
}

TEST(PipelineSpecTest, TrimsWhitespaceAroundSegments) {
  auto layers = ParsePipelineSpec("  prefetch | tiering ");
  ASSERT_TRUE(layers.ok());
  EXPECT_EQ(*layers, (std::vector<std::string>{"prefetch", "tiering"}));
}

TEST(PipelineSpecTest, SingleLayerSpec) {
  auto layers = ParsePipelineSpec("tiering");
  ASSERT_TRUE(layers.ok());
  EXPECT_EQ(*layers, (std::vector<std::string>{"tiering"}));
}

TEST(PipelineSpecTest, RejectsEmptySpec) {
  EXPECT_EQ(ParsePipelineSpec("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParsePipelineSpec("   ").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PipelineSpecTest, RejectsEmptySegment) {
  EXPECT_EQ(ParsePipelineSpec("prefetch||tiering").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParsePipelineSpec("prefetch|").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PipelineSpecTest, RejectsUnknownLayer) {
  const auto status = ParsePipelineSpec("prefetch|compression").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("compression"), std::string::npos);
}

TEST(PipelineSpecTest, RejectsDuplicateLayer) {
  EXPECT_EQ(ParsePipelineSpec("prefetch|prefetch").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Namespaced knob parsing

TEST(StageKnobsTest, SetParsesNamespacedPath) {
  StageKnobs knobs;
  ASSERT_TRUE(knobs.Set("tiering.migration_workers", 3).ok());
  ASSERT_TRUE(knobs.Set("prefetch.producers", 4).ok());
  ASSERT_EQ(knobs.scoped.size(), 2u);
  EXPECT_EQ(knobs.scoped[0].object, "tiering");
  EXPECT_EQ(knobs.scoped[0].knob, "migration_workers");
  EXPECT_EQ(knobs.scoped[0].value, 3.0);
  EXPECT_EQ(knobs.scoped[1].object, "prefetch");
  EXPECT_EQ(knobs.scoped[1].knob, "producers");
  EXPECT_FALSE(knobs.Empty());
}

TEST(StageKnobsTest, SetRejectsMalformedPaths) {
  StageKnobs knobs;
  EXPECT_EQ(knobs.Set("producers", 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(knobs.Set(".producers", 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(knobs.Set("tiering.", 1).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(knobs.Empty());
}

// ---------------------------------------------------------------------------
// Stats projection helpers (the autotuner layer-targeting seam)

TEST(StatsProjectionTest, SectionRoundTripsThroughSnapshot) {
  StageStatsSnapshot snap;
  snap.producers = 5;
  snap.buffer_capacity = 64;
  snap.buffer_occupancy = 7;
  snap.samples_produced = 100;
  snap.samples_consumed = 90;
  snap.consumer_waits = 11;
  snap.queue_depth = 3;

  const ObjectStatsSection section = SnapshotToSection("prefetch", snap);
  EXPECT_EQ(section.object, "prefetch");
  EXPECT_EQ(section.Get("producers", 0), 5.0);
  EXPECT_EQ(section.Get("samples_consumed", 0), 90.0);

  StageStatsSnapshot base;
  base.objects.push_back(section);
  const StageStatsSnapshot view = SnapshotForObject(base, "prefetch");
  EXPECT_EQ(view.producers, 5u);
  EXPECT_EQ(view.buffer_capacity, 64u);
  EXPECT_EQ(view.buffer_occupancy, 7u);
  EXPECT_EQ(view.samples_produced, 100u);
  EXPECT_EQ(view.samples_consumed, 90u);
  EXPECT_EQ(view.consumer_waits, 11u);
  EXPECT_EQ(view.queue_depth, 3u);
}

TEST(StatsProjectionTest, ScopeKnobsNamespacesFlatFields) {
  StageKnobs flat;
  flat.producers = 6;
  flat.buffer_capacity = 128;
  const StageKnobs scoped = ScopeKnobs(flat, "tiering");
  EXPECT_FALSE(scoped.producers.has_value());
  EXPECT_FALSE(scoped.buffer_capacity.has_value());
  ASSERT_EQ(scoped.scoped.size(), 2u);
  EXPECT_EQ(scoped.scoped[0].object, "tiering");
  EXPECT_EQ(scoped.scoped[0].knob, "producers");
  EXPECT_EQ(scoped.scoped[0].value, 6.0);
  EXPECT_EQ(scoped.scoped[1].knob, "buffer_capacity");
}

// ---------------------------------------------------------------------------
// Lifecycle ordering, via instrumented fake layers

class FakeLayer final : public OptimizationObject {
 public:
  FakeLayer(std::string name, std::vector<std::string>* log,
            bool fail_start = false)
      : name_(std::move(name)), log_(log), fail_start_(fail_start) {}

  std::string_view Name() const override { return name_; }

  Status Start() override {
    log_->push_back(name_ + ":start");
    if (fail_start_) return Status::Internal(name_ + " refuses to start");
    return Status::Ok();
  }

  void Stop() override { log_->push_back(name_ + ":stop"); }

  Result<std::size_t> Read(const std::string&, std::uint64_t,
                           std::span<std::byte>) override {
    log_->push_back(name_ + ":read");
    return static_cast<std::size_t>(0);
  }

  Result<std::uint64_t> FileSize(const std::string&) override {
    return static_cast<std::uint64_t>(0);
  }

  Status BeginEpoch(std::uint64_t epoch,
                    const std::vector<std::string>&) override {
    log_->push_back(name_ + ":epoch" + std::to_string(epoch));
    return Status::Ok();
  }

  Status ApplyKnobs(const StageKnobs&) override {
    log_->push_back(name_ + ":flat-knobs");
    return Status::Ok();
  }

  Status ApplyNamedKnob(std::string_view knob, double value) override {
    log_->push_back(name_ + ":" + std::string(knob) + "=" +
                    std::to_string(static_cast<int>(value)));
    return Status::Ok();
  }

  StageStatsSnapshot CollectStats() const override { return {}; }

  void AppendNamedStats(ObjectStatsSection& section) const override {
    section.Set("fake_gauge", 42.0);
  }

 private:
  std::string name_;
  std::vector<std::string>* log_;
  bool fail_start_;
};

TEST(StagePipelineTest, StartsInnermostFirstStopsOutermostFirst) {
  std::vector<std::string> log;
  StagePipeline pipeline({std::make_shared<FakeLayer>("outer", &log),
                          std::make_shared<FakeLayer>("mid", &log),
                          std::make_shared<FakeLayer>("inner", &log)});
  ASSERT_TRUE(pipeline.Start().ok());
  EXPECT_EQ(log, (std::vector<std::string>{"inner:start", "mid:start",
                                           "outer:start"}));
  log.clear();
  pipeline.Stop();
  EXPECT_EQ(log,
            (std::vector<std::string>{"outer:stop", "mid:stop", "inner:stop"}));
}

TEST(StagePipelineTest, PartialStartRollsBackStartedLayers) {
  std::vector<std::string> log;
  StagePipeline pipeline(
      {std::make_shared<FakeLayer>("outer", &log),
       std::make_shared<FakeLayer>("mid", &log, /*fail_start=*/true),
       std::make_shared<FakeLayer>("inner", &log)});
  const Status status = pipeline.Start();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // inner started, mid failed, inner rolled back; outer never started.
  EXPECT_EQ(log,
            (std::vector<std::string>{"inner:start", "mid:start", "inner:stop"}));
}

TEST(StagePipelineTest, BeginEpochReachesEveryLayer) {
  std::vector<std::string> log;
  StagePipeline pipeline({std::make_shared<FakeLayer>("outer", &log),
                          std::make_shared<FakeLayer>("mid", &log),
                          std::make_shared<FakeLayer>("inner", &log)});
  ASSERT_TRUE(pipeline.BeginEpoch(7, {}).ok());
  EXPECT_EQ(log, (std::vector<std::string>{"outer:epoch7", "mid:epoch7",
                                           "inner:epoch7"}));
}

TEST(StagePipelineTest, ScopedKnobsRouteToNamedLayer) {
  std::vector<std::string> log;
  StagePipeline pipeline({std::make_shared<FakeLayer>("outer", &log),
                          std::make_shared<FakeLayer>("inner", &log)});
  StageKnobs knobs;
  ASSERT_TRUE(knobs.Set("inner.custom_knob", 5).ok());
  ASSERT_TRUE(pipeline.ApplyKnobs(knobs).ok());
  EXPECT_EQ(log, (std::vector<std::string>{"inner:custom_knob=5"}));
}

TEST(StagePipelineTest, UnknownLayerInScopedKnobIsAnError) {
  std::vector<std::string> log;
  StagePipeline pipeline({std::make_shared<FakeLayer>("outer", &log)});
  StageKnobs knobs;
  ASSERT_TRUE(knobs.Set("ghost.producers", 1).ok());
  EXPECT_EQ(pipeline.ApplyKnobs(knobs).code(), StatusCode::kInvalidArgument);
}

TEST(StagePipelineTest, CollectStatsHasOneSectionPerLayer) {
  std::vector<std::string> log;
  StagePipeline pipeline({std::make_shared<FakeLayer>("outer", &log),
                          std::make_shared<FakeLayer>("inner", &log)});
  const auto stats = pipeline.CollectStats();
  ASSERT_EQ(stats.objects.size(), 2u);
  EXPECT_EQ(stats.objects[0].object, "outer");
  EXPECT_EQ(stats.objects[1].object, "inner");
  ASSERT_NE(stats.FindObject("inner"), nullptr);
  EXPECT_EQ(stats.FindObject("inner")->Get("fake_gauge", 0), 42.0);
  EXPECT_EQ(stats.FindObject("ghost"), nullptr);
}

// ---------------------------------------------------------------------------
// Real layers: the regression pair and parity with hand-built stacking

class StagePipelineStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::SyntheticImageNetSpec spec;
    spec.num_train = 40;
    spec.num_validation = 4;
    spec.mean_file_size = 8 * 1024;
    spec.min_file_size = 1024;
    ds_ = storage::MakeSyntheticImageNet(spec);

    SyntheticBackendOptions o;
    o.profile = DeviceProfile::Instant();
    o.time_scale = 0.0;
    slow_ = std::make_shared<SyntheticBackend>(o, ds_);
    fast_ = std::make_shared<SyntheticBackend>(o);
  }

  storage::ImageNetDataset ds_;
  std::shared_ptr<SyntheticBackend> slow_;
  std::shared_ptr<SyntheticBackend> fast_;
};

// Freeze of the PRE-pipeline behavior: when objects were hand-stacked
// behind a single-object Stage, the control plane held only the
// outermost object, so a knob aimed at the inner layer silently stopped
// at the top of the stack. (The single-object Stage forwarded ApplyKnobs
// verbatim to its one object; this drives the outermost object directly,
// which is exactly what that Stage did.)
TEST_F(StagePipelineStackTest, KnobsOnHandBuiltStackOnlyReachOutermost) {
  TieringOptions to;
  to.migration_workers = 1;
  auto tiering =
      std::make_shared<TieringObject>(slow_, fast_, to, SteadyClock::Shared());
  ASSERT_TRUE(tiering->Start().ok());
  auto middle = std::make_shared<ObjectBackend>(tiering);
  PrefetchOptions po;
  po.initial_producers = 1;
  auto prefetch = std::make_shared<PrefetchObject>(middle, po,
                                                   SteadyClock::Shared());
  ASSERT_TRUE(prefetch->Start().ok());

  StageKnobs knobs;
  knobs.producers = 3;
  ASSERT_TRUE(prefetch->ApplyKnobs(knobs).ok());

  // The outermost layer scaled; the inner layer never saw the knob.
  EXPECT_EQ(prefetch->CollectStats().producers, 3u);
  EXPECT_EQ(tiering->CollectStats().producers, 1u);

  // Likewise, the outermost snapshot says nothing about the inner layer.
  EXPECT_EQ(prefetch->CollectStats().FindObject("tiering"), nullptr);

  prefetch->Stop();
  tiering->Stop();
}

// The fix: the pipeline routes scoped knobs to the named layer and
// reports a stats section for every layer.
TEST_F(StagePipelineStackTest, PipelineRoutesKnobsToEveryLayer) {
  TieringOptions to;
  to.migration_workers = 1;
  auto tiering =
      std::make_shared<TieringObject>(slow_, fast_, to, SteadyClock::Shared());
  auto middle = std::make_shared<ObjectBackend>(tiering);
  PrefetchOptions po;
  po.initial_producers = 1;
  auto prefetch = std::make_shared<PrefetchObject>(middle, po,
                                                   SteadyClock::Shared());

  StagePipeline pipeline({prefetch, tiering});
  ASSERT_TRUE(pipeline.Start().ok());

  StageKnobs knobs;
  knobs.producers = 3;  // flat -> prefetch alias
  ASSERT_TRUE(knobs.Set("tiering.migration_workers", 2).ok());
  ASSERT_TRUE(pipeline.ApplyKnobs(knobs).ok());

  const auto stats = pipeline.CollectStats();
  EXPECT_EQ(stats.producers, 3u);  // flat view == prefetch layer
  ASSERT_NE(stats.FindObject("prefetch"), nullptr);
  EXPECT_EQ(stats.FindObject("prefetch")->Get("producers", 0), 3.0);
  ASSERT_NE(stats.FindObject("tiering"), nullptr);
  EXPECT_EQ(stats.FindObject("tiering")->Get("migration_workers", 0), 2.0);

  // Unknown knob on a real layer is a routed error, not a silent drop.
  StageKnobs bad;
  ASSERT_TRUE(bad.Set("tiering.no_such_knob", 1).ok());
  EXPECT_EQ(pipeline.ApplyKnobs(bad).code(), StatusCode::kInvalidArgument);

  pipeline.Stop();
}

// Flat knobs on a pipeline with no prefetch layer keep the old
// single-object meaning: they alias the outermost layer.
TEST_F(StagePipelineStackTest, FlatKnobsAliasOutermostWithoutPrefetch) {
  auto tiering = std::make_shared<TieringObject>(
      slow_, fast_, TieringOptions{}, SteadyClock::Shared());
  StagePipeline pipeline({tiering});
  ASSERT_TRUE(pipeline.Start().ok());
  StageKnobs knobs;
  knobs.producers = 4;  // tiering maps producers onto migration workers
  ASSERT_TRUE(pipeline.ApplyKnobs(knobs).ok());
  EXPECT_EQ(pipeline.CollectStats().producers, 4u);
  pipeline.Stop();
}

// Eviction/promotion semantics of the built `prefetch|tiering` pipeline
// match the hand-built stack (StackingTest.SecondEpochHitsFastTier
// ThroughTheStack): after epoch one promotes the working set, epoch two
// is served from the fast tier.
TEST_F(StagePipelineStackTest, BuiltPipelineMatchesHandBuiltStacking) {
  PipelineOptions opts;
  opts.prefetch.initial_producers = 1;
  opts.prefetch.buffer_capacity = 8;
  opts.tiering.fast_tier_capacity = 1ull << 30;  // everything fits
  opts.fast_tier = fast_;
  auto built = BuildStagePipeline("prefetch|tiering", slow_, opts,
                                  SteadyClock::Shared());
  ASSERT_TRUE(built.ok());
  StagePipeline pipeline = std::move(*built);
  ASSERT_TRUE(pipeline.Start().ok());

  auto promotions = [&] {
    const auto stats = pipeline.CollectStats();
    const auto* tiering = stats.FindObject("tiering");
    return tiering ? tiering->Get("promotions", 0) : 0.0;
  };

  storage::EpochShuffler shuffler(ds_.train.Names(), 9);
  for (std::uint64_t e = 0; e < 2; ++e) {
    const auto order = shuffler.OrderFor(e);
    ASSERT_TRUE(pipeline.BeginEpoch(e, order).ok());
    for (const auto& name : order) {
      std::vector<std::byte> buf(*ds_.train.SizeOf(name));
      ASSERT_TRUE(pipeline.Read(name, 0, buf).ok());
      EXPECT_EQ(buf, storage::SyntheticContent::Generate(name, buf.size()));
    }
    if (e == 0) {
      for (int i = 0; i < 500; ++i) {
        if (promotions() >= static_cast<double>(ds_.train.NumFiles())) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  }
  pipeline.Stop();

  const auto stats = pipeline.CollectStats();
  ASSERT_NE(stats.FindObject("tiering"), nullptr);
  EXPECT_GE(stats.FindObject("tiering")->Get("fast_hits", 0),
            static_cast<double>(ds_.train.NumFiles()))
      << "epoch 2 should be served from the fast tier";
}

TEST_F(StagePipelineStackTest, BuilderRejectsBadSpecAndNullBackend) {
  PipelineOptions opts;
  EXPECT_FALSE(
      BuildStagePipeline("prefetch|nope", slow_, opts, SteadyClock::Shared())
          .ok());
  EXPECT_FALSE(
      BuildStagePipeline("prefetch", nullptr, opts, SteadyClock::Shared())
          .ok());
}

TEST_F(StagePipelineStackTest, BuilderDurableTieringNeedsAPath) {
  PipelineOptions opts;
  opts.tiering.durable = true;  // no fast_tier, no fast_tier_path
  const auto built =
      BuildStagePipeline("tiering", slow_, opts, SteadyClock::Shared());
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StagePipelineStackTest, BuilderRootsDurableFastTierAtPath) {
  const auto root = std::filesystem::path(::testing::TempDir()) /
                    "prisma_builder_durable";
  std::filesystem::remove_all(root);
  PipelineOptions opts;
  opts.tiering.durable = true;
  opts.fast_tier_path = root.string();
  auto built = BuildStagePipeline("tiering", slow_, opts, SteadyClock::Shared());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_TRUE(built->Start().ok());  // durable Start => recovery ran
  EXPECT_TRUE(std::filesystem::is_directory(root / "objects"));
  built->Stop();
  std::filesystem::remove_all(root);
}

// Stage fronts a pipeline: the convenience single-object constructor and
// the full chain behave identically through the Stage surface.
TEST_F(StagePipelineStackTest, StageHostsPipeline) {
  PipelineOptions opts;
  opts.prefetch.initial_producers = 1;
  opts.fast_tier = fast_;
  auto built = BuildStagePipeline("prefetch|tiering", slow_, opts,
                                  SteadyClock::Shared());
  ASSERT_TRUE(built.ok());
  Stage stage(StageInfo{"job", "test", 0}, std::move(*built));
  ASSERT_TRUE(stage.Start().ok());
  EXPECT_EQ(stage.pipeline().size(), 2u);

  const auto& f = ds_.train.At(0);
  ASSERT_TRUE(stage.BeginEpoch(0, {f.name}).ok());
  std::vector<std::byte> buf(f.size);
  ASSERT_TRUE(stage.Read(f.name, 0, buf).ok());
  EXPECT_EQ(buf, storage::SyntheticContent::Generate(f.name, f.size));

  const auto stats = stage.CollectStats();
  EXPECT_EQ(stats.objects.size(), 2u);
  stage.Stop();
}

}  // namespace
}  // namespace prisma::dataplane
