// Unit tests for src/common foundations: Status/Result, units, Config,
// RNG (determinism + distribution properties), Clock, logging.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <thread>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace prisma {
namespace {

using namespace prisma::literals;

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::IoError("a"), Status::IoError("b"));
  EXPECT_FALSE(Status::IoError("a") == Status::NotFound("a"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  // Building a Result from an OK status is a misuse; it must not silently
  // pretend to hold a value.
  Result<int> r = Status::Ok();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

// --- Units -------------------------------------------------------------------

TEST(UnitsTest, Literals) {
  EXPECT_EQ(1_KiB, 1024ull);
  EXPECT_EQ(1_MiB, 1024ull * 1024);
  EXPECT_EQ(2_GiB, 2ull * 1024 * 1024 * 1024);
}

TEST(UnitsTest, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(ToSeconds(FromSeconds(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(ToSeconds(Millis{250}), 0.25);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3.00 MiB");
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(Millis{1234}), "1.234 s");
}

// --- Config -------------------------------------------------------------------

TEST(ConfigTest, ParsesKeyValues) {
  auto cfg = Config::FromString("a = 1\nb= hello \n# comment\nc = 2.5\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetInt("a", 0), 1);
  EXPECT_EQ(cfg->GetString("b", ""), "hello");
  EXPECT_DOUBLE_EQ(cfg->GetDouble("c", 0), 2.5);
}

TEST(ConfigTest, LaterDuplicateWins) {
  auto cfg = Config::FromString("k = 1\nk = 2\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetInt("k", 0), 2);
}

TEST(ConfigTest, InlineCommentsStripped) {
  auto cfg = Config::FromString("k = 7 # trailing\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetInt("k", 0), 7);
}

TEST(ConfigTest, MissingEqualsIsError) {
  auto cfg = Config::FromString("not a pair\n");
  EXPECT_FALSE(cfg.ok());
  EXPECT_EQ(cfg.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigTest, EmptyKeyIsError) {
  EXPECT_FALSE(Config::FromString(" = value\n").ok());
}

TEST(ConfigTest, TypedGetterErrors) {
  auto cfg = Config::FromString("s = abc\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetInt("s").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cfg->GetInt("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cfg->GetInt("s", 9), 9);
}

TEST(ConfigTest, Booleans) {
  auto cfg = Config::FromString("t1=true\nt2=YES\nt3=1\nf1=off\nbad=maybe\n");
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->GetBool("t1", false));
  EXPECT_TRUE(cfg->GetBool("t2", false));
  EXPECT_TRUE(cfg->GetBool("t3", false));
  EXPECT_FALSE(cfg->GetBool("f1", true));
  EXPECT_FALSE(cfg->GetBool("bad").ok());
}

struct ByteCase {
  const char* text;
  std::uint64_t expected;
};

class ConfigBytesTest : public ::testing::TestWithParam<ByteCase> {};

TEST_P(ConfigBytesTest, ParsesByteSizes) {
  const auto& p = GetParam();
  auto r = Config::ParseBytes(p.text);
  ASSERT_TRUE(r.ok()) << p.text << ": " << r.status().ToString();
  EXPECT_EQ(*r, p.expected) << p.text;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ConfigBytesTest,
    ::testing::Values(ByteCase{"4096", 4096}, ByteCase{"4096B", 4096},
                      ByteCase{"64KiB", 64 * 1024},
                      ByteCase{"64k", 64 * 1024}, ByteCase{"1MiB", 1_MiB},
                      ByteCase{"1.5GiB", 1536 * 1_MiB},
                      ByteCase{"2 GiB", 2_GiB}, ByteCase{"1TiB", 1024_GiB},
                      ByteCase{"0", 0}));

TEST(ConfigTest, BadByteSizes) {
  EXPECT_FALSE(Config::ParseBytes("").ok());
  EXPECT_FALSE(Config::ParseBytes("abc").ok());
  EXPECT_FALSE(Config::ParseBytes("12XiB").ok());
}

TEST(ConfigTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/prisma_config_test.cfg";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("buffer = 64KiB\nthreads = 4\n", f);
    fclose(f);
  }
  auto cfg = Config::FromFile(path);
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetBytes("buffer", 0), 64 * 1024u);
  EXPECT_EQ(cfg->GetInt("threads", 0), 4);
  EXPECT_FALSE(Config::FromFile(path + ".does_not_exist").ok());
}

// --- RNG ----------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Xoshiro256 a(123), b(123), c(124);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal &= (va == vb);
    any_diff |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.NextBounded(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, GaussianMoments) {
  Xoshiro256 rng(99);
  const int n = 50000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, LogNormalMeanMatchesFormula) {
  // mean of LogNormal(mu, sigma) = exp(mu + sigma^2/2).
  Xoshiro256 rng(5);
  const double mu = 2.0, sigma = 0.5;
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.NextLogNormal(mu, sigma);
  const double expected = std::exp(mu + sigma * sigma / 2);
  EXPECT_NEAR(sum / n, expected, expected * 0.02);
}

TEST(RngTest, ExponentialMean) {
  Xoshiro256 rng(5);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Xoshiro256 a(1);
  Xoshiro256 b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ShuffleIsPermutation) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Xoshiro256 rng(17);
  Shuffle(std::span<int>(v), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  // And it actually moved things.
  int displaced = 0;
  for (int i = 0; i < 100; ++i) displaced += (v[i] != i);
  EXPECT_GT(displaced, 50);
}

TEST(RngTest, ShuffleDeterministicPerSeed) {
  std::vector<int> v1(50), v2(50);
  std::iota(v1.begin(), v1.end(), 0);
  std::iota(v2.begin(), v2.end(), 0);
  Xoshiro256 r1(3), r2(3);
  Shuffle(std::span<int>(v1), r1);
  Shuffle(std::span<int>(v2), r2);
  EXPECT_EQ(v1, v2);
}

// --- Clock --------------------------------------------------------------------

TEST(ClockTest, SteadyClockIsMonotonic) {
  SteadyClock clock;
  const Nanos a = clock.Now();
  const Nanos b = clock.Now();
  EXPECT_LE(a.count(), b.count());
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(Nanos{100});
  EXPECT_EQ(clock.Now(), Nanos{100});
  clock.Advance(Millis{2});
  EXPECT_EQ(clock.Now(), Nanos{100} + Nanos{2'000'000});
  clock.Set(Nanos{5});
  EXPECT_EQ(clock.Now(), Nanos{5});
}

TEST(ClockTest, StopwatchMeasuresManualClock) {
  ManualClock clock;
  Stopwatch sw(clock);
  clock.Advance(Millis{7});
  EXPECT_EQ(sw.Elapsed(), Millis{7});
  sw.Restart();
  EXPECT_EQ(sw.Elapsed(), Nanos{0});
}

TEST(ClockTest, SharedSteadyClockSingleton) {
  EXPECT_EQ(SteadyClock::Shared().get(), SteadyClock::Shared().get());
}

// --- Logging -------------------------------------------------------------------

TEST(LoggingTest, LevelGate) {
  Logger& log = Logger::Instance();
  const LogLevel prev = log.level();
  log.SetLevel(LogLevel::kError);
  EXPECT_FALSE(log.Enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.Enabled(LogLevel::kError));
  log.SetLevel(LogLevel::kOff);
  EXPECT_FALSE(log.Enabled(LogLevel::kError));
  log.SetLevel(prev);
}

TEST(LoggingTest, MacroCompilesAndIsCheap) {
  Logger::Instance().SetLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  PRISMA_LOG(kDebug, "test") << expensive();
  EXPECT_EQ(evaluations, 0) << "disabled log level must not format";
  Logger::Instance().SetLevel(LogLevel::kWarn);
}

}  // namespace
}  // namespace prisma
