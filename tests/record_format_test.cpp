// Record-shard container format: CRC32 vectors, write/read round trips,
// corruption detection, sharding behaviour, and the ShardedBackend
// serving the original namespace (including through a prefetch stage).
#include <gtest/gtest.h>

#include <cstring>

#include "common/crc32.hpp"
#include "dataplane/prefetch_object.hpp"
#include "storage/record_format.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::storage {
namespace {

std::vector<std::byte> Bytes(std::string_view s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::shared_ptr<SyntheticBackend> InstantBackend() {
  SyntheticBackendOptions o;
  o.profile = DeviceProfile::Instant();
  o.time_scale = 0.0;
  return std::make_shared<SyntheticBackend>(o);
}

// --- CRC32 --------------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // Standard test vector: CRC-32("123456789") == 0xCBF43926.
  const auto v = Bytes("123456789");
  EXPECT_EQ(Crc32(v), 0xCBF43926u);
  EXPECT_EQ(Crc32({}), 0u);
  EXPECT_EQ(Crc32(Bytes("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, ChunkedEqualsWhole) {
  const auto whole = Bytes("the quick brown fox jumps over the lazy dog");
  const std::uint32_t full = Crc32(whole);
  const std::span<const std::byte> s(whole);
  for (const std::size_t split : {1ul, 7ul, 20ul, whole.size() - 1}) {
    const std::uint32_t part = Crc32(s.subspan(split), Crc32(s.subspan(0, split)));
    EXPECT_EQ(part, full) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  auto data = Bytes("some payload worth protecting");
  const std::uint32_t clean = Crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= std::byte{1};
    EXPECT_NE(Crc32(data), clean) << "flip at " << i;
    data[i] ^= std::byte{1};
  }
}

// --- writer / reader round trip ---------------------------------------------------

TEST(RecordFormatTest, RoundTripSingleShard) {
  auto backend = InstantBackend();
  RecordShardWriter writer(*backend, "shards/train-", 1ull << 30);
  ASSERT_TRUE(writer.Append("a.jpg", Bytes("alpha")).ok());
  ASSERT_TRUE(writer.Append("b.jpg", Bytes("bravo-bravo")).ok());
  auto index = writer.Finish();
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NumRecords(), 2u);
  ASSERT_EQ(index->shards().size(), 1u);

  auto records = ReadShard(*backend, index->shards()[0]);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].first, "a.jpg");
  EXPECT_EQ((*records)[0].second, Bytes("alpha"));
  EXPECT_EQ((*records)[1].first, "b.jpg");
  EXPECT_EQ((*records)[1].second, Bytes("bravo-bravo"));
}

TEST(RecordFormatTest, RollsShardsAtTarget) {
  auto backend = InstantBackend();
  RecordShardWriter writer(*backend, "s-", 8192);  // clamp floor is 4096
  const std::vector<std::byte> payload(3000);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.Append("f" + std::to_string(i), payload).ok());
  }
  auto index = writer.Finish();
  ASSERT_TRUE(index.ok());
  EXPECT_GT(index->shards().size(), 2u);
  EXPECT_EQ(index->NumRecords(), 10u);
  // Every shard decodes cleanly.
  std::size_t total = 0;
  for (const auto& shard : index->shards()) {
    auto records = ReadShard(*backend, shard);
    ASSERT_TRUE(records.ok());
    total += records->size();
  }
  EXPECT_EQ(total, 10u);
}

TEST(RecordFormatTest, AppendAfterFinishFails) {
  auto backend = InstantBackend();
  RecordShardWriter writer(*backend, "s-", 1 << 20);
  ASSERT_TRUE(writer.Append("x", Bytes("1")).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.Append("y", Bytes("2")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer.Finish().status().code(), StatusCode::kFailedPrecondition);
}

TEST(RecordFormatTest, EmptyFinishHasNoShards) {
  auto backend = InstantBackend();
  RecordShardWriter writer(*backend, "s-", 1 << 20);
  auto index = writer.Finish();
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NumRecords(), 0u);
  EXPECT_TRUE(index->shards().empty());
}

// --- corruption detection ----------------------------------------------------------

class RecordCorruptionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RecordCorruptionTest, FlippedByteIsDetected) {
  auto backend = InstantBackend();
  RecordShardWriter writer(*backend, "c-", 1 << 20);
  ASSERT_TRUE(writer.Append("sample.jpg", Bytes("payload-under-test")).ok());
  auto index = writer.Finish();
  ASSERT_TRUE(index.ok());

  auto raw = backend->ReadAll(index->shards()[0]);
  ASSERT_TRUE(raw.ok());
  const std::size_t pos = 8 + GetParam();  // past the magic
  ASSERT_LT(pos, raw->size());
  (*raw)[pos] ^= std::byte{0x40};
  ASSERT_TRUE(backend->Write(index->shards()[0], *raw).ok());

  const auto records = ReadShard(*backend, index->shards()[0]);
  EXPECT_FALSE(records.ok()) << "corruption at offset " << pos;
}

INSTANTIATE_TEST_SUITE_P(Offsets, RecordCorruptionTest,
                         ::testing::Values(0, 2, 4, 8, 12, 16, 20, 30));

TEST(RecordFormatTest, BadMagicRejected) {
  auto backend = InstantBackend();
  ASSERT_TRUE(backend->Write("bogus.rec", Bytes("NOTASHARD")).ok());
  EXPECT_FALSE(ReadShard(*backend, "bogus.rec").ok());
}

TEST(RecordFormatTest, TruncatedShardRejected) {
  auto backend = InstantBackend();
  RecordShardWriter writer(*backend, "t-", 1 << 20);
  ASSERT_TRUE(writer.Append("x", Bytes("0123456789")).ok());
  auto index = writer.Finish();
  ASSERT_TRUE(index.ok());
  auto raw = backend->ReadAll(index->shards()[0]);
  ASSERT_TRUE(raw.ok());
  raw->resize(raw->size() - 6);  // chop the payload CRC + tail
  ASSERT_TRUE(backend->Write(index->shards()[0], *raw).ok());
  EXPECT_FALSE(ReadShard(*backend, index->shards()[0]).ok());
}

// --- PackCatalog + ShardedBackend ----------------------------------------------------

TEST(ShardedBackendTest, ServesOriginalNamespace) {
  SyntheticImageNetSpec spec;
  spec.num_train = 25;
  spec.num_validation = 1;
  spec.mean_file_size = 4 * 1024;
  spec.min_file_size = 512;
  const auto ds = MakeSyntheticImageNet(spec);

  auto backend = InstantBackend();
  auto index = PackCatalog(ds.train, *backend, "packed/train-", 64 * 1024);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NumRecords(), 25u);

  ShardedBackend sharded(backend, *index);
  for (const auto& f : ds.train.files()) {
    EXPECT_EQ(*sharded.FileSize(f.name), f.size);
    auto data = sharded.ReadAll(f.name);
    ASSERT_TRUE(data.ok()) << f.name;
    EXPECT_EQ(*data, SyntheticContent::Generate(f.name, f.size)) << f.name;
  }
  EXPECT_EQ(sharded.FileSize("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(ShardedBackendTest, RangeReadsAndEof) {
  auto backend = InstantBackend();
  RecordShardWriter writer(*backend, "r-", 1 << 20);
  ASSERT_TRUE(writer.Append("f", Bytes("0123456789")).ok());
  auto index = writer.Finish();
  ASSERT_TRUE(index.ok());
  ShardedBackend sharded(backend, *index);

  std::vector<std::byte> buf(4);
  auto n = sharded.Read("f", 3, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(std::memcmp(buf.data(), "3456", 4), 0);
  auto eof = sharded.Read("f", 10, buf);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);
}

TEST(ShardedBackendTest, ImmutableByDesign) {
  auto backend = InstantBackend();
  RecordShardWriter writer(*backend, "w-", 1 << 20);
  ASSERT_TRUE(writer.Append("f", Bytes("x")).ok());
  auto index = writer.Finish();
  ASSERT_TRUE(index.ok());
  ShardedBackend sharded(backend, *index);
  EXPECT_EQ(sharded.Write("f", Bytes("y")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardedBackendTest, PrefetchStageRunsOverShards) {
  // The stacking claim end-to-end: PRISMA's prefetch object neither
  // knows nor cares that the "files" live inside shards.
  SyntheticImageNetSpec spec;
  spec.num_train = 20;
  spec.num_validation = 1;
  spec.mean_file_size = 4 * 1024;
  spec.min_file_size = 512;
  const auto ds = MakeSyntheticImageNet(spec);

  auto raw = InstantBackend();
  auto index = PackCatalog(ds.train, *raw, "pk/", 32 * 1024);
  ASSERT_TRUE(index.ok());
  auto sharded = std::make_shared<ShardedBackend>(raw, *index);

  dataplane::PrefetchOptions po;
  po.initial_producers = 2;
  po.buffer_capacity = 8;
  dataplane::PrefetchObject object(sharded, po, SteadyClock::Shared());
  ASSERT_TRUE(object.Start().ok());
  const auto names = ds.train.Names();
  ASSERT_TRUE(object.BeginEpoch(0, names).ok());
  for (const auto& name : names) {
    std::vector<std::byte> buf(*ds.train.SizeOf(name));
    ASSERT_TRUE(object.Read(name, 0, buf).ok());
    EXPECT_EQ(buf, SyntheticContent::Generate(name, buf.size()));
  }
  object.Stop();
  EXPECT_EQ(object.CollectStats().samples_consumed, names.size());
}

}  // namespace
}  // namespace prisma::storage
