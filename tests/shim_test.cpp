// LD_PRELOAD shim integration: a child process using plain open/read/
// fstat is transparently routed through the PRISMA UDS server. The child
// is `shim_reader` (built beside this test); the shim library path is
// injected by CMake.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "dataplane/prefetch_object.hpp"
#include "ipc/uds_server.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma {
namespace {

class ShimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::SyntheticImageNetSpec spec;
    spec.num_train = 12;
    spec.num_validation = 2;
    spec.mean_file_size = 8 * 1024;
    spec.min_file_size = 1024;
    ds_ = storage::MakeSyntheticImageNet(spec);

    storage::SyntheticBackendOptions o;
    o.profile = storage::DeviceProfile::Instant();
    o.time_scale = 0.0;
    backend_ = std::make_shared<storage::SyntheticBackend>(o, ds_);

    dataplane::PrefetchOptions po;
    po.initial_producers = 2;
    po.buffer_capacity = 16;
    auto object = std::make_shared<dataplane::PrefetchObject>(
        backend_, po, SteadyClock::Shared());
    stage_ = std::make_shared<dataplane::Stage>(
        dataplane::StageInfo{"shim-job", "any", 0}, object);
    ASSERT_TRUE(stage_->Start().ok());

    socket_path_ = ::testing::TempDir() + "/prisma_shim_" +
                   std::to_string(::getpid()) + ".sock";
    server_ = std::make_unique<ipc::UdsServer>(socket_path_, stage_);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    stage_->Stop();
  }

  /// Runs shim_reader under LD_PRELOAD with the given file names;
  /// returns its exit code.
  int RunReader(const std::vector<std::string>& names,
                bool with_preload = true, bool seek_mode = false) {
    const std::string prefix = "/prisma-virtual";
    const pid_t pid = ::fork();
    if (pid == 0) {
      if (with_preload) {
        ::setenv("LD_PRELOAD", PRISMA_SHIM_LIB_PATH, 1);
        ::setenv("PRISMA_SHIM_SOCKET", socket_path_.c_str(), 1);
        ::setenv("PRISMA_SHIM_PREFIX", prefix.c_str(), 1);
      }
      std::vector<std::string> args{PRISMA_SHIM_READER_PATH};
      if (seek_mode) args.push_back("--seek");
      args.push_back(prefix);
      args.insert(args.end(), names.begin(), names.end());
      std::vector<char*> argv;
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(PRISMA_SHIM_READER_PATH, argv.data());
      ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  storage::ImageNetDataset ds_;
  std::shared_ptr<storage::SyntheticBackend> backend_;
  std::shared_ptr<dataplane::Stage> stage_;
  std::string socket_path_;
  std::unique_ptr<ipc::UdsServer> server_;
};

TEST_F(ShimTest, ChildReadsVirtualFilesThroughServer) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < 5; ++i) names.push_back(ds_.train.At(i).name);
  EXPECT_EQ(RunReader(names), 0);
  EXPECT_GE(server_->requests_served(), names.size());
}

TEST_F(ShimTest, PrefetchedFilesServedFromBuffer) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < 6; ++i) names.push_back(ds_.train.At(i).name);
  ASSERT_TRUE(stage_->BeginEpoch(0, names).ok());
  EXPECT_EQ(RunReader(names), 0);
  EXPECT_EQ(stage_->CollectStats().samples_consumed, names.size());
}

TEST_F(ShimTest, LseekAndPreadThroughShim) {
  // Exercises the shim's lseek (SEEK_SET/CUR/END) and pread interposers:
  // positioned reads over virtual files must return the right slices and
  // pread must not disturb the tracked offset.
  std::vector<std::string> names;
  for (std::size_t i = 0; i < 4; ++i) names.push_back(ds_.train.At(i).name);
  EXPECT_EQ(RunReader(names, /*with_preload=*/true, /*seek_mode=*/true), 0);
}

TEST_F(ShimTest, MissingVirtualFileFailsCleanly) {
  EXPECT_NE(RunReader({"no/such/file.jpg"}), 0);
}

TEST_F(ShimTest, WithoutPreloadVirtualPathsDontExist) {
  // Sanity: the prefix is not a real directory; only the shim makes it
  // resolvable.
  EXPECT_NE(RunReader({ds_.train.At(0).name}, /*with_preload=*/false), 0);
}

TEST_F(ShimTest, NonPrefixedPathsUntouched) {
  // The reader itself reads /proc/self/status here? Keep it simple: run
  // the reader against a real file outside the prefix to prove normal
  // I/O still works under the shim. shim_reader verifies synthetic
  // content, so instead just verify the child can exec at all with the
  // shim loaded and fail on a bogus name (exit 1, not a crash).
  const int rc = RunReader({"definitely-missing.jpg"});
  EXPECT_EQ(rc, 1);
}

}  // namespace
}  // namespace prisma
