// Distributed-training scenario (§VII): determinism, budget enforcement,
// and the regime ordering under shared-storage overload.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/distributed.hpp"

namespace prisma::baselines {
namespace {

DistributedConfig SmallConfig(DistributedControlMode mode,
                              std::size_t nodes = 4) {
  DistributedConfig cfg;
  cfg.nodes = nodes;
  cfg.mode = mode;
  cfg.epochs = 1;
  cfg.scale = 800;  // ~1.6k files per node
  cfg.global_producer_budget = 16;
  cfg.costs.framework_startup = Seconds{1};
  return cfg;
}

TEST(DistributedTest, AllNodesFinish) {
  const auto r = RunDistributed(SmallConfig(DistributedControlMode::kCoordinated));
  ASSERT_EQ(r.node_elapsed_s.size(), 4u);
  for (const double t : r.node_elapsed_s) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, r.makespan_s);
  }
  EXPECT_GT(r.events, 0u);
}

TEST(DistributedTest, DeterministicPerSeed) {
  const auto a = RunDistributed(SmallConfig(DistributedControlMode::kIndependent));
  const auto b = RunDistributed(SmallConfig(DistributedControlMode::kIndependent));
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);

  auto cfg = SmallConfig(DistributedControlMode::kIndependent);
  cfg.seed = 99;
  const auto c = RunDistributed(cfg);
  EXPECT_NE(a.events, c.events);
}

TEST(DistributedTest, GreedyAllocatesFullPools) {
  const auto r = RunDistributed(SmallConfig(DistributedControlMode::kGreedy));
  for (const auto p : r.final_producers) EXPECT_EQ(p, 16u);
  EXPECT_EQ(r.max_device_concurrency, 64);
}

TEST(DistributedTest, CoordinatedHonorsGlobalBudget) {
  auto cfg = SmallConfig(DistributedControlMode::kCoordinated, 8);
  cfg.global_producer_budget = 12;
  const auto r = RunDistributed(cfg);
  const std::uint32_t total = std::accumulate(
      r.final_producers.begin(), r.final_producers.end(), 0u);
  // Floor (1/node) may exceed tiny budgets; with 8 nodes and budget 12
  // the cap must hold exactly.
  EXPECT_LE(total, 12u);
}

TEST(DistributedTest, CoordinationBeatsGreedyUnderContention) {
  // 8 nodes on a device overloading past 16 reads: greedy's 128
  // concurrent readers must lose to the coordinated budget.
  const auto greedy =
      RunDistributed(SmallConfig(DistributedControlMode::kGreedy, 8));
  const auto coord =
      RunDistributed(SmallConfig(DistributedControlMode::kCoordinated, 8));
  EXPECT_LT(coord.makespan_s, greedy.makespan_s);
  EXPECT_LT(coord.mean_device_concurrency, greedy.mean_device_concurrency);
}

TEST(DistributedTest, SingleNodeRegimesRoughlyEqual) {
  const auto greedy =
      RunDistributed(SmallConfig(DistributedControlMode::kGreedy, 1));
  const auto coord =
      RunDistributed(SmallConfig(DistributedControlMode::kCoordinated, 1));
  EXPECT_NEAR(coord.makespan_s, greedy.makespan_s, greedy.makespan_s * 0.25);
}

TEST(DistributedTest, OverloadProfileDegradesPastThreshold) {
  const auto profile = DistributedConfig::OverloadableParallelFs();
  const storage::DeviceModel model(profile);
  EXPECT_GT(model.AggregateBandwidth(16), model.AggregateBandwidth(64));
}

}  // namespace
}  // namespace prisma::baselines
