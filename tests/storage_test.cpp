// Storage substrate tests: POSIX backend, synthetic content, dataset
// generation, per-epoch shuffling, device model, and the page-cache model.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <set>

#include "common/units.hpp"
#include "storage/dataset.hpp"
#include "storage/device_model.hpp"
#include "storage/page_cache.hpp"
#include "storage/posix_backend.hpp"
#include "storage/shuffler.hpp"

namespace prisma::storage {
namespace {

namespace fs = std::filesystem;

std::vector<std::byte> Bytes(std::string_view s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

class PosixBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "prisma_posix_test";
    fs::remove_all(root_);
    backend_ = std::make_unique<PosixBackend>(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
  std::unique_ptr<PosixBackend> backend_;
};

TEST_F(PosixBackendTest, WriteThenReadBack) {
  ASSERT_TRUE(backend_->Write("a/b/file.bin", Bytes("hello world")).ok());
  auto data = backend_->ReadAll("a/b/file.bin");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(data->data()), data->size()),
            "hello world");
}

TEST_F(PosixBackendTest, ReadAtOffset) {
  ASSERT_TRUE(backend_->Write("f", Bytes("0123456789")).ok());
  std::vector<std::byte> buf(4);
  auto n = backend_->Read("f", 3, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(buf.data()), 4), "3456");
}

TEST_F(PosixBackendTest, ReadPastEofReturnsShort) {
  ASSERT_TRUE(backend_->Write("f", Bytes("abc")).ok());
  std::vector<std::byte> buf(10);
  auto n = backend_->Read("f", 0, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  auto n2 = backend_->Read("f", 100, buf);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
}

TEST_F(PosixBackendTest, MissingFileIsNotFound) {
  std::vector<std::byte> buf(1);
  EXPECT_EQ(backend_->Read("nope", 0, buf).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(backend_->FileSize("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(PosixBackendTest, FileSize) {
  ASSERT_TRUE(backend_->Write("f", Bytes("12345")).ok());
  auto size = backend_->FileSize("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 5u);
}

TEST_F(PosixBackendTest, OverwriteTruncates) {
  ASSERT_TRUE(backend_->Write("f", Bytes("long content here")).ok());
  ASSERT_TRUE(backend_->Write("f", Bytes("x")).ok());
  EXPECT_EQ(*backend_->FileSize("f"), 1u);
}

TEST_F(PosixBackendTest, StatsCount) {
  ASSERT_TRUE(backend_->Write("f", Bytes("abcd")).ok());
  auto data = backend_->ReadAll("f");
  ASSERT_TRUE(data.ok());
  const auto stats = backend_->Stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.bytes_written, 4u);
  EXPECT_GE(stats.reads, 1u);
  EXPECT_EQ(stats.bytes_read, 4u);
}

// --- SyntheticContent --------------------------------------------------------

TEST(SyntheticContentTest, DeterministicPerPath) {
  const auto a1 = SyntheticContent::Generate("train/1.jpg", 1000);
  const auto a2 = SyntheticContent::Generate("train/1.jpg", 1000);
  const auto b = SyntheticContent::Generate("train/2.jpg", 1000);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(SyntheticContentTest, OffsetFillMatchesWholeFile) {
  // Property: reading [off, off+len) must equal the slice of the whole.
  const auto whole = SyntheticContent::Generate("x.jpg", 4096);
  for (const std::size_t off : {0ul, 1ul, 7ul, 8ul, 1000ul, 4090ul}) {
    std::vector<std::byte> part(64);
    const std::size_t len = std::min<std::size_t>(64, 4096 - off);
    part.resize(len);
    SyntheticContent::Fill("x.jpg", off, part);
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(part[i], whole[off + i]) << "off=" << off << " i=" << i;
    }
  }
}

TEST(SyntheticContentTest, ContentLooksRandom) {
  const auto data = SyntheticContent::Generate("y.jpg", 100000);
  std::array<int, 256> counts{};
  for (const std::byte b : data) counts[static_cast<unsigned char>(b)]++;
  // Every byte value should appear, roughly uniformly.
  for (int c : counts) EXPECT_GT(c, 100);
}

// --- Dataset -----------------------------------------------------------------

TEST(DatasetTest, SyntheticImageNetCounts) {
  SyntheticImageNetSpec spec;
  spec.num_train = 1000;
  spec.num_validation = 100;
  const auto ds = MakeSyntheticImageNet(spec);
  EXPECT_EQ(ds.train.NumFiles(), 1000u);
  EXPECT_EQ(ds.validation.NumFiles(), 100u);
}

TEST(DatasetTest, MeanFileSizeMatchesSpec) {
  SyntheticImageNetSpec spec;
  spec.num_train = 20000;
  spec.num_validation = 10;
  const auto ds = MakeSyntheticImageNet(spec);
  // Log-normal parameterised to hit the configured mean (~113 KiB).
  EXPECT_NEAR(ds.train.MeanFileSize(), spec.mean_file_size,
              spec.mean_file_size * 0.03);
}

TEST(DatasetTest, FullScaleTotalApproximates138GiB) {
  // The paper's dataset: 1.28 M images ~ 138 GiB. Verify our synthetic
  // full-scale catalog lands in that ballpark (sizes only; no I/O).
  SyntheticImageNetSpec spec;
  const auto ds = MakeSyntheticImageNet(spec);
  const double gib = static_cast<double>(ds.train.TotalBytes()) / (1ull << 30);
  EXPECT_GT(gib, 125.0);
  EXPECT_LT(gib, 151.0);
  EXPECT_EQ(ds.train.NumFiles(), 1'281'167u);
  EXPECT_EQ(ds.validation.NumFiles(), 50'000u);
}

TEST(DatasetTest, DeterministicPerSeed) {
  SyntheticImageNetSpec spec;
  spec.num_train = 500;
  spec.num_validation = 50;
  const auto a = MakeSyntheticImageNet(spec);
  const auto b = MakeSyntheticImageNet(spec);
  spec.seed = 43;
  const auto c = MakeSyntheticImageNet(spec);
  ASSERT_EQ(a.train.NumFiles(), b.train.NumFiles());
  for (std::size_t i = 0; i < a.train.NumFiles(); ++i) {
    EXPECT_EQ(a.train.At(i).size, b.train.At(i).size);
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train.NumFiles(); ++i) {
    any_diff |= a.train.At(i).size != c.train.At(i).size;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DatasetTest, MinFileSizeEnforced) {
  SyntheticImageNetSpec spec;
  spec.num_train = 5000;
  spec.num_validation = 1;
  spec.min_file_size = 64 * 1024;
  const auto ds = MakeSyntheticImageNet(spec);
  for (const auto& f : ds.train.files()) EXPECT_GE(f.size, 64u * 1024);
}

TEST(DatasetTest, ScaledSpecDividesCounts) {
  SyntheticImageNetSpec spec;
  const auto scaled = spec.Scaled(1000);
  EXPECT_EQ(scaled.num_train, spec.num_train / 1000);
  EXPECT_EQ(scaled.num_validation, spec.num_validation / 1000);
  EXPECT_EQ(spec.Scaled(1).num_train, spec.num_train);
}

TEST(DatasetTest, SizeOfLookup) {
  SyntheticImageNetSpec spec;
  spec.num_train = 100;
  spec.num_validation = 1;
  const auto ds = MakeSyntheticImageNet(spec);
  const auto& f = ds.train.At(42);
  auto size = ds.train.SizeOf(f.name);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, f.size);
  EXPECT_EQ(ds.train.SizeOf("not-a-file").status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetTest, MaterializeWritesAllFiles) {
  const fs::path root = fs::path(::testing::TempDir()) / "prisma_mat_test";
  fs::remove_all(root);
  PosixBackend backend(root);

  SyntheticImageNetSpec spec;
  spec.num_train = 20;
  spec.num_validation = 5;
  spec.mean_file_size = 8 * 1024;
  spec.min_file_size = 1024;
  const auto ds = MakeSyntheticImageNet(spec);
  ASSERT_TRUE(Materialize(ds.train, backend).ok());

  for (const auto& f : ds.train.files()) {
    auto size = backend.FileSize(f.name);
    ASSERT_TRUE(size.ok()) << f.name;
    EXPECT_EQ(*size, f.size);
    auto data = backend.ReadAll(f.name);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, SyntheticContent::Generate(f.name, f.size));
  }
  fs::remove_all(root);
}

// --- EpochShuffler -------------------------------------------------------------

class ShufflerTest : public ::testing::Test {
 protected:
  std::vector<std::string> Names(int n) {
    std::vector<std::string> names;
    for (int i = 0; i < n; ++i) names.push_back("f" + std::to_string(i));
    return names;
  }
};

TEST_F(ShufflerTest, OrderIsPermutation) {
  EpochShuffler s(Names(200), 7);
  const auto order = s.OrderFor(0);
  EXPECT_EQ(order.size(), 200u);
  std::set<std::string> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 200u);
}

TEST_F(ShufflerTest, SameSeedSameOrder) {
  // THE agreement invariant: framework and PRISMA derive identical
  // per-epoch orders from the shared seed (paper §IV footnote 1).
  EpochShuffler a(Names(100), 11), b(Names(100), 11);
  for (std::uint64_t e = 0; e < 5; ++e) {
    EXPECT_EQ(a.OrderFor(e), b.OrderFor(e)) << "epoch " << e;
  }
}

TEST_F(ShufflerTest, DifferentEpochsDiffer) {
  EpochShuffler s(Names(100), 11);
  EXPECT_NE(s.OrderFor(0), s.OrderFor(1));
  EXPECT_NE(s.OrderFor(1), s.OrderFor(2));
}

TEST_F(ShufflerTest, DifferentSeedsDiffer) {
  EpochShuffler a(Names(100), 1), b(Names(100), 2);
  EXPECT_NE(a.OrderFor(0), b.OrderFor(0));
}

TEST_F(ShufflerTest, PositionsAreUniformAcrossEpochs) {
  // Property behind footnote 1 ("does not change how files are shuffled
  // ... important to avoid any impact on the accuracy of the trained
  // model"): over many epochs, each file's average position must be
  // near the middle — no positional bias that would skew training.
  constexpr int kFiles = 64;
  constexpr int kEpochs = 400;
  EpochShuffler s(Names(kFiles), 123);
  std::vector<double> position_sum(kFiles, 0.0);
  for (int e = 0; e < kEpochs; ++e) {
    const auto order = s.OrderFor(static_cast<std::uint64_t>(e));
    for (int pos = 0; pos < kFiles; ++pos) {
      const int idx = std::stoi(order[pos].substr(1));
      position_sum[idx] += pos;
    }
  }
  const double expected_mean = (kFiles - 1) / 2.0;  // 31.5
  // Std error of the mean position over 400 epochs ~ 18.5/20 ~ 0.92;
  // allow 4 sigma.
  for (int i = 0; i < kFiles; ++i) {
    EXPECT_NEAR(position_sum[i] / kEpochs, expected_mean, 4.0)
        << "file " << i << " is positionally biased";
  }
}

TEST(DeviceModelTest, ServiceTimeMonotonicInBytes) {
  const DeviceModel m(DeviceProfile::NvmeP4600());
  Nanos prev{0};
  for (std::uint64_t bytes = 4096; bytes <= (64ull << 20); bytes *= 4) {
    const Nanos t = m.ServiceTime(bytes, 4);
    EXPECT_GT(t, prev) << "bytes=" << bytes;
    prev = t;
  }
}

TEST_F(ShufflerTest, FilenameListRoundTrip) {
  const std::string path = ::testing::TempDir() + "/prisma_list_test.txt";
  EpochShuffler s(Names(50), 3);
  const auto order = s.OrderFor(2);
  ASSERT_TRUE(WriteFilenameList(path, order).ok());
  auto loaded = ReadFilenameList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, order);
  EXPECT_EQ(ReadFilenameList(path + ".missing").status().code(),
            StatusCode::kNotFound);
}

// --- DeviceModel ----------------------------------------------------------------

TEST(DeviceModelTest, BandwidthSaturates) {
  const DeviceModel m(DeviceProfile::NvmeP4600());
  const double a1 = m.AggregateBandwidth(1);
  const double a4 = m.AggregateBandwidth(4);
  const double a32 = m.AggregateBandwidth(32);
  EXPECT_LT(a1, a4);
  EXPECT_LT(a4, a32);
  EXPECT_LT(a32, m.profile().max_bandwidth_bps * 1.0001);
  // Saturation: 32 readers extract nearly everything.
  EXPECT_GT(a32, m.profile().max_bandwidth_bps * 0.99);
}

TEST(DeviceModelTest, MarginalGainDiminishes) {
  const DeviceModel m(DeviceProfile::NvmeP4600());
  double prev_gain = 1e18;
  for (std::uint32_t c = 1; c < 16; ++c) {
    const double gain = m.AggregateBandwidth(c + 1) - m.AggregateBandwidth(c);
    EXPECT_LE(gain, prev_gain * 1.0001);
    prev_gain = gain;
  }
}

TEST(DeviceModelTest, ServiceTimeComponents) {
  DeviceProfile p = DeviceProfile::Instant();
  p.issue_latency = Micros{100};
  p.max_bandwidth_bps = 1e9;
  p.concurrency_knee = 1e-6;  // effectively always at max bandwidth
  const DeviceModel m(p);
  const Nanos t = m.ServiceTime(1'000'000, 1);
  // 100 us latency + 1 MB / 1 GB/s = 1 ms.
  EXPECT_NEAR(ToSeconds(t), 100e-6 + 1e-3, 1e-6);
}

TEST(DeviceModelTest, PerStreamSlowsWithConcurrency) {
  const DeviceModel m(DeviceProfile::NvmeP4600());
  // A single request takes longer per-stream when sharing the device.
  EXPECT_LT(m.ServiceTime(100000, 1), m.ServiceTime(100000, 8));
}

TEST(DeviceModelTest, LargeSequentialReadsUnlockFullBandwidth) {
  // A single big streaming read behaves like a deep queue: its
  // throughput approaches max bandwidth even at concurrency 1, while an
  // equal volume of small reads at concurrency 1 does not.
  const DeviceModel m(DeviceProfile::NvmeP4600());
  const std::uint64_t big = 64ull << 20;
  const double big_bps = static_cast<double>(big) / ToSeconds(m.ServiceTime(big, 1));
  EXPECT_GT(big_bps, m.profile().max_bandwidth_bps * 0.9);

  const std::uint64_t small = 113 * 1024;
  const double small_bps =
      static_cast<double>(small) / ToSeconds(m.ServiceTime(small, 1));
  EXPECT_LT(small_bps, m.profile().max_bandwidth_bps * 0.65);
}

TEST(DeviceModelTest, SequentialBoostCanBeDisabled) {
  DeviceProfile p = DeviceProfile::NvmeP4600();
  p.seq_parallel_chunk_bytes = 0;
  p.jitter_frac = 0.0;
  const DeviceModel m(p);
  const std::uint64_t big = 64ull << 20;
  // Without the boost, a big read at c=1 runs at single-stream speed.
  const double bps = static_cast<double>(big) / ToSeconds(m.ServiceTime(big, 1));
  EXPECT_LT(bps, m.AggregateBandwidth(1) * 1.01);
}

TEST(DeviceModelTest, ProfilesAreOrdered) {
  const DeviceModel ssd(DeviceProfile::NvmeP4600());
  const DeviceModel hdd(DeviceProfile::Hdd7200());
  const DeviceModel pfs(DeviceProfile::ParallelFs());
  EXPECT_LT(ssd.ServiceTime(113 * 1024, 1), hdd.ServiceTime(113 * 1024, 1));
  EXPECT_GT(pfs.AggregateBandwidth(64), ssd.AggregateBandwidth(64));
}

// --- PageCacheModel ----------------------------------------------------------------

TEST(PageCacheTest, MissThenHit) {
  PageCacheModel cache(1 << 20);
  EXPECT_FALSE(cache.AccessAndAdmit("a", 1000));
  EXPECT_TRUE(cache.AccessAndAdmit("a", 1000));
  EXPECT_EQ(cache.Hits(), 1u);
  EXPECT_EQ(cache.Misses(), 1u);
}

TEST(PageCacheTest, LruEviction) {
  PageCacheModel cache(3000);
  cache.AccessAndAdmit("a", 1000);
  cache.AccessAndAdmit("b", 1000);
  cache.AccessAndAdmit("c", 1000);
  cache.AccessAndAdmit("a", 0);       // touch a -> LRU order: b
  cache.AccessAndAdmit("d", 1000);    // evicts b
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_TRUE(cache.Contains("d"));
}

TEST(PageCacheTest, OversizedFilesNeverAdmitted) {
  PageCacheModel cache(1000);
  EXPECT_FALSE(cache.AccessAndAdmit("big", 5000));
  EXPECT_FALSE(cache.Contains("big"));
  EXPECT_EQ(cache.UsedBytes(), 0u);
}

TEST(PageCacheTest, ZeroCapacityDisables) {
  PageCacheModel cache(0);
  EXPECT_FALSE(cache.AccessAndAdmit("a", 10));
  EXPECT_FALSE(cache.AccessAndAdmit("a", 10));
  EXPECT_EQ(cache.Hits(), 0u);
}

TEST(PageCacheTest, DropAll) {
  PageCacheModel cache(1 << 20);
  cache.AccessAndAdmit("a", 100);
  cache.DropAll();
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_EQ(cache.UsedBytes(), 0u);
}

TEST(PageCacheTest, UsedBytesTracksResidency) {
  PageCacheModel cache(10000);
  cache.AccessAndAdmit("a", 4000);
  cache.AccessAndAdmit("b", 4000);
  EXPECT_EQ(cache.UsedBytes(), 8000u);
  cache.AccessAndAdmit("c", 4000);  // evicts a
  EXPECT_EQ(cache.UsedBytes(), 8000u);
  EXPECT_FALSE(cache.Contains("a"));
}

}  // namespace
}  // namespace prisma::storage
