// Metrics registry, controller observation history, and the controller's
// gauge export; plus weighted fair shares (priority tenants).
#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "controlplane/controller.hpp"
#include "dataplane/prefetch_object.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma {
namespace {

using controlplane::ComputeFairShares;
using controlplane::Controller;
using controlplane::ControllerOptions;
using controlplane::FixedKnobsPolicy;
using controlplane::PolicyFactory;
using controlplane::StageDemand;

// --- MetricsRegistry ------------------------------------------------------------

TEST(MetricsTest, CounterAccumulates) {
  MetricsRegistry registry;
  auto& c = registry.GetCounter("prisma_test_total");
  c.Increment();
  c.Increment(9);
  EXPECT_EQ(c.Value(), 10u);
  // Same name -> same instrument.
  EXPECT_EQ(registry.GetCounter("prisma_test_total").Value(), 10u);
}

TEST(MetricsTest, GaugeSetsLatest) {
  MetricsRegistry registry;
  auto& g = registry.GetGauge("prisma_occupancy");
  g.Set(3.5);
  g.Set(1.25);
  EXPECT_DOUBLE_EQ(registry.GetGauge("prisma_occupancy").Value(), 1.25);
}

TEST(MetricsTest, LabelsSeparateInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("reads", MetricsRegistry::Label("stage", "a")).Increment();
  registry.GetCounter("reads", MetricsRegistry::Label("stage", "b"))
      .Increment(5);
  EXPECT_EQ(
      registry.GetCounter("reads", MetricsRegistry::Label("stage", "a")).Value(),
      1u);
  EXPECT_EQ(
      registry.GetCounter("reads", MetricsRegistry::Label("stage", "b")).Value(),
      5u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsTest, LabelEscapesQuotes) {
  EXPECT_EQ(MetricsRegistry::Label("k", "va\"l"), "{k=\"va\\\"l\"}");
}

TEST(MetricsTest, DumpTextRendersAllInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("alpha_total").Increment(7);
  registry.GetGauge("beta_gauge", MetricsRegistry::Label("s", "x")).Set(2.5);
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("alpha_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("beta_gauge{s=\"x\"} 2.5\n"), std::string::npos);
}

TEST(MetricsTest, DefaultRegistryIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

// --- controller export + history --------------------------------------------------

std::shared_ptr<dataplane::Stage> MakeStage(const std::string& id,
                                            double weight = 1.0) {
  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::Instant();
  o.time_scale = 0.0;
  auto backend = std::make_shared<storage::SyntheticBackend>(o);
  auto object = std::make_shared<dataplane::PrefetchObject>(
      backend, dataplane::PrefetchOptions{}, SteadyClock::Shared());
  auto stage = std::make_shared<dataplane::Stage>(
      dataplane::StageInfo{id, "test", 0, weight}, object);
  EXPECT_TRUE(stage->Start().ok());
  return stage;
}

PolicyFactory FixedFactory(std::uint32_t producers) {
  return [=] {
    dataplane::StageKnobs knobs;
    knobs.producers = producers;
    return std::make_unique<FixedKnobsPolicy>(knobs);
  };
}

TEST(ControllerMetricsTest, ExportPublishesPerStageGauges) {
  Controller c("c0", ControllerOptions{}, FixedFactory(3),
               SteadyClock::Shared());
  auto stage = MakeStage("job-42");
  ASSERT_TRUE(c.Attach(stage).ok());
  c.TickOnce();

  MetricsRegistry registry;
  c.ExportMetrics(registry);
  const auto labels = MetricsRegistry::Label("stage", "job-42");
  EXPECT_DOUBLE_EQ(registry.GetGauge("prisma_stage_producers", labels).Value(),
                   3.0);
  EXPECT_GE(registry.GetGauge("prisma_stage_buffer_capacity", labels).Value(),
            1.0);
  EXPECT_GE(registry.GetGauge("prisma_stage_buffer_shards", labels).Value(),
            1.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("prisma_stage_read_retries", labels).Value(), 0.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("prisma_stage_read_failures", labels).Value(), 0.0);
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("prisma_stage_producers{stage=\"job-42\"} 3"),
            std::string::npos);
  stage->Stop();
}

TEST(ControllerMetricsTest, HistoryAccumulatesAndCaps) {
  ControllerOptions opts;
  opts.history_limit = 5;
  Controller c("c0", opts, FixedFactory(2), SteadyClock::Shared());
  auto stage = MakeStage("h");
  ASSERT_TRUE(c.Attach(stage).ok());
  for (int i = 0; i < 12; ++i) c.TickOnce();
  const auto history = c.History();
  EXPECT_EQ(history.size(), 5u);  // capped
  for (const auto& obs : history) EXPECT_EQ(obs.stage_id, "h");
  stage->Stop();
}

// --- weighted fair shares ----------------------------------------------------------

TEST(WeightedFairShareTest, HigherWeightGetsMoreAtEqualDemand) {
  std::vector<StageDemand> demands(2);
  demands[0] = {"gold", 0.5, 16, 3.0};
  demands[1] = {"bronze", 0.5, 16, 1.0};
  const auto shares = ComputeFairShares(demands, 12);
  EXPECT_EQ(shares[0] + shares[1], 12u);
  // Weighted max-min: the weight-3 tenant ends near 3x the share.
  EXPECT_GE(shares[0], 8u);
  EXPECT_LE(shares[1], 4u);
}

TEST(WeightedFairShareTest, WeightCannotStarveOthers) {
  std::vector<StageDemand> demands(3);
  demands[0] = {"heavy", 1.0, 32, 100.0};
  demands[1] = {"a", 1.0, 32, 1.0};
  demands[2] = {"b", 1.0, 32, 1.0};
  const auto shares = ComputeFairShares(demands, 6);
  EXPECT_GE(shares[1], 1u);  // the floor holds regardless of weights
  EXPECT_GE(shares[2], 1u);
}

TEST(WeightedFairShareTest, ZeroWeightTreatedAsOne) {
  std::vector<StageDemand> demands(2);
  demands[0] = {"z", 0.5, 8, 0.0};  // degenerate weight
  demands[1] = {"n", 0.5, 8, 1.0};
  const auto shares = ComputeFairShares(demands, 8);
  EXPECT_EQ(shares[0] + shares[1], 8u);
  EXPECT_GE(shares[0], 3u);  // behaves like weight 1, not starved
}

TEST(WeightedFairShareTest, ControllerUsesStageWeights) {
  // Two greedy stages under a budget of 8; the weight-3 stage must
  // receive the larger allocation.
  ControllerOptions opts;
  opts.global_producer_budget = 8;
  Controller c("c0", opts, FixedFactory(16), SteadyClock::Shared());
  auto gold = MakeStage("gold", 3.0);
  auto bronze = MakeStage("bronze", 1.0);
  ASSERT_TRUE(c.Attach(gold).ok());
  ASSERT_TRUE(c.Attach(bronze).ok());
  // Two ticks: the first establishes baselines, the second coordinates
  // with starvation signals (zero here, so weights decide via the floor
  // + weighted hunger of the epsilon term).
  c.TickOnce();
  c.TickOnce();
  const auto pg = gold->CollectStats().producers;
  const auto pb = bronze->CollectStats().producers;
  EXPECT_LE(pg + pb, 8u);
  EXPECT_GT(pg, pb);
  gold->Stop();
  bronze->Stop();
}

}  // namespace
}  // namespace prisma
