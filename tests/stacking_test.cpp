// Optimization-object stacking through ObjectBackend: prefetching layered
// over tiering, each layer oblivious of the other (paper §III.A's
// composable building blocks).
#include <gtest/gtest.h>

#include <thread>

#include "dataplane/object_backend.hpp"
#include "dataplane/prefetch_object.hpp"
#include "dataplane/tiering_object.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::dataplane {
namespace {

using storage::DeviceProfile;
using storage::SyntheticBackend;
using storage::SyntheticBackendOptions;

class StackingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::SyntheticImageNetSpec spec;
    spec.num_train = 40;
    spec.num_validation = 4;
    spec.mean_file_size = 8 * 1024;
    spec.min_file_size = 1024;
    ds_ = storage::MakeSyntheticImageNet(spec);

    SyntheticBackendOptions o;
    o.profile = DeviceProfile::Instant();
    o.time_scale = 0.0;
    slow_ = std::make_shared<SyntheticBackend>(o, ds_);
    fast_ = std::make_shared<SyntheticBackend>(o);
  }

  storage::ImageNetDataset ds_;
  std::shared_ptr<SyntheticBackend> slow_;
  std::shared_ptr<SyntheticBackend> fast_;
};

TEST_F(StackingTest, ObjectBackendForwardsReads) {
  auto tiering = std::make_shared<TieringObject>(
      slow_, fast_, TieringOptions{}, SteadyClock::Shared());
  ASSERT_TRUE(tiering->Start().ok());
  ObjectBackend backend(tiering);

  const auto& f = ds_.train.At(0);
  auto data = backend.ReadAll(f.name);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, storage::SyntheticContent::Generate(f.name, f.size));
  EXPECT_EQ(*backend.FileSize(f.name), f.size);
  EXPECT_GE(backend.Stats().reads, 1u);
  tiering->Stop();
}

TEST_F(StackingTest, ObjectBackendRejectsWrites) {
  auto tiering = std::make_shared<TieringObject>(
      slow_, fast_, TieringOptions{}, SteadyClock::Shared());
  ObjectBackend backend(tiering);
  std::vector<std::byte> data(8);
  EXPECT_EQ(backend.Write("x", data).code(), StatusCode::kFailedPrecondition);
}

TEST_F(StackingTest, PrefetchOverTieringServesCorrectContent) {
  // Full stack: PrefetchObject -> ObjectBackend -> TieringObject -> slow.
  auto tiering = std::make_shared<TieringObject>(
      slow_, fast_, TieringOptions{}, SteadyClock::Shared());
  ASSERT_TRUE(tiering->Start().ok());
  auto middle = std::make_shared<ObjectBackend>(tiering);

  PrefetchOptions po;
  po.initial_producers = 2;
  po.buffer_capacity = 8;
  PrefetchObject prefetch(middle, po, SteadyClock::Shared());
  ASSERT_TRUE(prefetch.Start().ok());

  storage::EpochShuffler shuffler(ds_.train.Names(), 5);
  const auto order = shuffler.OrderFor(0);
  ASSERT_TRUE(prefetch.BeginEpoch(0, order).ok());
  for (const auto& name : order) {
    const auto size = *ds_.train.SizeOf(name);
    std::vector<std::byte> buf(size);
    ASSERT_TRUE(prefetch.Read(name, 0, buf).ok()) << name;
    EXPECT_EQ(buf, storage::SyntheticContent::Generate(name, size));
  }
  prefetch.Stop();

  // The lower layer did real work: reads flowed through tiering, which
  // promoted files to the fast tier in the background.
  EXPECT_EQ(tiering->Counters().slow_reads, order.size());
  tiering->Stop();
  EXPECT_GE(tiering->Counters().promotions, 1u);
}

TEST_F(StackingTest, SecondEpochHitsFastTierThroughTheStack) {
  TieringOptions to;
  to.fast_tier_capacity = 1ull << 30;  // everything fits
  auto tiering = std::make_shared<TieringObject>(slow_, fast_, to,
                                                 SteadyClock::Shared());
  ASSERT_TRUE(tiering->Start().ok());
  auto middle = std::make_shared<ObjectBackend>(tiering);

  PrefetchOptions po;
  po.initial_producers = 1;
  po.buffer_capacity = 8;
  PrefetchObject prefetch(middle, po, SteadyClock::Shared());
  ASSERT_TRUE(prefetch.Start().ok());

  storage::EpochShuffler shuffler(ds_.train.Names(), 9);
  for (std::uint64_t e = 0; e < 2; ++e) {
    const auto order = shuffler.OrderFor(e);
    ASSERT_TRUE(prefetch.BeginEpoch(e, order).ok());
    for (const auto& name : order) {
      std::vector<std::byte> buf(*ds_.train.SizeOf(name));
      ASSERT_TRUE(prefetch.Read(name, 0, buf).ok());
    }
    if (e == 0) {
      // Wait for background promotions to land before epoch 2.
      for (int i = 0; i < 500; ++i) {
        if (tiering->Counters().promotions >= ds_.train.NumFiles()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  }
  prefetch.Stop();
  tiering->Stop();

  const auto c = tiering->Counters();
  EXPECT_GE(c.fast_hits, ds_.train.NumFiles())
      << "epoch 2 should be served from the fast tier";
}

TEST_F(StackingTest, StackedStatsSeparateLayers) {
  auto tiering = std::make_shared<TieringObject>(
      slow_, fast_, TieringOptions{}, SteadyClock::Shared());
  ASSERT_TRUE(tiering->Start().ok());
  auto middle = std::make_shared<ObjectBackend>(tiering);
  PrefetchObject prefetch(middle, PrefetchOptions{}, SteadyClock::Shared());
  ASSERT_TRUE(prefetch.Start().ok());

  const auto& f = ds_.train.At(0);
  ASSERT_TRUE(prefetch.BeginEpoch(0, {f.name}).ok());
  std::vector<std::byte> buf(f.size);
  ASSERT_TRUE(prefetch.Read(f.name, 0, buf).ok());

  EXPECT_EQ(prefetch.CollectStats().samples_consumed, 1u);  // top layer
  EXPECT_GE(middle->Stats().reads, 1u);                     // adapter
  EXPECT_EQ(tiering->CollectStats().passthrough_reads, 1u); // bottom layer
  prefetch.Stop();
  tiering->Stop();
}

}  // namespace
}  // namespace prisma::dataplane
