// DES engine tests: event ordering, virtual clock, coroutine tasks, and
// the awaitable primitives (queue, resource, sample buffer).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/primitives.hpp"
#include "sim/storage_actor.hpp"
#include "sim/task.hpp"

namespace prisma::sim {
namespace {

TEST(SimEngineTest, EventsFireInTimeOrder) {
  SimEngine eng;
  std::vector<int> order;
  eng.ScheduleAfter(Millis{30}, [&] { order.push_back(3); });
  eng.ScheduleAfter(Millis{10}, [&] { order.push_back(1); });
  eng.ScheduleAfter(Millis{20}, [&] { order.push_back(2); });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.Now(), Millis{30});
}

TEST(SimEngineTest, EqualTimestampsFifo) {
  SimEngine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.ScheduleAfter(Millis{5}, [&, i] { order.push_back(i); });
  }
  eng.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimEngineTest, RunUntilStopsEarly) {
  SimEngine eng;
  int fired = 0;
  eng.ScheduleAfter(Millis{10}, [&] { ++fired; });
  eng.ScheduleAfter(Millis{100}, [&] { ++fired; });
  eng.Run(Millis{50});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.Now(), Millis{50});
  eng.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEngineTest, NestedScheduling) {
  SimEngine eng;
  Nanos inner_time{0};
  eng.ScheduleAfter(Millis{10}, [&] {
    eng.ScheduleAfter(Millis{5}, [&] { inner_time = eng.Now(); });
  });
  eng.Run();
  EXPECT_EQ(inner_time, Millis{15});
}

TEST(SimEngineTest, ClockTracksVirtualTime) {
  SimEngine eng;
  Nanos seen{0};
  eng.ScheduleAfter(Seconds{2}, [&] { seen = eng.clock()->Now(); });
  eng.Run();
  EXPECT_EQ(seen, Seconds{2});
}

TEST(SimEngineTest, PastEventsClampToNow) {
  SimEngine eng;
  eng.ScheduleAfter(Millis{10}, [&] {
    eng.ScheduleAt(Millis{1}, [] {});  // in the past: clamped
  });
  eng.Run();
  EXPECT_EQ(eng.Now(), Millis{10});
}

// --- SimTask -------------------------------------------------------------------

SimTask SimpleDelay(SimEngine& eng, int* done) {
  co_await eng.Delay(Millis{10});
  *done = 1;
}

TEST(SimTaskTest, RunsToCompletion) {
  SimEngine eng;
  int done = 0;
  auto t = Spawn(eng, SimpleDelay, std::ref(eng), &done);
  EXPECT_FALSE(t.Done());
  eng.Run();
  EXPECT_TRUE(t.Done());
  EXPECT_EQ(done, 1);
}

SimTask Joiner(SimEngine& eng, SimTask inner, int* after) {
  co_await inner;
  *after = static_cast<int>(ToSeconds(eng.Now()) * 1000);
}

TEST(SimTaskTest, JoinWaitsForCompletion) {
  SimEngine eng;
  int done = 0, after = -1;
  auto inner = Spawn(eng, SimpleDelay, std::ref(eng), &done);
  auto outer = Spawn(eng, Joiner, std::ref(eng), inner, &after);
  eng.Run();
  EXPECT_TRUE(outer.Done());
  EXPECT_EQ(after, 10);
}

TEST(SimTaskTest, JoinAlreadyDoneTask) {
  SimEngine eng;
  int done = 0, after = -1;
  auto inner = Spawn(eng, SimpleDelay, std::ref(eng), &done);
  eng.Run();
  ASSERT_TRUE(inner.Done());
  auto outer = Spawn(eng, Joiner, std::ref(eng), inner, &after);
  eng.Run();
  EXPECT_TRUE(outer.Done());
}

TEST(SimTaskTest, JoinAllJoinsEverything) {
  SimEngine eng;
  int d1 = 0, d2 = 0;
  std::vector<SimTask> tasks;
  tasks.push_back(Spawn(eng, SimpleDelay, std::ref(eng), &d1));
  tasks.push_back(Spawn(eng, SimpleDelay, std::ref(eng), &d2));
  auto all = Spawn(eng, JoinAll, std::move(tasks));
  eng.Run();
  EXPECT_TRUE(all.Done());
  EXPECT_EQ(d1 + d2, 2);
}

// --- SimQueue -------------------------------------------------------------------

SimTask QueueProducer(SimEngine& eng, SimQueue<int>& q, int n, Nanos gap) {
  for (int i = 0; i < n; ++i) {
    co_await eng.Delay(gap);
    co_await q.Push(i);
  }
  q.Close();
}

SimTask QueueConsumer(SimEngine& eng, SimQueue<int>& q, Nanos work,
                      std::vector<int>* got) {
  while (auto v = co_await q.Pop()) {
    co_await eng.Delay(work);
    got->push_back(*v);
  }
}

TEST(SimQueueTest, FifoThroughBackpressure) {
  SimEngine eng;
  SimQueue<int> q(eng, 2);
  std::vector<int> got;
  auto p = Spawn(eng, QueueProducer, std::ref(eng), std::ref(q), 50, Nanos{0});
  auto c = Spawn(eng, QueueConsumer, std::ref(eng), std::ref(q), Millis{1}, &got);
  eng.Run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
  // Consumer-paced: 50 ms of work.
  EXPECT_EQ(eng.Now(), Millis{50});
}

TEST(SimQueueTest, SlowProducerPacesConsumer) {
  SimEngine eng;
  SimQueue<int> q(eng, 8);
  std::vector<int> got;
  auto p = Spawn(eng, QueueProducer, std::ref(eng), std::ref(q), 10, Millis{5});
  auto c = Spawn(eng, QueueConsumer, std::ref(eng), std::ref(q), Nanos{0}, &got);
  eng.Run();
  EXPECT_EQ(got.size(), 10u);
  EXPECT_EQ(eng.Now(), Millis{50});
}

TEST(SimQueueTest, CloseWakesBlockedPopper) {
  SimEngine eng;
  SimQueue<int> q(eng, 1);
  bool popped_null = false;
  auto popper = [](SimQueue<int>& q, bool* out) -> SimTask {
    auto v = co_await q.Pop();
    *out = !v.has_value();
  };
  auto t = Spawn(eng, popper, std::ref(q), &popped_null);
  eng.ScheduleAfter(Millis{1}, [&] { q.Close(); });
  eng.Run();
  EXPECT_TRUE(t.Done());
  EXPECT_TRUE(popped_null);
}

TEST(SimQueueTest, TryPushDeliversToWaiter) {
  SimEngine eng;
  SimQueue<int> q(eng, 1);
  int got = -1;
  auto popper = [](SimQueue<int>& q, int* out) -> SimTask {
    auto v = co_await q.Pop();
    *out = v.value_or(-2);
  };
  auto t = Spawn(eng, popper, std::ref(q), &got);
  EXPECT_TRUE(q.TryPush(42));
  eng.Run();
  EXPECT_EQ(got, 42);
}

TEST(SimQueueTest, SetCapacityAdmitsWaiters) {
  SimEngine eng;
  SimQueue<int> q(eng, 1);
  int pushed = 0;
  auto pusher = [](SimQueue<int>& q, int* count) -> SimTask {
    for (int i = 0; i < 3; ++i) {
      if (co_await q.Push(i)) ++*count;
    }
  };
  auto t = Spawn(eng, pusher, std::ref(q), &pushed);
  eng.Run();
  EXPECT_EQ(pushed, 1);  // capacity 1; two pushes blocked
  q.SetCapacity(8);
  eng.Run();
  EXPECT_EQ(pushed, 3);
}

// --- SimResource -----------------------------------------------------------------

TEST(SimResourceTest, LimitsConcurrency) {
  SimEngine eng;
  SimResource res(eng, 2);
  int active = 0, peak = 0, done = 0;
  auto worker = [&](SimEngine& e, SimResource& r) -> SimTask {
    co_await r.Acquire();
    peak = std::max(peak, ++active);
    co_await e.Delay(Millis{10});
    --active;
    r.Release();
    ++done;
  };
  for (int i = 0; i < 6; ++i) Spawn(eng, worker, std::ref(eng), std::ref(res));
  eng.Run();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(eng.Now(), Millis{30});  // 6 jobs, 2 at a time, 10 ms each
}

TEST(SimResourceTest, SetTotalGrowsConcurrency) {
  SimEngine eng;
  SimResource res(eng, 1);
  int done = 0;
  auto worker = [&](SimEngine& e, SimResource& r) -> SimTask {
    co_await r.Acquire();
    co_await e.Delay(Millis{10});
    r.Release();
    ++done;
  };
  for (int i = 0; i < 4; ++i) Spawn(eng, worker, std::ref(eng), std::ref(res));
  eng.ScheduleAfter(Millis{10}, [&] { res.SetTotal(4); });
  eng.Run();
  EXPECT_EQ(done, 4);
  // 1 job in [0,10); remaining 3 run concurrently in [10,20).
  EXPECT_EQ(eng.Now(), Millis{20});
}

TEST(SimResourceTest, SetTotalShrinkDrains) {
  SimEngine eng;
  SimResource res(eng, 4);
  int concurrent = 0, peak_after_shrink = 0, done = 0;
  bool shrunk = false;
  auto worker = [&](SimEngine& e, SimResource& r) -> SimTask {
    co_await r.Acquire();
    ++concurrent;
    if (shrunk) peak_after_shrink = std::max(peak_after_shrink, concurrent);
    co_await e.Delay(Millis{10});
    --concurrent;
    r.Release();
    ++done;
  };
  for (int i = 0; i < 12; ++i) Spawn(eng, worker, std::ref(eng), std::ref(res));
  eng.ScheduleAfter(Millis{5}, [&] {
    res.SetTotal(1);
    shrunk = true;
  });
  eng.Run();
  EXPECT_EQ(done, 12);
  EXPECT_LE(peak_after_shrink, 1);
}

// --- SimSampleBuffer -------------------------------------------------------------

SimTask BufferProducer(SimEngine& eng, SimSampleBuffer& buf,
                       const std::vector<std::string>& names, Nanos gap) {
  for (const auto& n : names) {
    co_await eng.Delay(gap);
    co_await buf.Insert(n, 100);
  }
}

SimTask BufferConsumer(SimEngine& eng, SimSampleBuffer& buf,
                       const std::vector<std::string>& names, int* got) {
  for (const auto& n : names) {
    auto b = co_await buf.Take(n);
    if (b) ++*got;
  }
  (void)eng;
}

TEST(SimSampleBufferTest, InOrderFlow) {
  SimEngine eng;
  SimSampleBuffer buf(eng, 4);
  std::vector<std::string> names;
  for (int i = 0; i < 40; ++i) names.push_back("f" + std::to_string(i));
  int got = 0;
  Spawn(eng, BufferProducer, std::ref(eng), std::ref(buf), names, Millis{1});
  Spawn(eng, BufferConsumer, std::ref(eng), std::ref(buf), names, &got);
  eng.Run();
  EXPECT_EQ(got, 40);
  EXPECT_EQ(buf.Occupancy(), 0u);
  EXPECT_EQ(buf.counters().takes, 40u);
}

TEST(SimSampleBufferTest, HandoffBypassesFullBuffer) {
  // Regression mirror of the live SampleBuffer deadlock: a full buffer
  // must still admit the name a consumer is waiting for.
  SimEngine eng;
  SimSampleBuffer buf(eng, 2);
  bool delivered = false;

  auto producer = [](SimEngine& e, SimSampleBuffer& b) -> SimTask {
    co_await b.Insert("later1", 10);
    co_await b.Insert("later2", 10);  // buffer now full
    co_await e.Delay(Millis{5});
    co_await b.Insert("wanted", 10);  // must hand off, not block
  };
  auto consumer = [](SimSampleBuffer& b, bool* out) -> SimTask {
    auto v = co_await b.Take("wanted");
    *out = v.has_value();
  };
  Spawn(eng, producer, std::ref(eng), std::ref(buf));
  Spawn(eng, consumer, std::ref(buf), &delivered);
  eng.Run();
  EXPECT_TRUE(delivered);
  EXPECT_TRUE(eng.Idle());
}

TEST(SimSampleBufferTest, CapacityBlocksProducer) {
  SimEngine eng;
  SimSampleBuffer buf(eng, 2);
  std::vector<std::string> names{"a", "b", "c", "d"};
  int got = 0;
  Spawn(eng, BufferProducer, std::ref(eng), std::ref(buf), names, Nanos{0});
  eng.Run();
  EXPECT_EQ(buf.Occupancy(), 2u);  // producer parked on the 3rd insert
  EXPECT_GE(buf.counters().producer_blocks, 1u);
  Spawn(eng, BufferConsumer, std::ref(eng), std::ref(buf), names, &got);
  eng.Run();
  EXPECT_EQ(got, 4);
}

TEST(SimSampleBufferTest, CloseDeliversNullopt) {
  SimEngine eng;
  SimSampleBuffer buf(eng, 2);
  bool got_null = false;
  auto consumer = [](SimSampleBuffer& b, bool* out) -> SimTask {
    auto v = co_await b.Take("never");
    *out = !v.has_value();
  };
  Spawn(eng, consumer, std::ref(buf), &got_null);
  eng.ScheduleAfter(Millis{1}, [&] { buf.Close(); });
  eng.Run();
  EXPECT_TRUE(got_null);
}

TEST(SimSampleBufferTest, CountersMatchLiveVocabulary) {
  SimEngine eng;
  SimSampleBuffer buf(eng, 4);
  int got = 0;
  std::vector<std::string> names{"x"};
  Spawn(eng, BufferConsumer, std::ref(eng), std::ref(buf), names, &got);
  eng.Run();  // consumer waits
  Spawn(eng, BufferProducer, std::ref(eng), std::ref(buf), names, Nanos{0});
  eng.Run();
  EXPECT_EQ(got, 1);
  const auto& c = buf.counters();
  EXPECT_EQ(c.consumer_waits, 1u);
  EXPECT_EQ(c.consumer_hits, 0u);
  EXPECT_EQ(c.inserts, 1u);
  EXPECT_EQ(c.takes, 1u);
}

// --- SimStorage -------------------------------------------------------------------

SimTask DoRead(SimStorage& st, std::string name, std::uint64_t bytes) {
  co_await st.Read(std::move(name), bytes);
}

TEST(SimStorageTest, ChargesServiceTime) {
  SimEngine eng;
  SimStorageOptions o;
  o.profile = storage::DeviceProfile::NvmeP4600();
  o.profile.jitter_frac = 0.0;
  SimStorage st(eng, o);
  Spawn(eng, DoRead, std::ref(st), "f", 113 * 1024);
  eng.Run();
  const double expected =
      ToSeconds(st.device().ServiceTime(113 * 1024, 1));
  EXPECT_NEAR(ToSeconds(eng.Now()), expected, 1e-9);
  EXPECT_EQ(st.ReadsCompleted(), 1u);
  EXPECT_EQ(st.BytesRead(), 113u * 1024);
}

TEST(SimStorageTest, ConcurrentReadsShareBandwidth) {
  SimEngine eng;
  SimStorageOptions o;
  o.profile.jitter_frac = 0.0;
  SimStorage st(eng, o);
  for (int i = 0; i < 8; ++i) {
    Spawn(eng, DoRead, std::ref(st), "f" + std::to_string(i), 113 * 1024);
  }
  eng.Run();
  // 8 concurrent readers must finish sooner than 8 serial reads but later
  // than one solo read.
  const double solo = ToSeconds(st.device().ServiceTime(113 * 1024, 1));
  EXPECT_GT(ToSeconds(eng.Now()), solo);
  EXPECT_LT(ToSeconds(eng.Now()), 8 * solo);
}

TEST(SimStorageTest, TimelineRecordsConcurrency) {
  SimEngine eng;
  SimStorageOptions o;
  o.profile.jitter_frac = 0.0;
  SimStorage st(eng, o);
  for (int i = 0; i < 4; ++i) {
    Spawn(eng, DoRead, std::ref(st), "f" + std::to_string(i), 50000);
  }
  eng.Run();
  const auto tl = st.ReaderTimeline();
  EXPECT_EQ(tl.MaxValue(), 4);
  EXPECT_EQ(st.Outstanding(), 0u);
}

TEST(SimStorageTest, PageCacheAcceleratesRepeats) {
  SimEngine eng;
  SimStorageOptions o;
  o.profile.jitter_frac = 0.0;
  o.page_cache_bytes = 10u << 20;
  SimStorage st(eng, o);
  Spawn(eng, DoRead, std::ref(st), "hot", 113 * 1024);
  eng.Run();
  const Nanos first = eng.Now();
  Spawn(eng, DoRead, std::ref(st), "hot", 113 * 1024);
  eng.Run();
  const Nanos second = eng.Now() - first;
  EXPECT_LT(second, first / 10);
}

TEST(SimStorageTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimEngine eng;
    SimStorageOptions o;
    o.seed = 77;
    SimStorage st(eng, o);
    for (int i = 0; i < 20; ++i) {
      Spawn(eng, DoRead, std::ref(st), "f" + std::to_string(i),
            100000 + i * 1000);
    }
    eng.Run();
    return eng.Now();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace prisma::sim
