// SampleBuffer: PRISMA's bounded in-memory buffer with evict-on-consume
// semantics, capacity blocking, the direct-handoff deadlock fix, and
// counter accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "dataplane/sample_buffer.hpp"

namespace prisma::dataplane {
namespace {

Sample MakeSample(const std::string& name, std::size_t bytes = 16) {
  return Sample{name, std::vector<std::byte>(bytes)};
}

std::shared_ptr<const Clock> TestClock() { return SteadyClock::Shared(); }

TEST(SampleBufferTest, InsertThenTake) {
  SampleBuffer buf(4, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("a", 100)).ok());
  auto s = buf.Take("a");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->name, "a");
  EXPECT_EQ(s->size(), 100u);
}

TEST(SampleBufferTest, EvictOnConsume) {
  // The paper's caching policy: stored on producer read, evicted when the
  // consumer requests it.
  SampleBuffer buf(4, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("a")).ok());
  EXPECT_TRUE(buf.Contains("a"));
  ASSERT_TRUE(buf.Take("a").ok());
  EXPECT_FALSE(buf.Contains("a"));
  EXPECT_EQ(buf.Occupancy(), 0u);
}

TEST(SampleBufferTest, HitVsWaitCounters) {
  SampleBuffer buf(4, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("ready")).ok());
  ASSERT_TRUE(buf.Take("ready").ok());  // hit

  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(buf.Insert(MakeSample("late")).ok());
  });
  ASSERT_TRUE(buf.Take("late").ok());  // wait
  producer.join();

  const auto c = buf.GetCounters();
  EXPECT_EQ(c.consumer_hits, 1u);
  EXPECT_EQ(c.consumer_waits, 1u);
  EXPECT_GT(c.consumer_wait_time.count(), 0);
  EXPECT_EQ(c.inserts, 2u);
  EXPECT_EQ(c.takes, 2u);
}

TEST(SampleBufferTest, OccupancyBytes) {
  SampleBuffer buf(4, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("a", 100)).ok());
  ASSERT_TRUE(buf.Insert(MakeSample("b", 200)).ok());
  EXPECT_EQ(buf.OccupancyBytes(), 300u);
  ASSERT_TRUE(buf.Take("a").ok());
  EXPECT_EQ(buf.OccupancyBytes(), 200u);
}

TEST(SampleBufferTest, DuplicateInsertOverwrites) {
  SampleBuffer buf(4, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("a", 10)).ok());
  ASSERT_TRUE(buf.Insert(MakeSample("a", 99)).ok());
  EXPECT_EQ(buf.Occupancy(), 1u);
  EXPECT_EQ(buf.OccupancyBytes(), 99u);
  auto s = buf.Take("a");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 99u);
}

TEST(SampleBufferTest, InsertBlocksWhenFull) {
  SampleBuffer buf(2, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("a")).ok());
  ASSERT_TRUE(buf.Insert(MakeSample("b")).ok());

  std::atomic<bool> inserted{false};
  std::thread producer([&] {
    ASSERT_TRUE(buf.Insert(MakeSample("c")).ok());
    inserted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(inserted.load());
  ASSERT_TRUE(buf.Take("a").ok());  // frees a slot
  producer.join();
  EXPECT_TRUE(inserted.load());
  EXPECT_GE(buf.GetCounters().producer_blocks, 1u);
}

TEST(SampleBufferTest, DirectHandoffBypassesFullBuffer) {
  // Regression: a consumer blocked on name X must receive X even when
  // the buffer is full of other samples; otherwise producer(X) and the
  // consumer deadlock against each other.
  SampleBuffer buf(2, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("later1")).ok());
  ASSERT_TRUE(buf.Insert(MakeSample("later2")).ok());  // buffer now full

  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Must not block forever despite the full buffer.
    ASSERT_TRUE(buf.Insert(MakeSample("wanted")).ok());
  });
  auto s = buf.Take("wanted");  // blocks until handoff
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->name, "wanted");
  producer.join();
}

TEST(SampleBufferTest, CapacityGrowthUnblocksProducer) {
  SampleBuffer buf(1, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("a")).ok());
  std::atomic<bool> inserted{false};
  std::thread producer([&] {
    ASSERT_TRUE(buf.Insert(MakeSample("b")).ok());
    inserted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(inserted.load());
  buf.SetCapacity(4);
  producer.join();
  EXPECT_TRUE(inserted.load());
  EXPECT_EQ(buf.Capacity(), 4u);
}

TEST(SampleBufferTest, CloseUnblocksEverybody) {
  SampleBuffer buf(1, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("a")).ok());

  std::thread blocked_producer([&] {
    EXPECT_EQ(buf.Insert(MakeSample("b")).code(), StatusCode::kAborted);
  });
  std::thread blocked_consumer([&] {
    EXPECT_EQ(buf.Take("never").status().code(), StatusCode::kAborted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  buf.Close();
  blocked_producer.join();
  blocked_consumer.join();

  EXPECT_EQ(buf.Insert(MakeSample("c")).code(), StatusCode::kAborted);
}

TEST(SampleBufferTest, ReopenAfterClose) {
  SampleBuffer buf(2, TestClock());
  buf.Close();
  buf.Reopen();
  ASSERT_TRUE(buf.Insert(MakeSample("a")).ok());
  EXPECT_TRUE(buf.Take("a").ok());
}

TEST(SampleBufferTest, ZeroCapacityClampedToOne) {
  SampleBuffer buf(0, TestClock());
  EXPECT_EQ(buf.Capacity(), 1u);
  buf.SetCapacity(0);
  EXPECT_EQ(buf.Capacity(), 1u);
}

TEST(SampleBufferTest, ShardCountDefaultsAndExplicit) {
  SampleBuffer defaulted(4, TestClock());
  const std::size_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(defaulted.ShardCount(), hw == 0 ? 2u : 2 * hw);

  SampleBuffer explicit_shards(4, TestClock(), 8);
  EXPECT_EQ(explicit_shards.ShardCount(), 8u);
}

TEST(SampleBufferTest, CapacityIsGlobalAcrossShards) {
  // N bounds total residency, not per-shard residency: with N = 2 and
  // many shards, a third insert must block no matter where it hashes.
  SampleBuffer buf(2, TestClock(), 16);
  ASSERT_TRUE(buf.Insert(MakeSample("a")).ok());
  ASSERT_TRUE(buf.Insert(MakeSample("b")).ok());
  EXPECT_EQ(buf.Occupancy(), 2u);

  std::atomic<bool> inserted{false};
  std::thread producer([&] {
    ASSERT_TRUE(buf.Insert(MakeSample("c")).ok());
    inserted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(inserted.load());
  ASSERT_TRUE(buf.Take("a").ok());
  producer.join();
  EXPECT_TRUE(inserted.load());
}

TEST(SampleBufferTest, BlockedInsertHonoursCancelPredicate) {
  // A retiring producer must not stall forever on a full buffer with no
  // consumer draining it (the ReconcileProducers join hazard).
  SampleBuffer buf(1, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("resident")).ok());

  std::atomic<bool> cancel{false};
  std::atomic<bool> done{false};
  std::thread producer([&] {
    const Status s =
        buf.Insert(MakeSample("stuck"), [&] { return cancel.load(); });
    EXPECT_EQ(s.code(), StatusCode::kCancelled);
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  cancel = true;
  buf.WakeBlockedProducers();
  producer.join();
  EXPECT_TRUE(done.load());
  // The cancelled sample was never admitted; its slot is free again.
  ASSERT_TRUE(buf.Take("resident").ok());
  ASSERT_TRUE(buf.Insert(MakeSample("next")).ok());
  EXPECT_FALSE(buf.Contains("stuck"));
}

TEST(SampleBufferTest, PreCancelledInsertStillAdmitsWhenNotBlocked) {
  // The predicate only matters while blocked; an insert that finds room
  // proceeds even if its producer is already marked for retirement.
  SampleBuffer buf(4, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("a"), [] { return true; }).ok());
  EXPECT_TRUE(buf.Contains("a"));
}

TEST(SampleBufferTest, SetShardCountMigratesResidents) {
  SampleBuffer buf(16, TestClock(), 8);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(buf.Insert(MakeSample("f" + std::to_string(i), 10 + i)).ok());
  }
  buf.MarkFailed("doomed");
  ASSERT_TRUE(buf.SetShardCount(2).ok());
  EXPECT_EQ(buf.ShardCount(), 2u);
  EXPECT_EQ(buf.Occupancy(), 10u);

  // Every resident survives the migration with its payload intact, and
  // the failure mark still reaches its consumer.
  for (int i = 0; i < 10; ++i) {
    auto s = buf.Take("f" + std::to_string(i));
    ASSERT_TRUE(s.ok()) << "file " << i;
    EXPECT_EQ(s->size(), 10u + i);
  }
  EXPECT_EQ(buf.Take("doomed").status().code(), StatusCode::kIoError);
  EXPECT_EQ(buf.Occupancy(), 0u);
}

TEST(SampleBufferTest, SetShardCountRefusesWhileConsumerBlocked) {
  SampleBuffer buf(4, TestClock(), 4);
  std::thread consumer([&] {
    PRISMA_IGNORE_STATUS(buf.Take("pending"),
                         "unblocked by Close below; value irrelevant");
  });
  // Wait until the consumer has registered as awaited.
  for (int i = 0; i < 500 && buf.SetShardCount(2).ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(buf.SetShardCount(2).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(buf.Insert(MakeSample("pending")).ok());
  consumer.join();
  // Quiescent again: the reshard now succeeds.
  EXPECT_TRUE(buf.SetShardCount(2).ok());
  EXPECT_EQ(buf.ShardCount(), 2u);
}

class SampleBufferStressTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SampleBufferStressTest, ProducersAndConsumerAgree) {
  // Property: with P producers racing over a shared FIFO of names and one
  // consumer taking in order, every sample is delivered exactly once and
  // the buffer drains to empty. Exercises blocking, handoff, and eviction
  // under real thread interleavings, across shard counts (1 = the old
  // single-mutex layout; 0 = the hardware-sized default).
  const auto [capacity, shards] = GetParam();
  constexpr int kFiles = 400;
  constexpr int kProducers = 4;
  SampleBuffer buf(capacity, TestClock(), shards);

  std::atomic<int> next_index{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (;;) {
        const int i = next_index.fetch_add(1);
        if (i >= kFiles) break;
        ASSERT_TRUE(
            buf.Insert(MakeSample("f" + std::to_string(i), 8 + i % 32)).ok());
      }
    });
  }

  for (int i = 0; i < kFiles; ++i) {
    auto s = buf.Take("f" + std::to_string(i));
    ASSERT_TRUE(s.ok()) << "file " << i;
    EXPECT_EQ(s->size(), 8u + i % 32);
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(buf.Occupancy(), 0u);
  const auto c = buf.GetCounters();
  EXPECT_EQ(c.inserts, static_cast<std::uint64_t>(kFiles));
  EXPECT_EQ(c.takes, static_cast<std::uint64_t>(kFiles));
  EXPECT_EQ(c.consumer_hits + c.consumer_waits, static_cast<std::uint64_t>(kFiles));
}

INSTANTIATE_TEST_SUITE_P(
    CapacitiesByShards, SampleBufferStressTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 8, 64, 1024),
                       ::testing::Values<std::size_t>(1, 4, 0)));

TEST(SampleBufferTest, PayloadOutlivesEviction) {
  // Zero-copy invariant: a reader that grabbed a payload ref stays valid
  // after the sample is evicted, the name is reinserted with different
  // bytes, and the buffer is closed. ASan validates the accesses.
  SampleBuffer buf(4, TestClock());
  std::vector<std::byte> first(64, std::byte{0xAA});
  ASSERT_TRUE(buf.Insert(Sample{"a", std::move(first)}).ok());

  auto taken = buf.Take("a");  // evicts "a" from the buffer
  ASSERT_TRUE(taken.ok());
  // prisma-lint: allow(no-payload-copy, refcount bump is the point: the
  // test holds a second ref across eviction)
  SamplePayload held = taken->payload;
  taken = Status::NotFound("dropped");  // the Sample itself is gone

  std::vector<std::byte> second(64, std::byte{0x55});
  ASSERT_TRUE(buf.Insert(Sample{"a", std::move(second)}).ok());
  ASSERT_TRUE(buf.Take("a").ok());
  buf.Close();

  ASSERT_EQ(held.size(), 64u);
  for (const std::byte b : held.span()) EXPECT_EQ(b, std::byte{0xAA});
}

TEST(SampleBufferTest, InsertNowLandsIntoFullBuffer) {
  // A retiring producer must not drop completed read work: InsertNow
  // forces a slot past capacity and the overshoot drains with the Takes.
  SampleBuffer buf(2, TestClock());
  ASSERT_TRUE(buf.Insert(MakeSample("a")).ok());
  ASSERT_TRUE(buf.Insert(MakeSample("b")).ok());
  ASSERT_EQ(buf.Occupancy(), 2u);

  ASSERT_TRUE(buf.InsertNow(MakeSample("c", 32)).ok());
  ASSERT_EQ(buf.Occupancy(), 3u);  // transient over-capacity

  auto c = buf.Take("c");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->size(), 32u);
  ASSERT_TRUE(buf.Take("a").ok());
  ASSERT_TRUE(buf.Take("b").ok());
  ASSERT_EQ(buf.Occupancy(), 0u);

  // Slot accounting is back in balance: capacity inserts fit again.
  ASSERT_TRUE(buf.Insert(MakeSample("d")).ok());
  ASSERT_TRUE(buf.Insert(MakeSample("e")).ok());
  ASSERT_TRUE(buf.Take("d").ok());
  ASSERT_TRUE(buf.Take("e").ok());

  buf.Close();
  EXPECT_EQ(buf.InsertNow(MakeSample("f")).code(), StatusCode::kAborted);
}

}  // namespace
}  // namespace prisma::dataplane
