// Failure injection: the data plane must degrade gracefully — retry
// transient faults, fail persistent ones over to pass-through, and never
// leave a consumer blocked forever.
#include <gtest/gtest.h>

#include "dataplane/prefetch_object.hpp"
#include "dataplane/sample_buffer.hpp"
#include "dataplane/tiering_object.hpp"
#include "storage/flaky_backend.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::dataplane {
namespace {

using storage::FlakyBackend;
using storage::FlakyOptions;

std::shared_ptr<storage::SyntheticBackend> InstantBackend(
    const storage::ImageNetDataset& ds) {
  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::Instant();
  o.time_scale = 0.0;
  return std::make_shared<storage::SyntheticBackend>(o, ds);
}

storage::ImageNetDataset SmallDataset(std::size_t n = 50) {
  storage::SyntheticImageNetSpec spec;
  spec.num_train = n;
  spec.num_validation = 2;
  spec.mean_file_size = 8 * 1024;
  spec.min_file_size = 1024;
  return storage::MakeSyntheticImageNet(spec);
}

// --- FlakyBackend itself -------------------------------------------------------

TEST(FlakyBackendTest, ZeroRatesPassThrough) {
  const auto ds = SmallDataset(5);
  FlakyBackend flaky(InstantBackend(ds), FlakyOptions{});
  const auto& f = ds.train.At(0);
  auto data = flaky.ReadAll(f.name);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), f.size);
  EXPECT_EQ(flaky.InjectedErrors(), 0u);
}

TEST(FlakyBackendTest, InjectsErrorsAtConfiguredRate) {
  const auto ds = SmallDataset(5);
  FlakyOptions fo;
  fo.read_error_rate = 0.5;
  FlakyBackend flaky(InstantBackend(ds), fo);
  const auto& f = ds.train.At(0);
  int failures = 0;
  std::vector<std::byte> buf(64);
  for (int i = 0; i < 400; ++i) {
    if (!flaky.Read(f.name, 0, buf).ok()) ++failures;
  }
  EXPECT_NEAR(failures, 200, 60);  // ~binomial(400, 0.5)
  EXPECT_EQ(flaky.InjectedErrors(), static_cast<std::uint64_t>(failures));
}

TEST(FlakyBackendTest, FailFirstNClearsOnRetry) {
  const auto ds = SmallDataset(5);
  FlakyOptions fo;
  fo.read_error_rate = 1.0;  // always... but only the first 2 attempts
  fo.fail_first_n = 2;
  FlakyBackend flaky(InstantBackend(ds), fo);
  const auto& f = ds.train.At(0);
  std::vector<std::byte> buf(64);
  EXPECT_FALSE(flaky.Read(f.name, 0, buf).ok());
  EXPECT_FALSE(flaky.Read(f.name, 0, buf).ok());
  EXPECT_TRUE(flaky.Read(f.name, 0, buf).ok());  // 3rd attempt succeeds
}

TEST(FlakyBackendTest, LatencySpikesDelay) {
  const auto ds = SmallDataset(5);
  FlakyOptions fo;
  fo.latency_spike_rate = 1.0;
  fo.spike_duration = Millis{15};
  FlakyBackend flaky(InstantBackend(ds), fo);
  std::vector<std::byte> buf(64);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(flaky.Read(ds.train.At(0).name, 0, buf).ok());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, Millis{10});
  EXPECT_GE(flaky.InjectedSpikes(), 1u);
}

TEST(FlakyBackendTest, InjectsWriteFaults) {
  const auto ds = SmallDataset(5);
  FlakyOptions fo;
  fo.write_error_rate = 1.0;
  FlakyBackend flaky(InstantBackend(ds), fo);
  const std::vector<std::byte> data(64);
  EXPECT_EQ(flaky.Write("new_file", data).code(), StatusCode::kIoError);
  EXPECT_EQ(flaky.InjectedWriteErrors(), 1u);
  // The fault fired before the inner backend saw anything.
  EXPECT_FALSE(flaky.FileSize("new_file").ok());
  // Reads are a separate fault domain.
  std::vector<std::byte> buf(64);
  EXPECT_TRUE(flaky.Read(ds.train.At(0).name, 0, buf).ok());
}

TEST(FlakyBackendTest, InjectsSizeFaults) {
  const auto ds = SmallDataset(5);
  FlakyOptions fo;
  fo.size_error_rate = 1.0;
  FlakyBackend flaky(InstantBackend(ds), fo);
  const auto s = flaky.FileSize(ds.train.At(0).name);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kIoError);
  EXPECT_EQ(flaky.InjectedSizeErrors(), 1u);
}

TEST(FlakyBackendTest, AttemptMapStaysBounded) {
  // Regression: the per-path attempt map behind fail_first_n grew one
  // entry per distinct path forever; a long-lived stage reading an
  // ever-changing working set leaked it without bound.
  const auto ds = SmallDataset(5);
  FlakyOptions fo;
  fo.read_error_rate = 1.0;
  fo.fail_first_n = 1;
  fo.max_tracked_paths = 8;
  FlakyBackend flaky(InstantBackend(ds), fo);
  std::vector<std::byte> buf(16);
  for (int i = 0; i < 100; ++i) {
    // Unknown paths still exercise the attempt bookkeeping.
    PRISMA_IGNORE_STATUS(flaky.Read("ghost" + std::to_string(i), 0, buf).status(),
                         "only the tracking side effect matters here");
    EXPECT_LE(flaky.TrackedPaths(), fo.max_tracked_paths);
  }
}

TEST(FlakyBackendTest, ResetAttemptsRearmsEarlyReadFaults) {
  const auto ds = SmallDataset(5);
  FlakyOptions fo;
  fo.read_error_rate = 1.0;
  fo.fail_first_n = 1;
  FlakyBackend flaky(InstantBackend(ds), fo);
  const auto& f = ds.train.At(0);
  std::vector<std::byte> buf(64);
  EXPECT_FALSE(flaky.Read(f.name, 0, buf).ok());
  EXPECT_TRUE(flaky.Read(f.name, 0, buf).ok());  // fault cleared
  flaky.ResetAttempts();                         // epoch boundary
  EXPECT_EQ(flaky.TrackedPaths(), 0u);
  EXPECT_FALSE(flaky.Read(f.name, 0, buf).ok());  // fires again
  EXPECT_TRUE(flaky.Read(f.name, 0, buf).ok());
}

// --- SampleBuffer failure propagation --------------------------------------------

TEST(SampleBufferFailureTest, MarkFailedWakesBlockedConsumer) {
  SampleBuffer buf(4, SteadyClock::Shared());
  std::thread producer([&] {
    std::this_thread::sleep_for(Millis{20});
    buf.MarkFailed("doomed");
  });
  const auto r = buf.Take("doomed");
  producer.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(SampleBufferFailureTest, MarkIsConsumedOnce) {
  SampleBuffer buf(4, SteadyClock::Shared());
  buf.MarkFailed("x");
  EXPECT_EQ(buf.Take("x").status().code(), StatusCode::kIoError);
  // Mark consumed: a later insert serves normally.
  ASSERT_TRUE(buf.Insert(Sample{"x", std::vector<std::byte>(8)}).ok());
  EXPECT_TRUE(buf.Take("x").ok());
}

// --- PrefetchObject end-to-end under faults ---------------------------------------

TEST(PrefetchFaultTest, TransientFaultsAreRetriedAway) {
  // Every file's first read fails; the producer's retry budget (3)
  // absorbs it and the epoch completes fully buffered.
  const auto ds = SmallDataset(40);
  FlakyOptions fo;
  fo.read_error_rate = 1.0;
  fo.fail_first_n = 1;
  auto flaky = std::make_shared<FlakyBackend>(InstantBackend(ds), fo);

  PrefetchOptions po;
  po.initial_producers = 2;
  po.buffer_capacity = 8;
  po.retry_backoff = Nanos{0};
  PrefetchObject object(flaky, po, SteadyClock::Shared());
  ASSERT_TRUE(object.Start().ok());

  const auto names = ds.train.Names();
  ASSERT_TRUE(object.BeginEpoch(0, names).ok());
  for (const auto& name : names) {
    std::vector<std::byte> buf(*ds.train.SizeOf(name));
    ASSERT_TRUE(object.Read(name, 0, buf).ok()) << name;
    EXPECT_EQ(buf, storage::SyntheticContent::Generate(name, buf.size()));
  }
  object.Stop();
  const auto stats = object.CollectStats();
  EXPECT_EQ(stats.samples_consumed, names.size());
  EXPECT_EQ(stats.passthrough_reads, 0u);  // retries fixed everything
  EXPECT_GE(flaky->InjectedErrors(), names.size());
  // Each file needed exactly one retry, and a retried-then-successful
  // read is NOT a failure (the old code counted every retry attempt as a
  // producer_read_error).
  EXPECT_EQ(stats.read_retries, names.size());
  EXPECT_EQ(stats.read_failures, 0u);
  EXPECT_EQ(stats.oversize_rejects, 0u);
}

TEST(PrefetchFaultTest, PersistentFaultFailsOverToPassthrough) {
  // Prefetch reads always fail, pass-through reads succeed: model a
  // fault affecting the producer path only (fail_first_n covers the
  // retry budget; the consumer's fallback read then succeeds).
  const auto ds = SmallDataset(10);
  FlakyOptions fo;
  fo.read_error_rate = 1.0;
  fo.fail_first_n = 4;  // initial + 3 retries all fail
  auto flaky = std::make_shared<FlakyBackend>(InstantBackend(ds), fo);

  PrefetchOptions po;
  po.initial_producers = 1;
  po.buffer_capacity = 4;
  po.read_retries = 3;
  po.retry_backoff = Nanos{0};
  PrefetchObject object(flaky, po, SteadyClock::Shared());
  ASSERT_TRUE(object.Start().ok());

  const auto& f = ds.train.At(0);
  ASSERT_TRUE(object.BeginEpoch(0, {f.name}).ok());
  std::vector<std::byte> buf(f.size);
  // Must complete (via pass-through), not hang.
  auto n = object.Read(f.name, 0, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(buf, storage::SyntheticContent::Generate(f.name, f.size));
  const auto stats = object.CollectStats();
  EXPECT_GE(stats.passthrough_reads, 1u);
  // One exhausted retry budget: 3 retry attempts, then a single failure.
  EXPECT_EQ(stats.read_failures, 1u);
  EXPECT_EQ(stats.read_retries, 3u);
  EXPECT_EQ(stats.oversize_rejects, 0u);
  object.Stop();
}

TEST(PrefetchFaultTest, OversizedSampleFailsOverToPassthrough) {
  // Regression for the oversized-file hang: the producer refuses to
  // buffer it, but the consumer must still be served.
  const auto ds = SmallDataset(5);
  auto backend = InstantBackend(ds);
  PrefetchOptions po;
  po.initial_producers = 1;
  po.max_sample_bytes = 16;  // everything is oversized
  PrefetchObject object(backend, po, SteadyClock::Shared());
  ASSERT_TRUE(object.Start().ok());
  const auto& f = ds.train.At(0);
  ASSERT_TRUE(object.BeginEpoch(0, {f.name}).ok());
  std::vector<std::byte> buf(f.size);
  auto n = object.Read(f.name, 0, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, f.size);
  const auto stats = object.CollectStats();
  EXPECT_GE(stats.passthrough_reads, 1u);
  // The read itself succeeded; rejecting its size is not a read error.
  EXPECT_EQ(stats.oversize_rejects, 1u);
  EXPECT_EQ(stats.read_failures, 0u);
  object.Stop();
}

// --- TieringObject under faults ---------------------------------------------------

TEST(TieringFaultTest, PromotionSurvivesFastTierWriteFaults) {
  // Promotion writes fail 40% of the time; the consumer must never see
  // an error (failed promotions just stay on the slow tier) and the
  // path stays promotion-eligible, so retried reads eventually land it.
  const auto ds = SmallDataset(20);
  auto slow = InstantBackend(ds);
  FlakyOptions fo;
  fo.write_error_rate = 0.4;
  auto flaky_fast = std::make_shared<FlakyBackend>(InstantBackend({}), fo);

  TieringObject obj(slow, flaky_fast, TieringOptions{}, SteadyClock::Shared());
  ASSERT_TRUE(obj.Start().ok());
  const auto names = ds.train.Names();
  for (int round = 0; round < 6; ++round) {
    for (const auto& name : names) {
      std::vector<std::byte> buf(*ds.train.SizeOf(name));
      ASSERT_TRUE(obj.Read(name, 0, buf).ok()) << name;
      ASSERT_EQ(buf, storage::SyntheticContent::Generate(name, buf.size()));
    }
    std::this_thread::sleep_for(Millis{10});  // let promotions drain
  }
  obj.Stop();
  EXPECT_GT(flaky_fast->InjectedWriteErrors(), 0u);
  EXPECT_GT(obj.Counters().promotions, 0u);  // some writes got through
  EXPECT_EQ(obj.Counters().fast_read_errors, 0u);
}

TEST(PrefetchFaultTest, NoisyEpochStillCompletesCorrectly) {
  // 15% random transient faults + occasional latency spikes across a
  // multi-producer epoch: every sample must still arrive intact.
  const auto ds = SmallDataset(60);
  FlakyOptions fo;
  fo.read_error_rate = 0.15;
  fo.latency_spike_rate = 0.02;
  fo.spike_duration = Millis{1};
  auto flaky = std::make_shared<FlakyBackend>(InstantBackend(ds), fo);

  PrefetchOptions po;
  po.initial_producers = 4;
  po.buffer_capacity = 16;
  po.retry_backoff = Nanos{0};
  PrefetchObject object(flaky, po, SteadyClock::Shared());
  ASSERT_TRUE(object.Start().ok());

  storage::EpochShuffler shuffler(ds.train.Names(), 7);
  for (std::uint64_t e = 0; e < 2; ++e) {
    const auto order = shuffler.OrderFor(e);
    ASSERT_TRUE(object.BeginEpoch(e, order).ok());
    for (const auto& name : order) {
      std::vector<std::byte> buf(*ds.train.SizeOf(name));
      ASSERT_TRUE(object.Read(name, 0, buf).ok()) << name;
      ASSERT_EQ(buf, storage::SyntheticContent::Generate(name, buf.size()));
    }
  }
  object.Stop();
  EXPECT_GT(flaky->InjectedErrors(), 0u);
}

}  // namespace
}  // namespace prisma::dataplane
