// Token-bucket QoS: clock-injected bucket math (ManualClock) and the
// sleeping RateLimitedBackend decorator.
#include <gtest/gtest.h>

#include <chrono>

#include "controlplane/controller.hpp"
#include "dataplane/prefetch_object.hpp"
#include "storage/rate_limiter.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::storage {
namespace {

TEST(TokenBucketTest, BurstIsFree) {
  auto clock = std::make_shared<ManualClock>();
  TokenBucket bucket(/*rate_bps=*/1000.0, /*burst=*/500, clock);
  EXPECT_EQ(bucket.Reserve(200), Nanos{0});
  EXPECT_EQ(bucket.Reserve(300), Nanos{0});  // exactly drains the burst
}

TEST(TokenBucketTest, DebtComputesWait) {
  auto clock = std::make_shared<ManualClock>();
  TokenBucket bucket(1000.0, 500, clock);
  ASSERT_EQ(bucket.Reserve(500), Nanos{0});
  // 1000 more bytes at 1000 B/s -> 1 second of debt.
  const Nanos wait = bucket.Reserve(1000);
  EXPECT_NEAR(ToSeconds(wait), 1.0, 1e-9);
}

TEST(TokenBucketTest, RefillOverTime) {
  auto clock = std::make_shared<ManualClock>();
  TokenBucket bucket(1000.0, 1000, clock);
  ASSERT_EQ(bucket.Reserve(1000), Nanos{0});
  EXPECT_EQ(bucket.AvailableBytes(), 0u);
  clock->Advance(Millis{500});  // +500 tokens
  EXPECT_NEAR(static_cast<double>(bucket.AvailableBytes()), 500.0, 1.0);
  EXPECT_EQ(bucket.Reserve(400), Nanos{0});
}

TEST(TokenBucketTest, TokensCapAtBurst) {
  auto clock = std::make_shared<ManualClock>();
  TokenBucket bucket(1e6, 1000, clock);
  clock->Advance(Seconds{100});  // massive idle time
  EXPECT_EQ(bucket.AvailableBytes(), 1000u);
}

TEST(TokenBucketTest, QueuedCallersAccumulateDebt) {
  auto clock = std::make_shared<ManualClock>();
  TokenBucket bucket(1000.0, 0, clock);  // burst clamps to 1
  const Nanos w1 = bucket.Reserve(1000);
  const Nanos w2 = bucket.Reserve(1000);
  EXPECT_GT(w2, w1);  // second caller waits behind the first's debt
  EXPECT_NEAR(ToSeconds(w2) - ToSeconds(w1), 1.0, 1e-3);
}

TEST(TokenBucketTest, SetRateTakesEffect) {
  auto clock = std::make_shared<ManualClock>();
  TokenBucket bucket(1000.0, 1, clock);
  (void)bucket.Reserve(1);  // drain
  bucket.SetRate(1e6);
  const Nanos wait = bucket.Reserve(1000);
  EXPECT_LT(ToSeconds(wait), 0.01);  // 1000 B at 1 MB/s ~ 1 ms
}

TEST(TokenBucketTest, SteadyStateRateProperty) {
  // Property: cumulative wait for N requests of b bytes converges to
  // N*b/rate regardless of interleaving.
  auto clock = std::make_shared<ManualClock>();
  TokenBucket bucket(10'000.0, 1000, clock);
  constexpr int kRequests = 50;
  constexpr std::uint64_t kBytes = 2000;
  for (int i = 0; i < kRequests; ++i) {
    // The caller sleeps out its debt; emulate real time passing.
    clock->Advance(bucket.Reserve(kBytes));
  }
  // Total virtual time ~ (bytes - burst) / rate.
  const double expected = (kRequests * kBytes - 1000.0) / 10'000.0;
  EXPECT_NEAR(ToSeconds(clock->Now()), expected, 0.05);
}

TEST(RateLimitedBackendTest, PassesDataThrough) {
  SyntheticBackendOptions o;
  o.profile = DeviceProfile::Instant();
  o.time_scale = 0.0;
  auto inner = std::make_shared<SyntheticBackend>(o);
  std::vector<std::byte> payload(256, std::byte{7});
  ASSERT_TRUE(inner->Write("f", payload).ok());

  RateLimitedBackend limited(inner, /*rate=*/1e9, /*burst=*/1 << 20,
                             SteadyClock::Shared());
  auto data = limited.ReadAll("f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, payload);
  EXPECT_EQ(*limited.FileSize("f"), 256u);
}

TEST(RateLimitedBackendTest, ThrottlesSustainedReads) {
  SyntheticBackendOptions o;
  o.profile = DeviceProfile::Instant();
  o.time_scale = 0.0;
  auto inner = std::make_shared<SyntheticBackend>(o);
  std::vector<std::byte> payload(10 * 1024);
  ASSERT_TRUE(inner->Write("f", payload).ok());

  // 1 MiB/s with a 10 KiB burst: reading 50 KiB must take ~40 ms+.
  RateLimitedBackend limited(inner, 1024.0 * 1024.0, 10 * 1024,
                             SteadyClock::Shared());
  std::vector<std::byte> buf(10 * 1024);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(limited.Read("f", 0, buf).ok());
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GT(secs, 0.030);
  EXPECT_LT(secs, 0.30);
}

TEST(RateLimitedBackendTest, WritesUnthrottled) {
  SyntheticBackendOptions o;
  o.profile = DeviceProfile::Instant();
  o.time_scale = 0.0;
  auto inner = std::make_shared<SyntheticBackend>(o);
  RateLimitedBackend limited(inner, 1.0, 1, SteadyClock::Shared());  // ~0 B/s
  std::vector<std::byte> payload(4096);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(limited.Write("w", payload).ok());
  EXPECT_LT(std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count(),
            0.1);
}

}  // namespace
}  // namespace prisma::storage

// --- QoS through the data plane / control plane -----------------------------

namespace prisma {
namespace {

std::shared_ptr<storage::SyntheticBackend> QosBackend(std::size_t files,
                                                      std::uint64_t size) {
  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::Instant();
  o.time_scale = 0.0;
  auto backend = std::make_shared<storage::SyntheticBackend>(o);
  for (std::size_t i = 0; i < files; ++i) {
    (void)backend->Write("q" + std::to_string(i),
                         std::vector<std::byte>(size));
  }
  return backend;
}

TEST(PrefetchQosTest, RateKnobThrottlesProducers) {
  auto backend = QosBackend(40, 10 * 1024);

  dataplane::PrefetchOptions po;
  po.initial_producers = 4;
  po.max_producers = 4;
  po.buffer_capacity = 64;
  po.read_rate_bps = 1024.0 * 1024.0;  // 1 MiB/s
  po.rate_burst_bytes = 10 * 1024;     // one file of burst
  dataplane::PrefetchObject object(backend, po, SteadyClock::Shared());
  ASSERT_TRUE(object.Start().ok());

  std::vector<std::string> names;
  for (int i = 0; i < 20; ++i) names.push_back("q" + std::to_string(i));
  ASSERT_TRUE(object.BeginEpoch(0, names).ok());

  // 20 x 10 KiB = 200 KiB at 1 MiB/s with 10 KiB burst -> >= ~180 ms.
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& name : names) {
    std::vector<std::byte> buf(10 * 1024);
    ASSERT_TRUE(object.Read(name, 0, buf).ok());
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  object.Stop();
  EXPECT_GT(secs, 0.12);
}

TEST(PrefetchQosTest, LiftingTheLimitRestoresSpeed) {
  auto backend = QosBackend(40, 10 * 1024);
  dataplane::PrefetchOptions po;
  po.initial_producers = 2;
  po.buffer_capacity = 64;
  po.read_rate_bps = 64.0 * 1024.0;  // crawl
  dataplane::PrefetchObject object(backend, po, SteadyClock::Shared());
  ASSERT_TRUE(object.Start().ok());

  dataplane::StageKnobs knobs;
  knobs.read_rate_bps = 0.0;  // lift
  ASSERT_TRUE(object.ApplyKnobs(knobs).ok());

  std::vector<std::string> names;
  for (int i = 0; i < 20; ++i) names.push_back("q" + std::to_string(i));
  ASSERT_TRUE(object.BeginEpoch(0, names).ok());
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& name : names) {
    std::vector<std::byte> buf(10 * 1024);
    ASSERT_TRUE(object.Read(name, 0, buf).ok());
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  object.Stop();
  EXPECT_LT(secs, 0.5);  // would be >3 s at 64 KiB/s
}

TEST(PrefetchQosTest, QosPolicyPinsRateThroughController) {
  auto backend = QosBackend(4, 1024);
  dataplane::PrefetchOptions po;
  po.initial_producers = 1;
  auto object = std::make_shared<dataplane::PrefetchObject>(
      backend, po, SteadyClock::Shared());
  auto stage = std::make_shared<dataplane::Stage>(
      dataplane::StageInfo{"qos-job", "any", 0}, object);
  ASSERT_TRUE(stage->Start().ok());

  controlplane::Controller controller(
      "ctrl", controlplane::ControllerOptions{},
      [] {
        dataplane::StageKnobs fixed;
        fixed.producers = 2;
        return std::make_unique<controlplane::QosPolicy>(
            std::make_unique<controlplane::FixedKnobsPolicy>(fixed),
            /*read_rate_bps=*/5.0e6);
      },
      SteadyClock::Shared());
  ASSERT_TRUE(controller.Attach(stage).ok());
  controller.TickOnce();
  // The knob path is exercised end-to-end; producers knob flowed too.
  EXPECT_EQ(stage->CollectStats().producers, 2u);
  stage->Stop();
}

}  // namespace
}  // namespace prisma
