// Tests for the concurrency guard rails introduced with the annotated
// Mutex: the debug lock-order validator (death tests — only meaningful
// in builds with PRISMA_LOCK_ORDER_CHECKS), the MutexLock/CondVar
// wrappers, and a regression for the PR 2 autotuner-shrink race shape
// (a retiring producer cancelled out of a blocked Insert must land its
// in-flight sample via InsertNow, never drop it). The regression test is
// written to run under ThreadSanitizer, where the original race would
// show up as a report rather than a flake.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "dataplane/sample_buffer.hpp"

namespace prisma {
namespace {

// --- lock-order validator ---------------------------------------------------

class LockOrderDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Mutex::OrderCheckingEnabled()) {
      GTEST_SKIP() << "PRISMA_LOCK_ORDER_CHECKS is off in this build";
    }
    // Death tests fork; "threadsafe" re-executes the binary so the fork
    // does not inherit another test's threads mid-flight.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LockOrderDeathTest, InvertedRankAborts) {
  // kShard (6) is *inside* kController (10); acquiring the controller
  // mutex while holding the shard mutex inverts the documented order.
  EXPECT_DEATH(
      {
        Mutex shard_mu{LockRank::kShard};
        Mutex controller_mu{LockRank::kController};
        MutexLock inner(shard_mu);
        // prisma-lint: allow(lock-rank-static, deliberate inversion exercising the runtime validator)
        MutexLock outer(controller_mu);  // rank 10 after rank 6: boom
      },
      "prisma: lock-order violation");
}

TEST_F(LockOrderDeathTest, SameRankOutOfConstructionOrderAborts) {
  // Same-rank nesting is legal only in construction order (older first).
  EXPECT_DEATH(
      {
        Mutex older{LockRank::kStage};
        Mutex newer{LockRank::kStage};
        MutexLock second(newer);
        MutexLock first(older);  // construction order inverted: boom
      },
      "prisma: lock-order violation");
}

TEST_F(LockOrderDeathTest, ReentrantAcquisitionAborts) {
  EXPECT_DEATH(
      {
        Mutex mu{LockRank::kLeaf};
        MutexLock a(mu);
        mu.lock();  // same thread, same mutex: boom, not deadlock
      },
      "prisma: lock-order violation");
}

TEST_F(LockOrderDeathTest, AssertHeldAbortsWhenNotHeld) {
  EXPECT_DEATH(
      {
        Mutex mu{LockRank::kLeaf};
        mu.AssertHeld();
      },
      "AssertHeld");
}

TEST_F(LockOrderDeathTest, DescendingRanksAreLegal) {
  // The full documented nesting chain, outermost to innermost.
  Mutex controller{LockRank::kController};
  Mutex registry{LockRank::kRegistry};
  Mutex stage{LockRank::kStage};
  Mutex queue{LockRank::kQueue};
  Mutex shard{LockRank::kShard};
  Mutex pool{LockRank::kBufferPool};
  Mutex leaf{LockRank::kLeaf};
  MutexLock l1(controller);
  MutexLock l2(registry);
  MutexLock l3(stage);
  MutexLock l4(queue);
  MutexLock l5(shard);
  MutexLock l6(pool);
  MutexLock l7(leaf);
  leaf.AssertHeld();
}

TEST_F(LockOrderDeathTest, SameRankConstructionOrderIsLegal) {
  Mutex older{LockRank::kStage};
  Mutex newer{LockRank::kStage};
  MutexLock first(older);
  MutexLock second(newer);
}

// --- MutexLock / CondVar ----------------------------------------------------

TEST(MutexWrapperTest, MutexLockRelocks) {
  Mutex mu{LockRank::kLeaf};
  int guarded = 0;
  MutexLock lock(mu);
  guarded = 1;
  lock.Unlock();
  lock.Lock();
  EXPECT_EQ(guarded, 1);
  mu.AssertHeld();
}

TEST(MutexWrapperTest, TryLockReflectsContention) {
  Mutex mu{LockRank::kLeaf};
  ASSERT_TRUE(mu.try_lock());
  std::thread other([&mu] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
}

TEST(MutexWrapperTest, CondVarWaitAndNotify) {
  Mutex mu{LockRank::kLeaf};
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
}

TEST(MutexWrapperTest, WaitUntilReportsTimeout) {
  Mutex mu{LockRank::kLeaf};
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nobody notifies, but a spurious wakeup also reports "no timeout" —
  // re-wait until the deadline genuinely fires.
  while (cv.WaitUntil(mu, deadline)) {
  }
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

// --- autotuner-shrink race regression ---------------------------------------

// Shape of the PR 2 race: the autotuner shrinks the producer pool while
// a producer sits blocked in Insert on a full buffer. The retirement
// path flips the cancel flag and calls WakeBlockedProducers(); the
// producer must observe kCancelled, then land its already-read sample
// with InsertNow (transient over-capacity) so the read work is never
// dropped. Under TSan this also race-checks the wake/flag handshake.
TEST(AutotunerShrinkRaceTest, CancelledProducerLandsSampleViaInsertNow) {
  using dataplane::Sample;
  using dataplane::SampleBuffer;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    SampleBuffer buf(1, SteadyClock::Shared(), 2);
    ASSERT_TRUE(buf.Insert(Sample{"resident", std::vector<std::byte>(8)}).ok());

    std::atomic<bool> retire{false};
    std::atomic<bool> blocked_result_seen{false};
    std::thread producer([&] {
      // Buffer is full, so this blocks until the retire flag flips.
      const Status s = buf.Insert(Sample{"inflight", std::vector<std::byte>(16)},
                                  [&] { return retire.load(); });
      EXPECT_EQ(s.code(), StatusCode::kCancelled) << s.ToString();
      blocked_result_seen.store(true);
      // Retiring producers land in-flight work instead of dropping it.
      EXPECT_TRUE(buf.InsertNow(Sample{"inflight", std::vector<std::byte>(16)})
                      .ok());
    });

    // Let the producer reach the blocked state, then retire it the way
    // Autotuner::Apply does: flag first, wake second.
    while (buf.GetCounters().producer_blocks == 0 && !blocked_result_seen) {
      std::this_thread::yield();
    }
    retire.store(true);
    buf.WakeBlockedProducers();
    producer.join();

    // The in-flight sample is consumable despite the transient
    // over-capacity, and the slot accounting balances back out.
    auto taken = buf.Take("inflight");
    ASSERT_TRUE(taken.ok()) << taken.status().ToString();
    EXPECT_EQ(taken->size(), 16u);
    ASSERT_TRUE(buf.Take("resident").ok());
    EXPECT_EQ(buf.Occupancy(), 0u);
  }
}

}  // namespace
}  // namespace prisma
