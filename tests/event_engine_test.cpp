// EventEngine contract tests, run against BOTH implementations (the
// io_uring cases skip on kernels/builds without support). Satellite of
// ISSUE 10: engine selection plus identical roundtrip / backpressure /
// cancel / drain semantics across engines.
#include "common/event_engine.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.hpp"

namespace prisma {
namespace {

EventEngineOptions::Kind KindFor(const std::string& name) {
  return name == "io_uring" ? EventEngineOptions::Kind::kUring
                            : EventEngineOptions::Kind::kEpoll;
}

/// Runs `fn` on loop 0 and waits for it to finish.
template <typename Fn>
void OnLoop(EventEngine& engine, Fn fn) {
  Mutex mu{LockRank::kLeaf};
  CondVar cv;
  bool done = false;
  engine.LoopAt(0).Post([&] {
    fn(engine.LoopAt(0));
    MutexLock lock(mu);
    done = true;
    cv.NotifyOne();
  });
  MutexLock lock(mu);
  while (!done) cv.Wait(mu);
}

/// Blocks until `pred()` becomes true, re-checking on the loop thread.
template <typename Pred>
void AwaitOnLoop(EventEngine& engine, Pred pred) {
  for (;;) {
    bool ok = false;
    OnLoop(engine, [&](EventLoop&) { ok = pred(); });
    if (ok) return;
  }
}

class EventEngineTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "io_uring" && !EventEngine::UringSupported()) {
      GTEST_SKIP() << "io_uring not supported in this build/kernel";
    }
    EventEngineOptions opts;
    opts.kind = KindFor(GetParam());
    opts.workers = 2;
    engine_ = EventEngine::Create(opts);
    ASSERT_EQ(engine_->name(), GetParam());
    ASSERT_TRUE(engine_->Start().ok());
  }

  void TearDown() override {
    if (engine_) engine_->Stop();
  }

  std::unique_ptr<EventEngine> engine_;
};

TEST_P(EventEngineTest, EngineSelectionAndThreadAccounting) {
  EXPECT_EQ(engine_->worker_count(), 2u);
  EXPECT_GT(engine_->thread_count(), engine_->worker_count());
}

TEST_P(EventEngineTest, PostRunsOnLoopThread) {
  bool on_loop = false;
  OnLoop(*engine_, [&](EventLoop& loop) { on_loop = loop.OnLoopThread(); });
  EXPECT_TRUE(on_loop);
  EXPECT_FALSE(engine_->LoopAt(0).OnLoopThread());
}

TEST_P(EventEngineTest, SocketRoundtrip) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const char kMsg[] = "hello reactor";
  std::vector<std::byte> rx(sizeof(kMsg));
  std::atomic<int> recv_res{-9999};
  std::atomic<int> send_res{-9999};

  struct RecvCtx {
    std::atomic<int>* out;
  } recv_ctx{&recv_res};
  struct SendCtx {
    std::atomic<int>* out;
  } send_ctx{&send_res};

  OnLoop(*engine_, [&](EventLoop& loop) {
    loop.AsyncRecvSome(fds[0], std::span<std::byte>(rx),
                       {[](void* c, int res) {
                          static_cast<RecvCtx*>(c)->out->store(res);
                        },
                        &recv_ctx});
    iovec iov{const_cast<char*>(kMsg), sizeof(kMsg)};
    loop.AsyncSendSome(fds[1], &iov, 1, {[](void* c, int res) {
                                           static_cast<SendCtx*>(c)->out->store(
                                               res);
                                         },
                                         &send_ctx});
  });
  AwaitOnLoop(*engine_, [&] {
    return recv_res.load() != -9999 && send_res.load() != -9999;
  });
  EXPECT_EQ(send_res.load(), static_cast<int>(sizeof(kMsg)));
  EXPECT_EQ(recv_res.load(), static_cast<int>(sizeof(kMsg)));
  EXPECT_EQ(std::memcmp(rx.data(), kMsg, sizeof(kMsg)), 0);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(EventEngineTest, SendBackpressureThenDrain) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Shrink buffers so a large send cannot complete in one shot.
  const int kBuf = 16 * 1024;
  ::setsockopt(fds[1], SOL_SOCKET, SO_SNDBUF, &kBuf, sizeof(kBuf));
  ::setsockopt(fds[0], SOL_SOCKET, SO_RCVBUF, &kBuf, sizeof(kBuf));

  const std::size_t kTotal = 4 * 1024 * 1024;
  std::vector<std::byte> payload(kTotal, std::byte{0x5a});
  struct SendState {
    EventLoop* loop;
    int fd;
    std::byte* data;
    std::size_t remaining;
    std::atomic<bool> done{false};
    std::atomic<int> error{0};
    static void OnSend(void* c, int res) {
      auto* s = static_cast<SendState*>(c);
      if (res < 0) {
        s->error.store(res);
        s->done.store(true);
        return;
      }
      s->data += res;
      s->remaining -= static_cast<std::size_t>(res);
      if (s->remaining == 0) {
        s->done.store(true);
        return;
      }
      iovec iov{s->data, s->remaining};
      s->loop->AsyncSendSome(s->fd, &iov, 1, {&SendState::OnSend, s});
    }
  } send_state;
  send_state.fd = fds[1];
  send_state.data = payload.data();
  send_state.remaining = kTotal;

  // Reader drains on a plain thread so the send side experiences real
  // backpressure (full socket buffer) before progress resumes.
  std::atomic<std::size_t> received{0};
  std::thread reader([&] {
    std::vector<char> buf(64 * 1024);
    while (received.load() < kTotal) {
      const ssize_t r = ::read(fds[0], buf.data(), buf.size());
      if (r <= 0) break;
      received.fetch_add(static_cast<std::size_t>(r));
    }
  });

  OnLoop(*engine_, [&](EventLoop& loop) {
    send_state.loop = &loop;
    iovec iov{send_state.data, send_state.remaining};
    loop.AsyncSendSome(fds[1], &iov, 1, {&SendState::OnSend, &send_state});
  });
  AwaitOnLoop(*engine_, [&] { return send_state.done.load(); });
  reader.join();
  EXPECT_EQ(send_state.error.load(), 0);
  EXPECT_EQ(received.load(), kTotal);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(EventEngineTest, FileReadAtOffset) {
  char path[] = "/tmp/prisma_engine_file_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  const std::string contents = "0123456789abcdef";
  ASSERT_EQ(::pwrite(fd, contents.data(), contents.size(), 0),
            static_cast<ssize_t>(contents.size()));

  std::vector<std::byte> dst(6);
  std::atomic<int> res{-9999};
  OnLoop(*engine_, [&](EventLoop& loop) {
    loop.AsyncReadFile(fd, std::span<std::byte>(dst), 10,
                       {[](void* c, int r) {
                          static_cast<std::atomic<int>*>(c)->store(r);
                        },
                        &res});
  });
  AwaitOnLoop(*engine_, [&] { return res.load() != -9999; });
  EXPECT_EQ(res.load(), 6);
  EXPECT_EQ(std::memcmp(dst.data(), "abcdef", 6), 0);
  ::close(fd);
  ::unlink(path);
}

TEST_P(EventEngineTest, CancelPendingRecvDeliversEcanceled) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<std::byte> rx(16);
  std::atomic<int> res{-9999};
  OpId id = 0;
  OnLoop(*engine_, [&](EventLoop& loop) {
    id = loop.AsyncRecvSome(fds[0], std::span<std::byte>(rx),
                            {[](void* c, int r) {
                               static_cast<std::atomic<int>*>(c)->store(r);
                             },
                             &res});
  });
  OnLoop(*engine_, [&](EventLoop& loop) { loop.Cancel(id); });
  AwaitOnLoop(*engine_, [&] { return res.load() != -9999; });
  EXPECT_EQ(res.load(), -ECANCELED);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(EventEngineTest, StopDrainsPendingOpsWithEcanceled) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<std::byte> rx(16);
  std::atomic<int> res{-9999};
  OnLoop(*engine_, [&](EventLoop& loop) {
    loop.AsyncRecvSome(fds[0], std::span<std::byte>(rx),
                       {[](void* c, int r) {
                          static_cast<std::atomic<int>*>(c)->store(r);
                        },
                        &res});
  });
  engine_->Stop();  // recv never got data: the drain must cancel it
  EXPECT_EQ(res.load(), -ECANCELED);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(EventEngineTest, AcceptCompletesOnConnect) {
  const std::string path =
      "/tmp/prisma_engine_accept_" + std::to_string(::getpid()) + "_" +
      GetParam();
  ::unlink(path.c_str());
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 8), 0);

  std::atomic<int> accepted{-9999};
  OnLoop(*engine_, [&](EventLoop& loop) {
    loop.AsyncAccept(listen_fd, {[](void* c, int r) {
                                   static_cast<std::atomic<int>*>(c)->store(r);
                                 },
                                 &accepted});
  });
  const int client = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(client, 0);
  ASSERT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  AwaitOnLoop(*engine_, [&] { return accepted.load() != -9999; });
  EXPECT_GE(accepted.load(), 0);
  ::close(accepted.load());
  ::close(client);
  ::close(listen_fd);
  ::unlink(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Engines, EventEngineTest,
                         ::testing::Values("epoll", "io_uring"),
                         [](const auto& info) { return info.param; });

TEST(EventEngineSelection, EpollAlwaysAvailable) {
  EventEngineOptions opts;
  opts.kind = EventEngineOptions::Kind::kEpoll;
  opts.workers = 1;
  auto engine = EventEngine::Create(opts);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->name(), "epoll");
}

TEST(EventEngineSelection, AutoMatchesProbe) {
  EventEngineOptions opts;
  opts.workers = 1;
  auto engine = EventEngine::Create(opts);
  ASSERT_NE(engine, nullptr);
  if (EventEngine::UringSupported()) {
    EXPECT_EQ(engine->name(), "io_uring");
  } else {
    EXPECT_EQ(engine->name(), "epoll");
  }
}

TEST(EventEngineSelection, CompiledOutImpliesUnsupported) {
  if (!EventEngine::UringCompiledIn()) {
    EXPECT_FALSE(EventEngine::UringSupported());
  }
}

}  // namespace
}  // namespace prisma
