// TieringObject: async promotion from slow to fast tier, fast-tier hits,
// LRU demotion under a byte budget.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "dataplane/tiering_object.hpp"
#include "storage/flaky_backend.hpp"
#include "storage/persistent_tier_backend.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::dataplane {
namespace {

using storage::DeviceProfile;
using storage::SyntheticBackend;
using storage::SyntheticBackendOptions;

class TieringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticBackendOptions o;
    o.profile = DeviceProfile::Instant();
    o.time_scale = 0.0;
    slow_ = std::make_shared<SyntheticBackend>(o);
    fast_ = std::make_shared<SyntheticBackend>(o);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(slow_
                      ->Write("f" + std::to_string(i),
                              std::vector<std::byte>(1000, std::byte{static_cast<unsigned char>(i)}))
                      .ok());
    }
  }

  std::unique_ptr<TieringObject> MakeObject(TieringOptions options = {}) {
    return std::make_unique<TieringObject>(slow_, fast_, options,
                                           SteadyClock::Shared());
  }

  void WaitForPromotion(TieringObject& obj, const std::string& path) {
    for (int i = 0; i < 200 && !obj.ResidentFast(path); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(obj.ResidentFast(path)) << path;
  }

  std::shared_ptr<SyntheticBackend> slow_;
  std::shared_ptr<SyntheticBackend> fast_;
};

TEST_F(TieringTest, FirstReadFromSlowThenPromoted) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());

  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  EXPECT_EQ(obj->Counters().slow_reads, 1u);

  WaitForPromotion(*obj, "f1");
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  EXPECT_EQ(obj->Counters().fast_hits, 1u);
  EXPECT_EQ(buf[0], std::byte{1});
  obj->Stop();
}

TEST_F(TieringTest, PromotionCopiesContent) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());
  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f3", 0, buf).ok());
  WaitForPromotion(*obj, "f3");
  auto fast_copy = fast_->ReadAll("f3");
  ASSERT_TRUE(fast_copy.ok());
  auto slow_copy = slow_->ReadAll("f3");
  ASSERT_TRUE(slow_copy.ok());
  EXPECT_EQ(*fast_copy, *slow_copy);
  obj->Stop();
}

TEST_F(TieringTest, LruDemotionUnderBudget) {
  TieringOptions options;
  options.fast_tier_capacity = 2500;  // fits two 1000-byte files
  auto obj = MakeObject(options);
  ASSERT_TRUE(obj->Start().ok());

  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f0", 0, buf).ok());
  WaitForPromotion(*obj, "f0");
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  WaitForPromotion(*obj, "f1");
  ASSERT_TRUE(obj->Read("f2", 0, buf).ok());
  WaitForPromotion(*obj, "f2");

  EXPECT_FALSE(obj->ResidentFast("f0"));  // demoted as LRU
  EXPECT_GE(obj->Counters().demotions, 1u);
  EXPECT_LE(obj->Counters().fast_bytes, options.fast_tier_capacity);
  obj->Stop();
}

TEST_F(TieringTest, TouchRefreshesLru) {
  TieringOptions options;
  options.fast_tier_capacity = 2500;
  auto obj = MakeObject(options);
  ASSERT_TRUE(obj->Start().ok());

  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f0", 0, buf).ok());
  WaitForPromotion(*obj, "f0");
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  WaitForPromotion(*obj, "f1");
  ASSERT_TRUE(obj->Read("f0", 0, buf).ok());  // touch f0 (fast hit)
  ASSERT_TRUE(obj->Read("f2", 0, buf).ok());
  WaitForPromotion(*obj, "f2");

  EXPECT_TRUE(obj->ResidentFast("f0"));   // refreshed
  EXPECT_FALSE(obj->ResidentFast("f1"));  // victim
  obj->Stop();
}

TEST_F(TieringTest, OversizedFilesNeverPromoted) {
  TieringOptions options;
  options.max_promote_bytes = 10;
  auto obj = MakeObject(options);
  ASSERT_TRUE(obj->Start().ok());
  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f5", 0, buf).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(obj->ResidentFast("f5"));
  EXPECT_EQ(obj->Counters().promotions, 0u);
  obj->Stop();
}

TEST_F(TieringTest, FileSizePrefersResidentCopy) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());
  auto size = obj->FileSize("f7");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1000u);
  obj->Stop();
}

TEST_F(TieringTest, MissingFileErrors) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());
  std::vector<std::byte> buf(10);
  EXPECT_FALSE(obj->Read("ghost", 0, buf).ok());
  obj->Stop();
}

TEST_F(TieringTest, DegradedReadFallsBackAndEvicts) {
  // Regression: a failing fast-tier read used to be returned to the
  // consumer verbatim even though the slow tier still had the bytes.
  storage::FlakyOptions fo;
  fo.read_error_rate = 1.0;
  fo.fail_first_n = 1;  // first fast read of each path fails, then heals
  auto flaky_fast = std::make_shared<storage::FlakyBackend>(fast_, fo);
  auto obj = std::make_unique<TieringObject>(slow_, flaky_fast,
                                             TieringOptions{},
                                             SteadyClock::Shared());
  ASSERT_TRUE(obj->Start().ok());

  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  WaitForPromotion(*obj, "f1");

  // The fast hit fails underneath; the consumer must still get f1's
  // bytes (from the slow tier) and the poisoned entry must be evicted.
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  EXPECT_EQ(buf[0], std::byte{1});
  EXPECT_EQ(obj->Counters().fast_read_errors, 1u);
  EXPECT_EQ(obj->Counters().slow_reads, 2u);
  EXPECT_GE(flaky_fast->InjectedErrors(), 1u);

  // The degraded read made f1 promotion-eligible again, and the fast
  // tier has healed (fail_first_n), so the next hit is served fast.
  WaitForPromotion(*obj, "f1");
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  EXPECT_EQ(buf[0], std::byte{1});
  EXPECT_GE(obj->Counters().fast_hits, 2u);  // the failed hit + this one
  EXPECT_EQ(obj->Counters().fast_read_errors, 1u);
  obj->Stop();
}

TEST_F(TieringTest, StopClearsPendingPromotions) {
  // Regression: Stop() used to close the queue with undispatched
  // promotions still inside and leave them marked pending, so those
  // paths were never promotion-eligible again after a Stop/Start cycle.
  storage::FlakyOptions fo;
  fo.latency_spike_rate = 1.0;  // every slow-tier read stalls
  fo.spike_duration = Millis{200};
  auto slow = std::make_shared<storage::FlakyBackend>(slow_, fo);
  auto obj = std::make_unique<TieringObject>(slow, fast_, TieringOptions{},
                                             SteadyClock::Shared());
  ASSERT_TRUE(obj->Start().ok());

  // Two concurrent reads queue f0 and f1 back to back; the single
  // migration worker picks one up and stalls ~200ms inside its
  // slow-tier promotion read, guaranteeing the other is still queued
  // when Stop() lands 20ms later.
  std::vector<std::byte> b0(1000), b1(1000);
  std::thread r0([&] { ASSERT_TRUE(obj->Read("f0", 0, b0).ok()); });
  std::thread r1([&] { ASSERT_TRUE(obj->Read("f1", 0, b1).ok()); });
  r0.join();
  r1.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  obj->Stop();

  // After restart the stranded path must be promotable again.
  ASSERT_TRUE(obj->Start().ok());
  ASSERT_TRUE(obj->Read("f0", 0, b0).ok());
  ASSERT_TRUE(obj->Read("f1", 0, b1).ok());
  WaitForPromotion(*obj, "f0");
  WaitForPromotion(*obj, "f1");
  obj->Stop();
}

TEST_F(TieringTest, DurableDemotionUnlinksBackingEntry) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "prisma_tiering_durable_demote";
  fs::remove_all(root);
  auto tier = std::make_shared<storage::PersistentTierBackend>(
      root, storage::PersistentTierOptions{});

  TieringOptions options;
  options.fast_tier_capacity = 2500;  // fits two 1000-byte files
  auto obj = std::make_unique<TieringObject>(slow_, tier, options,
                                             SteadyClock::Shared());
  ASSERT_TRUE(obj->Start().ok());

  std::vector<std::byte> buf(1000);
  for (const char* name : {"f0", "f1", "f2"}) {
    ASSERT_TRUE(obj->Read(name, 0, buf).ok());
    WaitForPromotion(*obj, name);
  }
  EXPECT_FALSE(obj->ResidentFast("f0"));  // demoted as LRU
  // The demotion reclaimed the backing entry, not just the index slot.
  EXPECT_EQ(tier->FileSize("f0").status().code(), StatusCode::kNotFound);
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& de :
       fs::directory_iterator(root / "objects")) {
    ++entries;
  }
  EXPECT_EQ(entries, 2u);
  obj->Stop();
  obj.reset();
  tier.reset();
  fs::remove_all(root);
}

TEST_F(TieringTest, WarmRestartRebuildsResidency) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "prisma_tiering_warm_restart";
  fs::remove_all(root);

  TieringOptions options;
  options.durable = true;
  {
    auto tier = std::make_shared<storage::PersistentTierBackend>(
        root, storage::PersistentTierOptions{});
    auto obj = std::make_unique<TieringObject>(slow_, tier, options,
                                               SteadyClock::Shared());
    ASSERT_TRUE(obj->Start().ok());
    std::vector<std::byte> buf(1000);
    ASSERT_TRUE(obj->Read("f0", 0, buf).ok());
    WaitForPromotion(*obj, "f0");
    ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
    WaitForPromotion(*obj, "f1");
    obj->Stop();
  }

  // A fresh backend + object over the same directory reopens warm: the
  // residency index is rebuilt from the recovered entries, so the first
  // reads are fast hits with zero slow-tier traffic.
  auto tier = std::make_shared<storage::PersistentTierBackend>(
      root, storage::PersistentTierOptions{});
  auto obj = std::make_unique<TieringObject>(slow_, tier, options,
                                             SteadyClock::Shared());
  ASSERT_TRUE(obj->Start().ok());
  EXPECT_EQ(obj->Counters().recovered_entries, 2u);
  EXPECT_TRUE(obj->ResidentFast("f0"));
  EXPECT_TRUE(obj->ResidentFast("f1"));

  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f0", 0, buf).ok());
  EXPECT_EQ(buf[0], std::byte{0});
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  EXPECT_EQ(buf[0], std::byte{1});
  EXPECT_EQ(obj->Counters().fast_hits, 2u);
  EXPECT_EQ(obj->Counters().slow_reads, 0u);
  obj->Stop();
  obj.reset();
  tier.reset();
  fs::remove_all(root);
}

TEST_F(TieringTest, DurableStartRequiresRecoverableFastTier) {
  TieringOptions options;
  options.durable = true;
  auto obj = MakeObject(options);  // synthetic fast tier: not recoverable
  const Status s = obj->Start();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // The failed Start left the object stopped; a plain restart works.
  options.durable = false;
  auto plain = MakeObject(options);
  ASSERT_TRUE(plain->Start().ok());
  plain->Stop();
}

TEST_F(TieringTest, StatsSnapshotShape) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());
  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  WaitForPromotion(*obj, "f1");
  const auto s = obj->CollectStats();
  EXPECT_EQ(s.buffer_occupancy, 1u);   // one resident file
  EXPECT_EQ(s.buffer_bytes, 1000u);
  EXPECT_EQ(s.passthrough_reads, 1u);  // the slow read
  obj->Stop();
}

}  // namespace
}  // namespace prisma::dataplane
