// TieringObject: async promotion from slow to fast tier, fast-tier hits,
// LRU demotion under a byte budget.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "dataplane/tiering_object.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::dataplane {
namespace {

using storage::DeviceProfile;
using storage::SyntheticBackend;
using storage::SyntheticBackendOptions;

class TieringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticBackendOptions o;
    o.profile = DeviceProfile::Instant();
    o.time_scale = 0.0;
    slow_ = std::make_shared<SyntheticBackend>(o);
    fast_ = std::make_shared<SyntheticBackend>(o);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(slow_
                      ->Write("f" + std::to_string(i),
                              std::vector<std::byte>(1000, std::byte{static_cast<unsigned char>(i)}))
                      .ok());
    }
  }

  std::unique_ptr<TieringObject> MakeObject(TieringOptions options = {}) {
    return std::make_unique<TieringObject>(slow_, fast_, options,
                                           SteadyClock::Shared());
  }

  void WaitForPromotion(TieringObject& obj, const std::string& path) {
    for (int i = 0; i < 200 && !obj.ResidentFast(path); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(obj.ResidentFast(path)) << path;
  }

  std::shared_ptr<SyntheticBackend> slow_;
  std::shared_ptr<SyntheticBackend> fast_;
};

TEST_F(TieringTest, FirstReadFromSlowThenPromoted) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());

  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  EXPECT_EQ(obj->Counters().slow_reads, 1u);

  WaitForPromotion(*obj, "f1");
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  EXPECT_EQ(obj->Counters().fast_hits, 1u);
  EXPECT_EQ(buf[0], std::byte{1});
  obj->Stop();
}

TEST_F(TieringTest, PromotionCopiesContent) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());
  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f3", 0, buf).ok());
  WaitForPromotion(*obj, "f3");
  auto fast_copy = fast_->ReadAll("f3");
  ASSERT_TRUE(fast_copy.ok());
  auto slow_copy = slow_->ReadAll("f3");
  ASSERT_TRUE(slow_copy.ok());
  EXPECT_EQ(*fast_copy, *slow_copy);
  obj->Stop();
}

TEST_F(TieringTest, LruDemotionUnderBudget) {
  TieringOptions options;
  options.fast_tier_capacity = 2500;  // fits two 1000-byte files
  auto obj = MakeObject(options);
  ASSERT_TRUE(obj->Start().ok());

  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f0", 0, buf).ok());
  WaitForPromotion(*obj, "f0");
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  WaitForPromotion(*obj, "f1");
  ASSERT_TRUE(obj->Read("f2", 0, buf).ok());
  WaitForPromotion(*obj, "f2");

  EXPECT_FALSE(obj->ResidentFast("f0"));  // demoted as LRU
  EXPECT_GE(obj->Counters().demotions, 1u);
  EXPECT_LE(obj->Counters().fast_bytes, options.fast_tier_capacity);
  obj->Stop();
}

TEST_F(TieringTest, TouchRefreshesLru) {
  TieringOptions options;
  options.fast_tier_capacity = 2500;
  auto obj = MakeObject(options);
  ASSERT_TRUE(obj->Start().ok());

  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f0", 0, buf).ok());
  WaitForPromotion(*obj, "f0");
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  WaitForPromotion(*obj, "f1");
  ASSERT_TRUE(obj->Read("f0", 0, buf).ok());  // touch f0 (fast hit)
  ASSERT_TRUE(obj->Read("f2", 0, buf).ok());
  WaitForPromotion(*obj, "f2");

  EXPECT_TRUE(obj->ResidentFast("f0"));   // refreshed
  EXPECT_FALSE(obj->ResidentFast("f1"));  // victim
  obj->Stop();
}

TEST_F(TieringTest, OversizedFilesNeverPromoted) {
  TieringOptions options;
  options.max_promote_bytes = 10;
  auto obj = MakeObject(options);
  ASSERT_TRUE(obj->Start().ok());
  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f5", 0, buf).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(obj->ResidentFast("f5"));
  EXPECT_EQ(obj->Counters().promotions, 0u);
  obj->Stop();
}

TEST_F(TieringTest, FileSizePrefersResidentCopy) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());
  auto size = obj->FileSize("f7");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1000u);
  obj->Stop();
}

TEST_F(TieringTest, MissingFileErrors) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());
  std::vector<std::byte> buf(10);
  EXPECT_FALSE(obj->Read("ghost", 0, buf).ok());
  obj->Stop();
}

TEST_F(TieringTest, StatsSnapshotShape) {
  auto obj = MakeObject();
  ASSERT_TRUE(obj->Start().ok());
  std::vector<std::byte> buf(1000);
  ASSERT_TRUE(obj->Read("f1", 0, buf).ok());
  WaitForPromotion(*obj, "f1");
  const auto s = obj->CollectStats();
  EXPECT_EQ(s.buffer_occupancy, 1u);   // one resident file
  EXPECT_EQ(s.buffer_bytes, 1000u);
  EXPECT_EQ(s.passthrough_reads, 1u);  // the slow read
  obj->Stop();
}

}  // namespace
}  // namespace prisma::dataplane
