// Concurrency stress for the sharded SampleBuffer: producer/consumer
// pairs hammer Insert/Take/MarkFailed while a chaos thread oscillates
// the capacity, attempts live reshards, and cycles Close/Reopen once.
// Designed to run under ThreadSanitizer (-DPRISMA_SANITIZE=thread) so
// the shard/slot-token synchronization is race-checked, not just
// semantics-checked; the final invariants (drained buffer, inserts ==
// takes) hold either way.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "dataplane/sample_buffer.hpp"

namespace prisma::dataplane {
namespace {

constexpr int kPairs = 4;
constexpr int kFilesPerPair = 200;
constexpr int kFailEvery = 17;  // every 17th name fails instead of arriving

std::string NameOf(int pair, int i) {
  return std::to_string(pair) + "/" + std::to_string(i);
}

bool IsDoomed(int i) { return i % kFailEvery == kFailEvery - 1; }

TEST(BufferStressTest, PairsSurviveCapacityShardAndCloseChaos) {
  SampleBuffer buf(8, SteadyClock::Shared(), 4);
  std::atomic<bool> chaos_stop{false};

  std::thread chaos([&] {
    int tick = 0;
    bool cycled = false;
    while (!chaos_stop.load(std::memory_order_relaxed)) {
      buf.SetCapacity(1 + static_cast<std::size_t>(tick % 32));
      const Status reshard =
          buf.SetShardCount(1 + static_cast<std::size_t>(tick % 8));
      // Busy moments legitimately refuse; anything else is a bug.
      ASSERT_TRUE(reshard.ok() ||
                  reshard.code() == StatusCode::kFailedPrecondition)
          << reshard.ToString();
      if (tick == 25 && !cycled) {
        cycled = true;
        buf.Close();
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        buf.Reopen();
      }
      ++tick;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    buf.SetCapacity(32);  // park generously for the drain
  });

  std::vector<std::thread> workers;
  for (int p = 0; p < kPairs; ++p) {
    workers.emplace_back([&buf, p] {  // producer of pair p
      for (int i = 0; i < kFilesPerPair; ++i) {
        const std::string name = NameOf(p, i);
        if (IsDoomed(i)) {
          buf.MarkFailed(name);
          continue;
        }
        for (;;) {
          const Status s = buf.Insert(
              Sample{name, std::vector<std::byte>(8 + i % 64)});
          if (s.ok()) break;
          // Only the Close window may reject; retry after Reopen.
          ASSERT_EQ(s.code(), StatusCode::kAborted) << s.ToString();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
    workers.emplace_back([&buf, p] {  // consumer of pair p, in order
      for (int i = 0; i < kFilesPerPair; ++i) {
        const std::string name = NameOf(p, i);
        for (;;) {
          auto r = buf.Take(name);
          if (r.ok()) {
            ASSERT_FALSE(IsDoomed(i)) << name;
            EXPECT_EQ(r->size(), 8u + i % 64);
            break;
          }
          if (r.status().code() == StatusCode::kIoError) {
            ASSERT_TRUE(IsDoomed(i)) << name;
            break;
          }
          ASSERT_EQ(r.status().code(), StatusCode::kAborted)
              << r.status().ToString();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }

  for (auto& t : workers) t.join();
  chaos_stop = true;
  chaos.join();

  // Every delivered sample was consumed exactly once and the buffer
  // drained; the global slot accounting balanced out (a leaked token
  // would have wedged the low-capacity phases long before this point).
  EXPECT_EQ(buf.Occupancy(), 0u);
  EXPECT_EQ(buf.OccupancyBytes(), 0u);
  const auto c = buf.GetCounters();
  EXPECT_EQ(c.inserts, c.takes);
  constexpr std::uint64_t kDelivered = static_cast<std::uint64_t>(
      kPairs * (kFilesPerPair - kFilesPerPair / kFailEvery));
  EXPECT_EQ(c.takes, kDelivered);
}

TEST(BufferStressTest, ManyConsumersOneName) {
  // All consumers block on the same name across shards' handoff path;
  // each insert satisfies exactly one of them.
  SampleBuffer buf(2, SteadyClock::Shared(), 8);
  constexpr int kConsumers = 8;
  std::atomic<int> served{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      if (buf.Take("hot").ok()) served.fetch_add(1);
    });
  }
  // Fill the buffer with bystanders so every "hot" insert needs the
  // direct handoff, then feed the consumers one sample each.
  ASSERT_TRUE(buf.Insert(Sample{"cold1", std::vector<std::byte>(4)}).ok());
  ASSERT_TRUE(buf.Insert(Sample{"cold2", std::vector<std::byte>(4)}).ok());
  for (int i = 0; i < kConsumers; ++i) {
    ASSERT_TRUE(buf.Insert(Sample{"hot", std::vector<std::byte>(4)}).ok());
    // Wait for the hand-off to land before feeding the next consumer, so
    // no insert overwrites a not-yet-consumed "hot".
    while (served.load() <= i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (auto& t : consumers) t.join();
  EXPECT_EQ(served.load(), kConsumers);
  EXPECT_EQ(buf.GetCounters().takes, static_cast<std::uint64_t>(kConsumers));
  ASSERT_TRUE(buf.Take("cold1").ok());
  ASSERT_TRUE(buf.Take("cold2").ok());
  EXPECT_EQ(buf.Occupancy(), 0u);
}

}  // namespace
}  // namespace prisma::dataplane
