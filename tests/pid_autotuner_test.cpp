// PID occupancy controller: feedback direction, anti-windup clamping,
// policy wrapper, and the contrast with the probing tuner inside the
// DES pipeline (the §V.A "other control algorithms" caveat).
#include <gtest/gtest.h>

#include "baselines/experiment.hpp"
#include "controlplane/pid_autotuner.hpp"
#include "controlplane/policy.hpp"

namespace prisma::controlplane {
namespace {

using dataplane::StageStatsSnapshot;

PidAutotunerOptions FastOptions() {
  PidAutotunerOptions o;
  o.period_min_inserts = 50;
  o.period_max_ticks = 2;
  o.max_producers = 16;
  return o;
}

/// Drives the PID with a synthetic stage whose occupancy we script.
class ScriptedStage {
 public:
  explicit ScriptedStage(PidAutotunerOptions options) : tuner_(options) {
    capacity_ = 16;
  }

  void Tick(double occupancy_ratio) {
    stats_.at += Millis{100};
    stats_.samples_produced += 100;
    stats_.samples_consumed += 100;
    stats_.buffer_capacity = capacity_;
    stats_.buffer_occupancy =
        static_cast<std::size_t>(occupancy_ratio * capacity_);
    const auto knobs = tuner_.Tick(stats_);
    if (knobs.producers) producers_ = *knobs.producers;
    if (knobs.buffer_capacity) capacity_ = *knobs.buffer_capacity;
  }

  void RunTicks(int n, double occupancy) {
    for (int i = 0; i < n; ++i) Tick(occupancy);
  }

  std::uint32_t producers() const { return producers_; }
  PidAutotuner& tuner() { return tuner_; }

 private:
  PidAutotuner tuner_;
  StageStatsSnapshot stats_;
  std::uint32_t producers_ = 1;
  std::size_t capacity_;
};

TEST(PidAutotunerTest, FirstTickPublishesInitialKnobs) {
  PidAutotuner tuner(FastOptions());
  StageStatsSnapshot s;
  const auto knobs = tuner.Tick(s);
  EXPECT_TRUE(knobs.producers.has_value());
  EXPECT_TRUE(knobs.buffer_capacity.has_value());
}

TEST(PidAutotunerTest, EmptyBufferScalesUp) {
  ScriptedStage stage(FastOptions());
  stage.RunTicks(100, /*occupancy=*/0.0);  // forever below setpoint
  EXPECT_GT(stage.producers(), 4u);
}

TEST(PidAutotunerTest, FullBufferScalesDown) {
  ScriptedStage stage(FastOptions());
  stage.RunTicks(60, 0.0);  // wind up first
  const auto peak = stage.producers();
  stage.RunTicks(200, 1.0);  // buffer saturated: decay
  EXPECT_LT(stage.producers(), peak);
  EXPECT_LE(stage.producers(), 2u);
}

TEST(PidAutotunerTest, HoldsAtSetpoint) {
  ScriptedStage stage(FastOptions());
  stage.RunTicks(40, 0.2);
  const auto before = stage.producers();
  stage.RunTicks(40, 0.5);  // exactly at setpoint: no drive
  // Velocity form: zero error -> zero integral contribution; at most the
  // one-period derivative kick.
  EXPECT_NEAR(static_cast<double>(stage.producers()),
              static_cast<double>(before), 3.0);
}

TEST(PidAutotunerTest, ClampsToBounds) {
  PidAutotunerOptions o = FastOptions();
  o.max_producers = 6;
  ScriptedStage stage(o);
  stage.RunTicks(300, 0.0);
  EXPECT_LE(stage.producers(), 6u);
  stage.RunTicks(300, 1.0);
  EXPECT_GE(stage.producers(), o.min_producers);
}

TEST(PidAutotunerTest, IdleTicksIgnored) {
  PidAutotuner tuner(FastOptions());
  StageStatsSnapshot s;
  (void)tuner.Tick(s);
  for (int i = 0; i < 20; ++i) {
    const auto knobs = tuner.Tick(s);  // no progress
    EXPECT_FALSE(knobs.producers.has_value());
  }
}

TEST(PidAutotunerTest, ResetRestoresInitialState) {
  ScriptedStage stage(FastOptions());
  stage.RunTicks(100, 0.0);
  ASSERT_GT(stage.tuner().CurrentProducers(), 1u);
  stage.tuner().Reset();
  EXPECT_EQ(stage.tuner().CurrentProducers(), 1u);
}

TEST(PidAutotunePolicyTest, WrapsTuner) {
  PidAutotunePolicy policy(FastOptions());
  EXPECT_EQ(policy.Name(), "pid-occupancy");
  StageStatsSnapshot s;
  const auto knobs = policy.Tick(s);
  EXPECT_TRUE(knobs.producers.has_value());
}

// --- the §V.A contrast inside the DES pipeline -------------------------------------

TEST(ControlAlgorithmContrastTest, PidOverProvisionsWherePrismaHolds) {
  baselines::ExperimentConfig cfg;
  cfg.global_batch = 256;
  cfg.epochs = 3;
  cfg.scale = 400;
  cfg.seed = 5;
  // Give the PID enough decision periods at this reduced scale to reach
  // its steady state (its wind-up rate is per period, not per sample).
  cfg.pid_tuner.period_min_inserts = 200;

  const auto prisma = baselines::RunPrismaTf(cfg);
  cfg.control_algorithm =
      baselines::ExperimentConfig::ControlAlgorithm::kPidOccupancy;
  const auto pid = baselines::RunPrismaTf(cfg);

  // Both finish the workload...
  EXPECT_EQ(prisma.samples_trained, pid.samples_trained);
  // ...at broadly similar speed...
  EXPECT_NEAR(pid.elapsed_s, prisma.elapsed_s, prisma.elapsed_s * 0.35);
  // ...but the PID cannot detect the device plateau from occupancy and
  // allocates far more threads than the probing tuner.
  EXPECT_GE(pid.max_producers_seen, prisma.max_producers_seen * 2);
}

}  // namespace
}  // namespace prisma::controlplane
