// Framework adapters: the TF RandomAccessFile shape (vanilla vs PRISMA
// read paths) and the per-worker Torch client over a live UDS server.
#include <gtest/gtest.h>

#include <unistd.h>

#include "dataplane/prefetch_object.hpp"
#include "frameworks/tf_adapter.hpp"
#include "frameworks/torch_adapter.hpp"
#include "ipc/uds_server.hpp"
#include "storage/shuffler.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::frameworks {
namespace {

class FrameworksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::SyntheticImageNetSpec spec;
    spec.num_train = 25;
    spec.num_validation = 5;
    spec.mean_file_size = 8 * 1024;
    spec.min_file_size = 1024;
    ds_ = storage::MakeSyntheticImageNet(spec);

    storage::SyntheticBackendOptions o;
    o.profile = storage::DeviceProfile::Instant();
    o.time_scale = 0.0;
    backend_ = std::make_shared<storage::SyntheticBackend>(o, ds_);

    dataplane::PrefetchOptions po;
    po.initial_producers = 2;
    po.buffer_capacity = 8;
    object_ = std::make_shared<dataplane::PrefetchObject>(
        backend_, po, SteadyClock::Shared());
    stage_ = std::make_shared<dataplane::Stage>(
        dataplane::StageInfo{"fw-job", "tensorflow", 0}, object_);
    ASSERT_TRUE(stage_->Start().ok());
  }

  void TearDown() override { stage_->Stop(); }

  storage::ImageNetDataset ds_;
  std::shared_ptr<storage::SyntheticBackend> backend_;
  std::shared_ptr<dataplane::PrefetchObject> object_;
  std::shared_ptr<dataplane::Stage> stage_;
};

TEST_F(FrameworksTest, VanillaFileReadsFromBackend) {
  TfPosixFileSystem fs(backend_);
  EXPECT_FALSE(fs.prisma_enabled());
  const auto& f = ds_.train.At(0);
  auto file = fs.NewRandomAccessFile(f.name);
  ASSERT_TRUE(file.ok());
  std::vector<std::byte> buf(f.size);
  auto n = (*file)->Read(0, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, f.size);
  EXPECT_EQ(buf, storage::SyntheticContent::Generate(f.name, f.size));
}

TEST_F(FrameworksTest, PrismaFileReadsFromStage) {
  TfPosixFileSystem fs(backend_, stage_);
  EXPECT_TRUE(fs.prisma_enabled());
  const auto& f = ds_.train.At(1);
  ASSERT_TRUE(stage_->BeginEpoch(0, {f.name}).ok());

  auto file = fs.NewRandomAccessFile(f.name);
  ASSERT_TRUE(file.ok());
  std::vector<std::byte> buf(f.size);
  auto n = (*file)->Read(0, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(buf, storage::SyntheticContent::Generate(f.name, f.size));
  // The read was served by PRISMA's buffer, not a pass-through.
  EXPECT_EQ(stage_->CollectStats().samples_consumed, 1u);
  EXPECT_EQ(stage_->CollectStats().passthrough_reads, 0u);
}

TEST_F(FrameworksTest, ShortReadReportsOutOfRange) {
  // Mirrors tensorflow::RandomAccessFile semantics at EOF.
  TfPosixFileSystem fs(backend_);
  const auto& f = ds_.train.At(2);
  auto file = fs.NewRandomAccessFile(f.name);
  ASSERT_TRUE(file.ok());
  std::vector<std::byte> buf(f.size + 100);
  auto n = (*file)->Read(0, buf);
  EXPECT_EQ(n.status().code(), StatusCode::kOutOfRange);
}

TEST_F(FrameworksTest, GetFileSizeBothModes) {
  TfPosixFileSystem vanilla(backend_);
  TfPosixFileSystem prisma(backend_, stage_);
  const auto& f = ds_.train.At(3);
  EXPECT_EQ(*vanilla.GetFileSize(f.name), f.size);
  EXPECT_EQ(*prisma.GetFileSize(f.name), f.size);
  EXPECT_FALSE(vanilla.GetFileSize("ghost").ok());
}

TEST_F(FrameworksTest, FullEpochThroughTfAdapter) {
  // The integration the paper made in 10 LoC: same consumer code, reads
  // now served from PRISMA's buffer in the framework's shuffle order.
  TfPosixFileSystem fs(backend_, stage_);
  storage::EpochShuffler shuffler(ds_.train.Names(), 13);
  const auto order = shuffler.OrderFor(0);
  ASSERT_TRUE(stage_->BeginEpoch(0, order).ok());

  for (const auto& name : order) {
    auto file = fs.NewRandomAccessFile(name);
    ASSERT_TRUE(file.ok());
    const auto size = *fs.GetFileSize(name);
    std::vector<std::byte> buf(size);
    ASSERT_TRUE((*file)->Read(0, buf).ok()) << name;
  }
  EXPECT_EQ(stage_->CollectStats().samples_consumed, order.size());
}

TEST_F(FrameworksTest, TorchWorkerClientOverUds) {
  const std::string socket_path = ::testing::TempDir() + "/prisma_torch_" +
                                  std::to_string(::getpid()) + ".sock";
  ipc::UdsServer server(socket_path, stage_);
  ASSERT_TRUE(server.Start().ok());

  storage::EpochShuffler shuffler(ds_.train.Names(), 4);
  const auto order = shuffler.OrderFor(0);

  TorchWorkerClient main_proc;
  ASSERT_TRUE(main_proc.Connect(socket_path).ok());
  ASSERT_TRUE(main_proc.AnnounceEpoch(0, order).ok());

  TorchWorkerClient worker;
  ASSERT_TRUE(worker.Connect(socket_path).ok());
  EXPECT_TRUE(worker.Connected());
  for (const auto& name : order) {
    auto item = worker.GetItem(name);
    ASSERT_TRUE(item.ok()) << name;
    EXPECT_EQ(*item, storage::SyntheticContent::Generate(
                         name, *ds_.train.SizeOf(name)));
  }
  server.Stop();
}

TEST_F(FrameworksTest, TorchClientFailsWithoutServer) {
  TorchWorkerClient client;
  EXPECT_FALSE(client.Connected());
  EXPECT_FALSE(client.GetItem("x").ok());
}

}  // namespace
}  // namespace prisma::frameworks
