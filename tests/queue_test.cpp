// Concurrency-primitive tests: BoundedQueue (blocking semantics, close,
// live capacity changes), SpscRing, and ThreadPool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/spsc_ring.hpp"
#include "common/thread_pool.hpp"

namespace prisma {
namespace {

// --- BoundedQueue ---------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.Push(i).ok());
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1).ok());
  EXPECT_TRUE(q.TryPush(2).ok());
  EXPECT_EQ(q.TryPush(3).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, UnboundedNeverFull) {
  BoundedQueue<int> q(0);
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(q.TryPush(i).ok());
  EXPECT_EQ(q.size(), 10000u);
}

TEST(BoundedQueueTest, PushBlocksUntilPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1).ok());
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    ASSERT_TRUE(q.Push(2).ok());
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q;
  std::atomic<int> got{-1};
  std::thread t([&] { got = q.Pop().value_or(-2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), -1);
  ASSERT_TRUE(q.Push(7).ok());
  t.join();
  EXPECT_EQ(got.load(), 7);
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
  BoundedQueue<int> q;
  ASSERT_TRUE(q.Push(1).ok());
  ASSERT_TRUE(q.Push(2).ok());
  q.Close();
  EXPECT_EQ(q.Push(3).code(), StatusCode::kAborted);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedPoppers) {
  BoundedQueue<int> q;
  std::thread t([&] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  t.join();
}

TEST(BoundedQueueTest, CloseWakesBlockedPushers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1).ok());
  std::thread t([&] { EXPECT_EQ(q.Push(2).code(), StatusCode::kAborted); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  t.join();
}

TEST(BoundedQueueTest, ReopenAfterClose) {
  BoundedQueue<int> q;
  q.Close();
  q.Reopen();
  EXPECT_TRUE(q.Push(4).ok());
  EXPECT_EQ(*q.Pop(), 4);
}

TEST(BoundedQueueTest, PopForTimesOut) {
  BoundedQueue<int> q;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(30)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
}

TEST(BoundedQueueTest, PopForReturnsItem) {
  BoundedQueue<int> q;
  ASSERT_TRUE(q.Push(5).ok());
  EXPECT_EQ(q.PopFor(std::chrono::milliseconds(50)).value_or(-1), 5);
}

TEST(BoundedQueueTest, GrowingCapacityUnblocksPushers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1).ok());
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    ASSERT_TRUE(q.Push(2).ok());
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  q.SetCapacity(4);
  t.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BoundedQueueTest, ShrinkingCapacityKeepsItems) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.Push(i).ok());
  q.SetCapacity(1);
  EXPECT_EQ(q.size(), 4u);  // never discards
  for (int i = 0; i < 4; ++i) EXPECT_EQ(*q.Pop(), i);
}

TEST(BoundedQueueTest, MpmcStressPreservesAllItems) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 2000;
  BoundedQueue<int> q(64);
  std::atomic<long> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i).ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long>(total) * (total - 1) / 2);
}

// --- SpscRing ----------------------------------------------------------------------

TEST(SpscRingTest, CapacityRoundsUp) {
  SpscRing<int> r(5);
  EXPECT_GE(r.Capacity(), 5u);
}

TEST(SpscRingTest, FifoOrderAndFull) {
  SpscRing<int> r(4);
  const std::size_t cap = r.Capacity();
  for (std::size_t i = 0; i < cap; ++i) ASSERT_TRUE(r.TryPush(static_cast<int>(i)));
  EXPECT_FALSE(r.TryPush(999));
  for (std::size_t i = 0; i < cap; ++i) {
    auto v = r.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, static_cast<int>(i));
  }
  EXPECT_FALSE(r.TryPop().has_value());
}

TEST(SpscRingTest, SizeTracking) {
  SpscRing<int> r(8);
  EXPECT_TRUE(r.Empty());
  r.TryPush(1);
  r.TryPush(2);
  EXPECT_EQ(r.Size(), 2u);
  r.TryPop();
  EXPECT_EQ(r.Size(), 1u);
}

TEST(SpscRingTest, TwoThreadStressNoLossNoReorder) {
  SpscRing<int> r(128);
  constexpr int kItems = 200000;
  std::thread producer([&] {
    for (int i = 0; i < kItems;) {
      if (r.TryPush(i)) ++i;
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto v = r.TryPop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(r.Empty());
}

// --- ThreadPool ----------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, ParallelExecution) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0}, peak{0};
  std::vector<std::future<void>> fs;
  for (int i = 0; i < 8; ++i) {
    fs.push_back(pool.Submit([&] {
      const int now = ++concurrent;
      int old = peak.load();
      while (now > old && !peak.compare_exchange_weak(old, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --concurrent;
    }));
  }
  for (auto& f : fs) f.get();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndRunsPending) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> fs;
  for (int i = 0; i < 16; ++i) fs.push_back(pool.Submit([&] { ++ran; }));
  pool.Shutdown();
  pool.Shutdown();
  for (auto& f : fs) f.get();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool(1);
  pool.Shutdown();
  auto f = pool.Submit([] { return 5; });
  EXPECT_EQ(f.get(), 5);
}

}  // namespace
}  // namespace prisma
