// Dataset catalog and synthetic ImageNet-like dataset generation.
//
// The paper trains on ImageNet-1k: 1,281,167 training images (~138 GiB)
// and 50,000 validation images (~6 GiB). Only the *file population* —
// names and a realistic size distribution — matters to the storage layer,
// so the generator produces a catalog of virtual files whose sizes follow
// a log-normal fit of ImageNet JPEG sizes (mean ~= 113 KiB). Catalogs can
// be used virtually (DES benches at full scale) or materialized to disk at
// reduced scale for the live tests/examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "storage/backend.hpp"

namespace prisma::storage {

struct FileInfo {
  std::string name;
  std::uint64_t size = 0;
};

/// Immutable list of dataset files (one split: train or validation).
class DatasetCatalog {
 public:
  DatasetCatalog() = default;
  explicit DatasetCatalog(std::vector<FileInfo> files);

  const std::vector<FileInfo>& files() const { return files_; }
  std::size_t NumFiles() const { return files_.size(); }
  std::uint64_t TotalBytes() const { return total_bytes_; }
  double MeanFileSize() const;

  const FileInfo& At(std::size_t i) const { return files_[i]; }

  /// Index lookup by name; NotFound if absent.
  Result<std::uint64_t> SizeOf(const std::string& name) const;

  /// All file names, in catalog order.
  std::vector<std::string> Names() const;

 private:
  std::vector<FileInfo> files_;
  std::uint64_t total_bytes_ = 0;
};

/// Parameters for synthetic ImageNet-style generation.
struct SyntheticImageNetSpec {
  std::size_t num_train = 1'281'167;
  std::size_t num_validation = 50'000;
  /// Mean JPEG size; 138 GiB / 1.28 M images ~= 113 KiB.
  double mean_file_size = 113.0 * 1024.0;
  /// Log-normal sigma of the underlying normal (JPEG sizes are skewed).
  double sigma = 0.5;
  std::uint64_t min_file_size = 4 * 1024;
  std::uint64_t seed = 42;
  std::string train_prefix = "train/";
  std::string validation_prefix = "val/";

  /// Shrinks file counts by `factor` keeping the size distribution, for
  /// laptop-scale live runs (e.g. factor=1000 -> ~1281 train files).
  SyntheticImageNetSpec Scaled(std::size_t factor) const;
};

struct ImageNetDataset {
  DatasetCatalog train;
  DatasetCatalog validation;
};

/// Generates train + validation catalogs per `spec` (deterministic in seed).
ImageNetDataset MakeSyntheticImageNet(const SyntheticImageNetSpec& spec);

/// Writes every catalog file to `backend` with deterministic content (see
/// SyntheticContent below). Intended for scaled-down catalogs only.
Status Materialize(const DatasetCatalog& catalog, StorageBackend& backend);

/// Deterministic pseudo-random file content: byte j of `path` depends only
/// on (path, j), so any reader — live backend, shim test, IPC round-trip —
/// can validate payloads without storing golden files.
namespace SyntheticContent {
/// Fills `dst` with the content of `path` at `offset`.
void Fill(const std::string& path, std::uint64_t offset, std::span<std::byte> dst);
/// Convenience: whole-file content of the given size.
std::vector<std::byte> Generate(const std::string& path, std::uint64_t size);
}  // namespace SyntheticContent

}  // namespace prisma::storage
