#include "storage/shuffler.hpp"

#include <fstream>

#include "common/rng.hpp"

namespace prisma::storage {

std::vector<std::string> EpochShuffler::OrderFor(std::uint64_t epoch) const {
  std::vector<std::string> order = names_;
  // Mix epoch into the seed with a SplitMix step so consecutive epochs
  // give unrelated permutations even for small seeds.
  Xoshiro256 rng(SplitMix64(seed_ ^ (epoch * 0x9e3779b97f4a7c15ull)).Next());
  Shuffle(std::span<std::string>(order), rng);
  return order;
}

Status WriteFilenameList(const std::string& path,
                         const std::vector<std::string>& names) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (const auto& n : names) out << n << '\n';
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<std::string>> ReadFilenameList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("filename list not found: " + path);
  std::vector<std::string> names;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) names.push_back(line);
  }
  return names;
}

}  // namespace prisma::storage
