#include "storage/synthetic_backend.hpp"

#include <algorithm>
#include <thread>

namespace prisma::storage {

SyntheticBackend::SyntheticBackend(SyntheticBackendOptions options,
                                   ImageNetDataset dataset)
    : SyntheticBackend(std::move(options)) {
  Register(dataset.train);
  Register(dataset.validation);
}

SyntheticBackend::SyntheticBackend(SyntheticBackendOptions options)
    : options_(options),
      device_(options.profile),
      cache_(options.page_cache_bytes),
      rng_(options.seed) {}

void SyntheticBackend::Register(const DatasetCatalog& catalog) {
  MutexLock lock(mu_);
  for (const auto& f : catalog.files()) files_[f.name] = f.size;
}

Nanos SyntheticBackend::ModelServiceTime(std::uint64_t bytes, bool cache_hit,
                                         std::uint32_t concurrency) {
  double seconds;
  if (cache_hit) {
    seconds = static_cast<double>(bytes) / options_.cache_hit_bandwidth_bps;
  } else {
    seconds = ToSeconds(device_.ServiceTime(bytes, concurrency));
    if (options_.profile.jitter_frac > 0.0) {
      MutexLock lock(mu_);
      const double jitter =
          rng_.NextGaussian(1.0, options_.profile.jitter_frac);
      seconds *= std::max(0.1, jitter);
    }
  }
  return FromSeconds(seconds * options_.time_scale);
}

Result<std::size_t> SyntheticBackend::Read(const std::string& path,
                                           std::uint64_t offset,
                                           std::span<std::byte> dst) {
  std::uint64_t size = 0;
  bool has_override = false;
  {
    MutexLock lock(mu_);
    if (const auto ov = overrides_.find(path); ov != overrides_.end()) {
      has_override = true;
      size = ov->second.size();
    } else if (const auto it = files_.find(path); it != files_.end()) {
      size = it->second;
    } else {
      return Status::NotFound("synthetic backend: " + path);
    }
  }

  if (offset >= size) return static_cast<std::size_t>(0);
  const std::size_t n =
      std::min<std::uint64_t>(dst.size(), size - offset);

  const bool hit = cache_.AccessAndAdmit(path, size);
  const std::uint32_t concurrency =
      outstanding_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const Nanos service = ModelServiceTime(n, hit, concurrency);
  if (service.count() > 0) std::this_thread::sleep_for(service);
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);

  bool copied = false;
  if (has_override) {
    // A concurrent Write() may have replaced (and reallocated) the
    // override vector while we slept off the modeled service time, so
    // re-resolve it under the lock instead of dereferencing a stale
    // pointer. Fall through to synthesis if it vanished or shrank.
    MutexLock lock(mu_);
    const auto ov = overrides_.find(path);
    if (ov != overrides_.end() && ov->second.size() >= offset + n) {
      std::copy_n(ov->second.data() + offset, n, dst.data());
      copied = true;
    }
  }
  if (!copied) {
    SyntheticContent::Fill(path, offset, dst.subspan(0, n));
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

Result<SamplePayload> SyntheticBackend::ReadAllShared(
    const std::string& path, const std::shared_ptr<BufferPool>& pool) {
  std::uint64_t size = 0;
  bool has_override = false;
  {
    MutexLock lock(mu_);
    if (const auto ov = overrides_.find(path); ov != overrides_.end()) {
      has_override = true;
      size = ov->second.size();
    } else if (const auto it = files_.find(path); it != files_.end()) {
      size = it->second;
    } else {
      return Status::NotFound("synthetic backend: " + path);
    }
  }

  const auto n = static_cast<std::size_t>(size);
  const bool hit = cache_.AccessAndAdmit(path, size);
  const std::uint32_t concurrency =
      outstanding_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const Nanos service = ModelServiceTime(n, hit, concurrency);
  if (service.count() > 0) std::this_thread::sleep_for(service);
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);

  PayloadWriter writer = pool->Acquire(n);
  if (has_override) {
    // Re-resolve under the lock: a concurrent Write() may have replaced
    // (and reallocated) the override vector during the modeled sleep.
    MutexLock lock(mu_);
    const auto ov = overrides_.find(path);
    if (ov != overrides_.end() && ov->second.size() >= n) {
      std::copy_n(ov->second.data(), n, writer.span().data());
    } else {
      SyntheticContent::Fill(path, 0, writer.span().subspan(0, n));
    }
  } else {
    SyntheticContent::Fill(path, 0, writer.span().subspan(0, n));
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(n, std::memory_order_relaxed);
  return std::move(writer).Freeze(n);
}

Status SyntheticBackend::Write(const std::string& path,
                               std::span<const std::byte> data) {
  {
    MutexLock lock(mu_);
    overrides_[path].assign(data.begin(), data.end());
    files_[path] = data.size();
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(data.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status SyntheticBackend::Remove(const std::string& path) {
  MutexLock lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("synthetic backend: " + path);
  files_.erase(it);
  overrides_.erase(path);
  return Status::Ok();
}

Result<std::uint64_t> SyntheticBackend::FileSize(const std::string& path) {
  MutexLock lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("synthetic backend: " + path);
  return it->second;
}

BackendStats SyntheticBackend::Stats() const {
  BackendStats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.cache_hits = cache_.Hits();
  s.cache_misses = cache_.Misses();
  return s;
}

}  // namespace prisma::storage
