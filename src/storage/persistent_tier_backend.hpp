// Durable fast-tier backend: a node-local, crash-consistent cache store
// (FanStore's persistent node-local tier, PAPERS.md) the tiering
// optimization object can use instead of the volatile in-memory tier.
//
// Layout (file-per-entry under a root directory):
//
//   <root>/objects/<encoded-path>   committed entries
//   <root>/tmp/<encoded>.<pid>.<seq>.tmp   in-flight writes
//
// Every entry is [payload][logical path][24-byte footer]; the footer
// carries a magic, the path length, the payload size, a CRC-32 of the
// payload, and a CRC-32 sealing the footer+path. Writes are staged into
// tmp/ (payload, path, footer, fsync) and published with an atomic
// rename, so a reader — including a recovery scan after SIGKILL — sees
// either nothing or a complete entry. Recover() rescans objects/,
// validates both checksums, unlinks torn/corrupt/foreign files and stale
// temps, and rebuilds the in-memory index; the surviving entries are
// returned so the tiering layer can reopen warm (RecoverableBackend).
//
// A background flush worker enforces an on-disk byte budget by evicting
// the oldest-written entries; it is a backstop under the tiering layer's
// own LRU (which unlinks demoted entries synchronously via Remove).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <list>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/units.hpp"
#include "storage/backend.hpp"

namespace prisma::storage {

struct PersistentTierOptions {
  /// On-disk byte budget over whole entry files (payload + metadata);
  /// 0 = unlimited. The flush worker evicts oldest-written entries when
  /// the budget is exceeded.
  std::uint64_t byte_budget = 0;
  /// How often the flush worker re-checks the budget (it is also kicked
  /// after every committed write).
  Millis flush_interval{50};
  /// fsync entry data before the publishing rename. Turning this off
  /// trades crash consistency against the OS page cache for write
  /// throughput (benchmarks); recovery still never serves a torn entry.
  bool fsync_writes = true;
  /// Re-verify the payload CRC-32 on every Read (reads the whole
  /// payload even for range reads). Recovery always verifies; this adds
  /// protection against corruption that happens after recovery.
  bool verify_reads = false;
};

class PersistentTierBackend final : public StorageBackend,
                                    public RecoverableBackend {
 public:
  /// Creates the directory skeleton and starts the flush worker. No
  /// recovery scan happens here — call Recover() to reopen warm;
  /// without it the backend starts cold and ignores prior contents
  /// (which stay on disk and are reconciled by the next Recover()).
  PersistentTierBackend(std::filesystem::path root,
                        PersistentTierOptions options);
  ~PersistentTierBackend() override;

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  Status Write(const std::string& path,
               std::span<const std::byte> data) override;
  Status Remove(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  BackendStats Stats() const override;

  /// RecoverableBackend: rescan + validate + rebuild the index. Entries
  /// over the byte budget are evicted (oldest directory order first)
  /// before returning.
  Result<std::vector<RecoveredEntry>> Recover() override;

  /// What the last Recover() saw (all zero before the first call).
  struct RecoveryStats {
    std::uint64_t recovered = 0;        // valid entries now indexed
    std::uint64_t discarded_torn = 0;   // short file / bad footer
    std::uint64_t discarded_corrupt = 0;  // payload CRC mismatch
    std::uint64_t discarded_foreign = 0;  // name/footer disagreement
    std::uint64_t discarded_tmp = 0;    // stale in-flight temp files
  };
  RecoveryStats LastRecovery() const;

  /// Bytes of committed entry files currently indexed.
  std::uint64_t DiskBytes() const;
  /// Entries evicted by the flush worker since construction.
  std::uint64_t Evictions() const;

  const std::filesystem::path& root() const { return root_; }

  /// Filesystem-safe encoding of a logical path (percent-escaping);
  /// injective, so distinct logical paths never collide on disk.
  static std::string EncodeName(const std::string& path);

 private:
  struct Entry {
    std::string file;  // name under objects/
    std::uint64_t payload_bytes = 0;
    std::uint64_t file_bytes = 0;  // payload + path + footer (budget unit)
    std::list<std::string>::iterator order_it;
  };

  std::filesystem::path ObjectPath(const std::string& file) const {
    return objects_dir_ / file;
  }
  void FlushLoop();
  /// Pops oldest entries from the index until the budget fits; returns
  /// their file names for the caller to unlink with mu_ released.
  std::vector<std::string> CollectOverBudgetLocked() REQUIRES(mu_);
  /// Unlinks previously collected victims (no lock held).
  void UnlinkFiles(const std::vector<std::string>& files);

  // prisma-lint: unguarded(immutable after construction)
  std::filesystem::path root_;
  // prisma-lint: unguarded(immutable after construction)
  std::filesystem::path objects_dir_;
  // prisma-lint: unguarded(immutable after construction)
  std::filesystem::path tmp_dir_;
  // prisma-lint: unguarded(immutable after construction)
  PersistentTierOptions options_;

  mutable Mutex mu_{LockRank::kBackend};
  std::unordered_map<std::string, Entry> index_ GUARDED_BY(mu_);
  std::list<std::string> write_order_ GUARDED_BY(mu_);  // front = oldest
  std::uint64_t disk_bytes_ GUARDED_BY(mu_) = 0;
  RecoveryStats recovery_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  CondVar budget_cv_;

  // prisma-lint: unguarded(joined in the destructor only, after stop_)
  std::thread flush_worker_;

  std::atomic<std::uint64_t> tmp_seq_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace prisma::storage
