// Per-epoch filename shuffling — the "filenames list" module of §IV.
//
// The DL framework shuffles the dataset once per epoch; PRISMA must see
// the *same* order ahead of time so producers prefetch exactly the files
// the consumers will request (footnote 1 of the paper: the shuffle is
// performed identically to the framework's own mechanism). Both sides
// therefore derive the epoch order from EpochShuffler with a shared seed,
// or exchange it through a filename-list file (the paper's Python module).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace prisma::storage {

class EpochShuffler {
 public:
  EpochShuffler(std::vector<std::string> names, std::uint64_t seed)
      : names_(std::move(names)), seed_(seed) {}

  /// Deterministic permutation for `epoch` (Fisher-Yates over a stream
  /// derived from seed ^ epoch). Two shufflers with equal names+seed
  /// produce identical orders — the framework/PRISMA agreement invariant.
  std::vector<std::string> OrderFor(std::uint64_t epoch) const;

  std::size_t NumFiles() const { return names_.size(); }
  std::uint64_t seed() const { return seed_; }

 private:
  std::vector<std::string> names_;
  std::uint64_t seed_;
};

/// Writes one filename per line (the shared filename-list file).
Status WriteFilenameList(const std::string& path,
                         const std::vector<std::string>& names);

/// Reads a filename-list file written by WriteFilenameList.
Result<std::vector<std::string>> ReadFilenameList(const std::string& path);

}  // namespace prisma::storage
