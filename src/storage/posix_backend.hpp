// Real-filesystem backend rooted at a directory.
//
// Uses pread(2) so concurrent readers never share file offsets. This is the
// backend the live examples and integration tests run against; the paper's
// testbed (XFS on an NVMe SSD) is the production analogue.
#pragma once

#include <atomic>
#include <filesystem>
#include <string>

#include "storage/backend.hpp"

namespace prisma::storage {

class PosixBackend final : public StorageBackend {
 public:
  /// All paths passed to Read/Write are interpreted relative to `root`.
  /// Absolute paths are also accepted and used verbatim.
  explicit PosixBackend(std::filesystem::path root);

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  /// Opens the file once (vs. once per Read chunk in the default loop)
  /// and streams it straight into a pooled payload.
  Result<SamplePayload> ReadAllShared(
      const std::string& path,
      const std::shared_ptr<BufferPool>& pool) override;
  /// With `io.loop` set, the open/fstat run on the offload pool and the
  /// data reads become kernel-async operations on the loop (io_uring
  /// READ, or the epoll engine's bounded offload) — the caller's thread
  /// never blocks and no thread is parked per outstanding read. Without
  /// a loop this defers to the base blocking-offload implementation.
  void ReadAllSharedAsync(const std::string& path,
                          const std::shared_ptr<BufferPool>& pool,
                          const AsyncIo& io, PayloadCallback cb) override;
  Status Write(const std::string& path, std::span<const std::byte> data) override;
  Status Remove(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  BackendStats Stats() const override;

  const std::filesystem::path& root() const { return root_; }

 private:
  /// Heap state of one in-flight ReadAllSharedAsync (defined in the
  /// .cpp); owns the fd and the payload writer until completion.
  struct AsyncWholeRead;

  std::filesystem::path Resolve(const std::string& path) const;
  /// Issues the next kernel-async chunk read (loop thread).
  static void StepAsyncRead(AsyncWholeRead* op);
  /// Chunk completion: advance, finish, or fail (loop thread).
  static void OnAsyncReadChunk(void* ctx, int res);

  std::filesystem::path root_;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace prisma::storage
