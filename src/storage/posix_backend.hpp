// Real-filesystem backend rooted at a directory.
//
// Uses pread(2) so concurrent readers never share file offsets. This is the
// backend the live examples and integration tests run against; the paper's
// testbed (XFS on an NVMe SSD) is the production analogue.
#pragma once

#include <atomic>
#include <filesystem>
#include <string>

#include "storage/backend.hpp"

namespace prisma::storage {

class PosixBackend final : public StorageBackend {
 public:
  /// All paths passed to Read/Write are interpreted relative to `root`.
  /// Absolute paths are also accepted and used verbatim.
  explicit PosixBackend(std::filesystem::path root);

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  /// Opens the file once (vs. once per Read chunk in the default loop)
  /// and streams it straight into a pooled payload.
  Result<SamplePayload> ReadAllShared(
      const std::string& path,
      const std::shared_ptr<BufferPool>& pool) override;
  Status Write(const std::string& path, std::span<const std::byte> data) override;
  Status Remove(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  BackendStats Stats() const override;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path Resolve(const std::string& path) const;

  std::filesystem::path root_;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace prisma::storage
