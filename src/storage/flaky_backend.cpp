#include "storage/flaky_backend.hpp"

#include <thread>

namespace prisma::storage {

FlakyBackend::FlakyBackend(std::shared_ptr<StorageBackend> inner,
                           FlakyOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

Result<std::size_t> FlakyBackend::Read(const std::string& path,
                                       std::uint64_t offset,
                                       std::span<std::byte> dst) {
  bool fail = false;
  bool spike = false;
  {
    MutexLock lock(mu_);
    const std::uint32_t attempt = attempts_[path]++;
    const bool eligible =
        options_.fail_first_n == 0 || attempt < options_.fail_first_n;
    if (eligible && rng_.NextDouble() < options_.read_error_rate) fail = true;
    if (rng_.NextDouble() < options_.latency_spike_rate) spike = true;
  }
  if (spike) {
    injected_spikes_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(options_.spike_duration);
  }
  if (fail) {
    injected_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected transient fault: " + path);
  }
  return inner_->Read(path, offset, dst);
}

Status FlakyBackend::Write(const std::string& path,
                           std::span<const std::byte> data) {
  return inner_->Write(path, data);
}

Result<std::uint64_t> FlakyBackend::FileSize(const std::string& path) {
  return inner_->FileSize(path);
}

BackendStats FlakyBackend::Stats() const { return inner_->Stats(); }

}  // namespace prisma::storage
