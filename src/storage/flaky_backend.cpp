#include "storage/flaky_backend.hpp"

#include <thread>

namespace prisma::storage {

FlakyBackend::FlakyBackend(std::shared_ptr<StorageBackend> inner,
                           FlakyOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

Result<std::size_t> FlakyBackend::Read(const std::string& path,
                                       std::uint64_t offset,
                                       std::span<std::byte> dst) {
  bool fail = false;
  bool spike = false;
  {
    MutexLock lock(mu_);
    bool eligible = true;
    if (options_.fail_first_n > 0) {
      // The attempt map exists only for fail_first_n; bound it so a
      // long-lived stage (millions of distinct paths) cannot grow it
      // forever. Clearing is an epoch-style reset: early reads of every
      // path become fault-eligible again, which the retrying consumers
      // already tolerate.
      if (options_.max_tracked_paths != 0 &&
          attempts_.size() >= options_.max_tracked_paths &&
          attempts_.find(path) == attempts_.end()) {
        attempts_.clear();
      }
      const std::uint32_t attempt = attempts_[path]++;
      eligible = attempt < options_.fail_first_n;
    }
    if (eligible && rng_.NextDouble() < options_.read_error_rate) fail = true;
    if (rng_.NextDouble() < options_.latency_spike_rate) spike = true;
  }
  if (spike) {
    injected_spikes_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(options_.spike_duration);
  }
  if (fail) {
    injected_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected transient fault: " + path);
  }
  return inner_->Read(path, offset, dst);
}

Status FlakyBackend::Write(const std::string& path,
                           std::span<const std::byte> data) {
  bool fail = false;
  {
    MutexLock lock(mu_);
    if (rng_.NextDouble() < options_.write_error_rate) fail = true;
  }
  if (fail) {
    injected_write_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected write fault: " + path);
  }
  return inner_->Write(path, data);
}

Status FlakyBackend::Remove(const std::string& path) {
  return inner_->Remove(path);
}

Result<std::uint64_t> FlakyBackend::FileSize(const std::string& path) {
  bool fail = false;
  {
    MutexLock lock(mu_);
    if (rng_.NextDouble() < options_.size_error_rate) fail = true;
  }
  if (fail) {
    injected_size_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected size fault: " + path);
  }
  return inner_->FileSize(path);
}

BackendStats FlakyBackend::Stats() const { return inner_->Stats(); }

void FlakyBackend::ResetAttempts() {
  MutexLock lock(mu_);
  attempts_.clear();
}

std::size_t FlakyBackend::TrackedPaths() const {
  MutexLock lock(mu_);
  return attempts_.size();
}

}  // namespace prisma::storage
