// Token-bucket bandwidth limiting — the QoS/bandwidth-reservation policy
// family the paper's related work attributes to SDS systems (Cake, PSLO,
// SIREN) and that a PRISMA control plane can enforce per tenant.
//
// TokenBucket is clock-injected (live SteadyClock or a test ManualClock)
// and returns the *delay* a request must wait, so it composes with both
// sleeping backends (RateLimitedBackend) and the DES engine.
#pragma once

#include <cstdint>
#include <memory>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "storage/backend.hpp"

namespace prisma::storage {

class TokenBucket {
 public:
  /// rate_bps: sustained bytes/second; burst_bytes: bucket depth (peak
  /// debt a burst may take without waiting).
  TokenBucket(double rate_bps, std::uint64_t burst_bytes,
              std::shared_ptr<const Clock> clock);

  /// Reserves `bytes` of budget. Returns how long the caller must wait
  /// before proceeding (0 when within burst). The reservation is
  /// committed immediately — concurrent callers queue up behind it.
  Nanos Reserve(std::uint64_t bytes) EXCLUDES(mu_);

  /// Tokens currently available (<= burst; negative debt is clamped 0).
  std::uint64_t AvailableBytes() const EXCLUDES(mu_);

  double rate_bps() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rate_bps_;
  }
  std::uint64_t burst_bytes() const { return burst_; }

  /// Control-plane knob: retarget the sustained rate.
  void SetRate(double rate_bps) EXCLUDES(mu_);

 private:
  void RefillLocked(Nanos now) REQUIRES(mu_);

  std::shared_ptr<const Clock> clock_;
  mutable Mutex mu_{LockRank::kRateLimiter};
  double rate_bps_ GUARDED_BY(mu_);
  const std::uint64_t burst_;
  double tokens_ GUARDED_BY(mu_);  // may go negative: committed-but-unpaid debt
  Nanos last_refill_ GUARDED_BY(mu_){0};
};

/// Backend decorator enforcing a read-bandwidth budget with real sleeps.
/// Writes pass through unthrottled (training is read-dominated; extend
/// with a second bucket if a workload needs write SLOs).
class RateLimitedBackend final : public StorageBackend {
 public:
  RateLimitedBackend(std::shared_ptr<StorageBackend> inner, double rate_bps,
                     std::uint64_t burst_bytes,
                     std::shared_ptr<const Clock> clock);

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  Status Write(const std::string& path,
               std::span<const std::byte> data) override;
  Status Remove(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  BackendStats Stats() const override;

  TokenBucket& bucket() { return bucket_; }

 private:
  std::shared_ptr<StorageBackend> inner_;
  TokenBucket bucket_;
};

}  // namespace prisma::storage
