// Analytic storage-device service-time model.
//
// Shared by the real-time SyntheticBackend (which sleeps for the computed
// service time) and the DES storage actor (which advances virtual time by
// it). The model captures the two properties the paper's results hinge on:
//
//  1. A single reader extracts only a fraction of device bandwidth
//     (issue latency + shallow queue depth), so TF-baseline's
//     single-threaded loader is slow.
//  2. Aggregate bandwidth saturates as concurrency grows — adding readers
//     beyond the knee yields nothing, which is why PRISMA's auto-tuner
//     stops at ~4 threads while TF's autotuner over-provisions to 30
//     (Fig. 3) at equal throughput.
//
// Aggregate bandwidth at concurrency c:  A(c) = A_max * (1 - exp(-c / c0)).
// A request of s bytes issued while c requests are outstanding is serviced
// in:  t = latency + s / (A(c) / c)   (fair sharing across the c readers).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace prisma::storage {

struct DeviceProfile {
  std::string name;
  /// Fixed per-request issue latency (submission + seek + firmware).
  Nanos issue_latency{Micros{80}};
  /// Asymptotic aggregate read bandwidth in bytes/second.
  double max_bandwidth_bps = 1.15e9;
  /// Concurrency constant c0: A(c) reaches ~63% of max at c == c0.
  double concurrency_knee = 2.0;
  /// Relative jitter applied per request by callers that sample noise
  /// (stddev as a fraction of service time; 0 disables).
  double jitter_frac = 0.0;
  /// Contention overload: beyond `overload_threshold` outstanding
  /// requests, aggregate bandwidth DEGRADES by `overload_penalty` per
  /// extra request (seek thrash / metadata contention on shared storage).
  /// threshold 0 disables the effect. Used by the multi-tenant
  /// experiments (paper §II / §VII).
  std::uint32_t overload_threshold = 0;
  double overload_penalty = 0.0;
  /// Large sequential requests are internally parallel (the controller
  /// streams/stripes them), so a single big read extracts bandwidth a
  /// small random read can only reach at high queue depth: the effective
  /// concurrency of a request is max(outstanding, bytes / this chunk),
  /// capped at 64. 0 disables the effect. Sub-chunk requests (all
  /// training samples) are unaffected.
  std::uint64_t seq_parallel_chunk_bytes = 1ull << 20;

  /// NVMe SSD profile calibrated against the paper's testbed (Intel DC
  /// P4600 behind XFS): ~390 MB/s effective for one streaming reader of
  /// ~110 KiB files, saturating near 1.15 GB/s at concurrency >= 6.
  static DeviceProfile NvmeP4600();

  /// Spinning-disk profile (ablations): high seek cost, low knee.
  static DeviceProfile Hdd7200();

  /// Parallel-filesystem-like profile: higher latency, higher aggregate
  /// bandwidth, later knee (ablations / multi-tenant experiments).
  static DeviceProfile ParallelFs();

  /// Near-instant backend for functional tests.
  static DeviceProfile Instant();
};

class DeviceModel {
 public:
  explicit DeviceModel(DeviceProfile profile) : profile_(std::move(profile)) {}

  /// Aggregate bandwidth (bytes/s) available at `concurrency` outstanding
  /// requests (>= 1).
  double AggregateBandwidth(std::uint32_t concurrency) const;

  /// Service time for one read of `bytes` when `concurrency` requests
  /// (including this one) are outstanding for the whole request.
  Nanos ServiceTime(std::uint64_t bytes, std::uint32_t concurrency) const;

  const DeviceProfile& profile() const { return profile_; }

 private:
  DeviceProfile profile_;
};

}  // namespace prisma::storage
