#include "storage/device_model.hpp"

#include <algorithm>
#include <cmath>

namespace prisma::storage {

DeviceProfile DeviceProfile::NvmeP4600() {
  DeviceProfile p;
  p.name = "nvme-p4600";
  p.issue_latency = Micros{80};
  p.max_bandwidth_bps = 1.15e9;
  p.concurrency_knee = 1.3;
  p.jitter_frac = 0.03;
  return p;
}

DeviceProfile DeviceProfile::Hdd7200() {
  DeviceProfile p;
  p.name = "hdd-7200rpm";
  p.issue_latency = Millis{6};
  p.max_bandwidth_bps = 1.6e8;
  p.concurrency_knee = 1.2;
  p.jitter_frac = 0.15;
  return p;
}

DeviceProfile DeviceProfile::ParallelFs() {
  DeviceProfile p;
  p.name = "parallel-fs";
  p.issue_latency = Micros{350};
  p.max_bandwidth_bps = 4.0e9;
  p.concurrency_knee = 6.0;
  p.jitter_frac = 0.08;
  return p;
}

DeviceProfile DeviceProfile::Instant() {
  DeviceProfile p;
  p.name = "instant";
  p.issue_latency = Nanos{0};
  p.max_bandwidth_bps = 1.0e15;
  p.concurrency_knee = 1.0;
  p.jitter_frac = 0.0;
  return p;
}

double DeviceModel::AggregateBandwidth(std::uint32_t concurrency) const {
  const double c = std::max<std::uint32_t>(concurrency, 1);
  double bw = profile_.max_bandwidth_bps *
              (1.0 - std::exp(-c / profile_.concurrency_knee));
  if (profile_.overload_threshold > 0 && c > profile_.overload_threshold) {
    const double excess = c - profile_.overload_threshold;
    bw /= 1.0 + profile_.overload_penalty * excess;
  }
  return bw;
}

Nanos DeviceModel::ServiceTime(std::uint64_t bytes,
                               std::uint32_t concurrency) const {
  std::uint32_t effective = std::max<std::uint32_t>(concurrency, 1);
  if (profile_.seq_parallel_chunk_bytes > 0) {
    std::uint64_t internal =
        std::min<std::uint64_t>(bytes / profile_.seq_parallel_chunk_bytes, 64);
    if (profile_.overload_threshold > 0) {
      // Internal streaming is controller-managed prefetch, not competing
      // requests — it never trips the contention overload.
      internal = std::min<std::uint64_t>(internal, profile_.overload_threshold);
    }
    effective = std::max<std::uint32_t>(
        effective, static_cast<std::uint32_t>(internal));
  }
  const double c = std::max<std::uint32_t>(concurrency, 1);
  // Bandwidth is extracted at the *effective* depth but shared across the
  // `concurrency` outstanding requests.
  const double per_stream = AggregateBandwidth(effective) / c;
  const double transfer_s = static_cast<double>(bytes) / per_stream;
  return profile_.issue_latency + FromSeconds(transfer_s);
}

}  // namespace prisma::storage
