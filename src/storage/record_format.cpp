#include "storage/record_format.hpp"

#include <cstring>

#include "common/crc32.hpp"

namespace prisma::storage {
namespace {

void PutU32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t GetU32(std::span<const std::byte> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(std::span<const std::byte> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
  }
  return v;
}

constexpr std::size_t kHeaderCrcBytes = 4;
constexpr std::size_t kHeaderBodyBytes = 4 + 8;  // name_len + data_len
constexpr std::size_t kPayloadCrcBytes = 4;

}  // namespace

void ShardIndex::Add(std::string name, RecordLocation loc) {
  index_[std::move(name)] = std::move(loc);
}

Result<RecordLocation> ShardIndex::Find(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("record not in index: " + name);
  }
  return it->second;
}

void ShardIndex::AddShard(std::string shard) {
  shards_.push_back(std::move(shard));
}

RecordShardWriter::RecordShardWriter(StorageBackend& backend,
                                     std::string prefix,
                                     std::uint64_t target_shard_bytes)
    : backend_(backend),
      prefix_(std::move(prefix)),
      target_bytes_(std::max<std::uint64_t>(target_shard_bytes, 4096)) {
  current_.insert(current_.end(),
                  reinterpret_cast<const std::byte*>(kShardMagic),
                  reinterpret_cast<const std::byte*>(kShardMagic) + 8);
}

Status RecordShardWriter::Append(const std::string& name,
                                 std::span<const std::byte> data) {
  if (finished_) return Status::FailedPrecondition("writer already finished");
  if (name.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("record name too long");
  }

  // Header body + CRC.
  std::vector<std::byte> header_body;
  header_body.reserve(kHeaderBodyBytes);
  PutU32(header_body, static_cast<std::uint32_t>(name.size()));
  PutU64(header_body, data.size());
  PutU32(current_, Crc32(header_body));
  current_.insert(current_.end(), header_body.begin(), header_body.end());

  // Payload (name + data) + CRC.
  const auto name_bytes = std::as_bytes(std::span(name.data(), name.size()));
  std::uint32_t payload_crc = Crc32(name_bytes);
  payload_crc = Crc32(data, payload_crc);
  current_.insert(current_.end(), name_bytes.begin(), name_bytes.end());
  const std::uint64_t data_offset = current_.size();
  current_.insert(current_.end(), data.begin(), data.end());
  PutU32(current_, payload_crc);

  const std::string shard = prefix_ + std::to_string(shard_number_) + ".rec";
  index_.Add(name, RecordLocation{shard, data_offset, data.size()});

  if (current_.size() >= target_bytes_) {
    return FlushShard();
  }
  return Status::Ok();
}

Status RecordShardWriter::FlushShard() {
  const std::string shard = prefix_ + std::to_string(shard_number_) + ".rec";
  if (Status s = backend_.Write(shard, current_); !s.ok()) return s;
  index_.AddShard(shard);
  ++shard_number_;
  current_.clear();
  current_.insert(current_.end(),
                  reinterpret_cast<const std::byte*>(kShardMagic),
                  reinterpret_cast<const std::byte*>(kShardMagic) + 8);
  return Status::Ok();
}

Result<ShardIndex> RecordShardWriter::Finish() {
  if (finished_) return Status::FailedPrecondition("already finished");
  finished_ = true;
  if (current_.size() > 8) {  // more than the magic: flush the tail shard
    if (Status s = FlushShard(); !s.ok()) return s;
  }
  return std::move(index_);
}

Result<ShardIndex> PackCatalog(const DatasetCatalog& catalog,
                               StorageBackend& backend,
                               const std::string& prefix,
                               std::uint64_t target_shard_bytes) {
  RecordShardWriter writer(backend, prefix, target_shard_bytes);
  for (const auto& f : catalog.files()) {
    const auto content = SyntheticContent::Generate(f.name, f.size);
    if (Status s = writer.Append(f.name, content); !s.ok()) return s;
  }
  return writer.Finish();
}

Result<std::vector<std::pair<std::string, std::vector<std::byte>>>>
ReadShard(StorageBackend& backend, const std::string& shard) {
  auto raw = backend.ReadAll(shard);
  if (!raw.ok()) return raw.status();
  const std::span<const std::byte> data(*raw);

  if (data.size() < 8 ||
      std::memcmp(data.data(), kShardMagic, 8) != 0) {
    return Status::InvalidArgument("bad shard magic: " + shard);
  }

  std::vector<std::pair<std::string, std::vector<std::byte>>> out;
  std::size_t pos = 8;
  while (pos < data.size()) {
    if (pos + kHeaderCrcBytes + kHeaderBodyBytes > data.size()) {
      return Status::InvalidArgument("truncated record header in " + shard);
    }
    const std::uint32_t header_crc = GetU32(data, pos);
    const auto header_body =
        data.subspan(pos + kHeaderCrcBytes, kHeaderBodyBytes);
    if (Crc32(header_body) != header_crc) {
      return Status::IoError("record header corrupt in " + shard);
    }
    const std::uint32_t name_len = GetU32(data, pos + kHeaderCrcBytes);
    const std::uint64_t data_len = GetU64(data, pos + kHeaderCrcBytes + 4);
    pos += kHeaderCrcBytes + kHeaderBodyBytes;

    if (pos + name_len + data_len + kPayloadCrcBytes > data.size()) {
      return Status::InvalidArgument("truncated record payload in " + shard);
    }
    const auto payload = data.subspan(pos, name_len + data_len);
    const std::uint32_t expected =
        GetU32(data, pos + name_len + static_cast<std::size_t>(data_len));
    if (Crc32(payload) != expected) {
      return Status::IoError("record payload corrupt in " + shard);
    }
    std::string name(reinterpret_cast<const char*>(payload.data()), name_len);
    std::vector<std::byte> record(payload.begin() + name_len, payload.end());
    out.emplace_back(std::move(name), std::move(record));
    pos += name_len + static_cast<std::size_t>(data_len) + kPayloadCrcBytes;
  }
  return out;
}

ShardedBackend::ShardedBackend(std::shared_ptr<StorageBackend> inner,
                               ShardIndex index)
    : inner_(std::move(inner)), index_(std::move(index)) {}

Result<std::size_t> ShardedBackend::Read(const std::string& path,
                                         std::uint64_t offset,
                                         std::span<std::byte> dst) {
  auto loc = index_.Find(path);
  if (!loc.ok()) return loc.status();
  if (offset >= loc->data_len) return static_cast<std::size_t>(0);
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(dst.size(), loc->data_len - offset));
  return inner_->Read(loc->shard, loc->data_offset + offset,
                      dst.subspan(0, n));
}

Status ShardedBackend::Write(const std::string&,
                             std::span<const std::byte>) {
  return Status::FailedPrecondition(
      "ShardedBackend is immutable: rewrite shards with RecordShardWriter");
}

Result<std::uint64_t> ShardedBackend::FileSize(const std::string& path) {
  auto loc = index_.Find(path);
  if (!loc.ok()) return loc.status();
  return loc->data_len;
}

BackendStats ShardedBackend::Stats() const { return inner_->Stats(); }

}  // namespace prisma::storage
