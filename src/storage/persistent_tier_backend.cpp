#include "storage/persistent_tier_backend.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <iterator>

#include "common/crc32.hpp"
#include "common/logging.hpp"

namespace prisma::storage {
namespace {

// Entry footer: | magic u32 | path_len u32 | payload_bytes u64 |
// payload_crc u32 | footer_crc u32 |. footer_crc seals the path bytes
// plus the first 20 footer bytes, so a torn tail invalidates the whole
// footer. Host-endian: entries are node-local cache state, never moved
// between machines.
constexpr std::uint32_t kEntryMagic = 0x50544531;  // "PTE1"
constexpr std::size_t kFooterBytes = 24;

/// Encoded names longer than this switch to a truncated+checksum form so
/// they stay under the filesystem's NAME_MAX.
constexpr std::size_t kMaxEncodedName = 200;

class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_;
};

Status ErrnoStatus(const std::string& op, const std::string& path) {
  const int err = errno;
  if (err == ENOENT) {
    return Status::NotFound(op + " " + path + ": no such file");
  }
  return Status::IoError(op + " " + path + ": " + std::strerror(err));
}

void Store32(std::byte* dst, std::uint32_t v) { std::memcpy(dst, &v, 4); }
void Store64(std::byte* dst, std::uint64_t v) { std::memcpy(dst, &v, 8); }
std::uint32_t Load32(const std::byte* src) {
  std::uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
std::uint64_t Load64(const std::byte* src) {
  std::uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

std::span<const std::byte> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// Footer + path for `path` over a payload with checksum `payload_crc`.
std::vector<std::byte> BuildTrailer(const std::string& path,
                                    std::uint64_t payload_bytes,
                                    std::uint32_t payload_crc) {
  std::vector<std::byte> trailer(path.size() + kFooterBytes);
  std::memcpy(trailer.data(), path.data(), path.size());
  std::byte* footer = trailer.data() + path.size();
  Store32(footer, kEntryMagic);
  Store32(footer + 4, static_cast<std::uint32_t>(path.size()));
  Store64(footer + 8, payload_bytes);
  Store32(footer + 16, payload_crc);
  const std::uint32_t seal =
      Crc32(std::span<const std::byte>(trailer.data(), path.size() + 20));
  Store32(footer + 20, seal);
  return trailer;
}

Status WriteFully(int fd, std::span<const std::byte> data,
                  const std::string& path) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<std::size_t> ReadFully(int fd, std::uint64_t offset,
                              std::span<std::byte> dst,
                              const std::string& path) {
  std::size_t done = 0;
  while (done < dst.size()) {
    const ssize_t n = ::pread(fd, dst.data() + done, dst.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", path);
    }
    if (n == 0) break;  // short file
    done += static_cast<std::size_t>(n);
  }
  return done;
}

bool PlainNameChar(char c, bool first) {
  if (first && c == '.') return false;  // no hidden/dot-dot names
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
}

}  // namespace

std::string PersistentTierBackend::EncodeName(const std::string& path) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    const char c = path[i];
    if (PlainNameChar(c, i == 0)) {
      out.push_back(c);
    } else {
      const auto u = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    }
  }
  if (out.size() > kMaxEncodedName) {
    // Injectivity now rests on the CRC suffix; the footer still stores
    // the full logical path, so recovery never mis-identifies an entry.
    const std::uint32_t crc = Crc32(AsBytes(path));
    std::string suffix = "~";
    for (int shift = 28; shift >= 0; shift -= 4) {
      suffix.push_back(kHex[(crc >> shift) & 0xF]);
    }
    out = out.substr(0, kMaxEncodedName - suffix.size()) + suffix;
  }
  return out;
}

PersistentTierBackend::PersistentTierBackend(std::filesystem::path root,
                                             PersistentTierOptions options)
    : root_(std::move(root)),
      objects_dir_(root_ / "objects"),
      tmp_dir_(root_ / "tmp"),
      options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(objects_dir_, ec);  // best effort
  std::filesystem::create_directories(tmp_dir_, ec);
  flush_worker_ = std::thread([this] { FlushLoop(); });
}

PersistentTierBackend::~PersistentTierBackend() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  budget_cv_.NotifyAll();
  if (flush_worker_.joinable()) flush_worker_.join();
}

Result<std::size_t> PersistentTierBackend::Read(const std::string& path,
                                                std::uint64_t offset,
                                                std::span<std::byte> dst) {
  std::string file;
  std::uint64_t payload_bytes = 0;
  {
    MutexLock lock(mu_);
    const auto it = index_.find(path);
    if (it == index_.end()) {
      return Status::NotFound("persistent tier: '" + path + "' not resident");
    }
    file = it->second.file;
    payload_bytes = it->second.payload_bytes;
  }
  if (offset >= payload_bytes) return static_cast<std::size_t>(0);
  const auto want = static_cast<std::size_t>(
      std::min<std::uint64_t>(dst.size(), payload_bytes - offset));

  const auto full = ObjectPath(file);
  Fd fd(::open(full.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.valid()) return ErrnoStatus("open", full.string());

  if (options_.verify_reads) {
    // Whole-payload CRC check per read: range reads pay a full-file read.
    std::vector<std::byte> payload(static_cast<std::size_t>(payload_bytes));
    auto n = ReadFully(fd.get(), 0, payload, full.string());
    if (!n.ok()) return n.status();
    if (*n != payload.size()) {
      return Status::IoError("persistent tier: '" + path +
                             "' truncated under us");
    }
    // The footer sits after the stored path; compute its offset from the
    // file size rather than assuming the path length.
    std::array<std::byte, kFooterBytes> footer;
    struct stat st {};
    if (::fstat(fd.get(), &st) != 0) return ErrnoStatus("fstat", full.string());
    if (static_cast<std::uint64_t>(st.st_size) < kFooterBytes) {
      return Status::IoError("persistent tier: '" + path + "' lost its footer");
    }
    auto fread = ReadFully(fd.get(),
                           static_cast<std::uint64_t>(st.st_size) - kFooterBytes,
                           footer, full.string());
    if (!fread.ok()) return fread.status();
    const std::uint32_t want_crc = Load32(footer.data() + 16);
    if (Crc32(payload) != want_crc) {
      return Status::IoError("persistent tier: checksum mismatch on '" + path +
                             "'");
    }
    std::memcpy(dst.data(), payload.data() + offset, want);
  } else {
    auto n = ReadFully(fd.get(), offset, dst.subspan(0, want), full.string());
    if (!n.ok()) return n.status();
    if (*n != want) {
      return Status::IoError("persistent tier: '" + path +
                             "' truncated under us");
    }
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(want, std::memory_order_relaxed);
  return want;
}

Status PersistentTierBackend::Write(const std::string& path,
                                    std::span<const std::byte> data) {
  const std::string file = EncodeName(path);
  const auto tmp =
      tmp_dir_ / (file.substr(0, 64) + "." + std::to_string(::getpid()) + "." +
                  std::to_string(tmp_seq_.fetch_add(1)) + ".tmp");
  const auto final_path = ObjectPath(file);

  {
    Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
    if (!fd.valid()) return ErrnoStatus("open", tmp.string());
    if (Status s = WriteFully(fd.get(), data, tmp.string()); !s.ok()) return s;
    const auto trailer = BuildTrailer(path, data.size(), Crc32(data));
    if (Status s = WriteFully(fd.get(), trailer, tmp.string()); !s.ok()) {
      return s;
    }
    if (options_.fsync_writes && ::fsync(fd.get()) != 0) {
      return ErrnoStatus("fsync", tmp.string());
    }
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    const Status s = ErrnoStatus("rename", tmp.string());
    ::unlink(tmp.c_str());
    return s;
  }
  if (options_.fsync_writes) {
    // Persist the rename itself; best effort (the entry is still valid
    // if only the directory update is lost — recovery just won't see it).
    Fd dir(::open(objects_dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
    if (dir.valid()) ::fsync(dir.get());
  }

  const std::uint64_t file_bytes = data.size() + path.size() + kFooterBytes;
  bool over_budget = false;
  {
    MutexLock lock(mu_);
    auto it = index_.find(path);
    if (it != index_.end()) {
      disk_bytes_ -= it->second.file_bytes;
      write_order_.erase(it->second.order_it);
      index_.erase(it);
    }
    write_order_.push_back(path);
    index_[path] = Entry{file, data.size(), file_bytes,
                         std::prev(write_order_.end())};
    disk_bytes_ += file_bytes;
    over_budget =
        options_.byte_budget != 0 && disk_bytes_ > options_.byte_budget;
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(data.size(), std::memory_order_relaxed);
  if (over_budget) budget_cv_.NotifyOne();
  return Status::Ok();
}

Status PersistentTierBackend::Remove(const std::string& path) {
  std::string file;
  {
    MutexLock lock(mu_);
    const auto it = index_.find(path);
    if (it == index_.end()) {
      return Status::NotFound("persistent tier: '" + path + "' not resident");
    }
    file = it->second.file;
    disk_bytes_ -= it->second.file_bytes;
    write_order_.erase(it->second.order_it);
    index_.erase(it);
  }
  const auto full = ObjectPath(file);
  if (::unlink(full.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink", full.string());
  }
  return Status::Ok();
}

Result<std::uint64_t> PersistentTierBackend::FileSize(const std::string& path) {
  MutexLock lock(mu_);
  const auto it = index_.find(path);
  if (it == index_.end()) {
    return Status::NotFound("persistent tier: '" + path + "' not resident");
  }
  return it->second.payload_bytes;
}

BackendStats PersistentTierBackend::Stats() const {
  BackendStats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return s;
}

Result<std::vector<RecoverableBackend::RecoveredEntry>>
PersistentTierBackend::Recover() {
  RecoveryStats stats;

  // Stale in-flight temps are never valid entries: a temp either lost
  // the race to its rename (crash before publish) or belongs to a
  // long-dead writer. Unlink them all.
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(tmp_dir_, ec)) {
    ::unlink(de.path().c_str());
    ++stats.discarded_tmp;
  }

  // Scan committed entries into locals with no lock held (the rescan is
  // real I/O); sorted file order keeps recovery — and therefore the
  // rebuilt eviction order — deterministic.
  std::vector<std::filesystem::path> files;
  for (const auto& de : std::filesystem::directory_iterator(objects_dir_, ec)) {
    files.push_back(de.path());
  }
  if (ec) {
    return Status::IoError("persistent tier: cannot scan " +
                           objects_dir_.string() + ": " + ec.message());
  }
  std::sort(files.begin(), files.end());

  struct Scanned {
    std::string path;
    Entry entry;
  };
  std::vector<Scanned> valid;
  for (const auto& full : files) {
    const std::string file = full.filename().string();
    Fd fd(::open(full.c_str(), O_RDONLY | O_CLOEXEC));
    if (!fd.valid()) {
      ++stats.discarded_torn;
      ::unlink(full.c_str());
      continue;
    }
    struct stat st {};
    if (::fstat(fd.get(), &st) != 0 ||
        static_cast<std::uint64_t>(st.st_size) < kFooterBytes) {
      ++stats.discarded_torn;
      ::unlink(full.c_str());
      continue;
    }
    const auto file_bytes = static_cast<std::uint64_t>(st.st_size);

    std::array<std::byte, kFooterBytes> footer;
    auto n = ReadFully(fd.get(), file_bytes - kFooterBytes, footer,
                       full.string());
    if (!n.ok() || *n != kFooterBytes ||
        Load32(footer.data()) != kEntryMagic) {
      ++stats.discarded_torn;
      ::unlink(full.c_str());
      continue;
    }
    const std::uint64_t path_len = Load32(footer.data() + 4);
    const std::uint64_t payload_bytes = Load64(footer.data() + 8);
    if (path_len + payload_bytes + kFooterBytes != file_bytes) {
      ++stats.discarded_torn;
      ::unlink(full.c_str());
      continue;
    }
    std::string path(static_cast<std::size_t>(path_len), '\0');
    n = ReadFully(fd.get(), payload_bytes,
                  std::span<std::byte>(reinterpret_cast<std::byte*>(
                                           path.data()),
                                       path.size()),
                  full.string());
    if (!n.ok() || *n != path.size()) {
      ++stats.discarded_torn;
      ::unlink(full.c_str());
      continue;
    }
    std::vector<std::byte> sealed(path.size() + 20);
    std::memcpy(sealed.data(), path.data(), path.size());
    std::memcpy(sealed.data() + path.size(), footer.data(), 20);
    if (Crc32(sealed) != Load32(footer.data() + 20)) {
      ++stats.discarded_torn;
      ::unlink(full.c_str());
      continue;
    }
    if (EncodeName(path) != file) {
      // Valid entry under the wrong name — a copy or tampering, never
      // something this backend wrote. Reads would miss it forever.
      ++stats.discarded_foreign;
      ::unlink(full.c_str());
      continue;
    }
    std::vector<std::byte> payload(static_cast<std::size_t>(payload_bytes));
    n = ReadFully(fd.get(), 0, payload, full.string());
    if (!n.ok() || *n != payload.size() ||
        Crc32(payload) != Load32(footer.data() + 16)) {
      ++stats.discarded_corrupt;
      ::unlink(full.c_str());
      continue;
    }
    valid.push_back(Scanned{path, Entry{file, payload_bytes, file_bytes, {}}});
    ++stats.recovered;
  }

  std::vector<RecoveredEntry> out;
  out.reserve(valid.size());
  std::vector<std::string> victims;
  {
    MutexLock lock(mu_);
    index_.clear();
    write_order_.clear();
    disk_bytes_ = 0;
    for (auto& s : valid) {
      write_order_.push_back(s.path);
      s.entry.order_it = std::prev(write_order_.end());
      disk_bytes_ += s.entry.file_bytes;
      index_[s.path] = s.entry;
      out.push_back(RecoveredEntry{s.path, s.entry.payload_bytes});
    }
    victims = CollectOverBudgetLocked();
    recovery_ = stats;
  }
  if (!victims.empty()) {
    evictions_.fetch_add(victims.size(), std::memory_order_relaxed);
    UnlinkFiles(victims);
    // Drop evicted paths from the warm set we hand back.
    std::erase_if(out, [&](const RecoveredEntry& e) {
      MutexLock lock(mu_);
      return index_.find(e.path) == index_.end();
    });
  }
  if (stats.discarded_torn + stats.discarded_corrupt +
          stats.discarded_foreign >
      0) {
    PRISMA_LOG(kWarn, "persistent-tier")
        << "recovery discarded " << stats.discarded_torn << " torn, "
        << stats.discarded_corrupt << " corrupt, " << stats.discarded_foreign
        << " foreign entries under " << root_.string();
  }
  return out;
}

PersistentTierBackend::RecoveryStats PersistentTierBackend::LastRecovery()
    const {
  MutexLock lock(mu_);
  return recovery_;
}

std::uint64_t PersistentTierBackend::DiskBytes() const {
  MutexLock lock(mu_);
  return disk_bytes_;
}

std::uint64_t PersistentTierBackend::Evictions() const {
  return evictions_.load(std::memory_order_relaxed);
}

void PersistentTierBackend::FlushLoop() {
  while (true) {
    std::vector<std::string> victims;
    {
      MutexLock lock(mu_);
      while (!stop_ && (options_.byte_budget == 0 ||
                        disk_bytes_ <= options_.byte_budget)) {
        budget_cv_.WaitFor(mu_, options_.flush_interval);
      }
      if (stop_) return;
      victims = CollectOverBudgetLocked();
    }
    evictions_.fetch_add(victims.size(), std::memory_order_relaxed);
    UnlinkFiles(victims);
  }
}

std::vector<std::string> PersistentTierBackend::CollectOverBudgetLocked() {
  std::vector<std::string> victims;
  while (options_.byte_budget != 0 && disk_bytes_ > options_.byte_budget &&
         !write_order_.empty()) {
    const std::string path = write_order_.front();
    write_order_.pop_front();
    const auto it = index_.find(path);
    if (it == index_.end()) continue;
    disk_bytes_ -= it->second.file_bytes;
    victims.push_back(it->second.file);
    index_.erase(it);
  }
  return victims;
}

void PersistentTierBackend::UnlinkFiles(const std::vector<std::string>& files) {
  for (const auto& file : files) {
    ::unlink(ObjectPath(file).c_str());
  }
}

}  // namespace prisma::storage
