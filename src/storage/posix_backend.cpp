#include "storage/posix_backend.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace prisma::storage {
namespace {

/// RAII file descriptor.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_;
};

Status ErrnoStatus(const std::string& op, const std::string& path) {
  const int err = errno;
  if (err == ENOENT) return Status::NotFound(op + " " + path + ": no such file");
  return Status::IoError(op + " " + path + ": " + std::strerror(err));
}

}  // namespace

PosixBackend::PosixBackend(std::filesystem::path root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);  // best effort
}

std::filesystem::path PosixBackend::Resolve(const std::string& path) const {
  const std::filesystem::path p(path);
  return p.is_absolute() ? p : root_ / p;
}

Result<std::size_t> PosixBackend::Read(const std::string& path,
                                       std::uint64_t offset,
                                       std::span<std::byte> dst) {
  const auto full = Resolve(path);
  Fd fd(::open(full.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.valid()) return ErrnoStatus("open", full.string());

  std::size_t done = 0;
  while (done < dst.size()) {
    const ssize_t n = ::pread(fd.get(), dst.data() + done, dst.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", full.string());
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(done, std::memory_order_relaxed);
  return done;
}

Result<SamplePayload> PosixBackend::ReadAllShared(
    const std::string& path, const std::shared_ptr<BufferPool>& pool) {
  const auto full = Resolve(path);
  Fd fd(::open(full.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.valid()) return ErrnoStatus("open", full.string());

  struct stat st{};
  if (::fstat(fd.get(), &st) != 0) return ErrnoStatus("fstat", full.string());
  const auto total = static_cast<std::size_t>(st.st_size);

  PayloadWriter writer = pool->Acquire(total);
  std::size_t done = 0;
  while (done < total) {
    const ssize_t n = ::read(fd.get(), writer.span().data() + done,
                             total - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read", full.string());
    }
    if (n == 0) break;  // truncated concurrently; freeze what we have
    done += static_cast<std::size_t>(n);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(done, std::memory_order_relaxed);
  return std::move(writer).Freeze(done);
}

Status PosixBackend::Write(const std::string& path,
                           std::span<const std::byte> data) {
  const auto full = Resolve(path);
  std::error_code ec;
  std::filesystem::create_directories(full.parent_path(), ec);

  Fd fd(::open(full.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  if (!fd.valid()) return ErrnoStatus("open", full.string());

  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd.get(), data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", full.string());
    }
    done += static_cast<std::size_t>(n);
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(done, std::memory_order_relaxed);
  return Status::Ok();
}

Status PosixBackend::Remove(const std::string& path) {
  const auto full = Resolve(path);
  if (::unlink(full.c_str()) != 0) return ErrnoStatus("unlink", full.string());
  return Status::Ok();
}

Result<std::uint64_t> PosixBackend::FileSize(const std::string& path) {
  const auto full = Resolve(path);
  struct stat st{};
  if (::stat(full.c_str(), &st) != 0) return ErrnoStatus("stat", full.string());
  return static_cast<std::uint64_t>(st.st_size);
}

BackendStats PosixBackend::Stats() const {
  BackendStats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace prisma::storage
