#include "storage/posix_backend.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/event_engine.hpp"
#include "common/thread_pool.hpp"

namespace prisma::storage {
namespace {

/// RAII file descriptor.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_;
};

Status ErrnoStatus(const std::string& op, const std::string& path) {
  const int err = errno;
  if (err == ENOENT) return Status::NotFound(op + " " + path + ": no such file");
  return Status::IoError(op + " " + path + ": " + std::strerror(err));
}

}  // namespace

PosixBackend::PosixBackend(std::filesystem::path root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);  // best effort
}

std::filesystem::path PosixBackend::Resolve(const std::string& path) const {
  const std::filesystem::path p(path);
  return p.is_absolute() ? p : root_ / p;
}

Result<std::size_t> PosixBackend::Read(const std::string& path,
                                       std::uint64_t offset,
                                       std::span<std::byte> dst) {
  const auto full = Resolve(path);
  Fd fd(::open(full.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.valid()) return ErrnoStatus("open", full.string());

  std::size_t done = 0;
  while (done < dst.size()) {
    const ssize_t n = ::pread(fd.get(), dst.data() + done, dst.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", full.string());
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(done, std::memory_order_relaxed);
  return done;
}

Result<SamplePayload> PosixBackend::ReadAllShared(
    const std::string& path, const std::shared_ptr<BufferPool>& pool) {
  const auto full = Resolve(path);
  Fd fd(::open(full.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.valid()) return ErrnoStatus("open", full.string());

  struct stat st{};
  if (::fstat(fd.get(), &st) != 0) return ErrnoStatus("fstat", full.string());
  const auto total = static_cast<std::size_t>(st.st_size);

  PayloadWriter writer = pool->Acquire(total);
  std::size_t done = 0;
  while (done < total) {
    const ssize_t n = ::read(fd.get(), writer.span().data() + done,
                             total - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read", full.string());
    }
    if (n == 0) break;  // truncated concurrently; freeze what we have
    done += static_cast<std::size_t>(n);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(done, std::memory_order_relaxed);
  return std::move(writer).Freeze(done);
}

struct PosixBackend::AsyncWholeRead {
  PosixBackend* backend = nullptr;
  EventLoop* loop = nullptr;
  int fd = -1;
  PayloadWriter writer;
  std::size_t total = 0;
  std::size_t done = 0;
  PayloadCallback cb;
  std::string full;  // resolved path, for error messages

  ~AsyncWholeRead() {
    if (fd >= 0) ::close(fd);
  }
};

void PosixBackend::ReadAllSharedAsync(const std::string& path,
                                      const std::shared_ptr<BufferPool>& pool,
                                      const AsyncIo& io, PayloadCallback cb) {
  if (io.loop == nullptr || io.offload == nullptr) {
    StorageBackend::ReadAllSharedAsync(path, pool, io, cb);
    return;
  }
  // open/fstat are blocking metadata syscalls, so they run on the
  // offload pool; the data reads are then kernel-async on the loop.
  EventLoop* loop = io.loop;
  io.offload->Submit([this, path, pool, loop, cb] {
    const auto full = Resolve(path);
    const int fd = ::open(full.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      cb.fn(cb.ctx, ErrnoStatus("open", full.string()));
      return;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const Status s = ErrnoStatus("fstat", full.string());
      ::close(fd);
      cb.fn(cb.ctx, s);
      return;
    }
    auto* op = new AsyncWholeRead;
    op->backend = this;
    op->loop = loop;
    op->fd = fd;
    op->total = static_cast<std::size_t>(st.st_size);
    op->writer = pool->Acquire(op->total);
    op->cb = cb;
    op->full = full.string();
    if (op->total == 0) {
      reads_.fetch_add(1, std::memory_order_relaxed);
      cb.fn(cb.ctx, std::move(op->writer).Freeze(0));
      delete op;
      return;
    }
    // AsyncReadFile is loop-thread-only; hop there to start the chain.
    loop->Post([op] { StepAsyncRead(op); });
  });
}

void PosixBackend::StepAsyncRead(AsyncWholeRead* op) {
  op->loop->AsyncReadFile(
      op->fd, op->writer.span().subspan(op->done, op->total - op->done),
      op->done, {&PosixBackend::OnAsyncReadChunk, op});
}

void PosixBackend::OnAsyncReadChunk(void* ctx, int res) {
  auto* op = static_cast<AsyncWholeRead*>(ctx);
  if (res == -EINTR) {
    StepAsyncRead(op);
    return;
  }
  if (res < 0) {
    op->cb.fn(op->cb.ctx, Status::IoError("async read " + op->full + ": " +
                                          std::strerror(-res)));
    delete op;
    return;
  }
  op->done += static_cast<std::size_t>(res);
  if (res > 0 && op->done < op->total) {
    StepAsyncRead(op);
    return;
  }
  // Complete (res == 0 means the file was truncated concurrently; freeze
  // what we have, mirroring the blocking path).
  op->backend->reads_.fetch_add(1, std::memory_order_relaxed);
  op->backend->bytes_read_.fetch_add(op->done, std::memory_order_relaxed);
  op->cb.fn(op->cb.ctx, std::move(op->writer).Freeze(op->done));
  delete op;
}

Status PosixBackend::Write(const std::string& path,
                           std::span<const std::byte> data) {
  const auto full = Resolve(path);
  std::error_code ec;
  std::filesystem::create_directories(full.parent_path(), ec);

  Fd fd(::open(full.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  if (!fd.valid()) return ErrnoStatus("open", full.string());

  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd.get(), data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", full.string());
    }
    done += static_cast<std::size_t>(n);
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(done, std::memory_order_relaxed);
  return Status::Ok();
}

Status PosixBackend::Remove(const std::string& path) {
  const auto full = Resolve(path);
  if (::unlink(full.c_str()) != 0) return ErrnoStatus("unlink", full.string());
  return Status::Ok();
}

Result<std::uint64_t> PosixBackend::FileSize(const std::string& path) {
  const auto full = Resolve(path);
  struct stat st{};
  if (::stat(full.c_str(), &st) != 0) return ErrnoStatus("stat", full.string());
  return static_cast<std::uint64_t>(st.st_size);
}

BackendStats PosixBackend::Stats() const {
  BackendStats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace prisma::storage
