#include "storage/page_cache.hpp"

namespace prisma::storage {

bool PageCacheModel::AccessAndAdmit(const std::string& path,
                                    std::uint64_t bytes) {
  MutexLock lock(mu_);
  if (capacity_ == 0) {
    ++misses_;
    return false;
  }

  if (const auto it = index_.find(path); it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
    return true;
  }

  ++misses_;
  if (bytes > capacity_) return false;  // never admit oversized files

  // Evict from the LRU end until the new file fits.
  while (used_ + bytes > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.bytes;
    index_.erase(victim.path);
    lru_.pop_back();
  }
  lru_.push_front(Entry{path, bytes});
  index_[path] = lru_.begin();
  used_ += bytes;
  return false;
}

bool PageCacheModel::Contains(const std::string& path) const {
  MutexLock lock(mu_);
  return index_.find(path) != index_.end();
}

void PageCacheModel::DropAll() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  used_ = 0;
}

std::uint64_t PageCacheModel::UsedBytes() const {
  MutexLock lock(mu_);
  return used_;
}

std::uint64_t PageCacheModel::Hits() const {
  MutexLock lock(mu_);
  return hits_;
}

std::uint64_t PageCacheModel::Misses() const {
  MutexLock lock(mu_);
  return misses_;
}

}  // namespace prisma::storage
