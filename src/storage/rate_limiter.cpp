#include "storage/rate_limiter.hpp"

#include <algorithm>
#include <thread>

namespace prisma::storage {

TokenBucket::TokenBucket(double rate_bps, std::uint64_t burst_bytes,
                         std::shared_ptr<const Clock> clock)
    : clock_(std::move(clock)),
      rate_bps_(std::max(1.0, rate_bps)),
      burst_(std::max<std::uint64_t>(1, burst_bytes)),
      tokens_(static_cast<double>(burst_)),
      last_refill_(clock_->Now()) {}

void TokenBucket::RefillLocked(Nanos now) {
  const Nanos elapsed = now - last_refill_;
  if (elapsed.count() <= 0) return;
  tokens_ = std::min(static_cast<double>(burst_),
                     tokens_ + rate_bps_ * ToSeconds(elapsed));
  last_refill_ = now;
}

Nanos TokenBucket::Reserve(std::uint64_t bytes) {
  MutexLock lock(mu_);
  RefillLocked(clock_->Now());
  tokens_ -= static_cast<double>(bytes);
  if (tokens_ >= 0.0) return Nanos{0};
  // Debt: the caller waits until refill covers it. Later callers see the
  // debt too and queue up proportionally (FIFO fairness via the mutex).
  return FromSeconds(-tokens_ / rate_bps_);
}

std::uint64_t TokenBucket::AvailableBytes() const {
  MutexLock lock(mu_);
  // Observation only: refill without mutating last_refill_ would drift,
  // so compute the would-be value.
  const Nanos elapsed = clock_->Now() - last_refill_;
  const double tokens =
      std::min(static_cast<double>(burst_),
               tokens_ + rate_bps_ * std::max(0.0, ToSeconds(elapsed)));
  return tokens > 0.0 ? static_cast<std::uint64_t>(tokens) : 0;
}

void TokenBucket::SetRate(double rate_bps) {
  MutexLock lock(mu_);
  RefillLocked(clock_->Now());
  rate_bps_ = std::max(1.0, rate_bps);
}

RateLimitedBackend::RateLimitedBackend(std::shared_ptr<StorageBackend> inner,
                                       double rate_bps,
                                       std::uint64_t burst_bytes,
                                       std::shared_ptr<const Clock> clock)
    : inner_(std::move(inner)),
      bucket_(rate_bps, burst_bytes, std::move(clock)) {}

Result<std::size_t> RateLimitedBackend::Read(const std::string& path,
                                             std::uint64_t offset,
                                             std::span<std::byte> dst) {
  const Nanos wait = bucket_.Reserve(dst.size());
  if (wait.count() > 0) std::this_thread::sleep_for(wait);
  return inner_->Read(path, offset, dst);
}

Status RateLimitedBackend::Write(const std::string& path,
                                 std::span<const std::byte> data) {
  return inner_->Write(path, data);
}

Status RateLimitedBackend::Remove(const std::string& path) {
  return inner_->Remove(path);
}

Result<std::uint64_t> RateLimitedBackend::FileSize(const std::string& path) {
  return inner_->FileSize(path);
}

BackendStats RateLimitedBackend::Stats() const { return inner_->Stats(); }

}  // namespace prisma::storage
