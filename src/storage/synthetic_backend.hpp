// Real-time synthetic backend: serves catalog files with deterministic
// content while charging device-model service times with actual sleeps.
//
// This lets live (threaded) tests and examples experience a realistic
// storage device — single-stream slowness, concurrency scaling, page-cache
// hits — without materializing hundreds of GiB. Service times can be
// scaled down uniformly (time_scale) to keep test wall-time small while
// preserving relative behaviour.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "storage/backend.hpp"
#include "storage/dataset.hpp"
#include "storage/device_model.hpp"
#include "storage/page_cache.hpp"

namespace prisma::storage {

struct SyntheticBackendOptions {
  DeviceProfile profile = DeviceProfile::NvmeP4600();
  /// Usable page-cache budget in bytes (0 disables the cache model).
  std::uint64_t page_cache_bytes = 0;
  /// Multiplies every modeled service time (e.g. 0.001 => 1000x faster).
  double time_scale = 1.0;
  /// Service time for a page-cache hit, per byte (memory copy speed).
  double cache_hit_bandwidth_bps = 8.0e9;
  std::uint64_t seed = 7;
};

class SyntheticBackend final : public StorageBackend {
 public:
  SyntheticBackend(SyntheticBackendOptions options, ImageNetDataset dataset);

  /// Convenience: empty dataset; register catalogs later.
  explicit SyntheticBackend(SyntheticBackendOptions options);

  /// Adds every file of `catalog` to the servable namespace.
  void Register(const DatasetCatalog& catalog);

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  /// One catalog lookup and one modeled service charge for the whole
  /// file (the default loop would charge per chunk), synthesized
  /// directly into a pooled payload.
  Result<SamplePayload> ReadAllShared(
      const std::string& path,
      const std::shared_ptr<BufferPool>& pool) override;
  Status Write(const std::string& path, std::span<const std::byte> data) override;
  /// Drops `path` from the servable namespace (and any Write override),
  /// so a demoted fast-tier entry really disappears instead of lingering
  /// as stale garbage.
  Status Remove(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  BackendStats Stats() const override;

  /// Number of reads currently in service (for tests and the monitor).
  std::uint32_t OutstandingReads() const {
    return outstanding_.load(std::memory_order_relaxed);
  }

  PageCacheModel& page_cache() { return cache_; }
  const DeviceModel& device() const { return device_; }

 private:
  Nanos ModelServiceTime(std::uint64_t bytes, bool cache_hit,
                         std::uint32_t concurrency);

  // prisma-lint: unguarded(immutable after construction)
  SyntheticBackendOptions options_;
  // prisma-lint: unguarded(const service-time model; deliberately used outside mu_)
  DeviceModel device_;
  // prisma-lint: unguarded(internally synchronized; AccessAndAdmit runs outside mu_)
  PageCacheModel cache_;

  mutable Mutex mu_{LockRank::kBackend};
  std::map<std::string, std::uint64_t> files_ GUARDED_BY(mu_);  // name -> size
  std::map<std::string, std::vector<std::byte>> overrides_
      GUARDED_BY(mu_);  // from Write()
  Xoshiro256 rng_ GUARDED_BY(mu_);

  std::atomic<std::uint32_t> outstanding_{0};
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace prisma::storage
