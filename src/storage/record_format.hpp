// Record-shard container format — the "optimized data formats" family of
// I/O optimizations the paper lists among data-plane candidates (§II,
// citing TFRecord [49]): millions of small sample files are packed into
// a few large shards, so epoch ingestion becomes large sequential reads
// (amortizing per-request issue latency) instead of millions of small
// random ones. bench/ablation_record_format quantifies the effect on the
// device model.
//
// On-disk layout of a shard (all integers little-endian):
//
//   shard   := magic "PRSM1\0\0\0" (8 bytes) | record*
//   record  := u32 header_crc          -- CRC-32 of the next 12 bytes
//            | u32 name_len | u64 data_len
//            | name[name_len] | data[data_len]
//            | u32 payload_crc          -- CRC-32 of name + data
//
// (TFRecord uses masked CRC-32C; we use plain CRC-32 — same integrity
// role, simpler dependency story.)
//
// A ShardIndex maps sample name -> (shard file, payload offset, size) so
// a ShardedBackend can serve the ORIGINAL file namespace by range-reading
// shards — the framework never learns the files were repacked.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "storage/backend.hpp"
#include "storage/dataset.hpp"

namespace prisma::storage {

inline constexpr char kShardMagic[8] = {'P', 'R', 'S', 'M', '1', 0, 0, 0};

struct RecordLocation {
  std::string shard;         // shard file name
  std::uint64_t data_offset; // offset of the sample bytes within the shard
  std::uint64_t data_len;
};

class ShardIndex {
 public:
  void Add(std::string name, RecordLocation loc);
  Result<RecordLocation> Find(const std::string& name) const;
  std::size_t NumRecords() const { return index_.size(); }
  const std::vector<std::string>& shards() const { return shards_; }
  void AddShard(std::string shard);

 private:
  std::unordered_map<std::string, RecordLocation> index_;
  std::vector<std::string> shards_;
};

/// Streams records into shard files of ~target_shard_bytes each.
class RecordShardWriter {
 public:
  /// Shards are written to `backend` as "<prefix><N>.rec".
  RecordShardWriter(StorageBackend& backend, std::string prefix,
                    std::uint64_t target_shard_bytes);

  /// Appends one sample; rolls to a new shard when the target is hit.
  Status Append(const std::string& name, std::span<const std::byte> data);

  /// Flushes the final shard and returns the index of everything written.
  Result<ShardIndex> Finish();

 private:
  Status FlushShard();

  StorageBackend& backend_;
  std::string prefix_;
  std::uint64_t target_bytes_;
  std::size_t shard_number_ = 0;
  std::vector<std::byte> current_;  // shard under construction
  ShardIndex index_;
  bool finished_ = false;
};

/// Packs an entire catalog (deterministic synthetic content) into shards.
Result<ShardIndex> PackCatalog(const DatasetCatalog& catalog,
                               StorageBackend& backend,
                               const std::string& prefix,
                               std::uint64_t target_shard_bytes);

/// Sequentially decodes every record of one shard (integrity-checked).
/// Returns (name, data) pairs in on-disk order.
Result<std::vector<std::pair<std::string, std::vector<std::byte>>>>
ReadShard(StorageBackend& backend, const std::string& shard);

/// Serves the ORIGINAL sample namespace out of shards: Read("train/x.jpg")
/// range-reads the owning shard. Whole-record reads verify the payload
/// CRC; partial reads return the requested slice unverified (documented
/// trade-off — verification needs the full payload).
class ShardedBackend final : public StorageBackend {
 public:
  ShardedBackend(std::shared_ptr<StorageBackend> inner, ShardIndex index);

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  Status Write(const std::string& path,
               std::span<const std::byte> data) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  BackendStats Stats() const override;

  const ShardIndex& index() const { return index_; }

 private:
  std::shared_ptr<StorageBackend> inner_;
  ShardIndex index_;
};

}  // namespace prisma::storage
