#include "storage/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "common/rng.hpp"

namespace prisma::storage {

DatasetCatalog::DatasetCatalog(std::vector<FileInfo> files)
    : files_(std::move(files)) {
  for (const auto& f : files_) total_bytes_ += f.size;
}

double DatasetCatalog::MeanFileSize() const {
  return files_.empty()
             ? 0.0
             : static_cast<double>(total_bytes_) / static_cast<double>(files_.size());
}

Result<std::uint64_t> DatasetCatalog::SizeOf(const std::string& name) const {
  // Catalogs are generated in name order, so binary search by name.
  const auto it = std::lower_bound(
      files_.begin(), files_.end(), name,
      [](const FileInfo& f, const std::string& n) { return f.name < n; });
  if (it == files_.end() || it->name != name) {
    return Status::NotFound("file not in catalog: " + name);
  }
  return it->size;
}

std::vector<std::string> DatasetCatalog::Names() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& f : files_) out.push_back(f.name);
  return out;
}

SyntheticImageNetSpec SyntheticImageNetSpec::Scaled(std::size_t factor) const {
  SyntheticImageNetSpec s = *this;
  if (factor > 1) {
    s.num_train = std::max<std::size_t>(1, num_train / factor);
    s.num_validation = std::max<std::size_t>(1, num_validation / factor);
  }
  return s;
}

namespace {

DatasetCatalog GenerateSplit(const std::string& prefix, std::size_t count,
                             const SyntheticImageNetSpec& spec, Xoshiro256& rng) {
  // Parameterize the log-normal so its mean equals spec.mean_file_size:
  //   mean = exp(mu + sigma^2 / 2)  =>  mu = ln(mean) - sigma^2 / 2.
  const double mu =
      std::log(spec.mean_file_size) - spec.sigma * spec.sigma / 2.0;

  std::vector<FileInfo> files;
  files.reserve(count);
  char name[64];
  for (std::size_t i = 0; i < count; ++i) {
    std::snprintf(name, sizeof(name), "%s%08zu.jpg", prefix.c_str(), i);
    const double raw = rng.NextLogNormal(mu, spec.sigma);
    const auto size = std::max<std::uint64_t>(
        spec.min_file_size, static_cast<std::uint64_t>(raw));
    files.push_back(FileInfo{name, size});
  }
  return DatasetCatalog(std::move(files));
}

}  // namespace

ImageNetDataset MakeSyntheticImageNet(const SyntheticImageNetSpec& spec) {
  Xoshiro256 rng(spec.seed);
  ImageNetDataset ds;
  ds.train = GenerateSplit(spec.train_prefix, spec.num_train, spec, rng);
  ds.validation =
      GenerateSplit(spec.validation_prefix, spec.num_validation, spec, rng);
  return ds;
}

Status Materialize(const DatasetCatalog& catalog, StorageBackend& backend) {
  for (const auto& f : catalog.files()) {
    const auto content = SyntheticContent::Generate(f.name, f.size);
    if (Status s = backend.Write(f.name, content); !s.ok()) return s;
  }
  return Status::Ok();
}

namespace SyntheticContent {

namespace {
std::uint64_t PathSeed(const std::string& path) {
  // FNV-1a over the path, then finalized through SplitMix64 for diffusion.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return SplitMix64(h).Next();
}
}  // namespace

void Fill(const std::string& path, std::uint64_t offset,
          std::span<std::byte> dst) {
  // Content is a stream of 8-byte words; word k = splitmix(seed + k).
  // Computing any offset's bytes requires only its containing words.
  const std::uint64_t seed = PathSeed(path);
  std::size_t i = 0;
  while (i < dst.size()) {
    const std::uint64_t pos = offset + i;
    const std::uint64_t word_index = pos / 8;
    const std::uint64_t in_word = pos % 8;
    const std::uint64_t word = SplitMix64(seed + word_index).Next();
    const auto* bytes = reinterpret_cast<const std::byte*>(&word);
    const std::size_t take =
        std::min<std::size_t>(8 - in_word, dst.size() - i);
    std::copy_n(bytes + in_word, take, dst.data() + i);
    i += take;
  }
}

std::vector<std::byte> Generate(const std::string& path, std::uint64_t size) {
  std::vector<std::byte> out(static_cast<std::size_t>(size));
  Fill(path, 0, out);
  return out;
}

}  // namespace SyntheticContent

}  // namespace prisma::storage
