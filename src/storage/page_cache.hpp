// OS page-cache model (file-granular LRU over a byte budget).
//
// The paper's dataset (138 GiB) nearly fits the testbed's 384 GiB of RAM,
// but the page cache competes with the frameworks' own buffers and decode
// workspace; reads keep hitting the device across epochs. We model the
// usable cache as a configurable byte budget so experiments can explore
// both regimes (see bench/ablation_capacity).
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/mutex.hpp"

namespace prisma::storage {

class PageCacheModel {
 public:
  /// capacity_bytes == 0 disables caching entirely.
  explicit PageCacheModel(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Returns true when `path` is fully resident; touches LRU order.
  /// On miss, admits the file (evicting LRU entries to fit).
  bool AccessAndAdmit(const std::string& path, std::uint64_t bytes)
      EXCLUDES(mu_);

  /// Lookup without admission (does not modify state).
  bool Contains(const std::string& path) const EXCLUDES(mu_);

  /// Drops everything (echoes `echo 3 > /proc/sys/vm/drop_caches`).
  void DropAll() EXCLUDES(mu_);

  std::uint64_t UsedBytes() const EXCLUDES(mu_);
  std::uint64_t CapacityBytes() const { return capacity_; }
  std::uint64_t Hits() const EXCLUDES(mu_);
  std::uint64_t Misses() const EXCLUDES(mu_);

 private:
  struct Entry {
    std::string path;
    std::uint64_t bytes;
  };

  mutable Mutex mu_{LockRank::kPageCache};
  const std::uint64_t capacity_;
  std::uint64_t used_ GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ GUARDED_BY(mu_) = 0;
  std::list<Entry> lru_ GUARDED_BY(mu_);  // front == most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GUARDED_BY(mu_);
};

}  // namespace prisma::storage
