// OS page-cache model (file-granular LRU over a byte budget).
//
// The paper's dataset (138 GiB) nearly fits the testbed's 384 GiB of RAM,
// but the page cache competes with the frameworks' own buffers and decode
// workspace; reads keep hitting the device across epochs. We model the
// usable cache as a configurable byte budget so experiments can explore
// both regimes (see bench/ablation_capacity).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace prisma::storage {

class PageCacheModel {
 public:
  /// capacity_bytes == 0 disables caching entirely.
  explicit PageCacheModel(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Returns true when `path` is fully resident; touches LRU order.
  /// On miss, admits the file (evicting LRU entries to fit).
  bool AccessAndAdmit(const std::string& path, std::uint64_t bytes);

  /// Lookup without admission (does not modify state).
  bool Contains(const std::string& path) const;

  /// Drops everything (echoes `echo 3 > /proc/sys/vm/drop_caches`).
  void DropAll();

  std::uint64_t UsedBytes() const;
  std::uint64_t CapacityBytes() const { return capacity_; }
  std::uint64_t Hits() const;
  std::uint64_t Misses() const;

 private:
  struct Entry {
    std::string path;
    std::uint64_t bytes;
  };

  mutable std::mutex mu_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::list<Entry> lru_;  // front == most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace prisma::storage
