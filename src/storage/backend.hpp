// Backend storage abstraction.
//
// The data plane's producers read training samples through this interface;
// implementations include a real POSIX filesystem backend and a synthetic
// backend that models device service times (DESIGN.md §2/§3). All methods
// must be safe to call from multiple threads concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/status.hpp"

namespace prisma {
class EventLoop;
class ThreadPool;
}  // namespace prisma

namespace prisma::storage {

/// Aggregated backend counters (monotonic).
struct BackendStats {
  std::uint64_t reads = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t cache_hits = 0;   // page-cache model hits (synthetic backend)
  std::uint64_t cache_misses = 0;
};

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Reads up to dst.size() bytes from `path` at `offset`; returns the
  /// number of bytes read (0 at EOF).
  virtual Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                                   std::span<std::byte> dst) = 0;

  /// Reads the entire file into a freshly allocated buffer.
  virtual Result<std::vector<std::byte>> ReadAll(const std::string& path);

  /// Reads the entire file into a refcounted payload drawn from `pool`.
  /// This is the producer's entry to the zero-copy path: the bytes land
  /// in pooled memory once and travel by reference from there on. The
  /// default implementation loops over Read(), so decorator backends
  /// (fault injection, rate limiting) keep their semantics without
  /// overriding this.
  virtual Result<SamplePayload> ReadAllShared(
      const std::string& path, const std::shared_ptr<BufferPool>& pool);

  /// Completion callback for asynchronous whole-file reads. Raw
  /// {function pointer, context} — the async read path is hot and must
  /// not allocate per operation beyond its own state record.
  struct PayloadCallback {
    void (*fn)(void* ctx, Result<SamplePayload> result) = nullptr;
    void* ctx = nullptr;
  };

  /// Execution context for async reads. `offload` (required) runs work
  /// that may block; `loop` (optional) drives kernel-async I/O for
  /// backends that support it. Both must outlive the completion.
  struct AsyncIo {
    EventLoop* loop = nullptr;
    ThreadPool* offload = nullptr;
  };

  /// Non-blocking ReadAllShared for the reactor data plane: never blocks
  /// the calling thread; the callback fires exactly once, on an
  /// unspecified thread (possibly synchronously for immediate errors).
  /// The default offloads the blocking ReadAllShared to `io.offload`, so
  /// decorator backends (fault injection, rate limiting) keep their
  /// semantics without overriding; PosixBackend overrides to drive the
  /// reads through `io.loop`'s kernel-async file I/O when available.
  virtual void ReadAllSharedAsync(const std::string& path,
                                  const std::shared_ptr<BufferPool>& pool,
                                  const AsyncIo& io, PayloadCallback cb);

  /// Creates/overwrites `path` with `data` (used by the dataset
  /// materializer and the tiering optimization object).
  virtual Status Write(const std::string& path, std::span<const std::byte> data) = 0;

  /// Removes `path` so later reads return NotFound (the tiering layer
  /// unlinks demoted fast-tier entries through this). NotFound when the
  /// path does not exist; the default says the backend cannot remove at
  /// all (FailedPrecondition), which callers treat as best-effort.
  virtual Status Remove(const std::string& path);

  virtual Result<std::uint64_t> FileSize(const std::string& path) = 0;

  virtual BackendStats Stats() const = 0;
};

/// Implemented alongside StorageBackend by backends whose contents
/// survive process restarts (the durable fast tier). Recover() rescans
/// durable state, discards anything invalid (torn writes, checksum
/// mismatches), and returns what survived so a tiering layer can rebuild
/// its residency index and reopen warm. Idempotent; must be called
/// before the backend serves traffic (concurrent writes during the
/// rescan may be dropped from the rebuilt index).
class RecoverableBackend {
 public:
  struct RecoveredEntry {
    std::string path;
    std::uint64_t bytes = 0;
  };

  virtual ~RecoverableBackend() = default;

  virtual Result<std::vector<RecoveredEntry>> Recover() = 0;
};

}  // namespace prisma::storage
