#include "storage/backend.hpp"

#include "common/thread_pool.hpp"

namespace prisma::storage {

Result<std::vector<std::byte>> StorageBackend::ReadAll(const std::string& path) {
  const auto size = FileSize(path);
  if (!size.ok()) return size.status();
  std::vector<std::byte> buf(static_cast<std::size_t>(*size));
  std::size_t done = 0;
  while (done < buf.size()) {
    auto n = Read(path, done, std::span<std::byte>(buf).subspan(done));
    if (!n.ok()) return n.status();
    if (*n == 0) break;  // truncated concurrently; return what we have
    done += *n;
  }
  buf.resize(done);
  return buf;
}

Status StorageBackend::Remove(const std::string& path) {
  return Status::FailedPrecondition("backend cannot remove '" + path + "'");
}

Result<SamplePayload> StorageBackend::ReadAllShared(
    const std::string& path, const std::shared_ptr<BufferPool>& pool) {
  const auto size = FileSize(path);
  if (!size.ok()) return size.status();
  const auto total = static_cast<std::size_t>(*size);
  PayloadWriter writer = pool->Acquire(total);
  std::size_t done = 0;
  while (done < total) {
    auto n = Read(path, done, writer.span().subspan(done, total - done));
    if (!n.ok()) return n.status();
    if (*n == 0) break;  // truncated concurrently; freeze what we have
    done += *n;
  }
  return std::move(writer).Freeze(done);
}

void StorageBackend::ReadAllSharedAsync(const std::string& path,
                                        const std::shared_ptr<BufferPool>& pool,
                                        const AsyncIo& io, PayloadCallback cb) {
  if (io.offload == nullptr) {
    cb.fn(cb.ctx, Status::InvalidArgument("async read needs an offload pool"));
    return;
  }
  io.offload->Submit([this, path, pool, cb] {
    cb.fn(cb.ctx, ReadAllShared(path, pool));
  });
}

}  // namespace prisma::storage
