// Failure-injection decorator: deterministic (seeded) transient I/O
// errors and latency spikes over any backend. Used by robustness tests
// to prove the data plane degrades gracefully instead of wedging — a
// producer that hits a flaky read must retry and, if the fault persists,
// fail the waiting consumer over to the pass-through path rather than
// leave it blocked forever.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "storage/backend.hpp"

namespace prisma::storage {

struct FlakyOptions {
  /// Probability in [0,1] that a Read fails with a transient IO error.
  double read_error_rate = 0.0;
  /// Probability in [0,1] that a Write fails before touching the inner
  /// backend — exercises the tiering layer's promotion-write path.
  double write_error_rate = 0.0;
  /// Probability in [0,1] that a FileSize fails — exercises the
  /// promotion-candidate stat and recovery paths.
  double size_error_rate = 0.0;
  /// Probability in [0,1] that a Read stalls for `spike_duration`.
  double latency_spike_rate = 0.0;
  Nanos spike_duration{Millis{5}};
  std::uint64_t seed = 99;
  /// When > 0, only the first `fail_first_n` reads of each path can
  /// fail — models transient faults that clear on retry.
  std::uint32_t fail_first_n = 0;
  /// Bound on the per-path attempt map behind fail_first_n. When it
  /// holds this many distinct paths and a new one arrives, the map is
  /// cleared (an epoch-style reset: every path's early reads become
  /// fault-eligible again). Long-lived stages previously grew this map
  /// one entry per path forever. 0 = unbounded (legacy behavior).
  std::size_t max_tracked_paths = 1 << 16;
};

class FlakyBackend final : public StorageBackend {
 public:
  FlakyBackend(std::shared_ptr<StorageBackend> inner, FlakyOptions options);

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override;
  Status Write(const std::string& path,
               std::span<const std::byte> data) override;
  Status Remove(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  BackendStats Stats() const override;

  /// Forgets per-path attempt history (fail_first_n), e.g. at an epoch
  /// boundary: early-read faults fire again and the map stays bounded
  /// across arbitrarily many epochs.
  void ResetAttempts();

  /// Distinct paths currently tracked for fail_first_n (test hook for
  /// the max_tracked_paths bound).
  std::size_t TrackedPaths() const;

  std::uint64_t InjectedErrors() const {
    return injected_errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t InjectedWriteErrors() const {
    return injected_write_errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t InjectedSizeErrors() const {
    return injected_size_errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t InjectedSpikes() const {
    return injected_spikes_.load(std::memory_order_relaxed);
  }

 private:
  // prisma-lint: unguarded(immutable after construction)
  std::shared_ptr<StorageBackend> inner_;
  FlakyOptions options_;  // prisma-lint: unguarded(immutable after construction)
  mutable Mutex mu_{LockRank::kBackend};
  Xoshiro256 rng_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint32_t> attempts_ GUARDED_BY(mu_);
  std::atomic<std::uint64_t> injected_errors_{0};
  std::atomic<std::uint64_t> injected_write_errors_{0};
  std::atomic<std::uint64_t> injected_size_errors_{0};
  std::atomic<std::uint64_t> injected_spikes_{0};
};

}  // namespace prisma::storage
