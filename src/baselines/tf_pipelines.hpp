// DES models of the three TensorFlow setups of §V.A. Entry points are
// declared in experiment.hpp; this header only exists for tests that
// want the shared batch-token type.
#pragma once

#include "baselines/experiment.hpp"

namespace prisma::baselines {

/// One batch handed from an input pipeline to the training step.
struct BatchToken {
  bool validation = false;
  std::size_t count = 0;
};

}  // namespace prisma::baselines
