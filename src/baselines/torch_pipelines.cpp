// DES models of the §V.B setups: PyTorch DataLoader with 0-16 worker
// processes, and PRISMA integrated through the UDS server.
#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/experiment.hpp"
#include "sim/primitives.hpp"
#include "sim/storage_actor.hpp"
#include "sim/task.hpp"
#include "storage/shuffler.hpp"

namespace prisma::baselines {
namespace {

using sim::SimEngine;
using sim::SimQueue;
using sim::SimResource;
using sim::SimSampleBuffer;
using sim::SimStorage;
using sim::SimTask;

sim::SimStorageOptions StorageOptions(const ExperimentConfig& cfg) {
  sim::SimStorageOptions o;
  o.profile = cfg.device;
  o.page_cache_bytes = cfg.page_cache_bytes;
  o.seed = cfg.seed * 104729 + 29;
  return o;
}

/// Shared epoch-order type: workers index into it by batch.
using EpochOrder = std::shared_ptr<const std::vector<std::string>>;

class TorchRunBase {
 public:
  TorchRunBase(const ExperimentConfig& cfg, std::size_t workers)
      : cfg_(cfg),
        workers_(workers),
        storage_(eng_, StorageOptions(cfg)),
        ds_(MakeDataset(cfg)),
        sizes_(BuildSizeMap(ds_)),
        shuffler_(ds_.train.Names(), cfg.seed) {
    // PyTorch's per-step loop overhead replaces the TF dispatch constant,
    // and per-sample compute is scaled by the framework speed ratio.
    model_ = cfg.model;
    model_.step_overhead = cfg.costs.torch_step_overhead;
    model_.gpu_per_sample = std::chrono::duration_cast<Nanos>(
        model_.gpu_per_sample * cfg.costs.torch_gpu_factor);
  }

 protected:
  std::uint64_t SizeOf(const std::string& name) const {
    return sizes_.at(name);
  }

  std::size_t StepsFor(std::size_t count) const {
    return (count + cfg_.global_batch - 1) / cfg_.global_batch;
  }

  std::size_t BatchCount(std::size_t batch_index, std::size_t total) const {
    const std::size_t start = batch_index * cfg_.global_batch;
    return std::min(cfg_.global_batch, total - start);
  }

  /// Validation: read + forward, inline in the main process (both setups
  /// treat validation identically so Fig. 4 deltas come from training).
  SimTask ValidationPass() {
    std::size_t in_batch = 0;
    for (const auto& f : ds_.validation.files()) {
      co_await storage_.Read(f.name, f.size);
      co_await eng_.Delay(model_.preprocess_per_sample);
      if (++in_batch == cfg_.global_batch) {
        co_await eng_.Delay(
            model_.ValidationStepTime(cfg_.global_batch, cfg_.num_gpus));
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      co_await eng_.Delay(
          model_.ValidationStepTime(cfg_.global_batch, cfg_.num_gpus));
    }
  }

  RunResult Finish() {
    RunResult r;
    r.elapsed_s = ToSeconds(finished_at_);
    // Startup plus one worker-fleet spawn per epoch never scale with the
    // dataset (the spawn overlaps nothing at epoch start).
    r.fixed_overhead_s = ToSeconds(cfg_.costs.framework_startup);
    if (workers_ > 0) {
      r.fixed_overhead_s +=
          ToSeconds(cfg_.costs.torch_worker_spawn) * cfg_.epochs;
    }
    r.full_scale_estimate_s =
        (r.elapsed_s - r.fixed_overhead_s) * static_cast<double>(cfg_.scale) +
        r.fixed_overhead_s;
    r.reader_timeline = storage_.ReaderTimeline();
    r.samples_trained = samples_trained_;
    r.events = eng_.EventsProcessed();
    return r;
  }

  SimTask Bind(SimTask t) {
    t.BindEngine(eng_);
    return t;
  }

  const ExperimentConfig cfg_;
  std::size_t workers_;
  sim::ModelProfile model_;
  SimEngine eng_;
  SimStorage storage_;
  storage::ImageNetDataset ds_;
  std::unordered_map<std::string, std::uint64_t> sizes_;
  storage::EpochShuffler shuffler_;
  std::uint64_t samples_trained_ = 0;
  Nanos finished_at_{0};
};

// ---------------------------------------------------------------------------
// Native PyTorch DataLoader.
//  * workers == 0: the training loop loads each batch inline — fully
//    serial with GPU compute (why 0 workers is the paper's worst case).
//  * workers == w: w processes assemble batches round-robin, each keeping
//    up to prefetch_factor batches in flight; workers respawn per epoch
//    (the DataLoader default), which PRISMA's head start exploits.

class TorchNativeRun : public TorchRunBase {
 public:
  using TorchRunBase::TorchRunBase;

  RunResult Run() {
    SimTask main = Bind(Main());
    eng_.Run();
    return Finish();
  }

 private:
  SimTask Main() {
    co_await eng_.Delay(cfg_.costs.framework_startup);
    for (std::size_t e = 0; e < cfg_.epochs; ++e) {
      const auto order = std::make_shared<const std::vector<std::string>>(
          shuffler_.OrderFor(e));
      const std::size_t steps = StepsFor(order->size());

      if (workers_ == 0) {
        for (std::size_t b = 0; b < steps; ++b) {
          const std::size_t n = BatchCount(b, order->size());
          for (std::size_t i = 0; i < n; ++i) {
            const auto& name = (*order)[b * cfg_.global_batch + i];
            co_await storage_.Read(name, SizeOf(name));
            co_await eng_.Delay(model_.preprocess_per_sample);
          }
          co_await eng_.Delay(
              model_.StepTime(cfg_.global_batch, cfg_.num_gpus));
          samples_trained_ += n;
        }
      } else {
        // Per-epoch worker fleet with bounded-lookahead output queues.
        std::vector<std::unique_ptr<SimQueue<std::size_t>>> out;
        out.reserve(workers_);
        for (std::size_t i = 0; i < workers_; ++i) {
          out.push_back(std::make_unique<SimQueue<std::size_t>>(eng_, 2));
        }
        std::vector<SimTask> fleet;
        fleet.reserve(workers_);
        for (std::size_t id = 0; id < workers_; ++id) {
          fleet.push_back(Bind(Worker(order, steps, id, out[id].get())));
        }
        for (std::size_t b = 0; b < steps; ++b) {
          co_await out[b % workers_]->Pop();
          co_await eng_.Delay(
              model_.StepTime(cfg_.global_batch, cfg_.num_gpus));
          samples_trained_ += BatchCount(b, order->size());
        }
        for (const auto& w : fleet) co_await w;
      }

      if (cfg_.run_validation) co_await ValidationPass();
    }
    finished_at_ = eng_.Now();
  }

  SimTask Worker(EpochOrder order, std::size_t steps, std::size_t id,
                 SimQueue<std::size_t>* out) {
    co_await eng_.Delay(cfg_.costs.torch_worker_spawn);
    for (std::size_t b = id; b < steps; b += workers_) {
      const std::size_t n = BatchCount(b, order->size());
      for (std::size_t i = 0; i < n; ++i) {
        const auto& name = (*order)[b * cfg_.global_batch + i];
        co_await storage_.Read(name, SizeOf(name));
        co_await eng_.Delay(model_.preprocess_per_sample);
      }
      if (!co_await out->Push(b)) break;
    }
  }
};

// ---------------------------------------------------------------------------
// PRISMA under PyTorch: the same worker structure, but every sample fetch
// traverses the UDS server — a serialized critical section (request
// decode + the SampleBuffer lock + reply copy) — into PRISMA's buffer.
// Producers fill the buffer exactly as in the TF integration, also paying
// the shared lock on insert. With many workers the lock becomes the
// bottleneck the paper reports for 8+ workers.

class PrismaTorchRun : public TorchRunBase {
 public:
  PrismaTorchRun(const ExperimentConfig& cfg, std::size_t workers)
      : TorchRunBase(cfg, workers),
        tuner_(cfg.prisma_tuner),
        prefetch_q_(eng_, 0),
        buffer_(eng_, cfg.prisma_tuner.min_buffer),
        slots_(eng_, cfg.prisma_tuner.min_producers),
        server_lock_(eng_, 1),
        target_producers_(cfg.prisma_tuner.min_producers) {}

  RunResult Run() {
    EnqueueEpoch(0);  // head start: producers fill during startup
    const std::uint32_t pool = std::max(cfg_.prisma_tuner.max_producers,
                                        cfg_.fixed_producers);
    for (std::uint32_t i = 0; i < pool; ++i) {
      Bind(Producer());
    }
    if (cfg_.fixed_producers > 0) {
      target_producers_ = cfg_.fixed_producers;
      max_producers_seen_ = cfg_.fixed_producers;
      slots_.SetTotal(cfg_.fixed_producers);
      buffer_.SetCapacity(cfg_.fixed_buffer > 0
                              ? cfg_.fixed_buffer
                              : cfg_.fixed_producers *
                                    cfg_.prisma_tuner.buffer_headroom);
    } else {
      Bind(ControllerLoop());
    }
    SimTask main = Bind(Main());
    eng_.Run();

    RunResult r = Finish();
    r.final_producers = target_producers_;
    r.final_buffer = buffer_.Capacity();
    r.max_producers_seen = max_producers_seen_;
    return r;
  }

 private:
  void EnqueueEpoch(std::size_t epoch) {
    for (auto& name : shuffler_.OrderFor(epoch)) {
      prefetch_q_.TryPush(std::move(name));
    }
  }

  SimTask Producer() {
    while (auto name = co_await prefetch_q_.Pop()) {
      co_await slots_.Acquire();
      const std::uint64_t bytes = SizeOf(*name);
      co_await storage_.Read(*name, bytes);
      // Insert serializes on the shared buffer lock.
      co_await server_lock_.Acquire();
      co_await eng_.Delay(cfg_.costs.uds_insert_cost);
      server_lock_.Release();
      const bool ok = co_await buffer_.Insert(std::move(*name), bytes);
      slots_.Release();
      if (!ok) break;
    }
  }

  /// One sample fetched through the server by a worker (or the main
  /// process when workers == 0).
  SimTask FetchViaServer(std::string name) {
    co_await server_lock_.Acquire();
    co_await eng_.Delay(cfg_.costs.uds_request_cost);
    server_lock_.Release();
    co_await buffer_.Take(std::move(name));
    co_await eng_.Delay(model_.preprocess_per_sample);
  }

  SimTask Main() {
    co_await eng_.Delay(cfg_.costs.framework_startup);
    for (std::size_t e = 0; e < cfg_.epochs; ++e) {
      const auto order = std::make_shared<const std::vector<std::string>>(
          shuffler_.OrderFor(e));
      const std::size_t steps = StepsFor(order->size());

      if (workers_ == 0) {
        for (std::size_t b = 0; b < steps; ++b) {
          const std::size_t n = BatchCount(b, order->size());
          for (std::size_t i = 0; i < n; ++i) {
            co_await FetchViaServer((*order)[b * cfg_.global_batch + i]);
          }
          co_await eng_.Delay(
              model_.StepTime(cfg_.global_batch, cfg_.num_gpus));
          samples_trained_ += n;
        }
      } else {
        std::vector<std::unique_ptr<SimQueue<std::size_t>>> out;
        out.reserve(workers_);
        for (std::size_t i = 0; i < workers_; ++i) {
          out.push_back(std::make_unique<SimQueue<std::size_t>>(eng_, 2));
        }
        std::vector<SimTask> fleet;
        fleet.reserve(workers_);
        for (std::size_t id = 0; id < workers_; ++id) {
          fleet.push_back(Bind(Worker(order, steps, id, out[id].get())));
        }
        for (std::size_t b = 0; b < steps; ++b) {
          co_await out[b % workers_]->Pop();
          co_await eng_.Delay(
              model_.StepTime(cfg_.global_batch, cfg_.num_gpus));
          samples_trained_ += BatchCount(b, order->size());
        }
        for (const auto& w : fleet) co_await w;
      }

      if (e + 1 < cfg_.epochs) EnqueueEpoch(e + 1);
      if (cfg_.run_validation) co_await ValidationPass();
    }
    finished_at_ = eng_.Now();
    done_ = true;
    prefetch_q_.Close();
    buffer_.Close();
  }

  SimTask Worker(EpochOrder order, std::size_t steps, std::size_t id,
                 SimQueue<std::size_t>* out) {
    co_await eng_.Delay(cfg_.costs.torch_worker_spawn);
    for (std::size_t b = id; b < steps; b += workers_) {
      const std::size_t n = BatchCount(b, order->size());
      for (std::size_t i = 0; i < n; ++i) {
        co_await FetchViaServer((*order)[b * cfg_.global_batch + i]);
      }
      if (!co_await out->Push(b)) break;
    }
  }

  dataplane::StageStatsSnapshot Snapshot() const {
    dataplane::StageStatsSnapshot s;
    s.at = eng_.Now();
    s.producers = target_producers_;
    s.buffer_capacity = buffer_.Capacity();
    s.buffer_occupancy = buffer_.Occupancy();
    s.buffer_bytes = buffer_.OccupancyBytes();
    const auto& c = buffer_.counters();
    s.samples_produced = c.inserts;
    s.samples_consumed = c.takes;
    s.consumer_hits = c.consumer_hits;
    s.consumer_waits = c.consumer_waits;
    s.consumer_wait_time = c.consumer_wait_time;
    s.producer_blocks = c.producer_blocks;
    s.queue_depth = prefetch_q_.Size();
    s.active_readers = storage_.Outstanding();
    return s;
  }

  SimTask ControllerLoop() {
    // Cadence tracks dataset scale (see the TF pipelines' note).
    const Nanos interval = std::max<Nanos>(
        Nanos{cfg_.costs.controller_interval.count() /
              static_cast<std::int64_t>(cfg_.scale)},
        Micros{200});
    while (!done_) {
      co_await eng_.Delay(interval);
      if (done_) break;
      const auto knobs = tuner_.Tick(Snapshot());
      if (knobs.producers) {
        target_producers_ = *knobs.producers;
        slots_.SetTotal(static_cast<std::int64_t>(target_producers_));
        max_producers_seen_ = std::max(max_producers_seen_, target_producers_);
      }
      if (knobs.buffer_capacity) buffer_.SetCapacity(*knobs.buffer_capacity);
    }
  }

  controlplane::PrismaAutotuner tuner_;
  SimQueue<std::string> prefetch_q_;
  SimSampleBuffer buffer_;
  SimResource slots_;
  SimResource server_lock_;
  std::uint32_t target_producers_;
  std::uint32_t max_producers_seen_ = 1;
  bool done_ = false;
};

}  // namespace

RunResult RunTorch(const ExperimentConfig& cfg, std::size_t workers) {
  return TorchNativeRun(cfg, workers).Run();
}

RunResult RunPrismaTorch(const ExperimentConfig& cfg, std::size_t workers) {
  return PrismaTorchRun(cfg, workers).Run();
}

}  // namespace prisma::baselines
