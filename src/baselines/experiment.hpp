// Shared configuration and result types for the DES pipeline models that
// regenerate the paper's evaluation (Figs. 2-4). Each pipeline mirrors a
// setup from §V:
//   * TF baseline   — single-threaded on-demand reads, no prefetch buffer
//                     beyond the framework's natural one-batch lookahead.
//   * TF optimized  — parallel reads + prefetch buffer, governed by the
//                     reimplemented TensorFlow autotuner (30-thread pool).
//   * PRISMA (TF)   — baseline consumer + PRISMA producers/buffer driven
//                     by the live PrismaAutotuner.
//   * PyTorch       — n worker processes assembling batches round-robin.
//   * PRISMA (Torch)— PyTorch workers whose reads traverse the UDS server
//                     into the PRISMA buffer (lock costs modeled).
//
// Scale: cfg.scale shrinks the dataset (1.28 M / scale files per epoch)
// so runs finish in seconds of wall time on one core; virtual elapsed
// times scale back by ~cfg.scale (per-epoch work is linear in file
// count). EXPERIMENTS.md reports both raw and rescaled numbers.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/histogram.hpp"
#include "common/units.hpp"
#include "controlplane/autotuner.hpp"
#include "controlplane/pid_autotuner.hpp"
#include "controlplane/tf_autotuner.hpp"
#include "sim/model_zoo.hpp"
#include "storage/dataset.hpp"
#include "storage/device_model.hpp"

namespace prisma::baselines {

/// Cost constants of the integration paths, calibrated against the
/// paper's measurements (see EXPERIMENTS.md "Calibration"). All are
/// *mechanisms*, not magic: each names a real serialization point.
struct PipelineCosts {
  /// In-process PRISMA consumer: buffer mutex + sample move per take.
  Nanos prisma_take_cost{Micros{5}};
  /// PyTorch-style per-step loader overhead (collate + queue hop).
  Nanos torch_step_overhead{Millis{3}};
  /// PyTorch executes the same nets faster per sample than TF 2.1 with
  /// MirroredStrategy (eager dispatch, cudnn.benchmark); §V.B's AlexNet
  /// remains loader-bound under PyTorch, which requires this ratio.
  double torch_gpu_factor = 0.45;
  /// Per-epoch DataLoader worker (re)spawn latency (fork + dataset init).
  Nanos torch_worker_spawn{Seconds{4}};
  /// UDS server critical section per consumer request (recv + buffer
  /// lock + reply copy) — the paper's 8+-worker bottleneck lives here.
  Nanos uds_request_cost{Micros{85}};
  /// Producer-side insert critical section on the shared buffer lock.
  Nanos uds_insert_cost{Micros{25}};
  /// Framework startup (graph build / CUDA init) before step 1. PRISMA
  /// prefetches through it — the paper's "starts prefetching samples
  /// before the epoch begins".
  Nanos framework_startup{Seconds{25}};
  /// Control-plane polling cadence.
  Nanos controller_interval{Millis{100}};
};

struct ExperimentConfig {
  sim::ModelProfile model = sim::ModelProfile::LeNet();
  std::size_t global_batch = 256;
  std::size_t num_gpus = 4;
  std::size_t epochs = 10;
  /// Dataset downscale factor (1 == the full 1.28 M-image ImageNet).
  std::size_t scale = 100;
  std::uint64_t seed = 1;
  storage::DeviceProfile device = storage::DeviceProfile::NvmeP4600();
  std::uint64_t page_cache_bytes = 0;
  /// Include the per-epoch validation pass (50 k / scale files).
  bool run_validation = true;
  /// Ablation hook: when fixed_producers > 0 the PRISMA pipelines pin
  /// (t, N) to these values and run WITHOUT the auto-tuner
  /// (bench/ablation_autotune, bench/ablation_capacity).
  std::uint32_t fixed_producers = 0;
  std::size_t fixed_buffer = 0;
  /// Which control algorithm drives the PRISMA pipelines' knobs
  /// (bench/ablation_control compares them; §V.A's caveat about "other
  /// control algorithms").
  enum class ControlAlgorithm { kPrismaProbing, kPidOccupancy };
  ControlAlgorithm control_algorithm = ControlAlgorithm::kPrismaProbing;
  controlplane::PidAutotunerOptions pid_tuner;
  PipelineCosts costs;
  controlplane::AutotunerOptions prisma_tuner;
  controlplane::TfAutotunerOptions tf_tuner;

  ExperimentConfig() {
    prisma_tuner.max_producers = 16;
    prisma_tuner.max_buffer = 4096;
    tf_tuner.thread_pool_size = 30;
    tf_tuner.max_buffer = 64;  // in batches
  }
};

struct RunResult {
  /// Virtual elapsed training time (scaled dataset).
  double elapsed_s = 0.0;
  /// Scale-invariant overheads included in elapsed_s (framework startup,
  /// per-epoch worker spawn) — excluded from rescaling.
  double fixed_overhead_s = 0.0;
  /// (elapsed_s - fixed_overhead_s) * scale + fixed_overhead_s:
  /// estimate of the full-dataset time.
  double full_scale_estimate_s = 0.0;
  /// Concurrent storage-reader distribution over time (Fig. 3).
  OccupancyTimeline reader_timeline;
  std::uint64_t samples_trained = 0;
  std::uint64_t events = 0;
  /// PRISMA pipelines: final auto-tuned knobs.
  std::uint32_t final_producers = 0;
  std::size_t final_buffer = 0;
  std::uint32_t max_producers_seen = 0;
};

/// Builds the (scaled) synthetic ImageNet catalogs for a config. The size
/// seed is fixed so every pipeline sees the identical file population;
/// cfg.seed drives shuffles and jitter only.
storage::ImageNetDataset MakeDataset(const ExperimentConfig& cfg);

/// name -> size lookup used by all pipelines.
std::unordered_map<std::string, std::uint64_t> BuildSizeMap(
    const storage::ImageNetDataset& ds);

// --- pipeline entry points (defined in tf_pipelines.cpp /
// torch_pipelines.cpp) ------------------------------------------------------
RunResult RunTfBaseline(const ExperimentConfig& cfg);
RunResult RunTfOptimized(const ExperimentConfig& cfg);
RunResult RunPrismaTf(const ExperimentConfig& cfg);
RunResult RunTorch(const ExperimentConfig& cfg, std::size_t workers);
RunResult RunPrismaTorch(const ExperimentConfig& cfg, std::size_t workers);

}  // namespace prisma::baselines
