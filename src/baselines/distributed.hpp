// Distributed training scenario (paper §VII "Distributed training
// settings" + Fig. 1's distributed data plane): N compute nodes each run
// a PRISMA stage whose producers read from ONE shared parallel-FS-class
// backend. Aggregate bandwidth degrades past an overload point, so how
// the nodes' producer pools are governed decides everyone's fate:
//
//   kGreedy       — each node allocates its maximum pool regardless of
//                   need (what framework-intrinsic optimizers do);
//   kIndependent  — each node runs its own PRISMA feedback auto-tuner,
//                   but with only local visibility;
//   kCoordinated  — a logically centralized controller ticks every
//                   node's tuner, then caps total producers at a global
//                   budget with weighted max-min fair shares (the SDS
//                   control plane of §III).
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/experiment.hpp"

namespace prisma::baselines {

enum class DistributedControlMode {
  kGreedy,
  kIndependent,
  kCoordinated,
};

struct DistributedConfig {
  std::size_t nodes = 4;
  sim::ModelProfile model = sim::ModelProfile::LeNet();
  std::size_t global_batch = 256;
  std::size_t epochs = 2;
  /// Per-node dataset slice: ImageNet / scale files per epoch.
  std::size_t scale = 400;
  std::uint64_t seed = 1;
  /// Shared backend profile; defaults to a parallel FS that overloads
  /// past 16 concurrent readers.
  storage::DeviceProfile shared_device = OverloadableParallelFs();
  DistributedControlMode mode = DistributedControlMode::kCoordinated;
  /// Producer budget across ALL nodes (coordinated mode).
  std::uint32_t global_producer_budget = 16;
  /// Per-node cap (greedy allocates exactly this).
  std::uint32_t max_producers_per_node = 16;
  controlplane::AutotunerOptions tuner;
  PipelineCosts costs;

  static storage::DeviceProfile OverloadableParallelFs();
};

struct DistributedResult {
  std::vector<double> node_elapsed_s;  // per-node completion time
  double makespan_s = 0.0;
  double mean_device_concurrency = 0.0;
  std::int64_t max_device_concurrency = 0;
  std::vector<std::uint32_t> final_producers;
  std::uint64_t events = 0;
};

DistributedResult RunDistributed(const DistributedConfig& cfg);

}  // namespace prisma::baselines
