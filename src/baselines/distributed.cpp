#include "baselines/distributed.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "controlplane/policy.hpp"
#include "sim/primitives.hpp"
#include "sim/storage_actor.hpp"
#include "sim/task.hpp"
#include "storage/shuffler.hpp"

namespace prisma::baselines {
namespace {

using sim::SimEngine;
using sim::SimQueue;
using sim::SimResource;
using sim::SimSampleBuffer;
using sim::SimStorage;
using sim::SimTask;

/// One compute node: a PRISMA stage (producers + buffer) feeding a local
/// training loop. All nodes share the storage actor; everything else is
/// node-local. File names are node-prefixed so page-cache state (when
/// enabled) does not alias across nodes.
class Node {
 public:
  Node(const DistributedConfig& cfg, std::size_t index, SimEngine& eng,
       SimStorage& storage)
      : cfg_(cfg),
        index_(index),
        eng_(eng),
        storage_(storage),
        prefetch_q_(eng, 0),
        buffer_(eng, cfg.tuner.min_buffer),
        slots_(eng, InitialProducers(cfg)),
        target_producers_(InitialProducers(cfg)),
        tuner_(cfg.tuner) {
    ExperimentConfig ec;
    ec.scale = cfg.scale;
    const auto ds = MakeDataset(ec);
    sizes_ = BuildSizeMap(ds);
    names_ = ds.train.Names();
  }

  static std::uint32_t InitialProducers(const DistributedConfig& cfg) {
    return cfg.mode == DistributedControlMode::kGreedy
               ? cfg.max_producers_per_node
               : cfg.tuner.min_producers;
  }

  void Start() {
    EnqueueEpoch(0);
    for (std::uint32_t i = 0; i < cfg_.max_producers_per_node; ++i) {
      Bind(Producer());
    }
    Bind(Consumer());
  }

  bool Done() const { return done_; }
  double ElapsedSeconds() const { return ToSeconds(finished_at_); }
  std::uint32_t producers() const { return target_producers_; }

  /// Control surface used by ControllerLoop / per-node tuner loops.
  dataplane::StageStatsSnapshot Snapshot() const {
    dataplane::StageStatsSnapshot s;
    s.at = eng_.Now();
    s.producers = target_producers_;
    s.buffer_capacity = buffer_.Capacity();
    s.buffer_occupancy = buffer_.Occupancy();
    const auto& c = buffer_.counters();
    s.samples_produced = c.inserts;
    s.samples_consumed = c.takes;
    s.consumer_hits = c.consumer_hits;
    s.consumer_waits = c.consumer_waits;
    s.consumer_wait_time = c.consumer_wait_time;
    s.producer_blocks = c.producer_blocks;
    s.queue_depth = prefetch_q_.Size();
    return s;
  }

  controlplane::PrismaAutotuner& tuner() { return tuner_; }

  void Apply(std::uint32_t producers, std::size_t buffer_capacity) {
    target_producers_ =
        std::clamp<std::uint32_t>(producers, 1, cfg_.max_producers_per_node);
    slots_.SetTotal(static_cast<std::int64_t>(target_producers_));
    if (buffer_capacity > 0) buffer_.SetCapacity(buffer_capacity);
  }

 private:
  SimTask Bind(SimTask t) {
    t.BindEngine(eng_);
    return t;
  }

  std::string NodeName(const std::string& file) const {
    return "node" + std::to_string(index_) + "/" + file;
  }

  void EnqueueEpoch(std::size_t epoch) {
    storage::EpochShuffler shuffler(names_, cfg_.seed + index_ * 977);
    for (auto& name : shuffler.OrderFor(epoch)) {
      prefetch_q_.TryPush(std::move(name));
    }
  }

  SimTask Producer() {
    while (auto name = co_await prefetch_q_.Pop()) {
      co_await slots_.Acquire();
      const std::uint64_t bytes = sizes_.at(*name);
      co_await storage_.Read(NodeName(*name), bytes);
      const bool ok = co_await buffer_.Insert(std::move(*name), bytes);
      slots_.Release();
      if (!ok) break;
    }
  }

  SimTask Consumer() {
    co_await eng_.Delay(cfg_.costs.framework_startup);
    for (std::size_t e = 0; e < cfg_.epochs; ++e) {
      storage::EpochShuffler shuffler(names_, cfg_.seed + index_ * 977);
      std::size_t in_batch = 0;
      for (const auto& name : shuffler.OrderFor(e)) {
        if (!co_await buffer_.Take(name)) co_return;
        co_await eng_.Delay(cfg_.costs.prisma_take_cost +
                            cfg_.model.preprocess_per_sample);
        if (++in_batch == cfg_.global_batch) {
          co_await eng_.Delay(cfg_.model.StepTime(cfg_.global_batch, 4));
          in_batch = 0;
        }
      }
      if (in_batch > 0) {
        co_await eng_.Delay(cfg_.model.StepTime(cfg_.global_batch, 4));
      }
      if (e + 1 < cfg_.epochs) EnqueueEpoch(e + 1);
    }
    finished_at_ = eng_.Now();
    done_ = true;
    prefetch_q_.Close();
    buffer_.Close();
  }

  const DistributedConfig& cfg_;
  std::size_t index_;
  SimEngine& eng_;
  SimStorage& storage_;

  std::unordered_map<std::string, std::uint64_t> sizes_;
  std::vector<std::string> names_;

  SimQueue<std::string> prefetch_q_;
  SimSampleBuffer buffer_;
  SimResource slots_;
  std::uint32_t target_producers_;
  controlplane::PrismaAutotuner tuner_;
  bool done_ = false;
  Nanos finished_at_{0};
};

/// Logically centralized controller over all nodes (coordinated mode) or
/// a per-node tick loop (independent mode). Greedy mode runs no loop.
SimTask ControlLoop(const DistributedConfig& cfg, SimEngine& eng,
                    std::vector<std::unique_ptr<Node>>& nodes) {
  const Nanos interval = std::max<Nanos>(
      Nanos{cfg.costs.controller_interval.count() /
            static_cast<std::int64_t>(cfg.scale)},
      Micros{200});
  // Previous snapshots to derive per-round starvation for fair shares.
  std::vector<dataplane::StageStatsSnapshot> prev(nodes.size());
  std::vector<bool> has_prev(nodes.size(), false);

  for (;;) {
    co_await eng.Delay(interval);
    bool all_done = true;
    for (const auto& n : nodes) all_done &= n->Done();
    if (all_done) break;

    // Phase 1: every node's own tuner proposes.
    std::vector<std::uint32_t> requested(nodes.size());
    std::vector<std::size_t> buffers(nodes.size());
    std::vector<controlplane::StageDemand> demands(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      Node& node = *nodes[i];
      const auto snap = node.Snapshot();
      const auto knobs = node.tuner().Tick(snap);
      requested[i] = knobs.producers.value_or(node.tuner().CurrentProducers());
      buffers[i] = knobs.buffer_capacity.value_or(0);

      demands[i].stage_id = "node" + std::to_string(i);
      demands[i].requested = requested[i];
      demands[i].weight = 1.0;
      if (has_prev[i]) {
        const auto d_takes = snap.samples_consumed - prev[i].samples_consumed;
        const auto d_waits = snap.consumer_waits - prev[i].consumer_waits;
        demands[i].starvation =
            d_takes > 0 ? static_cast<double>(d_waits) /
                              static_cast<double>(d_takes)
                        : 0.0;
      }
      prev[i] = snap;
      has_prev[i] = true;
    }

    // Phase 2: coordination (or not), phase 3: enforce.
    if (cfg.mode == DistributedControlMode::kCoordinated) {
      const auto shares = controlplane::ComputeFairShares(
          demands, cfg.global_producer_budget);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        nodes[i]->Apply(std::min(requested[i], shares[i]), buffers[i]);
      }
    } else {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        nodes[i]->Apply(requested[i], buffers[i]);
      }
    }
  }
}

}  // namespace

storage::DeviceProfile DistributedConfig::OverloadableParallelFs() {
  storage::DeviceProfile p = storage::DeviceProfile::ParallelFs();
  p.jitter_frac = 0.02;
  p.overload_threshold = 16;
  p.overload_penalty = 0.06;
  return p;
}

DistributedResult RunDistributed(const DistributedConfig& cfg) {
  SimEngine eng;
  sim::SimStorageOptions so;
  so.profile = cfg.shared_device;
  so.seed = cfg.seed * 31 + 5;
  SimStorage storage(eng, so);

  std::vector<std::unique_ptr<Node>> nodes;
  nodes.reserve(cfg.nodes);
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    nodes.push_back(std::make_unique<Node>(cfg, i, eng, storage));
  }
  for (auto& n : nodes) n->Start();

  if (cfg.mode != DistributedControlMode::kGreedy) {
    SimTask loop = ControlLoop(cfg, eng, nodes);
    loop.BindEngine(eng);
  }
  eng.Run();

  DistributedResult out;
  for (const auto& n : nodes) {
    out.node_elapsed_s.push_back(n->ElapsedSeconds());
    out.makespan_s = std::max(out.makespan_s, n->ElapsedSeconds());
    out.final_producers.push_back(n->producers());
  }
  const auto tl = storage.ReaderTimeline();
  out.mean_device_concurrency = tl.TimeWeightedMean();
  out.max_device_concurrency = tl.MaxValue();
  out.events = eng.EventsProcessed();
  return out;
}

}  // namespace prisma::baselines
