#include "baselines/tf_pipelines.hpp"

#include <algorithm>
#include <memory>

#include "sim/primitives.hpp"
#include "sim/storage_actor.hpp"
#include "sim/task.hpp"
#include "storage/shuffler.hpp"

namespace prisma::baselines {
namespace {

using sim::SimEngine;
using sim::SimQueue;
using sim::SimResource;
using sim::SimSampleBuffer;
using sim::SimStorage;
using sim::SimTask;

sim::SimStorageOptions StorageOptions(const ExperimentConfig& cfg) {
  sim::SimStorageOptions o;
  o.profile = cfg.device;
  o.page_cache_bytes = cfg.page_cache_bytes;
  o.seed = cfg.seed * 7919 + 13;
  return o;
}

/// State shared by every TF-style run.
class TfRunBase {
 public:
  explicit TfRunBase(const ExperimentConfig& cfg)
      : cfg_(cfg),
        storage_(eng_, StorageOptions(cfg)),
        ds_(MakeDataset(cfg)),
        sizes_(BuildSizeMap(ds_)),
        shuffler_(ds_.train.Names(), cfg.seed),
        batch_q_(eng_, 1) {}

 protected:
  std::uint64_t SizeOf(const std::string& name) const {
    return sizes_.at(name);
  }

  /// The GPU-side consumer common to all three setups: pops batch tokens
  /// and charges the synchronous data-parallel step time.
  SimTask Trainer() {
    while (auto b = co_await batch_q_.Pop()) {
      const Nanos step =
          b->validation
              ? cfg_.model.ValidationStepTime(cfg_.global_batch, cfg_.num_gpus)
              : cfg_.model.StepTime(cfg_.global_batch, cfg_.num_gpus);
      co_await eng_.Delay(step);
      if (!b->validation) samples_trained_ += b->count;
    }
    finished_at_ = eng_.Now();
  }

  RunResult Finish() {
    RunResult r;
    r.elapsed_s = ToSeconds(finished_at_);
    r.fixed_overhead_s = ToSeconds(cfg_.costs.framework_startup);
    r.full_scale_estimate_s =
        (r.elapsed_s - r.fixed_overhead_s) * static_cast<double>(cfg_.scale) +
        r.fixed_overhead_s;
    r.reader_timeline = storage_.ReaderTimeline();
    r.samples_trained = samples_trained_;
    r.events = eng_.EventsProcessed();
    return r;
  }

  const ExperimentConfig cfg_;
  SimEngine eng_;
  SimStorage storage_;
  storage::ImageNetDataset ds_;
  std::unordered_map<std::string, std::uint64_t> sizes_;
  storage::EpochShuffler shuffler_;
  SimQueue<BatchToken> batch_q_;
  std::uint64_t samples_trained_ = 0;
  Nanos finished_at_{0};
};

// ---------------------------------------------------------------------------
// TF baseline: one loader thread reads + preprocesses on demand; the
// capacity-1 batch queue gives the framework's natural one-batch
// lookahead (the training loop's double buffering), nothing more.

class TfBaselineRun : public TfRunBase {
 public:
  using TfRunBase::TfRunBase;

  RunResult Run() {
    SimTask loader = Loader();
    loader.BindEngine(eng_);
    SimTask trainer = Trainer();
    trainer.BindEngine(eng_);
    eng_.Run();
    return Finish();
  }

 private:
  SimTask Loader() {
    co_await eng_.Delay(cfg_.costs.framework_startup);
    for (std::size_t e = 0; e < cfg_.epochs; ++e) {
      const auto order = shuffler_.OrderFor(e);
      std::size_t in_batch = 0;
      for (const auto& name : order) {
        co_await storage_.Read(name, SizeOf(name));
        co_await eng_.Delay(cfg_.model.preprocess_per_sample);
        if (++in_batch == cfg_.global_batch) {
          co_await batch_q_.Push(BatchToken{false, in_batch});
          in_batch = 0;
        }
      }
      if (in_batch > 0) co_await batch_q_.Push(BatchToken{false, in_batch});

      if (cfg_.run_validation) {
        in_batch = 0;
        for (const auto& f : ds_.validation.files()) {
          co_await storage_.Read(f.name, f.size);
          co_await eng_.Delay(cfg_.model.preprocess_per_sample);
          if (++in_batch == cfg_.global_batch) {
            co_await batch_q_.Push(BatchToken{true, in_batch});
            in_batch = 0;
          }
        }
        if (in_batch > 0) co_await batch_q_.Push(BatchToken{true, in_batch});
      }
    }
    batch_q_.Close();
  }
};

// ---------------------------------------------------------------------------
// TF optimized: a 30-reader pool feeds a prefetch buffer whose capacity
// is governed by the reimplemented TensorFlow autotuner; readers also
// run the map() preprocessing in parallel. This is the setup whose
// thread usage Fig. 3 contrasts with PRISMA.

class TfOptimizedRun : public TfRunBase {
 public:
  explicit TfOptimizedRun(const ExperimentConfig& cfg)
      : TfRunBase(cfg),
        tuner_(cfg.tf_tuner),
        work_q_(eng_, 0),
        sample_q_(eng_, tuner_.buffer_limit() * cfg.global_batch) {}

  RunResult Run() {
    std::vector<SimTask> tasks;
    tasks.push_back(Bind(Feeder()));
    for (std::uint32_t i = 0; i < tuner_.threads(); ++i) {
      tasks.push_back(Bind(Reader()));
    }
    tasks.push_back(Bind(Consumer()));
    SimTask trainer = Bind(Trainer());
    eng_.Run();
    return Finish();
  }

 private:
  SimTask Bind(SimTask t) {
    t.BindEngine(eng_);
    return t;
  }

  SimTask Feeder() {
    co_await eng_.Delay(cfg_.costs.framework_startup);
    for (std::size_t e = 0; e < cfg_.epochs; ++e) {
      for (const auto& name : shuffler_.OrderFor(e)) {
        co_await work_q_.Push(name);
      }
      if (cfg_.run_validation) {
        for (const auto& f : ds_.validation.files()) {
          co_await work_q_.Push(f.name);
        }
      }
    }
    work_q_.Close();
  }

  SimTask Reader() {
    while (auto name = co_await work_q_.Pop()) {
      co_await storage_.Read(*name, SizeOf(*name));
      co_await eng_.Delay(cfg_.model.preprocess_per_sample);
      if (!co_await sample_q_.Push(1)) break;
    }
  }

  /// Input-pipeline consumer: assembles batches and forwards them to the
  /// trainer, recording buffer occupancy for the TF autotuner exactly
  /// where upstream does (on each consumption).
  SimTask Consumer() {
    co_await eng_.Delay(cfg_.costs.framework_startup);
    const std::size_t train_count = ds_.train.NumFiles();
    const std::size_t val_count =
        cfg_.run_validation ? ds_.validation.NumFiles() : 0;
    for (std::size_t e = 0; e < cfg_.epochs; ++e) {
      for (int phase = 0; phase < 2; ++phase) {
        const bool validation = phase == 1;
        std::size_t remaining = validation ? val_count : train_count;
        while (remaining > 0) {
          const std::size_t take = std::min(cfg_.global_batch, remaining);
          for (std::size_t i = 0; i < take; ++i) {
            if (!co_await sample_q_.Pop()) co_return;  // torn down
          }
          tuner_.RecordConsumption(sample_q_.Size() / cfg_.global_batch);
          sample_q_.SetCapacity(tuner_.buffer_limit() * cfg_.global_batch);
          if (!co_await batch_q_.Push(BatchToken{validation, take})) co_return;
          remaining -= take;
        }
      }
    }
    batch_q_.Close();
    sample_q_.Close();
  }

  controlplane::TfPrefetchAutotuner tuner_;
  SimQueue<std::string> work_q_;
  SimQueue<int> sample_q_;
};

// ---------------------------------------------------------------------------
// PRISMA on TF: the baseline's single consumer now takes samples from
// PRISMA's in-memory buffer; up to `t` producer slots prefetch in FIFO
// order; the live PrismaAutotuner (identical code to the real control
// plane) adjusts t and N from buffer statistics. Validation files are
// NOT prefetched (pass-through), matching the prototype's limitation.

class PrismaTfRun : public TfRunBase {
 public:
  explicit PrismaTfRun(const ExperimentConfig& cfg)
      : TfRunBase(cfg),
        tuner_(cfg.prisma_tuner),
        pid_tuner_(cfg.pid_tuner),
        prefetch_q_(eng_, 0),
        buffer_(eng_, cfg.prisma_tuner.min_buffer),
        slots_(eng_, cfg.prisma_tuner.min_producers),
        target_producers_(cfg.prisma_tuner.min_producers) {}

  RunResult Run() {
    EnqueueEpoch(0);  // head start: prefetch begins at t=0
    std::vector<SimTask> tasks;
    const std::uint32_t pool = std::max(cfg_.prisma_tuner.max_producers,
                                        cfg_.fixed_producers);
    for (std::uint32_t i = 0; i < pool; ++i) {
      tasks.push_back(Bind(Producer()));
    }
    tasks.push_back(Bind(Consumer()));
    if (cfg_.fixed_producers > 0) {
      // Ablation mode: pinned knobs, no control loop.
      target_producers_ = cfg_.fixed_producers;
      max_producers_seen_ = cfg_.fixed_producers;
      slots_.SetTotal(cfg_.fixed_producers);
      buffer_.SetCapacity(cfg_.fixed_buffer > 0
                              ? cfg_.fixed_buffer
                              : cfg_.fixed_producers *
                                    cfg_.prisma_tuner.buffer_headroom);
    } else {
      tasks.push_back(Bind(ControllerLoop()));
    }
    SimTask trainer = Bind(Trainer());
    eng_.Run();

    RunResult r = Finish();
    r.final_producers = target_producers_;
    r.final_buffer = buffer_.Capacity();
    r.max_producers_seen = max_producers_seen_;
    return r;
  }

 private:
  SimTask Bind(SimTask t) {
    t.BindEngine(eng_);
    return t;
  }

  void EnqueueEpoch(std::size_t epoch) {
    for (auto& name : shuffler_.OrderFor(epoch)) {
      prefetch_q_.TryPush(std::move(name));  // unbounded: never fails open
    }
  }

  SimTask Producer() {
    while (auto name = co_await prefetch_q_.Pop()) {
      co_await slots_.Acquire();
      const std::uint64_t bytes = SizeOf(*name);
      co_await storage_.Read(*name, bytes);
      const bool ok = co_await buffer_.Insert(std::move(*name), bytes);
      slots_.Release();
      if (!ok) break;
    }
  }

  SimTask Consumer() {
    co_await eng_.Delay(cfg_.costs.framework_startup);
    for (std::size_t e = 0; e < cfg_.epochs; ++e) {
      std::size_t in_batch = 0;
      for (const auto& name : shuffler_.OrderFor(e)) {
        if (!co_await buffer_.Take(name)) co_return;  // torn down
        co_await eng_.Delay(cfg_.costs.prisma_take_cost +
                            cfg_.model.preprocess_per_sample);
        if (++in_batch == cfg_.global_batch) {
          co_await batch_q_.Push(BatchToken{false, in_batch});
          in_batch = 0;
        }
      }
      if (in_batch > 0) co_await batch_q_.Push(BatchToken{false, in_batch});

      // Announce the next epoch before validation starts so producers
      // keep streaming while the GPU churns through validation batches.
      if (e + 1 < cfg_.epochs) EnqueueEpoch(e + 1);

      if (cfg_.run_validation) {
        in_batch = 0;
        for (const auto& f : ds_.validation.files()) {
          co_await storage_.Read(f.name, f.size);  // pass-through
          co_await eng_.Delay(cfg_.model.preprocess_per_sample);
          if (++in_batch == cfg_.global_batch) {
            co_await batch_q_.Push(BatchToken{true, in_batch});
            in_batch = 0;
          }
        }
        if (in_batch > 0) co_await batch_q_.Push(BatchToken{true, in_batch});
      }
    }
    done_ = true;
    batch_q_.Close();
    prefetch_q_.Close();
    buffer_.Close();
  }

  dataplane::StageStatsSnapshot Snapshot() const {
    dataplane::StageStatsSnapshot s;
    s.at = eng_.Now();
    s.producers = target_producers_;
    s.buffer_capacity = buffer_.Capacity();
    s.buffer_occupancy = buffer_.Occupancy();
    s.buffer_bytes = buffer_.OccupancyBytes();
    const auto& c = buffer_.counters();
    s.samples_produced = c.inserts;
    s.samples_consumed = c.takes;
    s.consumer_hits = c.consumer_hits;
    s.consumer_waits = c.consumer_waits;
    s.consumer_wait_time = c.consumer_wait_time;
    s.producer_blocks = c.producer_blocks;
    s.queue_depth = prefetch_q_.Size();
    s.active_readers = storage_.Outstanding();
    return s;
  }

  SimTask ControllerLoop() {
    // Keep ticks-per-epoch constant across dataset scales: at scale s an
    // epoch is s times shorter, so the cadence shrinks with it (otherwise
    // the tuner sees only a handful of noisy ticks per epoch — a scaling
    // artifact, not a property of the algorithm).
    const Nanos interval = std::max<Nanos>(
        Nanos{cfg_.costs.controller_interval.count() /
              static_cast<std::int64_t>(cfg_.scale)},
        Micros{200});
    while (!done_) {
      co_await eng_.Delay(interval);
      if (done_) break;
      const auto knobs =
          cfg_.control_algorithm ==
                  ExperimentConfig::ControlAlgorithm::kPidOccupancy
              ? pid_tuner_.Tick(Snapshot())
              : tuner_.Tick(Snapshot());
      if (knobs.producers) {
        target_producers_ = *knobs.producers;
        slots_.SetTotal(static_cast<std::int64_t>(target_producers_));
        max_producers_seen_ = std::max(max_producers_seen_, target_producers_);
      }
      if (knobs.buffer_capacity) buffer_.SetCapacity(*knobs.buffer_capacity);
    }
  }

  controlplane::PrismaAutotuner tuner_;
  controlplane::PidAutotuner pid_tuner_;
  SimQueue<std::string> prefetch_q_;
  SimSampleBuffer buffer_;
  SimResource slots_;
  std::uint32_t target_producers_;
  std::uint32_t max_producers_seen_ = 1;
  bool done_ = false;
};

}  // namespace

RunResult RunTfBaseline(const ExperimentConfig& cfg) {
  return TfBaselineRun(cfg).Run();
}

RunResult RunTfOptimized(const ExperimentConfig& cfg) {
  return TfOptimizedRun(cfg).Run();
}

RunResult RunPrismaTf(const ExperimentConfig& cfg) {
  return PrismaTfRun(cfg).Run();
}

}  // namespace prisma::baselines
