#include "baselines/cli_config.hpp"

namespace prisma::baselines {

std::string_view PipelineName(PipelineKind kind) {
  switch (kind) {
    case PipelineKind::kTfBaseline: return "tf_baseline";
    case PipelineKind::kTfOptimized: return "tf_optimized";
    case PipelineKind::kPrismaTf: return "prisma_tf";
    case PipelineKind::kTorch: return "torch";
    case PipelineKind::kPrismaTorch: return "prisma_torch";
  }
  return "?";
}

Result<CliExperiment> ParseExperiment(const Config& config) {
  CliExperiment out;

  const std::string pipeline = config.GetString("pipeline", "prisma_tf");
  if (pipeline == "tf_baseline") {
    out.pipeline = PipelineKind::kTfBaseline;
  } else if (pipeline == "tf_optimized") {
    out.pipeline = PipelineKind::kTfOptimized;
  } else if (pipeline == "prisma_tf") {
    out.pipeline = PipelineKind::kPrismaTf;
  } else if (pipeline == "torch") {
    out.pipeline = PipelineKind::kTorch;
  } else if (pipeline == "prisma_torch") {
    out.pipeline = PipelineKind::kPrismaTorch;
  } else {
    return Status::InvalidArgument("unknown pipeline: " + pipeline);
  }

  const std::string model = config.GetString("model", "lenet");
  if (model == "lenet") {
    out.config.model = sim::ModelProfile::LeNet();
  } else if (model == "alexnet") {
    out.config.model = sim::ModelProfile::AlexNet();
  } else if (model == "resnet50") {
    out.config.model = sim::ModelProfile::ResNet50();
  } else {
    return Status::InvalidArgument("unknown model: " + model);
  }

  const auto positive = [&](std::string_view key, std::int64_t fallback,
                            std::int64_t min = 1) -> Result<std::int64_t> {
    const std::int64_t v = config.GetInt(key, fallback);
    if (v < min) {
      return Status::InvalidArgument(std::string(key) + " must be >= " +
                                     std::to_string(min));
    }
    return v;
  };

  auto batch = positive("batch", 256);
  if (!batch.ok()) return batch.status();
  out.config.global_batch = static_cast<std::size_t>(*batch);

  auto epochs = positive("epochs", 10);
  if (!epochs.ok()) return epochs.status();
  out.config.epochs = static_cast<std::size_t>(*epochs);

  auto scale = positive("scale", 100);
  if (!scale.ok()) return scale.status();
  out.config.scale = static_cast<std::size_t>(*scale);

  auto seed = positive("seed", 1, 0);
  if (!seed.ok()) return seed.status();
  out.config.seed = static_cast<std::uint64_t>(*seed);

  auto runs = positive("runs", 1);
  if (!runs.ok()) return runs.status();
  out.runs = static_cast<int>(*runs);

  auto workers = positive("workers", 4, 0);
  if (!workers.ok()) return workers.status();
  out.workers = static_cast<std::size_t>(*workers);

  out.stage_pipeline = config.GetString("stage_pipeline", "prefetch");
  auto layers = dataplane::ParsePipelineSpec(out.stage_pipeline);
  if (!layers.ok()) return layers.status();
  out.pipeline_layers = std::move(*layers);

  out.pipeline_options.tiering.durable = config.GetBool("tiering.durable", false);
  out.pipeline_options.fast_tier_path =
      config.GetString("tiering.fast_tier_path", "");
  out.pipeline_options.tiering.fast_tier_capacity = static_cast<std::uint64_t>(
      config.GetBytes("tiering.fast_tier_capacity",
                      out.pipeline_options.tiering.fast_tier_capacity));
  if (out.pipeline_options.tiering.durable &&
      out.pipeline_options.fast_tier_path.empty()) {
    return Status::InvalidArgument(
        "tiering.durable requires tiering.fast_tier_path");
  }

  out.config.run_validation = config.GetBool("validation", true);
  out.config.page_cache_bytes = config.GetBytes("page_cache", 0);
  out.config.fixed_producers = static_cast<std::uint32_t>(
      config.GetInt("fixed_producers", 0));
  out.config.fixed_buffer =
      static_cast<std::size_t>(config.GetInt("fixed_buffer", 0));
  return out;
}

RunResult RunOnce(const CliExperiment& experiment, int run) {
  ExperimentConfig cfg = experiment.config;
  cfg.seed += static_cast<std::uint64_t>(run) * 7919;
  switch (experiment.pipeline) {
    case PipelineKind::kTfBaseline: return RunTfBaseline(cfg);
    case PipelineKind::kTfOptimized: return RunTfOptimized(cfg);
    case PipelineKind::kPrismaTf: return RunPrismaTf(cfg);
    case PipelineKind::kTorch: return RunTorch(cfg, experiment.workers);
    case PipelineKind::kPrismaTorch:
      return RunPrismaTorch(cfg, experiment.workers);
  }
  return RunResult{};
}

}  // namespace prisma::baselines
