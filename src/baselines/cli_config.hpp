// Config-file / key=value front-end for the experiment pipelines — the
// parsing layer behind tools/prisma_sim. Kept in the library so it is
// unit-testable without spawning the binary.
//
// Recognized keys (all optional; defaults in parentheses):
//   pipeline = tf_baseline | tf_optimized | prisma_tf | torch |
//              prisma_torch                       (prisma_tf)
//   model    = lenet | alexnet | resnet50         (lenet)
//   batch    = global batch size                  (256)
//   epochs   = training epochs                    (10)
//   scale    = dataset divisor                    (100)
//   seed     = base RNG seed                      (1)
//   runs     = seeds per configuration            (1)
//   workers  = PyTorch workers (torch pipelines)  (4)
//   validation = bool                             (true)
//   page_cache = byte size ("8GiB")               (0)
//   fixed_producers / fixed_buffer = pin (t, N)   (0 = auto-tune)
//   stage_pipeline = '|'-separated optimization-object chain,
//              outermost first ("prefetch|tiering")  (prefetch)
//   tiering.durable = bool — persistent fast tier that survives
//              restarts (requires tiering.fast_tier_path)  (false)
//   tiering.fast_tier_path = directory backing the durable fast tier
//   tiering.fast_tier_capacity = byte size ("256MiB")  (1GiB)
#pragma once

#include <string>
#include <vector>

#include "baselines/experiment.hpp"
#include "common/config.hpp"
#include "dataplane/pipeline_builder.hpp"

namespace prisma::baselines {

enum class PipelineKind {
  kTfBaseline,
  kTfOptimized,
  kPrismaTf,
  kTorch,
  kPrismaTorch,
};

struct CliExperiment {
  PipelineKind pipeline = PipelineKind::kPrismaTf;
  ExperimentConfig config;
  std::size_t workers = 4;  // torch pipelines only
  int runs = 1;
  /// Validated `stage_pipeline` spec (see dataplane/pipeline_builder.hpp)
  /// and its parsed layer names, outermost first. The DES pipelines model
  /// a single prefetch layer; experiment front-ends that host a live
  /// Stage hand this to BuildStagePipeline.
  std::string stage_pipeline = "prefetch";
  std::vector<std::string> pipeline_layers = {"prefetch"};
  /// Per-layer construction options for BuildStagePipeline, populated
  /// from the tiering.* keys (durable, fast_tier_path,
  /// fast_tier_capacity). The DES pipelines ignore these; live-stage
  /// front-ends pass them through verbatim.
  dataplane::PipelineOptions pipeline_options;
};

/// Stable name of a pipeline (for output headers).
std::string_view PipelineName(PipelineKind kind);

/// Builds an experiment from parsed configuration. InvalidArgument on
/// unknown pipeline/model names or out-of-range numerics.
Result<CliExperiment> ParseExperiment(const Config& config);

/// Runs the experiment once with the config's seed offset by `run`.
RunResult RunOnce(const CliExperiment& experiment, int run);

}  // namespace prisma::baselines
