#include "baselines/experiment.hpp"

namespace prisma::baselines {

storage::ImageNetDataset MakeDataset(const ExperimentConfig& cfg) {
  storage::SyntheticImageNetSpec spec;
  spec.seed = 42;  // fixed: identical file population across pipelines
  return storage::MakeSyntheticImageNet(spec.Scaled(cfg.scale));
}

std::unordered_map<std::string, std::uint64_t> BuildSizeMap(
    const storage::ImageNetDataset& ds) {
  std::unordered_map<std::string, std::uint64_t> sizes;
  sizes.reserve(ds.train.NumFiles() + ds.validation.NumFiles());
  for (const auto& f : ds.train.files()) sizes[f.name] = f.size;
  for (const auto& f : ds.validation.files()) sizes[f.name] = f.size;
  return sizes;
}

}  // namespace prisma::baselines
