// libprisma_shim.so — LD_PRELOAD interception data plane.
//
// Routes POSIX file I/O on a configured path prefix through a PRISMA UDS
// server, with zero changes to the application binary. This is the most
// transparent of the three integration mechanisms (TF adapter, Torch
// client, shim) and demonstrates the framework-agnostic claim literally:
// any process whose reads fall under the prefix is accelerated.
//
// Environment:
//   PRISMA_SHIM_SOCKET  — UDS path of the PRISMA server (required)
//   PRISMA_SHIM_PREFIX  — path prefix to intercept (required)
//
// Intercepted: open, open64, openat, read, pread, pread64, lseek,
// lseek64, close, and size queries via fstat/stat. Matching opens return
// a real descriptor (an O_CLOEXEC dup of /dev/null) so the fd number is
// unique and close() composes with the libc allocator; the shim keeps a
// side table fd -> {path, offset, size}.
//
// Thread-safety: the side table is mutex-guarded; each thread lazily
// opens its own UdsClient (the client is intentionally per-thread, as in
// the paper's per-worker client design).

#include <dlfcn.h>
#include <fcntl.h>
#include <stdarg.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>

#include "common/mutex.hpp"
#include "ipc/uds_client.hpp"

namespace {

using prisma::ipc::UdsClient;

// --- real libc entry points -------------------------------------------------

using OpenFn = int (*)(const char*, int, ...);
using OpenatFn = int (*)(int, const char*, int, ...);
using ReadFn = ssize_t (*)(int, void*, size_t);
using PreadFn = ssize_t (*)(int, void*, size_t, off_t);
using LseekFn = off_t (*)(int, off_t, int);
using CloseFn = int (*)(int);
using FstatFn = int (*)(int, struct stat*);
using StatFn = int (*)(const char*, struct stat*);

template <typename Fn>
Fn Real(const char* name) {
  static_assert(sizeof(Fn) == sizeof(void*));
  void* sym = ::dlsym(RTLD_NEXT, name);
  Fn fn;
  std::memcpy(&fn, &sym, sizeof(fn));
  return fn;
}

OpenFn real_open() { static OpenFn fn = Real<OpenFn>("open"); return fn; }
OpenatFn real_openat() { static OpenatFn fn = Real<OpenatFn>("openat"); return fn; }
ReadFn real_read() { static ReadFn fn = Real<ReadFn>("read"); return fn; }
PreadFn real_pread() { static PreadFn fn = Real<PreadFn>("pread"); return fn; }
LseekFn real_lseek() { static LseekFn fn = Real<LseekFn>("lseek"); return fn; }
CloseFn real_close() { static CloseFn fn = Real<CloseFn>("close"); return fn; }
FstatFn real_fstat() { static FstatFn fn = Real<FstatFn>("fstat"); return fn; }
StatFn real_stat() { static StatFn fn = Real<StatFn>("stat"); return fn; }

// --- shim state --------------------------------------------------------------

struct TrackedFile {
  std::string path;   // server-side name (prefix stripped)
  off_t offset = 0;
  off_t size = -1;    // lazily fetched
};

struct ShimState {
  // prisma-lint: unguarded(written once in the State() initializer before any interposed call)
  std::string socket_path;
  // prisma-lint: unguarded(written once in the State() initializer before any interposed call)
  std::string prefix;
  // prisma-lint: unguarded(written once in the State() initializer before any interposed call)
  bool enabled = false;

  prisma::Mutex mu{prisma::LockRank::kLeaf};
  std::unordered_map<int, TrackedFile> files GUARDED_BY(mu);
};

ShimState& State() {
  static ShimState& state = [ated = new ShimState()]() -> ShimState& {
    ShimState& s = *ated;
    const char* sock = std::getenv("PRISMA_SHIM_SOCKET");
    const char* prefix = std::getenv("PRISMA_SHIM_PREFIX");
    if (sock != nullptr && prefix != nullptr && sock[0] != '\0' &&
        prefix[0] != '\0') {
      s.socket_path = sock;
      s.prefix = prefix;
      s.enabled = true;
    }
    return s;  // leaked intentionally: shim state must outlive atexit I/O
  }();
  return state;
}

/// Per-thread client, lazily connected. Returns nullptr on failure so
/// callers can fall back to real I/O.
UdsClient* ThreadClient() {
  thread_local UdsClient client;
  thread_local bool attempted = false;
  if (!client.Connected()) {
    if (attempted) return nullptr;
    attempted = true;
    if (!client.Connect(State().socket_path).ok()) return nullptr;
  }
  return &client;
}

/// If `path` falls under the prefix, returns the server-side remainder.
bool MatchPrefix(const char* path, std::string* remainder) {
  ShimState& s = State();
  if (!s.enabled || path == nullptr) return false;
  const size_t plen = s.prefix.size();
  if (std::strncmp(path, s.prefix.c_str(), plen) != 0) return false;
  const char* rest = path + plen;
  while (*rest == '/') ++rest;  // tolerate "prefix/" vs "prefix"
  *remainder = rest;
  return !remainder->empty();
}

int OpenTracked(const std::string& remainder) {
  // Reserve a genuine descriptor slot so fd numbers never collide with
  // libc-allocated ones.
  const int fd = real_open()("/dev/null", O_RDONLY | O_CLOEXEC);
  if (fd < 0) return -1;
  ShimState& s = State();
  prisma::MutexLock lock(s.mu);
  s.files[fd] = TrackedFile{remainder, 0, -1};
  return fd;
}

/// Copies the tracked entry if fd is ours.
bool LookupTracked(int fd, TrackedFile* out) {
  ShimState& s = State();
  prisma::MutexLock lock(s.mu);
  const auto it = s.files.find(fd);
  if (it == s.files.end()) return false;
  *out = it->second;
  return true;
}

void UpdateOffset(int fd, off_t offset) {
  ShimState& s = State();
  prisma::MutexLock lock(s.mu);
  const auto it = s.files.find(fd);
  if (it != s.files.end()) it->second.offset = offset;
}

void UpdateSize(int fd, off_t size) {
  ShimState& s = State();
  prisma::MutexLock lock(s.mu);
  const auto it = s.files.find(fd);
  if (it != s.files.end()) it->second.size = size;
}

off_t FetchSize(int fd, const TrackedFile& tf) {
  if (tf.size >= 0) return tf.size;
  UdsClient* client = ThreadClient();
  if (client == nullptr) return -1;
  const auto size = client->FileSize(tf.path);
  if (!size.ok()) return -1;
  UpdateSize(fd, static_cast<off_t>(*size));
  return static_cast<off_t>(*size);
}

ssize_t RemoteRead(int fd, const TrackedFile& tf, void* buf, size_t count,
                   off_t offset, bool advance) {
  UdsClient* client = ThreadClient();
  if (client == nullptr) {
    errno = EIO;
    return -1;
  }
  const auto n = client->Read(
      tf.path, static_cast<std::uint64_t>(offset),
      std::span<std::byte>(static_cast<std::byte*>(buf), count));
  if (!n.ok()) {
    errno = EIO;
    return -1;
  }
  if (advance) UpdateOffset(fd, offset + static_cast<off_t>(*n));
  return static_cast<ssize_t>(*n);
}

}  // namespace

// --- interposed symbols -------------------------------------------------------

extern "C" {

int open(const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  std::string remainder;
  if ((flags & O_ACCMODE) == O_RDONLY && MatchPrefix(path, &remainder)) {
    const int fd = OpenTracked(remainder);
    if (fd >= 0) return fd;
    // fall through to real open on tracking failure
  }
  return real_open()(path, flags, mode);
}

int open64(const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  std::string remainder;
  if ((flags & O_ACCMODE) == O_RDONLY && MatchPrefix(path, &remainder)) {
    const int fd = OpenTracked(remainder);
    if (fd >= 0) return fd;
  }
  return real_open()(path, flags | O_LARGEFILE, mode);
}

int openat(int dirfd, const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  // Only absolute paths (dirfd-independent) are eligible for routing.
  std::string remainder;
  if (path[0] == '/' && (flags & O_ACCMODE) == O_RDONLY &&
      MatchPrefix(path, &remainder)) {
    const int fd = OpenTracked(remainder);
    if (fd >= 0) return fd;
  }
  return real_openat()(dirfd, path, flags, mode);
}

ssize_t read(int fd, void* buf, size_t count) {
  TrackedFile tf;
  if (LookupTracked(fd, &tf)) {
    return RemoteRead(fd, tf, buf, count, tf.offset, /*advance=*/true);
  }
  return real_read()(fd, buf, count);
}

ssize_t pread(int fd, void* buf, size_t count, off_t offset) {
  TrackedFile tf;
  if (LookupTracked(fd, &tf)) {
    return RemoteRead(fd, tf, buf, count, offset, /*advance=*/false);
  }
  return real_pread()(fd, buf, count, offset);
}

ssize_t pread64(int fd, void* buf, size_t count, off_t offset) {
  return pread(fd, buf, count, offset);
}

off_t lseek(int fd, off_t offset, int whence) {
  TrackedFile tf;
  if (LookupTracked(fd, &tf)) {
    off_t base = 0;
    switch (whence) {
      case SEEK_SET: base = 0; break;
      case SEEK_CUR: base = tf.offset; break;
      case SEEK_END: {
        const off_t size = FetchSize(fd, tf);
        if (size < 0) {
          errno = EIO;
          return -1;
        }
        base = size;
        break;
      }
      default:
        errno = EINVAL;
        return -1;
    }
    const off_t target = base + offset;
    if (target < 0) {
      errno = EINVAL;
      return -1;
    }
    UpdateOffset(fd, target);
    return target;
  }
  return real_lseek()(fd, offset, whence);
}

off_t lseek64(int fd, off_t offset, int whence) {
  return lseek(fd, offset, whence);
}

int close(int fd) {
  {
    ShimState& s = State();
    prisma::MutexLock lock(s.mu);
    s.files.erase(fd);
  }
  return real_close()(fd);
}

int fstat(int fd, struct stat* st) {
  TrackedFile tf;
  if (LookupTracked(fd, &tf)) {
    std::memset(st, 0, sizeof(*st));
    const off_t size = FetchSize(fd, tf);
    if (size < 0) {
      errno = EIO;
      return -1;
    }
    st->st_size = size;
    st->st_mode = S_IFREG | 0444;
    st->st_blksize = 4096;
    st->st_blocks = (size + 511) / 512;
    return 0;
  }
  return real_fstat()(fd, st);
}

int stat(const char* path, struct stat* st) {
  std::string remainder;
  if (MatchPrefix(path, &remainder)) {
    UdsClient* client = ThreadClient();
    if (client == nullptr) {
      errno = EIO;
      return -1;
    }
    const auto size = client->FileSize(remainder);
    if (!size.ok()) {
      errno = ENOENT;
      return -1;
    }
    std::memset(st, 0, sizeof(*st));
    st->st_size = static_cast<off_t>(*size);
    st->st_mode = S_IFREG | 0444;
    st->st_blksize = 4096;
    st->st_blocks = (st->st_size + 511) / 512;
    return 0;
  }
  return real_stat()(path, st);
}

}  // extern "C"
