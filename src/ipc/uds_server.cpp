#include "ipc/uds_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/hot_path.hpp"
#include "common/logging.hpp"

namespace prisma::ipc {

// Per-connection reactor state machine. All non-atomic fields are owned
// by the connection's event loop thread; cross-thread completions (stage
// async reads, offloaded dispatches) re-enter through EventLoop::Post.
// One request is in flight per connection at a time (the protocol is
// strictly request/response in order), so recv, processing, and send
// phases never overlap.
struct UdsServer::Conn {
  UdsServer* server = nullptr;
  /// Keeps the engine object receivable for completions that outlive
  /// Stop(): Post to a stopped engine destroys the task, safely.
  std::shared_ptr<EventEngine> engine;
  EventLoop* loop = nullptr;
  std::atomic<int> fd{-1};

  // --- Loop-thread-only state -----------------------------------------
  FrameAssembler assembler;
  OpId recv_op = 0;
  OpId send_op = 0;
  int io_pending = 0;    // engine ops in flight (recv/send)
  bool in_stage = false; // a stage/offload operation is in flight
  bool closing = false;

  // Send phase: [framed header | payload]. The payload span aliases
  // either send_view (zero-copy buffered sample) or send_data/scratch.
  std::byte send_header[kFramedResponseHeaderBytes] = {};
  dataplane::SampleView send_view;   // payload keepalive for gather sends
  std::vector<std::byte> send_data;  // owned payloads (stats, errors)
  std::span<const std::byte> send_payload;
  std::size_t send_total = 0;
  std::size_t send_done = 0;

  std::vector<std::byte> scratch;  // pass-through staging, reused

  /// Close-once: whoever wins the exchange owns the ::close.
  void CloseFdOnce() {
    const int f = fd.exchange(-1, std::memory_order_acq_rel);
    if (f >= 0) ::close(f);
  }

  /// Completion cell for one engine op: owns a shared_ptr so the conn
  /// outlives its completions. One cell per submitted op.
  struct Cell {
    std::shared_ptr<Conn> conn;
  };

  /// Heap state of one in-flight kRead riding the stage's async path.
  /// The shared_ptr keeps the connection (and through it the engine)
  /// alive until the exactly-once completion lands, even if the server
  /// stopped.
  struct RefCtx {
    UdsServer* server = nullptr;
    std::shared_ptr<Conn> conn;
    Request req;
    Result<dataplane::SampleView> view = Status::Internal("pending");
  };
};

UdsServer::UdsServer(std::string socket_path,
                     std::shared_ptr<dataplane::Stage> stage)
    : UdsServer(std::move(socket_path), std::move(stage), Options{}) {}

UdsServer::UdsServer(std::string socket_path,
                     std::shared_ptr<dataplane::Stage> stage, Options options)
    : socket_path_(std::move(socket_path)),
      stage_(std::move(stage)),
      options_(options) {}

UdsServer::~UdsServer() { Stop(); }

Status UdsServer::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("server already running");
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    running_ = false;
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(socket_path_.c_str());  // stale socket from a previous run

  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s =
        Status::IoError("bind " + socket_path_ + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    return s;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status s = Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    return s;
  }

  engine_ = EventEngine::Create(options_.engine);
  if (Status s = engine_->Start(); !s.ok()) {
    engine_.reset();
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    return s;
  }
  // AsyncAccept is loop-thread-only; arm it from the loop.
  engine_->LoopAt(0).Post([this] { ArmAccept(); });
  return Status::Ok();
}

void UdsServer::Stop() {
  if (!running_.exchange(false)) return;
  // Engine Stop drains every pending operation — the accept, every recv
  // and send — with exactly one -ECANCELED completion each, running the
  // connection close paths on the loop threads, and joins the offload
  // pool after its queued dispatches finish. Deterministic and prompt:
  // nothing here waits on the stage's sample buffer.
  engine_->Stop();
  // Connections still parked on a stage operation never saw a
  // completion; claim and close them. Their eventual stage completions
  // hold their own shared_ptr references and Post into the stopped
  // engine, where the tasks are destroyed without running.
  std::unordered_map<Conn*, std::shared_ptr<Conn>> conns;
  {
    MutexLock lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& [ptr, conn] : conns) conn->CloseFdOnce();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
}

std::string_view UdsServer::engine_name() const {
  return engine_ != nullptr ? engine_->name() : std::string_view("none");
}

std::size_t UdsServer::server_threads() const {
  return engine_ != nullptr ? engine_->thread_count() : 0;
}

std::size_t UdsServer::active_connections() const {
  MutexLock lock(conns_mu_);
  return conns_.size();
}

void UdsServer::Unregister(Conn* conn) {
  std::shared_ptr<Conn> owned;
  {
    MutexLock lock(conns_mu_);
    auto it = conns_.find(conn);
    if (it == conns_.end()) return;  // Stop() claimed the registry
    owned = std::move(it->second);
    conns_.erase(it);
  }
  owned->CloseFdOnce();
}

// --- Accept path -------------------------------------------------------

void UdsServer::ArmAccept() {
  if (!running_.load(std::memory_order_acquire)) return;
  engine_->LoopAt(0).AsyncAccept(listen_fd_, {&UdsServer::OnAccept, this});
}

void UdsServer::OnAccept(void* ctx, int res) {
  auto* server = static_cast<UdsServer*>(ctx);
  if (res < 0) {
    // -ECANCELED is the engine draining at Stop; other errors (EMFILE,
    // peer reset before accept) re-arm and keep serving.
    if (res == -ECANCELED ||
        !server->running_.load(std::memory_order_acquire)) {
      return;
    }
    server->ArmAccept();
    return;
  }
  server->HandleAccepted(res);
  server->ArmAccept();
}

/// Finishes teardown once every engine op has completed (stage ops are
/// deliberately excluded: a request parked on the sample buffer must not
/// pin teardown — its completion finds the connection closed and drops).
void UdsServer::MaybeFinishClose(const std::shared_ptr<Conn>& conn) {
  if (!conn->closing || conn->io_pending > 0) return;
  conn->server->Unregister(conn.get());
}

void UdsServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->closing) return;
  conn->closing = true;
  if (conn->recv_op != 0) conn->loop->Cancel(conn->recv_op);
  if (conn->send_op != 0) conn->loop->Cancel(conn->send_op);
  // Drop payload references eagerly; the pooled bytes go back to their
  // free list without waiting for the registry erase.
  conn->send_view = dataplane::SampleView{};
  conn->send_payload = {};
  MaybeFinishClose(conn);
}

void UdsServer::StartRecv(const std::shared_ptr<Conn>& conn) {
  if (conn->closing) return;
  const auto window = conn->assembler.RecvWindow();
  ++conn->io_pending;
  conn->recv_op = conn->loop->AsyncRecvSome(
      conn->fd.load(std::memory_order_acquire), window,
      {&UdsServer::OnRecv, new Conn::Cell{conn}});
}

PRISMA_HOT_PATH
void UdsServer::OnRecv(void* ctx, int res) {
  std::unique_ptr<Conn::Cell> cell(static_cast<Conn::Cell*>(ctx));
  const auto& conn = cell->conn;
  --conn->io_pending;
  conn->recv_op = 0;
  if (conn->closing) {
    MaybeFinishClose(conn);
    return;
  }
  if (res <= 0) {
    // 0 = orderly peer close; < 0 = connection error or engine drain.
    // prisma-lint: allow(hot-path-purity, connection teardown: cancel
    // bookkeeping allocates once per close, never per served sample)
    CloseConn(conn);
    return;
  }
  if (!conn->assembler.Commit(static_cast<std::size_t>(res)).ok()) {
    // prisma-lint: allow(hot-path-purity, teardown on corrupt frame,
    // once per connection lifetime)
    CloseConn(conn);  // corrupt length prefix
    return;
  }
  if (!conn->assembler.HasFrame()) {
    // prisma-lint: allow(hot-path-purity, one completion cell per recv
    // op; freed by the exactly-once completion)
    StartRecv(conn);
    return;
  }
  auto req = DecodeRequest(conn->assembler.Frame());
  conn->assembler.Reset();
  if (!req.ok()) {
    // Malformed request: report the decode error in-band.
    EncodeFramedResponseHeader(conn->send_header, req.status().code(), 0, 0);
    conn->send_payload = {};
    conn->send_total = kFramedResponseHeaderBytes;
    conn->send_done = 0;
    SubmitSend(conn);
    return;
  }
  conn->server->RunRequest(conn, std::move(*req));
}

/// Arms the next gather send for whatever remains of the response.
PRISMA_HOT_PATH
void UdsServer::SubmitSend(const std::shared_ptr<Conn>& conn) {
  iovec iov[2];
  unsigned iov_count = 0;
  std::size_t skip = conn->send_done;
  if (skip < kFramedResponseHeaderBytes) {
    iov[iov_count].iov_base = conn->send_header + skip;
    iov[iov_count].iov_len = kFramedResponseHeaderBytes - skip;
    ++iov_count;
    skip = 0;
  } else {
    skip -= kFramedResponseHeaderBytes;
  }
  if (skip < conn->send_payload.size()) {
    iov[iov_count].iov_base =
        const_cast<std::byte*>(conn->send_payload.data() + skip);
    iov[iov_count].iov_len = conn->send_payload.size() - skip;
    ++iov_count;
  }
  ++conn->io_pending;
  conn->send_op = conn->loop->AsyncSendSome(
      conn->fd.load(std::memory_order_acquire), iov, iov_count,
      // prisma-lint: allow(hot-path-purity, one completion cell per
      // send op; freed by the exactly-once completion)
      {&UdsServer::OnSend, new Conn::Cell{conn}});
}

PRISMA_HOT_PATH
void UdsServer::OnSend(void* ctx, int res) {
  std::unique_ptr<Conn::Cell> cell(static_cast<Conn::Cell*>(ctx));
  const auto& conn = cell->conn;
  --conn->io_pending;
  conn->send_op = 0;
  if (conn->closing) {
    MaybeFinishClose(conn);
    return;
  }
  if (res < 0) {
    // prisma-lint: allow(hot-path-purity, connection teardown: cancel
    // bookkeeping allocates once per close, never per served sample)
    CloseConn(conn);
    return;
  }
  conn->send_done += static_cast<std::size_t>(res);
  if (conn->send_done < conn->send_total) {
    // Partial send (socket buffer full): resubmit the remainder — this
    // is the reactor's backpressure loop, no thread parks.
    SubmitSend(conn);
    return;
  }
  // Response fully shipped: release the payload reference and pipeline
  // the next request.
  conn->send_view = dataplane::SampleView{};
  conn->send_payload = {};
  conn->send_data.clear();
  conn->server->requests_served_.fetch_add(1, std::memory_order_relaxed);
  // prisma-lint: allow(hot-path-purity, one completion cell per recv
  // op; freed by the exactly-once completion)
  StartRecv(conn);
}

/// Begins a response send (loop thread). `payload` must alias storage
/// that lives in the conn (send_view / send_data / scratch).
void UdsServer::StartSend(const std::shared_ptr<Conn>& conn, StatusCode code,
                          std::uint64_t value,
                          std::span<const std::byte> payload) {
  EncodeFramedResponseHeader(conn->send_header, code, value,
                             static_cast<std::uint32_t>(payload.size()));
  conn->send_payload = payload;
  conn->send_total = kFramedResponseHeaderBytes + payload.size();
  conn->send_done = 0;
  SubmitSend(conn);
}

void UdsServer::HandleAccepted(int fd) {
  if (!running_.load(std::memory_order_acquire)) {
    ::close(fd);
    return;
  }
  auto conn = std::make_shared<Conn>();
  conn->server = this;
  conn->engine = engine_;
  const std::size_t idx =
      next_loop_.fetch_add(1, std::memory_order_relaxed) %
      engine_->worker_count();
  conn->loop = &engine_->LoopAt(idx);
  conn->fd.store(fd, std::memory_order_release);
  {
    MutexLock lock(conns_mu_);
    conns_.emplace(conn.get(), conn);
  }
  // The conn's state machine runs on its own loop; hop there to arm the
  // first recv (we are on loop 0, the accept loop).
  conn->loop->Post([conn] { StartRecv(conn); });
}

PRISMA_HOT_PATH
void UdsServer::RunRequest(const std::shared_ptr<Conn>& conn, Request req) {
  if (req.op == Op::kPing) {
    // prisma-lint: allow(hot-path-purity, one completion cell per send
    // op; freed by the exactly-once completion)
    StartSend(conn, StatusCode::kOk, 0, {});
    return;
  }
  if (req.op == Op::kRead) {
    if (req.length > kMaxFrameBytes / 2) {
      // prisma-lint: allow(hot-path-purity, error reply, once per
      // malformed request)
      StartSend(conn, StatusCode::kInvalidArgument, 0, {});
      return;
    }
    conn->in_stage = true;
    // Zero-copy fast path: the stage's async ReadRef completes from the
    // delivering producer when the sample is still in flight — no
    // parked thread, and the payload travels by reference to the
    // gather-send.
    // prisma-lint: allow(hot-path-purity, one state record per in-flight
    // request; freed by the exactly-once completion)
    auto* rc = new Conn::RefCtx{this, conn, std::move(req)};
    stage_->ReadRefAsync(rc->req.path, rc->req.offset,
                         static_cast<std::size_t>(rc->req.length),
                         engine_->Offload(), {&UdsServer::OnReadRef, rc});
    return;
  }
  // Control-plane ops (FileSize, BeginEpoch, Stats) call into the stage
  // and may block; they run on the bounded offload pool.
  conn->in_stage = true;
  // prisma-lint: allow(hot-path-purity, control-plane ops are rare;
  // the future state is one allocation per FileSize/BeginEpoch/Stats)
  engine_->Offload().Submit([this, conn, req = std::move(req)] {
    Response resp = Dispatch(req);
    conn->loop->Post([conn, resp = std::move(resp)] {
      conn->in_stage = false;
      if (conn->closing) {
        MaybeFinishClose(conn);
        return;
      }
      conn->send_data = std::move(resp.data);
      StartSend(conn, resp.code, resp.value, conn->send_data);
    });
  });
}

// prisma-lint: allow(no-payload-copy, waiter callback signature: the
// view arrives by value because it is refcounted, not deep-copied)
void UdsServer::OnReadRef(void* ctx, Result<dataplane::SampleView> view) {
  // Runs on whatever thread made the bytes available (the calling loop
  // thread for resident samples, a producer for in-flight ones, the
  // offload pool for fallbacks). Hop to the connection's loop; if the
  // engine has stopped, the Post destroys the task and the shared_ptr
  // references unwind the connection.
  auto* rc = static_cast<Conn::RefCtx*>(ctx);
  rc->view = std::move(view);
  std::shared_ptr<Conn::RefCtx> owned(rc);
  EventLoop* loop = rc->conn->loop;
  loop->Post([owned] {
    const auto& conn = owned->conn;
    conn->in_stage = false;
    if (conn->closing) {
      MaybeFinishClose(conn);
      return;
    }
    if (owned->view.ok()) {
      conn->send_view = std::move(*owned->view);
      StartSend(conn, StatusCode::kOk, conn->send_view.length,
                conn->send_view.data());
      return;
    }
    if (owned->view.status().code() != StatusCode::kFailedPrecondition) {
      StartSend(conn, owned->view.status().code(), 0, {});
      return;
    }
    // Unannounced path or failed-over sample: blocking pass-through.
    owned->server->PassThroughRead(conn, owned->req);
  });
}

void UdsServer::PassThroughRead(const std::shared_ptr<Conn>& conn,
                                const Request& req) {
  conn->in_stage = true;
  engine_->Offload().Submit([this, conn, req] {
    // Clamp the staging allocation to the bytes the file can actually
    // yield — a huge req.length must not force a huge buffer.
    StatusCode code = StatusCode::kOk;
    std::size_t n = 0;
    const auto size = stage_->FileSize(req.path);
    if (!size.ok()) {
      code = size.status().code();
    } else {
      const std::uint64_t avail =
          req.offset < *size ? *size - req.offset : 0;
      const auto want =
          static_cast<std::size_t>(std::min<std::uint64_t>(req.length, avail));
      if (conn->scratch.size() < want) conn->scratch.resize(want);
      auto got = stage_->Read(req.path, req.offset,
                              std::span(conn->scratch).first(want));
      if (!got.ok()) {
        code = got.status().code();
      } else {
        n = *got;
      }
    }
    conn->loop->Post([conn, code, n] {
      conn->in_stage = false;
      if (conn->closing) {
        MaybeFinishClose(conn);
        return;
      }
      if (code != StatusCode::kOk) {
        StartSend(conn, code, 0, {});
        return;
      }
      StartSend(conn, StatusCode::kOk, n,
                std::span<const std::byte>(conn->scratch).first(n));
    });
  });
}

Response UdsServer::Dispatch(const Request& req) {
  Response resp;
  switch (req.op) {
    case Op::kPing:
      break;
    case Op::kRead:
      // Handled by RunRequest's async path (needs the connection for the
      // zero-copy send).
      resp.code = StatusCode::kInternal;
      break;
    case Op::kFileSize: {
      auto size = stage_->FileSize(req.path);
      if (!size.ok()) {
        resp.code = size.status().code();
        break;
      }
      resp.value = *size;
      break;
    }
    case Op::kBeginEpoch: {
      const Status s = stage_->BeginEpoch(req.epoch, req.names);
      resp.code = s.code();
      break;
    }
    case Op::kStats: {
      const auto stats = stage_->CollectStats();
      // Versioned payload: 24-byte legacy prefix (producers, capacity,
      // occupancy — all old clients parse) + per-object sections (v2).
      resp.value = stats.samples_consumed;
      resp.data = EncodeStatsPayload(stats);
      break;
    }
  }
  return resp;
}

}  // namespace prisma::ipc
