#include "ipc/uds_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.hpp"

namespace prisma::ipc {

UdsServer::UdsServer(std::string socket_path,
                     std::shared_ptr<dataplane::Stage> stage)
    : socket_path_(std::move(socket_path)), stage_(std::move(stage)) {}

UdsServer::~UdsServer() { Stop(); }

Status UdsServer::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("server already running");
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    running_ = false;
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(socket_path_.c_str());  // stale socket from a previous run

  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s =
        Status::IoError("bind " + socket_path_ + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    return s;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status s = Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    return s;
  }

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void UdsServer::Stop() {
  if (!running_.exchange(false)) return;
  // Shut the listening socket down; accept() returns with an error.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> handlers;
  {
    std::lock_guard lock(conns_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    handlers.swap(handlers_);
  }
  for (auto& h : handlers) {
    if (h.joinable()) h.join();
  }
  {
    std::lock_guard lock(conns_mu_);
    for (const int fd : conn_fds_) ::close(fd);
    conn_fds_.clear();
  }
  ::unlink(socket_path_.c_str());
}

void UdsServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket closed by Stop()
    }
    std::lock_guard lock(conns_mu_);
    conn_fds_.push_back(fd);
    handlers_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void UdsServer::HandleConnection(int fd) {
  while (running_.load(std::memory_order_acquire)) {
    auto frame = ReadFrame(fd);
    if (!frame.ok()) break;  // peer closed or connection error
    auto req = DecodeRequest(*frame);
    Response resp;
    if (!req.ok()) {
      resp.code = req.status().code();
    } else {
      resp = Dispatch(*req);
    }
    if (!WriteFrame(fd, EncodeResponse(resp)).ok()) break;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
  }
  // fd is closed centrally in Stop(); closing here too would double-close,
  // so only mark it by shutting down our end.
  ::shutdown(fd, SHUT_RDWR);
}

Response UdsServer::Dispatch(const Request& req) {
  Response resp;
  switch (req.op) {
    case Op::kPing:
      break;
    case Op::kRead: {
      if (req.length > kMaxFrameBytes / 2) {
        resp.code = StatusCode::kInvalidArgument;
        break;
      }
      resp.data.resize(static_cast<std::size_t>(req.length));
      auto n = stage_->Read(req.path, req.offset, resp.data);
      if (!n.ok()) {
        resp.code = n.status().code();
        resp.data.clear();
        break;
      }
      resp.data.resize(*n);
      resp.value = *n;
      break;
    }
    case Op::kFileSize: {
      auto size = stage_->FileSize(req.path);
      if (!size.ok()) {
        resp.code = size.status().code();
        break;
      }
      resp.value = *size;
      break;
    }
    case Op::kBeginEpoch: {
      const Status s = stage_->BeginEpoch(req.epoch, req.names);
      resp.code = s.code();
      break;
    }
    case Op::kStats: {
      const auto stats = stage_->CollectStats();
      // Pack a compact subset: producers, capacity, occupancy, consumed.
      resp.value = stats.samples_consumed;
      resp.data.reserve(3 * 8);
      const std::uint64_t fields[3] = {stats.producers, stats.buffer_capacity,
                                       stats.buffer_occupancy};
      for (const std::uint64_t f : fields) {
        for (int i = 0; i < 8; ++i) {
          resp.data.push_back(static_cast<std::byte>((f >> (8 * i)) & 0xff));
        }
      }
      break;
    }
  }
  return resp;
}

std::size_t UdsServer::active_connections() const {
  std::lock_guard lock(conns_mu_);
  return conn_fds_.size();
}

}  // namespace prisma::ipc
