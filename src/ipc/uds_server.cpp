#include "ipc/uds_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/hot_path.hpp"
#include "common/logging.hpp"

namespace prisma::ipc {

UdsServer::UdsServer(std::string socket_path,
                     std::shared_ptr<dataplane::Stage> stage)
    : socket_path_(std::move(socket_path)), stage_(std::move(stage)) {}

UdsServer::~UdsServer() { Stop(); }

Status UdsServer::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("server already running");
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    running_ = false;
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(socket_path_.c_str());  // stale socket from a previous run

  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s =
        Status::IoError("bind " + socket_path_ + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    return s;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status s = Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    return s;
  }

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void UdsServer::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the accept loop with shutdown (blocked accept4 returns EINVAL),
  // but close and clear the fd only after the join: the loop reads
  // listen_fd_, and closing early would let the kernel hand the number
  // to someone else while accept4 still uses it.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Claim every live connection, then tear down outside the lock: the
  // shutdown wakes handlers blocked in ReadFrame, the join waits for
  // them to finish, and the close happens only after the join so no
  // handler ever reads a closed (possibly reused) descriptor.
  std::unordered_map<int, std::thread> conns;
  std::vector<std::thread> finished;
  {
    MutexLock lock(conns_mu_);
    conns.swap(conns_);
    finished.swap(finished_);
    for (const auto& [fd, thread] : conns) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& [fd, thread] : conns) {
    if (thread.joinable()) thread.join();
    ::close(fd);
  }
  for (auto& thread : finished) {
    if (thread.joinable()) thread.join();
  }
  ::unlink(socket_path_.c_str());
}

void UdsServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket closed by Stop()
    }
    // Reap handlers that ended on natural disconnects so neither the
    // thread handles nor the map grow with connection churn. Claim the
    // handles under the lock, join after releasing it: the joins are
    // near-instant (those threads have already returned), but a join is
    // still a blocking call, and a handler finishing right now needs
    // conns_mu_ to park itself in finished_.
    std::vector<std::thread> finished;
    {
      MutexLock lock(conns_mu_);
      finished.swap(finished_);
      // The handler may look itself up immediately; it blocks on
      // conns_mu_ until this insertion is published.
      conns_.emplace(fd, std::thread([this, fd] { HandleConnection(fd); }));
    }
    for (auto& thread : finished) {
      if (thread.joinable()) thread.join();
    }
  }
}

void UdsServer::HandleConnection(int fd) {
  // Pass-through reads for this connection land here; reusing the vector
  // across requests keeps the fallback path allocation-free at steady
  // state.
  std::vector<std::byte> scratch;
  while (running_.load(std::memory_order_acquire)) {
    auto frame = ReadFrame(fd);
    if (!frame.ok()) break;  // peer closed or connection error
    auto req = DecodeRequest(*frame);
    Status sent = Status::Ok();
    if (!req.ok()) {
      sent = WriteResponseFrame(fd, req.status().code(), 0, {});
    } else if (req->op == Op::kRead) {
      sent = HandleRead(fd, *req, scratch);
    } else {
      const Response resp = Dispatch(*req);
      sent = WriteResponseFrame(fd, resp.code, resp.value, resp.data);
    }
    if (!sent.ok()) break;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
  }
  // Natural disconnect: remove our entry and close the fd; the accept
  // loop joins the parked thread handle later. If the entry is gone,
  // Stop() claimed the map and owns both the join and the close.
  MutexLock lock(conns_mu_);
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  finished_.push_back(std::move(it->second));
  conns_.erase(it);
  ::close(fd);
}

PRISMA_HOT_PATH
Status UdsServer::HandleRead(int fd, const Request& req,
                             std::vector<std::byte>& scratch) {
  if (req.length > kMaxFrameBytes / 2) {
    return WriteResponseFrame(fd, StatusCode::kInvalidArgument, 0, {});
  }
  // Zero-copy fast path: a buffered sample is served by reference — the
  // view's refcount keeps the payload alive through the sendmsg, so the
  // bytes go from the producer's pooled buffer straight to the socket.
  auto view = stage_->ReadRef(req.path, req.offset,
                              static_cast<std::size_t>(req.length));
  if (view.ok()) {
    const auto data = view->data();
    return WriteResponseFrame(fd, StatusCode::kOk, data.size(), data);
  }
  if (view.status().code() != StatusCode::kFailedPrecondition) {
    return WriteResponseFrame(fd, view.status().code(), 0, {});
  }
  // prisma-lint: allow(hot-path-purity, pass-through fallback: only
  // unannounced paths and failed-over samples land here, and the scratch
  // buffer amortizes to its high-water mark)
  return HandleReadPassThrough(fd, req, scratch);
}

Status UdsServer::HandleReadPassThrough(int fd, const Request& req,
                                        std::vector<std::byte>& scratch) {
  // Clamp the staging allocation to the bytes the file can actually
  // yield — a huge req.length must not force a huge buffer.
  const auto size = stage_->FileSize(req.path);
  if (!size.ok()) {
    return WriteResponseFrame(fd, size.status().code(), 0, {});
  }
  const std::uint64_t avail = req.offset < *size ? *size - req.offset : 0;
  const auto want =
      static_cast<std::size_t>(std::min<std::uint64_t>(req.length, avail));
  if (scratch.size() < want) scratch.resize(want);
  auto n = stage_->Read(req.path, req.offset, std::span(scratch).first(want));
  if (!n.ok()) {
    return WriteResponseFrame(fd, n.status().code(), 0, {});
  }
  return WriteResponseFrame(fd, StatusCode::kOk, *n,
                            std::span<const std::byte>(scratch).first(*n));
}

Response UdsServer::Dispatch(const Request& req) {
  Response resp;
  switch (req.op) {
    case Op::kPing:
      break;
    case Op::kRead:
      // Handled by HandleRead (needs the fd for the zero-copy send).
      resp.code = StatusCode::kInternal;
      break;
    case Op::kFileSize: {
      auto size = stage_->FileSize(req.path);
      if (!size.ok()) {
        resp.code = size.status().code();
        break;
      }
      resp.value = *size;
      break;
    }
    case Op::kBeginEpoch: {
      const Status s = stage_->BeginEpoch(req.epoch, req.names);
      resp.code = s.code();
      break;
    }
    case Op::kStats: {
      const auto stats = stage_->CollectStats();
      // Versioned payload: 24-byte legacy prefix (producers, capacity,
      // occupancy — all old clients parse) + per-object sections (v2).
      resp.value = stats.samples_consumed;
      resp.data = EncodeStatsPayload(stats);
      break;
    }
  }
  return resp;
}

std::size_t UdsServer::active_connections() const {
  MutexLock lock(conns_mu_);
  return conns_.size();
}

}  // namespace prisma::ipc
