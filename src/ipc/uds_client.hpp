// PRISMA UDS client — the per-worker-process handle the PyTorch-style
// integration instantiates ("for each spawned process, a PRISMA client
// instance is created to intercept all read invocations and submit them
// to the server", paper §IV).
//
// A client owns one connection and is NOT thread-safe (each worker
// process/thread creates its own, as in the paper's design).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"
#include "ipc/wire.hpp"

namespace prisma::ipc {

class UdsClient {
 public:
  UdsClient() = default;
  ~UdsClient();

  UdsClient(const UdsClient&) = delete;
  UdsClient& operator=(const UdsClient&) = delete;
  UdsClient(UdsClient&& other) noexcept;
  UdsClient& operator=(UdsClient&& other) noexcept;

  /// Connects, retrying until `timeout` elapses (server may still be
  /// binding when workers fork).
  Status Connect(const std::string& socket_path, Millis timeout = Millis{2000});

  bool Connected() const { return fd_ >= 0; }
  void Close();

  /// Round-trip no-op (liveness probe).
  Status Ping();

  /// Reads up to dst.size() bytes of `path` at `offset` via the server.
  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst);

  /// Whole file, sized via FileSize.
  Result<std::vector<std::byte>> ReadAll(const std::string& path);

  Result<std::uint64_t> FileSize(const std::string& path);

  /// Announces the epoch's file order to the server's stage.
  Status BeginEpoch(std::uint64_t epoch, const std::vector<std::string>& names);

  struct RemoteStats {
    std::uint64_t samples_consumed = 0;
    std::uint64_t producers = 0;
    std::uint64_t buffer_capacity = 0;
    std::uint64_t buffer_occupancy = 0;
    /// Per-object sections of the server's pipeline (stats payload v2);
    /// empty when talking to a v1 server.
    std::vector<dataplane::ObjectStatsSection> objects;
  };
  Result<RemoteStats> Stats();

 private:
  Result<Response> RoundTrip(const Request& req);

  int fd_ = -1;
};

}  // namespace prisma::ipc
