// PRISMA UDS server: exposes one data-plane stage to external worker
// *processes* (the PyTorch integration of paper §IV). Each accepted
// connection gets a handler thread; requests on a connection are served
// in order. The stage itself is shared — its SampleBuffer lock is the
// synchronization point the paper identifies as the 8+-worker bottleneck.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "dataplane/stage.hpp"
#include "ipc/wire.hpp"

namespace prisma::ipc {

class UdsServer {
 public:
  UdsServer(std::string socket_path, std::shared_ptr<dataplane::Stage> stage);
  ~UdsServer();

  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  /// Binds, listens, and spawns the accept loop.
  Status Start();

  /// Stops accepting, closes all connections, joins all threads.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  std::size_t active_connections() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// kRead: serves the buffered sample by reference (scatter-gather send
  /// of header + payload, no intermediate buffer); pass-through reads
  /// land in `scratch`, clamped to the file's actual size. Sends the
  /// response itself; returns the send status.
  Status HandleRead(int fd, const Request& req,
                    std::vector<std::byte>& scratch);
  Response Dispatch(const Request& req);

  std::string socket_path_;
  std::shared_ptr<dataplane::Stage> stage_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  mutable std::mutex conns_mu_;
  std::vector<std::thread> handlers_;
  std::vector<int> conn_fds_;
  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace prisma::ipc
