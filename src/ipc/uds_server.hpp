// PRISMA UDS server: exposes one data-plane stage to external worker
// *processes* (the PyTorch integration of paper §IV). Each accepted
// connection gets a handler thread; requests on a connection are served
// in order. The stage itself is shared — its SampleBuffer lock is the
// synchronization point the paper identifies as the 8+-worker bottleneck.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/status.hpp"
#include "dataplane/stage.hpp"
#include "ipc/wire.hpp"

namespace prisma::ipc {

class UdsServer {
 public:
  UdsServer(std::string socket_path, std::shared_ptr<dataplane::Stage> stage);
  ~UdsServer();

  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  /// Binds, listens, and spawns the accept loop.
  Status Start();

  /// Stops accepting, closes all connections, joins all threads.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  std::size_t active_connections() const EXCLUDES(conns_mu_);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// kRead: serves the buffered sample by reference (scatter-gather send
  /// of header + payload, no intermediate buffer); pass-through reads
  /// land in `scratch`, clamped to the file's actual size. Sends the
  /// response itself; returns the send status.
  Status HandleRead(int fd, const Request& req,
                    std::vector<std::byte>& scratch);
  /// Pass-through fallback for HandleRead (unannounced paths, failed-over
  /// samples): stages the file bytes through `scratch`. Deliberately NOT
  /// hot — the zero-copy ReadRef branch is the audited fast path.
  Status HandleReadPassThrough(int fd, const Request& req,
                               std::vector<std::byte>& scratch);
  Response Dispatch(const Request& req);

  std::string socket_path_;  // prisma-lint: unguarded(immutable after construction)
  // prisma-lint: unguarded(immutable after construction)
  std::shared_ptr<dataplane::Stage> stage_;

  // prisma-lint: unguarded(written only in Start/Stop, serialized by the running_ CAS)
  int listen_fd_ = -1;
  // prisma-lint: unguarded(written only in Start/Stop, serialized by the running_ CAS)
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  // Connection lifecycle: the accept loop inserts fd -> handler thread;
  // on natural disconnect the handler removes its own entry, closes the
  // fd, and parks its thread handle in finished_ for the accept loop (or
  // Stop) to join. Stop() claims the whole map instead: it shuts every
  // fd down, joins the handlers, then closes. Whoever removes an entry
  // owns the close, so an fd is never closed twice or after the kernel
  // reused its number.
  mutable Mutex conns_mu_{LockRank::kRegistry};
  std::unordered_map<int, std::thread> conns_ GUARDED_BY(conns_mu_);
  std::vector<std::thread> finished_ GUARDED_BY(conns_mu_);
  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace prisma::ipc
