// PRISMA UDS server: exposes one data-plane stage to external worker
// *processes* (the PyTorch integration of paper §IV).
//
// Reactor model: an EventEngine worker pool (io_uring with epoll
// fallback — see common/event_engine.hpp) drives every connection as a
// non-blocking state machine. Each accepted connection is pinned to one
// event loop; requests on a connection are served in order (recv frame
// -> dispatch -> gather-send response). Blocking stage work (pass-through
// reads, stats, epoch announcements) runs on the engine's bounded
// offload pool, and buffered kRead requests ride the stage's native
// async path (SampleBuffer::TakeAsync) — so server threads stay O(cores)
// no matter how many workers connect, where the old model parked one
// thread per connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/event_engine.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "dataplane/stage.hpp"
#include "ipc/wire.hpp"

namespace prisma::ipc {

class UdsServer {
 public:
  struct Options {
    /// Engine selection + sizing (kind, workers, uring_entries,
    /// offload_threads). Defaults pick io_uring when available and
    /// O(cores) worker loops.
    EventEngineOptions engine;
  };

  UdsServer(std::string socket_path, std::shared_ptr<dataplane::Stage> stage);
  UdsServer(std::string socket_path, std::shared_ptr<dataplane::Stage> stage,
            Options options);
  ~UdsServer();

  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  /// Binds, listens, starts the engine, and arms the async accept.
  Status Start();

  /// Deterministic, prompt teardown: stops the engine (every pending
  /// operation drains with exactly one -ECANCELED completion), closes
  /// every connection, and unlinks the socket. Does NOT wait for
  /// requests still parked on the stage's sample buffer — those
  /// complete against a closed connection and are dropped. Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  std::size_t active_connections() const EXCLUDES(conns_mu_);

  /// The engine actually selected ("io_uring" or "epoll"); valid after
  /// Start().
  std::string_view engine_name() const;
  /// Total threads the server owns (event loops + offload pool) — the
  /// number the throughput bench reports against consumer count.
  std::size_t server_threads() const;

 private:
  /// Per-connection reactor state (defined in the .cpp). Owned by the
  /// registry via shared_ptr; operations in flight on the stage hold
  /// extra references, so a connection torn down mid-request stays a
  /// valid (inert) object until its last completion lands.
  struct Conn;

  static void OnAccept(void* ctx, int res);
  void ArmAccept();
  void HandleAccepted(int fd);
  // Connection state-machine steps (loop thread of the conn). Static so
  // completions that outlive the server still run against the conn's own
  // shared state.
  static void StartRecv(const std::shared_ptr<Conn>& conn);
  static void OnRecv(void* ctx, int res);
  static void SubmitSend(const std::shared_ptr<Conn>& conn);
  static void OnSend(void* ctx, int res);
  static void StartSend(const std::shared_ptr<Conn>& conn, StatusCode code,
                        std::uint64_t value, std::span<const std::byte> payload);
  static void CloseConn(const std::shared_ptr<Conn>& conn);
  static void MaybeFinishClose(const std::shared_ptr<Conn>& conn);
  /// Runs the decoded request for `conn` (loop thread). kRead rides the
  /// stage's async path; everything else offloads Dispatch.
  void RunRequest(const std::shared_ptr<Conn>& conn, Request req);
  static void OnReadRef(void* ctx, Result<dataplane::SampleView> view);
  /// Blocking pass-through fallback (offload pool): stages the bytes
  /// through conn->scratch and posts the send back to the loop.
  void PassThroughRead(const std::shared_ptr<Conn>& conn, const Request& req);
  Response Dispatch(const Request& req);
  /// Removes `conn` from the registry (close-once of the fd). Safe from
  /// any thread.
  void Unregister(Conn* conn) EXCLUDES(conns_mu_);

  std::string socket_path_;  // prisma-lint: unguarded(immutable after construction)
  // prisma-lint: unguarded(immutable after construction)
  std::shared_ptr<dataplane::Stage> stage_;
  Options options_;  // prisma-lint: unguarded(immutable after construction)

  // The engine is shared (not unique) so stage completions that outlive
  // a connection — e.g. a TakeAsync waiter delivered after Stop() — can
  // still Post safely: Post to a stopped engine destroys the task, and
  // the waiter's reference keeps the engine object alive to receive it.
  // prisma-lint: unguarded(written only in Start/Stop, serialized by the running_ CAS)
  std::shared_ptr<EventEngine> engine_;
  // prisma-lint: unguarded(written only in Start/Stop, serialized by the running_ CAS)
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> next_loop_{0};  // round-robin conn placement

  // Live connections. Whoever erases an entry owns the fd close (the
  // Conn closes once via an atomic fd swap), so an fd is never closed
  // twice or after the kernel reused its number.
  mutable Mutex conns_mu_{LockRank::kRegistry};
  std::unordered_map<Conn*, std::shared_ptr<Conn>> conns_ GUARDED_BY(conns_mu_);
  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace prisma::ipc
