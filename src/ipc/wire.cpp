#include "ipc/wire.hpp"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>

#include "common/hot_path.hpp"

namespace prisma::ipc {
namespace {

void PutU8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void PutU32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void PutBytes(std::vector<std::byte>& out, std::span<const std::byte> b) {
  out.insert(out.end(), b.begin(), b.end());
}

// Raw-pointer writers for the hot frame paths, which build fixed-size
// headers in stack arrays instead of heap vectors.
void PutU8At(std::byte* p, std::uint8_t v) {
  *p = static_cast<std::byte>(v);
}

void PutU32At(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

void PutU64At(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

void PutString(std::vector<std::byte>& out, const std::string& s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  PutBytes(out, std::as_bytes(std::span(s.data(), s.size())));
}

/// Bounds-checked sequential reader over a payload.
class Cursor {
 public:
  explicit Cursor(std::span<const std::byte> data) : data_(data) {}

  Result<std::uint8_t> U8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  Result<std::uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<std::uint64_t> U64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<std::string> String() {
    auto len = U32();
    if (!len.ok()) return len.status();
    if (pos_ + *len > data_.size()) return Truncated();
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
    pos_ += *len;
    return s;
  }

  Result<std::vector<std::byte>> Bytes() {
    auto len = U32();
    if (!len.ok()) return len.status();
    if (pos_ + *len > data_.size()) return Truncated();
    std::vector<std::byte> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
    pos_ += *len;
    return b;
  }

  bool Done() const { return pos_ == data_.size(); }
  std::size_t Remaining() const { return data_.size() - pos_; }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("truncated wire payload");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::byte> EncodeRequest(const Request& req) {
  std::vector<std::byte> out;
  out.reserve(32 + req.path.size());
  PutU8(out, static_cast<std::uint8_t>(req.op));
  PutString(out, req.path);
  PutU64(out, req.offset);
  PutU64(out, req.length);
  PutU64(out, req.epoch);
  PutU32(out, static_cast<std::uint32_t>(req.names.size()));
  for (const auto& n : req.names) PutString(out, n);
  return out;
}

PRISMA_HOT_PATH
Result<Request> DecodeRequest(std::span<const std::byte> payload) {
  Cursor c(payload);
  Request req;
  auto op = c.U8();
  if (!op.ok()) return op.status();
  if (*op > static_cast<std::uint8_t>(Op::kStats)) {
    return Status::InvalidArgument("unknown opcode");
  }
  req.op = static_cast<Op>(*op);
  // prisma-lint: allow(hot-path-purity, the decoded request owns its path
  // string: one small steady-state allocation per request, bounded by
  // the path length — serving the read dwarfs it)
  auto path = c.String();
  if (!path.ok()) return path.status();
  req.path = std::move(*path);
  auto offset = c.U64();
  if (!offset.ok()) return offset.status();
  req.offset = *offset;
  auto length = c.U64();
  if (!length.ok()) return length.status();
  req.length = *length;
  auto epoch = c.U64();
  if (!epoch.ok()) return epoch.status();
  req.epoch = *epoch;
  auto n = c.U32();
  if (!n.ok()) return n.status();
  // Each name costs at least its 4-byte length prefix; a count that
  // exceeds the remaining payload is corrupt. Checking BEFORE reserving
  // keeps a hostile count from forcing a huge allocation.
  if (*n > c.Remaining() / 4) {
    return Status::InvalidArgument("name count exceeds payload");
  }
  // prisma-lint: allow(hot-path-purity, kBeginEpoch only: every other op
  // encodes n_names=0 and never reaches this loop)
  req.names.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    // prisma-lint: allow(hot-path-purity, kBeginEpoch only, see above)
    auto name = c.String();
    if (!name.ok()) return name.status();
    // prisma-lint: allow(hot-path-purity, kBeginEpoch only, see above)
    req.names.push_back(std::move(*name));
  }
  if (!c.Done()) return Status::InvalidArgument("trailing bytes in request");
  return req;
}

std::vector<std::byte> EncodeResponse(const Response& resp) {
  std::vector<std::byte> out;
  out.reserve(16 + resp.data.size());
  PutU8(out, static_cast<std::uint8_t>(resp.code));
  PutU64(out, resp.value);
  PutU32(out, static_cast<std::uint32_t>(resp.data.size()));
  PutBytes(out, resp.data);
  return out;
}

Result<Response> DecodeResponse(std::span<const std::byte> payload) {
  Cursor c(payload);
  Response resp;
  auto code = c.U8();
  if (!code.ok()) return code.status();
  if (*code > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    return Status::InvalidArgument("unknown status code");
  }
  resp.code = static_cast<StatusCode>(*code);
  auto value = c.U64();
  if (!value.ok()) return value.status();
  resp.value = *value;
  auto data = c.Bytes();
  if (!data.ok()) return data.status();
  resp.data = std::move(*data);
  if (!c.Done()) return Status::InvalidArgument("trailing bytes in response");
  return resp;
}

namespace {

PRISMA_HOT_PATH
Result<std::size_t> RecvAll(int fd, std::byte* p, std::size_t n, bool eof_ok) {
  std::size_t done = 0;
  while (done < n) {
    // prisma-lint: allow(hot-path-purity, the socket receive IS the data
    // plane: the frame protocol exists to feed this recv)
    const ssize_t r = ::recv(fd, p + done, n - done, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      // prisma-lint: allow(hot-path-purity, error-path only: the string is
      // built once per failed connection, never per frame)
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (eof_ok && done == 0) return Status::Aborted("peer closed");
      return Status::IoError("connection truncated mid-frame");
    }
    done += static_cast<std::size_t>(r);
  }
  return done;
}

void PutPrefix(std::byte prefix[4], std::uint32_t len) {
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::byte>((len >> (8 * i)) & 0xff);
  }
}

}  // namespace

PRISMA_HOT_PATH
Status WriteFrameV(int fd,
                   std::initializer_list<std::span<const std::byte>> parts) {
  constexpr std::size_t kMaxParts = 8;
  if (parts.size() > kMaxParts) {
    return Status::InvalidArgument("WriteFrameV: too many parts");
  }
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  if (total > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large: " + std::to_string(total));
  }

  std::byte prefix[4];
  PutPrefix(prefix, static_cast<std::uint32_t>(total));

  iovec iov[kMaxParts + 1];
  std::size_t n_iov = 0;
  iov[n_iov++] = {prefix, 4};
  for (const auto& p : parts) {
    if (p.empty()) continue;
    iov[n_iov++] = {const_cast<std::byte*>(p.data()), p.size()};
  }

  // One sendmsg for the whole frame in the common case; the loop only
  // spins again on a partial send (kernel buffer full), advancing the
  // iovec window past what went out.
  std::size_t idx = 0;
  while (idx < n_iov) {
    msghdr msg{};
    msg.msg_iov = iov + idx;
    msg.msg_iovlen = n_iov - idx;
    // prisma-lint: allow(hot-path-purity, the socket send IS the data
    // plane: one sendmsg ships the whole frame)
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      // prisma-lint: allow(hot-path-purity, error-path only: the string is
      // built once per failed connection, never per frame)
      return Status::IoError(std::string("sendmsg: ") + std::strerror(errno));
    }
    auto advanced = static_cast<std::size_t>(w);
    while (idx < n_iov && advanced >= iov[idx].iov_len) {
      advanced -= iov[idx].iov_len;
      ++idx;
    }
    if (idx < n_iov && advanced > 0) {
      iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + advanced;
      iov[idx].iov_len -= advanced;
    }
  }
  return Status::Ok();
}

PRISMA_HOT_PATH
Status WriteFrame(int fd, std::span<const std::byte> payload) {
  return WriteFrameV(fd, {payload});
}

PRISMA_HOT_PATH
Status WriteRequestFrame(int fd, const Request& req) {
  if (!req.names.empty()) {
    // kBeginEpoch carries a name list; the flat encoder is simpler than
    // one iovec entry per name and this op is once-per-epoch cold.
    // prisma-lint: allow(hot-path-purity, once-per-epoch cold branch: only
    // kBeginEpoch carries names, per-read requests take the flat path)
    const auto payload = EncodeRequest(req);
    return WriteFrameV(fd, {payload});
  }
  // [u8 op][u32 path_len] | path bytes | [u64 offset][u64 length]
  // [u64 epoch][u32 n_names=0] — same bytes as EncodeRequest, built in
  // stack arrays so the per-read path never touches the heap.
  std::byte head[5];
  PutU8At(head, static_cast<std::uint8_t>(req.op));
  PutU32At(head + 1, static_cast<std::uint32_t>(req.path.size()));
  std::byte tail[28];
  PutU64At(tail, req.offset);
  PutU64At(tail + 8, req.length);
  PutU64At(tail + 16, req.epoch);
  PutU32At(tail + 24, 0);
  return WriteFrameV(
      fd, {head, std::as_bytes(std::span(req.path.data(), req.path.size())),
           tail});
}

PRISMA_HOT_PATH
Status WriteResponseFrame(int fd, StatusCode code, std::uint64_t value,
                          std::span<const std::byte> data) {
  // Header in a stack array: the server's reply path (one call per
  // served read) must not allocate — `data` is the refcounted payload,
  // shipped by sendmsg straight out of pool storage.
  std::byte head[kResponseHeaderBytes];
  PutU8At(head, static_cast<std::uint8_t>(code));
  PutU64At(head + 1, value);
  PutU32At(head + 9, static_cast<std::uint32_t>(data.size()));
  return WriteFrameV(fd, {head, data});
}

PRISMA_HOT_PATH
Result<ResponseHeader> ReadResponseHeader(int fd) {
  std::byte prefix[4];
  if (auto r = RecvAll(fd, prefix, 4, /*eof_ok=*/true); !r.ok()) {
    return r.status();
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large: " + std::to_string(len));
  }
  if (len < kResponseHeaderBytes) {
    return Status::InvalidArgument("response frame shorter than header");
  }

  std::byte raw[kResponseHeaderBytes];
  if (auto r = RecvAll(fd, raw, kResponseHeaderBytes, /*eof_ok=*/false);
      !r.ok()) {
    return r.status();
  }
  const auto code = static_cast<std::uint8_t>(raw[0]);
  if (code > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    return Status::InvalidArgument("unknown status code");
  }
  ResponseHeader header;
  header.code = static_cast<StatusCode>(code);
  for (int i = 0; i < 8; ++i) {
    header.value |= static_cast<std::uint64_t>(raw[1 + i]) << (8 * i);
  }
  for (int i = 0; i < 4; ++i) {
    header.data_len |= static_cast<std::uint32_t>(raw[9 + i]) << (8 * i);
  }
  if (kResponseHeaderBytes + header.data_len != len) {
    return Status::InvalidArgument("response data length mismatch");
  }
  return header;
}

PRISMA_HOT_PATH
Status ReadResponseData(int fd, std::span<std::byte> dst) {
  if (dst.empty()) return Status::Ok();
  if (auto r = RecvAll(fd, dst.data(), dst.size(), /*eof_ok=*/false); !r.ok()) {
    return r.status();
  }
  return Status::Ok();
}

PRISMA_HOT_PATH
Status DrainResponseData(int fd, std::size_t n) {
  std::byte sink[4096];
  while (n > 0) {
    const std::size_t chunk = std::min(n, sizeof(sink));
    if (auto r = RecvAll(fd, sink, chunk, /*eof_ok=*/false); !r.ok()) {
      return r.status();
    }
    n -= chunk;
  }
  return Status::Ok();
}

PRISMA_HOT_PATH
std::span<std::byte> FrameAssembler::RecvWindow() {
  if (!have_len_) {
    return {prefix_ + prefix_got_, sizeof(prefix_) - prefix_got_};
  }
  return {payload_.data() + payload_got_, payload_len_ - payload_got_};
}

PRISMA_HOT_PATH
Status FrameAssembler::Commit(std::size_t n) {
  if (!have_len_) {
    prefix_got_ += n;
    if (prefix_got_ < sizeof(prefix_)) return Status::Ok();
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(prefix_[i]) << (8 * i);
    }
    if (len > kMaxFrameBytes) {
      return Status::InvalidArgument("frame too large: " +
                                     std::to_string(len));
    }
    have_len_ = true;
    payload_len_ = len;
    payload_got_ = 0;
    if (payload_.size() < len) {
      // prisma-lint: allow(hot-path-purity, frame buffer growth amortizes
      // to the largest frame on the connection; zero at steady state)
      payload_.resize(len);
    }
    return Status::Ok();
  }
  payload_got_ += n;
  return Status::Ok();
}

void FrameAssembler::Reset() {
  prefix_got_ = 0;
  have_len_ = false;
  payload_len_ = 0;
  payload_got_ = 0;
}

PRISMA_HOT_PATH
void EncodeFramedResponseHeader(std::byte* out, StatusCode code,
                                std::uint64_t value, std::uint32_t data_len) {
  PutU32At(out, static_cast<std::uint32_t>(kResponseHeaderBytes + data_len));
  PutU8At(out + 4, static_cast<std::uint8_t>(code));
  PutU64At(out + 5, value);
  PutU32At(out + 13, data_len);
}

std::vector<std::byte> EncodeStatsPayload(
    const dataplane::StageStatsSnapshot& stats) {
  std::vector<std::byte> out;
  out.reserve(kStatsLegacyBytes + 64 * (1 + stats.objects.size()));
  // Legacy prefix: v1 clients read exactly these 24 bytes.
  PutU64(out, stats.producers);
  PutU64(out, stats.buffer_capacity);
  PutU64(out, stats.buffer_occupancy);
  // v2 section block.
  PutU32(out, kStatsPayloadVersion);
  PutU32(out, static_cast<std::uint32_t>(stats.objects.size()));
  for (const auto& section : stats.objects) {
    PutString(out, section.object);
    PutU32(out, static_cast<std::uint32_t>(section.gauges.size()));
    for (const auto& [key, value] : section.gauges) {
      PutString(out, key);
      PutU64(out, std::bit_cast<std::uint64_t>(value));
    }
  }
  return out;
}

Result<StatsPayload> DecodeStatsPayload(std::span<const std::byte> data) {
  StatsPayload out;
  if (data.size() < kStatsLegacyBytes) {
    // Shorter-than-legacy payloads (old servers under error paths) decode
    // to zeros, matching what legacy clients reported for them.
    return out;
  }
  Cursor c(data);
  if (auto v = c.U64(); v.ok()) out.producers = *v;
  if (auto v = c.U64(); v.ok()) out.buffer_capacity = *v;
  if (auto v = c.U64(); v.ok()) out.buffer_occupancy = *v;
  if (c.Done()) return out;  // v1: exactly the legacy prefix

  auto version = c.U32();
  if (!version.ok()) return version.status();
  out.version = *version;
  if (*version < 2) {
    // Unknown trailer from a foreign encoder; the legacy fields stand.
    return out;
  }
  auto n_sections = c.U32();
  if (!n_sections.ok()) return n_sections.status();
  // Each section costs at least its two length prefixes; a count beyond
  // the remaining payload is corrupt (and must not drive a reserve).
  if (*n_sections > c.Remaining() / 8) {
    return Status::InvalidArgument("stats section count exceeds payload");
  }
  out.objects.reserve(*n_sections);
  for (std::uint32_t s = 0; s < *n_sections; ++s) {
    dataplane::ObjectStatsSection section;
    auto name = c.String();
    if (!name.ok()) return name.status();
    section.object = std::move(*name);
    auto n_gauges = c.U32();
    if (!n_gauges.ok()) return n_gauges.status();
    if (*n_gauges > c.Remaining() / 12) {
      return Status::InvalidArgument("stats gauge count exceeds payload");
    }
    section.gauges.reserve(*n_gauges);
    for (std::uint32_t g = 0; g < *n_gauges; ++g) {
      auto key = c.String();
      if (!key.ok()) return key.status();
      auto bits = c.U64();
      if (!bits.ok()) return bits.status();
      section.gauges.emplace_back(std::move(*key),
                                  std::bit_cast<double>(*bits));
    }
    out.objects.push_back(std::move(section));
  }
  // Bytes past the v2 section block belong to future versions; ignore.
  return out;
}

PRISMA_HOT_PATH
Result<std::vector<std::byte>> ReadFrame(int fd) {
  std::byte prefix[4];
  if (auto r = RecvAll(fd, prefix, 4, /*eof_ok=*/true); !r.ok()) {
    return r.status();
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large: " + std::to_string(len));
  }
  std::vector<std::byte> payload(len);
  if (len > 0) {
    if (auto r = RecvAll(fd, payload.data(), len, /*eof_ok=*/false); !r.ok()) {
      return r.status();
    }
  }
  return payload;
}

}  // namespace prisma::ipc
