#include "ipc/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace prisma::ipc {
namespace {

void PutU8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void PutU32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void PutBytes(std::vector<std::byte>& out, std::span<const std::byte> b) {
  out.insert(out.end(), b.begin(), b.end());
}

void PutString(std::vector<std::byte>& out, const std::string& s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  PutBytes(out, std::as_bytes(std::span(s.data(), s.size())));
}

/// Bounds-checked sequential reader over a payload.
class Cursor {
 public:
  explicit Cursor(std::span<const std::byte> data) : data_(data) {}

  Result<std::uint8_t> U8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  Result<std::uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<std::uint64_t> U64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<std::string> String() {
    auto len = U32();
    if (!len.ok()) return len.status();
    if (pos_ + *len > data_.size()) return Truncated();
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
    pos_ += *len;
    return s;
  }

  Result<std::vector<std::byte>> Bytes() {
    auto len = U32();
    if (!len.ok()) return len.status();
    if (pos_ + *len > data_.size()) return Truncated();
    std::vector<std::byte> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
    pos_ += *len;
    return b;
  }

  bool Done() const { return pos_ == data_.size(); }
  std::size_t Remaining() const { return data_.size() - pos_; }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("truncated wire payload");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::byte> EncodeRequest(const Request& req) {
  std::vector<std::byte> out;
  out.reserve(32 + req.path.size());
  PutU8(out, static_cast<std::uint8_t>(req.op));
  PutString(out, req.path);
  PutU64(out, req.offset);
  PutU64(out, req.length);
  PutU64(out, req.epoch);
  PutU32(out, static_cast<std::uint32_t>(req.names.size()));
  for (const auto& n : req.names) PutString(out, n);
  return out;
}

Result<Request> DecodeRequest(std::span<const std::byte> payload) {
  Cursor c(payload);
  Request req;
  auto op = c.U8();
  if (!op.ok()) return op.status();
  if (*op > static_cast<std::uint8_t>(Op::kStats)) {
    return Status::InvalidArgument("unknown opcode");
  }
  req.op = static_cast<Op>(*op);
  auto path = c.String();
  if (!path.ok()) return path.status();
  req.path = std::move(*path);
  auto offset = c.U64();
  if (!offset.ok()) return offset.status();
  req.offset = *offset;
  auto length = c.U64();
  if (!length.ok()) return length.status();
  req.length = *length;
  auto epoch = c.U64();
  if (!epoch.ok()) return epoch.status();
  req.epoch = *epoch;
  auto n = c.U32();
  if (!n.ok()) return n.status();
  // Each name costs at least its 4-byte length prefix; a count that
  // exceeds the remaining payload is corrupt. Checking BEFORE reserving
  // keeps a hostile count from forcing a huge allocation.
  if (*n > c.Remaining() / 4) {
    return Status::InvalidArgument("name count exceeds payload");
  }
  req.names.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto name = c.String();
    if (!name.ok()) return name.status();
    req.names.push_back(std::move(*name));
  }
  if (!c.Done()) return Status::InvalidArgument("trailing bytes in request");
  return req;
}

std::vector<std::byte> EncodeResponse(const Response& resp) {
  std::vector<std::byte> out;
  out.reserve(16 + resp.data.size());
  PutU8(out, static_cast<std::uint8_t>(resp.code));
  PutU64(out, resp.value);
  PutU32(out, static_cast<std::uint32_t>(resp.data.size()));
  PutBytes(out, resp.data);
  return out;
}

Result<Response> DecodeResponse(std::span<const std::byte> payload) {
  Cursor c(payload);
  Response resp;
  auto code = c.U8();
  if (!code.ok()) return code.status();
  if (*code > static_cast<std::uint8_t>(StatusCode::kInternal)) {
    return Status::InvalidArgument("unknown status code");
  }
  resp.code = static_cast<StatusCode>(*code);
  auto value = c.U64();
  if (!value.ok()) return value.status();
  resp.value = *value;
  auto data = c.Bytes();
  if (!data.ok()) return data.status();
  resp.data = std::move(*data);
  if (!c.Done()) return Status::InvalidArgument("trailing bytes in response");
  return resp;
}

Status WriteFrame(int fd, std::span<const std::byte> payload) {
  std::byte prefix[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::byte>((len >> (8 * i)) & 0xff);
  }

  const auto send_all = [fd](const std::byte* p, std::size_t n) -> Status {
    std::size_t done = 0;
    while (done < n) {
      const ssize_t w = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("send: ") + std::strerror(errno));
      }
      done += static_cast<std::size_t>(w);
    }
    return Status::Ok();
  };

  if (Status s = send_all(prefix, 4); !s.ok()) return s;
  return send_all(payload.data(), payload.size());
}

Result<std::vector<std::byte>> ReadFrame(int fd) {
  const auto recv_all = [fd](std::byte* p, std::size_t n,
                             bool eof_ok) -> Result<std::size_t> {
    std::size_t done = 0;
    while (done < n) {
      const ssize_t r = ::recv(fd, p + done, n - done, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("recv: ") + std::strerror(errno));
      }
      if (r == 0) {
        if (eof_ok && done == 0) return Status::Aborted("peer closed");
        return Status::IoError("connection truncated mid-frame");
      }
      done += static_cast<std::size_t>(r);
    }
    return done;
  };

  std::byte prefix[4];
  if (auto r = recv_all(prefix, 4, /*eof_ok=*/true); !r.ok()) {
    return r.status();
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large: " + std::to_string(len));
  }
  std::vector<std::byte> payload(len);
  if (len > 0) {
    if (auto r = recv_all(payload.data(), len, /*eof_ok=*/false); !r.ok()) {
      return r.status();
    }
  }
  return payload;
}

}  // namespace prisma::ipc
