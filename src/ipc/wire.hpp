// Wire protocol for the PRISMA UNIX-domain-socket integration (paper §IV:
// PyTorch workers are processes, so reads are shipped to the PRISMA
// server over UDS).
//
// Frames are length-prefixed:   [u32 payload_len][payload]
// Request payload:  [u8 op][u32 path_len][path bytes][u64 offset]
//                   [u64 length][u64 epoch][u32 n_names]{[u32 len][bytes]}*
// Response payload: [u8 status_code][u64 value][u32 data_len][data bytes]
//
// All integers little-endian. `value` carries op-specific scalars
// (file size for kFileSize, bytes read for kRead).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dataplane/types.hpp"

namespace prisma::ipc {

enum class Op : std::uint8_t {
  kPing = 0,
  kRead = 1,
  kFileSize = 2,
  kBeginEpoch = 3,
  kStats = 4,
};

struct Request {
  Op op = Op::kPing;
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t epoch = 0;
  std::vector<std::string> names;  // kBeginEpoch only
};

struct Response {
  StatusCode code = StatusCode::kOk;
  std::uint64_t value = 0;
  std::vector<std::byte> data;
};

std::vector<std::byte> EncodeRequest(const Request& req);
Result<Request> DecodeRequest(std::span<const std::byte> payload);

std::vector<std::byte> EncodeResponse(const Response& resp);
Result<Response> DecodeResponse(std::span<const std::byte> payload);

/// Blocking frame I/O over a connected socket. WriteFrame sends the
/// length prefix + payload; ReadFrame returns the payload (Aborted on
/// orderly peer close before a frame starts).
Status WriteFrame(int fd, std::span<const std::byte> payload);
Result<std::vector<std::byte>> ReadFrame(int fd);

/// Scatter-gather frame write: one sendmsg carries the length prefix and
/// the concatenation of `parts` (at most 8) — no intermediate encode
/// buffer, no per-part syscall. The bytes on the wire are identical to
/// WriteFrame(fd, concat(parts)).
Status WriteFrameV(int fd, std::initializer_list<std::span<const std::byte>> parts);

/// Frames a request without building the encode buffer when the request
/// carries no name list (every op but kBeginEpoch).
Status WriteRequestFrame(int fd, const Request& req);

/// Fixed-size leading portion of a response payload:
/// [u8 status_code][u64 value][u32 data_len].
inline constexpr std::size_t kResponseHeaderBytes = 13;

/// Frames a response as header + data spans in one sendmsg; `data` is
/// typically a refcounted sample payload served without copying.
Status WriteResponseFrame(int fd, StatusCode code, std::uint64_t value,
                          std::span<const std::byte> data);

struct ResponseHeader {
  StatusCode code = StatusCode::kOk;
  std::uint64_t value = 0;
  std::uint32_t data_len = 0;
};

/// Streaming response decode for the client's zero-copy read: consumes
/// the frame prefix + fixed header, leaving exactly data_len payload
/// bytes on the socket for ReadResponseData/DrainResponseData. Aborted
/// on orderly peer close before a frame starts.
Result<ResponseHeader> ReadResponseHeader(int fd);

/// Receives exactly dst.size() payload bytes into caller storage.
Status ReadResponseData(int fd, std::span<std::byte> dst);

/// Discards `n` payload bytes (error responses, oversized replies).
Status DrainResponseData(int fd, std::size_t n);

/// Upper bound accepted by ReadFrame (guards against corrupt prefixes).
inline constexpr std::uint32_t kMaxFrameBytes = 256u * 1024 * 1024;

// --- Non-blocking incremental framing (reactor data plane) -------------
//
// The blocking ReadFrame/WriteResponseFrame pair parks a thread per
// connection. The reactor server instead drives partial recv/send
// completions through these pieces: FrameAssembler turns an arbitrary
// byte stream into frames without ever blocking, and
// EncodeFramedResponseHeader renders the frame prefix + response header
// into caller storage so one gather-send [header | payload] ships a
// response with zero copies of the payload.

/// Incremental decoder for [u32 len][payload] frames. Usage per recv
/// completion:  recv into RecvWindow()  ->  Commit(n)  ->  if HasFrame()
/// consume Frame() and Reset(). The payload buffer is reused across
/// frames, so steady state allocates nothing once it has grown to the
/// largest frame seen.
class FrameAssembler {
 public:
  /// Where the next recv should land (prefix remainder or payload
  /// remainder). Empty only while HasFrame() — Reset() first.
  std::span<std::byte> RecvWindow();

  /// Accounts `n` bytes received into the last RecvWindow(). Fails on a
  /// corrupt length prefix (> kMaxFrameBytes).
  Status Commit(std::size_t n);

  bool HasFrame() const { return have_len_ && payload_got_ == payload_len_; }

  /// The completed frame payload; valid until Reset().
  std::span<const std::byte> Frame() const {
    return {payload_.data(), payload_len_};
  }

  /// Discards the completed frame and starts the next one.
  void Reset();

 private:
  std::byte prefix_[4] = {};
  std::size_t prefix_got_ = 0;
  bool have_len_ = false;
  std::uint32_t payload_len_ = 0;
  std::size_t payload_got_ = 0;
  std::vector<std::byte> payload_;
};

/// [u32 frame_len][u8 code][u64 value][u32 data_len]: everything before
/// the data bytes of a framed response.
inline constexpr std::size_t kFramedResponseHeaderBytes =
    4 + kResponseHeaderBytes;

/// Renders the frame prefix + response header for a response whose data
/// section is `data_len` bytes. The bytes on the wire (header followed
/// by the data) are identical to WriteResponseFrame's.
void EncodeFramedResponseHeader(std::byte* out, StatusCode code,
                                std::uint64_t value, std::uint32_t data_len);

// --- kStats payload (versioned) ----------------------------------------
//
// v1 (legacy): exactly 24 bytes — [u64 producers][u64 buffer_capacity]
// [u64 buffer_occupancy]. v2 keeps those 24 bytes as a prefix (old
// clients parse only the prefix and ignore the rest), then appends the
// per-object sections of a stacked pipeline:
//
//   [u32 version][u32 n_sections]
//   { [u32 name_len][name bytes][u32 n_gauges]
//     { [u32 key_len][key bytes][u64 value_bits] }* }*
//
// Gauge values are IEEE-754 doubles shipped as their little-endian bit
// pattern. Decoders must ignore bytes past the section block they
// understand, so future versions can append without breaking v2 readers.

inline constexpr std::uint32_t kStatsPayloadVersion = 2;
inline constexpr std::size_t kStatsLegacyBytes = 24;

/// Decoded kStats payload: the legacy trio plus (v2) per-object sections.
struct StatsPayload {
  std::uint64_t producers = 0;
  std::uint64_t buffer_capacity = 0;
  std::uint64_t buffer_occupancy = 0;
  /// 1 for a legacy 24-byte payload, else the encoder's version.
  std::uint32_t version = 1;
  std::vector<dataplane::ObjectStatsSection> objects;
};

/// Renders a stage snapshot as a v2 kStats payload (legacy 24-byte prefix
/// + one section per pipeline object).
std::vector<std::byte> EncodeStatsPayload(
    const dataplane::StageStatsSnapshot& stats);

/// Parses any known payload version; payloads shorter than the legacy
/// prefix decode to all-zero fields (what pre-v1 clients reported).
Result<StatsPayload> DecodeStatsPayload(std::span<const std::byte> data);

}  // namespace prisma::ipc
