// Wire protocol for the PRISMA UNIX-domain-socket integration (paper §IV:
// PyTorch workers are processes, so reads are shipped to the PRISMA
// server over UDS).
//
// Frames are length-prefixed:   [u32 payload_len][payload]
// Request payload:  [u8 op][u32 path_len][path bytes][u64 offset]
//                   [u64 length][u64 epoch][u32 n_names]{[u32 len][bytes]}*
// Response payload: [u8 status_code][u64 value][u32 data_len][data bytes]
//
// All integers little-endian. `value` carries op-specific scalars
// (file size for kFileSize, bytes read for kRead).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace prisma::ipc {

enum class Op : std::uint8_t {
  kPing = 0,
  kRead = 1,
  kFileSize = 2,
  kBeginEpoch = 3,
  kStats = 4,
};

struct Request {
  Op op = Op::kPing;
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t epoch = 0;
  std::vector<std::string> names;  // kBeginEpoch only
};

struct Response {
  StatusCode code = StatusCode::kOk;
  std::uint64_t value = 0;
  std::vector<std::byte> data;
};

std::vector<std::byte> EncodeRequest(const Request& req);
Result<Request> DecodeRequest(std::span<const std::byte> payload);

std::vector<std::byte> EncodeResponse(const Response& resp);
Result<Response> DecodeResponse(std::span<const std::byte> payload);

/// Blocking frame I/O over a connected socket. WriteFrame sends the
/// length prefix + payload; ReadFrame returns the payload (Aborted on
/// orderly peer close before a frame starts).
Status WriteFrame(int fd, std::span<const std::byte> payload);
Result<std::vector<std::byte>> ReadFrame(int fd);

/// Upper bound accepted by ReadFrame (guards against corrupt prefixes).
inline constexpr std::uint32_t kMaxFrameBytes = 256u * 1024 * 1024;

}  // namespace prisma::ipc
