#include "ipc/uds_client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/buffer_pool.hpp"

namespace prisma::ipc {

UdsClient::~UdsClient() { Close(); }

UdsClient::UdsClient(UdsClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

UdsClient& UdsClient::operator=(UdsClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status UdsClient::Connect(const std::string& socket_path, Millis timeout) {
  Close();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return Status::IoError(std::string("socket: ") + std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      fd_ = fd;
      return Status::Ok();
    }
    const int err = errno;
    ::close(fd);
    if ((err != ENOENT && err != ECONNREFUSED) ||
        std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable("connect " + socket_path + ": " +
                                 std::strerror(err));
    }
    std::this_thread::sleep_for(Millis{10});
  }
}

void UdsClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Response> UdsClient::RoundTrip(const Request& req) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  if (Status s = WriteRequestFrame(fd_, req); !s.ok()) return s;
  auto frame = ReadFrame(fd_);
  if (!frame.ok()) return frame.status();
  return DecodeResponse(*frame);
}

Status UdsClient::Ping() {
  Request req;
  req.op = Op::kPing;
  auto resp = RoundTrip(req);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status{resp->code, "ping failed"};
  }
  return Status::Ok();
}

Result<std::size_t> UdsClient::Read(const std::string& path,
                                    std::uint64_t offset,
                                    std::span<std::byte> dst) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  Request req;
  req.op = Op::kRead;
  req.path = path;
  req.offset = offset;
  req.length = dst.size();
  if (Status s = WriteRequestFrame(fd_, req); !s.ok()) return s;

  // Streaming decode: parse the fixed response header, then recv the
  // payload straight into the caller's destination — no frame buffer,
  // no copy-out. This recv IS the consumer path's one mandatory copy.
  auto header = ReadResponseHeader(fd_);
  if (!header.ok()) return header.status();
  if (header->code != StatusCode::kOk) {
    if (Status s = DrainResponseData(fd_, header->data_len); !s.ok()) return s;
    return Status{header->code, "remote read failed: " + path};
  }
  const std::size_t n = std::min<std::size_t>(header->data_len, dst.size());
  if (Status s = ReadResponseData(fd_, dst.first(n)); !s.ok()) return s;
  if (Status s = DrainResponseData(fd_, header->data_len - n); !s.ok()) {
    return s;
  }
  if (n > 0) CopyAccounting::Count(n);
  return n;
}

Result<std::vector<std::byte>> UdsClient::ReadAll(const std::string& path) {
  auto size = FileSize(path);
  if (!size.ok()) return size.status();
  std::vector<std::byte> buf(static_cast<std::size_t>(*size));
  std::size_t done = 0;
  while (done < buf.size()) {
    auto n = Read(path, done, std::span<std::byte>(buf).subspan(done));
    if (!n.ok()) return n.status();
    if (*n == 0) break;
    done += *n;
  }
  buf.resize(done);
  return buf;
}

Result<std::uint64_t> UdsClient::FileSize(const std::string& path) {
  Request req;
  req.op = Op::kFileSize;
  req.path = path;
  auto resp = RoundTrip(req);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status{resp->code, "remote stat failed: " + path};
  }
  return resp->value;
}

Status UdsClient::BeginEpoch(std::uint64_t epoch,
                             const std::vector<std::string>& names) {
  Request req;
  req.op = Op::kBeginEpoch;
  req.epoch = epoch;
  req.names = names;
  auto resp = RoundTrip(req);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status{resp->code, "remote BeginEpoch failed"};
  }
  return Status::Ok();
}

Result<UdsClient::RemoteStats> UdsClient::Stats() {
  Request req;
  req.op = Op::kStats;
  auto resp = RoundTrip(req);
  if (!resp.ok()) return resp.status();
  if (resp->code != StatusCode::kOk) {
    return Status{resp->code, "remote stats failed"};
  }
  auto payload = DecodeStatsPayload(resp->data);
  if (!payload.ok()) return payload.status();
  RemoteStats out;
  out.samples_consumed = resp->value;
  out.producers = payload->producers;
  out.buffer_capacity = payload->buffer_capacity;
  out.buffer_occupancy = payload->buffer_occupancy;
  out.objects = std::move(payload->objects);
  return out;
}

}  // namespace prisma::ipc
