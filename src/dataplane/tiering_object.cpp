#include "dataplane/tiering_object.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace prisma::dataplane {

TieringObject::TieringObject(
    std::shared_ptr<storage::StorageBackend> slow_tier,
    std::shared_ptr<storage::StorageBackend> fast_tier, TieringOptions options,
    std::shared_ptr<const Clock> clock)
    : slow_(std::move(slow_tier)),
      fast_(std::move(fast_tier)),
      options_(options),
      clock_(std::move(clock)) {}

TieringObject::~TieringObject() { Stop(); }

Status TieringObject::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("tiering object already started");
  }
  promote_queue_.Reopen();
  std::uint32_t n = 1;
  {
    MutexLock lock(mu_);  // migration_workers may move under ApplyKnobs
    n = std::max<std::uint32_t>(1, options_.migration_workers);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { MigrationLoop(); });
  }
  return Status::Ok();
}

void TieringObject::Stop() {
  if (!running_.exchange(false)) return;
  promote_queue_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void TieringObject::MigrationLoop() {
  while (auto path = promote_queue_.Pop()) {
    auto data = slow_->ReadAllShared(*path, BufferPool::Default());
    if (!data.ok()) {
      MutexLock lock(mu_);
      pending_.erase(*path);
      continue;
    }
    if (Status s = fast_->Write(*path, data->span()); !s.ok()) {
      PRISMA_LOG(kWarn, "tiering") << "promotion failed: " << s.ToString();
      MutexLock lock(mu_);
      pending_.erase(*path);
      continue;
    }
    Admit(*path, data->size());
  }
}

void TieringObject::Admit(const std::string& path, std::uint64_t bytes) {
  MutexLock lock(mu_);
  pending_.erase(path);
  if (resident_.find(path) != resident_.end()) return;  // raced: already in

  while (fast_bytes_ + bytes > options_.fast_tier_capacity && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto it = resident_.find(victim);
    if (it != resident_.end()) {
      fast_bytes_ -= it->second.bytes;
      resident_.erase(it);
      ++counters_.demotions;
      // The fast-tier copy becomes stale garbage; real deployments would
      // unlink it. Backends used here tolerate overwrites, so we leave it.
    }
  }
  lru_.push_front(path);
  resident_[path] = Resident{bytes, lru_.begin()};
  fast_bytes_ += bytes;
  ++counters_.promotions;
  counters_.fast_bytes = fast_bytes_;
}

Result<std::size_t> TieringObject::Read(const std::string& path,
                                        std::uint64_t offset,
                                        std::span<std::byte> dst) {
  bool fast_hit = false;
  {
    MutexLock lock(mu_);
    const auto it = resident_.find(path);
    if (it != resident_.end()) {
      fast_hit = true;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
      ++counters_.fast_hits;
    }
  }
  if (fast_hit) {
    return fast_->Read(path, offset, dst);
  }

  auto n = slow_->Read(path, offset, dst);
  if (!n.ok()) return n;
  bool candidate = false;
  {
    MutexLock lock(mu_);
    ++counters_.slow_reads;
    const bool queued = pending_.find(path) != pending_.end();
    const bool resident = resident_.find(path) != resident_.end();
    candidate = !queued && !resident && running_.load(std::memory_order_acquire);
  }
  // The promotion-size stat is real slow-tier I/O, so it runs outside
  // the lock; re-check under the lock afterwards since a concurrent
  // reader may have queued or promoted the file while we statted.
  if (candidate) {
    const auto size = slow_->FileSize(path);
    if (size.ok() && *size <= options_.max_promote_bytes) {
      MutexLock lock(mu_);
      const bool queued = pending_.find(path) != pending_.end();
      const bool resident = resident_.find(path) != resident_.end();
      if (!queued && !resident && running_.load(std::memory_order_acquire)) {
        pending_[path] = true;
        PRISMA_IGNORE_STATUS(promote_queue_.TryPush(path),
                             "promotion dropped on overload by design");
      }
    }
  }
  return n;
}

Result<std::uint64_t> TieringObject::FileSize(const std::string& path) {
  {
    MutexLock lock(mu_);
    const auto it = resident_.find(path);
    if (it != resident_.end()) return it->second.bytes;
  }
  return slow_->FileSize(path);
}

Status TieringObject::ApplyKnobs(const StageKnobs& knobs) {
  // Tiering reuses the generic knobs: `producers` maps to migration
  // workers (applied on next Start), `buffer_capacity` is N/A.
  // CollectStats reads migration_workers under mu_, so the write must
  // hold it too.
  if (knobs.producers) {
    MutexLock lock(mu_);
    options_.migration_workers = *knobs.producers;
  }
  return Status::Ok();
}

StageStatsSnapshot TieringObject::CollectStats() const {
  StageStatsSnapshot s;
  s.at = clock_->Now();
  MutexLock lock(mu_);
  s.producers = options_.migration_workers;
  s.buffer_occupancy = resident_.size();
  s.buffer_bytes = fast_bytes_;
  s.consumer_hits = counters_.fast_hits;
  s.passthrough_reads = counters_.slow_reads;
  s.queue_depth = promote_queue_.size();
  return s;
}

TieringObject::TierCounters TieringObject::Counters() const {
  MutexLock lock(mu_);
  TierCounters c = counters_;
  c.fast_bytes = fast_bytes_;
  return c;
}

bool TieringObject::ResidentFast(const std::string& path) const {
  MutexLock lock(mu_);
  return resident_.find(path) != resident_.end();
}

}  // namespace prisma::dataplane
