#include "dataplane/tiering_object.hpp"

#include <algorithm>

#include "common/hot_path.hpp"
#include "common/logging.hpp"

namespace prisma::dataplane {

namespace {
/// How often an idle migration worker re-checks its retirement flag.
constexpr Millis kWorkerPollInterval{20};
}  // namespace

TieringObject::TieringObject(
    std::shared_ptr<storage::StorageBackend> slow_tier,
    std::shared_ptr<storage::StorageBackend> fast_tier, TieringOptions options,
    std::shared_ptr<const Clock> clock)
    : slow_(std::move(slow_tier)),
      fast_(std::move(fast_tier)),
      options_(options),
      clock_(std::move(clock)) {}

TieringObject::~TieringObject() { Stop(); }

Status TieringObject::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("tiering object already started");
  }
  // `durable` is immutable after construction, so it is safe to read
  // before any worker exists.
  if (options_.durable) {
    if (Status s = RecoverResidency(); !s.ok()) {
      running_.store(false, std::memory_order_release);
      return s;
    }
  }
  promote_queue_.Reopen();
  std::uint32_t n = 1;
  {
    MutexLock lock(mu_);  // migration_workers may move under ApplyKnobs
    n = std::max<std::uint32_t>(1, options_.migration_workers);
  }
  target_workers_.store(n, std::memory_order_release);
  ReconcileWorkers();
  return Status::Ok();
}

void TieringObject::Stop() {
  if (!running_.exchange(false)) return;
  target_workers_.store(0, std::memory_order_release);
  promote_queue_.Close();
  // Claim the handles under the lock, join with it released: a worker can
  // be mid-promotion (real I/O) when it observes retirement.
  std::vector<std::thread> retired;
  {
    MutexLock lock(workers_mu_);
    retired.swap(workers_);
  }
  for (auto& w : retired) {
    if (w.joinable()) w.join();
  }
  // A closed queue still holds promotions no worker dispatched. Drain
  // them and clear pending_, or those paths would stay marked "queued"
  // forever and never be promotion-eligible after a Stop/Start cycle.
  while (promote_queue_.TryPop().has_value()) {
  }
  MutexLock lock(mu_);
  pending_.clear();
}

Status TieringObject::RecoverResidency() {
  auto recoverable =
      std::dynamic_pointer_cast<storage::RecoverableBackend>(fast_);
  if (recoverable == nullptr) {
    return Status::FailedPrecondition(
        "tiering.durable requires a fast tier implementing "
        "RecoverableBackend (see storage/persistent_tier_backend.hpp)");
  }
  auto entries = recoverable->Recover();  // real I/O: runs with mu_ released
  if (!entries.ok()) return entries.status();
  std::vector<std::string> victims;
  {
    MutexLock lock(mu_);
    lru_.clear();
    resident_.clear();
    fast_bytes_ = 0;
    for (const auto& e : *entries) {
      lru_.push_front(e.path);
      resident_[e.path] = Resident{e.bytes, lru_.begin()};
      fast_bytes_ += e.bytes;
    }
    counters_.recovered_entries += entries->size();
    victims = DemoteOverBudget(0);  // capacity may have shrunk since
  }
  UnlinkDemoted(victims);
  return Status::Ok();
}

void TieringObject::MigrationLoop(std::uint32_t index) {
  while (running_.load(std::memory_order_acquire) &&
         index < target_workers_.load(std::memory_order_acquire)) {
    auto path = promote_queue_.PopFor(kWorkerPollInterval);
    if (!path) {
      if (promote_queue_.closed()) break;
      continue;  // idle; re-check retirement
    }
    auto data = slow_->ReadAllShared(*path, BufferPool::Default());
    if (!data.ok()) {
      MutexLock lock(mu_);
      pending_.erase(*path);
      continue;
    }
    if (Status s = fast_->Write(*path, data->span()); !s.ok()) {
      PRISMA_LOG(kWarn, "tiering") << "promotion failed: " << s.ToString();
      MutexLock lock(mu_);
      pending_.erase(*path);
      continue;
    }
    Admit(*path, data->size());
  }
}

void TieringObject::ReconcileWorkers() {
  // Same shape as PrefetchObject::ReconcileProducers: retirees (index >=
  // target) exit on their own, and the joins run with workers_mu_
  // released because a retiree may be mid-promotion.
  std::vector<std::thread> retired;
  {
    MutexLock lock(workers_mu_);
    const std::uint32_t target =
        target_workers_.load(std::memory_order_acquire);
    while (workers_.size() > target) {
      retired.push_back(std::move(workers_.back()));
      workers_.pop_back();
    }
    for (std::uint32_t i = static_cast<std::uint32_t>(workers_.size());
         i < target; ++i) {
      workers_.emplace_back([this, i] { MigrationLoop(i); });
    }
  }
  for (auto& w : retired) w.join();
}

void TieringObject::Admit(const std::string& path, std::uint64_t bytes) {
  std::vector<std::string> victims;
  {
    MutexLock lock(mu_);
    pending_.erase(path);
    if (resident_.find(path) != resident_.end()) return;  // raced: already in

    victims = DemoteOverBudget(bytes);
    lru_.push_front(path);
    resident_[path] = Resident{bytes, lru_.begin()};
    fast_bytes_ += bytes;
    ++counters_.promotions;
    counters_.fast_bytes = fast_bytes_;
  }
  UnlinkDemoted(victims);
}

std::vector<std::string> TieringObject::DemoteOverBudget(
    std::uint64_t incoming_bytes) {
  std::vector<std::string> victims;
  while (fast_bytes_ + incoming_bytes > options_.fast_tier_capacity &&
         !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto it = resident_.find(victim);
    if (it != resident_.end()) {
      fast_bytes_ -= it->second.bytes;
      resident_.erase(it);
      ++counters_.demotions;
      victims.push_back(victim);
    }
  }
  counters_.fast_bytes = fast_bytes_;
  return victims;
}

void TieringObject::UnlinkDemoted(const std::vector<std::string>& victims) {
  for (const auto& victim : victims) {
    // Best effort: a durable tier frees the disk space now instead of
    // leaving stale garbage; recovery re-discards anything missed, and
    // backends that cannot remove keep tolerating overwrites.
    PRISMA_IGNORE_STATUS(fast_->Remove(victim),
                         "demotion unlink is best-effort by design");
  }
}

PRISMA_HOT_PATH
Result<std::size_t> TieringObject::Read(const std::string& path,
                                        std::uint64_t offset,
                                        std::span<std::byte> dst) {
  bool fast_hit = false;
  {
    MutexLock lock(mu_);
    const auto it = resident_.find(path);
    if (it != resident_.end()) {
      fast_hit = true;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
      ++counters_.fast_hits;
    }
  }
  if (fast_hit) {
    auto fast_read = fast_->Read(path, offset, dst);
    if (fast_read.ok()) return fast_read;
    // Degraded read: the slow tier still has the bytes, so a failing or
    // corrupt fast tier must not fail the consumer. Evict the poisoned
    // entry (it would fail every future hit too) and fall through to
    // the slow-tier path, which also makes the path promotion-eligible
    // again once the fast tier heals.
    // prisma-lint: allow(hot-path-purity, degraded path: runs only when a
    // fast-tier read failed, never on the steady-state hit)
    EvictPoisoned(path, fast_read.status());
  }
  // prisma-lint: allow(hot-path-purity, fast-tier miss: slow-tier I/O and
  // the promotion probe are the cold path by definition)
  return ReadSlowTier(path, offset, dst);
}

void TieringObject::EvictPoisoned(const std::string& path, const Status& why) {
  {
    MutexLock lock(mu_);
    ++counters_.fast_read_errors;
    const auto it = resident_.find(path);
    if (it != resident_.end()) {
      fast_bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_it);
      resident_.erase(it);
      counters_.fast_bytes = fast_bytes_;
    }
  }
  PRISMA_IGNORE_STATUS(
      fast_->Remove(path),
      "evicting a poisoned entry is best-effort; the index entry is gone");
  PRISMA_LOG(kWarn, "tiering")
      << "fast-tier read of '" << path
      << "' failed, serving from slow tier: " << why.ToString();
}

Result<std::size_t> TieringObject::ReadSlowTier(const std::string& path,
                                                std::uint64_t offset,
                                                std::span<std::byte> dst) {
  auto n = slow_->Read(path, offset, dst);
  if (!n.ok()) return n;
  bool candidate = false;
  std::uint64_t max_promote = 0;
  {
    MutexLock lock(mu_);
    ++counters_.slow_reads;
    const bool queued = pending_.find(path) != pending_.end();
    const bool resident = resident_.find(path) != resident_.end();
    candidate = !queued && !resident && running_.load(std::memory_order_acquire);
    max_promote = options_.max_promote_bytes;  // live knob: read under mu_
  }
  // The promotion-size stat is real slow-tier I/O, so it runs outside
  // the lock; re-check under the lock afterwards since a concurrent
  // reader may have queued or promoted the file while we statted.
  if (candidate) {
    const auto size = slow_->FileSize(path);
    if (size.ok() && *size <= max_promote) {
      MutexLock lock(mu_);
      const bool queued = pending_.find(path) != pending_.end();
      const bool resident = resident_.find(path) != resident_.end();
      if (!queued && !resident && running_.load(std::memory_order_acquire)) {
        // Mark pending only when the push lands: a dropped-on-overload
        // path must stay eligible for the next read's promotion attempt.
        if (promote_queue_.TryPush(path).ok()) pending_[path] = true;
      }
    }
  }
  return n;
}

Result<std::uint64_t> TieringObject::FileSize(const std::string& path) {
  {
    MutexLock lock(mu_);
    const auto it = resident_.find(path);
    if (it != resident_.end()) return it->second.bytes;
  }
  return slow_->FileSize(path);
}

Status TieringObject::ApplyKnobs(const StageKnobs& knobs) {
  // Tiering reuses the generic knobs: `producers` maps to migration
  // workers (live), `buffer_capacity` is N/A. CollectStats reads
  // migration_workers under mu_, so the write must hold it too.
  if (knobs.producers) {
    const std::uint32_t n = std::max<std::uint32_t>(1, *knobs.producers);
    {
      MutexLock lock(mu_);
      options_.migration_workers = n;
    }
    if (running_.load(std::memory_order_acquire)) {
      target_workers_.store(n, std::memory_order_release);
      ReconcileWorkers();
    }
  }
  return Status::Ok();
}

Status TieringObject::ApplyNamedKnob(std::string_view knob, double value) {
  if (knob == "migration_workers" || knob == "producers") {
    StageKnobs alias;
    alias.producers =
        static_cast<std::uint32_t>(std::max(1.0, value > 0.0 ? value : 1.0));
    return ApplyKnobs(alias);
  }
  if (knob == "fast_tier_capacity") {
    const auto budget =
        static_cast<std::uint64_t>(value > 0.0 ? value : 0.0);
    std::vector<std::string> victims;
    {
      MutexLock lock(mu_);
      options_.fast_tier_capacity = budget;
      victims = DemoteOverBudget(0);  // shrinking takes effect immediately
    }
    UnlinkDemoted(victims);
    return Status::Ok();
  }
  if (knob == "max_promote_bytes") {
    MutexLock lock(mu_);
    options_.max_promote_bytes =
        static_cast<std::uint64_t>(value > 0.0 ? value : 0.0);
    return Status::Ok();
  }
  return Status::InvalidArgument("tiering has no knob '" + std::string(knob) +
                                 "'");
}

StageStatsSnapshot TieringObject::CollectStats() const {
  StageStatsSnapshot s;
  s.at = clock_->Now();
  MutexLock lock(mu_);
  s.producers = options_.migration_workers;
  s.buffer_occupancy = resident_.size();
  s.buffer_bytes = fast_bytes_;
  s.consumer_hits = counters_.fast_hits;
  s.passthrough_reads = counters_.slow_reads;
  s.queue_depth = promote_queue_.size();
  return s;
}

void TieringObject::AppendNamedStats(ObjectStatsSection& section) const {
  MutexLock lock(mu_);
  section.Set("fast_hits", static_cast<double>(counters_.fast_hits));
  section.Set("slow_reads", static_cast<double>(counters_.slow_reads));
  section.Set("promotions", static_cast<double>(counters_.promotions));
  section.Set("demotions", static_cast<double>(counters_.demotions));
  section.Set("fast_bytes", static_cast<double>(fast_bytes_));
  section.Set("resident_files", static_cast<double>(resident_.size()));
  section.Set("pending_promotions", static_cast<double>(pending_.size()));
  section.Set("migration_workers",
              static_cast<double>(options_.migration_workers));
  section.Set("fast_tier_capacity",
              static_cast<double>(options_.fast_tier_capacity));
  section.Set("max_promote_bytes",
              static_cast<double>(options_.max_promote_bytes));
  section.Set("fast_read_errors",
              static_cast<double>(counters_.fast_read_errors));
  section.Set("recovered_entries",
              static_cast<double>(counters_.recovered_entries));
  section.Set("durable", options_.durable ? 1.0 : 0.0);
}

TieringObject::TierCounters TieringObject::Counters() const {
  MutexLock lock(mu_);
  TierCounters c = counters_;
  c.fast_bytes = fast_bytes_;
  return c;
}

bool TieringObject::ResidentFast(const std::string& path) const {
  MutexLock lock(mu_);
  return resident_.find(path) != resident_.end();
}

}  // namespace prisma::dataplane
