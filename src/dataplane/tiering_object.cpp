#include "dataplane/tiering_object.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace prisma::dataplane {

namespace {
/// How often an idle migration worker re-checks its retirement flag.
constexpr Millis kWorkerPollInterval{20};
}  // namespace

TieringObject::TieringObject(
    std::shared_ptr<storage::StorageBackend> slow_tier,
    std::shared_ptr<storage::StorageBackend> fast_tier, TieringOptions options,
    std::shared_ptr<const Clock> clock)
    : slow_(std::move(slow_tier)),
      fast_(std::move(fast_tier)),
      options_(options),
      clock_(std::move(clock)) {}

TieringObject::~TieringObject() { Stop(); }

Status TieringObject::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("tiering object already started");
  }
  promote_queue_.Reopen();
  std::uint32_t n = 1;
  {
    MutexLock lock(mu_);  // migration_workers may move under ApplyKnobs
    n = std::max<std::uint32_t>(1, options_.migration_workers);
  }
  target_workers_.store(n, std::memory_order_release);
  ReconcileWorkers();
  return Status::Ok();
}

void TieringObject::Stop() {
  if (!running_.exchange(false)) return;
  target_workers_.store(0, std::memory_order_release);
  promote_queue_.Close();
  // Claim the handles under the lock, join with it released: a worker can
  // be mid-promotion (real I/O) when it observes retirement.
  std::vector<std::thread> retired;
  {
    MutexLock lock(workers_mu_);
    retired.swap(workers_);
  }
  for (auto& w : retired) {
    if (w.joinable()) w.join();
  }
}

void TieringObject::MigrationLoop(std::uint32_t index) {
  while (running_.load(std::memory_order_acquire) &&
         index < target_workers_.load(std::memory_order_acquire)) {
    auto path = promote_queue_.PopFor(kWorkerPollInterval);
    if (!path) {
      if (promote_queue_.closed()) break;
      continue;  // idle; re-check retirement
    }
    auto data = slow_->ReadAllShared(*path, BufferPool::Default());
    if (!data.ok()) {
      MutexLock lock(mu_);
      pending_.erase(*path);
      continue;
    }
    if (Status s = fast_->Write(*path, data->span()); !s.ok()) {
      PRISMA_LOG(kWarn, "tiering") << "promotion failed: " << s.ToString();
      MutexLock lock(mu_);
      pending_.erase(*path);
      continue;
    }
    Admit(*path, data->size());
  }
}

void TieringObject::ReconcileWorkers() {
  // Same shape as PrefetchObject::ReconcileProducers: retirees (index >=
  // target) exit on their own, and the joins run with workers_mu_
  // released because a retiree may be mid-promotion.
  std::vector<std::thread> retired;
  {
    MutexLock lock(workers_mu_);
    const std::uint32_t target =
        target_workers_.load(std::memory_order_acquire);
    while (workers_.size() > target) {
      retired.push_back(std::move(workers_.back()));
      workers_.pop_back();
    }
    for (std::uint32_t i = static_cast<std::uint32_t>(workers_.size());
         i < target; ++i) {
      workers_.emplace_back([this, i] { MigrationLoop(i); });
    }
  }
  for (auto& w : retired) w.join();
}

void TieringObject::Admit(const std::string& path, std::uint64_t bytes) {
  MutexLock lock(mu_);
  pending_.erase(path);
  if (resident_.find(path) != resident_.end()) return;  // raced: already in

  DemoteOverBudget(bytes);
  lru_.push_front(path);
  resident_[path] = Resident{bytes, lru_.begin()};
  fast_bytes_ += bytes;
  ++counters_.promotions;
  counters_.fast_bytes = fast_bytes_;
}

void TieringObject::DemoteOverBudget(std::uint64_t incoming_bytes) {
  while (fast_bytes_ + incoming_bytes > options_.fast_tier_capacity &&
         !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto it = resident_.find(victim);
    if (it != resident_.end()) {
      fast_bytes_ -= it->second.bytes;
      resident_.erase(it);
      ++counters_.demotions;
      // The fast-tier copy becomes stale garbage; real deployments would
      // unlink it. Backends used here tolerate overwrites, so we leave it.
    }
  }
  counters_.fast_bytes = fast_bytes_;
}

Result<std::size_t> TieringObject::Read(const std::string& path,
                                        std::uint64_t offset,
                                        std::span<std::byte> dst) {
  bool fast_hit = false;
  {
    MutexLock lock(mu_);
    const auto it = resident_.find(path);
    if (it != resident_.end()) {
      fast_hit = true;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
      ++counters_.fast_hits;
    }
  }
  if (fast_hit) {
    return fast_->Read(path, offset, dst);
  }

  auto n = slow_->Read(path, offset, dst);
  if (!n.ok()) return n;
  bool candidate = false;
  std::uint64_t max_promote = 0;
  {
    MutexLock lock(mu_);
    ++counters_.slow_reads;
    const bool queued = pending_.find(path) != pending_.end();
    const bool resident = resident_.find(path) != resident_.end();
    candidate = !queued && !resident && running_.load(std::memory_order_acquire);
    max_promote = options_.max_promote_bytes;  // live knob: read under mu_
  }
  // The promotion-size stat is real slow-tier I/O, so it runs outside
  // the lock; re-check under the lock afterwards since a concurrent
  // reader may have queued or promoted the file while we statted.
  if (candidate) {
    const auto size = slow_->FileSize(path);
    if (size.ok() && *size <= max_promote) {
      MutexLock lock(mu_);
      const bool queued = pending_.find(path) != pending_.end();
      const bool resident = resident_.find(path) != resident_.end();
      if (!queued && !resident && running_.load(std::memory_order_acquire)) {
        pending_[path] = true;
        PRISMA_IGNORE_STATUS(promote_queue_.TryPush(path),
                             "promotion dropped on overload by design");
      }
    }
  }
  return n;
}

Result<std::uint64_t> TieringObject::FileSize(const std::string& path) {
  {
    MutexLock lock(mu_);
    const auto it = resident_.find(path);
    if (it != resident_.end()) return it->second.bytes;
  }
  return slow_->FileSize(path);
}

Status TieringObject::ApplyKnobs(const StageKnobs& knobs) {
  // Tiering reuses the generic knobs: `producers` maps to migration
  // workers (live), `buffer_capacity` is N/A. CollectStats reads
  // migration_workers under mu_, so the write must hold it too.
  if (knobs.producers) {
    const std::uint32_t n = std::max<std::uint32_t>(1, *knobs.producers);
    {
      MutexLock lock(mu_);
      options_.migration_workers = n;
    }
    if (running_.load(std::memory_order_acquire)) {
      target_workers_.store(n, std::memory_order_release);
      ReconcileWorkers();
    }
  }
  return Status::Ok();
}

Status TieringObject::ApplyNamedKnob(std::string_view knob, double value) {
  if (knob == "migration_workers" || knob == "producers") {
    StageKnobs alias;
    alias.producers =
        static_cast<std::uint32_t>(std::max(1.0, value > 0.0 ? value : 1.0));
    return ApplyKnobs(alias);
  }
  if (knob == "fast_tier_capacity") {
    const auto budget =
        static_cast<std::uint64_t>(value > 0.0 ? value : 0.0);
    MutexLock lock(mu_);
    options_.fast_tier_capacity = budget;
    DemoteOverBudget(0);  // shrinking takes effect immediately
    return Status::Ok();
  }
  if (knob == "max_promote_bytes") {
    MutexLock lock(mu_);
    options_.max_promote_bytes =
        static_cast<std::uint64_t>(value > 0.0 ? value : 0.0);
    return Status::Ok();
  }
  return Status::InvalidArgument("tiering has no knob '" + std::string(knob) +
                                 "'");
}

StageStatsSnapshot TieringObject::CollectStats() const {
  StageStatsSnapshot s;
  s.at = clock_->Now();
  MutexLock lock(mu_);
  s.producers = options_.migration_workers;
  s.buffer_occupancy = resident_.size();
  s.buffer_bytes = fast_bytes_;
  s.consumer_hits = counters_.fast_hits;
  s.passthrough_reads = counters_.slow_reads;
  s.queue_depth = promote_queue_.size();
  return s;
}

void TieringObject::AppendNamedStats(ObjectStatsSection& section) const {
  MutexLock lock(mu_);
  section.Set("fast_hits", static_cast<double>(counters_.fast_hits));
  section.Set("slow_reads", static_cast<double>(counters_.slow_reads));
  section.Set("promotions", static_cast<double>(counters_.promotions));
  section.Set("demotions", static_cast<double>(counters_.demotions));
  section.Set("fast_bytes", static_cast<double>(fast_bytes_));
  section.Set("resident_files", static_cast<double>(resident_.size()));
  section.Set("pending_promotions", static_cast<double>(pending_.size()));
  section.Set("migration_workers",
              static_cast<double>(options_.migration_workers));
  section.Set("fast_tier_capacity",
              static_cast<double>(options_.fast_tier_capacity));
  section.Set("max_promote_bytes",
              static_cast<double>(options_.max_promote_bytes));
}

TieringObject::TierCounters TieringObject::Counters() const {
  MutexLock lock(mu_);
  TierCounters c = counters_;
  c.fast_bytes = fast_bytes_;
  return c;
}

bool TieringObject::ResidentFast(const std::string& path) const {
  MutexLock lock(mu_);
  return resident_.find(path) != resident_.end();
}

}  // namespace prisma::dataplane
