// The optimization-object abstraction (paper §III.A).
//
// A stage hosts one or more optimization objects; each implements a
// self-contained, reusable I/O mechanism (data prefetching, parallel I/O,
// storage tiering, ...) applied to the DL framework's intercepted storage
// requests, plus the control hooks (knobs + monitoring) the control plane
// drives. New optimizations subclass this without touching any framework.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "dataplane/types.hpp"

namespace prisma::dataplane {

class OptimizationObject {
 public:
  virtual ~OptimizationObject() = default;

  /// Stable identifier ("prefetch", "tiering", ...).
  virtual std::string_view Name() const = 0;

  /// Starts background machinery (producer threads, migration workers).
  virtual Status Start() = 0;

  /// Stops and joins all background work. Idempotent.
  virtual void Stop() = 0;

  /// Services one intercepted read. Returns bytes copied into `dst`.
  virtual Result<std::size_t> Read(const std::string& path,
                                   std::uint64_t offset,
                                   std::span<std::byte> dst) = 0;

  /// Zero-copy variant: returns a refcounted view of up to `max_bytes`
  /// starting at `offset` (length 0 at EOF). The view keeps the bytes
  /// alive independent of buffer eviction, so callers (the UDS server's
  /// scatter-gather send) defer the one mandatory copy to the consumer's
  /// own destination. Objects that cannot serve by reference return
  /// kFailedPrecondition and the caller falls back to Read().
  virtual Result<SampleView> ReadRef(const std::string& path,
                                     std::uint64_t offset,
                                     std::size_t max_bytes) {
    (void)path;
    (void)offset;
    (void)max_bytes;
    return Status::FailedPrecondition("ReadRef unsupported by this object");
  }

  /// Allocation-light completion callback for ReadRefAsync.
  struct ReadRefWaiter {
    void (*fn)(void* ctx, Result<SampleView> result) = nullptr;
    void* ctx = nullptr;
  };

  /// Non-blocking ReadRef for the reactor data plane: never blocks the
  /// calling thread. The callback fires exactly once — synchronously on
  /// the calling thread (resident sample, early error) or later on
  /// whichever thread makes the bytes available. kFailedPrecondition
  /// means the same as for ReadRef: fall back to Read(), which the
  /// caller must run where blocking is acceptable. The default offloads
  /// the blocking ReadRef to `offload`, so objects without a native
  /// async path keep working behind a reactor at bounded-thread cost.
  virtual void ReadRefAsync(const std::string& path, std::uint64_t offset,
                            std::size_t max_bytes, ThreadPool& offload,
                            ReadRefWaiter waiter) {
    offload.Submit([this, path, offset, max_bytes, waiter] {
      waiter.fn(waiter.ctx, ReadRef(path, offset, max_bytes));
    });
  }

  /// Size of `path` as the object would serve it (metadata intercept for
  /// stat-like framework calls and the IPC client's buffer sizing).
  virtual Result<std::uint64_t> FileSize(const std::string& path) = 0;

  /// Announces the file order of the upcoming epoch (prefetch hint).
  /// Objects that do not prefetch may ignore it.
  virtual Status BeginEpoch(std::uint64_t epoch,
                            const std::vector<std::string>& order) {
    (void)epoch;
    (void)order;
    return Status::Ok();
  }

  // --- Control interface (paper §III.A: "control interface that
  // communicates with the control plane for internal stage management and
  // monitoring") -------------------------------------------------------
  virtual Status ApplyKnobs(const StageKnobs& knobs) = 0;
  virtual StageStatsSnapshot CollectStats() const = 0;

  /// Applies one namespaced knob ("<this object>.<knob>" with the object
  /// part already stripped by the pipeline router). The default maps the
  /// generic knob names onto the flat StageKnobs fields, so any object
  /// whose ApplyKnobs understands those needs no override; objects with
  /// layer-specific knobs ("migration_workers") override and fall back to
  /// this for the generic names. Unknown knobs are InvalidArgument.
  virtual Status ApplyNamedKnob(std::string_view knob, double value) {
    StageKnobs knobs;
    if (knob == "producers") {
      knobs.producers = static_cast<std::uint32_t>(value > 0.0 ? value : 0.0);
    } else if (knob == "buffer_capacity") {
      knobs.buffer_capacity =
          static_cast<std::size_t>(value > 0.0 ? value : 0.0);
    } else if (knob == "buffer_shards") {
      knobs.buffer_shards = static_cast<std::size_t>(value > 0.0 ? value : 0.0);
    } else if (knob == "read_rate_bps") {
      knobs.read_rate_bps = value;
    } else {
      return Status::InvalidArgument("object '" + std::string(Name()) +
                                     "' has no knob '" + std::string(knob) +
                                     "'");
    }
    return ApplyKnobs(knobs);
  }

  /// Appends layer-specific gauges ("fast_hits", "promotions") to this
  /// object's stats section beyond the generic fields SnapshotToSection
  /// already rendered. Default: nothing extra.
  virtual void AppendNamedStats(ObjectStatsSection& section) const {
    (void)section;
  }
};

}  // namespace prisma::dataplane
