#include "dataplane/pipeline_builder.hpp"

#include <algorithm>

#include "dataplane/object_backend.hpp"
#include "storage/persistent_tier_backend.hpp"
#include "storage/synthetic_backend.hpp"

namespace prisma::dataplane {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::shared_ptr<storage::StorageBackend> DefaultFastTier() {
  // An instant in-memory device: accepts the tiering layer's write-back
  // promotions and serves hits with no modeled latency (the RAM tier).
  storage::SyntheticBackendOptions o;
  o.profile = storage::DeviceProfile::Instant();
  o.time_scale = 0.0;
  return std::make_shared<storage::SyntheticBackend>(o);
}

}  // namespace

const std::vector<std::string>& KnownPipelineLayers() {
  static const std::vector<std::string> kLayers = {"prefetch", "tiering"};
  return kLayers;
}

Result<std::vector<std::string>> ParsePipelineSpec(std::string_view spec) {
  std::vector<std::string> layers;
  std::string_view rest = spec;
  while (true) {
    const auto bar = rest.find('|');
    const std::string_view raw =
        bar == std::string_view::npos ? rest : rest.substr(0, bar);
    const std::string_view name = Trim(raw);
    if (name.empty()) {
      return Status::InvalidArgument(
          "pipeline spec has an empty layer segment: '" + std::string(spec) +
          "'");
    }
    const auto& known = KnownPipelineLayers();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument("unknown pipeline layer '" +
                                     std::string(name) + "' in '" +
                                     std::string(spec) + "'");
    }
    if (std::find(layers.begin(), layers.end(), name) != layers.end()) {
      return Status::InvalidArgument("duplicate pipeline layer '" +
                                     std::string(name) + "' in '" +
                                     std::string(spec) + "'");
    }
    layers.emplace_back(name);
    if (bar == std::string_view::npos) break;
    rest = rest.substr(bar + 1);
  }
  return layers;
}

Result<StagePipeline> BuildStagePipeline(
    std::string_view spec, std::shared_ptr<storage::StorageBackend> backend,
    const PipelineOptions& options, std::shared_ptr<const Clock> clock) {
  if (backend == nullptr) {
    return Status::InvalidArgument("pipeline needs a storage backend");
  }
  if (clock == nullptr) {
    return Status::InvalidArgument("pipeline needs a clock");
  }
  auto names = ParsePipelineSpec(spec);
  if (!names.ok()) return names.status();

  // Build innermost-first: each layer reads from the chain built so far,
  // exposed as a StorageBackend through an ObjectBackend adapter.
  std::vector<std::shared_ptr<OptimizationObject>> layers(names->size());
  std::shared_ptr<storage::StorageBackend> below = std::move(backend);
  for (std::size_t i = names->size(); i-- > 0;) {
    const std::string& name = (*names)[i];
    std::shared_ptr<OptimizationObject> layer;
    if (name == "prefetch") {
      layer = std::make_shared<PrefetchObject>(below, options.prefetch, clock);
    } else if (name == "tiering") {
      std::shared_ptr<storage::StorageBackend> fast = options.fast_tier;
      if (fast == nullptr && options.tiering.durable) {
        // Durable mode persists the fast tier on disk so a restarted
        // stage reopens warm. The on-disk backstop is looser than the
        // residency budget (2x): the flush worker enforces it lazily
        // while TieringObject demotes eagerly.
        if (options.fast_tier_path.empty()) {
          return Status::InvalidArgument(
              "tiering.durable requires tiering.fast_tier_path (the "
              "directory backing the persistent fast tier)");
        }
        storage::PersistentTierOptions po;
        po.byte_budget = options.tiering.fast_tier_capacity * 2;
        fast = std::make_shared<storage::PersistentTierBackend>(
            options.fast_tier_path, po);
      } else if (fast == nullptr) {
        fast = DefaultFastTier();
      }
      layer = std::make_shared<TieringObject>(below, std::move(fast),
                                              options.tiering, clock);
    } else {
      // Unreachable: ParsePipelineSpec validated the names.
      return Status::Internal("unhandled pipeline layer '" + name + "'");
    }
    layers[i] = layer;
    if (i > 0) below = std::make_shared<ObjectBackend>(std::move(layer));
  }
  return StagePipeline(std::move(layers));
}

}  // namespace prisma::dataplane
