// Registry of live data-plane stages.
//
// The control plane enumerates stages through this to collect metrics and
// push knobs; the IPC server resolves a job id to its stage. Thread-safe.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/status.hpp"
#include "dataplane/stage.hpp"

namespace prisma::dataplane {

class StageRegistry {
 public:
  /// Registers a stage under its info().id. AlreadyExists on duplicates.
  Status Register(std::shared_ptr<Stage> stage) EXCLUDES(mu_);

  /// Removes a stage; NotFound when absent.
  Status Unregister(const std::string& id) EXCLUDES(mu_);

  std::shared_ptr<Stage> Find(const std::string& id) const EXCLUDES(mu_);

  /// Snapshot of all registered stages (stable order by id).
  std::vector<std::shared_ptr<Stage>> All() const EXCLUDES(mu_);

  std::size_t size() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_{LockRank::kRegistry};
  std::map<std::string, std::shared_ptr<Stage>> stages_ GUARDED_BY(mu_);
};

}  // namespace prisma::dataplane
