// Registry of live data-plane stages.
//
// The control plane enumerates stages through this to collect metrics and
// push knobs; the IPC server resolves a job id to its stage. Thread-safe.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dataplane/stage.hpp"

namespace prisma::dataplane {

class StageRegistry {
 public:
  /// Registers a stage under its info().id. AlreadyExists on duplicates.
  Status Register(std::shared_ptr<Stage> stage);

  /// Removes a stage; NotFound when absent.
  Status Unregister(const std::string& id);

  std::shared_ptr<Stage> Find(const std::string& id) const;

  /// Snapshot of all registered stages (stable order by id).
  std::vector<std::shared_ptr<Stage>> All() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Stage>> stages_;
};

}  // namespace prisma::dataplane
