#include "dataplane/sample_buffer.hpp"

#include <utility>

namespace prisma::dataplane {

SampleBuffer::SampleBuffer(std::size_t capacity,
                           std::shared_ptr<const Clock> clock)
    : clock_(std::move(clock)), capacity_(capacity == 0 ? 1 : capacity) {}

Status SampleBuffer::Insert(Sample sample) {
  std::unique_lock lock(mu_);
  // Two cases skip the capacity gate: overwriting a resident name needs
  // no extra slot, and a sample some consumer is *currently blocked on*
  // must be admitted even into a full buffer (direct handoff). Without
  // the handoff, producers racing ahead on later files can fill the
  // buffer and deadlock against the consumer of an in-flight earlier
  // file.
  const bool handoff = awaited_names_.find(sample.name) != awaited_names_.end();
  if (!handoff && samples_.find(sample.name) == samples_.end() && Full() &&
      !closed_) {
    ++counters_.producer_blocks;
    not_full_.wait(lock, [&] {
      return closed_ || !Full() ||
             awaited_names_.find(sample.name) != awaited_names_.end();
    });
  }
  if (closed_) return Status::Aborted("sample buffer closed");
  // Re-probe: the map may have changed while blocked.
  const auto existing = samples_.find(sample.name);

  bytes_ += sample.size();
  if (existing != samples_.end()) {
    bytes_ -= existing->second.size();
    existing->second = std::move(sample);
  } else {
    std::string key = sample.name;
    samples_.emplace(std::move(key), std::move(sample));
  }
  ++counters_.inserts;
  lock.unlock();
  // The waiting consumer keys on a specific name; wake them all and let
  // each re-check (consumer cardinality is small: the framework's readers).
  sample_arrived_.notify_all();
  return Status::Ok();
}

Result<Sample> SampleBuffer::Take(const std::string& name) {
  std::unique_lock lock(mu_);
  if (failed_names_.erase(name) > 0) {
    return Status::IoError("prefetch failed for " + name);
  }
  auto it = samples_.find(name);
  if (it == samples_.end()) {
    if (closed_) return Status::Aborted("sample buffer closed");
    ++counters_.consumer_waits;
    const Nanos wait_start = clock_->Now();
    ++awaited_names_[name];
    // Blocked producers holding this name re-check the handoff condition.
    not_full_.notify_all();
    sample_arrived_.wait(lock, [&] {
      it = samples_.find(name);
      return closed_ || it != samples_.end() ||
             failed_names_.find(name) != failed_names_.end();
    });
    if (auto an = awaited_names_.find(name); an != awaited_names_.end()) {
      if (--an->second == 0) awaited_names_.erase(an);
    }
    counters_.consumer_wait_time += clock_->Now() - wait_start;
    if (failed_names_.erase(name) > 0) {
      return Status::IoError("prefetch failed for " + name);
    }
    if (it == samples_.end()) return Status::Aborted("sample buffer closed");
  } else {
    ++counters_.consumer_hits;
  }

  Sample out = std::move(it->second);
  bytes_ -= out.size();
  samples_.erase(it);
  ++counters_.takes;
  lock.unlock();
  not_full_.notify_one();
  return out;
}

bool SampleBuffer::Contains(const std::string& name) const {
  std::lock_guard lock(mu_);
  return samples_.find(name) != samples_.end();
}

void SampleBuffer::MarkFailed(const std::string& name) {
  {
    std::lock_guard lock(mu_);
    failed_names_.insert(name);
  }
  sample_arrived_.notify_all();
}

void SampleBuffer::Close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  sample_arrived_.notify_all();
}

void SampleBuffer::Reopen() {
  std::lock_guard lock(mu_);
  closed_ = false;
}

void SampleBuffer::SetCapacity(std::size_t capacity) {
  {
    std::lock_guard lock(mu_);
    capacity_ = capacity == 0 ? 1 : capacity;
  }
  not_full_.notify_all();
}

std::size_t SampleBuffer::Capacity() const {
  std::lock_guard lock(mu_);
  return capacity_;
}

std::size_t SampleBuffer::Occupancy() const {
  std::lock_guard lock(mu_);
  return samples_.size();
}

std::uint64_t SampleBuffer::OccupancyBytes() const {
  std::lock_guard lock(mu_);
  return bytes_;
}

SampleBuffer::Counters SampleBuffer::GetCounters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

}  // namespace prisma::dataplane
