#include "dataplane/sample_buffer.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/hot_path.hpp"

namespace prisma::dataplane {

namespace {

std::size_t DefaultShardCount() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : 2 * hw;
}

// Shard slots allocated beyond the initial request so SetShardCount can
// grow the active set without reallocating (allocated slots never move).
constexpr std::size_t kMinShardSlots = 64;

std::size_t HashName(const std::string& name) {
  return std::hash<std::string>{}(name);
}

}  // namespace

// Every per-name method resolves its home shard with this loop. The body
// runs with the shard mutex held via the enclosing MutexLock; `continue`
// releases it and retries when a reshard moved the mapping underneath us.
#define PRISMA_FOR_HOME_SHARD(shard, lock, name)                      \
  const std::size_t prisma_hash_ = HashName(name);                    \
  for (;;) {                                                          \
    const std::size_t prisma_mod_ =                                   \
        active_shards_.load(std::memory_order_acquire);               \
    auto& shard = *shards_[prisma_hash_ % prisma_mod_];               \
    MutexLock lock(shard.mu);                                         \
    if (active_shards_.load(std::memory_order_acquire) != prisma_mod_) \
      continue;

#define PRISMA_END_FOR_HOME_SHARD }

SampleBuffer::SampleBuffer(std::size_t capacity,
                           std::shared_ptr<const Clock> clock,
                           std::size_t num_shards)
    : clock_(std::move(clock)),
      active_shards_(num_shards == 0 ? DefaultShardCount() : num_shards),
      capacity_(capacity == 0 ? 1 : capacity) {
  const std::size_t slots =
      std::max(active_shards_.load(std::memory_order_relaxed), kMinShardSlots);
  shards_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool SampleBuffer::TryAcquireSlot() {
  std::size_t used = slots_used_.load(std::memory_order_seq_cst);
  while (used < capacity_.load(std::memory_order_seq_cst)) {
    if (slots_used_.compare_exchange_weak(used, used + 1,
                                          std::memory_order_seq_cst)) {
      return true;
    }
  }
  return false;
}

void SampleBuffer::ForceAcquireSlot() {
  slots_used_.fetch_add(1, std::memory_order_seq_cst);
}

void SampleBuffer::ReleaseSlot() {
  slots_used_.fetch_sub(1, std::memory_order_seq_cst);
  // seq_cst handshake: a producer registers in capacity_waiters_ before
  // probing the slot count, so either this load sees the waiter (and we
  // wake it) or the waiter's probe sees the freed slot.
  if (capacity_waiters_.load(std::memory_order_seq_cst) > 0) {
    WakeBlockedProducers();
  }
  if (slot_waiter_count_.load(std::memory_order_seq_cst) > 0) {
    NotifySlotWaiters();
  }
}

void SampleBuffer::NotifySlotWaiters() {
  std::vector<SlotWaiter> waiters;
  {
    MutexLock lock(slot_waiters_mu_);
    waiters.swap(slot_waiters_);
    slot_waiter_count_.store(0, std::memory_order_seq_cst);
  }
  // Outside every lock: the callbacks only schedule work (contract), but
  // even a misbehaving one must not deadlock against a shard mutex.
  for (const SlotWaiter& w : waiters) w.fn(w.ctx);
}

void SampleBuffer::WaitForSlot(void (*fn)(void* ctx), void* ctx) {
  const auto slot_free = [this] {
    return slots_used_.load(std::memory_order_seq_cst) <
               capacity_.load(std::memory_order_seq_cst) ||
           closed_.load(std::memory_order_seq_cst);
  };
  if (slot_free()) {
    fn(ctx);
    return;
  }
  {
    MutexLock lock(slot_waiters_mu_);
    slot_waiters_.push_back({fn, ctx});
  }
  slot_waiter_count_.fetch_add(1, std::memory_order_seq_cst);
  // Same race-closing re-check as the producer capacity handshake: a
  // slot freed between the probe and the registration must not strand
  // the waiter.
  if (slot_free()) NotifySlotWaiters();
}

void SampleBuffer::WakeBlockedProducers() {
  for (const auto& shard : shards_) {
    // Lock-hop before notifying: a waiter that just failed its predicate
    // cannot miss the wakeup, because we cannot take its mutex until it
    // is parked on the condition variable.
    { MutexLock lock(shard->mu); }
    shard->not_full.NotifyAll();
  }
}

PRISMA_HOT_PATH
// prisma-lint: allow(no-payload-copy, sink parameter: the sample is moved
// into the buffer; payload bytes are refcounted and never copied)
Status SampleBuffer::Insert(Sample sample) {
  return Insert(std::move(sample), CancelPredicate{});
}

PRISMA_HOT_PATH
// prisma-lint: allow(no-payload-copy, sink parameter: moved into the shard
// map; payload bytes are refcounted and never copied)
Status SampleBuffer::Insert(Sample sample, const CancelPredicate& cancelled) {
  PRISMA_FOR_HOME_SHARD(shard, lock, sample.name) {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Aborted("sample buffer closed");
    }

    auto existing = shard.samples.find(sample.name);
    bool have_slot = false;
    if (existing == shard.samples.end()) {
      // Two cases skip the slot acquisition: overwriting a resident name
      // reuses its token, and a sample some consumer is *currently
      // blocked on* is admitted even into a full buffer (direct handoff).
      // Without the handoff, producers racing ahead on later files can
      // fill the buffer and deadlock against the consumer of an
      // in-flight earlier file.
      if (shard.awaited_names.find(sample.name) != shard.awaited_names.end()) {
        ForceAcquireSlot();
        have_slot = true;
      } else if (TryAcquireSlot()) {
        have_slot = true;
      } else {
        ++shard.counters.producer_blocks;
        capacity_waiters_.fetch_add(1, std::memory_order_seq_cst);
        for (;;) {
          // Park until a wake condition holds (explicit loop: prisma's
          // CondVar has no predicate overloads by design).
          for (;;) {
            if (closed_.load(std::memory_order_acquire)) break;
            if (cancelled && cancelled()) break;
            if (shard.awaited_names.find(sample.name) !=
                shard.awaited_names.end()) {
              break;
            }
            if (!have_slot) have_slot = TryAcquireSlot();
            if (have_slot) break;
            shard.not_full.Wait(shard.mu);
          }
          if (closed_.load(std::memory_order_acquire)) {
            capacity_waiters_.fetch_sub(1, std::memory_order_seq_cst);
            if (have_slot) ReleaseSlot();
            return Status::Aborted("sample buffer closed");
          }
          // Re-probe: the map may have changed while blocked.
          existing = shard.samples.find(sample.name);
          if (existing != shard.samples.end()) {
            if (have_slot) {
              ReleaseSlot();
              have_slot = false;
            }
            break;
          }
          if (have_slot) break;
          if (shard.awaited_names.find(sample.name) !=
              shard.awaited_names.end()) {
            ForceAcquireSlot();  // woken for the handoff
            have_slot = true;
            break;
          }
          if (cancelled && cancelled()) {
            capacity_waiters_.fetch_sub(1, std::memory_order_seq_cst);
            return Status::Cancelled("insert cancelled while blocked");
          }
          // Wakeup condition gone by re-check (e.g. a Close raced with a
          // Reopen): we are still registered as a waiter, so keep waiting.
        }
        capacity_waiters_.fetch_sub(1, std::memory_order_seq_cst);
      }
    }

    if (existing == shard.samples.end()) {
      if (auto handoff = ExtractWaiterLocked(shard, sample.name)) {
        // Direct delivery to a TakeAsync waiter: the sample never lands
        // in the resident map, and the token acquired above releases as
        // soon as the lock drops (net zero occupancy, like a Take that
        // raced the insert).
        ++shard.counters.inserts;
        Sample out = std::move(sample);
        const AsyncTake w = *handoff;
        lock.Unlock();
        ReleaseSlot();
        w.waiter.fn(w.waiter.ctx, std::move(out));
        return Status::Ok();
      }
    }

    shard.bytes += sample.size();
    if (existing != shard.samples.end()) {
      shard.bytes -= existing->second.size();
      existing->second = std::move(sample);
    } else {
      // prisma-lint: allow(hot-path-purity, the map must own its key: one
      // small string copy per inserted name, never per payload byte)
      std::string key = sample.name;
      // prisma-lint: allow(hot-path-purity, node insert: one per resident
      // sample, bounded by buffer capacity)
      shard.samples.emplace(std::move(key), std::move(sample));
    }
    ++shard.counters.inserts;
    lock.Unlock();
    // The waiting consumer keys on a specific name; wake them all and let
    // each re-check (consumer cardinality is small: the framework's
    // readers).
    shard.sample_arrived.NotifyAll();
    return Status::Ok();
  }
  PRISMA_END_FOR_HOME_SHARD
}

PRISMA_HOT_PATH
// prisma-lint: allow(no-payload-copy, sink parameter: moved into the shard
// map; payload bytes are refcounted and never copied)
Status SampleBuffer::InsertNow(Sample sample) {
  PRISMA_FOR_HOME_SHARD(shard, lock, sample.name) {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Aborted("sample buffer closed");
    }
    auto existing = shard.samples.find(sample.name);
    if (existing == shard.samples.end() && !TryAcquireSlot()) {
      ForceAcquireSlot();  // over-capacity until the matching Take
    }
    if (existing == shard.samples.end()) {
      if (auto handoff = ExtractWaiterLocked(shard, sample.name)) {
        ++shard.counters.inserts;
        Sample out = std::move(sample);
        const AsyncTake w = *handoff;
        lock.Unlock();
        ReleaseSlot();
        w.waiter.fn(w.waiter.ctx, std::move(out));
        return Status::Ok();
      }
    }
    shard.bytes += sample.size();
    if (existing != shard.samples.end()) {
      shard.bytes -= existing->second.size();
      existing->second = std::move(sample);
    } else {
      // prisma-lint: allow(hot-path-purity, the map must own its key: one
      // small string copy per inserted name, never per payload byte)
      std::string key = sample.name;
      // prisma-lint: allow(hot-path-purity, node insert: one per resident
      // sample, bounded by buffer capacity)
      shard.samples.emplace(std::move(key), std::move(sample));
    }
    ++shard.counters.inserts;
    lock.Unlock();
    shard.sample_arrived.NotifyAll();
    return Status::Ok();
  }
  PRISMA_END_FOR_HOME_SHARD
}

PRISMA_HOT_PATH
Result<Sample> SampleBuffer::Take(const std::string& name) {
  PRISMA_FOR_HOME_SHARD(shard, lock, name) {
    if (shard.failed_names.erase(name) > 0) {
      return Status::IoError("prefetch failed for " + name);
    }
    auto it = shard.samples.find(name);
    if (it == shard.samples.end()) {
      if (closed_.load(std::memory_order_acquire)) {
        return Status::Aborted("sample buffer closed");
      }
      ++shard.counters.consumer_waits;
      const Nanos wait_start = clock_->Now();
      ++shard.awaited_names[name];
      // Producers blocked on capacity whose sample hashes here re-check
      // the handoff condition.
      shard.not_full.NotifyAll();
      for (;;) {
        it = shard.samples.find(name);
        if (closed_.load(std::memory_order_acquire) ||
            it != shard.samples.end() ||
            shard.failed_names.find(name) != shard.failed_names.end()) {
          break;
        }
        shard.sample_arrived.Wait(shard.mu);
      }
      if (auto an = shard.awaited_names.find(name);
          an != shard.awaited_names.end()) {
        if (--an->second == 0) shard.awaited_names.erase(an);
      }
      shard.counters.consumer_wait_time += clock_->Now() - wait_start;
      if (shard.failed_names.erase(name) > 0) {
        return Status::IoError("prefetch failed for " + name);
      }
      if (it == shard.samples.end()) {
        return Status::Aborted("sample buffer closed");
      }
    } else {
      ++shard.counters.consumer_hits;
    }

    Sample out = std::move(it->second);
    shard.bytes -= out.size();
    shard.samples.erase(it);
    ++shard.counters.takes;
    lock.Unlock();
    ReleaseSlot();
    return out;
  }
  PRISMA_END_FOR_HOME_SHARD
}

std::optional<SampleBuffer::AsyncTake> SampleBuffer::ExtractWaiterLocked(
    Shard& shard, const std::string& name) {
  auto it = shard.take_waiters.find(name);
  if (it == shard.take_waiters.end()) return std::nullopt;
  AsyncTake w = it->second.front();
  it->second.erase(it->second.begin());
  if (it->second.empty()) shard.take_waiters.erase(it);
  if (auto an = shard.awaited_names.find(name);
      an != shard.awaited_names.end()) {
    if (--an->second <= 0) shard.awaited_names.erase(an);
  }
  ++shard.counters.takes;
  shard.counters.consumer_wait_time += clock_->Now() - w.start;
  return w;
}

PRISMA_HOT_PATH
void SampleBuffer::TakeAsync(const std::string& name, TakeWaiter waiter) {
  PRISMA_FOR_HOME_SHARD(shard, lock, name) {
    if (shard.failed_names.erase(name) > 0) {
      lock.Unlock();
      // Error path only: the message is built once per failed prefetch,
      // never per served sample.
      waiter.fn(waiter.ctx, Status::IoError("prefetch failed for " + name));
      return;
    }
    auto it = shard.samples.find(name);
    if (it != shard.samples.end()) {
      ++shard.counters.consumer_hits;
      ++shard.counters.takes;
      Sample out = std::move(it->second);
      shard.bytes -= out.size();
      shard.samples.erase(it);
      lock.Unlock();
      ReleaseSlot();
      waiter.fn(waiter.ctx, std::move(out));
      return;
    }
    if (closed_.load(std::memory_order_acquire)) {
      lock.Unlock();
      waiter.fn(waiter.ctx, Status::Aborted("sample buffer closed"));
      return;
    }
    ++shard.counters.consumer_waits;
    // Registering in awaited_names keeps the direct-handoff rule intact:
    // a producer inserting this name bypasses the capacity gate.
    ++shard.awaited_names[name];
    // prisma-lint: allow(hot-path-purity, waiter registration: bounded
    // by concurrent consumers, only on the miss path)
    shard.take_waiters[name].push_back({waiter, clock_->Now()});
    lock.Unlock();
    // Producers blocked on capacity whose sample hashes here re-check
    // the handoff condition.
    shard.not_full.NotifyAll();
    return;
  }
  PRISMA_END_FOR_HOME_SHARD
}

bool SampleBuffer::Contains(const std::string& name) const {
  PRISMA_FOR_HOME_SHARD(shard, lock, name) {
    return shard.samples.find(name) != shard.samples.end();
  }
  PRISMA_END_FOR_HOME_SHARD
}

void SampleBuffer::MarkFailed(const std::string& name) {
  PRISMA_FOR_HOME_SHARD(shard, lock, name) {
    // Async waiters consume the failure directly (they are "the Take that
    // observes the mark"); the stored mark covers sync waiters and
    // not-yet-arrived consumers, exactly as before.
    std::vector<AsyncTake> waiters;
    if (auto it = shard.take_waiters.find(name);
        it != shard.take_waiters.end()) {
      waiters = std::move(it->second);
      shard.take_waiters.erase(it);
      if (auto an = shard.awaited_names.find(name);
          an != shard.awaited_names.end()) {
        an->second -= static_cast<int>(waiters.size());
        if (an->second <= 0) shard.awaited_names.erase(an);
      }
      for (const AsyncTake& w : waiters) {
        shard.counters.consumer_wait_time += clock_->Now() - w.start;
      }
    }
    if (waiters.empty()) shard.failed_names.insert(name);
    lock.Unlock();
    shard.sample_arrived.NotifyAll();
    for (const AsyncTake& w : waiters) {
      w.waiter.fn(w.waiter.ctx, Status::IoError("prefetch failed for " + name));
    }
    return;
  }
  PRISMA_END_FOR_HOME_SHARD
}

void SampleBuffer::Close() {
  closed_.store(true, std::memory_order_seq_cst);
  std::vector<AsyncTake> cancelled;
  for (const auto& shard : shards_) {
    {
      MutexLock lock(shard->mu);
      for (auto& [name, waiters] : shard->take_waiters) {
        if (auto an = shard->awaited_names.find(name);
            an != shard->awaited_names.end()) {
          an->second -= static_cast<int>(waiters.size());
          if (an->second <= 0) shard->awaited_names.erase(an);
        }
        for (AsyncTake& w : waiters) cancelled.push_back(w);
      }
      shard->take_waiters.clear();
    }
    shard->not_full.NotifyAll();
    shard->sample_arrived.NotifyAll();
  }
  for (const AsyncTake& w : cancelled) {
    w.waiter.fn(w.waiter.ctx, Status::Aborted("sample buffer closed"));
  }
  NotifySlotWaiters();
}

void SampleBuffer::Reopen() {
  closed_.store(false, std::memory_order_seq_cst);
}

void SampleBuffer::SetCapacity(std::size_t capacity) {
  capacity_.store(capacity == 0 ? 1 : capacity, std::memory_order_seq_cst);
  WakeBlockedProducers();
  NotifySlotWaiters();  // growth frees effective slots for async producers
}

Status SampleBuffer::SetShardCount(std::size_t num_shards)
    NO_THREAD_SAFETY_ANALYSIS {
  const std::size_t target = std::clamp<std::size_t>(
      num_shards == 0 ? DefaultShardCount() : num_shards, 1, shards_.size());
  // Scoped acquisition of every shard mutex, a lock set MutexLock cannot
  // express (one mutex per scope). Construction order keeps the
  // same-rank acquisitions legal under the runtime validator, which
  // still sees each one through Mutex::lock().
  class AllShardsLock {
   public:
    explicit AllShardsLock(std::vector<std::unique_ptr<Shard>>& shards)
        NO_THREAD_SAFETY_ANALYSIS : shards_(shards) {
      for (const auto& shard : shards_) shard->mu.lock();
    }
    ~AllShardsLock() NO_THREAD_SAFETY_ANALYSIS {
      for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
        (*it)->mu.unlock();
      }
    }
    AllShardsLock(const AllShardsLock&) = delete;
    AllShardsLock& operator=(const AllShardsLock&) = delete;

   private:
    std::vector<std::unique_ptr<Shard>>& shards_;
  };
  AllShardsLock locks(shards_);
  // Blocked waiters key on per-shard condition variables; moving the
  // name -> shard map under them would strand their wakeups.
  if (capacity_waiters_.load(std::memory_order_seq_cst) > 0) {
    return Status::FailedPrecondition(
        "cannot reshard while producers are blocked");
  }
  for (const auto& shard : shards_) {
    if (!shard->awaited_names.empty()) {
      return Status::FailedPrecondition(
          "cannot reshard while consumers are blocked");
    }
  }
  if (target == active_shards_.load(std::memory_order_relaxed)) {
    return Status::Ok();
  }

  std::vector<Sample> resident;
  std::vector<std::string> failed;
  for (const auto& shard : shards_) {
    for (auto& [name, sample] : shard->samples) resident.push_back(std::move(sample));
    shard->samples.clear();
    shard->bytes = 0;
    for (const auto& name : shard->failed_names) failed.push_back(name);
    shard->failed_names.clear();
  }
  active_shards_.store(target, std::memory_order_seq_cst);
  for (auto& sample : resident) {
    Shard& home = *shards_[HashName(sample.name) % target];
    home.bytes += sample.size();
    std::string key = sample.name;
    home.samples.emplace(std::move(key), std::move(sample));
  }
  for (auto& name : failed) {
    shards_[HashName(name) % target]->failed_names.insert(std::move(name));
  }
  return Status::Ok();
}

std::size_t SampleBuffer::Capacity() const {
  return capacity_.load(std::memory_order_seq_cst);
}

std::size_t SampleBuffer::ShardCount() const {
  return active_shards_.load(std::memory_order_acquire);
}

std::size_t SampleBuffer::Occupancy() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->samples.size();
  }
  return total;
}

std::uint64_t SampleBuffer::OccupancyBytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

SampleBuffer::Counters SampleBuffer::GetCounters() const {
  Counters total;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    const Counters& c = shard->counters;
    total.inserts += c.inserts;
    total.takes += c.takes;
    total.consumer_hits += c.consumer_hits;
    total.consumer_waits += c.consumer_waits;
    total.consumer_wait_time += c.consumer_wait_time;
    total.producer_blocks += c.producer_blocks;
  }
  return total;
}

}  // namespace prisma::dataplane
