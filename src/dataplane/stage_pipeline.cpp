#include "dataplane/stage_pipeline.hpp"

#include <cstdio>
#include <cstdlib>

namespace prisma::dataplane {

StagePipeline::StagePipeline(
    std::vector<std::shared_ptr<OptimizationObject>> layers)
    : layers_(std::move(layers)) {
  if (layers_.empty()) {
    // Programming error, not a runtime condition: every construction path
    // (builder, Stage convenience ctor) supplies at least one layer.
    std::fprintf(stderr, "StagePipeline requires at least one layer\n");
    std::abort();
  }
  for (const auto& layer : layers_) {
    if (layer == nullptr) {
      std::fprintf(stderr, "StagePipeline layer must not be null\n");
      std::abort();
    }
  }
}

Status StagePipeline::Start() {
  for (std::size_t i = layers_.size(); i-- > 0;) {
    Status s = layers_[i]->Start();
    if (!s.ok()) {
      // Roll back the layers already running (those inside i),
      // outermost-first so nothing forwards into a stopped layer.
      for (std::size_t j = i + 1; j < layers_.size(); ++j) {
        layers_[j]->Stop();
      }
      return s;
    }
  }
  return Status::Ok();
}

void StagePipeline::Stop() {
  for (const auto& layer : layers_) layer->Stop();
}

Result<std::size_t> StagePipeline::Read(const std::string& path,
                                        std::uint64_t offset,
                                        std::span<std::byte> dst) {
  return layers_.front()->Read(path, offset, dst);
}

Result<SampleView> StagePipeline::ReadRef(const std::string& path,
                                          std::uint64_t offset,
                                          std::size_t max_bytes) {
  return layers_.front()->ReadRef(path, offset, max_bytes);
}

void StagePipeline::ReadRefAsync(const std::string& path, std::uint64_t offset,
                                 std::size_t max_bytes, ThreadPool& offload,
                                 OptimizationObject::ReadRefWaiter waiter) {
  layers_.front()->ReadRefAsync(path, offset, max_bytes, offload, waiter);
}

Result<std::uint64_t> StagePipeline::FileSize(const std::string& path) {
  return layers_.front()->FileSize(path);
}

Status StagePipeline::BeginEpoch(std::uint64_t epoch,
                                 const std::vector<std::string>& order) {
  Status first = Status::Ok();
  for (const auto& layer : layers_) {
    Status s = layer->BeginEpoch(epoch, order);
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

Status StagePipeline::ApplyKnobs(const StageKnobs& knobs) {
  Status first = Status::Ok();
  // Flat fields alias the prefetch layer (legacy control surface).
  StageKnobs flat;
  flat.producers = knobs.producers;
  flat.buffer_capacity = knobs.buffer_capacity;
  flat.buffer_shards = knobs.buffer_shards;
  flat.read_rate_bps = knobs.read_rate_bps;
  if (!flat.Empty()) {
    Status s = RoutingLayer().ApplyKnobs(flat);
    if (!s.ok() && first.ok()) first = s;
  }
  for (const auto& entry : knobs.scoped) {
    auto layer = FindLayer(entry.object);
    if (layer == nullptr) {
      if (first.ok()) {
        first = Status::InvalidArgument("pipeline has no layer named '" +
                                        entry.object + "' (knob '" +
                                        entry.knob + "')");
      }
      continue;
    }
    Status s = layer->ApplyNamedKnob(entry.knob, entry.value);
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

StageStatsSnapshot StagePipeline::CollectStats() const {
  StageStatsSnapshot out;
  std::vector<ObjectStatsSection> sections;
  sections.reserve(layers_.size());
  OptimizationObject& routing = RoutingLayer();
  for (const auto& layer : layers_) {
    StageStatsSnapshot snap = layer->CollectStats();
    if (layer.get() == &routing) {
      // The routing layer's snapshot *is* the flat view (the exact stats
      // the old single-object Stage reported).
      StageStatsSnapshot flat = snap;
      flat.objects = std::move(out.objects);  // keep nothing stale
      out = std::move(flat);
    }
    ObjectStatsSection section = SnapshotToSection(layer->Name(), snap);
    layer->AppendNamedStats(section);
    sections.push_back(std::move(section));
  }
  out.objects = std::move(sections);
  return out;
}

std::shared_ptr<OptimizationObject> StagePipeline::FindLayer(
    std::string_view name) const {
  for (const auto& layer : layers_) {
    if (layer->Name() == name) return layer;
  }
  return nullptr;
}

OptimizationObject& StagePipeline::RoutingLayer() const {
  for (const auto& layer : layers_) {
    if (layer->Name() == "prefetch") return *layer;
  }
  return *layers_.front();
}

}  // namespace prisma::dataplane
