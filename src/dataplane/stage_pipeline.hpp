// An ordered chain of optimization objects hosted by one stage (paper
// §III.A: a stage contains "one or more" optimization objects; PAIO's
// follow-on data plane builds stages the same way).
//
// Layers are held outermost-first: layers_[0] services the framework's
// intercepted reads and forwards misses to layers_[1] through an
// ObjectBackend adapter, and so on down to real storage. The chain is
// immutable after construction — composition is decided by config (see
// pipeline_builder.hpp), not mutated at runtime — so the pipeline itself
// needs no lock; all synchronization lives inside the objects.
//
// Lifecycle: Start brings layers up innermost-first so an outer layer
// never forwards into a dead inner one, and rolls already-started layers
// back (outermost-first) if a later Start fails. Stop tears down
// outermost-first for the same reason. BeginEpoch reaches every layer.
//
// Control routing: flat StageKnobs fields alias the "prefetch" layer (or
// the outermost layer when none is named prefetch — the old single-object
// behavior); scoped "<object>.<knob>" entries route to the named layer's
// ApplyNamedKnob. CollectStats reports the routing layer's snapshot in
// the flat fields plus one named ObjectStatsSection per layer.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dataplane/optimization_object.hpp"

namespace prisma::dataplane {

class StagePipeline {
 public:
  /// `layers` is outermost-first and must be non-empty; the objects must
  /// already be wired together (outer layers reading from inner ones via
  /// ObjectBackend). Layer names should be unique — control routing
  /// addresses layers by name and always picks the first match.
  explicit StagePipeline(
      std::vector<std::shared_ptr<OptimizationObject>> layers);

  /// Starts every layer, innermost-first. On failure, stops the layers
  /// already started (outermost-first) and returns the failing layer's
  /// status — a stage is either fully up or fully down.
  Status Start();

  /// Stops every layer, outermost-first. Idempotent.
  void Stop();

  // --- Interception surface: delegates to the outermost layer ----------
  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst);
  Result<SampleView> ReadRef(const std::string& path, std::uint64_t offset,
                             std::size_t max_bytes);
  /// Non-blocking ReadRef (see OptimizationObject::ReadRefAsync).
  void ReadRefAsync(const std::string& path, std::uint64_t offset,
                    std::size_t max_bytes, ThreadPool& offload,
                    OptimizationObject::ReadRefWaiter waiter);
  Result<std::uint64_t> FileSize(const std::string& path);

  /// Announces the epoch to every layer (outermost-first); every layer is
  /// told even if an earlier one fails, and the first error is returned.
  Status BeginEpoch(std::uint64_t epoch, const std::vector<std::string>& order);

  // --- Control interface ------------------------------------------------
  /// Routes flat fields to the prefetch-alias layer and scoped entries to
  /// their named layers. Applies everything it can and returns the first
  /// error (unknown layer names are InvalidArgument).
  Status ApplyKnobs(const StageKnobs& knobs);

  /// Flat fields mirror the prefetch-alias layer; `objects` holds one
  /// named section per layer, outermost first.
  StageStatsSnapshot CollectStats() const;

  std::size_t size() const { return layers_.size(); }
  /// Layer `i`, outermost first. Precondition: i < size().
  const std::shared_ptr<OptimizationObject>& Layer(std::size_t i) const {
    return layers_[i];
  }
  /// First layer whose Name() is `name`, or nullptr.
  std::shared_ptr<OptimizationObject> FindLayer(std::string_view name) const;

 private:
  /// The layer flat knobs/stats alias: "prefetch" if present, else the
  /// outermost layer (what the old single-object Stage exposed).
  OptimizationObject& RoutingLayer() const;

  std::vector<std::shared_ptr<OptimizationObject>> layers_;
};

}  // namespace prisma::dataplane
