// Namespaced-knob parsing and the flat-snapshot <-> named-gauge bridge
// used by StagePipeline's per-object stats (DESIGN.md §12).
#include "dataplane/types.hpp"

#include <cmath>

namespace prisma::dataplane {
namespace {

// One generic snapshot field: its wire/gauge name plus accessors. The
// table is the single source of truth for SnapshotToSection and
// SnapshotForObject, so the two stay inverses of each other.
struct FieldSpec {
  const char* key;
  double (*get)(const StageStatsSnapshot&);
  void (*set)(StageStatsSnapshot&, double);
};

template <typename T>
T FromDouble(double v) {
  if (!(v > 0.0)) return T{0};  // also maps NaN to zero
  return static_cast<T>(std::llround(v));
}

#define PRISMA_FIELD(name)                                             \
  FieldSpec {                                                          \
    #name,                                                             \
        [](const StageStatsSnapshot& s) {                              \
          return static_cast<double>(s.name);                          \
        },                                                             \
        [](StageStatsSnapshot& s, double v) {                          \
          s.name = FromDouble<decltype(s.name)>(v);                    \
        }                                                              \
  }

constexpr FieldSpec kFields[] = {
    PRISMA_FIELD(producers),
    PRISMA_FIELD(buffer_capacity),
    PRISMA_FIELD(buffer_shards),
    PRISMA_FIELD(buffer_occupancy),
    PRISMA_FIELD(buffer_bytes),
    PRISMA_FIELD(samples_produced),
    PRISMA_FIELD(samples_consumed),
    PRISMA_FIELD(consumer_hits),
    PRISMA_FIELD(consumer_waits),
    // Durations travel as fractional seconds, matching the reporting
    // convention everywhere else (ToSeconds).
    FieldSpec{"consumer_wait_seconds",
              [](const StageStatsSnapshot& s) {
                return ToSeconds(s.consumer_wait_time);
              },
              [](StageStatsSnapshot& s, double v) {
                s.consumer_wait_time = FromSeconds(v > 0.0 ? v : 0.0);
              }},
    PRISMA_FIELD(producer_blocks),
    PRISMA_FIELD(passthrough_reads),
    PRISMA_FIELD(queue_depth),
    PRISMA_FIELD(active_readers),
    PRISMA_FIELD(read_retries),
    PRISMA_FIELD(read_failures),
    PRISMA_FIELD(oversize_rejects),
    PRISMA_FIELD(announced_names),
    PRISMA_FIELD(pool_hits),
    PRISMA_FIELD(pool_misses),
    PRISMA_FIELD(pool_cached_bytes),
};

#undef PRISMA_FIELD

}  // namespace

double ObjectStatsSection::Get(std::string_view key, double fallback) const {
  for (const auto& [k, v] : gauges) {
    if (k == key) return v;
  }
  return fallback;
}

void ObjectStatsSection::Set(std::string_view key, double value) {
  for (auto& [k, v] : gauges) {
    if (k == key) {
      v = value;
      return;
    }
  }
  gauges.emplace_back(std::string(key), value);
}

Status StageKnobs::Set(std::string_view path, double value) {
  const auto dot = path.find('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 == path.size()) {
    return Status::InvalidArgument("knob path must be \"<object>.<knob>\": '" +
                                   std::string(path) + "'");
  }
  ObjectKnob entry;
  entry.object = std::string(path.substr(0, dot));
  entry.knob = std::string(path.substr(dot + 1));
  entry.value = value;
  scoped.push_back(std::move(entry));
  return Status::Ok();
}

const ObjectStatsSection* StageStatsSnapshot::FindObject(
    std::string_view object) const {
  for (const auto& section : objects) {
    if (section.object == object) return &section;
  }
  return nullptr;
}

ObjectStatsSection SnapshotToSection(std::string_view object,
                                     const StageStatsSnapshot& snap) {
  ObjectStatsSection section;
  section.object = std::string(object);
  section.gauges.reserve(std::size(kFields));
  for (const auto& field : kFields) {
    section.gauges.emplace_back(field.key, field.get(snap));
  }
  return section;
}

StageStatsSnapshot SnapshotForObject(const StageStatsSnapshot& snap,
                                     std::string_view object) {
  if (object.empty()) return snap;
  const ObjectStatsSection* section = snap.FindObject(object);
  if (section == nullptr) return snap;
  StageStatsSnapshot out = snap;  // keeps `at` and the sections themselves
  for (const auto& field : kFields) {
    field.set(out, section->Get(field.key, field.get(snap)));
  }
  return out;
}

StageKnobs ScopeKnobs(const StageKnobs& knobs, std::string_view object) {
  if (object.empty()) return knobs;
  StageKnobs out;
  out.scoped = knobs.scoped;  // already-scoped entries pass through
  const std::string prefix(object);
  auto add = [&](const char* knob, double value) {
    out.scoped.push_back(ObjectKnob{prefix, knob, value});
  };
  if (knobs.producers) add("producers", static_cast<double>(*knobs.producers));
  if (knobs.buffer_capacity) {
    add("buffer_capacity", static_cast<double>(*knobs.buffer_capacity));
  }
  if (knobs.buffer_shards) {
    add("buffer_shards", static_cast<double>(*knobs.buffer_shards));
  }
  if (knobs.read_rate_bps) add("read_rate_bps", *knobs.read_rate_bps);
  return out;
}

}  // namespace prisma::dataplane
