#include "dataplane/stage_registry.hpp"

namespace prisma::dataplane {

Status StageRegistry::Register(std::shared_ptr<Stage> stage) {
  MutexLock lock(mu_);
  const std::string& id = stage->info().id;
  if (stages_.find(id) != stages_.end()) {
    return Status::AlreadyExists("stage already registered: " + id);
  }
  stages_[id] = std::move(stage);
  return Status::Ok();
}

Status StageRegistry::Unregister(const std::string& id) {
  MutexLock lock(mu_);
  if (stages_.erase(id) == 0) {
    return Status::NotFound("stage not registered: " + id);
  }
  return Status::Ok();
}

std::shared_ptr<Stage> StageRegistry::Find(const std::string& id) const {
  MutexLock lock(mu_);
  const auto it = stages_.find(id);
  return it == stages_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Stage>> StageRegistry::All() const {
  MutexLock lock(mu_);
  std::vector<std::shared_ptr<Stage>> out;
  out.reserve(stages_.size());
  for (const auto& [_, stage] : stages_) out.push_back(stage);
  return out;
}

std::size_t StageRegistry::size() const {
  MutexLock lock(mu_);
  return stages_.size();
}

}  // namespace prisma::dataplane
