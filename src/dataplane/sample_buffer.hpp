// The in-memory sample buffer at the heart of PRISMA's prefetch object.
//
// Producers insert whole files (blocking while the buffer holds N
// samples); consumers take a *specific* file by name, blocking until a
// producer delivers it. The caching policy is the paper's: a sample is
// stored when a producer reads it and evicted when the consumer takes it
// (each file is needed exactly once per epoch).
//
// A single mutex guards the map — deliberately. The paper reports that
// with 8+ PyTorch worker processes "PRISMA presents a performance
// bottleneck upon the synchronization between consumer and producer
// threads accessing the in-memory buffer"; this is that synchronization
// point, and bench/micro_dataplane quantifies it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "dataplane/types.hpp"

namespace prisma::dataplane {

class SampleBuffer {
 public:
  /// `capacity` is the maximum number of resident samples (N, > 0).
  SampleBuffer(std::size_t capacity, std::shared_ptr<const Clock> clock);

  SampleBuffer(const SampleBuffer&) = delete;
  SampleBuffer& operator=(const SampleBuffer&) = delete;

  /// Producer side: blocks while the buffer is full. Aborted when closed.
  /// Duplicate names overwrite (idempotent re-prefetch).
  Status Insert(Sample sample);

  /// Consumer side: blocks until `name` is resident, then removes and
  /// returns it (evict-on-consume). Aborted when closed while waiting.
  Result<Sample> Take(const std::string& name);

  /// Non-blocking probe used by pass-through decisions and tests.
  bool Contains(const std::string& name) const;

  /// Producer-side failure propagation: marks `name` as permanently
  /// failed so consumers blocked in Take(name) wake with an IoError
  /// (and fall back to their pass-through path) instead of hanging.
  /// The mark is consumed by the first Take that observes it.
  void MarkFailed(const std::string& name);

  /// Unblocks all waiters with Aborted and rejects further inserts.
  void Close();

  /// Re-arms a closed buffer (between epochs / jobs).
  void Reopen();

  /// Control knob: resize capacity. Growing wakes blocked producers.
  void SetCapacity(std::size_t capacity);

  std::size_t Capacity() const;
  std::size_t Occupancy() const;
  std::uint64_t OccupancyBytes() const;

  struct Counters {
    std::uint64_t inserts = 0;
    std::uint64_t takes = 0;
    std::uint64_t consumer_hits = 0;   // sample resident when Take arrived
    std::uint64_t consumer_waits = 0;  // Take had to block
    Nanos consumer_wait_time{0};
    std::uint64_t producer_blocks = 0;  // Insert had to block
  };
  Counters GetCounters() const;

 private:
  bool Full() const { return samples_.size() >= capacity_; }

  std::shared_ptr<const Clock> clock_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable sample_arrived_;
  std::unordered_map<std::string, Sample> samples_;
  // Names whose prefetch failed permanently (producer gave up); Take
  // consumes the mark and reports the failure to the consumer.
  std::unordered_set<std::string> failed_names_;
  // Names consumers are currently blocked on (value = waiter count).
  // Producers inserting one of these bypass the capacity gate so the
  // handoff cannot deadlock against a full buffer.
  std::unordered_map<std::string, int> awaited_names_;
  std::size_t capacity_;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
  Counters counters_;
};

}  // namespace prisma::dataplane
