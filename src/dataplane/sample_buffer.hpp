// The in-memory sample buffer at the heart of PRISMA's prefetch object.
//
// Producers insert whole files (blocking while the buffer holds N
// samples); consumers take a *specific* file by name, blocking until a
// producer delivers it. The caching policy is the paper's: a sample is
// stored when a producer reads it and evicted when the consumer takes it
// (each file is needed exactly once per epoch).
//
// The buffer is sharded. The paper reports that with 8+ PyTorch worker
// processes "PRISMA presents a performance bottleneck upon the
// synchronization between consumer and producer threads accessing the
// in-memory buffer" — the prototype guarded the whole map with one
// mutex. Here samples hash by name to one of S shards (default
// S = 2 x hardware_concurrency), each shard owning its own mutex,
// condition variables, resident map, awaited set, and failed set, so
// concurrent producers/consumers touching different files never contend
// on a lock. bench/micro_dataplane quantifies the win at 1/8/32
// concurrent consumers vs the single-shard (= single-mutex) baseline.
//
// The global capacity N stays exact across shards via an atomic
// slot-token scheme: a producer acquires a token before inserting into
// its shard and the consumer releases it on take. A producer that cannot
// get a token parks on its shard's condition variable (it registers in
// `capacity_waiters_` first, so releases and capacity growth know to wake
// it). The paper's direct-handoff rule is preserved per shard: a name a
// consumer is currently blocked on is admitted past the capacity gate
// (forced token, occupancy may transiently exceed N), which is what keeps
// a full buffer from deadlocking against the consumer of an in-flight
// file.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "dataplane/types.hpp"

namespace prisma::dataplane {

class SampleBuffer {
 public:
  /// Re-evaluated while an Insert is blocked on a full buffer; returning
  /// true makes Insert give up with kCancelled (used by retiring
  /// producers so a control-plane shrink never stalls on a full buffer).
  using CancelPredicate = std::function<bool()>;

  /// `capacity` is the maximum number of resident samples (N, > 0).
  /// `num_shards` selects S; 0 means 2 x hardware_concurrency.
  SampleBuffer(std::size_t capacity, std::shared_ptr<const Clock> clock,
               std::size_t num_shards = 0);

  SampleBuffer(const SampleBuffer&) = delete;
  SampleBuffer& operator=(const SampleBuffer&) = delete;

  /// Producer side: blocks while the buffer is full. Aborted when closed.
  /// Duplicate names overwrite (idempotent re-prefetch). If `cancelled`
  /// is provided and turns true while blocked, returns kCancelled without
  /// inserting (pair with WakeBlockedProducers()).
  Status Insert(Sample sample);
  Status Insert(Sample sample, const CancelPredicate& cancelled);

  /// Never-blocking insert: forces a slot when the buffer is full
  /// (transient over-capacity, released by the eventual Take). Used by a
  /// retiring producer to land its in-flight sample rather than dropping
  /// completed read work; callers are bounded by the producer count, so
  /// the overshoot is too. Aborted when closed.
  Status InsertNow(Sample sample);

  /// Consumer side: blocks until `name` is resident, then removes and
  /// returns it (evict-on-consume). Aborted when closed while waiting.
  Result<Sample> Take(const std::string& name);

  /// Allocation-light completion callback for TakeAsync.
  struct TakeWaiter {
    void (*fn)(void* ctx, Result<Sample> result) = nullptr;
    void* ctx = nullptr;
  };

  /// Non-blocking Take for the reactor data plane. If `name` is resident
  /// (or already failed/closed), the callback runs synchronously on the
  /// calling thread; otherwise it is registered as a waiter and runs
  /// later on whichever producer thread delivers via Insert/InsertNow,
  /// MarkFailed, or Close (Aborted). Exactly one invocation either way.
  /// Waiters participate in the direct-handoff capacity bypass just like
  /// blocked Take calls. The callback must not call back into this
  /// buffer; hop through an executor first (e.g. EventLoop::Post).
  void TakeAsync(const std::string& name, TakeWaiter waiter);

  /// One-shot "capacity slot likely free" notification for async
  /// producers pacing their outstanding reads. Runs `fn(ctx)` now (same
  /// thread) if occupancy is below capacity or the buffer is closed;
  /// otherwise once after a slot frees, capacity grows, or Close. The
  /// signal is advisory — a racing producer may retake the slot — so
  /// callers re-check and re-arm. Same reentrancy rule as TakeAsync.
  void WaitForSlot(void (*fn)(void* ctx), void* ctx);

  /// Non-blocking probe used by pass-through decisions and tests.
  bool Contains(const std::string& name) const;

  /// Producer-side failure propagation: marks `name` as permanently
  /// failed so consumers blocked in Take(name) wake with an IoError
  /// (and fall back to their pass-through path) instead of hanging.
  /// The mark is consumed by the first Take that observes it.
  void MarkFailed(const std::string& name);

  /// Unblocks all waiters with Aborted and rejects further inserts.
  void Close();

  /// Re-arms a closed buffer (between epochs / jobs).
  void Reopen();

  /// Control knob: resize capacity. Growing wakes blocked producers.
  void SetCapacity(std::size_t capacity);

  /// Control knob: change the active shard count (0 = default). Resident
  /// samples and failure marks migrate to their new home shards. Fails
  /// with FailedPrecondition while any producer or consumer is blocked —
  /// their wakeups key on per-shard condition variables, so the name ->
  /// shard map must not move under them. The shard count is clamped to
  /// the slots allocated at construction.
  Status SetShardCount(std::size_t num_shards);

  /// Wakes producers blocked in Insert so their cancel predicates are
  /// re-evaluated (e.g. after the producer target shrinks).
  void WakeBlockedProducers();

  std::size_t Capacity() const;
  std::size_t ShardCount() const;
  std::size_t Occupancy() const;
  std::uint64_t OccupancyBytes() const;

  struct Counters {
    std::uint64_t inserts = 0;
    std::uint64_t takes = 0;
    std::uint64_t consumer_hits = 0;   // sample resident when Take arrived
    std::uint64_t consumer_waits = 0;  // Take had to block
    Nanos consumer_wait_time{0};
    std::uint64_t producer_blocks = 0;  // Insert had to block
  };
  /// Exact totals: the sum of every shard's counters.
  Counters GetCounters() const;

 private:
  /// A registered TakeAsync waiter (start time feeds the wait counters).
  struct AsyncTake {
    TakeWaiter waiter;
    Nanos start{0};
  };

  /// An armed WaitForSlot callback.
  struct SlotWaiter {
    void (*fn)(void* ctx) = nullptr;
    void* ctx = nullptr;
  };

  // Sized to a cacheline multiple so neighbouring shards' mutexes do not
  // false-share.
  struct alignas(64) Shard {
    mutable Mutex mu{LockRank::kShard};
    CondVar not_full;
    CondVar sample_arrived;
    std::unordered_map<std::string, Sample> samples GUARDED_BY(mu);
    // TakeAsync waiters by name (FIFO per name); every entry also counts
    // in awaited_names so the direct-handoff rule sees it.
    std::unordered_map<std::string, std::vector<AsyncTake>> take_waiters
        GUARDED_BY(mu);
    // Names whose prefetch failed permanently (producer gave up); Take
    // consumes the mark and reports the failure to the consumer.
    std::unordered_set<std::string> failed_names GUARDED_BY(mu);
    // Names consumers are currently blocked on (value = waiter count).
    // Producers inserting one of these bypass the capacity gate so the
    // handoff cannot deadlock against a full buffer.
    std::unordered_map<std::string, int> awaited_names GUARDED_BY(mu);
    std::uint64_t bytes GUARDED_BY(mu) = 0;
    Counters counters GUARDED_BY(mu);
  };

  // Home-shard resolution is a resolve/lock/re-check loop inlined at
  // each call site (so the static analysis can see which shard mutex is
  // held): hash the name, lock shards_[h % active_shards_], and retry if
  // active_shards_ moved in between. A reshard publishes the new modulus
  // only while holding every shard mutex, so holding one pins the
  // mapping; a stale resolution simply retries against the new modulus.

  bool TryAcquireSlot();
  void ForceAcquireSlot();
  void ReleaseSlot();
  /// Pops the FIFO TakeAsync waiter for `name` (if any) and does the
  /// take-side bookkeeping; the caller delivers outside the shard lock
  /// and releases the sample's slot token.
  std::optional<AsyncTake> ExtractWaiterLocked(Shard& shard,
                                               const std::string& name)
      REQUIRES(shard.mu);
  /// Fires every armed WaitForSlot callback (outside all locks).
  void NotifySlotWaiters();

  std::shared_ptr<const Clock> clock_;

  // Shard storage is allocated once and never moves or shrinks, so a
  // thread that resolved a shard under a stale modulus still locks a
  // live object (and then re-resolves).
  // prisma-lint: unguarded(set once in the ctor; per-shard state is
  // guarded by shard.mu inside Shard)
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> active_shards_;

  // Global slot tokens: one per resident sample, acquired before a shard
  // insert and released on take. seq_cst on the waiter/slot handshake
  // keeps the "waiter registered but release saw zero waiters" window
  // closed (see ReleaseSlot).
  std::atomic<std::size_t> capacity_;
  std::atomic<std::size_t> slots_used_{0};
  std::atomic<std::uint32_t> capacity_waiters_{0};
  std::atomic<bool> closed_{false};

  // WaitForSlot registry. The atomic count lets the hot ReleaseSlot skip
  // the mutex when nobody is armed (same handshake as capacity_waiters_).
  Mutex slot_waiters_mu_{LockRank::kLeaf};
  std::vector<SlotWaiter> slot_waiters_ GUARDED_BY(slot_waiters_mu_);
  std::atomic<std::uint32_t> slot_waiter_count_{0};
};

}  // namespace prisma::dataplane
