// Parallel data-prefetching optimization object (paper §IV, data plane).
//
// Up to `t` producer threads dequeue filenames from a FIFO queue (the
// per-epoch order announced by the framework), read whole files from
// backend storage, and insert them into the bounded SampleBuffer. The
// consumer-facing Read() takes samples from the buffer (evicting them);
// paths that were never announced (e.g. validation files — the prototype
// does not prefetch those, §V.A) fall through to the backend directly.
//
// `t` and the buffer capacity `N` are live control-plane knobs: producer
// threads are long-lived and resize without dropping queued work.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/clock.hpp"
#include "common/event_engine.hpp"
#include "common/histogram.hpp"
#include "common/mutex.hpp"
#include "dataplane/optimization_object.hpp"
#include "dataplane/sample_buffer.hpp"
#include "storage/backend.hpp"
#include "storage/rate_limiter.hpp"

namespace prisma::dataplane {

struct PrefetchOptions {
  std::uint32_t initial_producers = 1;
  std::uint32_t max_producers = 16;
  std::size_t buffer_capacity = 64;  // N, in samples
  /// Buffer shard count S (0 = 2 x hardware_concurrency). Consumers and
  /// producers touching different files contend only within a shard.
  std::size_t buffer_shards = 0;
  /// Hard cap on a single prefetched file (guards the buffer's memory).
  std::uint64_t max_sample_bytes = 64ull * 1024 * 1024;
  /// Transient-fault handling: a failed producer read is retried this
  /// many times (with linear backoff) before the sample is marked failed
  /// and its consumer falls back to pass-through.
  std::uint32_t read_retries = 3;
  Nanos retry_backoff{Millis{2}};
  /// Initial backend read-bandwidth budget (bytes/s; 0 = unlimited).
  /// Adjustable at runtime via StageKnobs::read_rate_bps — the QoS
  /// reservation a multi-tenant control plane enforces per stage.
  double read_rate_bps = 0.0;
  /// Token-bucket depth when rate limiting is active.
  std::uint64_t rate_burst_bytes = 8ull * 1024 * 1024;
  /// Idle-memory budget of the payload buffer pool backend reads draw
  /// from (chunks recycle instead of hitting the allocator per sample).
  std::uint64_t pool_max_cached_bytes = 256ull * 1024 * 1024;
  /// Async producer pump: 0 keeps the legacy model (t blocking producer
  /// threads); > 0 replaces it with ONE pump thread keeping up to
  /// io_depth whole-file reads outstanding on a private event engine
  /// (io_uring when available) — outstanding I/O becomes a knob
  /// ("prefetch.io_depth") decoupled from thread count. Thread cost is
  /// constant (pump + 1 loop + small offload pool) at any depth.
  std::uint32_t io_depth = 0;
  /// Upper bound for the io_depth knob in pump mode.
  std::uint32_t max_io_depth = 256;
};

class PrefetchObject final : public OptimizationObject {
 public:
  PrefetchObject(std::shared_ptr<storage::StorageBackend> backend,
                 PrefetchOptions options,
                 std::shared_ptr<const Clock> clock);
  ~PrefetchObject() override;

  std::string_view Name() const override { return "prefetch"; }

  Status Start() override;
  void Stop() override;

  Status BeginEpoch(std::uint64_t epoch,
                    const std::vector<std::string>& order) override;

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override;

  /// Zero-copy consumer path: returns a refcounted view of the buffered
  /// sample (taking/evicting it from the buffer exactly like Read), with
  /// no byte copy. kFailedPrecondition signals "serve via Read()": the
  /// path was never announced, the stage is stopped, or the producer
  /// failed the sample over to pass-through.
  Result<SampleView> ReadRef(const std::string& path, std::uint64_t offset,
                             std::size_t max_bytes) override;

  /// Native-async ReadRef: a resident sample completes synchronously; a
  /// still-in-flight one registers a SampleBuffer::TakeAsync waiter and
  /// completes from the delivering producer — no thread parks. Only the
  /// rare chunked-read tail (offset > 0 with nothing parked) falls back
  /// to offloading the blocking path.
  void ReadRefAsync(const std::string& path, std::uint64_t offset,
                    std::size_t max_bytes, ThreadPool& offload,
                    ReadRefWaiter waiter) override;

  Result<std::uint64_t> FileSize(const std::string& path) override;

  Status ApplyKnobs(const StageKnobs& knobs) override;
  Status ApplyNamedKnob(std::string_view knob, double value) override;
  StageStatsSnapshot CollectStats() const override;
  void AppendNamedStats(ObjectStatsSection& section) const override;

  /// Time-weighted record of concurrently reading producers (Fig. 3).
  /// Snapshot under lock; callers own the copy.
  OccupancyTimeline ReaderTimeline() const EXCLUDES(timeline_mu_);

  SampleBuffer& buffer() { return buffer_; }

 private:
  /// Heap state of one in-flight async operation (defined in the .cpp).
  struct AsyncRef;
  struct PumpRead;

  void ProducerLoop(std::uint32_t index);
  /// Pump-mode producer: pops names and keeps up to io_depth async
  /// whole-file reads outstanding on pump_engine_.
  void PumpLoop();
  void StartPumpRead(PumpRead* op);
  static void OnPumpRead(void* ctx, Result<SamplePayload> result);
  void FinishPumpRead() EXCLUDES(pump_mu_);
  /// SampleBuffer::TakeAsync completion for ReadRefAsync.
  static void OnTakeForRef(void* ctx, Result<Sample> result);
  /// Serves a chunk from the parked-sample map, or nullopt if `path` has
  /// no parked payload.
  std::optional<Result<SampleView>> TryServeParked(const std::string& path,
                                                   std::uint64_t offset,
                                                   std::size_t max_bytes)
      EXCLUDES(taken_mu_);
  /// Parks `payload` under `path` and serves the first chunk atomically
  /// (one taken_mu_ hold, so a racing reader of the same path cannot
  /// consume the entry in between).
  Result<SampleView> ParkAndServe(const std::string& path,
                                  SamplePayload payload, std::uint64_t offset,
                                  std::size_t max_bytes) EXCLUDES(taken_mu_);
  std::shared_ptr<storage::TokenBucket> CurrentBucket() const
      EXCLUDES(rate_mu_);
  void RecordActiveReaders(std::int32_t delta) EXCLUDES(timeline_mu_);
  /// Drops `path` from the announced set once its per-epoch prefetch life
  /// is over (consumed, failed, or oversized) so the set cannot grow
  /// without bound across epochs.
  void RetireAnnounced(const std::string& path) EXCLUDES(announced_mu_);
  /// Spawns/retires producers to match target_producers_.
  void ReconcileProducers() EXCLUDES(producers_mu_);

  // prisma-lint: unguarded(immutable after construction)
  std::shared_ptr<storage::StorageBackend> backend_;
  PrefetchOptions options_;  // prisma-lint: unguarded(immutable after construction)
  std::shared_ptr<const Clock> clock_;

  SampleBuffer buffer_;  // prisma-lint: unguarded(internally synchronized — sharded mutexes)
  // prisma-lint: unguarded(internally synchronized)
  BoundedQueue<std::string> filename_queue_;  // unbounded FIFO

  // NOTE: the five stage mutexes below share LockRank::kStage; the only
  // nested pair (Stop: producers_mu_ then timeline_mu_) is legal because
  // same-rank locks may nest in declaration (construction) order. Every
  // other pair must not nest — in particular ReadRef releases taken_mu_
  // before retiring a name under announced_mu_.
  Mutex producers_mu_{LockRank::kStage};  // guards producers_ mutations
  std::vector<std::thread> producers_ GUARDED_BY(producers_mu_);
  std::atomic<std::uint32_t> target_producers_{0};
  std::atomic<bool> running_{false};

  // Pump mode (options_.io_depth > 0): the private engine driving async
  // reads, the single pump thread, and the outstanding-read gauge the
  // pump paces against. Both are written only in Start/Stop, serialized
  // by the running_ CAS.
  // prisma-lint: unguarded(written only in Start/Stop, serialized by the running_ CAS)
  std::unique_ptr<EventEngine> pump_engine_;
  // prisma-lint: unguarded(written only in Start/Stop, serialized by the running_ CAS)
  std::thread pump_thread_;
  std::atomic<std::uint32_t> target_io_depth_{0};
  mutable Mutex pump_mu_{LockRank::kStage};
  CondVar pump_cv_;
  std::uint32_t pump_outstanding_ GUARDED_BY(pump_mu_) = 0;

  // The set of announced (prefetchable) names; other paths pass through.
  mutable Mutex announced_mu_{LockRank::kStage};
  std::unordered_set<std::string> announced_ GUARDED_BY(announced_mu_);

  // Payload allocations recycle through this pool (shared with the
  // backend read path; stats surface in CollectStats).
  // prisma-lint: unguarded(pointer set in the constructor; BufferPool is internally synchronized)
  std::shared_ptr<BufferPool> pool_;

  // Samples taken from the buffer but not yet fully consumed (chunked
  // reads); keyed by path, evicted once the consumer reads past the end.
  // Holds payload refs only — consumers copy outside this lock.
  Mutex taken_mu_{LockRank::kStage};
  std::unordered_map<std::string, SamplePayload> taken_ GUARDED_BY(taken_mu_);

  // QoS: producers reserve bytes here before hitting the backend. The
  // pointer is swapped atomically under rate_mu_ when the knob changes.
  mutable Mutex rate_mu_{LockRank::kStage};
  std::shared_ptr<storage::TokenBucket> rate_bucket_
      GUARDED_BY(rate_mu_);  // null = unlimited
  double rate_bps_ GUARDED_BY(rate_mu_) = 0.0;

  std::atomic<std::uint64_t> passthrough_reads_{0};
  std::atomic<std::uint64_t> reads_served_{0};
  // Distinct producer fault counters (a retried-then-successful read is
  // not a failure; an oversized read is not a read error).
  std::atomic<std::uint64_t> read_retries_{0};
  std::atomic<std::uint64_t> read_failures_{0};
  std::atomic<std::uint64_t> oversize_rejects_{0};

  mutable Mutex timeline_mu_{LockRank::kStage};
  // Not atomic: every update already holds the lock to append to the
  // timeline, and a separate atomic invites unguarded increments that
  // would reorder timeline entries.
  std::uint32_t active_readers_ GUARDED_BY(timeline_mu_) = 0;
  OccupancyTimeline reader_timeline_ GUARDED_BY(timeline_mu_);
};

}  // namespace prisma::dataplane
