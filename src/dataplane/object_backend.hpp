// Adapter that lets optimization objects STACK (paper §III.A: objects
// are "self-contained and extensible building blocks").
//
// An OptimizationObject consumes a StorageBackend; ObjectBackend exposes
// an OptimizationObject *as* a StorageBackend, so stages can layer
// mechanisms without either layer knowing about the other:
//
//   PrefetchObject                      (producers + in-memory buffer)
//        | reads via ObjectBackend
//   TieringObject                       (fast-tier promotion, LRU budget)
//        | reads slow tier / fast tier
//   PosixBackend / SyntheticBackend     (actual storage)
//
// The stack is read-oriented (DL training is read-dominated, §IV);
// writes are rejected rather than silently bypassing the upper layers.
#pragma once

#include <atomic>
#include <memory>

#include "dataplane/optimization_object.hpp"
#include "storage/backend.hpp"

namespace prisma::dataplane {

class ObjectBackend final : public storage::StorageBackend {
 public:
  explicit ObjectBackend(std::shared_ptr<OptimizationObject> object)
      : object_(std::move(object)) {}

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override {
    auto n = object_->Read(path, offset, dst);
    if (n.ok()) {
      reads_.fetch_add(1, std::memory_order_relaxed);
      bytes_read_.fetch_add(*n, std::memory_order_relaxed);
    }
    return n;
  }

  Status Write(const std::string&, std::span<const std::byte>) override {
    return Status::FailedPrecondition(
        "ObjectBackend is read-only: writes would bypass the optimization "
        "stack above it");
  }

  Result<std::uint64_t> FileSize(const std::string& path) override {
    return object_->FileSize(path);
  }

  storage::BackendStats Stats() const override {
    storage::BackendStats s;
    s.reads = reads_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::shared_ptr<OptimizationObject> object_;
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
};

}  // namespace prisma::dataplane
