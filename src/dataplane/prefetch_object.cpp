#include "dataplane/prefetch_object.hpp"

#include <algorithm>

#include "common/hot_path.hpp"
#include "common/logging.hpp"

namespace prisma::dataplane {

namespace {
/// How often an idle producer re-checks its retirement flag.
constexpr Millis kProducerPollInterval{20};
}  // namespace

PrefetchObject::PrefetchObject(
    std::shared_ptr<storage::StorageBackend> backend, PrefetchOptions options,
    std::shared_ptr<const Clock> clock)
    : backend_(std::move(backend)),
      options_(options),
      clock_(std::move(clock)),
      buffer_(options.buffer_capacity, clock_, options.buffer_shards),
      pool_(BufferPool::Create(options.pool_max_cached_bytes)) {
  if (options.read_rate_bps > 0.0) {
    rate_bps_ = options.read_rate_bps;
    rate_bucket_ = std::make_shared<storage::TokenBucket>(
        options.read_rate_bps, options.rate_burst_bytes, clock_);
  }
}

PrefetchObject::~PrefetchObject() { Stop(); }

Status PrefetchObject::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("prefetch object already started");
  }
  buffer_.Reopen();
  filename_queue_.Reopen();
  target_producers_.store(
      std::min(options_.initial_producers, options_.max_producers),
      std::memory_order_release);
  {
    MutexLock lock(timeline_mu_);
    reader_timeline_.Record(clock_->Now(), 0);
  }
  ReconcileProducers();
  return Status::Ok();
}

void PrefetchObject::Stop() {
  if (!running_.exchange(false)) return;
  target_producers_.store(0, std::memory_order_release);
  filename_queue_.Close();
  buffer_.Close();
  // Claim the producer handles under the lock, join with it released: a
  // retiring producer can block up to one poll interval in Insert, and
  // nothing else may need producers_mu_ for that long.
  std::vector<std::thread> retired;
  {
    MutexLock lock(producers_mu_);
    retired.swap(producers_);
  }
  for (auto& p : retired) {
    if (p.joinable()) p.join();
  }
  MutexLock tl(timeline_mu_);
  // prisma-lint: allow(no-blocking-under-lock, OccupancyTimeline::Finish is in-memory; the blocking Finish is RecordWriter's)
  reader_timeline_.Finish(clock_->Now());
}

Status PrefetchObject::BeginEpoch(std::uint64_t epoch,
                                  const std::vector<std::string>& order) {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("prefetch object not started");
  }
  {
    MutexLock lock(announced_mu_);
    announced_.insert(order.begin(), order.end());
  }
  for (const auto& name : order) {
    if (Status s = filename_queue_.Push(name); !s.ok()) return s;
  }
  PRISMA_LOG(kDebug, "prefetch")
      << "epoch " << epoch << ": enqueued " << order.size() << " files";
  return Status::Ok();
}

void PrefetchObject::ProducerLoop(std::uint32_t index) {
  // Observed by a blocked Insert so a retiring producer abandons the wait
  // instead of stalling ReconcileProducers until a consumer frees a slot.
  const auto retired = [this, index] {
    return !running_.load(std::memory_order_acquire) ||
           index >= target_producers_.load(std::memory_order_acquire);
  };
  while (running_.load(std::memory_order_acquire) &&
         index < target_producers_.load(std::memory_order_acquire)) {
    auto name = filename_queue_.PopFor(kProducerPollInterval);
    if (!name) {
      if (filename_queue_.closed()) break;
      continue;  // idle; re-check retirement
    }

    // QoS reservation: pay the byte budget before touching the backend.
    if (const auto bucket = CurrentBucket()) {
      const auto size = backend_->FileSize(*name);
      if (size.ok()) {
        const Nanos wait = bucket->Reserve(*size);
        if (wait.count() > 0) {
          std::this_thread::sleep_for(wait);
        }
      }
    }

    // Transient backend faults are retried with a short backoff; after
    // the budget is spent the name is marked failed so any consumer
    // blocked on it wakes and falls back to pass-through instead of
    // hanging (see SampleBuffer::MarkFailed).
    Result<SamplePayload> data =
        Status::Internal("prefetch read not attempted");
    for (std::uint32_t attempt = 0; attempt <= options_.read_retries;
         ++attempt) {
      if (attempt > 0) {
        read_retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(options_.retry_backoff * attempt);
      }
      RecordActiveReaders(+1);
      data = backend_->ReadAllShared(*name, pool_);
      RecordActiveReaders(-1);
      if (data.ok()) break;
    }
    if (!data.ok()) {
      read_failures_.fetch_add(1, std::memory_order_relaxed);
      PRISMA_LOG(kWarn, "prefetch")
          << "producer gave up on " << *name << ": "
          << data.status().ToString();
      buffer_.MarkFailed(*name);
      continue;
    }
    if (data->size() > options_.max_sample_bytes) {
      // Oversized files are never buffered; fail the waiter over to the
      // pass-through path, which serves files of any size.
      oversize_rejects_.fetch_add(1, std::memory_order_relaxed);
      buffer_.MarkFailed(*name);
      continue;
    }
    // Keep a refcounted alias of the payload (no byte copy) so a
    // cancelled insert can still land the sample below.
    // prisma-lint: allow(no-payload-copy, refcount bump only: SamplePayload
    // copies share the underlying bytes)
    SamplePayload payload = *data;
    Sample sample{*name, std::move(*data)};
    const Status inserted = buffer_.Insert(std::move(sample), retired);
    if (inserted.code() == StatusCode::kCancelled) {
      // Retiring mid-insert. The read work is done, so land the sample
      // with a forced slot (transient over-capacity, bounded by the
      // producer count) instead of dropping it to the pass-through path.
      // Re-queueing at the FIFO tail is not an option: it would break
      // the epoch-order invariant that keeps the direct handoff
      // deadlock-free (the consumer's awaited name must stay at or
      // before every name still in flight).
      if (!buffer_.InsertNow(Sample{*name, std::move(payload)}).ok()) {
        buffer_.MarkFailed(*name);  // closed under us
      }
      break;
    }
    if (!inserted.ok()) break;  // closed
  }
}

std::shared_ptr<storage::TokenBucket> PrefetchObject::CurrentBucket() const {
  MutexLock lock(rate_mu_);
  return rate_bucket_;
}

void PrefetchObject::RecordActiveReaders(std::int32_t delta) {
  MutexLock lock(timeline_mu_);
  active_readers_ += static_cast<std::uint32_t>(delta);
  reader_timeline_.Record(clock_->Now(), active_readers_);
}

void PrefetchObject::RetireAnnounced(const std::string& path) {
  MutexLock lock(announced_mu_);
  announced_.erase(path);
}

void PrefetchObject::ReconcileProducers() {
  // Retired threads (index >= target) exit on their own; claim their
  // handles when shrinking so the vector reflects live threads only,
  // and spawn missing indices when growing. A retiree blocked in a
  // full-buffer Insert observes its retirement (the cancel predicate
  // passed to Insert) and gives up — but that still means a join can
  // block for up to one poll interval, so the joins run with
  // producers_mu_ released.
  std::vector<std::thread> retired;
  {
    MutexLock lock(producers_mu_);
    const std::uint32_t target =
        target_producers_.load(std::memory_order_acquire);
    while (producers_.size() > target) {
      retired.push_back(std::move(producers_.back()));
      producers_.pop_back();
    }
    for (std::uint32_t i = static_cast<std::uint32_t>(producers_.size());
         i < target; ++i) {
      producers_.emplace_back([this, i] { ProducerLoop(i); });
    }
  }
  for (auto& p : retired) p.join();
}

PRISMA_HOT_PATH
Result<SampleView> PrefetchObject::ReadRef(const std::string& path,
                                           std::uint64_t offset,
                                           std::size_t max_bytes) {
  bool announced;
  {
    MutexLock lock(announced_mu_);
    announced = announced_.find(path) != announced_.end();
  }
  if (!announced || !running_.load(std::memory_order_acquire)) {
    // Pass-through territory: e.g. validation files (the prototype does
    // not prefetch those — §V.A) or reads before Start(). The caller
    // falls back to Read(), which serves from the backend.
    return Status::FailedPrecondition("not buffered: " + path);
  }

  // Chunked consumption support: a Take()n sample's payload stays parked
  // in taken_ until the consumer has read past its end.
  MutexLock lock(taken_mu_);
  auto it = taken_.find(path);
  if (it == taken_.end()) {
    lock.Unlock();
    if (offset > 0) {
      // Likely an EOF probe after the sample was consumed (a read loop's
      // final call). Never block on the buffer for bytes that cannot
      // exist; answer from metadata instead.
      // prisma-lint: allow(hot-path-purity, EOF probe: at most once per
      // consumed sample, and metadata beats blocking on the buffer)
      const auto size = backend_->FileSize(path);
      if (size.ok() && offset >= *size) return SampleView{};
    }
    auto sample = buffer_.Take(path);
    if (!sample.ok()) {
      // Buffer closed mid-epoch, or the producer gave up on this sample
      // (persistent fault / oversized file): degrade to pass-through —
      // correctness over acceleration. Retire the name so the rest of
      // this file's chunks (and later epochs until re-announced) skip
      // straight to pass-through instead of blocking on the buffer.
      RetireAnnounced(path);
      return Status::FailedPrecondition("sample failed over: " + path);
    }
    lock.Lock();
    // prisma-lint: allow(hot-path-purity, parks the taken payload for
    // chunked reads: one node per in-flight sample, payload moved not
    // copied)
    it = taken_.emplace(path, std::move(sample->payload)).first;
  }

  // Grab a ref under the lock; the bytes stay alive through it even if
  // another chunk's read erases the entry, so no copy happens in here.
  // prisma-lint: allow(no-payload-copy, refcount bump only: SamplePayload
  // copies share the underlying bytes)
  SamplePayload payload = it->second;
  const bool eof = offset >= payload.size();
  const std::size_t n =
      eof ? 0
          : static_cast<std::size_t>(
                std::min<std::uint64_t>(max_bytes, payload.size() - offset));
  const bool consumed = offset + n >= payload.size();
  if (consumed) {
    // Fully consumed (or an EOF probe) -> evicted for good, and the
    // name's per-epoch life is over: drop it from the announced set
    // (re-announced next epoch) so the set stays bounded by in-flight
    // names, not history.
    taken_.erase(it);
  }
  lock.Unlock();
  // Both mutexes are kStage-ranked and deliberately never nest:
  // announced_mu_ is only taken after taken_mu_ is released.
  if (consumed) RetireAnnounced(path);
  if (eof) return SampleView{};
  reads_served_.fetch_add(1, std::memory_order_relaxed);
  return SampleView{std::move(payload), static_cast<std::size_t>(offset), n};
}

PRISMA_HOT_PATH
Result<std::size_t> PrefetchObject::Read(const std::string& path,
                                         std::uint64_t offset,
                                         std::span<std::byte> dst) {
  auto view = ReadRef(path, offset, dst.size());
  if (!view.ok()) {
    if (view.status().code() == StatusCode::kFailedPrecondition) {
      passthrough_reads_.fetch_add(1, std::memory_order_relaxed);
      return backend_->Read(path, offset, dst);
    }
    return view.status();
  }
  const auto src = view->data();
  if (!src.empty()) {
    std::copy_n(src.data(), src.size(), dst.data());
    CopyAccounting::Count(src.size());  // THE one consumer-path copy
  }
  return src.size();
}

Result<std::uint64_t> PrefetchObject::FileSize(const std::string& path) {
  return backend_->FileSize(path);
}

Status PrefetchObject::ApplyKnobs(const StageKnobs& knobs) {
  if (knobs.buffer_capacity) {
    buffer_.SetCapacity(*knobs.buffer_capacity);
  }
  if (knobs.read_rate_bps) {
    MutexLock lock(rate_mu_);
    rate_bps_ = *knobs.read_rate_bps;
    if (rate_bps_ <= 0.0) {
      rate_bucket_.reset();  // lift the limit
    } else if (rate_bucket_ != nullptr) {
      rate_bucket_->SetRate(rate_bps_);
    } else {
      rate_bucket_ = std::make_shared<storage::TokenBucket>(
          rate_bps_, options_.rate_burst_bytes, clock_);
    }
  }
  if (knobs.producers) {
    const std::uint32_t t =
        std::clamp<std::uint32_t>(*knobs.producers, 1, options_.max_producers);
    target_producers_.store(t, std::memory_order_release);
    if (running_.load(std::memory_order_acquire)) {
      // Retirees blocked in a full-buffer Insert re-check their cancel
      // predicate only when woken; kick them so the joins below finish
      // promptly even with no consumer draining the buffer.
      buffer_.WakeBlockedProducers();
      ReconcileProducers();
    }
  }
  if (knobs.buffer_shards) {
    // Applied last: resharding requires a quiescent buffer and reports
    // FailedPrecondition otherwise, which must not block the other knobs.
    return buffer_.SetShardCount(*knobs.buffer_shards);
  }
  return Status::Ok();
}

StageStatsSnapshot PrefetchObject::CollectStats() const {
  StageStatsSnapshot s;
  s.at = clock_->Now();
  s.producers = target_producers_.load(std::memory_order_acquire);
  s.buffer_capacity = buffer_.Capacity();
  s.buffer_shards = buffer_.ShardCount();
  s.buffer_occupancy = buffer_.Occupancy();
  s.buffer_bytes = buffer_.OccupancyBytes();
  const auto c = buffer_.GetCounters();
  s.samples_produced = c.inserts;
  s.samples_consumed = c.takes;
  s.consumer_hits = c.consumer_hits;
  s.consumer_waits = c.consumer_waits;
  s.consumer_wait_time = c.consumer_wait_time;
  s.producer_blocks = c.producer_blocks;
  s.passthrough_reads = passthrough_reads_.load(std::memory_order_relaxed);
  s.queue_depth = filename_queue_.size();
  s.read_retries = read_retries_.load(std::memory_order_relaxed);
  s.read_failures = read_failures_.load(std::memory_order_relaxed);
  s.oversize_rejects = oversize_rejects_.load(std::memory_order_relaxed);
  {
    MutexLock lock(timeline_mu_);
    s.active_readers = active_readers_;
  }
  {
    MutexLock lock(announced_mu_);
    s.announced_names = announced_.size();
  }
  const auto pool_stats = pool_->Stats();
  s.pool_hits = pool_stats.hits;
  s.pool_misses = pool_stats.misses;
  s.pool_cached_bytes = pool_stats.cached_bytes;
  return s;
}

void PrefetchObject::AppendNamedStats(ObjectStatsSection& section) const {
  section.Set("reads_served",
              static_cast<double>(reads_served_.load(std::memory_order_relaxed)));
  MutexLock lock(rate_mu_);
  section.Set("read_rate_bps", rate_bps_);
}

OccupancyTimeline PrefetchObject::ReaderTimeline() const {
  OccupancyTimeline copy;
  {
    MutexLock lock(timeline_mu_);
    copy = reader_timeline_;
  }
  copy.Finish(clock_->Now());
  return copy;
}

}  // namespace prisma::dataplane
