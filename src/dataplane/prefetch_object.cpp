#include "dataplane/prefetch_object.hpp"

#include <algorithm>

#include "common/hot_path.hpp"
#include "common/logging.hpp"

namespace prisma::dataplane {

namespace {
/// How often an idle producer re-checks its retirement flag.
constexpr Millis kProducerPollInterval{20};
}  // namespace

PrefetchObject::PrefetchObject(
    std::shared_ptr<storage::StorageBackend> backend, PrefetchOptions options,
    std::shared_ptr<const Clock> clock)
    : backend_(std::move(backend)),
      options_(options),
      clock_(std::move(clock)),
      buffer_(options.buffer_capacity, clock_, options.buffer_shards),
      pool_(BufferPool::Create(options.pool_max_cached_bytes)) {
  if (options.read_rate_bps > 0.0) {
    rate_bps_ = options.read_rate_bps;
    rate_bucket_ = std::make_shared<storage::TokenBucket>(
        options.read_rate_bps, options.rate_burst_bytes, clock_);
  }
}

PrefetchObject::~PrefetchObject() { Stop(); }

Status PrefetchObject::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("prefetch object already started");
  }
  buffer_.Reopen();
  filename_queue_.Reopen();
  target_producers_.store(
      std::min(options_.initial_producers, options_.max_producers),
      std::memory_order_release);
  {
    MutexLock lock(timeline_mu_);
    reader_timeline_.Record(clock_->Now(), 0);
  }
  if (options_.io_depth > 0) {
    // Pump mode: outstanding I/O is the knob, thread count is constant.
    target_io_depth_.store(
        std::min(options_.io_depth, std::max(1u, options_.max_io_depth)),
        std::memory_order_release);
    EventEngineOptions eopts;
    eopts.workers = 1;
    eopts.offload_threads = 2;
    pump_engine_ = EventEngine::Create(eopts);
    if (Status s = pump_engine_->Start(); !s.ok()) {
      pump_engine_.reset();
      running_.store(false, std::memory_order_release);
      return s;
    }
    pump_thread_ = std::thread([this] { PumpLoop(); });
  } else {
    ReconcileProducers();
  }
  return Status::Ok();
}

void PrefetchObject::Stop() {
  if (!running_.exchange(false)) return;
  target_producers_.store(0, std::memory_order_release);
  filename_queue_.Close();
  buffer_.Close();
  // Claim the producer handles under the lock, join with it released: a
  // retiring producer can block up to one poll interval in Insert, and
  // nothing else may need producers_mu_ for that long.
  std::vector<std::thread> retired;
  {
    MutexLock lock(producers_mu_);
    retired.swap(producers_);
  }
  for (auto& p : retired) {
    if (p.joinable()) p.join();
  }
  if (pump_thread_.joinable()) pump_thread_.join();
  if (pump_engine_ != nullptr) {
    // Drains every outstanding async read (-ECANCELED) and runs the
    // already-queued blocking inserts to completion, so no pump
    // completion can touch this object after Stop returns.
    pump_engine_->Stop();
    pump_engine_.reset();
  }
  MutexLock tl(timeline_mu_);
  // prisma-lint: allow(no-blocking-under-lock, OccupancyTimeline::Finish is in-memory; the blocking Finish is RecordWriter's)
  reader_timeline_.Finish(clock_->Now());
}

Status PrefetchObject::BeginEpoch(std::uint64_t epoch,
                                  const std::vector<std::string>& order) {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("prefetch object not started");
  }
  {
    MutexLock lock(announced_mu_);
    announced_.insert(order.begin(), order.end());
  }
  for (const auto& name : order) {
    if (Status s = filename_queue_.Push(name); !s.ok()) return s;
  }
  PRISMA_LOG(kDebug, "prefetch")
      << "epoch " << epoch << ": enqueued " << order.size() << " files";
  return Status::Ok();
}

void PrefetchObject::ProducerLoop(std::uint32_t index) {
  // Observed by a blocked Insert so a retiring producer abandons the wait
  // instead of stalling ReconcileProducers until a consumer frees a slot.
  const auto retired = [this, index] {
    return !running_.load(std::memory_order_acquire) ||
           index >= target_producers_.load(std::memory_order_acquire);
  };
  while (running_.load(std::memory_order_acquire) &&
         index < target_producers_.load(std::memory_order_acquire)) {
    auto name = filename_queue_.PopFor(kProducerPollInterval);
    if (!name) {
      if (filename_queue_.closed()) break;
      continue;  // idle; re-check retirement
    }

    // QoS reservation: pay the byte budget before touching the backend.
    if (const auto bucket = CurrentBucket()) {
      const auto size = backend_->FileSize(*name);
      if (size.ok()) {
        const Nanos wait = bucket->Reserve(*size);
        if (wait.count() > 0) {
          std::this_thread::sleep_for(wait);
        }
      }
    }

    // Transient backend faults are retried with a short backoff; after
    // the budget is spent the name is marked failed so any consumer
    // blocked on it wakes and falls back to pass-through instead of
    // hanging (see SampleBuffer::MarkFailed).
    Result<SamplePayload> data =
        Status::Internal("prefetch read not attempted");
    for (std::uint32_t attempt = 0; attempt <= options_.read_retries;
         ++attempt) {
      if (attempt > 0) {
        read_retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(options_.retry_backoff * attempt);
      }
      RecordActiveReaders(+1);
      data = backend_->ReadAllShared(*name, pool_);
      RecordActiveReaders(-1);
      if (data.ok()) break;
    }
    if (!data.ok()) {
      read_failures_.fetch_add(1, std::memory_order_relaxed);
      PRISMA_LOG(kWarn, "prefetch")
          << "producer gave up on " << *name << ": "
          << data.status().ToString();
      buffer_.MarkFailed(*name);
      continue;
    }
    if (data->size() > options_.max_sample_bytes) {
      // Oversized files are never buffered; fail the waiter over to the
      // pass-through path, which serves files of any size.
      oversize_rejects_.fetch_add(1, std::memory_order_relaxed);
      buffer_.MarkFailed(*name);
      continue;
    }
    // Keep a refcounted alias of the payload (no byte copy) so a
    // cancelled insert can still land the sample below.
    // prisma-lint: allow(no-payload-copy, refcount bump only: SamplePayload
    // copies share the underlying bytes)
    SamplePayload payload = *data;
    Sample sample{*name, std::move(*data)};
    const Status inserted = buffer_.Insert(std::move(sample), retired);
    if (inserted.code() == StatusCode::kCancelled) {
      // Retiring mid-insert. The read work is done, so land the sample
      // with a forced slot (transient over-capacity, bounded by the
      // producer count) instead of dropping it to the pass-through path.
      // Re-queueing at the FIFO tail is not an option: it would break
      // the epoch-order invariant that keeps the direct handoff
      // deadlock-free (the consumer's awaited name must stay at or
      // before every name still in flight).
      if (!buffer_.InsertNow(Sample{*name, std::move(payload)}).ok()) {
        buffer_.MarkFailed(*name);  // closed under us
      }
      break;
    }
    if (!inserted.ok()) break;  // closed
  }
}

/// Heap state of one in-flight pump read; freed by whichever completion
/// path finishes it (success insert, final failure, or Stop's drain).
struct PrefetchObject::PumpRead {
  PrefetchObject* self = nullptr;
  std::string name;
  std::uint32_t attempt = 0;
};

void PrefetchObject::PumpLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const std::uint32_t depth =
        std::max(1u, target_io_depth_.load(std::memory_order_acquire));
    {
      MutexLock lock(pump_mu_);
      if (pump_outstanding_ >= depth) {
        // Re-check the live knob and running_ at least this often.
        pump_cv_.WaitFor(pump_mu_, kProducerPollInterval);
        continue;
      }
    }
    auto name = filename_queue_.PopFor(kProducerPollInterval);
    if (!name) {
      if (filename_queue_.closed()) break;
      continue;
    }

    // QoS reservation, same as the thread-mode producers: pay the byte
    // budget before the read is issued (the pump thread may sleep; the
    // outstanding reads keep flowing meanwhile).
    if (const auto bucket = CurrentBucket()) {
      const auto size = backend_->FileSize(*name);
      if (size.ok()) {
        const Nanos wait = bucket->Reserve(*size);
        if (wait.count() > 0) std::this_thread::sleep_for(wait);
      }
    }

    {
      MutexLock lock(pump_mu_);
      ++pump_outstanding_;
    }
    RecordActiveReaders(+1);
    StartPumpRead(new PumpRead{this, std::move(*name), 0});
  }
}

void PrefetchObject::StartPumpRead(PumpRead* op) {
  storage::StorageBackend::AsyncIo io;
  io.loop = &pump_engine_->LoopAt(0);
  io.offload = &pump_engine_->Offload();
  backend_->ReadAllSharedAsync(op->name, pool_, io,
                               {&PrefetchObject::OnPumpRead, op});
}

// prisma-lint: allow(no-payload-copy, async completion signature: the
// payload arrives by value from the backend and is moved onward)
void PrefetchObject::OnPumpRead(void* ctx, Result<SamplePayload> result) {
  auto* op = static_cast<PumpRead*>(ctx);
  PrefetchObject* self = op->self;
  self->RecordActiveReaders(-1);

  if (!result.ok()) {
    if (self->running_.load(std::memory_order_acquire) &&
        op->attempt < self->options_.read_retries) {
      // Transient fault: back off on the offload pool (this thread may
      // be the event loop — it must not sleep) and retry.
      ++op->attempt;
      self->read_retries_.fetch_add(1, std::memory_order_relaxed);
      self->pump_engine_->Offload().Submit([op] {
        PrefetchObject* s = op->self;
        std::this_thread::sleep_for(s->options_.retry_backoff * op->attempt);
        if (!s->running_.load(std::memory_order_acquire)) {
          s->buffer_.MarkFailed(op->name);
          s->FinishPumpRead();
          delete op;
          return;
        }
        s->RecordActiveReaders(+1);
        s->StartPumpRead(op);
      });
      return;
    }
    self->read_failures_.fetch_add(1, std::memory_order_relaxed);
    PRISMA_LOG(kWarn, "prefetch")
        << "pump gave up on " << op->name << ": "
        << result.status().ToString();
    self->buffer_.MarkFailed(op->name);
    self->FinishPumpRead();
    delete op;
    return;
  }
  if (result->size() > self->options_.max_sample_bytes) {
    self->oversize_rejects_.fetch_add(1, std::memory_order_relaxed);
    self->buffer_.MarkFailed(op->name);
    self->FinishPumpRead();
    delete op;
    return;
  }

  // The capacity gate may block, so the insert runs on the offload pool
  // (never on the event loop). Waiting consumers bypass the gate via the
  // buffer's direct handoff, exactly as in thread mode.
  self->pump_engine_->Offload().Submit(
      [op, payload = std::move(*result)]() mutable {
        PrefetchObject* s = op->self;
        // prisma-lint: allow(no-payload-copy, refcount bump only:
        // SamplePayload copies share the underlying bytes)
        SamplePayload alias = payload;
        const Status inserted =
            s->buffer_.Insert(Sample{op->name, std::move(payload)}, [s] {
              return !s->running_.load(std::memory_order_acquire);
            });
        if (inserted.code() == StatusCode::kCancelled) {
          // Stopping mid-insert: land the completed read work with a
          // forced slot rather than dropping it (same rationale as the
          // thread-mode producers).
          if (!s->buffer_.InsertNow(Sample{op->name, std::move(alias)}).ok()) {
            s->buffer_.MarkFailed(op->name);  // closed under us
          }
        }
        s->FinishPumpRead();
        delete op;
      });
}

void PrefetchObject::FinishPumpRead() {
  {
    MutexLock lock(pump_mu_);
    if (pump_outstanding_ > 0) --pump_outstanding_;
  }
  pump_cv_.NotifyOne();
}

std::shared_ptr<storage::TokenBucket> PrefetchObject::CurrentBucket() const {
  MutexLock lock(rate_mu_);
  return rate_bucket_;
}

void PrefetchObject::RecordActiveReaders(std::int32_t delta) {
  MutexLock lock(timeline_mu_);
  active_readers_ += static_cast<std::uint32_t>(delta);
  reader_timeline_.Record(clock_->Now(), active_readers_);
}

void PrefetchObject::RetireAnnounced(const std::string& path) {
  MutexLock lock(announced_mu_);
  announced_.erase(path);
}

void PrefetchObject::ReconcileProducers() {
  // Retired threads (index >= target) exit on their own; claim their
  // handles when shrinking so the vector reflects live threads only,
  // and spawn missing indices when growing. A retiree blocked in a
  // full-buffer Insert observes its retirement (the cancel predicate
  // passed to Insert) and gives up — but that still means a join can
  // block for up to one poll interval, so the joins run with
  // producers_mu_ released.
  std::vector<std::thread> retired;
  {
    MutexLock lock(producers_mu_);
    const std::uint32_t target =
        target_producers_.load(std::memory_order_acquire);
    while (producers_.size() > target) {
      retired.push_back(std::move(producers_.back()));
      producers_.pop_back();
    }
    for (std::uint32_t i = static_cast<std::uint32_t>(producers_.size());
         i < target; ++i) {
      producers_.emplace_back([this, i] { ProducerLoop(i); });
    }
  }
  for (auto& p : retired) p.join();
}

PRISMA_HOT_PATH
std::optional<Result<SampleView>> PrefetchObject::TryServeParked(
    const std::string& path, std::uint64_t offset, std::size_t max_bytes) {
  MutexLock lock(taken_mu_);
  auto it = taken_.find(path);
  if (it == taken_.end()) return std::nullopt;

  // Grab a ref under the lock; the bytes stay alive through it even if
  // another chunk's read erases the entry, so no copy happens in here.
  // prisma-lint: allow(no-payload-copy, refcount bump only: SamplePayload
  // copies share the underlying bytes)
  SamplePayload payload = it->second;
  const bool eof = offset >= payload.size();
  const std::size_t n =
      eof ? 0
          : static_cast<std::size_t>(
                std::min<std::uint64_t>(max_bytes, payload.size() - offset));
  const bool consumed = offset + n >= payload.size();
  if (consumed) {
    // Fully consumed (or an EOF probe) -> evicted for good, and the
    // name's per-epoch life is over: drop it from the announced set
    // (re-announced next epoch) so the set stays bounded by in-flight
    // names, not history.
    taken_.erase(it);
  }
  lock.Unlock();
  // Both mutexes are kStage-ranked and deliberately never nest:
  // announced_mu_ is only taken after taken_mu_ is released.
  if (consumed) RetireAnnounced(path);
  if (eof) return Result<SampleView>(SampleView{});
  reads_served_.fetch_add(1, std::memory_order_relaxed);
  return Result<SampleView>(
      SampleView{std::move(payload), static_cast<std::size_t>(offset), n});
}

PRISMA_HOT_PATH
Result<SampleView> PrefetchObject::ParkAndServe(const std::string& path,
                                                // prisma-lint: allow(no-payload-copy, sink: the caller moves the payload in to be parked)
                                                SamplePayload payload,
                                                std::uint64_t offset,
                                                std::size_t max_bytes) {
  MutexLock lock(taken_mu_);
  // Parks the taken payload for chunked reads: one node per in-flight
  // sample, payload moved not copied.
  taken_.insert_or_assign(path, std::move(payload));
  // Serve the first chunk under the same hold (same math as
  // TryServeParked, which cannot be reused here without dropping the
  // lock and racing a concurrent reader of this path).
  const SamplePayload& parked = taken_.find(path)->second;
  // prisma-lint: allow(no-payload-copy, refcount bump only: SamplePayload
  // copies share the underlying bytes)
  SamplePayload ref = parked;
  const bool eof = offset >= ref.size();
  const std::size_t n =
      eof ? 0
          : static_cast<std::size_t>(
                std::min<std::uint64_t>(max_bytes, ref.size() - offset));
  const bool consumed = offset + n >= ref.size();
  if (consumed) taken_.erase(path);
  lock.Unlock();
  if (consumed) RetireAnnounced(path);
  if (eof) return SampleView{};
  reads_served_.fetch_add(1, std::memory_order_relaxed);
  return SampleView{std::move(ref), static_cast<std::size_t>(offset), n};
}

PRISMA_HOT_PATH
Result<SampleView> PrefetchObject::ReadRef(const std::string& path,
                                           std::uint64_t offset,
                                           std::size_t max_bytes) {
  bool announced;
  {
    MutexLock lock(announced_mu_);
    announced = announced_.find(path) != announced_.end();
  }
  if (!announced || !running_.load(std::memory_order_acquire)) {
    // Pass-through territory: e.g. validation files (the prototype does
    // not prefetch those — §V.A) or reads before Start(). The caller
    // falls back to Read(), which serves from the backend.
    return Status::FailedPrecondition("not buffered: " + path);
  }

  // Chunked consumption support: a Take()n sample's payload stays parked
  // in taken_ until the consumer has read past its end.
  if (auto served = TryServeParked(path, offset, max_bytes)) return *served;
  if (offset > 0) {
    // Likely an EOF probe after the sample was consumed (a read loop's
    // final call). Never block on the buffer for bytes that cannot
    // exist; answer from metadata instead.
    // prisma-lint: allow(hot-path-purity, EOF probe: at most once per
    // consumed sample, and metadata beats blocking on the buffer)
    const auto size = backend_->FileSize(path);
    if (size.ok() && offset >= *size) return SampleView{};
  }
  auto sample = buffer_.Take(path);
  if (!sample.ok()) {
    // Buffer closed mid-epoch, or the producer gave up on this sample
    // (persistent fault / oversized file): degrade to pass-through —
    // correctness over acceleration. Retire the name so the rest of
    // this file's chunks (and later epochs until re-announced) skip
    // straight to pass-through instead of blocking on the buffer.
    RetireAnnounced(path);
    return Status::FailedPrecondition("sample failed over: " + path);
  }
  return ParkAndServe(path, std::move(sample->payload), offset, max_bytes);
}

/// Heap state of one in-flight ReadRefAsync waiting on the buffer.
struct PrefetchObject::AsyncRef {
  PrefetchObject* self = nullptr;
  std::string path;
  std::uint64_t offset = 0;
  std::size_t max_bytes = 0;
  ReadRefWaiter waiter;
};

PRISMA_HOT_PATH
void PrefetchObject::ReadRefAsync(const std::string& path,
                                  std::uint64_t offset, std::size_t max_bytes,
                                  ThreadPool& offload, ReadRefWaiter waiter) {
  bool announced;
  {
    MutexLock lock(announced_mu_);
    announced = announced_.find(path) != announced_.end();
  }
  if (!announced || !running_.load(std::memory_order_acquire)) {
    waiter.fn(waiter.ctx, Status::FailedPrecondition("not buffered: " + path));
    return;
  }
  if (auto served = TryServeParked(path, offset, max_bytes)) {
    waiter.fn(waiter.ctx, std::move(*served));
    return;
  }
  if (offset > 0) {
    // EOF probe / mid-file first chunk: the sync path may stat the
    // backend or block on the buffer, so it runs on the offload pool
    // (bounded; at most once per consumed sample on the common pattern).
    // prisma-lint: allow(hot-path-purity, hand-off to the offload pool:
    // one task record per EOF probe / mid-file chunk, not per sample)
    offload.Submit([this, path, offset, max_bytes, waiter] {
      waiter.fn(waiter.ctx, ReadRef(path, offset, max_bytes));
    });
    return;
  }
  // First chunk of a still-in-flight sample: register a waiter and let
  // the delivering producer complete us — no parked thread.
  // prisma-lint: allow(hot-path-purity, one state record per in-flight
  // async read; freed by the exactly-once completion)
  auto* st = new AsyncRef{this, path, offset, max_bytes, waiter};
  buffer_.TakeAsync(path, {&PrefetchObject::OnTakeForRef, st});
}

// prisma-lint: allow(no-payload-copy, async completion signature: the
// taken sample arrives by value and its payload is moved onward)
void PrefetchObject::OnTakeForRef(void* ctx, Result<Sample> result) {
  std::unique_ptr<AsyncRef> st(static_cast<AsyncRef*>(ctx));
  PrefetchObject* self = st->self;
  if (!result.ok()) {
    // Failed over (producer gave up, buffer closed): same degrade-to-
    // pass-through contract as the sync path.
    self->RetireAnnounced(st->path);
    st->waiter.fn(st->waiter.ctx, Status::FailedPrecondition(
                                      "sample failed over: " + st->path));
    return;
  }
  st->waiter.fn(st->waiter.ctx,
                self->ParkAndServe(st->path, std::move(result->payload),
                                   st->offset, st->max_bytes));
}

PRISMA_HOT_PATH
Result<std::size_t> PrefetchObject::Read(const std::string& path,
                                         std::uint64_t offset,
                                         std::span<std::byte> dst) {
  auto view = ReadRef(path, offset, dst.size());
  if (!view.ok()) {
    if (view.status().code() == StatusCode::kFailedPrecondition) {
      passthrough_reads_.fetch_add(1, std::memory_order_relaxed);
      return backend_->Read(path, offset, dst);
    }
    return view.status();
  }
  const auto src = view->data();
  if (!src.empty()) {
    std::copy_n(src.data(), src.size(), dst.data());
    CopyAccounting::Count(src.size());  // THE one consumer-path copy
  }
  return src.size();
}

Result<std::uint64_t> PrefetchObject::FileSize(const std::string& path) {
  return backend_->FileSize(path);
}

Status PrefetchObject::ApplyKnobs(const StageKnobs& knobs) {
  if (knobs.buffer_capacity) {
    buffer_.SetCapacity(*knobs.buffer_capacity);
  }
  if (knobs.read_rate_bps) {
    MutexLock lock(rate_mu_);
    rate_bps_ = *knobs.read_rate_bps;
    if (rate_bps_ <= 0.0) {
      rate_bucket_.reset();  // lift the limit
    } else if (rate_bucket_ != nullptr) {
      rate_bucket_->SetRate(rate_bps_);
    } else {
      rate_bucket_ = std::make_shared<storage::TokenBucket>(
          rate_bps_, options_.rate_burst_bytes, clock_);
    }
  }
  if (knobs.producers) {
    const std::uint32_t t =
        std::clamp<std::uint32_t>(*knobs.producers, 1, options_.max_producers);
    target_producers_.store(t, std::memory_order_release);
    // In pump mode the producer knob is recorded but spawns no threads —
    // outstanding I/O (io_depth) is the concurrency knob there.
    if (running_.load(std::memory_order_acquire) && pump_engine_ == nullptr) {
      // Retirees blocked in a full-buffer Insert re-check their cancel
      // predicate only when woken; kick them so the joins below finish
      // promptly even with no consumer draining the buffer.
      buffer_.WakeBlockedProducers();
      ReconcileProducers();
    }
  }
  if (knobs.buffer_shards) {
    // Applied last: resharding requires a quiescent buffer and reports
    // FailedPrecondition otherwise, which must not block the other knobs.
    return buffer_.SetShardCount(*knobs.buffer_shards);
  }
  return Status::Ok();
}

Status PrefetchObject::ApplyNamedKnob(std::string_view knob, double value) {
  if (knob == "io_depth") {
    const auto cap = std::max(1u, options_.max_io_depth);
    target_io_depth_.store(
        std::clamp<std::uint32_t>(
            static_cast<std::uint32_t>(value > 0.0 ? value : 0.0), 1, cap),
        std::memory_order_release);
    return Status::Ok();  // live: the pump re-reads it every iteration
  }
  return OptimizationObject::ApplyNamedKnob(knob, value);
}

StageStatsSnapshot PrefetchObject::CollectStats() const {
  StageStatsSnapshot s;
  s.at = clock_->Now();
  s.producers = target_producers_.load(std::memory_order_acquire);
  s.buffer_capacity = buffer_.Capacity();
  s.buffer_shards = buffer_.ShardCount();
  s.buffer_occupancy = buffer_.Occupancy();
  s.buffer_bytes = buffer_.OccupancyBytes();
  const auto c = buffer_.GetCounters();
  s.samples_produced = c.inserts;
  s.samples_consumed = c.takes;
  s.consumer_hits = c.consumer_hits;
  s.consumer_waits = c.consumer_waits;
  s.consumer_wait_time = c.consumer_wait_time;
  s.producer_blocks = c.producer_blocks;
  s.passthrough_reads = passthrough_reads_.load(std::memory_order_relaxed);
  s.queue_depth = filename_queue_.size();
  s.read_retries = read_retries_.load(std::memory_order_relaxed);
  s.read_failures = read_failures_.load(std::memory_order_relaxed);
  s.oversize_rejects = oversize_rejects_.load(std::memory_order_relaxed);
  {
    MutexLock lock(timeline_mu_);
    s.active_readers = active_readers_;
  }
  {
    MutexLock lock(announced_mu_);
    s.announced_names = announced_.size();
  }
  const auto pool_stats = pool_->Stats();
  s.pool_hits = pool_stats.hits;
  s.pool_misses = pool_stats.misses;
  s.pool_cached_bytes = pool_stats.cached_bytes;
  return s;
}

void PrefetchObject::AppendNamedStats(ObjectStatsSection& section) const {
  section.Set("reads_served",
              static_cast<double>(reads_served_.load(std::memory_order_relaxed)));
  section.Set("io_depth", static_cast<double>(
                              target_io_depth_.load(std::memory_order_acquire)));
  {
    MutexLock lock(pump_mu_);
    section.Set("outstanding_reads", static_cast<double>(pump_outstanding_));
  }
  MutexLock lock(rate_mu_);
  section.Set("read_rate_bps", rate_bps_);
}

OccupancyTimeline PrefetchObject::ReaderTimeline() const {
  OccupancyTimeline copy;
  {
    MutexLock lock(timeline_mu_);
    copy = reader_timeline_;
  }
  copy.Finish(clock_->Now());
  return copy;
}

}  // namespace prisma::dataplane
