#include "dataplane/stage.hpp"

namespace prisma::dataplane {

Stage::Stage(StageInfo info, std::shared_ptr<OptimizationObject> object)
    : info_(std::move(info)), object_(std::move(object)) {}

Status Stage::Start() { return object_->Start(); }

void Stage::Stop() { object_->Stop(); }

Result<std::size_t> Stage::Read(const std::string& path, std::uint64_t offset,
                                std::span<std::byte> dst) {
  return object_->Read(path, offset, dst);
}

Result<SampleView> Stage::ReadRef(const std::string& path,
                                  std::uint64_t offset,
                                  std::size_t max_bytes) {
  return object_->ReadRef(path, offset, max_bytes);
}

Result<std::vector<std::byte>> Stage::ReadAll(const std::string& path,
                                              std::uint64_t expected_size) {
  std::vector<std::byte> buf(static_cast<std::size_t>(expected_size));
  std::size_t done = 0;
  while (done < buf.size()) {
    auto n = object_->Read(path, done, std::span<std::byte>(buf).subspan(done));
    if (!n.ok()) return n.status();
    if (*n == 0) break;
    done += *n;
  }
  buf.resize(done);
  return buf;
}

Result<std::uint64_t> Stage::FileSize(const std::string& path) {
  return object_->FileSize(path);
}

Status Stage::BeginEpoch(std::uint64_t epoch,
                         const std::vector<std::string>& order) {
  return object_->BeginEpoch(epoch, order);
}

Status Stage::ApplyKnobs(const StageKnobs& knobs) {
  return object_->ApplyKnobs(knobs);
}

StageStatsSnapshot Stage::CollectStats() const {
  return object_->CollectStats();
}

}  // namespace prisma::dataplane
