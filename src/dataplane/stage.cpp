#include "dataplane/stage.hpp"

namespace prisma::dataplane {

Stage::Stage(StageInfo info, StagePipeline pipeline)
    : info_(std::move(info)), pipeline_(std::move(pipeline)) {}

Stage::Stage(StageInfo info, std::shared_ptr<OptimizationObject> object)
    : Stage(std::move(info), StagePipeline({std::move(object)})) {}

Status Stage::Start() { return pipeline_.Start(); }

void Stage::Stop() { pipeline_.Stop(); }

Result<std::size_t> Stage::Read(const std::string& path, std::uint64_t offset,
                                std::span<std::byte> dst) {
  return pipeline_.Read(path, offset, dst);
}

Result<SampleView> Stage::ReadRef(const std::string& path,
                                  std::uint64_t offset,
                                  std::size_t max_bytes) {
  return pipeline_.ReadRef(path, offset, max_bytes);
}

void Stage::ReadRefAsync(const std::string& path, std::uint64_t offset,
                         std::size_t max_bytes, ThreadPool& offload,
                         OptimizationObject::ReadRefWaiter waiter) {
  pipeline_.ReadRefAsync(path, offset, max_bytes, offload, waiter);
}

Result<std::vector<std::byte>> Stage::ReadAll(const std::string& path,
                                              std::uint64_t expected_size) {
  std::vector<std::byte> buf(static_cast<std::size_t>(expected_size));
  std::size_t done = 0;
  while (done < buf.size()) {
    auto n = pipeline_.Read(path, done, std::span<std::byte>(buf).subspan(done));
    if (!n.ok()) return n.status();
    if (*n == 0) break;
    done += *n;
  }
  buf.resize(done);
  return buf;
}

Result<std::uint64_t> Stage::FileSize(const std::string& path) {
  return pipeline_.FileSize(path);
}

Status Stage::BeginEpoch(std::uint64_t epoch,
                         const std::vector<std::string>& order) {
  return pipeline_.BeginEpoch(epoch, order);
}

Status Stage::ApplyKnobs(const StageKnobs& knobs) {
  return pipeline_.ApplyKnobs(knobs);
}

StageStatsSnapshot Stage::CollectStats() const {
  return pipeline_.CollectStats();
}

}  // namespace prisma::dataplane
