// A data-plane stage (paper §III.A / Fig. 1).
//
// One stage serves one DL job's storage traffic. It hosts a StagePipeline
// — an ordered chain of optimization objects built from config (see
// pipeline_builder.hpp) — exposes the POSIX-compliant interception surface
// the framework adapters call, and the control interface the control
// plane drives. Stages register in a StageRegistry so controllers and the
// UDS server can find them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataplane/stage_pipeline.hpp"

namespace prisma::dataplane {

struct StageInfo {
  std::string id;           // unique per registry ("job-17", "tf-lenet", ...)
  std::string framework;    // "tensorflow", "pytorch", ... (informational)
  std::uint64_t tenant_id = 0;  // multi-tenant grouping for fairness policies
  double weight = 1.0;          // priority weight for coordinated shares
};

class Stage {
 public:
  Stage(StageInfo info, StagePipeline pipeline);
  /// Single-object convenience: wraps `object` in a one-layer pipeline.
  Stage(StageInfo info, std::shared_ptr<OptimizationObject> object);

  /// Starts the pipeline (innermost-first, all-or-nothing).
  Status Start();
  /// Stops it, outermost-first (idempotent).
  void Stop();

  // --- POSIX-compliant interception surface (paper: "exposes a single
  // read method to intercept and service read requests") ----------------
  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst);

  /// Zero-copy read: refcounted view of the bytes, no copy into a caller
  /// buffer. kFailedPrecondition means "use Read() instead".
  Result<SampleView> ReadRef(const std::string& path, std::uint64_t offset,
                             std::size_t max_bytes);

  /// Non-blocking ReadRef for reactor callers (see
  /// OptimizationObject::ReadRefAsync for the completion contract).
  void ReadRefAsync(const std::string& path, std::uint64_t offset,
                    std::size_t max_bytes, ThreadPool& offload,
                    OptimizationObject::ReadRefWaiter waiter);

  /// Whole-file convenience used by the adapters.
  Result<std::vector<std::byte>> ReadAll(const std::string& path,
                                         std::uint64_t expected_size);

  /// Metadata intercept (stat-like calls).
  Result<std::uint64_t> FileSize(const std::string& path);

  /// Announces the upcoming epoch's file order to every pipeline layer.
  Status BeginEpoch(std::uint64_t epoch, const std::vector<std::string>& order);

  // --- Control interface ------------------------------------------------
  /// Flat fields alias the prefetch layer; scoped entries route by name.
  Status ApplyKnobs(const StageKnobs& knobs);
  /// Flat fields mirror the prefetch layer; `objects` has every layer.
  StageStatsSnapshot CollectStats() const;

  const StageInfo& info() const { return info_; }
  const StagePipeline& pipeline() const { return pipeline_; }

 private:
  StageInfo info_;
  StagePipeline pipeline_;
};

}  // namespace prisma::dataplane
