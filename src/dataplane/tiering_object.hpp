// Storage-tiering optimization object (the paper's §VII "Implementing
// other optimizations" direction, and the tiering citations of §II).
//
// Reads are served from a fast tier when resident; misses are served from
// the slow tier and asynchronously promoted (write-back into the fast
// tier) by a small pool of migration workers, subject to a byte budget
// with LRU demotion. Demonstrates that the optimization-object abstraction
// supports policies beyond prefetching without framework changes.
#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/bounded_queue.hpp"
#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "dataplane/optimization_object.hpp"
#include "storage/backend.hpp"

namespace prisma::dataplane {

struct TieringOptions {
  /// Byte budget on the fast tier. Live knob ("tiering.fast_tier_capacity"):
  /// shrinking demotes LRU entries immediately.
  std::uint64_t fast_tier_capacity = 1ull << 30;
  /// Migration-worker pool size. Live knob ("tiering.migration_workers",
  /// aliased by the flat `producers` field): workers spawn/retire without
  /// dropping queued promotions.
  std::uint32_t migration_workers = 1;
  /// Only files up to this size are promoted. Live knob
  /// ("tiering.max_promote_bytes").
  std::uint64_t max_promote_bytes = 64ull * 1024 * 1024;
  /// Durable mode: the fast tier survives restarts. Start() rebuilds the
  /// residency index from the fast tier's recovered contents (the fast
  /// tier must implement storage::RecoverableBackend — see
  /// storage/persistent_tier_backend.hpp), so a restarted stage reopens
  /// warm instead of re-promoting its whole working set.
  bool durable = false;
};

class TieringObject final : public OptimizationObject {
 public:
  TieringObject(std::shared_ptr<storage::StorageBackend> slow_tier,
                std::shared_ptr<storage::StorageBackend> fast_tier,
                TieringOptions options, std::shared_ptr<const Clock> clock);
  ~TieringObject() override;

  std::string_view Name() const override { return "tiering"; }

  Status Start() override;
  void Stop() override;

  Result<std::size_t> Read(const std::string& path, std::uint64_t offset,
                           std::span<std::byte> dst) override;

  Result<std::uint64_t> FileSize(const std::string& path) override;

  Status ApplyKnobs(const StageKnobs& knobs) override;
  Status ApplyNamedKnob(std::string_view knob, double value) override;
  StageStatsSnapshot CollectStats() const override;
  void AppendNamedStats(ObjectStatsSection& section) const override;

  struct TierCounters {
    std::uint64_t fast_hits = 0;
    std::uint64_t slow_reads = 0;
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t fast_bytes = 0;
    /// Fast-tier reads that failed under a resident entry; each one
    /// evicted the poisoned entry and fell back to the slow tier, so
    /// the consumer never saw the error.
    std::uint64_t fast_read_errors = 0;
    /// Residency entries rebuilt from the fast tier across Start()s
    /// (durable mode only).
    std::uint64_t recovered_entries = 0;
  };
  TierCounters Counters() const;

  /// True once `path` is resident on the fast tier.
  bool ResidentFast(const std::string& path) const;

 private:
  void MigrationLoop(std::uint32_t index);
  /// Spawns/retires workers to match target_workers_ (live knob).
  void ReconcileWorkers() EXCLUDES(workers_mu_);
  /// Registers a promoted file, demoting LRU entries over budget.
  void Admit(const std::string& path, std::uint64_t bytes) EXCLUDES(mu_);
  /// Demotes LRU entries until fast_bytes_ fits the (possibly shrunken)
  /// budget, leaving headroom for `incoming_bytes`. Returns the victims;
  /// the caller must pass them to UnlinkDemoted with mu_ released (the
  /// unlink is real I/O).
  [[nodiscard]] std::vector<std::string> DemoteOverBudget(
      std::uint64_t incoming_bytes) REQUIRES(mu_);
  /// Unlinks demoted entries from the fast tier (best effort; backends
  /// that cannot remove keep tolerating overwrites).
  void UnlinkDemoted(const std::vector<std::string>& victims);
  /// Durable mode: rebuilds resident_/lru_/fast_bytes_ from the fast
  /// tier's recovered contents.
  Status RecoverResidency() EXCLUDES(mu_);
  /// Degraded-read cleanup: drops a poisoned fast-tier entry from the
  /// index, best-effort unlinks it, and logs. Off the hot path — it
  /// only runs when a fast-tier read failed.
  void EvictPoisoned(const std::string& path, const Status& why)
      EXCLUDES(mu_);
  /// Slow-tier read plus the promotion probe. Deliberately NOT hot:
  /// Read's fast-hit branch is the purity-audited path, and a miss is
  /// slow-tier I/O by definition.
  Result<std::size_t> ReadSlowTier(const std::string& path,
                                   std::uint64_t offset,
                                   std::span<std::byte> dst) EXCLUDES(mu_);

  // prisma-lint: unguarded(immutable after construction)
  std::shared_ptr<storage::StorageBackend> slow_;
  // prisma-lint: unguarded(immutable after construction)
  std::shared_ptr<storage::StorageBackend> fast_;
  // prisma-lint: unguarded(every access to the mutable fields (migration_workers, fast_tier_capacity, max_promote_bytes) holds mu_)
  TieringOptions options_;
  std::shared_ptr<const Clock> clock_;

  // prisma-lint: unguarded(internally synchronized)
  BoundedQueue<std::string> promote_queue_;

  // NOTE: workers_mu_ and mu_ share LockRank::kStage and must never nest:
  // ReconcileWorkers joins retirees with workers_mu_ released, and the
  // migration loop takes only mu_.
  Mutex workers_mu_{LockRank::kStage};  // guards workers_ mutations
  std::vector<std::thread> workers_ GUARDED_BY(workers_mu_);
  std::atomic<std::uint32_t> target_workers_{0};
  std::atomic<bool> running_{false};

  mutable Mutex mu_{LockRank::kStage};
  std::list<std::string> lru_ GUARDED_BY(mu_);  // front = MRU
  struct Resident {
    std::uint64_t bytes;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Resident> resident_ GUARDED_BY(mu_);
  std::unordered_map<std::string, bool> pending_
      GUARDED_BY(mu_);  // queued for promotion
  std::uint64_t fast_bytes_ GUARDED_BY(mu_) = 0;
  TierCounters counters_ GUARDED_BY(mu_);
};

}  // namespace prisma::dataplane
