// Declarative pipeline construction from a config spec (DESIGN.md §12).
//
// A pipeline spec is layer names joined by '|', outermost first — the
// order a read traverses them:
//
//   stage_pipeline = prefetch|tiering
//
// builds PrefetchObject -> ObjectBackend -> TieringObject -> backend.
// Adding an optimization to a job becomes a config edit, not new
// plumbing: the builder wires each layer to the next through an
// ObjectBackend adapter, so no layer knows what sits below it.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "dataplane/prefetch_object.hpp"
#include "dataplane/stage_pipeline.hpp"
#include "dataplane/tiering_object.hpp"
#include "storage/backend.hpp"

namespace prisma::dataplane {

/// Layer names the builder understands, in no particular order.
const std::vector<std::string>& KnownPipelineLayers();

/// Splits "prefetch|tiering" into validated layer names (outermost
/// first). InvalidArgument on empty specs, empty segments, unknown layer
/// names, or duplicates (control routing addresses layers by name, so a
/// name may appear once). Whitespace around segments is ignored.
Result<std::vector<std::string>> ParsePipelineSpec(std::string_view spec);

/// Per-layer construction options. Knobs can also be set after the fact
/// through the pipeline's namespaced control surface.
struct PipelineOptions {
  PrefetchOptions prefetch;
  TieringOptions tiering;
  /// Fast tier for the tiering layer; nullptr gets a fresh in-memory
  /// SyntheticBackend (instant device), the prototype's RAM tier —
  /// unless `tiering.durable` is set, in which case the builder roots a
  /// PersistentTierBackend at `fast_tier_path` (which must be non-empty).
  std::shared_ptr<storage::StorageBackend> fast_tier;
  /// Directory backing the durable fast tier ("tiering.fast_tier_path").
  /// Only consulted when tiering.durable is true and fast_tier is null.
  std::string fast_tier_path;
};

/// Builds the chain described by `spec` over `backend` (the real
/// storage), innermost layer first, wiring adjacent layers through
/// ObjectBackend adapters. The returned pipeline is not started.
Result<StagePipeline> BuildStagePipeline(
    std::string_view spec, std::shared_ptr<storage::StorageBackend> backend,
    const PipelineOptions& options, std::shared_ptr<const Clock> clock);

}  // namespace prisma::dataplane
