// Shared data-plane value types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace prisma::dataplane {

/// One training sample held by the in-memory buffer: a whole file, as the
/// DL framework will consume it (paper §IV: files are read once per epoch).
/// The bytes are a refcounted immutable payload, so handing a sample to a
/// consumer (or evicting it) never copies data — readers that still hold
/// the payload keep it alive.
struct Sample {
  std::string name;
  SamplePayload payload;

  Sample() = default;
  // prisma-lint: allow(no-payload-copy, sink constructor: the payload is
  // moved into place, and moving a SamplePayload is a pointer swap)
  Sample(std::string n, SamplePayload p)
      : name(std::move(n)), payload(std::move(p)) {}
  /// Adopts the vector without copying (tests and benches build samples
  /// from vectors; the storage path builds them from pooled payloads).
  // prisma-lint: allow(no-payload-copy, sink constructor: the vector is
  // moved into the refcounted holder via Adopt — no byte copy)
  Sample(std::string n, std::vector<std::byte> bytes)
      : name(std::move(n)), payload(SamplePayload::Adopt(std::move(bytes))) {}

  std::uint64_t size() const { return payload.size(); }
  std::span<const std::byte> bytes() const { return payload.span(); }
};

/// A consumer's view into a payload: the refcount keeps the bytes alive
/// for as long as the view exists, independent of buffer eviction.
struct SampleView {
  SamplePayload payload;
  std::size_t offset = 0;
  std::size_t length = 0;

  std::span<const std::byte> data() const {
    return payload.span().subspan(offset, length);
  }
};

/// One namespaced knob write, addressed as "<object>.<knob>"
/// ("tiering.migration_workers"): `object` names a pipeline layer by its
/// OptimizationObject::Name(), `knob` is resolved by that layer's
/// ApplyNamedKnob. Values travel as doubles (like the stats gauges);
/// objects round and clamp to their own ranges.
struct ObjectKnob {
  std::string object;
  std::string knob;
  double value = 0.0;
};

/// Tuning knobs a control plane may push into a stage. Unset fields keep
/// their current value, so policies can adjust one knob at a time.
///
/// The flat fields predate stacked pipelines and stay as aliases for the
/// stage's prefetch layer (StagePipeline routes them there; a pipeline
/// without a prefetch layer hands them to its outermost object, which is
/// what the old single-object Stage did). Any layer is addressable
/// through `scoped` entries.
struct StageKnobs {
  /// Number of producer (prefetch) threads `t`.
  std::optional<std::uint32_t> producers;
  /// In-memory buffer capacity `N`, in samples.
  std::optional<std::size_t> buffer_capacity;
  /// Buffer shard count `S` (0 = implementation default). Applied only
  /// when the buffer is quiescent — see SampleBuffer::SetShardCount.
  std::optional<std::size_t> buffer_shards;
  /// Backend read-bandwidth budget in bytes/s (QoS reservation; 0 lifts
  /// the limit). Enforced by objects that own a token bucket.
  std::optional<double> read_rate_bps;
  /// Per-layer knob writes, routed by layer name (see ObjectKnob).
  std::vector<ObjectKnob> scoped;

  /// Appends a scoped entry from a dotted "<object>.<knob>" path.
  /// InvalidArgument when either side of the '.' is empty or missing.
  Status Set(std::string_view path, double value);

  /// True when no field is set and no scoped entry is present — nothing
  /// for ApplyKnobs to do.
  bool Empty() const {
    return !producers && !buffer_capacity && !buffer_shards &&
           !read_rate_bps && scoped.empty();
  }
};

/// Named stats of one pipeline layer: gauges keyed by short names
/// ("samples_consumed", "fast_hits", ...), reported per object so the
/// control plane can observe every layer of a stacked pipeline, not just
/// the outermost one. Serialized over the control wire (ipc/wire.hpp,
/// stats payload v2) and exported as `prisma_object_*` gauges.
struct ObjectStatsSection {
  std::string object;  // layer name, e.g. "prefetch", "tiering"
  std::vector<std::pair<std::string, double>> gauges;

  double Get(std::string_view key, double fallback = 0.0) const;
  /// Appends or overwrites `key`.
  void Set(std::string_view key, double value);
};

/// Point-in-time monitoring snapshot a stage reports to the control plane
/// (paper §III: "collecting monitoring metrics (e.g., cache hits, I/O rate)").
struct StageStatsSnapshot {
  Nanos at{0};

  // Knob state.
  std::uint32_t producers = 0;
  std::size_t buffer_capacity = 0;
  std::size_t buffer_shards = 0;

  // Buffer state (instantaneous).
  std::size_t buffer_occupancy = 0;
  std::uint64_t buffer_bytes = 0;

  // Monotonic counters since stage start.
  std::uint64_t samples_produced = 0;   // producer inserts
  std::uint64_t samples_consumed = 0;   // consumer takes
  std::uint64_t consumer_hits = 0;      // sample ready on arrival
  std::uint64_t consumer_waits = 0;     // consumer had to block
  Nanos consumer_wait_time{0};          // total blocked time
  std::uint64_t producer_blocks = 0;    // producer blocked on full buffer
  std::uint64_t passthrough_reads = 0;  // reads bypassing the buffer
  std::uint64_t queue_depth = 0;        // filenames still to prefetch
  std::uint32_t active_readers = 0;     // producers mid-read right now

  // Producer fault accounting (distinct causes, counted once each).
  std::uint64_t read_retries = 0;     // retry attempts after transient faults
  std::uint64_t read_failures = 0;    // retry budget exhausted; sample failed
  std::uint64_t oversize_rejects = 0; // read ok but too large to buffer
  std::uint64_t announced_names = 0;  // names currently routed via the buffer

  // Payload buffer-pool counters (zero-copy path, DESIGN.md §9).
  std::uint64_t pool_hits = 0;          // pooled chunk reused
  std::uint64_t pool_misses = 0;        // fresh allocation
  std::uint64_t pool_cached_bytes = 0;  // bytes idle in pool free lists

  // Per-object sections, one per pipeline layer, outermost first. Empty
  // for a single-object stage queried through the legacy path; filled by
  // StagePipeline::CollectStats. The flat fields above mirror the
  // prefetch layer (or the outermost layer when there is none), exactly
  // what the old single-object Stage reported.
  std::vector<ObjectStatsSection> objects;

  /// Section for `object`, or nullptr when absent.
  const ObjectStatsSection* FindObject(std::string_view object) const;
};

/// Renders the generic (flat) fields of `snap` into a named-gauge section
/// for layer `object`. Time fields are reported in seconds.
ObjectStatsSection SnapshotToSection(std::string_view object,
                                     const StageStatsSnapshot& snap);

/// Projects the section named `object` back onto the flat snapshot fields
/// (the inverse of SnapshotToSection, up to double precision) so flat-field
/// consumers — the existing autotuner arithmetic — can target any layer.
/// When `object` is empty or absent, returns `snap` unchanged.
StageStatsSnapshot SnapshotForObject(const StageStatsSnapshot& snap,
                                     std::string_view object);

/// Rewrites flat knob fields as scoped "<object>.<knob>" entries so a
/// tuner built on the flat fields can drive a named layer. When `object`
/// is empty, returns `knobs` unchanged (legacy flat routing).
StageKnobs ScopeKnobs(const StageKnobs& knobs, std::string_view object);

}  // namespace prisma::dataplane
