// Shared data-plane value types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/units.hpp"

namespace prisma::dataplane {

/// One training sample held by the in-memory buffer: a whole file, as the
/// DL framework will consume it (paper §IV: files are read once per epoch).
/// The bytes are a refcounted immutable payload, so handing a sample to a
/// consumer (or evicting it) never copies data — readers that still hold
/// the payload keep it alive.
struct Sample {
  std::string name;
  SamplePayload payload;

  Sample() = default;
  Sample(std::string n, SamplePayload p)
      : name(std::move(n)), payload(std::move(p)) {}
  /// Adopts the vector without copying (tests and benches build samples
  /// from vectors; the storage path builds them from pooled payloads).
  Sample(std::string n, std::vector<std::byte> bytes)
      : name(std::move(n)), payload(SamplePayload::Adopt(std::move(bytes))) {}

  std::uint64_t size() const { return payload.size(); }
  std::span<const std::byte> bytes() const { return payload.span(); }
};

/// A consumer's view into a payload: the refcount keeps the bytes alive
/// for as long as the view exists, independent of buffer eviction.
struct SampleView {
  SamplePayload payload;
  std::size_t offset = 0;
  std::size_t length = 0;

  std::span<const std::byte> data() const {
    return payload.span().subspan(offset, length);
  }
};

/// Tuning knobs a control plane may push into a stage. Unset fields keep
/// their current value, so policies can adjust one knob at a time.
struct StageKnobs {
  /// Number of producer (prefetch) threads `t`.
  std::optional<std::uint32_t> producers;
  /// In-memory buffer capacity `N`, in samples.
  std::optional<std::size_t> buffer_capacity;
  /// Buffer shard count `S` (0 = implementation default). Applied only
  /// when the buffer is quiescent — see SampleBuffer::SetShardCount.
  std::optional<std::size_t> buffer_shards;
  /// Backend read-bandwidth budget in bytes/s (QoS reservation; 0 lifts
  /// the limit). Enforced by objects that own a token bucket.
  std::optional<double> read_rate_bps;
};

/// Point-in-time monitoring snapshot a stage reports to the control plane
/// (paper §III: "collecting monitoring metrics (e.g., cache hits, I/O rate)").
struct StageStatsSnapshot {
  Nanos at{0};

  // Knob state.
  std::uint32_t producers = 0;
  std::size_t buffer_capacity = 0;
  std::size_t buffer_shards = 0;

  // Buffer state (instantaneous).
  std::size_t buffer_occupancy = 0;
  std::uint64_t buffer_bytes = 0;

  // Monotonic counters since stage start.
  std::uint64_t samples_produced = 0;   // producer inserts
  std::uint64_t samples_consumed = 0;   // consumer takes
  std::uint64_t consumer_hits = 0;      // sample ready on arrival
  std::uint64_t consumer_waits = 0;     // consumer had to block
  Nanos consumer_wait_time{0};          // total blocked time
  std::uint64_t producer_blocks = 0;    // producer blocked on full buffer
  std::uint64_t passthrough_reads = 0;  // reads bypassing the buffer
  std::uint64_t queue_depth = 0;        // filenames still to prefetch
  std::uint32_t active_readers = 0;     // producers mid-read right now

  // Producer fault accounting (distinct causes, counted once each).
  std::uint64_t read_retries = 0;     // retry attempts after transient faults
  std::uint64_t read_failures = 0;    // retry budget exhausted; sample failed
  std::uint64_t oversize_rejects = 0; // read ok but too large to buffer
  std::uint64_t announced_names = 0;  // names currently routed via the buffer

  // Payload buffer-pool counters (zero-copy path, DESIGN.md §9).
  std::uint64_t pool_hits = 0;          // pooled chunk reused
  std::uint64_t pool_misses = 0;        // fresh allocation
  std::uint64_t pool_cached_bytes = 0;  // bytes idle in pool free lists
};

}  // namespace prisma::dataplane
