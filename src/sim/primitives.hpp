// Coroutine-awaitable synchronization primitives for the DES engine:
// bounded queues, counted resources, and the simulated sample buffer.
// All wake-ups are routed through the engine calendar (zero-delay events)
// so resumption order is deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataplane/types.hpp"
#include "sim/engine.hpp"

namespace prisma::sim {

/// Bounded FIFO queue. capacity == 0 means unbounded.
template <typename T>
class SimQueue {
 public:
  SimQueue(SimEngine& engine, std::size_t capacity)
      : engine_(&engine), capacity_(capacity) {}

  SimQueue(const SimQueue&) = delete;
  SimQueue& operator=(const SimQueue&) = delete;

  /// co_await queue.Push(v) -> bool (false when the queue was closed).
  auto Push(T value) {
    struct Awaiter {
      SimQueue* q;
      T value;
      bool accepted = false;
      bool await_ready() {
        if (q->closed_) return true;  // rejected
        if (!q->poppers_.empty()) {
          // Hand off directly to the oldest popper.
          PopWaiter w = q->poppers_.front();
          q->poppers_.pop_front();
          *w.slot = std::move(value);
          q->engine_->ResumeAfter(Nanos{0}, w.h);
          accepted = true;
          return true;
        }
        if (q->capacity_ == 0 || q->items_.size() < q->capacity_) {
          q->items_.push_back(std::move(value));
          accepted = true;
          return true;
        }
        return false;  // full: suspend
      }
      void await_suspend(std::coroutine_handle<> h) {
        q->pushers_.push_back(PushWaiter{h, &value, &accepted});
      }
      bool await_resume() { return accepted; }
    };
    return Awaiter{this, std::move(value)};
  }

  /// co_await queue.Pop() -> std::optional<T> (nullopt when closed and
  /// drained).
  auto Pop() {
    struct Awaiter {
      SimQueue* q;
      std::optional<T> slot = std::nullopt;
      bool await_ready() {
        if (!q->items_.empty()) {
          slot = std::move(q->items_.front());
          q->items_.pop_front();
          q->AdmitWaitingPusher();
          return true;
        }
        if (!q->pushers_.empty()) {
          // Zero-capacity rendezvous: take straight from a pusher.
          PushWaiter w = q->pushers_.front();
          q->pushers_.pop_front();
          slot = std::move(*w.value);
          *w.accepted = true;
          q->engine_->ResumeAfter(Nanos{0}, w.h);
          return true;
        }
        return q->closed_;  // closed + empty -> ready with nullopt
      }
      void await_suspend(std::coroutine_handle<> h) {
        q->poppers_.push_back(PopWaiter{h, &slot});
      }
      std::optional<T> await_resume() { return std::move(slot); }
    };
    return Awaiter{this};
  }

  /// Non-blocking push; false when closed or full. Always succeeds on an
  /// unbounded queue — the epoch feeders use it to enqueue file orders
  /// without suspending.
  bool TryPush(T value) {
    if (closed_) return false;
    if (!poppers_.empty()) {
      PopWaiter w = poppers_.front();
      poppers_.pop_front();
      *w.slot = std::move(value);
      engine_->ResumeAfter(Nanos{0}, w.h);
      return true;
    }
    if (capacity_ != 0 && items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    return true;
  }

  /// Non-blocking pop (engine-thread only, e.g. from controller hooks).
  std::optional<T> TryPop() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    AdmitWaitingPusher();
    return v;
  }

  void Close() {
    closed_ = true;
    for (auto& w : poppers_) {
      engine_->ResumeAfter(Nanos{0}, w.h);  // slot stays empty -> nullopt
    }
    poppers_.clear();
    for (auto& w : pushers_) {
      *w.accepted = false;
      engine_->ResumeAfter(Nanos{0}, w.h);
    }
    pushers_.clear();
  }

  std::size_t Size() const { return items_.size(); }
  bool Closed() const { return closed_; }
  void SetCapacity(std::size_t capacity) {
    capacity_ = capacity;
    while (!pushers_.empty() &&
           (capacity_ == 0 || items_.size() < capacity_)) {
      AdmitWaitingPusher();
    }
  }

 private:
  struct PopWaiter {
    std::coroutine_handle<> h;
    std::optional<T>* slot;
  };
  struct PushWaiter {
    std::coroutine_handle<> h;
    T* value;
    bool* accepted;
  };

  void AdmitWaitingPusher() {
    if (pushers_.empty()) return;
    if (capacity_ != 0 && items_.size() >= capacity_) return;
    PushWaiter w = pushers_.front();
    pushers_.pop_front();
    items_.push_back(std::move(*w.value));
    *w.accepted = true;
    engine_->ResumeAfter(Nanos{0}, w.h);
  }

  SimEngine* engine_;
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  std::deque<PopWaiter> poppers_;
  std::deque<PushWaiter> pushers_;
};

/// Counted resource (semaphore) with FIFO waiters. The total can be
/// retargeted at runtime (control-plane knob); shrinking below the units
/// currently held simply lets holders drain without replacement.
class SimResource {
 public:
  SimResource(SimEngine& engine, std::int64_t total)
      : engine_(&engine), available_(total), total_(total) {}

  SimResource(const SimResource&) = delete;
  SimResource& operator=(const SimResource&) = delete;

  /// co_await res.Acquire(n);
  auto Acquire(std::int64_t n = 1) {
    struct Awaiter {
      SimResource* r;
      std::int64_t n;
      bool await_ready() {
        if (r->waiters_.empty() && r->available_ >= n) {
          r->available_ -= n;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        r->waiters_.push_back(Waiter{h, n});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, n};
  }

  void Release(std::int64_t n = 1) {
    available_ += n;
    Drain();
  }

  /// Retargets the pool size. Growth wakes waiters; shrink drives
  /// `available` negative until enough holders release.
  void SetTotal(std::int64_t total) {
    available_ += total - total_;
    total_ = total;
    Drain();
  }

  std::int64_t Available() const { return available_; }
  std::int64_t InUse() const { return total_ - available_; }
  std::int64_t Total() const { return total_; }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::int64_t n;
  };

  void Drain() {
    while (!waiters_.empty() && available_ >= waiters_.front().n) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      available_ -= w.n;
      engine_->ResumeAfter(Nanos{0}, w.h);
    }
  }

  SimEngine* engine_;
  std::int64_t available_;
  std::int64_t total_;
  std::deque<Waiter> waiters_;
};

/// DES mirror of dataplane::SampleBuffer: keyed bounded buffer with
/// evict-on-consume semantics and the same counter vocabulary, so the
/// *live* PrismaAutotuner drives simulated pipelines unmodified.
class SimSampleBuffer {
 public:
  SimSampleBuffer(SimEngine& engine, std::size_t capacity)
      : engine_(&engine), capacity_(capacity == 0 ? 1 : capacity) {}

  SimSampleBuffer(const SimSampleBuffer&) = delete;
  SimSampleBuffer& operator=(const SimSampleBuffer&) = delete;

  /// co_await buf.Insert(name, bytes) -> bool (false when closed).
  auto Insert(std::string name, std::uint64_t bytes) {
    struct Awaiter {
      SimSampleBuffer* b;
      std::string name;
      std::uint64_t bytes;
      bool accepted = false;
      bool blocked = false;
      bool await_ready() {
        if (b->closed_) return true;
        // Direct handoff: a name some consumer is blocked on is admitted
        // even into a full buffer (mirrors dataplane::SampleBuffer).
        const bool handoff = b->take_waiters_.count(name) != 0;
        if (handoff || b->resident_.count(name) != 0 ||
            b->resident_.size() < b->capacity_) {
          b->DoInsert(std::move(name), bytes);
          accepted = true;
          return true;
        }
        ++b->counters_.producer_blocks;
        blocked = true;
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        b->insert_waiters_.push_back(InsertWaiter{h, &name});
      }
      bool await_resume() {
        if (blocked && !accepted && !b->closed_) {
          // Woken with space available: complete the insert now.
          b->DoInsert(std::move(name), bytes);
          accepted = true;
        }
        return accepted;
      }
    };
    return Awaiter{this, std::move(name), bytes};
  }

  /// co_await buf.Take(name) -> std::optional<uint64_t bytes>
  /// (nullopt when closed while waiting).
  auto Take(std::string name) {
    struct Awaiter {
      SimSampleBuffer* b;
      std::string name;
      std::optional<std::uint64_t> result = std::nullopt;
      Nanos wait_start{0};
      bool waited = false;
      bool await_ready() {
        const auto it = b->resident_.find(name);
        if (it != b->resident_.end()) {
          ++b->counters_.consumer_hits;
          result = b->DoEvict(it);
          return true;
        }
        if (b->closed_) return true;  // nullopt
        ++b->counters_.consumer_waits;
        waited = true;
        wait_start = b->engine_->Now();
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        b->take_waiters_[name].push_back(TakeWaiter{h, this});
        // A producer blocked on a full buffer may be holding exactly this
        // name; let it re-try through the handoff path.
        b->WakeInsertWaitersForHandoff(name);
      }
      std::optional<std::uint64_t> await_resume() {
        if (waited) {
          b->counters_.consumer_wait_time += b->engine_->Now() - wait_start;
          const auto it = b->resident_.find(name);
          if (it != b->resident_.end()) {
            result = b->DoEvict(it);
          }
        }
        return result;
      }
    };
    return Awaiter{this, std::move(name)};
  }

  void Close() {
    closed_ = true;
    for (auto& [_, waiters] : take_waiters_) {
      for (auto& w : waiters) engine_->ResumeAfter(Nanos{0}, w.h);
    }
    take_waiters_.clear();
    for (auto& w : insert_waiters_) engine_->ResumeAfter(Nanos{0}, w.h);
    insert_waiters_.clear();
  }

  void SetCapacity(std::size_t capacity) {
    capacity_ = capacity == 0 ? 1 : capacity;
    WakeInsertWaiters();
  }

  std::size_t Capacity() const { return capacity_; }
  std::size_t Occupancy() const { return resident_.size(); }
  std::uint64_t OccupancyBytes() const { return bytes_; }

  /// Same counter vocabulary as dataplane::SampleBuffer::Counters.
  struct Counters {
    std::uint64_t inserts = 0;
    std::uint64_t takes = 0;
    std::uint64_t consumer_hits = 0;
    std::uint64_t consumer_waits = 0;
    Nanos consumer_wait_time{0};
    std::uint64_t producer_blocks = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  struct InsertWaiter {
    std::coroutine_handle<> h;
    const std::string* name;  // points into the suspended awaiter's frame
  };
  struct TakeWaiter {
    std::coroutine_handle<> h;
    void* awaiter;
  };

  void WakeInsertWaitersForHandoff(const std::string& name) {
    for (auto it = insert_waiters_.begin(); it != insert_waiters_.end(); ++it) {
      if (*it->name == name) {
        engine_->ResumeAfter(Nanos{0}, it->h);
        insert_waiters_.erase(it);
        return;
      }
    }
  }

  void DoInsert(std::string name, std::uint64_t bytes) {
    auto [it, inserted] = resident_.emplace(std::move(name), bytes);
    if (inserted) {
      bytes_ += bytes;
    } else {
      bytes_ += bytes - it->second;
      it->second = bytes;
    }
    ++counters_.inserts;
    // Wake consumers waiting for this name.
    const auto wit = take_waiters_.find(it->first);
    if (wit != take_waiters_.end()) {
      for (auto& w : wit->second) engine_->ResumeAfter(Nanos{0}, w.h);
      take_waiters_.erase(wit);
    }
  }

  std::uint64_t DoEvict(std::unordered_map<std::string, std::uint64_t>::iterator it) {
    const std::uint64_t bytes = it->second;
    bytes_ -= bytes;
    resident_.erase(it);
    ++counters_.takes;
    WakeInsertWaiters();
    return bytes;
  }

  void WakeInsertWaiters() {
    // Wake one waiter per free slot. A concurrent Insert can still race a
    // woken waiter to a slot, so occupancy may transiently overshoot
    // capacity by at most the producer count — the paper's "at most N"
    // buffer is a target, and the autotuner tolerates the slack.
    std::size_t free_slots =
        capacity_ > resident_.size() ? capacity_ - resident_.size() : 0;
    while (!insert_waiters_.empty() && free_slots > 0) {
      InsertWaiter w = insert_waiters_.front();
      insert_waiters_.pop_front();
      engine_->ResumeAfter(Nanos{0}, w.h);
      --free_slots;
    }
  }

  SimEngine* engine_;
  std::size_t capacity_;
  bool closed_ = false;
  std::unordered_map<std::string, std::uint64_t> resident_;  // name -> bytes
  std::uint64_t bytes_ = 0;
  std::deque<InsertWaiter> insert_waiters_;
  std::map<std::string, std::vector<TakeWaiter>> take_waiters_;
  Counters counters_;
};

}  // namespace prisma::sim
