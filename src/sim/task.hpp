// SimTask — the coroutine type simulation processes are written in.
//
// Semantics:
//  * eager start: the body runs until its first suspension as soon as the
//    coroutine is called;
//  * fire-and-forget with joinability: the frame self-destroys at
//    completion, but completion state lives in a shared block so other
//    coroutines can `co_await task` (join) and plain code can poll
//    `task.Done()`;
//  * exceptions escaping a task terminate the simulation (a modelling
//    bug, never a recoverable condition).
//
// Joining after the frame is gone is safe: only the shared state is
// touched. Waiters are resumed through the engine calendar at the
// completion timestamp, preserving deterministic ordering.
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace prisma::sim {

class SimTask {
 public:
  struct State {
    bool done = false;
    SimEngine* engine = nullptr;
    std::vector<std::coroutine_handle<>> waiters;
  };

  struct promise_type {
    std::shared_ptr<State> state = std::make_shared<State>();

    SimTask get_return_object() {
      return SimTask(state);
    }
    std::suspend_never initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // Mark done and hand waiters to the calendar, then let the frame
        // be destroyed (returning false resumes no one synchronously but
        // allows the coroutine to finish and free itself).
        const std::shared_ptr<State> s = h.promise().state;
        s->done = true;
        if (s->engine != nullptr) {
          for (const auto w : s->waiters) {
            s->engine->ResumeAfter(Nanos{0}, w);
          }
        } else {
          for (const auto w : s->waiters) w.resume();
        }
        s->waiters.clear();
        return false;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };

  SimTask() = default;
  explicit SimTask(std::shared_ptr<State> state) : state_(std::move(state)) {}

  bool Valid() const { return state_ != nullptr; }
  bool Done() const { return !state_ || state_->done; }

  /// Routes waiter wake-ups through `engine` (deterministic ordering).
  /// Call once right after creating the task.
  void BindEngine(SimEngine& engine) {
    if (state_) state_->engine = &engine;
  }

  /// Awaitable join.
  auto operator co_await() const {
    struct Awaiter {
      std::shared_ptr<State> state;
      bool await_ready() const noexcept { return !state || state->done; }
      void await_suspend(std::coroutine_handle<> h) {
        state->waiters.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<State> state_;
};

/// Spawns a task bound to `engine` (helper keeping call sites terse).
template <typename F, typename... Args>
SimTask Spawn(SimEngine& engine, F&& f, Args&&... args) {
  SimTask t = std::forward<F>(f)(std::forward<Args>(args)...);
  t.BindEngine(engine);
  return t;
}

/// Joins every task in the container.
inline SimTask JoinAll(std::vector<SimTask> tasks) {
  for (const auto& t : tasks) {
    co_await t;
  }
}

}  // namespace prisma::sim
