#include "sim/model_zoo.hpp"

#include <algorithm>

namespace prisma::sim {

Nanos ModelProfile::StepTime(std::size_t global_batch,
                             std::size_t num_gpus) const {
  const std::size_t per_replica =
      (global_batch + num_gpus - 1) / std::max<std::size_t>(1, num_gpus);
  return step_overhead + gpu_per_sample * static_cast<std::int64_t>(per_replica);
}

Nanos ModelProfile::ValidationStepTime(std::size_t global_batch,
                                       std::size_t num_gpus) const {
  const std::size_t per_replica =
      (global_batch + num_gpus - 1) / std::max<std::size_t>(1, num_gpus);
  const auto compute = std::chrono::duration_cast<Nanos>(
      gpu_per_sample * static_cast<std::int64_t>(per_replica) *
      validation_compute_factor);
  return step_overhead / 2 + compute;
}

ModelProfile ModelProfile::LeNet() {
  ModelProfile m;
  m.name = "lenet";
  m.gpu_per_sample = Micros{6};
  m.step_overhead = Millis{9};
  m.preprocess_per_sample = Micros{30};
  return m;
}

ModelProfile ModelProfile::AlexNet() {
  ModelProfile m;
  m.name = "alexnet";
  m.gpu_per_sample = Micros{520};
  m.step_overhead = Millis{9};
  m.preprocess_per_sample = Micros{35};
  return m;
}

ModelProfile ModelProfile::ResNet50() {
  ModelProfile m;
  m.name = "resnet50";
  m.gpu_per_sample = Micros{2400};
  m.step_overhead = Millis{9};
  m.preprocess_per_sample = Micros{35};
  return m;
}

}  // namespace prisma::sim
