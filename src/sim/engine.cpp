#include "sim/engine.hpp"

#include <utility>

namespace prisma::sim {

SimEngine::SimEngine() : clock_(std::make_shared<ManualClock>()) {}

void SimEngine::ScheduleAt(Nanos at, std::function<void()> fn) {
  if (at < now_) at = now_;
  calendar_.push(Event{at, next_seq_++, std::move(fn)});
}

void SimEngine::ScheduleAfter(Nanos delay, std::function<void()> fn) {
  ScheduleAt(now_ + (delay.count() > 0 ? delay : Nanos{0}), std::move(fn));
}

void SimEngine::ResumeAt(Nanos at, std::coroutine_handle<> h) {
  ScheduleAt(at, [h] { h.resume(); });
}

void SimEngine::ResumeAfter(Nanos delay, std::coroutine_handle<> h) {
  ScheduleAfter(delay, [h] { h.resume(); });
}

std::uint64_t SimEngine::Run(Nanos until) {
  std::uint64_t processed = 0;
  while (!calendar_.empty()) {
    const Event& top = calendar_.top();
    if (top.at > until) break;
    // Move the closure out before popping so it can schedule new events.
    Event ev{top.at, top.seq, std::move(const_cast<Event&>(top).fn)};
    calendar_.pop();
    now_ = ev.at;
    clock_->Set(now_);
    ev.fn();
    ++processed;
  }
  events_processed_ += processed;
  if (now_ < until && until != Nanos::max()) {
    now_ = until;
    clock_->Set(now_);
  }
  return processed;
}

}  // namespace prisma::sim
