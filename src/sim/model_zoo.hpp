// Cost profiles of the paper's three workloads (§V: "I/O-bound models,
// namely LeNet and AlexNet, and a compute-bound model, ResNet-50").
//
// The paper uses the models only as load generators with different
// compute/I-O ratios; we capture each as per-step GPU time plus per-sample
// CPU pre-processing. Constants are calibrated against the paper's
// testbed-scale results (see EXPERIMENTS.md, "Calibration"); they are NOT
// microarchitectural claims about V100s.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace prisma::sim {

struct ModelProfile {
  std::string name;
  /// GPU compute per sample on one replica (fwd + bwd + update share).
  Nanos gpu_per_sample{0};
  /// Fixed per-step framework dispatch/synchronization overhead (kernel
  /// launches, MirroredStrategy all-reduce setup, feed plumbing). Large
  /// relative to compute for tiny models — this is why larger batches
  /// help the optimized setups (paper §V.A).
  Nanos step_overhead{Millis{9}};
  /// CPU pre-processing (decode/augment) per sample.
  Nanos preprocess_per_sample{Micros{30}};
  /// Validation runs forward-only: fraction of gpu_per_sample.
  double validation_compute_factor = 0.35;

  /// Synchronous data-parallel step time for a global batch split across
  /// `num_gpus` replicas (replicas run in lockstep; allreduce inside the
  /// overhead term).
  Nanos StepTime(std::size_t global_batch, std::size_t num_gpus) const;

  /// Validation (forward-only) step time.
  Nanos ValidationStepTime(std::size_t global_batch,
                           std::size_t num_gpus) const;

  static ModelProfile LeNet();
  static ModelProfile AlexNet();
  static ModelProfile ResNet50();
};

}  // namespace prisma::sim
