// DES storage device: charges virtual service time for each read using
// the shared DeviceModel (concurrency-dependent bandwidth sharing), an
// optional page-cache model, and deterministic per-read jitter. Records
// the concurrent-reader timeline used for Fig. 3.
#pragma once

#include <cstdint>
#include <string>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "storage/device_model.hpp"
#include "storage/page_cache.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace prisma::sim {

struct SimStorageOptions {
  storage::DeviceProfile profile = storage::DeviceProfile::NvmeP4600();
  std::uint64_t page_cache_bytes = 0;
  std::uint64_t seed = 11;
};

class SimStorage {
 public:
  SimStorage(SimEngine& engine, SimStorageOptions options);

  /// Awaitable full-file read: completes after the modeled service time.
  /// `co_await storage.Read(name, bytes);`
  SimTask Read(std::string path, std::uint64_t bytes);

  std::uint32_t Outstanding() const { return outstanding_; }
  std::uint64_t ReadsCompleted() const { return reads_; }
  std::uint64_t BytesRead() const { return bytes_read_; }

  /// Concurrent-reader step function over virtual time (Fig. 3 input).
  /// Finished at the engine's current time.
  OccupancyTimeline ReaderTimeline() const;

  storage::PageCacheModel& page_cache() { return cache_; }
  const storage::DeviceModel& device() const { return device_; }

 private:
  SimTask ReadImpl(std::string path, std::uint64_t bytes);
  void RecordOutstanding();

  SimEngine* engine_;
  SimStorageOptions options_;
  storage::DeviceModel device_;
  storage::PageCacheModel cache_;
  Xoshiro256 rng_;

  std::uint32_t outstanding_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t bytes_read_ = 0;
  OccupancyTimeline timeline_;
};

}  // namespace prisma::sim
