// Deterministic single-threaded discrete-event simulation engine.
//
// The engine owns a virtual clock and an event calendar; simulation
// processes are C++20 coroutines (sim/task.hpp) that suspend on awaitables
// (Delay, queue/resource operations) and are resumed by calendar events.
// Determinism: events at equal timestamps fire in schedule order (FIFO via
// a monotonically increasing sequence number), and all randomness flows
// through seeded RNGs — identical configs give identical results.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/clock.hpp"
#include "common/units.hpp"

namespace prisma::sim {

class SimEngine {
 public:
  SimEngine();

  Nanos Now() const { return now_; }

  /// The engine's clock as a prisma::Clock, for code shared with the live
  /// system (e.g. stats timestamps).
  const std::shared_ptr<ManualClock>& clock() const { return clock_; }

  /// Schedules `fn` to run at absolute virtual time `at` (clamped to Now).
  void ScheduleAt(Nanos at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after Now.
  void ScheduleAfter(Nanos delay, std::function<void()> fn);

  /// Convenience for resuming a suspended coroutine.
  void ResumeAt(Nanos at, std::coroutine_handle<> h);
  void ResumeAfter(Nanos delay, std::coroutine_handle<> h);

  /// Runs until the calendar drains or `until` is reached (whichever is
  /// first). Returns the number of events processed.
  std::uint64_t Run(Nanos until = Nanos::max());

  /// True when no events remain (suspended coroutines may still exist —
  /// that is a deadlock if they were expected to finish).
  bool Idle() const { return calendar_.empty(); }

  std::uint64_t EventsProcessed() const { return events_processed_; }

  /// Awaitable: suspend the current coroutine for `d` of virtual time.
  auto Delay(Nanos d) {
    struct Awaiter {
      SimEngine* engine;
      Nanos d;
      bool await_ready() const noexcept { return d.count() <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        engine->ResumeAfter(d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

 private:
  struct Event {
    Nanos at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO among equal timestamps
    }
  };

  std::shared_ptr<ManualClock> clock_;
  Nanos now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> calendar_;
};

}  // namespace prisma::sim
