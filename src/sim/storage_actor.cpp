#include "sim/storage_actor.hpp"

#include <algorithm>

namespace prisma::sim {

SimStorage::SimStorage(SimEngine& engine, SimStorageOptions options)
    : engine_(&engine),
      options_(options),
      device_(options.profile),
      cache_(options.page_cache_bytes),
      rng_(options.seed) {
  timeline_.Record(engine_->Now(), 0);
}

SimTask SimStorage::Read(std::string path, std::uint64_t bytes) {
  SimTask t = ReadImpl(std::move(path), bytes);
  t.BindEngine(*engine_);
  return t;
}

void SimStorage::RecordOutstanding() {
  timeline_.Record(engine_->Now(), outstanding_);
}

SimTask SimStorage::ReadImpl(std::string path, std::uint64_t bytes) {
  const bool hit = cache_.AccessAndAdmit(path, bytes);

  ++outstanding_;
  RecordOutstanding();

  Nanos service;
  if (hit) {
    // Memory-speed copy; model as fixed 8 GB/s, no jitter.
    service = FromSeconds(static_cast<double>(bytes) / 8.0e9);
  } else {
    service = device_.ServiceTime(bytes, outstanding_);
    if (options_.profile.jitter_frac > 0.0) {
      const double jitter =
          std::max(0.1, rng_.NextGaussian(1.0, options_.profile.jitter_frac));
      service = FromSeconds(ToSeconds(service) * jitter);
    }
  }
  co_await engine_->Delay(service);

  --outstanding_;
  RecordOutstanding();
  ++reads_;
  bytes_read_ += bytes;
}

OccupancyTimeline SimStorage::ReaderTimeline() const {
  OccupancyTimeline copy = timeline_;
  copy.Finish(engine_->Now());
  return copy;
}

}  // namespace prisma::sim
