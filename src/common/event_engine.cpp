// Factory + the epoll fallback implementation of EventEngine.
//
// The epoll loop is a classic readiness reactor: non-blocking socket
// attempts (MSG_DONTWAIT) with EAGAIN parking the op on a level-
// triggered epoll set, plus a blocking-offload pool for file reads
// (pread against a dup() of the caller's fd into a private bounce
// buffer, so a cancelled read can never scribble on a freed caller
// buffer). The io_uring implementation lives in uring_engine.cpp.
#include "common/event_engine.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "common/event_engine_internal.hpp"

namespace prisma {
namespace {

using detail::Op;
using detail::OpSlab;
using detail::TaskMailbox;

class EpollLoop final : public EventLoop {
 public:
  Status Open(const EventEngineOptions& /*opts*/, ThreadPool* offload) {
    offload_ = offload;
    if (Status s = mail_.Open(); !s.ok()) return s;
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) {
      return Status::IoError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = mail_.event_fd();
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, mail_.event_fd(), &ev) != 0) {
      return Status::IoError(std::string("epoll_ctl(eventfd): ") +
                             std::strerror(errno));
    }
    return Status::Ok();
  }

  void Run() {
    thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
    epoll_event evs[64];
    for (;;) {
      mail_.Drain();
      ProcessReady();
      if (stop_.load(std::memory_order_acquire)) break;
      const int n = ::epoll_wait(epfd_, evs, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        PRISMA_LOG(kWarn, "engine")
            << "epoll_wait failed: " << std::strerror(errno);
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = evs[i].data.fd;
        if (fd == mail_.event_fd()) {
          mail_.ConsumeEvent();
          continue;
        }
        auto it = fds_.find(fd);
        if (it == fds_.end()) continue;
        const std::uint32_t events = evs[i].events;
        // EPOLLERR/EPOLLHUP are delivered regardless of the armed mask:
        // retry both directions so the op collects the real errno.
        if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) && it->second.rd) {
          ready_.push_back(OpSlab::IdOf(*it->second.rd));
        }
        if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) && it->second.wr) {
          ready_.push_back(OpSlab::IdOf(*it->second.wr));
        }
      }
    }
    DrainOnExit();
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    mail_.Kick();
  }

  void CloseFds() {
    if (epfd_ >= 0) {
      ::close(epfd_);
      epfd_ = -1;
    }
    mail_.CloseFd();
  }

  // --- EventLoop -------------------------------------------------------

  void Post(std::function<void()> fn) override { mail_.Push(std::move(fn)); }

  PRISMA_HOT_PATH OpId AsyncAccept(int listen_fd, IoCallback cb) override {
    CheckLoopThread();
    // accept must never block the loop; make the listen fd non-blocking
    // (idempotent, and harmless for the io_uring engine's callers).
    const int flags = ::fcntl(listen_fd, F_GETFL, 0);
    if (flags >= 0 && (flags & O_NONBLOCK) == 0) {
      ::fcntl(listen_fd, F_SETFL, flags | O_NONBLOCK);
    }
    Op* op = ops_.Acquire(Op::Kind::kAccept);
    op->fd = listen_fd;
    op->cb = cb;
    return Enqueue(op);
  }

  PRISMA_HOT_PATH OpId AsyncRecvSome(int fd, std::span<std::byte> dst,
                                     IoCallback cb) override {
    CheckLoopThread();
    Op* op = ops_.Acquire(Op::Kind::kRecv);
    op->fd = fd;
    op->cb = cb;
    op->buf = dst.data();
    op->len = dst.size();
    return Enqueue(op);
  }

  PRISMA_HOT_PATH OpId AsyncSendSome(int fd, const iovec* iov,
                                     unsigned iov_count,
                                     IoCallback cb) override {
    CheckLoopThread();
    Op* op = ops_.Acquire(Op::Kind::kSend);
    op->fd = fd;
    op->cb = cb;
    if (iov_count > kMaxSendIoVec) {
      op->has_immediate_res = true;
      op->immediate_res = -EINVAL;
      return Enqueue(op);
    }
    for (unsigned i = 0; i < iov_count; ++i) op->iov[i] = iov[i];
    op->iov_count = iov_count;
    op->msg = msghdr{};
    op->msg.msg_iov = op->iov;
    op->msg.msg_iovlen = iov_count;
    return Enqueue(op);
  }

  OpId AsyncReadFile(int fd, std::span<std::byte> dst, std::uint64_t offset,
                     IoCallback cb) override {
    CheckLoopThread();
    Op* op = ops_.Acquire(Op::Kind::kFile);
    op->fd = fd;
    op->cb = cb;
    op->buf = dst.data();
    op->len = dst.size();
    op->offset = offset;
    const OpId id = OpSlab::IdOf(*op);
    // dup so the caller may close `fd` right after the callback: the
    // offload pread holds its own reference.
    const int dupfd = ::fcntl(fd, F_DUPFD_CLOEXEC, 0);
    if (dupfd < 0) {
      op->has_immediate_res = true;
      op->immediate_res = -errno;
      ready_.push_back(id);
      return id;
    }
    const std::size_t len = op->len;
    const std::uint64_t off = op->offset;
    (void)offload_->Submit([this, id, dupfd, len, off] {
      // Bounce buffer: the loop may cancel the op (freeing the caller's
      // buffer) while this pread is in flight; the copy into the caller
      // happens on the loop thread only if the op is still live.
      std::shared_ptr<std::byte[]> bounce(new std::byte[len]);
      ssize_t r;
      do {
        r = ::pread(dupfd, bounce.get(), len, off);
      } while (r < 0 && errno == EINTR);
      const int res = r >= 0 ? static_cast<int>(r) : -errno;
      ::close(dupfd);
      Post([this, id, res, bounce = std::move(bounce)] {
        Op* op = ops_.Find(id);
        if (op == nullptr) return;  // cancelled or already drained
        if (res > 0) std::memcpy(op->buf, bounce.get(), res);
        Complete(op, res);
      });
    });
    return id;
  }

  void Cancel(OpId id) override {
    CheckLoopThread();
    Op* op = ops_.Find(id);
    if (op == nullptr || op->cancel_requested) return;
    op->cancel_requested = true;
    // Parked (armed) and offloaded ops are not in ready_; schedule them
    // so the next ProcessReady pass delivers -ECANCELED. Ops already in
    // ready_ get the flag checked at attempt time.
    if (op->armed || op->kind == Op::Kind::kFile) {
      ready_.push_back(id);
    }
  }

  bool OnLoopThread() const override {
    return thread_id_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  std::size_t live_ops() const { return ops_.live_count(); }

 private:
  struct FdReg {
    Op* rd = nullptr;
    Op* wr = nullptr;
    bool registered = false;
  };

  void CheckLoopThread() const {
    // Post() is the only cross-thread entry point; a submission from a
    // foreign thread would race the (lock-free) op slab.
    if (thread_id_.load(std::memory_order_acquire) !=
        std::thread::id{} &&
        !OnLoopThread()) {
      PRISMA_LOG(kError, "engine")
          << "EventLoop operation submitted off the loop thread";
      std::abort();
    }
  }

  PRISMA_HOT_PATH OpId Enqueue(Op* op) {
    const OpId id = OpSlab::IdOf(*op);
    // prisma-lint: allow(hot-path-purity, ready-queue growth amortizes
    // to the high-water mark of ops per loop iteration)
    ready_.push_back(id);
    return id;
  }

  /// Attempts every scheduled op. Callbacks run here and may submit
  /// more ops (appended and attempted in the same pass).
  PRISMA_HOT_PATH void ProcessReady() {
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      Op* op = ops_.Find(ready_[i]);
      if (op == nullptr) continue;  // completed/cancelled earlier this pass
      TryOp(op);
    }
    ready_.clear();
  }

  PRISMA_HOT_PATH void TryOp(Op* op) {
    if (op->cancel_requested) {
      // prisma-lint: allow(hot-path-purity, cancel path: epoll dereg +
      // completion bookkeeping, once per cancelled op)
      Disarm(op);
      Complete(op, -ECANCELED);
      return;
    }
    if (op->has_immediate_res) {
      Complete(op, op->immediate_res);
      return;
    }
    if (op->kind == Op::Kind::kFile) return;  // completes via offload Post
    ssize_t r;
    do {
      switch (op->kind) {
        case Op::Kind::kAccept:
          // prisma-lint: allow(hot-path-purity, listen fd is O_NONBLOCK:
          // accept4 returns EAGAIN instead of parking the loop)
          r = ::accept4(op->fd, nullptr, nullptr, SOCK_CLOEXEC);
          break;
        case Op::Kind::kRecv:
          // prisma-lint: allow(hot-path-purity, MSG_DONTWAIT: recv never
          // parks the loop, EAGAIN re-arms on the epoll set)
          r = ::recv(op->fd, op->buf, op->len, MSG_DONTWAIT);
          break;
        case Op::Kind::kSend:
          // prisma-lint: allow(hot-path-purity, MSG_DONTWAIT: sendmsg
          // never parks the loop, EAGAIN re-arms on the epoll set)
          r = ::sendmsg(op->fd, &op->msg, MSG_DONTWAIT | MSG_NOSIGNAL);
          break;
        default:
          errno = EINVAL;
          r = -1;
          break;
      }
    } while (r < 0 && errno == EINTR);
    if (r >= 0) {
      // prisma-lint: allow(hot-path-purity, epoll dereg + completion
      // bookkeeping: rehash bounded by the fd high-water mark)
      Disarm(op);
      Complete(op, static_cast<int>(r));
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // prisma-lint: allow(hot-path-purity, fd registration: bounded by
      // connection count, reached only on EAGAIN)
      if (!op->armed) Arm(op);
      return;
    }
    // prisma-lint: allow(hot-path-purity, error completion: epoll dereg
    // + bookkeeping, once per failed op)
    Disarm(op);
    Complete(op, -errno);
  }

  /// Parks `op` on the epoll set until its fd reports readiness.
  void Arm(Op* op) {
    FdReg& reg = fds_[op->fd];
    Op*& slot = (op->kind == Op::Kind::kSend) ? reg.wr : reg.rd;
    if (slot != nullptr && slot != op) {
      // One pending op per fd+direction: a second is a caller bug.
      Complete(op, -EBUSY);
      return;
    }
    slot = op;
    op->armed = true;
    UpdateReg(op->fd);
  }

  void Disarm(Op* op) {
    if (!op->armed) return;
    op->armed = false;
    auto it = fds_.find(op->fd);
    if (it == fds_.end()) return;
    if (it->second.rd == op) it->second.rd = nullptr;
    if (it->second.wr == op) it->second.wr = nullptr;
    UpdateReg(op->fd);
  }

  void UpdateReg(int fd) {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return;
    FdReg& reg = it->second;
    const std::uint32_t mask = (reg.rd != nullptr ? EPOLLIN : 0u) |
                               (reg.wr != nullptr ? EPOLLOUT : 0u);
    if (mask == 0) {
      if (reg.registered) ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
      fds_.erase(it);
      return;
    }
    epoll_event ev{};
    ev.events = mask;
    ev.data.fd = fd;
    const int ctl_op = reg.registered ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
    if (::epoll_ctl(epfd_, ctl_op, fd, &ev) == 0) {
      reg.registered = true;
      return;
    }
    // Registration failure (EBADF after a racing close, ENOMEM): fail
    // the parked ops rather than hanging them forever.
    Op* rd = reg.rd;
    Op* wr = reg.wr;
    const int err = -errno;
    fds_.erase(it);
    if (rd != nullptr) {
      rd->armed = false;
      Complete(rd, err);
    }
    if (wr != nullptr) {
      wr->armed = false;
      Complete(wr, err);
    }
  }

  PRISMA_HOT_PATH void Complete(Op* op, int res) {
    const IoCallback cb = op->cb;
    ops_.Release(op);  // before the callback so it can reuse the slot
    if (cb) cb(res);
  }

  /// Stop path: run stragglers once, then fail everything still pending
  /// with -ECANCELED. Callbacks fired here must not resubmit (documented
  /// contract); a bounded sweep guards against ones that do.
  void DrainOnExit() {
    mail_.RejectFurther();
    mail_.Drain();
    ProcessReady();
    for (int sweep = 0; sweep < 16 && ops_.live_count() > 0; ++sweep) {
      std::vector<OpId> live;
      live.reserve(ops_.live_count());
      ops_.ForEachLive([&live](Op* op) { live.push_back(OpSlab::IdOf(*op)); });
      for (const OpId id : live) {
        Op* op = ops_.Find(id);
        if (op == nullptr) continue;
        Disarm(op);
        Complete(op, -ECANCELED);
      }
      ready_.clear();
    }
    if (ops_.live_count() > 0) {
      PRISMA_LOG(kWarn, "engine")
          << "epoll loop drained with " << ops_.live_count()
          << " ops still live (callback resubmitted during Stop?)";
    }
    mail_.Drain();  // tasks accepted before RejectFurther see stale ids
  }

  // Loop-thread confined state; the only cross-thread entry is
  // TaskMailbox, which has its own mutex.
  int epfd_ = -1;
  TaskMailbox mail_;
  OpSlab ops_;
  std::unordered_map<int, FdReg> fds_;
  std::vector<OpId> ready_;
  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> thread_id_{};
  ThreadPool* offload_ = nullptr;  // set in Open, before the loop runs
};

}  // namespace

namespace detail {

std::unique_ptr<EventEngine> MakeEpollEngine(const EventEngineOptions& opts) {
  return std::make_unique<EngineImpl<EpollLoop>>("epoll", opts);
}

}  // namespace detail

bool EventEngine::UringCompiledIn() {
#ifdef PRISMA_IO_URING_ENABLED
  return true;
#else
  return false;
#endif
}

bool EventEngine::UringSupported() {
  static const bool supported = detail::UringRuntimeProbe();
  return supported;
}

std::unique_ptr<EventEngine> EventEngine::Create(
    const EventEngineOptions& opts) {
  if (opts.kind != EventEngineOptions::Kind::kEpoll && UringSupported()) {
    if (auto engine = detail::MakeUringEngine(opts)) return engine;
  }
  return detail::MakeEpollEngine(opts);
}

}  // namespace prisma
