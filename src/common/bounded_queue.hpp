// Blocking bounded MPMC queue with close semantics.
//
// Used for the data plane's FIFO filename queue and for batch hand-off
// between pipeline stages in the live integrations. Closing wakes all
// waiters; pops drain remaining items before reporting closed.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.hpp"
#include "common/status.hpp"

namespace prisma {

template <typename T>
class BoundedQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BoundedQueue(std::size_t capacity = 0)
      : mu_(LockRank::kQueue), capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns Aborted if closed.
  Status Push(T item) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && Full()) not_full_.Wait(mu_);
    if (closed_) return Status::Aborted("queue closed");
    items_.push_back(std::move(item));
    lock.Unlock();
    not_empty_.NotifyOne();
    return Status::Ok();
  }

  /// Non-blocking push. Returns ResourceExhausted when full.
  Status TryPush(T item) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return Status::Aborted("queue closed");
      if (Full()) return Status::ResourceExhausted("queue full");
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return Status::Ok();
  }

  /// Blocks while empty. Returns nullopt once closed *and* drained.
  std::optional<T> Pop() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return item;
  }

  /// Pop with a deadline: waits at most `timeout` for an item. Returns
  /// nullopt on timeout or when closed-and-drained. Used by resizable
  /// worker loops that must periodically re-check their retirement flag.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout)
      EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) {
      if (!not_empty_.WaitUntil(mu_, deadline)) break;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() EXCLUDES(mu_) {
    std::optional<T> out;
    {
      MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return out;
  }

  /// Marks the queue closed; producers fail, consumers drain then stop.
  void Close() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  /// Reopens a closed queue (e.g. between training epochs).
  void Reopen() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    closed_ = false;
  }

  bool closed() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return capacity_;
  }

  /// Adjusts capacity at runtime (control-plane knob). Growing wakes
  /// blocked producers; shrinking never discards queued items.
  void SetCapacity(std::size_t capacity) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      capacity_ = capacity;
    }
    not_full_.NotifyAll();
  }

 private:
  bool Full() const REQUIRES(mu_) {
    return capacity_ != 0 && items_.size() >= capacity_;
  }

  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  std::size_t capacity_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace prisma
