// Blocking bounded MPMC queue with close semantics.
//
// Used for the data plane's FIFO filename queue and for batch hand-off
// between pipeline stages in the live integrations. Closing wakes all
// waiters; pops drain remaining items before reporting closed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/status.hpp"

namespace prisma {

template <typename T>
class BoundedQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BoundedQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns Aborted if closed.
  Status Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || !Full(); });
    if (closed_) return Status::Aborted("queue closed");
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Non-blocking push. Returns ResourceExhausted when full.
  Status TryPush(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return Status::Aborted("queue closed");
      if (Full()) return Status::ResourceExhausted("queue full");
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Blocks while empty. Returns nullopt once closed *and* drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Pop with a deadline: waits at most `timeout` for an item. Returns
  /// nullopt on timeout or when closed-and-drained. Used by resizable
  /// worker loops that must periodically re-check their retirement flag.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::optional<T> out;
    {
      std::lock_guard lock(mu_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Marks the queue closed; producers fail, consumers drain then stop.
  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Reopens a closed queue (e.g. between training epochs).
  void Reopen() {
    std::lock_guard lock(mu_);
    closed_ = false;
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return capacity_; }

  /// Adjusts capacity at runtime (control-plane knob). Growing wakes
  /// blocked producers; shrinking never discards queued items.
  void SetCapacity(std::size_t capacity) {
    {
      std::lock_guard lock(mu_);
      capacity_ = capacity;
    }
    not_full_.notify_all();
  }

 private:
  bool Full() const { return capacity_ != 0 && items_.size() >= capacity_; }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace prisma
