#include "common/logging.hpp"

#include "common/mutex.hpp"

namespace prisma {
namespace {

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Mutex& SinkMutex() {
  static Mutex m{LockRank::kLeaf};
  return m;
}

}  // namespace

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (!Enabled(level)) return;
  MutexLock lock(SinkMutex());
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", LevelName(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace prisma
