// PRISMA_HOT_PATH: marks a function as part of the data plane's
// critical path — the per-sample code the paper's decoupling argument
// depends on keeping lean (and that PR 2's benchmarks measured down to
// ~0 allocations per sample).
//
// The macro does two things:
//
//  1. Compiler hint: expands to the `hot` function attribute under
//     GCC/Clang (ordinary optimization hint, no semantic effect), and
//     to nothing elsewhere.
//
//  2. Lint marker: prisma-lint's `hot-path-purity` check treats any
//     function whose definition carries PRISMA_HOT_PATH as a purity
//     root. The function is flagged if it — or anything it calls,
//     transitively through the cross-TU call graph — allocates
//     (operator new, malloc-family, make_shared/make_unique, growth
//     calls on containers, std::string/std::function construction) or
//     blocks (the no-blocking-under-lock primitive set). Findings carry
//     a witness chain, e.g. `Take -> RefillSlow -> operator new`.
//
// Calls from one PRISMA_HOT_PATH function to another are trusted: the
// callee is audited at its own definition, so annotating a helper moves
// its findings (and any reasoned suppressions) next to the code that
// causes them. Deliberate steady-state allocations — amortized
// free-list growth, bounded bookkeeping inserts — stay annotated and
// carry `// prisma-lint: allow(hot-path-purity, <reason>)` at the site,
// which doubles as documentation of the cost. See DESIGN.md §11.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define PRISMA_HOT_PATH __attribute__((hot))
#else
#define PRISMA_HOT_PATH
#endif
