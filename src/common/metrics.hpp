// Minimal metrics registry: named counters and gauges with a text
// exposition format (Prometheus-style `name{label="v"} value` lines).
//
// The control plane publishes per-stage observations through this so
// operators can scrape stage health (buffer occupancy, producer counts,
// starvation) without touching the data path; see
// controlplane::Controller::ExportMetrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.hpp"

namespace prisma {

/// Monotonic counter. Cheap to increment from hot paths.
class Counter {
 public:
  void Increment(std::uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe registry keyed by (name, label-set). Instruments are
/// created on first use and live as long as the registry.
class MetricsRegistry {
 public:
  /// `labels` is a pre-rendered label block, e.g. `{stage="job-0"}`, or
  /// empty. Kept as a string to stay allocation-light on lookups.
  Counter& GetCounter(const std::string& name, const std::string& labels = "")
      EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name, const std::string& labels = "")
      EXCLUDES(mu_);

  /// Renders every instrument as `name labels value` lines, sorted by
  /// key, counters before gauges are NOT separated — order is by name.
  std::string DumpText() const EXCLUDES(mu_);

  std::size_t size() const EXCLUDES(mu_);

  /// Process-wide default registry.
  static MetricsRegistry& Default();

  /// Renders a single-label block: {key="value"} with quoting of '"'.
  static std::string Label(const std::string& key, const std::string& value);

  /// Two-label block: {k1="v1",k2="v2"} — e.g. stage + pipeline object.
  static std::string Label(const std::string& k1, const std::string& v1,
                           const std::string& k2, const std::string& v2);

 private:
  mutable Mutex mu_{LockRank::kLeaf};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
};

}  // namespace prisma
