// stats.hpp is header-only; this TU exists so the library always has at
// least one object with the header instantiated under -Wall (catches ODR
// and missing-include slips early).
#include "common/stats.hpp"

namespace prisma {
namespace {
[[maybe_unused]] void InstantiateForOdrCheck() {
  RunningStats s;
  s.Add(1.0);
  Ewma e;
  e.Add(1.0);
  RateEstimator r;
  r.Record(Nanos{0});
}
}  // namespace
}  // namespace prisma
