// Deterministic, fast pseudo-random number generation.
//
// All stochastic behaviour in PRISMA (dataset size sampling, per-epoch
// shuffles, simulated service-time jitter) flows through these generators so
// experiments are reproducible from a single seed. xoshiro256** is used as
// the workhorse; SplitMix64 seeds it and derives independent streams.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>

namespace prisma {

/// SplitMix64: tiny generator used to expand a single seed into full state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator, so it works with std::shuffle.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t NextBounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply keeps the distribution unbiased after rejection.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Normal deviate (Box-Muller; one value per call, simple over fast).
  double NextGaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    while (u1 <= 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Log-normal deviate parameterised by the *underlying* normal (mu, sigma).
  double NextLogNormal(double mu, double sigma) {
    return std::exp(NextGaussian(mu, sigma));
  }

  /// Exponential deviate with the given mean (> 0).
  double NextExponential(double mean) {
    double u = NextDouble();
    while (u <= 0.0) u = NextDouble();
    return -mean * std::log(u);
  }

  /// Derives an independent stream for a subcomponent (e.g. per-producer).
  Xoshiro256 Fork() { return Xoshiro256(Next() ^ 0xd1342543de82ef95ull); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher-Yates shuffle driven by Xoshiro256 (deterministic per seed).
template <typename T>
void Shuffle(std::span<T> items, Xoshiro256& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = rng.NextBounded(i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace prisma
