// Shared internals of the two EventEngine implementations (epoll in
// event_engine.cpp, io_uring in uring_engine.cpp). Not installed API —
// include only from those translation units and their tests.
#pragma once

#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "common/event_engine.hpp"
#include "common/hot_path.hpp"
#include "common/logging.hpp"
#include "common/mutex.hpp"

namespace prisma::detail {

/// Built by event_engine.cpp (always available).
std::unique_ptr<EventEngine> MakeEpollEngine(const EventEngineOptions& opts);

/// Built by uring_engine.cpp. Returns null when io_uring is compiled out
/// (PRISMA_IO_URING=OFF / header missing) or the runtime probe fails.
std::unique_ptr<EventEngine> MakeUringEngine(const EventEngineOptions& opts);

/// One-time runtime probe (false when compiled out).
bool UringRuntimeProbe();

/// Resolved worker/offload counts for `opts` (applies the 0 = default
/// rules documented on EventEngineOptions).
inline std::uint32_t ResolvedWorkers(const EventEngineOptions& opts) {
  if (opts.workers > 0) return opts.workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : (hw < 4 ? hw : 4);
}

inline std::uint32_t ResolvedOffload(const EventEngineOptions& opts) {
  if (opts.offload_threads > 0) return opts.offload_threads;
  const std::uint32_t w = ResolvedWorkers(opts);
  return w < 2 ? 2 : w;
}

// ---------------------------------------------------------------------------
// Op records.
//
// Every pending operation is one slab-resident record addressed by a
// {slot, generation} OpId. The slab is confined to its loop thread, so
// it needs no lock; records recycle through a free list and the only
// allocation is slab growth (deliberately cold).

struct Op {
  enum class Kind : std::uint8_t {
    kNone = 0,
    kAccept,
    kRecv,
    kSend,
    kFile,
    kInternal,  // engine bookkeeping (eventfd read, async cancel)
  };

  Kind kind = Kind::kNone;
  bool live = false;
  bool cancel_requested = false;
  /// Epoll engine: op is parked on the epoll set waiting for readiness.
  bool armed = false;
  /// Uring engine: an ASYNC_CANCEL targeting this op was submitted.
  bool cancel_submitted = false;
  std::uint32_t gen = 1;
  std::uint32_t slot = 0;
  std::uint32_t next_free = 0;

  int fd = -1;
  IoCallback cb;
  std::byte* buf = nullptr;  // kRecv / kFile destination
  std::size_t len = 0;
  std::uint64_t offset = 0;  // kFile
  iovec iov[kMaxSendIoVec] = {};
  unsigned iov_count = 0;
  msghdr msg = {};  // kSend: must stay stable until completion
  /// Set when the submission path already knows the result (bad args,
  /// dup failure): the dispatch pass completes the op without a syscall.
  int immediate_res = 0;
  bool has_immediate_res = false;
};

inline constexpr std::uint32_t kNoSlot = 0xffffffffu;

class OpSlab {
 public:
  static OpId IdOf(const Op& op) {
    return (static_cast<OpId>(op.gen) << 32) |
           (static_cast<OpId>(op.slot) + 1);
  }

  PRISMA_HOT_PATH Op* Acquire(Op::Kind kind) {
    // prisma-lint: allow(hot-path-purity, slab growth: amortizes to the
    // high-water mark of concurrent ops, zero at steady state)
    if (free_head_ == kNoSlot) Grow();
    Op* op = index_[free_head_];
    free_head_ = op->next_free;
    const std::uint32_t gen = op->gen;
    const std::uint32_t slot = op->slot;
    *op = Op{};
    op->gen = gen;
    op->slot = slot;
    op->kind = kind;
    op->live = true;
    ++live_;
    return op;
  }

  /// Invalidates every outstanding OpId for this record (generation
  /// bump) and returns it to the free list.
  PRISMA_HOT_PATH void Release(Op* op) {
    op->live = false;
    op->kind = Op::Kind::kNone;
    ++op->gen;
    op->next_free = free_head_;
    free_head_ = op->slot;
    --live_;
  }

  /// The record for `id`, or null when the id is stale (completed /
  /// recycled) or malformed.
  PRISMA_HOT_PATH Op* Find(OpId id) const {
    if (id == 0) return nullptr;
    const auto slot = static_cast<std::uint32_t>((id & 0xffffffffu) - 1);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= index_.size()) return nullptr;
    Op* op = index_[slot];
    if (!op->live || op->gen != gen) return nullptr;
    return op;
  }

  std::size_t live_count() const { return live_; }

  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (Op* op : index_) {
      if (op->live) fn(op);
    }
  }

 private:
  /// Cold: slab growth is the only allocation in op management. A loop
  /// that has ever had K concurrent operations never grows again below
  /// that high-water mark.
  void Grow() {
    constexpr std::size_t kChunk = 64;
    auto chunk = std::make_unique<Op[]>(kChunk);
    const auto base = static_cast<std::uint32_t>(index_.size());
    index_.reserve(index_.size() + kChunk);
    for (std::size_t i = 0; i < kChunk; ++i) {
      Op* op = &chunk[i];
      op->slot = base + static_cast<std::uint32_t>(i);
      op->next_free = (i + 1 < kChunk) ? op->slot + 1 : free_head_;
      index_.push_back(op);
    }
    free_head_ = base;
    chunks_.push_back(std::move(chunk));
  }

  std::vector<std::unique_ptr<Op[]>> chunks_;
  std::vector<Op*> index_;  // slot -> record (stable)
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
};

// ---------------------------------------------------------------------------
// Posted-task mailbox: the only cross-thread channel into a loop.

class TaskMailbox {
 public:
  ~TaskMailbox() { CloseFd(); }

  Status Open() {
    efd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (efd_ < 0) {
      return Status::IoError(std::string("eventfd: ") + std::strerror(errno));
    }
    return Status::Ok();
  }

  void CloseFd() {
    if (efd_ >= 0) {
      ::close(efd_);
      efd_ = -1;
    }
  }

  int event_fd() const { return efd_; }

  /// Thread-safe. After RejectFurther, tasks are destroyed unrun.
  void Push(std::function<void()> fn) {
    bool accepted = false;
    {
      MutexLock lock(mu_);
      if (accepting_) {
        tasks_.push_back(std::move(fn));
        accepted = true;
      }
    }
    // `fn` (and its captures) die here when rejected.
    if (accepted) Kick();
  }

  /// Wakes the loop without queueing work (Stop uses this).
  void Kick() {
    const std::uint64_t one = 1;
    // The eventfd is non-blocking; EAGAIN (counter saturated) still
    // leaves it readable, which is all a kick needs.
    [[maybe_unused]] const ssize_t r =
        ::write(efd_, &one, sizeof(one));
  }

  /// Loop thread: runs every queued task. Returns how many ran.
  std::size_t Drain() {
    {
      MutexLock lock(mu_);
      running_.swap(tasks_);
    }
    const std::size_t n = running_.size();
    for (auto& fn : running_) fn();
    running_.clear();
    return n;
  }

  /// Loop thread: consumes pending eventfd kicks (nonblocking).
  void ConsumeEvent() {
    std::uint64_t count = 0;
    [[maybe_unused]] const ssize_t r =
        ::read(efd_, &count, sizeof(count));
  }

  /// After this, Push destroys tasks instead of queueing them.
  void RejectFurther() {
    MutexLock lock(mu_);
    accepting_ = false;
  }

 private:
  Mutex mu_{LockRank::kLeaf};
  std::vector<std::function<void()>> tasks_ GUARDED_BY(mu_);
  bool accepting_ GUARDED_BY(mu_) = true;
  // prisma-lint: unguarded(loop-thread only: swap target for Drain)
  std::vector<std::function<void()>> running_;
  // prisma-lint: unguarded(written once in Open before the loop starts)
  int efd_ = -1;
};

// ---------------------------------------------------------------------------
// Engine scaffolding shared by both implementations. `Loop` must derive
// from EventLoop and provide:
//   Status Open(const EventEngineOptions& opts, ThreadPool* offload);
//   void Run();          // thread body; exits after drain
//   void RequestStop();  // thread-safe
//   void CloseFds();     // after join
template <typename Loop>
class EngineImpl final : public EventEngine {
 public:
  EngineImpl(std::string_view name, const EventEngineOptions& opts)
      : name_(name),
        opts_(opts),
        workers_(ResolvedWorkers(opts)),
        offload_n_(ResolvedOffload(opts)) {}

  ~EngineImpl() override { Stop(); }

  Status Start() override {
    if (running_) return Status::FailedPrecondition("engine already running");
    offload_ = std::make_unique<ThreadPool>(offload_n_);
    loops_.clear();
    for (std::uint32_t i = 0; i < workers_; ++i) {
      auto loop = std::make_unique<Loop>();
      if (Status s = loop->Open(opts_, offload_.get()); !s.ok()) {
        for (auto& l : loops_) l->CloseFds();
        loops_.clear();
        offload_->Shutdown();
        offload_.reset();
        return s;
      }
      loops_.push_back(std::move(loop));
    }
    threads_.reserve(workers_);
    for (auto& loop : loops_) {
      threads_.emplace_back([l = loop.get()] { l->Run(); });
    }
    running_ = true;
    return Status::Ok();
  }

  void Stop() override {
    if (!running_) return;
    running_ = false;
    for (auto& loop : loops_) loop->RequestStop();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    for (auto& loop : loops_) loop->CloseFds();
    // The loop objects stay alive (destroyed with the engine, not here):
    // completions that outlive Stop — e.g. a buffer waiter delivered
    // long after teardown — hold an engine reference and Post into the
    // stopped loop, whose mailbox destroys the task unrun. Destroying
    // the loops here would turn that documented no-op into a
    // use-after-free.
    //
    // After the loops: a draining loop may still hand completions to the
    // offload pool's posts; the pool itself drains queued work on
    // Shutdown (tasks posting to a stopped loop are dropped there). The
    // pool object likewise stays alive — Submit after Shutdown runs
    // inline, so Offload() stays a valid reference for stragglers.
    offload_->Shutdown();
  }

  std::string_view name() const override { return name_; }
  std::size_t worker_count() const override { return workers_; }
  std::size_t thread_count() const override {
    return static_cast<std::size_t>(workers_) + offload_n_;
  }
  EventLoop& LoopAt(std::size_t i) override { return *loops_[i]; }
  ThreadPool& Offload() override { return *offload_; }

 private:
  std::string_view name_;
  EventEngineOptions opts_;
  std::uint32_t workers_;
  std::uint32_t offload_n_;
  // All mutated only in Start/Stop, which the owner serializes (the
  // UdsServer CAS pattern); loops are internally synchronized.
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<std::thread> threads_;
  std::unique_ptr<ThreadPool> offload_;
  bool running_ = false;
};

}  // namespace prisma::detail
