// io_uring implementation of EventEngine, on raw syscalls (no liburing
// in the toolchain): io_uring_setup + mmap of the SQ/CQ rings, batched
// SQE submission flushed by a single io_uring_enter per loop iteration
// that also waits for completions. Compiled out (probe returns false,
// MakeUringEngine returns null) when PRISMA_IO_URING=OFF or the kernel
// headers predate the opcodes the loop needs.
#include "common/event_engine.hpp"
#include "common/event_engine_internal.hpp"

#ifdef PRISMA_IO_URING_ENABLED

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace prisma {
namespace {

using detail::Op;
using detail::OpSlab;
using detail::TaskMailbox;

int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int SysUringRegister(int fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

std::uint32_t LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

void StoreRelease(unsigned* p, std::uint32_t v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

/// The mmap'd ring state for one loop.
struct Ring {
  int fd = -1;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_array = nullptr;
  std::uint32_t sq_mask = 0;
  std::uint32_t sq_entries = 0;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  std::uint32_t cq_mask = 0;
  io_uring_cqe* cqes = nullptr;
  io_uring_sqe* sqes = nullptr;
  void* sq_mm = MAP_FAILED;
  std::size_t sq_mm_len = 0;
  void* cq_mm = MAP_FAILED;
  std::size_t cq_mm_len = 0;
  void* sqes_mm = MAP_FAILED;
  std::size_t sqes_mm_len = 0;
  bool single_mmap = false;
};

void CloseRing(Ring* r) {
  if (r->sqes_mm != MAP_FAILED) ::munmap(r->sqes_mm, r->sqes_mm_len);
  if (!r->single_mmap && r->cq_mm != MAP_FAILED) {
    ::munmap(r->cq_mm, r->cq_mm_len);
  }
  if (r->sq_mm != MAP_FAILED) ::munmap(r->sq_mm, r->sq_mm_len);
  r->sq_mm = r->cq_mm = r->sqes_mm = MAP_FAILED;
  if (r->fd >= 0) {
    ::close(r->fd);
    r->fd = -1;
  }
}

Status OpenRing(unsigned entries, Ring* r) {
  io_uring_params p{};
  r->fd = SysUringSetup(entries, &p);
  if (r->fd < 0) {
    return Status::IoError(std::string("io_uring_setup: ") +
                           std::strerror(errno));
  }
  r->sq_entries = p.sq_entries;
  r->single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  r->sq_mm_len = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  r->cq_mm_len = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  if (r->single_mmap) {
    r->sq_mm_len = r->cq_mm_len = std::max(r->sq_mm_len, r->cq_mm_len);
  }
  r->sq_mm = ::mmap(nullptr, r->sq_mm_len, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, r->fd, IORING_OFF_SQ_RING);
  if (r->sq_mm == MAP_FAILED) {
    const Status s = Status::IoError(std::string("mmap(sq): ") +
                                     std::strerror(errno));
    CloseRing(r);
    return s;
  }
  if (r->single_mmap) {
    r->cq_mm = r->sq_mm;
  } else {
    r->cq_mm = ::mmap(nullptr, r->cq_mm_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, r->fd, IORING_OFF_CQ_RING);
    if (r->cq_mm == MAP_FAILED) {
      const Status s = Status::IoError(std::string("mmap(cq): ") +
                                       std::strerror(errno));
      CloseRing(r);
      return s;
    }
  }
  r->sqes_mm_len = p.sq_entries * sizeof(io_uring_sqe);
  r->sqes_mm = ::mmap(nullptr, r->sqes_mm_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, r->fd, IORING_OFF_SQES);
  if (r->sqes_mm == MAP_FAILED) {
    const Status s = Status::IoError(std::string("mmap(sqes): ") +
                                     std::strerror(errno));
    CloseRing(r);
    return s;
  }
  auto* sq = static_cast<unsigned char*>(r->sq_mm);
  auto* cq = static_cast<unsigned char*>(r->cq_mm);
  r->sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  r->sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  r->sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  r->sq_mask = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  r->cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  r->cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  r->cq_mask = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  r->cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
  r->sqes = static_cast<io_uring_sqe*>(r->sqes_mm);
  return Status::Ok();
}

class UringLoop final : public EventLoop {
 public:
  Status Open(const EventEngineOptions& opts, ThreadPool* /*offload*/) {
    if (Status s = mail_.Open(); !s.ok()) return s;
    return OpenRing(opts.uring_entries == 0 ? 256 : opts.uring_entries,
                    &ring_);
  }

  void Run() {
    thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
    for (;;) {
      mail_.Drain();
      ProcessCompletions();
      DispatchImmediates();
      if (stop_.load(std::memory_order_acquire)) break;
      if (!mail_armed_) {
        // The mail read either just completed (its kick was reaped in
        // ProcessCompletions above) or was never armed. Tasks pushed
        // with that kick are still queued — re-arm and loop so Drain
        // runs again before sleeping, else they'd strand until the next
        // unrelated completion (lost wakeup). Also covers arm failure
        // (SQ full): never sleep unkicked.
        ArmMailRead();
        continue;
      }
      const int r = SysUringEnter(ring_.fd, ToSubmit(), 1,
                                  IORING_ENTER_GETEVENTS);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EBUSY) continue;  // CQ backlog: reap at loop top
        PRISMA_LOG(kWarn, "engine")
            << "io_uring_enter failed: " << std::strerror(errno);
        break;
      }
    }
    DrainOnExit();
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    mail_.Kick();
  }

  void CloseFds() {
    CloseRing(&ring_);
    mail_.CloseFd();
  }

  // --- EventLoop -------------------------------------------------------

  void Post(std::function<void()> fn) override { mail_.Push(std::move(fn)); }

  PRISMA_HOT_PATH OpId AsyncAccept(int listen_fd, IoCallback cb) override {
    CheckLoopThread();
    Op* op = ops_.Acquire(Op::Kind::kAccept);
    op->fd = listen_fd;
    op->cb = cb;
    return SubmitOp(op);
  }

  PRISMA_HOT_PATH OpId AsyncRecvSome(int fd, std::span<std::byte> dst,
                                     IoCallback cb) override {
    CheckLoopThread();
    Op* op = ops_.Acquire(Op::Kind::kRecv);
    op->fd = fd;
    op->cb = cb;
    op->buf = dst.data();
    op->len = dst.size();
    return SubmitOp(op);
  }

  PRISMA_HOT_PATH OpId AsyncSendSome(int fd, const iovec* iov,
                                     unsigned iov_count,
                                     IoCallback cb) override {
    CheckLoopThread();
    Op* op = ops_.Acquire(Op::Kind::kSend);
    op->fd = fd;
    op->cb = cb;
    if (iov_count > kMaxSendIoVec) {
      // prisma-lint: allow(hot-path-purity, caller-bug error path, not
      // reached at steady state)
      return FailImmediately(op, -EINVAL);
    }
    for (unsigned i = 0; i < iov_count; ++i) op->iov[i] = iov[i];
    op->iov_count = iov_count;
    op->msg = msghdr{};  // sqe points at op->msg: stable until completion
    op->msg.msg_iov = op->iov;
    op->msg.msg_iovlen = iov_count;
    return SubmitOp(op);
  }

  PRISMA_HOT_PATH OpId AsyncReadFile(int fd, std::span<std::byte> dst,
                                     std::uint64_t offset,
                                     IoCallback cb) override {
    CheckLoopThread();
    Op* op = ops_.Acquire(Op::Kind::kFile);
    op->fd = fd;
    op->cb = cb;
    op->buf = dst.data();
    op->len = dst.size();
    op->offset = offset;
    return SubmitOp(op);
  }

  void Cancel(OpId id) override {
    CheckLoopThread();
    Op* op = ops_.Find(id);
    if (op == nullptr || op->kind == Op::Kind::kInternal) return;
    if (op->cancel_requested) return;
    op->cancel_requested = true;
    if (op->has_immediate_res) {
      op->immediate_res = -ECANCELED;  // never reached the kernel
      return;
    }
    SubmitCancel(id);
  }

  bool OnLoopThread() const override {
    return thread_id_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

 private:
  void CheckLoopThread() const {
    if (thread_id_.load(std::memory_order_acquire) != std::thread::id{} &&
        !OnLoopThread()) {
      PRISMA_LOG(kError, "engine")
          << "EventLoop operation submitted off the loop thread";
      std::abort();
    }
  }

  unsigned ToSubmit() const {
    return sq_tail_local_ - LoadAcquire(ring_.sq_head);
  }

  /// Next free SQE, flushing the ring when the SQ is full. Null only if
  /// the kernel refuses to make progress (treated as submit failure).
  PRISMA_HOT_PATH io_uring_sqe* GetSqe() {
    while (sq_tail_local_ - LoadAcquire(ring_.sq_head) >= ring_.sq_entries) {
      const int r = SysUringEnter(ring_.fd, ToSubmit(), 0, 0);
      if (r < 0 && errno != EINTR && errno != EBUSY) return nullptr;
      if (r < 0 && errno == EBUSY) {
        // CQ backlog blocks submission; reap unless already dispatching
        // (then callers see a submit failure rather than reentrancy).
        if (in_dispatch_) return nullptr;
        ProcessCompletions();
      }
    }
    const unsigned idx = sq_tail_local_ & ring_.sq_mask;
    io_uring_sqe* sqe = &ring_.sqes[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    ring_.sq_array[idx] = idx;
    return sqe;
  }

  void PublishSqe() {
    ++sq_tail_local_;
    StoreRelease(ring_.sq_tail, sq_tail_local_);
  }

  PRISMA_HOT_PATH OpId SubmitOp(Op* op) {
    io_uring_sqe* sqe = GetSqe();
    // prisma-lint: allow(hot-path-purity, SQ-full error path: bounded
    // by uring_entries, not reached at steady state)
    if (sqe == nullptr) return FailImmediately(op, -EBUSY);
    switch (op->kind) {
      case Op::Kind::kAccept:
        sqe->opcode = IORING_OP_ACCEPT;
        sqe->fd = op->fd;
        sqe->accept_flags = SOCK_CLOEXEC;
        break;
      case Op::Kind::kRecv:
        sqe->opcode = IORING_OP_RECV;
        sqe->fd = op->fd;
        sqe->addr = reinterpret_cast<std::uint64_t>(op->buf);
        sqe->len = static_cast<std::uint32_t>(op->len);
        break;
      case Op::Kind::kSend:
        sqe->opcode = IORING_OP_SENDMSG;
        sqe->fd = op->fd;
        sqe->addr = reinterpret_cast<std::uint64_t>(&op->msg);
        sqe->len = 1;
        sqe->msg_flags = MSG_NOSIGNAL;
        break;
      case Op::Kind::kFile:
        sqe->opcode = IORING_OP_READ;
        sqe->fd = op->fd;
        sqe->addr = reinterpret_cast<std::uint64_t>(op->buf);
        sqe->len = static_cast<std::uint32_t>(op->len);
        sqe->off = op->offset;
        break;
      default:
        // prisma-lint: allow(hot-path-purity, caller-bug error path,
        // not reached at steady state)
        return FailImmediately(op, -EINVAL);
    }
    const OpId id = OpSlab::IdOf(*op);
    sqe->user_data = id;
    PublishSqe();
    return id;
  }

  void SubmitCancel(OpId target) {
    Op* target_op = ops_.Find(target);
    io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) return;  // best effort; target completes normally
    Op* op = ops_.Acquire(Op::Kind::kInternal);
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->fd = -1;
    sqe->addr = target;
    sqe->user_data = OpSlab::IdOf(*op);
    PublishSqe();
    if (target_op != nullptr) target_op->cancel_submitted = true;
  }

  void ArmMailRead() {
    io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) return;
    Op* op = ops_.Acquire(Op::Kind::kInternal);
    sqe->opcode = IORING_OP_READ;
    sqe->fd = mail_.event_fd();
    sqe->addr = reinterpret_cast<std::uint64_t>(&mail_buf_);
    sqe->len = sizeof(mail_buf_);
    mail_read_id_ = OpSlab::IdOf(*op);
    sqe->user_data = mail_read_id_;
    PublishSqe();
    mail_armed_ = true;
  }

  /// Reaps the CQ and dispatches callbacks (which may submit new SQEs;
  /// they flush on the next io_uring_enter).
  PRISMA_HOT_PATH void ProcessCompletions() {
    in_dispatch_ = true;
    unsigned head = *ring_.cq_head;
    for (;;) {
      const unsigned tail = LoadAcquire(ring_.cq_tail);
      if (head == tail) break;
      while (head != tail) {
        const io_uring_cqe* cqe = &ring_.cqes[head & ring_.cq_mask];
        const OpId id = cqe->user_data;
        const int res = cqe->res;
        ++head;
        StoreRelease(ring_.cq_head, head);
        Dispatch(id, res);
      }
    }
    in_dispatch_ = false;
  }

  PRISMA_HOT_PATH void Dispatch(OpId id, int res) {
    Op* op = ops_.Find(id);
    if (op == nullptr) return;  // stale generation
    if (id == mail_read_id_) {
      mail_read_id_ = 0;
      mail_armed_ = false;
      ops_.Release(op);
      return;
    }
    if (op->kind == Op::Kind::kInternal) {
      ops_.Release(op);  // ASYNC_CANCEL outcome: target completes anyway
      return;
    }
    Complete(op, res);
  }

  /// Submission-path failures complete via the loop, never inline.
  OpId FailImmediately(Op* op, int res) {
    op->has_immediate_res = true;
    op->immediate_res = res;
    const OpId id = OpSlab::IdOf(*op);
    immediate_.push_back(id);
    return id;
  }

  void DispatchImmediates() {
    for (std::size_t i = 0; i < immediate_.size(); ++i) {
      Op* op = ops_.Find(immediate_[i]);
      if (op == nullptr || !op->has_immediate_res) continue;
      Complete(op, op->immediate_res);
    }
    immediate_.clear();
  }

  PRISMA_HOT_PATH void Complete(Op* op, int res) {
    const IoCallback cb = op->cb;
    ops_.Release(op);  // before the callback so it can reuse the slot
    if (cb) cb(res);
  }

  /// Stop path: every op still in the kernel gets an ASYNC_CANCEL, and
  /// the loop reaps until nothing is live — after this no kernel write
  /// can touch a caller buffer.
  void DrainOnExit() {
    mail_.RejectFurther();
    mail_.Drain();
    DispatchImmediates();
    for (int sweep = 0; sweep < 4096 && ops_.live_count() > 0; ++sweep) {
      std::vector<OpId> to_cancel;
      ops_.ForEachLive([&](Op* op) {
        const bool kernel_pending = !op->has_immediate_res &&
                                    (op->kind != Op::Kind::kInternal ||
                                     OpSlab::IdOf(*op) == mail_read_id_);
        if (kernel_pending && !op->cancel_submitted) {
          to_cancel.push_back(OpSlab::IdOf(*op));
        }
      });
      for (const OpId id : to_cancel) {
        Op* op = ops_.Find(id);
        if (op == nullptr) continue;
        op->cancel_requested = true;
        SubmitCancel(id);
      }
      DispatchImmediates();
      if (ops_.live_count() == 0) break;
      const int r = SysUringEnter(ring_.fd, ToSubmit(), 1,
                                  IORING_ENTER_GETEVENTS);
      if (r < 0 && errno != EINTR && errno != EBUSY) break;
      ProcessCompletions();
    }
    if (ops_.live_count() > 0) {
      // Enter failed outright: fail the stragglers in userspace. The
      // ring fd closes right after, which tears down its kernel state.
      PRISMA_LOG(kWarn, "engine")
          << "io_uring drain fell back to forced completion for "
          << ops_.live_count() << " ops";
      std::vector<OpId> live;
      ops_.ForEachLive([&live](Op* op) { live.push_back(OpSlab::IdOf(*op)); });
      for (const OpId id : live) {
        Op* op = ops_.Find(id);
        if (op == nullptr) continue;
        if (op->kind == Op::Kind::kInternal) {
          ops_.Release(op);
        } else {
          Complete(op, -ECANCELED);
        }
      }
    }
    mail_.Drain();  // tasks accepted before RejectFurther see stale ids
  }

  // Loop-thread confined state; the only cross-thread entry is
  // TaskMailbox, which has its own mutex.
  Ring ring_;
  TaskMailbox mail_;
  OpSlab ops_;
  std::vector<OpId> immediate_;
  unsigned sq_tail_local_ = 0;
  OpId mail_read_id_ = 0;
  bool mail_armed_ = false;
  bool in_dispatch_ = false;
  std::uint64_t mail_buf_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> thread_id_{};
};

}  // namespace

namespace detail {

bool UringRuntimeProbe() {
  io_uring_params params{};
  const int fd = SysUringSetup(4, &params);
  if (fd < 0) return false;
  constexpr unsigned kProbeOps = 64;
  alignas(io_uring_probe) unsigned char
      buf[sizeof(io_uring_probe) + kProbeOps * sizeof(io_uring_probe_op)] = {};
  auto* probe = reinterpret_cast<io_uring_probe*>(buf);
  bool ok = SysUringRegister(fd, IORING_REGISTER_PROBE, probe, kProbeOps) == 0;
  const auto supported = [&](unsigned op) {
    return ok && op <= probe->last_op &&
           (probe->ops[op].flags & IO_URING_OP_SUPPORTED) != 0;
  };
  ok = supported(IORING_OP_ACCEPT) && supported(IORING_OP_RECV) &&
       supported(IORING_OP_SENDMSG) && supported(IORING_OP_READ) &&
       supported(IORING_OP_ASYNC_CANCEL);
  ::close(fd);
  return ok;
}

std::unique_ptr<EventEngine> MakeUringEngine(const EventEngineOptions& opts) {
  if (!EventEngine::UringSupported()) return nullptr;
  return std::make_unique<EngineImpl<UringLoop>>("io_uring", opts);
}

}  // namespace detail
}  // namespace prisma

#else  // !PRISMA_IO_URING_ENABLED

namespace prisma::detail {

bool UringRuntimeProbe() { return false; }

std::unique_ptr<EventEngine> MakeUringEngine(const EventEngineOptions&) {
  return nullptr;
}

}  // namespace prisma::detail

#endif  // PRISMA_IO_URING_ENABLED
