// Byte-size and duration literals/helpers shared by the storage model,
// data plane, and experiment configuration.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace prisma {

using Nanos = std::chrono::nanoseconds;
using Micros = std::chrono::microseconds;
using Millis = std::chrono::milliseconds;
using Seconds = std::chrono::seconds;
using DoubleSeconds = std::chrono::duration<double>;

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;
inline constexpr std::uint64_t kTiB = 1024ull * kGiB;

/// Converts a duration to fractional seconds (for reporting).
template <typename Rep, typename Period>
constexpr double ToSeconds(std::chrono::duration<Rep, Period> d) {
  return std::chrono::duration_cast<DoubleSeconds>(d).count();
}

/// Converts fractional seconds to nanoseconds, the engine's base unit.
constexpr Nanos FromSeconds(double s) {
  return std::chrono::duration_cast<Nanos>(DoubleSeconds{s});
}

/// Formats a byte count with a binary-unit suffix, e.g. "1.5 MiB".
std::string FormatBytes(std::uint64_t bytes);

/// Formats a duration as seconds with 3 decimals, e.g. "12.345 s".
std::string FormatDuration(Nanos d);

namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }
}  // namespace literals

}  // namespace prisma
