// Clock abstraction so that control-plane and data-plane logic runs
// unchanged against wall-clock time (real deployments, tests, examples)
// and against the discrete-event engine's virtual time (paper-scale
// benchmarks). See DESIGN.md §6.1.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "common/units.hpp"

namespace prisma {

/// Monotonic time source. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds since an arbitrary (per-clock) epoch. Monotonic.
  virtual Nanos Now() const = 0;
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  Nanos Now() const override;

  /// Process-wide shared instance (clocks are stateless; sharing is safe).
  static const std::shared_ptr<SteadyClock>& Shared();
};

/// Manually advanced clock for unit tests and the DES engine.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Nanos start = Nanos{0}) : now_(start.count()) {}

  Nanos Now() const override { return Nanos{now_.load(std::memory_order_acquire)}; }

  void Advance(Nanos delta) { now_.fetch_add(delta.count(), std::memory_order_acq_rel); }
  void Set(Nanos t) { now_.store(t.count(), std::memory_order_release); }

 private:
  std::atomic<std::int64_t> now_;
};

/// RAII stopwatch measuring elapsed time against an injected clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(clock), start_(clock.Now()) {}

  Nanos Elapsed() const { return clock_.Now() - start_; }
  void Restart() { start_ = clock_.Now(); }

 private:
  const Clock& clock_;
  Nanos start_;
};

}  // namespace prisma
