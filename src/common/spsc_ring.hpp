// Wait-free single-producer/single-consumer ring buffer.
//
// Used on the hottest hand-off path (per-connection IPC reply buffers and
// the intercept layer's read-ahead slot) where both ends are single
// threads and blocking queues would dominate the per-sample cost.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

namespace prisma {

template <typename T>
class SpscRing {
 public:
  /// capacity must be a power of two (>= 2); one slot is kept empty.
  explicit SpscRing(std::size_t capacity)
      : buffer_(RoundUpPow2(capacity)), mask_(buffer_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool TryPush(T item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buffer_[head] = std::move(item);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> TryPop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T item = std::move(buffer_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return item;
  }

  bool Empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t Size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  std::size_t Capacity() const { return buffer_.size() - 1; }

 private:
  static std::size_t RoundUpPow2(std::size_t v) {
    std::size_t p = 2;
    while (p < v + 1) p <<= 1;
    return p;
  }

  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace prisma
