#include "common/histogram.hpp"

#include <algorithm>
#include <cstdio>

namespace prisma {

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)), counts_(boundaries_.size() + 1, 0) {
  // Boundaries must be sorted for the bucket search below.
  std::sort(boundaries_.begin(), boundaries_.end());
}

Histogram Histogram::Exponential(double first, double growth, std::size_t n) {
  std::vector<double> b;
  b.reserve(n);
  double v = first;
  for (std::size_t i = 0; i < n; ++i) {
    b.push_back(v);
    v *= growth;
  }
  return Histogram(std::move(b));
}

void Histogram::Add(double value) {
  const auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), value);
  counts_[static_cast<std::size_t>(it - boundaries_.begin())]++;
  if (total_ == 0 || value < min_) min_ = value;
  if (total_ == 0 || value > max_) max_ = value;
  ++total_;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      // Interpolate inside bucket i. Bucket edges:
      const double lo = (i == 0) ? min_ : boundaries_[i - 1];
      const double hi = (i == boundaries_.size()) ? max_ : boundaries_[i];
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return max_;
}

void OccupancyTimeline::Record(Nanos now, std::int64_t value) {
  if (has_last_) {
    Accumulate(now);
  }
  has_last_ = true;
  last_time_ = now;
  last_value_ = value;
  max_value_ = std::max(max_value_, value);
}

void OccupancyTimeline::Finish(Nanos end) {
  if (has_last_) {
    Accumulate(end);
    last_time_ = end;
  }
}

void OccupancyTimeline::Accumulate(Nanos until) {
  const Nanos span = until - last_time_;
  if (span.count() <= 0) return;
  time_at_value_[last_value_] += span;
  total_time_ += span;
}

std::vector<CdfPoint> OccupancyTimeline::Cdf() const {
  std::vector<CdfPoint> out;
  if (total_time_.count() == 0) return out;
  double cum = 0.0;
  for (const auto& [value, t] : time_at_value_) {
    cum += ToSeconds(t) / ToSeconds(total_time_);
    out.push_back({static_cast<double>(value), std::min(cum, 1.0)});
  }
  return out;
}

double OccupancyTimeline::TimeWeightedMean() const {
  if (total_time_.count() == 0) return 0.0;
  double acc = 0.0;
  for (const auto& [value, t] : time_at_value_) {
    acc += static_cast<double>(value) * ToSeconds(t);
  }
  return acc / ToSeconds(total_time_);
}

std::string FormatCdf(const std::vector<CdfPoint>& cdf) {
  std::string out;
  char buf[64];
  for (const auto& p : cdf) {
    std::snprintf(buf, sizeof(buf), "  %6.0f  %6.2f%%\n", p.value,
                  p.cumulative * 100.0);
    out += buf;
  }
  return out;
}

}  // namespace prisma
