// Clang Thread Safety Analysis attribute macros (no-ops elsewhere).
//
// These let the compiler prove lock discipline at build time: a member
// declared GUARDED_BY(mu) cannot be touched without holding mu, a
// function declared REQUIRES(mu) cannot be called without it, and a
// build with `clang++ -Wthread-safety -Werror` rejects violations
// outright (scripts/ci.sh tsa). GCC compiles the same code with the
// macros expanding to nothing; the runtime lock-order validator in
// common/mutex.hpp covers what static analysis cannot express there.
//
// Naming and semantics follow the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and match the
// capability-based vocabulary used by Abseil, so the annotations read
// familiarly: CAPABILITY marks a lock type, ACQUIRE/RELEASE mark lock
// and unlock methods, REQUIRES marks functions that must be called with
// a lock held, EXCLUDES marks functions that must NOT be.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define CAPABILITY(x) PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define RETURN_CAPABILITY(x) \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// Escape hatch for lock patterns the static analysis cannot follow
// (e.g. dynamically resolved lock sets like SampleBuffer::SetShardCount
// acquiring every shard). Use sparingly, always with a comment saying
// which runtime check covers the suppressed pattern.
#define NO_THREAD_SAFETY_ANALYSIS \
  PRISMA_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
