// Fixed-size worker pool used by the PyTorch-style live integration and
// by tests that need concurrent load. The data plane's producers are NOT
// pool tasks — they are long-lived threads managed by PrefetchObject so
// the control plane can resize them (see dataplane/prefetch_object.hpp).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"

namespace prisma {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    const Status s = tasks_.Push([task] { (*task)(); });
    if (!s.ok()) {
      // Pool already shut down: run inline so the future is never abandoned.
      (*task)();
    }
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

  /// Stops accepting work and joins all workers (idempotent).
  void Shutdown();

 private:
  void WorkerLoop();

  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace prisma
