// Flat key=value configuration with typed getters.
//
// Experiments, examples, and the LD_PRELOAD shim are parameterised through
// this (files, strings, or environment). Keys are case-sensitive; values
// are trimmed; '#' starts a comment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace prisma {

class Config {
 public:
  Config() = default;

  /// Parses "key = value" lines. Later duplicates override earlier ones.
  static Result<Config> FromString(std::string_view text);

  /// Reads and parses a config file.
  static Result<Config> FromFile(const std::string& path);

  void Set(std::string key, std::string value);
  bool Has(std::string_view key) const;

  std::optional<std::string> GetString(std::string_view key) const;
  std::string GetString(std::string_view key, std::string fallback) const;

  Result<std::int64_t> GetInt(std::string_view key) const;
  std::int64_t GetInt(std::string_view key, std::int64_t fallback) const;

  Result<double> GetDouble(std::string_view key) const;
  double GetDouble(std::string_view key, double fallback) const;

  Result<bool> GetBool(std::string_view key) const;
  bool GetBool(std::string_view key, bool fallback) const;

  /// Byte sizes with optional suffix: "64KiB", "1.5GiB", "4096".
  Result<std::uint64_t> GetBytes(std::string_view key) const;
  std::uint64_t GetBytes(std::string_view key, std::uint64_t fallback) const;

  std::size_t size() const { return entries_.size(); }
  const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

  /// Parses a standalone byte-size literal (shared with GetBytes).
  static Result<std::uint64_t> ParseBytes(std::string_view text);

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace prisma
