// CRC-32 (IEEE 802.3 polynomial, reflected) — integrity checksums for
// the record-shard container format (storage/record_format.hpp).
#pragma once

#include <cstdint>
#include <span>

namespace prisma {

/// Computes CRC-32 over `data`, continuing from `seed` (pass the previous
/// result to checksum data in chunks; start from the default for a fresh
/// computation).
std::uint32_t Crc32(std::span<const std::byte> data, std::uint32_t seed = 0);

}  // namespace prisma
