// Histograms and empirical CDFs.
//
// Figure 3 of the paper is a CDF over "number of concurrent I/O threads"
// weighted by the time spent at each thread count; OccupancyTimeline
// records (time, value) transitions and converts them into that CDF.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace prisma {

/// Fixed-boundary histogram over doubles (latency distributions etc.).
class Histogram {
 public:
  /// Buckets: (-inf, b0], (b0, b1], ..., (b_{n-1}, +inf).
  explicit Histogram(std::vector<double> boundaries);

  /// Convenience: n exponential buckets starting at `first`, factor `growth`.
  static Histogram Exponential(double first, double growth, std::size_t n);

  void Add(double value);
  std::uint64_t TotalCount() const { return total_; }

  /// Approximate quantile q in [0,1] by linear interpolation in-bucket.
  double Quantile(double q) const;

  const std::vector<double>& boundaries() const { return boundaries_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::vector<double> boundaries_;
  std::vector<std::uint64_t> counts_;  // boundaries_.size() + 1 buckets
  std::uint64_t total_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One point of a discrete CDF: P(X <= value) = cumulative.
struct CdfPoint {
  double value = 0.0;
  double cumulative = 0.0;  // in [0, 1]
};

/// Records a step function of an integer quantity over time (e.g. number
/// of concurrently reading threads) and summarises it as a time-weighted
/// distribution. Not thread-safe; each recording site owns one timeline.
class OccupancyTimeline {
 public:
  /// Registers that the tracked value changed to `value` at time `now`.
  /// Times must be non-decreasing.
  void Record(Nanos now, std::int64_t value);

  /// Closes the timeline at `end`, attributing trailing time to the last
  /// recorded value.
  void Finish(Nanos end);

  /// Total time spent at each value. Only valid after Finish().
  const std::map<std::int64_t, Nanos>& TimeAtValue() const { return time_at_value_; }

  /// Time-weighted CDF: fraction of total time spent at <= value.
  std::vector<CdfPoint> Cdf() const;

  /// Time-weighted mean of the tracked value.
  double TimeWeightedMean() const;

  /// Largest value ever recorded (0 if empty).
  std::int64_t MaxValue() const { return max_value_; }

  Nanos TotalTime() const { return total_time_; }

 private:
  void Accumulate(Nanos until);

  bool has_last_ = false;
  Nanos last_time_{0};
  std::int64_t last_value_ = 0;
  std::int64_t max_value_ = 0;
  Nanos total_time_{0};
  std::map<std::int64_t, Nanos> time_at_value_;
};

/// Formats a CDF as aligned text rows "value  cumulative%" for bench output.
std::string FormatCdf(const std::vector<CdfPoint>& cdf);

}  // namespace prisma
