// Minimal leveled, thread-safe logger.
//
// PRISMA components log through LOG(level) macros; the sink defaults to
// stderr and can be silenced in tests/benchmarks. Formatting happens only
// when the level is enabled.
#pragma once

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace prisma {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

class Logger {
 public:
  static Logger& Instance();

  void SetLevel(LogLevel level) { level_.store(static_cast<int>(level), std::memory_order_relaxed); }
  LogLevel level() const { return static_cast<LogLevel>(level_.load(std::memory_order_relaxed)); }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Writes one line "[LEVEL] component: message" atomically.
  void Write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
};

namespace log_internal {

class LineBuilder {
 public:
  LineBuilder(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LineBuilder() { Logger::Instance().Write(level_, component_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace log_internal

// Usage: PRISMA_LOG(kInfo, "dataplane") << "buffer resized to " << n;
#define PRISMA_LOG(level, component)                                  \
  if (!::prisma::Logger::Instance().Enabled(::prisma::LogLevel::level)) {} \
  else ::prisma::log_internal::LineBuilder(::prisma::LogLevel::level, (component))

}  // namespace prisma
