// Streaming statistics: Welford mean/variance, EWMA, and windowed rate
// estimation. The control plane's feedback loop consumes these; the
// experiment harness uses them for the "avg ± stddev of 5 runs" rows.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/units.hpp"

namespace prisma {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t Count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Min() const { return n_ ? min_ : 0.0; }
  double Max() const { return n_ ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double Variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double StdDev() const { return std::sqrt(Variance()); }

  void Reset() { *this = RunningStats{}; }

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n_total = static_cast<double>(n_ + other.n_);
    m2_ += other.m2_ + delta * delta *
               (static_cast<double>(n_) * static_cast<double>(other.n_)) / n_total;
    mean_ += delta * static_cast<double>(other.n_) / n_total;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    n_ += other.n_;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average with configurable smoothing.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void Add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  bool Initialized() const { return initialized_; }
  double Value() const { return value_; }
  void Reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Events-per-second estimator over a sliding time window.
class RateEstimator {
 public:
  explicit RateEstimator(Nanos window = std::chrono::seconds{5})
      : window_(window) {}

  void Record(Nanos now, std::uint64_t count = 1) {
    events_.push_back({now, count});
    Evict(now);
  }

  /// Events per second observed inside the window ending at `now`.
  double RatePerSecond(Nanos now) {
    Evict(now);
    std::uint64_t total = 0;
    for (const auto& e : events_) total += e.count;
    const double span = ToSeconds(window_);
    return span > 0.0 ? static_cast<double>(total) / span : 0.0;
  }

  void Reset() { events_.clear(); }

 private:
  struct Event {
    Nanos at;
    std::uint64_t count;
  };

  void Evict(Nanos now) {
    while (!events_.empty() && events_.front().at + window_ < now) {
      events_.pop_front();
    }
  }

  Nanos window_;
  std::deque<Event> events_;
};

}  // namespace prisma
