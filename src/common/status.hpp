// Lightweight status / result types used across PRISMA.
//
// We avoid exceptions on hot I/O paths (producer threads, intercept layer,
// IPC handlers); fallible operations return Status or Result<T> instead.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace prisma {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,   // transient: retryable (e.g. socket not yet up)
  kAborted,       // shut down while waiting
  kIoError,       // errno-style failure from the backend
  kInternal,
  kCancelled,     // caller-requested cancellation (e.g. retiring worker)
};

/// Human-readable name of a status code (stable, for logs and tests).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A success-or-error value. Cheap to copy on success (no allocation).
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status{}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status Aborted(std::string m) { return {StatusCode::kAborted, std::move(m)}; }
  static Status IoError(std::string m) { return {StatusCode::kIoError, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status Cancelled(std::string m) { return {StatusCode::kCancelled, std::move(m)}; }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "<CODE>: <message>".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Mirrors std::expected
/// (not yet available in libstdc++ 12) with the subset PRISMA needs.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    // An OK status carries no value; treat it as a misuse.
    if (std::get<Status>(v_).ok()) {
      v_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return ok(); }

  /// Error status; Status::Ok() when a value is held.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(v_);
  }

  [[nodiscard]] T& value() & { return std::get<T>(v_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(v_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(v_)); }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

namespace internal {

inline void IgnoreStatusImpl(const Status&) {}
template <typename T>
void IgnoreStatusImpl(const Result<T>&) {}

}  // namespace internal

}  // namespace prisma

/// Deliberately discard a Status/Result with a stated reason. This is
/// the only sanctioned way to drop one: a bare `(void)expr` hides the
/// decision from reviewers and from prisma-lint's status-checked rule.
/// The reason must be a non-empty string literal:
///   PRISMA_IGNORE_STATUS(conn->Close(), "already tearing down");
#define PRISMA_IGNORE_STATUS(expr, reason)                                \
  do {                                                                    \
    static_assert(sizeof(reason) > 1,                                     \
                  "PRISMA_IGNORE_STATUS needs a non-empty reason");       \
    ::prisma::internal::IgnoreStatusImpl((expr));                         \
  } while (0)
