#include "common/buffer_pool.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/hot_path.hpp"

namespace prisma {
namespace {

std::atomic<std::uint64_t> g_copy_count{0};
std::atomic<std::uint64_t> g_copy_bytes{0};

}  // namespace

SamplePayload SamplePayload::CopyOf(std::span<const std::byte> bytes) {
  if (bytes.empty()) {
    return SamplePayload{};
  }
  auto owned = std::make_unique<std::byte[]>(bytes.size());
  std::memcpy(owned.get(), bytes.data(), bytes.size());
  std::shared_ptr<const std::byte> shared(owned.release(),
                                          [](const std::byte* p) {
                                            delete[] p;
                                          });
  return SamplePayload{std::move(shared), bytes.size()};
}

// prisma-lint: allow(no-payload-copy, sink parameter: callers move the
// vector in and Adopt moves it into the refcounted holder — no byte copy)
SamplePayload SamplePayload::Adopt(std::vector<std::byte> bytes) {
  if (bytes.empty()) {
    return SamplePayload{};
  }
  const std::size_t size = bytes.size();
  auto holder = std::make_shared<std::vector<std::byte>>(std::move(bytes));
  // Aliasing constructor: the control block keeps the vector alive while
  // the payload points straight at its storage.
  std::shared_ptr<const std::byte> shared(holder, holder->data());
  return SamplePayload{std::move(shared), size};
}

PayloadWriter::~PayloadWriter() {
  if (bytes_ != nullptr && pool_ != nullptr) {
    pool_->Release(bytes_.release(), class_index_);
  }
}

PayloadWriter::PayloadWriter(PayloadWriter&& other) noexcept
    : pool_(std::move(other.pool_)),
      bytes_(std::move(other.bytes_)),
      capacity_(other.capacity_),
      class_index_(other.class_index_) {
  other.capacity_ = 0;
}

PayloadWriter& PayloadWriter::operator=(PayloadWriter&& other) noexcept {
  if (this != &other) {
    if (bytes_ != nullptr && pool_ != nullptr) {
      pool_->Release(bytes_.release(), class_index_);
    }
    pool_ = std::move(other.pool_);
    bytes_ = std::move(other.bytes_);
    capacity_ = other.capacity_;
    class_index_ = other.class_index_;
    other.capacity_ = 0;
  }
  return *this;
}

SamplePayload PayloadWriter::Freeze(std::size_t size) && {
  if (bytes_ == nullptr || size > capacity_) {
    return SamplePayload{};
  }
  std::byte* raw = bytes_.release();
  capacity_ = 0;
  if (pool_ == nullptr) {
    // Oversize chunk: plain delete when the last reference drops.
    std::shared_ptr<const std::byte> shared(raw, [](const std::byte* p) {
      delete[] p;
    });
    return SamplePayload{std::move(shared), size};
  }
  std::shared_ptr<BufferPool> pool = std::move(pool_);
  const std::size_t class_index = class_index_;
  std::shared_ptr<const std::byte> shared(
      raw, [pool, class_index](const std::byte* p) {
        pool->Release(const_cast<std::byte*>(p), class_index);
      });
  return SamplePayload{std::move(shared), size};
}

std::shared_ptr<BufferPool> BufferPool::Create(std::uint64_t max_cached_bytes) {
  return std::shared_ptr<BufferPool>(new BufferPool(max_cached_bytes));
}

const std::shared_ptr<BufferPool>& BufferPool::Default() {
  static const std::shared_ptr<BufferPool> pool =
      Create(/*max_cached_bytes=*/256ull * 1024 * 1024);
  return pool;
}

std::size_t BufferPool::ClassIndex(std::size_t bytes) {
  if (bytes <= kMinChunkBytes) {
    return 0;
  }
  if (bytes > kMaxChunkBytes) {
    return kNumClasses;
  }
  return static_cast<std::size_t>(
      std::bit_width(bytes - 1) - std::bit_width(kMinChunkBytes - 1));
}

PRISMA_HOT_PATH
PayloadWriter BufferPool::Acquire(std::size_t min_bytes) {
  const std::size_t class_index = ClassIndex(min_bytes);
  if (class_index >= kNumClasses) {
    oversize_.fetch_add(1, std::memory_order_relaxed);
    // prisma-lint: allow(hot-path-purity, oversize request: bigger than the
    // largest class, allocated fresh every time by design)
    return RefillSlow(min_bytes, kNumClasses);
  }
  const std::size_t chunk_bytes = ClassBytes(class_index);
  SizeClass& cls = classes_[class_index];
  {
    MutexLock lock(cls.mu);
    if (!cls.free_list.empty()) {
      std::unique_ptr<std::byte[]> bytes = std::move(cls.free_list.back());
      cls.free_list.pop_back();
      cached_bytes_.fetch_sub(chunk_bytes, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return PayloadWriter{shared_from_this(), std::move(bytes), chunk_bytes,
                           class_index};
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // prisma-lint: allow(hot-path-purity, pool miss: warmup and bursts
  // allocate here, then the chunk recycles through the free list —
  // allocs_per_sample in bench/micro_dataplane tracks this rate)
  return RefillSlow(chunk_bytes, class_index);
}

PayloadWriter BufferPool::RefillSlow(std::size_t bytes,
                                     std::size_t class_index) {
  return PayloadWriter{
      class_index >= kNumClasses ? nullptr : shared_from_this(),
      std::make_unique<std::byte[]>(bytes), bytes, class_index};
}

PRISMA_HOT_PATH
void BufferPool::Release(std::byte* bytes, std::size_t class_index) {
  std::unique_ptr<std::byte[]> owned(bytes);
  if (class_index >= kNumClasses) {
    return;  // oversize chunks are never cached
  }
  const std::size_t chunk_bytes = ClassBytes(class_index);
  if (cached_bytes_.load(std::memory_order_relaxed) + chunk_bytes >
      max_cached_bytes_) {
    discards_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SizeClass& cls = classes_[class_index];
  {
    MutexLock lock(cls.mu);
    // prisma-lint: allow(hot-path-purity, free-list growth is amortized:
    // capacity reaches the pool's high-water mark and stays there)
    cls.free_list.push_back(std::move(owned));
  }
  cached_bytes_.fetch_add(chunk_bytes, std::memory_order_relaxed);
  recycled_.fetch_add(1, std::memory_order_relaxed);
}

BufferPoolStats BufferPool::Stats() const {
  BufferPoolStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.oversize = oversize_.load(std::memory_order_relaxed);
  stats.recycled = recycled_.load(std::memory_order_relaxed);
  stats.discards = discards_.load(std::memory_order_relaxed);
  stats.cached_bytes = cached_bytes_.load(std::memory_order_relaxed);
  return stats;
}

void CopyAccounting::Count(std::size_t bytes) noexcept {
  g_copy_count.fetch_add(1, std::memory_order_relaxed);
  g_copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

std::uint64_t CopyAccounting::Copies() noexcept {
  return g_copy_count.load(std::memory_order_relaxed);
}

std::uint64_t CopyAccounting::CopiedBytes() noexcept {
  return g_copy_bytes.load(std::memory_order_relaxed);
}

}  // namespace prisma
