#include "common/thread_pool.hpp"

namespace prisma {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  tasks_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  while (auto task = tasks_.Pop()) {
    (*task)();
  }
}

}  // namespace prisma
