// Refcounted, pooled sample payloads — the allocation layer of the
// zero-copy data plane (DESIGN.md §9).
//
// A producer's backend read lands in a PayloadWriter (a writable chunk
// drawn from a size-classed BufferPool), is frozen into an immutable
// SamplePayload, and from then on only *references* travel: through the
// SampleBuffer, the prefetch object's parked-sample map, and the UDS
// server's scatter-gather send. The single mandatory byte copy on a
// consumer path is the one into the caller's destination buffer (or the
// socket), and it is accounted in CopyAccounting so tests and benches
// can assert "at most one copy per payload byte".
//
// When the last SamplePayload reference drops, the chunk returns to its
// pool's free list (bounded by max_cached_bytes) instead of the global
// allocator — cutting malloc/free churn at the 8–32 producer counts
// where the sharded buffer moved the bottleneck.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/mutex.hpp"

namespace prisma {

class BufferPool;

/// Shared, immutable byte buffer. Cheap to copy (one refcount bump);
/// the bytes stay valid until the last reference drops, so a reader
/// holding a payload is safe even after the sample was evicted from
/// every buffer and map.
class SamplePayload {
 public:
  SamplePayload() = default;
  SamplePayload(std::shared_ptr<const std::byte> data, std::size_t size)
      : data_(std::move(data)), size_(size) {}

  /// Allocates (unpooled) and copies `bytes` — convenience for tests and
  /// cold paths.
  static SamplePayload CopyOf(std::span<const std::byte> bytes);

  /// Takes ownership of `bytes` without copying.
  static SamplePayload Adopt(std::vector<std::byte> bytes);

  const std::byte* data() const noexcept { return data_.get(); }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::span<const std::byte> span() const noexcept {
    return {data_.get(), size_};
  }

  /// Number of outstanding references (approximate under concurrency;
  /// exact in single-threaded tests).
  long use_count() const noexcept { return data_.use_count(); }

  explicit operator bool() const noexcept { return data_ != nullptr; }

 private:
  std::shared_ptr<const std::byte> data_;
  std::size_t size_ = 0;
};

/// Unique, writable stage of a payload's life: the producer fills
/// span() and then Freeze()s it into an immutable SamplePayload. If the
/// writer dies without freezing (failed read), the chunk returns to the
/// pool directly.
class PayloadWriter {
 public:
  PayloadWriter() = default;
  ~PayloadWriter();
  PayloadWriter(PayloadWriter&& other) noexcept;
  PayloadWriter& operator=(PayloadWriter&& other) noexcept;
  PayloadWriter(const PayloadWriter&) = delete;
  PayloadWriter& operator=(const PayloadWriter&) = delete;

  bool valid() const noexcept { return bytes_ != nullptr; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::span<std::byte> span() noexcept { return {bytes_.get(), capacity_}; }

  /// Seals `size` bytes (<= capacity) as an immutable shared payload.
  /// The chunk is recycled into the pool when the last reference drops.
  SamplePayload Freeze(std::size_t size) &&;

 private:
  friend class BufferPool;
  PayloadWriter(std::shared_ptr<BufferPool> pool,
                std::unique_ptr<std::byte[]> bytes, std::size_t capacity,
                std::size_t class_index)
      : pool_(std::move(pool)),
        bytes_(std::move(bytes)),
        capacity_(capacity),
        class_index_(class_index) {}

  std::shared_ptr<BufferPool> pool_;  // null => unpooled (oversize)
  std::unique_ptr<std::byte[]> bytes_;
  std::size_t capacity_ = 0;
  std::size_t class_index_ = 0;
};

struct BufferPoolStats {
  std::uint64_t hits = 0;      // acquisitions served from a free list
  std::uint64_t misses = 0;    // acquisitions that allocated fresh memory
  std::uint64_t oversize = 0;  // larger than the largest class (unpooled)
  std::uint64_t recycled = 0;  // chunks returned into a free list
  std::uint64_t discards = 0;  // chunks freed because the cache was full
  std::uint64_t cached_bytes = 0;  // bytes currently parked in free lists
};

/// Size-classed free-list allocator for sample payloads. Classes are
/// powers of two from kMinChunkBytes to kMaxChunkBytes; requests above
/// the largest class fall back to exact, unpooled allocations. All
/// methods are thread-safe; the cached-bytes budget bounds idle memory.
class BufferPool : public std::enable_shared_from_this<BufferPool> {
 public:
  static constexpr std::size_t kMinChunkBytes = 4 * 1024;
  static constexpr std::size_t kNumClasses = 15;  // 4 KiB .. 64 MiB
  static constexpr std::size_t kMaxChunkBytes = kMinChunkBytes
                                                << (kNumClasses - 1);

  static std::shared_ptr<BufferPool> Create(std::uint64_t max_cached_bytes);

  /// Process-wide pool for callers without their own (tiering
  /// promotions, ad-hoc reads).
  static const std::shared_ptr<BufferPool>& Default();

  /// Returns a writable chunk of capacity >= max(min_bytes, class floor).
  PayloadWriter Acquire(std::size_t min_bytes);

  BufferPoolStats Stats() const;
  std::uint64_t CachedBytes() const {
    return cached_bytes_.load(std::memory_order_relaxed);
  }

  /// Size class serving `bytes` (kNumClasses for oversize requests).
  static std::size_t ClassIndex(std::size_t bytes);
  static std::size_t ClassBytes(std::size_t class_index) {
    return kMinChunkBytes << class_index;
  }

 private:
  friend class PayloadWriter;
  explicit BufferPool(std::uint64_t max_cached_bytes)
      : max_cached_bytes_(max_cached_bytes) {}

  /// Return path for frozen payloads and abandoned writers.
  void Release(std::byte* bytes, std::size_t class_index);

  /// Miss path: allocates a fresh chunk (oversize requests pass
  /// class_index == kNumClasses and are never pooled). Deliberately NOT
  /// hot — Acquire's fast path is the free-list hit; this is the
  /// documented steady-state-warmup allocation behind it.
  PayloadWriter RefillSlow(std::size_t bytes, std::size_t class_index);

  struct SizeClass {
    Mutex mu{LockRank::kBufferPool};
    std::vector<std::unique_ptr<std::byte[]>> free_list GUARDED_BY(mu);
  };

  const std::uint64_t max_cached_bytes_;
  std::array<SizeClass, kNumClasses> classes_;
  std::atomic<std::uint64_t> cached_bytes_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> oversize_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> discards_{0};
};

/// Process-wide tally of consumer-path payload copies (the memcpy into a
/// caller's dst, or the socket recv into the remote caller's dst). The
/// zero-copy invariant — at most ONE such copy per consumed payload byte
/// — is asserted by tests/zero_copy_test and reported by the benches as
/// bytes-copied/sample. Storage reads filling a payload (pread, content
/// synthesis) are the data's birth, not a copy, and are not counted.
class CopyAccounting {
 public:
  static void Count(std::size_t bytes) noexcept;
  static std::uint64_t Copies() noexcept;
  static std::uint64_t CopiedBytes() noexcept;
};

}  // namespace prisma
