// Reactor-based async I/O engine: the execution core of the data plane.
//
// The thread-per-connection UDS server and blocking-pread producers made
// thread count the only scaling knob (ROADMAP item 1: ~1.25x from 1->8
// workers). This engine replaces that model with a small worker pool of
// event loops — O(cores) threads serving O(connections) sockets and
// O(prefetch-depth) outstanding backend reads.
//
// Two implementations sit behind one proactor-style interface:
//
//   io_uring  Each loop owns a ring (raw io_uring_setup/io_uring_enter
//             syscalls — no liburing dependency) and drives *batched*
//             submissions: operations queued during one loop iteration
//             are flushed by a single io_uring_enter that also waits for
//             completions. Socket recv/send, accept, and offset file
//             reads are all kernel-async.
//
//   epoll     Fallback for kernels/sandboxes without io_uring (and for
//             the PRISMA_IO_URING=OFF build): non-blocking socket ops
//             armed on an epoll set, plus a bounded blocking-offload
//             thread pool for file reads. Same interface, same
//             completion semantics, so everything above is agnostic.
//
// Completion contract (both engines):
//   * Async* methods may only be called on the loop's own thread (use
//     Post to hop). They NEVER invoke the callback inline — completions
//     are dispatched from the loop iteration, so callers cannot reenter
//     themselves.
//   * Callbacks receive a result in syscall convention: >= 0 is the byte
//     count (or accepted fd), < 0 is -errno (-ECANCELED for cancelled
//     operations, including every operation still pending at Stop()).
//   * Stop() drains: every pending operation gets exactly one callback
//     (with -ECANCELED if it never ran) before Stop returns, and no
//     kernel operation can touch a caller buffer after Stop returns.
//     Tasks Post()ed after Stop are destroyed without running.
//
// Callbacks are raw {function pointer, context} pairs, not
// std::function: submission and completion are PRISMA_HOT_PATH and must
// not allocate at steady state (op records recycle through a slab free
// list keyed by {slot, generation} ids).
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>

#include "common/status.hpp"
#include "common/thread_pool.hpp"

namespace prisma {

/// Allocation-free completion callback: `fn(ctx, res)` with `res` in
/// syscall convention (>= 0 result, < 0 is -errno).
struct IoCallback {
  void (*fn)(void* ctx, int res) = nullptr;
  void* ctx = nullptr;

  void operator()(int res) const { fn(ctx, res); }
  explicit operator bool() const { return fn != nullptr; }
};

/// Handle to a pending operation: {slot, generation} packed. 0 is never
/// a valid id (submission failures surface through the callback, which
/// still fires exactly once).
using OpId = std::uint64_t;

/// Most iovec entries one AsyncSendSome accepts (mirrors WriteFrameV's
/// part limit plus the frame prefix).
inline constexpr unsigned kMaxSendIoVec = 9;

class EventLoop {
 public:
  virtual ~EventLoop() = default;

  /// Runs `fn` on the loop thread (thread-safe, callable from anywhere).
  /// After Stop, tasks are destroyed without running.
  virtual void Post(std::function<void()> fn) = 0;

  // --- Operations (loop thread only; completion via loop iteration) ----

  /// Accepts one connection; result is the new fd (CLOEXEC).
  virtual OpId AsyncAccept(int listen_fd, IoCallback cb) = 0;

  /// Receives at least 1 byte into `dst` (0 = orderly peer close).
  virtual OpId AsyncRecvSome(int fd, std::span<std::byte> dst,
                             IoCallback cb) = 0;

  /// Sends some bytes from `iov` (gather write; at most kMaxSendIoVec
  /// entries, copied into the op — the array may die, the *buffers* must
  /// outlive the completion). Partial sends are normal; resubmit the
  /// remainder.
  virtual OpId AsyncSendSome(int fd, const iovec* iov, unsigned iov_count,
                             IoCallback cb) = 0;

  /// pread-style file read at `offset`. On the epoll engine this runs on
  /// the blocking-offload pool against a dup() of `fd`, so the caller
  /// may close `fd` as soon as the callback fires.
  virtual OpId AsyncReadFile(int fd, std::span<std::byte> dst,
                             std::uint64_t offset, IoCallback cb) = 0;

  /// Requests cancellation of a pending op (loop thread only). The op's
  /// callback still fires exactly once — with -ECANCELED if the cancel
  /// won, or its real result if completion raced. No-op for unknown or
  /// already-completed ids.
  virtual void Cancel(OpId id) = 0;

  virtual bool OnLoopThread() const = 0;
};

struct EventEngineOptions {
  enum class Kind {
    kAuto,   // io_uring when compiled in and the kernel supports it
    kUring,  // io_uring, falling back to epoll if unsupported
    kEpoll,  // force the fallback engine
  };
  Kind kind = Kind::kAuto;
  /// Event-loop worker threads (0 = min(hardware_concurrency, 4)).
  std::uint32_t workers = 0;
  /// SQ depth per io_uring loop (batched submissions flush through one
  /// io_uring_enter per loop iteration).
  std::uint32_t uring_entries = 256;
  /// Blocking-offload pool size (0 = max(2, workers)). The epoll engine
  /// runs file reads here; both engines expose it via Offload() for
  /// blocking work that must stay off the loops.
  std::uint32_t offload_threads = 0;
};

class EventEngine {
 public:
  /// Builds an engine per `opts.kind` (kAuto/kUring degrade to epoll
  /// when io_uring is compiled out or the kernel probe fails). Never
  /// returns null. The engine starts stopped; call Start().
  static std::unique_ptr<EventEngine> Create(const EventEngineOptions& opts);

  /// True when the io_uring implementation was compiled in
  /// (PRISMA_IO_URING=ON and <linux/io_uring.h> present).
  static bool UringCompiledIn();

  /// UringCompiledIn() plus a one-time runtime probe: io_uring_setup
  /// succeeds and the kernel reports every opcode the loop uses.
  static bool UringSupported();

  virtual ~EventEngine() = default;

  virtual Status Start() = 0;
  /// Stops and joins every loop and the offload pool. Drains pending
  /// operations (see completion contract above). Idempotent.
  virtual void Stop() = 0;

  /// "io_uring" or "epoll" — the implementation actually selected.
  virtual std::string_view name() const = 0;

  virtual std::size_t worker_count() const = 0;
  /// worker_count() plus the offload pool: the total threads this engine
  /// owns (the number benchmarks report as "server threads").
  virtual std::size_t thread_count() const = 0;

  /// Loop `i` (i < worker_count()). Assign each fd to one loop and keep
  /// all its operations there.
  virtual EventLoop& LoopAt(std::size_t i) = 0;

  /// Bounded executor for blocking work (backend pass-through reads,
  /// stage control calls) that must never run on a loop thread.
  virtual ThreadPool& Offload() = 0;
};

}  // namespace prisma
