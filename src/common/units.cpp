#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace prisma {

std::string FormatBytes(std::uint64_t bytes) {
  constexpr std::array<const char*, 5> kSuffix{"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kSuffix.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kSuffix[unit]);
  }
  return buf;
}

std::string FormatDuration(Nanos d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f s", ToSeconds(d));
  return buf;
}

}  // namespace prisma
