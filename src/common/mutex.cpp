#include "common/mutex.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if PRISMA_LOCK_ORDER_CHECKS
#include <execinfo.h>
#endif

namespace prisma {

const char* LockRankName(LockRank rank) noexcept {
  switch (rank) {
    case LockRank::kUnranked: return "kUnranked";
    case LockRank::kLeaf: return "kLeaf";
    case LockRank::kBufferPool: return "kBufferPool";
    case LockRank::kPageCache: return "kPageCache";
    case LockRank::kRateLimiter: return "kRateLimiter";
    case LockRank::kBackend: return "kBackend";
    case LockRank::kShard: return "kShard";
    case LockRank::kQueue: return "kQueue";
    case LockRank::kStage: return "kStage";
    case LockRank::kRegistry: return "kRegistry";
    case LockRank::kController: return "kController";
  }
  return "?";
}

#if PRISMA_LOCK_ORDER_CHECKS

namespace {

// Deep enough for the worst legitimate nesting (SetShardCount holds
// every shard slot — 64 by default — under a controller lock).
constexpr int kMaxHeld = 192;
constexpr int kMaxFrames = 24;

struct HeldLock {
  const Mutex* mu;
  LockRank rank;
  std::uint64_t seq;
  void* frames[kMaxFrames];
  int depth;
};

struct HeldStack {
  HeldLock entries[kMaxHeld];
  int size = 0;
};

thread_local HeldStack tls_held;

std::atomic<std::uint64_t> g_mutex_seq{0};

void DumpBacktrace(const char* title, void* const* frames, int depth) {
  std::fprintf(stderr, "%s\n", title);
  if (depth > 0) {
    backtrace_symbols_fd(const_cast<void**>(frames), depth, /*stderr*/ 2);
  } else {
    std::fprintf(stderr, "  (no frames captured)\n");
  }
}

[[noreturn]] void Violation(const char* kind, const Mutex& incoming,
                            const HeldLock* conflicting) {
  // First line is the stable diagnostic the death tests match on.
  std::fprintf(stderr,
               "prisma: lock-order violation (%s): acquiring %s mutex %p\n",
               kind, LockRankName(incoming.rank()),
               static_cast<const void*>(&incoming));
  if (conflicting != nullptr) {
    std::fprintf(stderr, "  while holding %s mutex %p, acquired at:\n",
                 LockRankName(conflicting->rank),
                 static_cast<const void*>(conflicting->mu));
    DumpBacktrace("  --- conflicting acquisition stack ---",
                  conflicting->frames, conflicting->depth);
  }
  void* here[kMaxFrames];
  const int depth = backtrace(here, kMaxFrames);
  DumpBacktrace("  --- current acquisition stack ---", here, depth);
  std::abort();
}

bool IsHeldByThisThread(const Mutex& mu) {
  const HeldStack& held = tls_held;
  for (int i = 0; i < held.size; ++i) {
    if (held.entries[i].mu == &mu) return true;
  }
  return false;
}

}  // namespace

Mutex::Mutex(LockRank rank) noexcept
    : rank_(rank), seq_(g_mutex_seq.fetch_add(1, std::memory_order_relaxed)) {}

// Pre-acquisition check, run before blocking on the underlying mutex so
// a violation aborts with the diagnostic instead of deadlocking.
// try_lock skips this (it cannot block, hence cannot deadlock).
void Mutex::DebugCheckAcquire() {
  const Mutex& mu = *this;
  const HeldStack& held = tls_held;
  for (int i = 0; i < held.size; ++i) {
    if (held.entries[i].mu == &mu) {
      Violation("re-entrant acquisition", mu, &held.entries[i]);
    }
  }
  if (mu.rank() != LockRank::kUnranked) {
    // Compare against the innermost *ranked* hold: ranks must strictly
    // descend; equal ranks only in ascending construction order.
    for (int i = held.size - 1; i >= 0; --i) {
      const HeldLock& top = held.entries[i];
      if (top.rank == LockRank::kUnranked) continue;
      const bool ok =
          static_cast<int>(mu.rank()) < static_cast<int>(top.rank) ||
          (mu.rank() == top.rank && seq_ > top.seq);
      if (!ok) Violation("rank order", mu, &top);
      break;
    }
  }
}

// Records *this as held (after the underlying acquisition succeeded).
void Mutex::DebugRecordAcquired() {
  HeldStack& held = tls_held;
  if (held.size >= kMaxHeld) {
    std::fprintf(stderr,
                 "prisma: lock-order validator: held-lock stack overflow "
                 "(%d locks held by one thread)\n",
                 held.size);
    std::abort();
  }
  HeldLock& e = held.entries[held.size++];
  e.mu = this;
  e.rank = rank_;
  e.seq = seq_;
  e.depth = backtrace(e.frames, kMaxFrames);
}

void Mutex::DebugOnReleased() {
  const Mutex& mu = *this;
  HeldStack& held = tls_held;
  for (int i = held.size - 1; i >= 0; --i) {
    if (held.entries[i].mu != &mu) continue;
    for (int j = i; j < held.size - 1; ++j) {
      held.entries[j] = held.entries[j + 1];
    }
    --held.size;
    return;
  }
  // Unlock of a mutex this thread never recorded: either cross-thread
  // unlock (illegal for std::mutex) or validator state corruption.
  std::fprintf(stderr,
               "prisma: lock-order violation (release of unheld mutex): "
               "%s mutex %p\n",
               LockRankName(mu.rank()), static_cast<const void*>(&mu));
  std::abort();
}

void Mutex::AssertHeld() const {
  if (!IsHeldByThisThread(*this)) {
    std::fprintf(stderr,
                 "prisma: lock-order violation (AssertHeld failed): "
                 "%s mutex %p is not held by this thread\n",
                 LockRankName(rank_), static_cast<const void*>(this));
    std::abort();
  }
}

#else  // !PRISMA_LOCK_ORDER_CHECKS

Mutex::Mutex(LockRank rank) noexcept : rank_(rank) {}

void Mutex::AssertHeld() const {}

#endif  // PRISMA_LOCK_ORDER_CHECKS

}  // namespace prisma
