#include "common/clock.hpp"

namespace prisma {

Nanos SteadyClock::Now() const {
  return std::chrono::duration_cast<Nanos>(
      std::chrono::steady_clock::now().time_since_epoch());
}

const std::shared_ptr<SteadyClock>& SteadyClock::Shared() {
  static const std::shared_ptr<SteadyClock> instance =
      std::make_shared<SteadyClock>();
  return instance;
}

}  // namespace prisma
