#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "common/units.hpp"

namespace prisma {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

Result<Config> Config::FromString(std::string_view text) {
  Config cfg;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("config line " + std::to_string(line_no) +
                                     ": missing '='");
    }
    const std::string_view key = Trim(line.substr(0, eq));
    const std::string_view value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument("config line " + std::to_string(line_no) +
                                     ": empty key");
    }
    cfg.Set(std::string(key), std::string(value));
  }
  return cfg;
}

Result<Config> Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("config file not found: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return FromString(ss.str());
}

void Config::Set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::Has(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::optional<std::string> Config::GetString(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::GetString(std::string_view key, std::string fallback) const {
  auto v = GetString(key);
  return v ? *v : std::move(fallback);
}

Result<std::int64_t> Config::GetInt(std::string_view key) const {
  const auto v = GetString(key);
  if (!v) return Status::NotFound("missing key: " + std::string(key));
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    return Status::InvalidArgument("key " + std::string(key) +
                                   ": not an integer: " + *v);
  }
  return out;
}

std::int64_t Config::GetInt(std::string_view key, std::int64_t fallback) const {
  const auto r = GetInt(key);
  return r.ok() ? *r : fallback;
}

Result<double> Config::GetDouble(std::string_view key) const {
  const auto v = GetString(key);
  if (!v) return Status::NotFound("missing key: " + std::string(key));
  try {
    std::size_t idx = 0;
    const double out = std::stod(*v, &idx);
    if (idx != v->size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    return Status::InvalidArgument("key " + std::string(key) +
                                   ": not a number: " + *v);
  }
}

double Config::GetDouble(std::string_view key, double fallback) const {
  const auto r = GetDouble(key);
  return r.ok() ? *r : fallback;
}

Result<bool> Config::GetBool(std::string_view key) const {
  const auto v = GetString(key);
  if (!v) return Status::NotFound("missing key: " + std::string(key));
  const std::string lower = ToLower(*v);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") return false;
  return Status::InvalidArgument("key " + std::string(key) +
                                 ": not a boolean: " + *v);
}

bool Config::GetBool(std::string_view key, bool fallback) const {
  const auto r = GetBool(key);
  return r.ok() ? *r : fallback;
}

Result<std::uint64_t> Config::ParseBytes(std::string_view text) {
  const std::string_view trimmed = Trim(text);
  if (trimmed.empty()) return Status::InvalidArgument("empty byte size");

  std::size_t i = 0;
  while (i < trimmed.size() &&
         (std::isdigit(static_cast<unsigned char>(trimmed[i])) || trimmed[i] == '.')) {
    ++i;
  }
  double value = 0.0;
  try {
    value = std::stod(std::string(trimmed.substr(0, i)));
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad byte size: " + std::string(text));
  }

  const std::string unit = ToLower(Trim(trimmed.substr(i)));
  double mult = 1.0;
  if (unit.empty() || unit == "b") {
    mult = 1.0;
  } else if (unit == "kib" || unit == "k" || unit == "kb") {
    mult = static_cast<double>(kKiB);
  } else if (unit == "mib" || unit == "m" || unit == "mb") {
    mult = static_cast<double>(kMiB);
  } else if (unit == "gib" || unit == "g" || unit == "gb") {
    mult = static_cast<double>(kGiB);
  } else if (unit == "tib" || unit == "t" || unit == "tb") {
    mult = static_cast<double>(kTiB);
  } else {
    return Status::InvalidArgument("unknown byte unit: " + unit);
  }
  if (value < 0.0) return Status::InvalidArgument("negative byte size");
  return static_cast<std::uint64_t>(value * mult);
}

Result<std::uint64_t> Config::GetBytes(std::string_view key) const {
  const auto v = GetString(key);
  if (!v) return Status::NotFound("missing key: " + std::string(key));
  auto parsed = ParseBytes(*v);
  if (!parsed.ok()) {
    return Status::InvalidArgument("key " + std::string(key) + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

std::uint64_t Config::GetBytes(std::string_view key, std::uint64_t fallback) const {
  const auto r = GetBytes(key);
  return r.ok() ? *r : fallback;
}

}  // namespace prisma
