#include "common/metrics.hpp"

#include <cstdio>

namespace prisma {

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  const std::string key = name + labels;
  MutexLock lock(mu_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels) {
  const std::string key = name + labels;
  MutexLock lock(mu_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::string MetricsRegistry::DumpText() const {
  MutexLock lock(mu_);
  std::string out;
  char buf[64];
  for (const auto& [key, counter] : counters_) {
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(counter->Value()));
    out += key;
    out += buf;
  }
  for (const auto& [key, gauge] : gauges_) {
    std::snprintf(buf, sizeof(buf), " %g\n", gauge->Value());
    out += key;
    out += buf;
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mu_);
  return counters_.size() + gauges_.size();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

std::string EscapeLabelValue(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    if (c == '"' || c == '\\') escaped.push_back('\\');
    escaped.push_back(c);
  }
  return escaped;
}

}  // namespace

std::string MetricsRegistry::Label(const std::string& key,
                                   const std::string& value) {
  return "{" + key + "=\"" + EscapeLabelValue(value) + "\"}";
}

std::string MetricsRegistry::Label(const std::string& k1,
                                   const std::string& v1,
                                   const std::string& k2,
                                   const std::string& v2) {
  return "{" + k1 + "=\"" + EscapeLabelValue(v1) + "\"," + k2 + "=\"" +
         EscapeLabelValue(v2) + "\"}";
}

}  // namespace prisma
