// Annotated mutex / condition-variable wrappers with a debug lock-order
// validator.
//
// Why not plain std::mutex: the data plane's correctness rests on
// fine-grained locking (per-shard buffer mutexes, refcounted payload
// lifetimes, producer retirement, controller feedback), and no test
// schedule exercises every interleaving. Two compile/debug-time nets
// replace "hope TSan's schedule hits it":
//
//  1. Static: prisma::Mutex is a Clang Thread Safety capability. State
//     declared GUARDED_BY(mu) cannot compile unless the accessor holds
//     mu (clang -Wthread-safety -Werror; see scripts/ci.sh tsa). Under
//     GCC the attributes vanish and Mutex degrades to std::mutex plus
//     the runtime validator.
//
//  2. Dynamic: every Mutex carries a LockRank. In checked builds
//     (-DPRISMA_LOCK_CHECKS=ON, default for Debug) each thread tracks
//     the stack of held locks; acquiring out of rank order or
//     re-entrantly aborts immediately with the acquisition backtrace of
//     the conflicting held lock AND the current stack. Ordering bugs
//     that annotations cannot express (the rank order is a global
//     property, not a per-call-site one) die deterministically in every
//     debug test run instead of deadlocking once a year in production.
//
// The global rank order (outermost first — a thread may only acquire a
// mutex of LOWER rank than every mutex it already holds):
//
//   kController > kRegistry > kStage > kQueue > kShard > kBackend
//               > kRateLimiter > kPageCache > kBufferPool > kLeaf
//
// Same-rank nesting (e.g. SampleBuffer::SetShardCount taking every
// shard, ControlPlane calling into its Controllers) is permitted only in
// ascending construction order, which makes "lock shards by index" and
// "owner locks itself before its members" the canonical — and checked —
// idioms. See DESIGN.md §10 for the full invariant table and how to
// rank new locked state.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.hpp"

#ifndef PRISMA_LOCK_ORDER_CHECKS
#define PRISMA_LOCK_ORDER_CHECKS 0
#endif

namespace prisma {

/// Global lock ordering, outermost (acquired first) = highest value.
/// A thread holding rank r may acquire only ranks strictly below r, or
/// rank r again on a mutex constructed later than every held rank-r one.
enum class LockRank : int {
  kUnranked = -1,    // exempt from ordering checks (re-entrancy still fatal)
  kLeaf = 1,         // logging sink, metrics registry, shim fd table
  kBufferPool = 2,   // payload size-class free lists
  kPageCache = 3,    // page-cache model LRU
  kRateLimiter = 4,  // token buckets
  kBackend = 5,      // storage-backend internal state
  kShard = 6,        // sample-buffer shards
  kQueue = 7,        // bounded MPMC queues
  kStage = 8,        // optimization-object state (prefetch, tiering)
  kRegistry = 9,     // stage registry, UDS server connection table
  kController = 10,  // control-plane state
};

/// Stable name for diagnostics ("kShard" etc.).
const char* LockRankName(LockRank rank) noexcept;

/// std::mutex with a thread-safety capability and a ranked identity.
/// BasicLockable, so std::unique_lock<Mutex> and
/// std::condition_variable_any compose with it; prefer MutexLock and
/// prisma::CondVar, which carry the static annotations.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kUnranked) noexcept;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if PRISMA_LOCK_ORDER_CHECKS
    // Checked *before* blocking: a re-entrant or out-of-rank acquire
    // must abort with the diagnostic, not sit in the deadlock it was
    // about to create.
    DebugCheckAcquire();
#endif
    mu_.lock();
#if PRISMA_LOCK_ORDER_CHECKS
    DebugRecordAcquired();
#endif
  }
  void unlock() RELEASE() {
#if PRISMA_LOCK_ORDER_CHECKS
    DebugOnReleased();
#endif
    mu_.unlock();
  }
  /// Never blocks, so it cannot deadlock: recorded but not rank-checked.
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if PRISMA_LOCK_ORDER_CHECKS
    DebugRecordAcquired();
#endif
    return true;
  }

  /// In checked builds, aborts unless the calling thread holds *this.
  /// The static analysis also treats it as proof of acquisition.
  void AssertHeld() const ASSERT_CAPABILITY(this);

  LockRank rank() const noexcept { return rank_; }

  /// True when the build carries the runtime lock-order validator
  /// (tests use this to skip/run the death tests).
  static constexpr bool OrderCheckingEnabled() noexcept {
    return PRISMA_LOCK_ORDER_CHECKS != 0;
  }

 private:
#if PRISMA_LOCK_ORDER_CHECKS
  void DebugCheckAcquire();
  void DebugRecordAcquired();
  void DebugOnReleased();
#endif

  std::mutex mu_;
  const LockRank rank_;
#if PRISMA_LOCK_ORDER_CHECKS
  const std::uint64_t seq_;  // construction order, for same-rank nesting
#endif
};

/// Scoped lock holder (the annotated std::unique_lock replacement).
/// Relockable: Unlock()/Lock() support the unlock-before-notify and
/// drop-across-blocking-call patterns; the destructor releases only if
/// currently held. Not movable — the static analysis tracks it by name.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.lock();
  }
  ~MutexLock() {
    if (owned_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() {
    owned_ = false;
    mu_.unlock();
  }
  void Lock() ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }

 private:
  Mutex& mu_;
  bool owned_;
};

/// Condition variable bound to prisma::Mutex. Waits release and
/// re-acquire through Mutex::unlock/lock, so the lock-order validator
/// stays consistent across blocking. No predicate overloads on purpose:
/// predicates touching GUARDED_BY state would be analyzed as separate
/// (unannotated) lambdas — write `while (!cond) cv.Wait(mu);` instead,
/// which the analysis follows exactly.
class CondVar {
 public:
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Returns false on timeout.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }

  /// Returns false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace prisma
