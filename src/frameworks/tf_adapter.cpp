#include "frameworks/tf_adapter.hpp"

namespace prisma::frameworks {

namespace {

/// Upstream behaviour: pread(2) on the backing file.
class VanillaFile final : public TfRandomAccessFile {
 public:
  VanillaFile(std::shared_ptr<storage::StorageBackend> backend,
              std::string path)
      : backend_(std::move(backend)), path_(std::move(path)) {}

  Result<std::size_t> Read(std::uint64_t offset,
                           std::span<std::byte> dst) const override {
    auto n = backend_->Read(path_, offset, dst);  // the pread call site
    if (!n.ok()) return n.status();
    if (*n < dst.size()) {
      return Status::OutOfRange("EOF reached on " + path_);
    }
    return n;
  }

 private:
  std::shared_ptr<storage::StorageBackend> backend_;
  std::string path_;
};

/// The paper's patch: "we extended the existing POSIX file system backend
/// and replaced the pread invocation with Prisma.read". The whole
/// integration diff is the body of this Read().
class PrismaFile final : public TfRandomAccessFile {
 public:
  PrismaFile(std::shared_ptr<dataplane::Stage> stage, std::string path)
      : stage_(std::move(stage)), path_(std::move(path)) {}

  Result<std::size_t> Read(std::uint64_t offset,
                           std::span<std::byte> dst) const override {
    auto n = stage_->Read(path_, offset, dst);  // Prisma.read
    if (!n.ok()) return n.status();
    if (*n < dst.size()) {
      return Status::OutOfRange("EOF reached on " + path_);
    }
    return n;
  }

 private:
  std::shared_ptr<dataplane::Stage> stage_;
  std::string path_;
};

}  // namespace

TfPosixFileSystem::TfPosixFileSystem(
    std::shared_ptr<storage::StorageBackend> backend)
    : backend_(std::move(backend)) {}

TfPosixFileSystem::TfPosixFileSystem(
    std::shared_ptr<storage::StorageBackend> backend,
    std::shared_ptr<dataplane::Stage> stage)
    : backend_(std::move(backend)), stage_(std::move(stage)) {}

Result<std::unique_ptr<TfRandomAccessFile>>
TfPosixFileSystem::NewRandomAccessFile(const std::string& path) const {
  if (stage_ != nullptr) {
    return std::unique_ptr<TfRandomAccessFile>(
        std::make_unique<PrismaFile>(stage_, path));
  }
  return std::unique_ptr<TfRandomAccessFile>(
      std::make_unique<VanillaFile>(backend_, path));
}

Result<std::uint64_t> TfPosixFileSystem::GetFileSize(
    const std::string& path) const {
  if (stage_ != nullptr) return stage_->FileSize(path);
  return backend_->FileSize(path);
}

}  // namespace prisma::frameworks
