// PyTorch-style integration (paper §IV): PyTorch's DataLoader spawns
// worker *processes*, so the 35-LoC patch inserts a PRISMA client into
// each worker's dataset `__getitem__`/fetch path, shipping reads to the
// PRISMA UDS server. TorchWorkerClient is that per-worker object; it is
// created after fork (sockets don't survive fork cleanly) and used by a
// single worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ipc/uds_client.hpp"

namespace prisma::frameworks {

/// The per-worker handle of the PyTorch integration. Mirrors the shape of
/// a Dataset wrapper: `GetItem(name)` returns the raw sample bytes the
/// collate step would decode.
class TorchWorkerClient {
 public:
  TorchWorkerClient() = default;

  /// Connects this worker to the PRISMA server (call after fork()).
  Status Connect(const std::string& socket_path);

  /// Fetches one sample — the intercepted read invocation.
  Result<std::vector<std::byte>> GetItem(const std::string& name);

  /// Zero-copy variant: fetches the sample into caller-owned memory (a
  /// pinned tensor's storage, a reused staging buffer) and returns the
  /// byte count. OutOfRange if `dst` is smaller than the sample.
  Result<std::size_t> GetItemInto(const std::string& name,
                                  std::span<std::byte> dst);

  /// The main process announces each epoch's (already shuffled) order.
  Status AnnounceEpoch(std::uint64_t epoch,
                       const std::vector<std::string>& order);

  bool Connected() const { return client_.Connected(); }
  ipc::UdsClient& raw_client() { return client_; }

 private:
  ipc::UdsClient client_;
};

}  // namespace prisma::frameworks
