#include "frameworks/torch_adapter.hpp"

namespace prisma::frameworks {

Status TorchWorkerClient::Connect(const std::string& socket_path) {
  return client_.Connect(socket_path);
}

Result<std::vector<std::byte>> TorchWorkerClient::GetItem(
    const std::string& name) {
  return client_.ReadAll(name);
}

Status TorchWorkerClient::AnnounceEpoch(
    std::uint64_t epoch, const std::vector<std::string>& order) {
  return client_.BeginEpoch(epoch, order);
}

}  // namespace prisma::frameworks
