#include "frameworks/torch_adapter.hpp"

namespace prisma::frameworks {

Status TorchWorkerClient::Connect(const std::string& socket_path) {
  return client_.Connect(socket_path);
}

Result<std::vector<std::byte>> TorchWorkerClient::GetItem(
    const std::string& name) {
  return client_.ReadAll(name);
}

Result<std::size_t> TorchWorkerClient::GetItemInto(const std::string& name,
                                                   std::span<std::byte> dst) {
  const auto size = client_.FileSize(name);
  if (!size.ok()) return size.status();
  if (*size > dst.size()) {
    return Status::OutOfRange("GetItemInto: " + name + " needs " +
                              std::to_string(*size) + " bytes, dst has " +
                              std::to_string(dst.size()));
  }
  std::size_t done = 0;
  const auto total = static_cast<std::size_t>(*size);
  while (done < total) {
    auto n = client_.Read(name, done, dst.subspan(done, total - done));
    if (!n.ok()) return n.status();
    if (*n == 0) break;
    done += *n;
  }
  return done;
}

Status TorchWorkerClient::AnnounceEpoch(
    std::uint64_t epoch, const std::vector<std::string>& order) {
  return client_.BeginEpoch(epoch, order);
}

}  // namespace prisma::frameworks
