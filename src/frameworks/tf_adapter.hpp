// TensorFlow-style integration (paper §IV, "Integration with DL
// frameworks"): TensorFlow's POSIX filesystem backend wraps every input
// file in a RandomAccessFile whose Read() issues pread(2). The paper's
// 10-LoC patch swaps that pread for Prisma.read. This adapter mirrors
// that structure: TfRandomAccessFile is the upstream class shape, and the
// ONLY functional difference between the vanilla and PRISMA paths is the
// body of Read() — exactly the decoupling argument of the paper.
#pragma once

#include <memory>
#include <string>

#include "common/status.hpp"
#include "dataplane/stage.hpp"
#include "storage/backend.hpp"

namespace prisma::frameworks {

/// Mirror of tensorflow::RandomAccessFile for the POSIX backend.
class TfRandomAccessFile {
 public:
  virtual ~TfRandomAccessFile() = default;

  /// Reads up to n bytes at `offset`. Mirrors upstream semantics:
  /// returns OutOfRange at EOF with a short read.
  virtual Result<std::size_t> Read(std::uint64_t offset,
                                   std::span<std::byte> dst) const = 0;
};

/// Mirror of tensorflow::PosixFileSystem, parameterised on whether the
/// PRISMA stage services reads (the 10-LoC patch) or the backend does.
class TfPosixFileSystem {
 public:
  /// Vanilla: reads go straight to the storage backend.
  explicit TfPosixFileSystem(std::shared_ptr<storage::StorageBackend> backend);

  /// PRISMA-integrated: reads go to the data-plane stage.
  TfPosixFileSystem(std::shared_ptr<storage::StorageBackend> backend,
                    std::shared_ptr<dataplane::Stage> stage);

  Result<std::unique_ptr<TfRandomAccessFile>> NewRandomAccessFile(
      const std::string& path) const;

  Result<std::uint64_t> GetFileSize(const std::string& path) const;

  bool prisma_enabled() const { return stage_ != nullptr; }

 private:
  std::shared_ptr<storage::StorageBackend> backend_;
  std::shared_ptr<dataplane::Stage> stage_;  // null in vanilla mode
};

}  // namespace prisma::frameworks
