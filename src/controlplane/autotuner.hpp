// PRISMA's feedback auto-tuning control algorithm (paper §IV, control
// plane): selects the number of producer threads `t` and the buffer
// capacity `N` for "a balanced trade-off between performance and resource
// usage" by observing data-plane statistics and adjusting until the
// configuration converges.
//
// The tuner consumes periodic StageStatsSnapshot deltas from the
// controller and aggregates them into *measurement periods* of at least
// `period_min_inserts` produced samples (bounded by `period_max_ticks`).
// Deciding on fixed sample counts — not fixed time — makes the statistics
// equally reliable for a live stage polled at 100 ms and for a DES
// pipeline polled at any virtual cadence.
//
// Per completed period:
//
//  1. Starvation-driven scale-up with probing. If consumers blocked on
//     the buffer during the period, add one producer and *probe*: the
//     next period measures the new configuration, and the thread is kept
//     only if the production rate improved by `rate_gain_threshold`.
//     Past the storage device's concurrency knee extra threads add
//     nothing — the probe fails, the thread retires, and scale-up
//     freezes (escalating on repeated failures at the same count, so
//     noise cannot ratchet t upward). This is what keeps PRISMA at <= 4
//     threads where TensorFlow's autotuner allocates its whole pool
//     (Fig. 3). If starvation persists at a plateau the consumer is
//     bursty rather than under-supplied — the buffer doubles instead.
//
//  2. Calm-driven scale-down. When no consumer waited and producers kept
//     blocking on a full buffer, a producer is surplus; one retires after
//     `cooldown_periods` consecutive calm periods.
//
// N follows t with headroom (N = t * buffer_headroom, clamped) plus the
// burst doublings.
#pragma once

#include <cstdint>
#include <string>

#include "dataplane/types.hpp"

namespace prisma::controlplane {

struct AutotunerOptions {
  std::uint32_t min_producers = 1;
  std::uint32_t max_producers = 16;
  std::size_t min_buffer = 8;
  std::size_t max_buffer = 4096;
  /// Buffer slots provisioned per producer thread.
  std::size_t buffer_headroom = 16;

  /// A measurement period closes after this many produced samples...
  std::uint64_t period_min_inserts = 1000;
  /// ...or after this many non-idle ticks, whichever comes first.
  std::uint32_t period_max_ticks = 200;

  /// Consumer-wait fraction (waits / takes per period) that triggers
  /// scale-up. 0.02 == consumers blocked on 2% of takes.
  double starvation_threshold = 0.02;
  /// Minimum relative production-rate gain a probe must deliver for the
  /// extra producer to be kept. Set well above measurement noise at
  /// period_min_inserts samples (sigma ~ 3%).
  double rate_gain_threshold = 0.10;
  /// Periods scale-up stays frozen after a failed probe; consecutive
  /// failures at the same producer count double it, capped below.
  std::uint32_t freeze_periods = 2;
  std::uint32_t max_freeze_periods = 64;
  /// Producer-block fraction that marks a period "calm" (over-provisioned).
  double overprovision_threshold = 0.5;
  /// Calm periods required before retiring a producer.
  std::uint32_t cooldown_periods = 2;
  /// Periods without any knob change after which Converged() holds.
  std::uint32_t converged_periods = 4;

  /// Pipeline layer this tuner targets. Empty = legacy flat routing (the
  /// stage resolves flat fields to its prefetch layer). When set, Tick
  /// reads that layer's stats section and returns "<object>.<knob>"
  /// scoped knobs, so the same algorithm can drive any layer of a
  /// stacked pipeline.
  std::string target_object;
};

class PrismaAutotuner {
 public:
  explicit PrismaAutotuner(AutotunerOptions options);

  /// Consumes a stats snapshot; returns the knobs to apply (fields set
  /// only when they should change).
  dataplane::StageKnobs Tick(const dataplane::StageStatsSnapshot& stats);

  std::uint32_t CurrentProducers() const { return producers_; }
  std::size_t CurrentBuffer() const { return buffer_; }
  bool Converged() const {
    return stable_periods_ >= options_.converged_periods;
  }

  /// Forgets history (e.g. when a stage is reassigned to this tuner).
  void Reset();

 private:
  /// The tuning algorithm, in flat-field terms; Tick handles the
  /// target_object projection/scoping around it.
  dataplane::StageKnobs TickFlat(const dataplane::StageStatsSnapshot& stats);
  std::size_t TargetBuffer() const;
  dataplane::StageKnobs ClosePeriod();

  AutotunerOptions options_;
  std::uint32_t producers_;
  std::size_t buffer_;
  std::size_t burst_doublings_ = 0;

  bool has_last_ = false;
  dataplane::StageStatsSnapshot last_;

  // Accumulators of the open measurement period.
  std::uint64_t meas_inserts_ = 0;
  std::uint64_t meas_takes_ = 0;
  std::uint64_t meas_waits_ = 0;
  std::uint64_t meas_blocks_ = 0;
  std::uint32_t meas_ticks_ = 0;
  std::uint64_t meas_queue_depth_ = 0;  // last seen

  // Probe state: producers_ was raised at the end of the previous period;
  // the period now being measured runs the new configuration.
  bool probing_ = false;
  double base_rate_ = 0.0;

  std::uint32_t frozen_periods_left_ = 0;
  std::uint32_t consecutive_failed_probes_ = 0;
  std::uint32_t last_failed_probe_t_ = 0;

  std::uint32_t calm_periods_ = 0;
  std::uint32_t stable_periods_ = 0;
};

}  // namespace prisma::controlplane
