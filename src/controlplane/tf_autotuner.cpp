#include "controlplane/tf_autotuner.hpp"

#include <algorithm>

namespace prisma::controlplane {

TfPrefetchAutotuner::TfPrefetchAutotuner(TfAutotunerOptions options)
    : options_(options),
      buffer_limit_(std::max<std::size_t>(1, options.initial_buffer)) {}

void TfPrefetchAutotuner::RecordConsumption(std::size_t current_buffer_size) {
  switch (mode_) {
    case Mode::kDisabled:
      return;
    case Mode::kUpswing:
      // Upstream: if the buffer is full when the consumer takes, the
      // current limit suffices — stop growing. If it is empty, double.
      if (current_buffer_size >= buffer_limit_) {
        mode_ = Mode::kDownswing;
        return;
      }
      if (current_buffer_size == 0 && buffer_limit_ < options_.max_buffer) {
        buffer_limit_ = std::min(options_.max_buffer, buffer_limit_ * 2);
      }
      return;
    case Mode::kDownswing:
      // Upstream freezes the limit here (memory-budget trimming is
      // handled elsewhere); nothing to do.
      return;
  }
}

dataplane::StageKnobs TfPrefetchAutotuner::Tick(
    const dataplane::StageStatsSnapshot& stats) {
  if (!options_.target_object.empty()) {
    return dataplane::ScopeKnobs(
        TickFlat(dataplane::SnapshotForObject(stats, options_.target_object)),
        options_.target_object);
  }
  return TickFlat(stats);
}

dataplane::StageKnobs TfPrefetchAutotuner::TickFlat(
    const dataplane::StageStatsSnapshot& stats) {
  dataplane::StageKnobs knobs;
  if (!has_last_) {
    has_last_ = true;
    last_ = stats;
    // TF hands the pipeline its whole thread budget immediately.
    knobs.producers = options_.thread_pool_size;
    knobs.buffer_capacity = buffer_limit_;
    return knobs;
  }

  const auto d_waits = stats.consumer_waits - last_.consumer_waits;
  const auto d_takes = stats.samples_consumed - last_.samples_consumed;
  last_ = stats;

  const std::size_t before = buffer_limit_;
  if (mode_ == Mode::kUpswing && d_takes > 0) {
    if (d_waits > 0) {
      if (buffer_limit_ < options_.max_buffer) {
        buffer_limit_ = std::min(options_.max_buffer, buffer_limit_ * 2);
      }
    } else if (stats.buffer_occupancy >= buffer_limit_) {
      mode_ = Mode::kDownswing;
    }
  }
  if (buffer_limit_ != before) knobs.buffer_capacity = buffer_limit_;
  return knobs;
}

}  // namespace prisma::controlplane
