#include "controlplane/pid_autotuner.hpp"

#include <algorithm>
#include <cmath>

namespace prisma::controlplane {

PidAutotuner::PidAutotuner(PidAutotunerOptions options)
    : options_(options),
      producers_(options.min_producers),
      buffer_(std::max(options.min_buffer,
                       options.min_producers * options.buffer_headroom)),
      control_(options.min_producers) {}

void PidAutotuner::Reset() {
  const PidAutotunerOptions options = options_;
  *this = PidAutotuner(options);
}

dataplane::StageKnobs PidAutotuner::Tick(
    const dataplane::StageStatsSnapshot& stats) {
  if (!options_.target_object.empty()) {
    return dataplane::ScopeKnobs(
        TickFlat(dataplane::SnapshotForObject(stats, options_.target_object)),
        options_.target_object);
  }
  return TickFlat(stats);
}

dataplane::StageKnobs PidAutotuner::TickFlat(
    const dataplane::StageStatsSnapshot& stats) {
  dataplane::StageKnobs knobs;
  if (!has_last_) {
    has_last_ = true;
    last_ = stats;
    knobs.producers = producers_;
    knobs.buffer_capacity = buffer_;
    return knobs;
  }

  const auto d_inserts = stats.samples_produced - last_.samples_produced;
  const auto d_takes = stats.samples_consumed - last_.samples_consumed;
  last_ = stats;
  if (d_inserts == 0 && d_takes == 0) return knobs;  // idle

  meas_inserts_ += d_inserts;
  ++meas_ticks_;
  occupancy_accum_ +=
      stats.buffer_capacity > 0
          ? static_cast<double>(stats.buffer_occupancy) /
                static_cast<double>(stats.buffer_capacity)
          : 0.0;

  if (meas_inserts_ < options_.period_min_inserts &&
      meas_ticks_ < options_.period_max_ticks) {
    return knobs;
  }
  const double mean_occupancy =
      occupancy_accum_ / static_cast<double>(meas_ticks_);
  meas_inserts_ = 0;
  meas_ticks_ = 0;
  occupancy_accum_ = 0.0;
  return ClosePeriod(mean_occupancy);
}

dataplane::StageKnobs PidAutotuner::ClosePeriod(double occupancy_ratio) {
  dataplane::StageKnobs knobs;

  // Positive error == buffer below setpoint == need more production.
  const double error = options_.setpoint - occupancy_ratio;

  // Velocity form: du = kp*(e - e1) + ki*e + kd*(e - 2*e1 + e2).
  double du = options_.ki * error;
  if (has_last_error_) {
    du += options_.kp * (error - last_error_);
    du += options_.kd * (error - 2.0 * last_error_ + prev_error_);
  } else {
    du += options_.kp * error;
  }
  prev_error_ = last_error_;
  last_error_ = error;
  has_last_error_ = true;

  control_ = std::clamp(control_ + du,
                        static_cast<double>(options_.min_producers),
                        static_cast<double>(options_.max_producers));

  const std::uint32_t old_producers = producers_;
  const std::size_t old_buffer = buffer_;
  producers_ = static_cast<std::uint32_t>(std::lround(control_));
  producers_ = std::clamp(producers_, options_.min_producers,
                          options_.max_producers);
  buffer_ = std::clamp<std::size_t>(producers_ * options_.buffer_headroom,
                                    options_.min_buffer, options_.max_buffer);

  if (producers_ != old_producers) knobs.producers = producers_;
  if (buffer_ != old_buffer) knobs.buffer_capacity = buffer_;
  return knobs;
}

}  // namespace prisma::controlplane
