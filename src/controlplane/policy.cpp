#include "controlplane/policy.hpp"

#include <algorithm>
#include <numeric>

namespace prisma::controlplane {

std::vector<std::uint32_t> ComputeFairShares(std::vector<StageDemand> demands,
                                             std::uint32_t budget) {
  const std::size_t n = demands.size();
  std::vector<std::uint32_t> shares(n, 0);
  if (n == 0) return shares;

  // Floor: one producer each (stages must make progress), even if that
  // overshoots a tiny budget.
  std::uint32_t spent = 0;
  for (std::size_t i = 0; i < n; ++i) {
    shares[i] = 1;
    ++spent;
  }

  // Deal the remainder one thread at a time to the hungriest stage that
  // still wants more (max-min fairness over the demand signal).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  while (spent < budget) {
    // Stable sort each round: shares change relative hunger.
    std::size_t best = n;
    double best_key = -1.0;
    for (const std::size_t i : order) {
      if (shares[i] >= demands[i].requested) continue;  // satisfied
      // Hunger = weighted demand divided by what it already holds.
      const double weight = demands[i].weight > 0.0 ? demands[i].weight : 1.0;
      const double key = weight * (demands[i].starvation + 1e-9) /
                         static_cast<double>(shares[i]);
      if (key > best_key) {
        best_key = key;
        best = i;
      }
    }
    if (best == n) break;  // all requests satisfied; leave budget idle
    ++shares[best];
    ++spent;
  }
  return shares;
}

}  // namespace prisma::controlplane
