// Control-plane policies (paper §III: "user-defined policies ... that
// orchestrate the overall system stack").
//
// A Policy maps a stage's monitoring snapshot to knob adjustments. The
// Controller owns one policy instance per stage; cross-stage coordination
// (multi-tenant fairness) is handled by the FairShareCoordinator, which
// post-processes per-stage proposals against a global resource budget.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "controlplane/autotuner.hpp"
#include "controlplane/pid_autotuner.hpp"
#include "controlplane/tf_autotuner.hpp"
#include "dataplane/types.hpp"

namespace prisma::controlplane {

class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string_view Name() const = 0;
  virtual dataplane::StageKnobs Tick(
      const dataplane::StageStatsSnapshot& stats) = 0;
};

/// Pins knobs to fixed values (the "manually tuned" baseline).
class FixedKnobsPolicy final : public Policy {
 public:
  explicit FixedKnobsPolicy(dataplane::StageKnobs knobs) : knobs_(knobs) {}
  std::string_view Name() const override { return "fixed"; }
  dataplane::StageKnobs Tick(const dataplane::StageStatsSnapshot&) override {
    // Re-publishing constant knobs every tick is idempotent.
    return knobs_;
  }

 private:
  dataplane::StageKnobs knobs_;
};

/// PRISMA's feedback auto-tuner as a policy.
class PrismaAutotunePolicy final : public Policy {
 public:
  explicit PrismaAutotunePolicy(AutotunerOptions options) : tuner_(options) {}
  std::string_view Name() const override { return "prisma-autotune"; }
  dataplane::StageKnobs Tick(
      const dataplane::StageStatsSnapshot& stats) override {
    return tuner_.Tick(stats);
  }
  const PrismaAutotuner& tuner() const { return tuner_; }

 private:
  PrismaAutotuner tuner_;
};

/// PID occupancy control as a policy (alternative control algorithm;
/// see pid_autotuner.hpp for why it over-provisions on I/O-bound jobs).
class PidAutotunePolicy final : public Policy {
 public:
  explicit PidAutotunePolicy(PidAutotunerOptions options) : tuner_(options) {}
  std::string_view Name() const override { return "pid-occupancy"; }
  dataplane::StageKnobs Tick(
      const dataplane::StageStatsSnapshot& stats) override {
    return tuner_.Tick(stats);
  }
  const PidAutotuner& tuner() const { return tuner_; }

 private:
  PidAutotuner tuner_;
};

/// TensorFlow-style autotuning as a policy (baseline comparisons).
class TfAutotunePolicy final : public Policy {
 public:
  explicit TfAutotunePolicy(TfAutotunerOptions options) : tuner_(options) {}
  std::string_view Name() const override { return "tf-autotune"; }
  dataplane::StageKnobs Tick(
      const dataplane::StageStatsSnapshot& stats) override {
    return tuner_.Tick(stats);
  }
  const TfPrefetchAutotuner& tuner() const { return tuner_; }

 private:
  TfPrefetchAutotuner tuner_;
};

/// Decorator that layers a bandwidth reservation (QoS SLO) on top of any
/// base policy: the wrapped policy tunes (t, N) while this pins the
/// stage's backend read rate — the Cake/PSLO-style policy family the
/// paper's related work discusses, expressed as a PRISMA control policy.
class QosPolicy final : public Policy {
 public:
  QosPolicy(std::unique_ptr<Policy> base, double read_rate_bps)
      : base_(std::move(base)), read_rate_bps_(read_rate_bps) {}
  std::string_view Name() const override { return "qos"; }
  dataplane::StageKnobs Tick(
      const dataplane::StageStatsSnapshot& stats) override {
    dataplane::StageKnobs knobs = base_->Tick(stats);
    knobs.read_rate_bps = read_rate_bps_;
    return knobs;
  }
  void SetRate(double read_rate_bps) { read_rate_bps_ = read_rate_bps; }

 private:
  std::unique_ptr<Policy> base_;
  double read_rate_bps_;
};

// ---------------------------------------------------------------------------
// Multi-tenant coordination (paper §VII "Access coordination to shared
// datasets"): stages sharing a backend receive producer-thread shares from
// a global budget instead of each scaling up independently.

struct StageDemand {
  std::string stage_id;
  /// Demand signal in [0, inf): consumer starvation fraction this tick.
  double starvation = 0.0;
  /// The producers the stage's own policy asked for.
  std::uint32_t requested = 1;
  /// Tenant priority weight (> 0): a weight-2 stage is entitled to twice
  /// the share of a weight-1 stage at equal demand ("prioritize
  /// workloads", paper §III).
  double weight = 1.0;
};

/// Splits `budget` producer threads across stages: every stage gets at
/// least one; the remainder is dealt by descending weighted demand,
/// capped at each stage's own request (work-conserving, weighted
/// max-min-style share).
std::vector<std::uint32_t> ComputeFairShares(std::vector<StageDemand> demands,
                                             std::uint32_t budget);

}  // namespace prisma::controlplane
