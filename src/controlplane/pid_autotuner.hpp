// PID occupancy controller — an ALTERNATIVE control algorithm for the
// same (t, N) knobs, built to test the paper's caveat that "the same may
// not hold true when considering other control algorithms" (§V.A).
//
// Classical feedback on buffer occupancy: hold the buffer at a setpoint
// fraction (default 50%) by adding producers when it runs empty and
// retiring them when it runs full. Velocity-form PID on the occupancy
// error drives a continuous control variable that is rounded to the
// discrete thread count.
//
// The instructive failure mode (bench/ablation_control): for an I/O-bound
// workload the consumer drains the buffer no matter how many producers
// exist, so occupancy NEVER reaches the setpoint, the integral term winds
// up, and the PID pegs t at max — reaching PRISMA-level performance but
// with TensorFlow-level over-provisioning. Occupancy alone cannot see the
// device's plateau; PRISMA's rate-probing tuner can. Same knobs, same
// stage, different control algorithm, different resource footprint —
// which is exactly why the control plane makes algorithms swappable.
#pragma once

#include <cstdint>
#include <string>

#include "dataplane/types.hpp"

namespace prisma::controlplane {

struct PidAutotunerOptions {
  std::uint32_t min_producers = 1;
  std::uint32_t max_producers = 16;
  std::size_t min_buffer = 8;
  std::size_t max_buffer = 4096;
  std::size_t buffer_headroom = 16;

  /// Target buffer occupancy fraction in (0, 1).
  double setpoint = 0.5;
  /// Velocity-form gains on the occupancy error.
  double kp = 4.0;
  double ki = 0.5;
  double kd = 0.0;
  /// Decisions are made on sample windows like the PRISMA tuner.
  std::uint64_t period_min_inserts = 1000;
  std::uint32_t period_max_ticks = 200;

  /// Pipeline layer this tuner targets (see AutotunerOptions); empty =
  /// legacy flat routing to the stage's prefetch layer.
  std::string target_object;
};

class PidAutotuner {
 public:
  explicit PidAutotuner(PidAutotunerOptions options);

  dataplane::StageKnobs Tick(const dataplane::StageStatsSnapshot& stats);

  std::uint32_t CurrentProducers() const { return producers_; }
  std::size_t CurrentBuffer() const { return buffer_; }
  void Reset();

 private:
  dataplane::StageKnobs TickFlat(const dataplane::StageStatsSnapshot& stats);
  dataplane::StageKnobs ClosePeriod(double occupancy_ratio);

  PidAutotunerOptions options_;
  std::uint32_t producers_;
  std::size_t buffer_;
  double control_ = 1.0;  // continuous thread count
  double last_error_ = 0.0;
  double prev_error_ = 0.0;
  bool has_last_error_ = false;

  bool has_last_ = false;
  dataplane::StageStatsSnapshot last_;
  std::uint64_t meas_inserts_ = 0;
  std::uint32_t meas_ticks_ = 0;
  double occupancy_accum_ = 0.0;
};

}  // namespace prisma::controlplane
